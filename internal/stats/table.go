package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned fixed-width text tables and CSV for the benchmark
// harness. Columns are sized to their widest cell.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Cells are formatted with %v; float64 cells use %.4g.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table as aligned text.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(width) - 1
	if total < 0 {
		total = 0
	}
	for _, w := range width {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row included).
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
