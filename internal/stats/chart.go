package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Chart renders x/y series as an ASCII line chart, so the benchmark
// harness can draw the paper's throughput-versus-MPL curves directly in a
// terminal. Series are plotted with distinct markers and a shared y scale.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)

	series []chartSeries
}

type chartSeries struct {
	name   string
	marker byte
	xs     []float64
	ys     []float64
}

// chartMarkers are assigned to series in order.
var chartMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// NewChart creates an empty chart.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends one named series; xs and ys must have equal lengths.
func (c *Chart) AddSeries(name string, xs, ys []float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: series %s has %d xs, %d ys", name, len(xs), len(ys)))
	}
	marker := chartMarkers[len(c.series)%len(chartMarkers)]
	c.series = append(c.series, chartSeries{
		name: name, marker: marker,
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
	})
}

// String renders the chart.
func (c *Chart) String() string {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	var xmin, xmax, ymax float64
	first := true
	for _, s := range c.series {
		for i := range s.xs {
			if first {
				xmin, xmax = s.xs[i], s.xs[i]
				first = false
			}
			xmin = math.Min(xmin, s.xs[i])
			xmax = math.Max(xmax, s.xs[i])
			ymax = math.Max(ymax, s.ys[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	if first || ymax == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, marker byte) {
		col := int((x - xmin) / (xmax - xmin) * float64(width-1))
		row := height - 1 - int(y/ymax*float64(height-1))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		if grid[row][col] != ' ' && grid[row][col] != marker {
			grid[row][col] = '&' // overlapping series
			return
		}
		grid[row][col] = marker
	}
	for _, s := range c.series {
		// Connect consecutive points with interpolated markers so the
		// curve shape reads even with few samples.
		order := make([]int, len(s.xs))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, bIdx int) bool { return s.xs[order[a]] < s.xs[order[bIdx]] })
		for k := 0; k < len(order); k++ {
			i := order[k]
			plot(s.xs[i], s.ys[i], s.marker)
			if k+1 < len(order) {
				j := order[k+1]
				steps := int((s.xs[j] - s.xs[i]) / (xmax - xmin) * float64(width))
				for t := 1; t < steps; t++ {
					f := float64(t) / float64(steps)
					plot(s.xs[i]+f*(s.xs[j]-s.xs[i]), s.ys[i]+f*(s.ys[j]-s.ys[i]), s.marker)
				}
			}
		}
	}

	yw := len(fmt.Sprintf("%.0f", ymax))
	for r := 0; r < height; r++ {
		if r == 0 {
			fmt.Fprintf(&b, "%*.0f |", yw, ymax)
		} else if r == height-1 {
			fmt.Fprintf(&b, "%*.0f |", yw, 0.0)
		} else if r == height/2 {
			fmt.Fprintf(&b, "%*.0f |", yw, ymax/2)
		} else {
			fmt.Fprintf(&b, "%s |", strings.Repeat(" ", yw))
		}
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", yw), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.0f%*.0f  (%s)\n", strings.Repeat(" ", yw),
		width/2, xmin, width/2, xmax, c.XLabel)
	var legend []string
	for _, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c %s", s.marker, s.name))
	}
	fmt.Fprintf(&b, "%s  %s   [%s]\n", strings.Repeat(" ", yw), c.YLabel,
		strings.Join(legend, "   "))
	return b.String()
}
