package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almost(a.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %g", a.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !almost(a.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %g", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %g/%g", a.Min(), a.Max())
	}
	if !almost(a.Sum(), 40, 1e-9) {
		t.Fatalf("sum = %g", a.Sum())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdDev() != 0 || a.N() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Variance() != 0 {
		t.Fatalf("variance of single sample = %g", a.Variance())
	}
	if a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatal("min/max of single sample wrong")
	}
}

func TestAccumulatorReset(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(2)
	a.Reset()
	if a.N() != 0 || a.Mean() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestAccumulatorMergeProperty(t *testing.T) {
	check := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := in[:0]
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Accumulator
		for _, x := range xs {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(all.Mean())
		return almost(a.Mean(), all.Mean(), 1e-9*scale) &&
			almost(a.Variance(), all.Variance(), 1e-6*(1+all.Variance())) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMergeEmptySides(t *testing.T) {
	var a, b Accumulator
	b.Add(4)
	a.Merge(&b) // empty <- nonempty
	if a.N() != 1 || a.Mean() != 4 {
		t.Fatal("merge into empty failed")
	}
	var c Accumulator
	a.Merge(&c) // nonempty <- empty
	if a.N() != 1 || a.Mean() != 4 {
		t.Fatal("merge of empty changed state")
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 2)  // value 2 during [0,10)
	w.Set(10, 6) // value 6 during [10,20)
	if got := w.Mean(20); !almost(got, 4, 1e-12) {
		t.Fatalf("time-weighted mean = %g, want 4", got)
	}
	if w.Max() != 6 {
		t.Fatalf("max = %g", w.Max())
	}
	if w.Value() != 6 {
		t.Fatalf("value = %g", w.Value())
	}
}

func TestTimeWeightedAdjust(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)
	w.Adjust(5, +3) // 0 in [0,5), 3 in [5,10)
	if got := w.Mean(10); !almost(got, 1.5, 1e-12) {
		t.Fatalf("mean = %g, want 1.5", got)
	}
}

func TestTimeWeightedResetAt(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 100) // transient
	w.Set(10, 2)
	w.ResetAt(10)
	w.Set(20, 4)
	if got := w.Mean(30); !almost(got, 3, 1e-12) {
		t.Fatalf("post-reset mean = %g, want 3", got)
	}
}

func TestTimeWeightedNoElapsedTime(t *testing.T) {
	var w TimeWeighted
	w.Set(5, 7)
	if got := w.Mean(5); got != 7 {
		t.Fatalf("zero-duration mean = %g, want current value 7", got)
	}
}

// Integral backs the windowed-utilization telemetry: differencing it across
// window boundaries must reproduce per-window busy time exactly.
func TestTimeWeightedIntegral(t *testing.T) {
	var w TimeWeighted
	if got := w.Integral(10); got != 0 {
		t.Fatalf("integral before any Set = %g, want 0", got)
	}
	// A 0/1 busy indicator: busy [2,5), idle [5,8), busy [8,...).
	w.Set(2, 1)
	w.Set(5, 0)
	w.Set(8, 1)
	if got := w.Integral(8); !almost(got, 3, 1e-12) {
		t.Fatalf("integral at last Set = %g, want 3", got)
	}
	// Beyond the last Set the current value extrapolates.
	if got := w.Integral(12); !almost(got, 7, 1e-12) {
		t.Fatalf("extrapolated integral = %g, want 7", got)
	}
	// Inside the recorded history it clamps to the last Set, like Mean.
	if got := w.Integral(3); !almost(got, 3, 1e-12) {
		t.Fatalf("clamped integral = %g, want 3", got)
	}
	// Per-window differencing (what the rate probes do): busy fraction of
	// [8,12] is (7-3)/4 = 1.
	if frac := (w.Integral(12) - w.Integral(8)) / 4; !almost(frac, 1, 1e-12) {
		t.Fatalf("windowed busy fraction = %g, want 1", frac)
	}
}

func TestBatchMeansInterval(t *testing.T) {
	var b BatchMeans
	for i := 0; i < 1000; i++ {
		b.Add(10 + float64(i%7)) // mean 13, deterministic
	}
	mean, hw := b.Interval(10)
	if !almost(mean, 13, 0.05) {
		t.Fatalf("mean = %g", mean)
	}
	if hw < 0 || hw > 1 {
		t.Fatalf("half-width = %g out of plausible range", hw)
	}
}

func TestBatchMeansTooFewSamples(t *testing.T) {
	var b BatchMeans
	b.Add(5)
	mean, hw := b.Interval(10)
	if mean != 5 || hw != 0 {
		t.Fatalf("degenerate interval = (%g, %g)", mean, hw)
	}
	var empty BatchMeans
	if m, h := empty.Interval(10); m != 0 || h != 0 {
		t.Fatal("empty interval should be (0,0)")
	}
}

func TestPercentile(t *testing.T) {
	var b BatchMeans
	for i := 1; i <= 100; i++ {
		b.Add(float64(i))
	}
	if got := b.Percentile(50); !almost(got, 50.5, 1e-9) {
		t.Fatalf("p50 = %g", got)
	}
	if got := b.Percentile(0); got != 1 {
		t.Fatalf("p0 = %g", got)
	}
	if got := b.Percentile(100); got != 100 {
		t.Fatalf("p100 = %g", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	var b BatchMeans
	if b.Percentile(50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		q := tQuantile95(df)
		if q > prev {
			t.Fatalf("t quantile not non-increasing at df=%d: %g > %g", df, q, prev)
		}
		prev = q
	}
	if !almost(tQuantile95(1000), 1.96, 1e-9) {
		t.Fatal("large-df quantile should be 1.96")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig 8a", "MPL", "MAGIC", "BERD", "Range")
	tb.AddRow(1, 12.5, 11.0, 9.25)
	tb.AddRow(64, 100.125, 90.0, "n/a")
	s := tb.String()
	if !strings.Contains(s, "Fig 8a") || !strings.Contains(s, "MAGIC") {
		t.Fatalf("missing title/header:\n%s", s)
	}
	if !strings.Contains(s, "12.5") || !strings.Contains(s, "n/a") {
		t.Fatalf("missing cells:\n%s", s)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `He said "hi"`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"He said \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestChartRendering(t *testing.T) {
	c := NewChart("Figure 8a", "MPL", "q/s")
	c.AddSeries("magic", []float64{1, 8, 32, 64}, []float64{28, 196, 468, 601})
	c.AddSeries("range", []float64{1, 8, 32, 64}, []float64{22, 152, 342, 418})
	s := c.String()
	for _, want := range []string{"Figure 8a", "MPL", "q/s", "* magic", "o range", "601"} {
		if !strings.Contains(s, want) {
			t.Fatalf("chart missing %q:\n%s", want, s)
		}
	}
	// Top row must contain the highest series' marker somewhere.
	lines := strings.Split(s, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("max point not on top row:\n%s", s)
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("empty", "x", "y")
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
	c.AddSeries("zeros", []float64{1, 2}, []float64{0, 0})
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("all-zero chart should say so")
	}
}

func TestChartSinglePoint(t *testing.T) {
	c := NewChart("one", "x", "y")
	c.AddSeries("s", []float64{5}, []float64{10})
	s := c.String()
	if !strings.Contains(s, "*") {
		t.Fatalf("single point not plotted:\n%s", s)
	}
}

func TestChartMismatchedSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series did not panic")
		}
	}()
	NewChart("t", "x", "y").AddSeries("bad", []float64{1}, []float64{1, 2})
}

func TestPercentileExactRanks(t *testing.T) {
	// n=11 samples 0..100 by 10: rank = p/100*10 is an exact integer at
	// every multiple of 10, but e.g. 0.3*10 = 2.9999999999999996 in
	// floating point. Exact-rank percentiles must return the sample itself.
	var b BatchMeans
	for i := 0; i <= 100; i += 10 {
		b.Add(float64(i))
	}
	cases := []struct {
		p, want float64
	}{
		{0, 0}, {10, 10}, {20, 20}, {30, 30}, {40, 40}, {50, 50},
		{60, 60}, {70, 70}, {80, 80}, {90, 90}, {100, 100},
		{25, 25}, {95, 95}, // interpolated midpoints still work
	}
	for _, c := range cases {
		if got := b.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%g) = %g, want exactly %g", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleSample(t *testing.T) {
	var b BatchMeans
	b.Add(42)
	for _, p := range []float64{0, 30, 50, 99, 100} {
		if got := b.Percentile(p); got != 42 {
			t.Errorf("Percentile(%g) = %g, want 42", p, got)
		}
	}
}

func TestTimeWeightedMeanEdgeCases(t *testing.T) {
	var unset TimeWeighted
	if got := unset.Mean(5); got != 0 {
		t.Errorf("Mean before any Set = %g, want 0", got)
	}

	var w TimeWeighted
	w.Set(10, 3) // origin
	w.Set(20, 9)
	cases := []struct {
		name    string
		t, want float64
	}{
		{"before origin", 5, 3},   // zero-length window holds the first value
		{"at origin", 10, 3},      //
		{"inside history", 15, 3}, // clamped to [10, 20]: only value 3 recorded
		{"at last set", 20, 3},    // [10,20) was all value 3
		{"past last set", 30, 6},  // (10*3 + 10*9) / 20
	}
	for _, c := range cases {
		if got := w.Mean(c.t); !almost(got, c.want, 1e-12) {
			t.Errorf("%s: Mean(%g) = %g, want %g", c.name, c.t, got, c.want)
		}
	}
}

func TestPercentileTwoSamples(t *testing.T) {
	var b BatchMeans
	b.Add(10)
	b.Add(20)
	cases := []struct {
		p, want float64
	}{{0, 10}, {25, 12.5}, {50, 15}, {75, 17.5}, {100, 20}}
	for _, c := range cases {
		if got := b.Percentile(c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

// TestPercentileProperties checks, over arbitrary sample sets, the order
// statistics invariants a percentile estimator must satisfy: bounded by
// the sample min and max, and monotone non-decreasing in the quantile.
func TestPercentileProperties(t *testing.T) {
	prop := func(samples []float64, qs []float64) bool {
		if len(samples) == 0 {
			return true
		}
		var b BatchMeans
		lo, hi := samples[0], samples[0]
		for _, x := range samples {
			// quick generates NaN-free float64s but keep the property
			// meaningful on huge magnitudes by skipping infinities.
			if math.IsInf(x, 0) || math.IsNaN(x) {
				return true
			}
			b.Add(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		// Bounded by min/max at arbitrary (even out-of-range) quantiles.
		for _, q := range qs {
			v := b.Percentile(q)
			if v < lo || v > hi {
				return false
			}
		}
		// Monotone in q over a fixed grid.
		prev := math.Inf(-1)
		for q := -10.0; q <= 110; q += 2.5 {
			v := b.Percentile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// The invariants must also hold at the degenerate sizes the generator
	// rarely produces: one and two samples.
	for _, set := range [][]float64{{-3.5}, {7, -7}} {
		if !prop(set, []float64{-1, 0, 13, 50, 99.999, 100, 200}) {
			t.Errorf("percentile invariants violated for %v", set)
		}
	}
}
