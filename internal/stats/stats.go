// Package stats provides the measurement machinery for the simulation study:
// streaming accumulators for observational data (query response times,
// processors used per query), time-weighted accumulators for state variables
// (queue lengths, utilization), throughput windows, and batch-means
// confidence intervals. It also renders the fixed-width tables and CSV the
// benchmark harness prints for each figure of the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator collects observational samples with Welford's online algorithm,
// which is numerically stable for long runs.
type Accumulator struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N reports the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean reports the sample mean (0 if empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance reports the unbiased sample variance (0 if fewer than 2 samples).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev reports the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min reports the smallest observation (0 if empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max reports the largest observation (0 if empty).
func (a *Accumulator) Max() float64 { return a.max }

// Sum reports the sum of all observations.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// Reset discards all observations.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Merge folds another accumulator's observations into a. Merge uses the
// parallel-variance formula, so merging preserves mean and variance exactly
// (up to floating-point error).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// String summarizes the accumulator for traces.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		a.n, a.Mean(), a.StdDev(), a.min, a.max)
}

// TimeWeighted tracks the time average of a piecewise-constant state
// variable, e.g. the number of busy processors or a queue length. Times are
// caller-defined (the simulator passes nanoseconds).
type TimeWeighted struct {
	started bool
	lastT   float64
	lastV   float64
	firstV  float64
	area    float64
	total   float64
	max     float64
	originT float64
}

// Set records that the variable changed to v at time t. The first call
// establishes the origin.
func (w *TimeWeighted) Set(t, v float64) {
	if !w.started {
		w.started = true
		w.originT = t
		w.firstV = v
	} else {
		dt := t - w.lastT
		w.area += w.lastV * dt
		w.total += dt
	}
	w.lastT = t
	w.lastV = v
	if v > w.max {
		w.max = v
	}
}

// Adjust shifts the variable by delta at time t (convenience for counters).
func (w *TimeWeighted) Adjust(t, delta float64) { w.Set(t, w.lastV+delta) }

// Value reports the current value of the variable.
func (w *TimeWeighted) Value() float64 { return w.lastV }

// Mean reports the time average over [origin, t]. Before any Set it is 0;
// at or before the origin it is the value first set (a zero-length window
// has only that state). A t inside the recorded history (earlier than the
// last Set) is clamped to it: the average covers [origin, lastT], since
// per-interval history is not retained.
func (w *TimeWeighted) Mean(t float64) float64 {
	if !w.started {
		return 0
	}
	if t <= w.originT {
		return w.firstV
	}
	area, total := w.area, w.total
	if t > w.lastT {
		area += w.lastV * (t - w.lastT)
		total += t - w.lastT
	}
	if total == 0 {
		// Single Set so far and t did not advance past it.
		return w.lastV
	}
	return area / total
}

// Max reports the largest value ever set.
func (w *TimeWeighted) Max() float64 { return w.max }

// Integral reports the accumulated value-time area over [origin, t]: for a
// 0/1 busy indicator it is total busy time in the caller's time unit. A t
// beyond the last Set extrapolates the current value; a t inside the
// recorded history is clamped to it, like Mean.
func (w *TimeWeighted) Integral(t float64) float64 {
	if !w.started {
		return 0
	}
	area := w.area
	if t > w.lastT {
		area += w.lastV * (t - w.lastT)
	}
	return area
}

// ResetAt restarts the averaging window at time t, keeping the current value.
// Used to discard the warm-up transient.
func (w *TimeWeighted) ResetAt(t float64) {
	v := w.lastV
	*w = TimeWeighted{}
	w.Set(t, v)
}

// BatchMeans estimates a confidence interval for the mean of a (possibly
// autocorrelated) series by splitting it into batches, a standard technique
// for steady-state simulation output analysis.
type BatchMeans struct {
	samples []float64
}

// Add appends one observation.
func (b *BatchMeans) Add(x float64) { b.samples = append(b.samples, x) }

// N reports the number of observations.
func (b *BatchMeans) N() int { return len(b.samples) }

// Interval returns the grand mean and the half-width of an approximate 95%
// confidence interval using nbatch batches. It returns (mean, 0) when there
// is too little data for an interval.
func (b *BatchMeans) Interval(nbatch int) (mean, halfWidth float64) {
	n := len(b.samples)
	if n == 0 {
		return 0, 0
	}
	var grand Accumulator
	for _, x := range b.samples {
		grand.Add(x)
	}
	if nbatch < 2 || n < 2*nbatch {
		return grand.Mean(), 0
	}
	per := n / nbatch
	var batch Accumulator
	for i := 0; i < nbatch; i++ {
		var m Accumulator
		for j := i * per; j < (i+1)*per; j++ {
			m.Add(b.samples[j])
		}
		batch.Add(m.Mean())
	}
	// t-quantile for 95% two-sided with nbatch-1 degrees of freedom.
	t := tQuantile95(nbatch - 1)
	return batch.Mean(), t * batch.StdDev() / math.Sqrt(float64(nbatch))
}

// tQuantile95 returns the 0.975 quantile of Student's t distribution for
// small degrees of freedom (table lookup; converges to the normal 1.96).
func tQuantile95(df int) float64 {
	table := []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
		2.306, 2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
		2.110, 2.101, 2.093, 2.086}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df < 30:
		return 2.05
	case df < 60:
		return 2.00
	default:
		return 1.96
	}
}

// Percentile returns the p-th percentile (0..100) of the recorded samples by
// sorting a copy; intended for end-of-run reporting, not hot paths.
func (b *BatchMeans) Percentile(p float64) float64 {
	if len(b.samples) == 0 {
		return 0
	}
	c := append([]float64(nil), b.samples...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	// Snap ranks that are an integer up to floating-point error (e.g.
	// p=30, n=11 gives 0.3*10 = 2.9999999999999996) so exact-rank
	// percentiles return the sample itself instead of interpolating with
	// a stray 1e-16 weight on a neighbor.
	if r := math.Round(rank); math.Abs(rank-r) < 1e-9 {
		rank = r
	}
	lo := int(rank)
	frac := rank - float64(lo)
	if frac == 0 || lo+1 >= len(c) {
		return c[lo]
	}
	return c[lo]*(1-frac) + c[lo+1]*frac
}
