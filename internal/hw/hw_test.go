package hw

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

func testRig(t *testing.T) (*sim.Engine, Params, *CPU, *Disk) {
	t.Helper()
	e := sim.New()
	p := DefaultParams()
	cpu := NewCPU(e, "cpu0", p)
	disk := NewDisk(e, "disk0", p, cpu, rng.NewFactory(1).Stream("lat"))
	return e, p, cpu, disk
}

func TestCPUExecuteCharge(t *testing.T) {
	e, p, cpu, _ := testRig(t)
	var done sim.Time
	e.Spawn("p", func(pr *sim.Proc) {
		cpu.Execute(pr, 3000) // 1ms at 3 MIPS
		done = pr.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != sim.Time(p.InstrTime(3000)) {
		t.Fatalf("done at %v", done)
	}
	if cpu.Instructions() != 3000 {
		t.Fatalf("instructions = %d", cpu.Instructions())
	}
}

func TestCPUZeroInstrIsFree(t *testing.T) {
	e, _, cpu, _ := testRig(t)
	e.Spawn("p", func(pr *sim.Proc) {
		cpu.Execute(pr, 0)
		if pr.Now() != 0 {
			t.Error("zero instructions consumed time")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUNegativeInstrPanics(t *testing.T) {
	e, _, cpu, _ := testRig(t)
	e.Spawn("p", func(pr *sim.Proc) { cpu.Execute(pr, -1) })
	if err := e.Run(); err == nil {
		t.Fatal("negative instruction count should error")
	}
}

func TestCPUTransferPriorityServedFirst(t *testing.T) {
	e, _, cpu, _ := testRig(t)
	var order []string
	e.Spawn("op1", func(pr *sim.Proc) {
		cpu.Execute(pr, 30000) // 10ms, occupies server
		order = append(order, "op1")
	})
	e.Spawn("op2", func(pr *sim.Proc) {
		pr.Hold(sim.Millisecond)
		cpu.Execute(pr, 3000)
		order = append(order, "op2")
	})
	e.Spawn("xfer", func(pr *sim.Proc) {
		pr.Hold(2 * sim.Millisecond)
		cpu.ExecuteTransfer(pr, 4000)
		order = append(order, "xfer")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"op1", "xfer", "op2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDiskRandomReadCostRange(t *testing.T) {
	e, p, _, disk := testRig(t)
	var elapsed sim.Duration
	e.Spawn("p", func(pr *sim.Proc) {
		start := pr.Now()
		disk.Read(pr, 500*p.PagesPerCylinder) // 500 cylinders away
		elapsed = sim.Duration(pr.Now() - start)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// seek(500) = 2 + 0.78*sqrt(500) = 19.44ms; latency in [0,16.68];
	// transfer 4.34ms; FIFO->memory 4000 instr = 1.33ms.
	lo, hi := 19.44+0+4.34+1.33, 19.44+16.68+4.34+1.34
	got := elapsed.Milliseconds()
	if got < lo-0.01 || got > hi+0.01 {
		t.Fatalf("random read took %gms, want in [%g, %g]", got, lo, hi)
	}
	if disk.Reads() != 1 {
		t.Fatalf("reads = %d", disk.Reads())
	}
}

func TestDiskSequentialReadIsTransferOnly(t *testing.T) {
	e, p, _, disk := testRig(t)
	var deltas []float64
	e.Spawn("p", func(pr *sim.Proc) {
		for pg := 0; pg < 5; pg++ {
			start := pr.Now()
			disk.Read(pr, pg)
			deltas = append(deltas, sim.Duration(pr.Now()-start).Milliseconds())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Pages 1..4 are sequential: transfer (4.34) + FIFO transfer (1.33).
	want := p.PageTransferTime().Milliseconds() + p.InstrTime(p.XferPageInstr).Milliseconds()
	for i := 1; i < 5; i++ {
		if math.Abs(deltas[i]-want) > 0.01 {
			t.Fatalf("sequential read %d took %gms, want %g", i, deltas[i], want)
		}
	}
	if disk.SequentialHits() != 4 {
		t.Fatalf("sequential hits = %d", disk.SequentialHits())
	}
}

func TestDiskElevatorOrdering(t *testing.T) {
	e, p, _, disk := testRig(t)
	// Saturate the disk with requests at cylinders 900, 100, 500 while the
	// head starts at 0 moving up; SCAN must serve 100, 500, 900.
	var order []int
	blocker := func(pr *sim.Proc) { disk.Read(pr, 0) } // occupy arm first
	e.Spawn("blocker", blocker)
	for _, cyl := range []int{900, 100, 500} {
		cyl := cyl
		e.Spawn("r", func(pr *sim.Proc) {
			pr.Hold(sim.Microsecond) // enqueue while blocker in service
			disk.Read(pr, cyl*p.PagesPerCylinder)
			order = append(order, cyl)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{100, 500, 900}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("elevator order = %v, want %v", order, want)
		}
	}
}

func TestDiskElevatorReversesSweep(t *testing.T) {
	e, p, _, disk := testRig(t)
	var order []int
	e.Spawn("first", func(pr *sim.Proc) { disk.Read(pr, 500*p.PagesPerCylinder) })
	for _, cyl := range []int{400, 600} {
		cyl := cyl
		e.Spawn("r", func(pr *sim.Proc) {
			pr.Hold(sim.Microsecond)
			disk.Read(pr, cyl*p.PagesPerCylinder)
			order = append(order, cyl)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Head lands at 500 sweeping up: 600 first, then reverse to 400.
	want := []int{600, 400}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("sweep order = %v, want %v", order, want)
		}
	}
}

func TestDiskWriteChargesCPUAndArm(t *testing.T) {
	e, _, cpu, disk := testRig(t)
	e.Spawn("p", func(pr *sim.Proc) {
		disk.Write(pr, 100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if disk.Writes() != 1 {
		t.Fatalf("writes = %d", disk.Writes())
	}
	if cpu.Instructions() != 4000 {
		t.Fatalf("cpu instructions = %d, want 4000 (FIFO transfer)", cpu.Instructions())
	}
}

func TestDiskOutOfRangePageErrors(t *testing.T) {
	e, p, _, disk := testRig(t)
	var readErr error
	e.Spawn("p", func(pr *sim.Proc) { readErr = disk.Read(pr, p.PagesPerDisk()) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if readErr == nil {
		t.Fatal("out-of-range page should error")
	}
	if disk.Reads() != 0 {
		t.Fatalf("rejected read was counted: reads = %d", disk.Reads())
	}
}

func TestDiskStatsReset(t *testing.T) {
	e, _, _, disk := testRig(t)
	e.Spawn("p", func(pr *sim.Proc) {
		disk.Read(pr, 10)
		disk.ResetStats()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if disk.Reads() != 0 || disk.SequentialHits() != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func buildNet(t *testing.T, nodes int) (*sim.Engine, Params, []*CPU, *Network) {
	t.Helper()
	e := sim.New()
	p := DefaultParams()
	cpus := make([]*CPU, nodes)
	for i := range cpus {
		cpus[i] = NewCPU(e, "cpu", p)
	}
	return e, p, cpus, NewNetwork(e, p, cpus)
}

func TestNetworkDeliversPayload(t *testing.T) {
	e, _, cpus, net := buildNet(t, 2)
	var got any
	e.Spawn("sender", func(pr *sim.Proc) {
		net.Send(pr, cpus[0], Message{From: 0, To: 1, Bytes: 100, Payload: "hello"})
	})
	e.Spawn("receiver", func(pr *sim.Proc) {
		m := net.Inbox(1).Get(pr)
		got = m.Payload
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
	if net.Sent(0) != 1 || net.BytesSent(0) != 100 {
		t.Fatalf("sent=%d bytes=%d", net.Sent(0), net.BytesSent(0))
	}
}

func TestNetworkSplitsOversizeMessages(t *testing.T) {
	e, p, cpus, net := buildNet(t, 2)
	payloads := 0
	fragments := 0
	e.Spawn("sender", func(pr *sim.Proc) {
		net.Send(pr, cpus[0], Message{From: 0, To: 1, Bytes: p.MaxPacket*2 + 100, Payload: "tail"})
	})
	e.Spawn("receiver", func(pr *sim.Proc) {
		for i := 0; i < 3; i++ {
			m := net.Inbox(1).Get(pr)
			fragments++
			if m.Payload != nil {
				payloads++
				if m.Payload != "tail" {
					t.Errorf("payload = %v", m.Payload)
				}
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fragments != 3 || payloads != 1 {
		t.Fatalf("fragments=%d payloads=%d", fragments, payloads)
	}
	if net.Sent(0) != 3 {
		t.Fatalf("sent = %d packets", net.Sent(0))
	}
}

func TestNetworkSenderPaysCPU(t *testing.T) {
	e, p, cpus, net := buildNet(t, 2)
	var elapsed sim.Duration
	e.Spawn("sender", func(pr *sim.Proc) {
		start := pr.Now()
		net.Send(pr, cpus[0], Message{From: 0, To: 1, Bytes: 100, Payload: 1})
		elapsed = sim.Duration(pr.Now() - start)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Sender pays MsgCost(100)=0.6ms + wire time.
	want := p.MsgCost(100) + p.WireTime(100)
	if elapsed != want {
		t.Fatalf("sender blocked %v, want %v", elapsed, want)
	}
}

func TestNetworkReceiverChargedAtTransferPriority(t *testing.T) {
	e, p, cpus, net := buildNet(t, 2)
	e.Spawn("sender", func(pr *sim.Proc) {
		net.Send(pr, cpus[0], Message{From: 0, To: 1, Bytes: 100, Payload: 1})
	})
	e.Spawn("receiver", func(pr *sim.Proc) {
		net.Inbox(1).Get(pr)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Receiver CPU charged RecvCostFraction * 0.6ms.
	wantInstr := int64(float64(p.MsgCost(100)) * p.RecvCostFraction / 1000 * p.MIPS)
	if got := cpus[1].Instructions(); got != wantInstr {
		t.Fatalf("receiver instructions = %d, want %d", got, wantInstr)
	}
}

func TestNetworkBadEndpointsPanic(t *testing.T) {
	e, _, cpus, net := buildNet(t, 2)
	e.Spawn("sender", func(pr *sim.Proc) {
		net.Send(pr, cpus[0], Message{From: 0, To: 5, Bytes: 100})
	})
	if err := e.Run(); err == nil {
		t.Fatal("bad destination should error")
	}
}

func TestNetworkZeroBytesPanics(t *testing.T) {
	e, _, cpus, net := buildNet(t, 2)
	e.Spawn("sender", func(pr *sim.Proc) {
		net.Send(pr, cpus[0], Message{From: 0, To: 1, Bytes: 0})
	})
	if err := e.Run(); err == nil {
		t.Fatal("zero-byte message should error")
	}
}
