package hw

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Message is one transmission on the interconnect. Payload semantics belong
// to the caller (the execution layer defines control and data message
// types); hw charges costs from Bytes alone.
type Message struct {
	From, To int
	Bytes    int
	Payload  any
}

// NIC is one node's network interface: a FCFS facility serializing outgoing
// transmissions plus a receive path that charges the node CPU for each
// arriving message before delivering it to the node's inbox.
type NIC struct {
	node  int
	out   *sim.Facility
	rx    *sim.Mailbox[Message] // wire -> interrupt handler
	inbox *sim.Mailbox[Message] // interrupt handler -> application

	sent, received int64
	bytesSent      int64
}

// Network is the fully connected interconnect of Figure 7. Node IDs are
// 0..n-1 in the order the CPUs were supplied; by convention the execution
// layer uses the last ID for the scheduler/host node.
type Network struct {
	eng    *sim.Engine
	params Params
	nics   []*NIC

	// Registry handles (nil-safe when metrics are disabled).
	packetsC *obs.Counter
	bytesC   *obs.Counter

	faults *netFaults // nil unless fault injection armed them
}

// netFaults holds the interconnect's fault-injection state: per-destination
// forced drop/duplication counters plus optional probabilistic drop and
// duplication driven by a dedicated rng stream. Faults act on whole logical
// messages at delivery time — the wire and CPU costs are already paid, the
// receiver just never sees (or sees twice) the payload.
type netFaults struct {
	src        *rng.Source
	dropP      float64
	dupP       float64
	drop, dup  []int // per-destination forced counts
	dropped    int64
	duplicated int64
}

// EnableFaults arms the interconnect fault hooks. src drives the
// probabilistic drop (dropP) and duplication (dupP) decisions; pass zero
// probabilities for a purely scheduled (DropNext/DupNext) setup.
func (n *Network) EnableFaults(src *rng.Source, dropP, dupP float64) {
	n.faults = &netFaults{
		src: src, dropP: dropP, dupP: dupP,
		drop: make([]int, len(n.nics)), dup: make([]int, len(n.nics)),
	}
}

// DropNext makes the next k logical messages addressed to node vanish after
// transmission. A no-op unless EnableFaults was called.
func (n *Network) DropNext(node, k int) {
	if n.faults != nil && node >= 0 && node < len(n.nics) {
		n.faults.drop[node] += k
	}
}

// DupNext makes the next k logical messages addressed to node arrive twice.
// A no-op unless EnableFaults was called.
func (n *Network) DupNext(node, k int) {
	if n.faults != nil && node >= 0 && node < len(n.nics) {
		n.faults.dup[node] += k
	}
}

// Dropped reports logical messages discarded by fault injection.
func (n *Network) Dropped() int64 {
	if n.faults == nil {
		return 0
	}
	return n.faults.dropped
}

// Duplicated reports logical messages delivered twice by fault injection.
func (n *Network) Duplicated() int64 {
	if n.faults == nil {
		return 0
	}
	return n.faults.duplicated
}

// deliveries decides how many copies of a logical message addressed to node
// the receiver sees: 1 normally, 0 for a drop, 2 for a duplication. Forced
// counters win over the probabilistic draws so scheduled specs stay exact.
func (f *netFaults) deliveries(node int) int {
	if f.drop[node] > 0 {
		f.drop[node]--
		f.dropped++
		return 0
	}
	if f.dup[node] > 0 {
		f.dup[node]--
		f.duplicated++
		return 2
	}
	if f.dropP > 0 && f.src.Float64() < f.dropP {
		f.dropped++
		return 0
	}
	if f.dupP > 0 && f.src.Float64() < f.dupP {
		f.duplicated++
		return 2
	}
	return 1
}

// NewNetwork wires one NIC per CPU. Each NIC gets a receive-interrupt
// process charging cpus[i] at transfer priority for arriving messages.
//
// A nil entry in cpus marks an uncharged endpoint: the paper's Figure 7
// gives CPUs to operator nodes only, while the Query Manager, Scheduler and
// System Catalog are stand-alone coordination modules. Messages sent from a
// nil-CPU endpoint delay the sending process for the protocol cost but
// contend for no processor, and arriving messages are delivered without a
// receive-interrupt charge.
func NewNetwork(e *sim.Engine, params Params, cpus []*CPU) *Network {
	n := &Network{eng: e, params: params, nics: make([]*NIC, len(cpus))}
	if reg := e.Metrics(); reg != nil {
		n.packetsC = reg.Counter("net.packets")
		n.bytesC = reg.Counter("net.bytes")
	}
	for i := range cpus {
		nic := &NIC{
			node:  i,
			out:   sim.NewFacility(e, fmt.Sprintf("nic%d.out", i)),
			rx:    sim.NewMailbox[Message](e, fmt.Sprintf("nic%d.rx", i)),
			inbox: sim.NewMailbox[Message](e, fmt.Sprintf("nic%d.inbox", i)),
		}
		nic.out.SetMeta(i, "net")
		n.nics[i] = nic
		cpu := cpus[i]
		e.Spawn(fmt.Sprintf("nic%d.recv", i), func(p *sim.Proc) {
			for {
				m := nic.rx.Get(p)
				if cpu != nil {
					// Receive-side protocol processing: a fraction of the
					// sender cost, charged at interrupt (transfer) priority.
					cost := sim.Duration(float64(n.params.MsgCost(m.Bytes)) * n.params.RecvCostFraction)
					cpu.ExecuteTime(p, cost, PrioTransfer)
				}
				nic.received++
				nic.inbox.Put(m)
			}
		})
	}
	return n
}

// Nodes reports the number of network endpoints.
func (n *Network) Nodes() int { return len(n.nics) }

// Send transmits msg, blocking the sending process for the sender-side CPU
// protocol cost and the NIC transmission time. Messages larger than
// MaxPacket are split into maximal packets, each paying full per-packet
// costs (Table 2 caps packets at 8 KB).
func (n *Network) Send(p *sim.Proc, cpu *CPU, msg Message) {
	if msg.To < 0 || msg.To >= len(n.nics) || msg.From < 0 || msg.From >= len(n.nics) {
		panic(fmt.Sprintf("hw: message endpoints out of range: %d -> %d", msg.From, msg.To))
	}
	if msg.Bytes <= 0 {
		panic(fmt.Sprintf("hw: message must have positive size, got %d", msg.Bytes))
	}
	src := n.nics[msg.From]
	remaining := msg.Bytes
	for remaining > 0 {
		chunk := remaining
		if chunk > n.params.MaxPacket {
			chunk = n.params.MaxPacket
		}
		remaining -= chunk
		last := remaining == 0
		// Sender protocol processing on the node CPU (or a pure delay for
		// an uncharged coordination endpoint), then transmission serialized
		// through the outgoing NIC.
		if cpu != nil {
			cpu.ExecuteTime(p, n.params.MsgCost(chunk), PrioNormal)
		} else {
			p.Hold(n.params.MsgCost(chunk))
		}
		src.out.Use(p, n.params.WireTime(chunk))
		src.sent++
		src.bytesSent += int64(chunk)
		n.packetsC.Inc()
		n.bytesC.Add(int64(chunk))
		if n.eng.Tracing() {
			n.eng.EmitNow(obs.TraceEvent{
				Node: msg.From, Kind: obs.KindInstant, Category: "net",
				Name:    fmt.Sprintf("packet %dB -> %d", chunk, msg.To),
				QueryID: p.QID(),
			})
		}
		if last {
			// Deliver the logical message with the final packet. Fault
			// injection acts here, on the whole logical message: a drop
			// loses the payload after the wire cost is paid, a duplication
			// hands the receiver the same payload twice.
			copies := 1
			if n.faults != nil {
				copies = n.faults.deliveries(msg.To)
			}
			for c := 0; c < copies; c++ {
				n.nics[msg.To].rx.Put(Message{From: msg.From, To: msg.To, Bytes: chunk, Payload: msg.Payload})
			}
		} else {
			n.nics[msg.To].rx.Put(Message{From: msg.From, To: msg.To, Bytes: chunk})
		}
	}
}

// Inbox returns the application-level inbox for a node. Messages appear here
// after receive-side CPU processing. Fragments of an oversize message arrive
// as separate entries; only the final fragment carries the payload.
func (n *Network) Inbox(node int) *sim.Mailbox[Message] { return n.nics[node].inbox }

// Sent reports packets transmitted by a node.
func (n *Network) Sent(node int) int64 { return n.nics[node].sent }

// Received reports messages delivered to a node's inbox path.
func (n *Network) Received(node int) int64 { return n.nics[node].received }

// BytesSent reports bytes transmitted by a node.
func (n *Network) BytesSent(node int) int64 { return n.nics[node].bytesSent }

// ResetStats clears per-node counters (post warm-up).
func (n *Network) ResetStats() {
	for _, nic := range n.nics {
		nic.sent, nic.received, nic.bytesSent = 0, 0, 0
		nic.out.ResetStats()
	}
	n.packetsC.Reset()
	n.bytesC.Reset()
}
