package hw

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ErrDiskFailed marks requests rejected or aborted by a fail-stop disk.
// It is permanent: the disk stays dead until Repair.
var ErrDiskFailed = errors.New("disk failed (fail-stop)")

// ErrDiskIO marks a transient I/O error: the request failed but the disk is
// healthy, so a retry of the same request may succeed.
var ErrDiskIO = errors.New("transient disk I/O error")

// Disk models one node's disk with an elevator (SCAN) scheduler [TP72], the
// policy the paper's Disk Manager uses. Physical pages are laid out on a
// cylinder geometry so that sequential and random accesses cost what they
// should: a request to the page immediately following the previous transfer
// pays transfer time only; any other request pays seek (settle +
// seekFactor*sqrt(distance)), rotational latency (uniform), and transfer.
//
// After the disk arm finishes a read, the page sits in the I/O channel's
// FIFO buffer; moving it to memory costs XferPageInstr CPU instructions at
// transfer priority, charged to the requesting process by Read. Writes pay
// the memory->FIFO transfer before the arm starts.
type Disk struct {
	eng    *sim.Engine
	name   string
	node   int // observability: which node's "disk" track spans land on
	params Params
	cpu    *CPU
	lat    *rng.Source

	queue   []diskReq
	nextSeq uint64
	busy    bool
	cur     diskReq  // request the arm is serving (valid while busy)
	curSpan sim.Span // trace interval of the in-flight transfer

	headCyl  int
	dirUp    bool
	lastPage int // last physical page transferred, -1 initially

	reads, writes, seqHits int64
	svc                    stats.Accumulator // per-request mechanism time, ms
	wait                   stats.Accumulator // queueing delay before the arm starts, ms
	util                   stats.TimeWeighted

	// Fault-injection state. All fields stay at their zero values unless a
	// fault.Injector drives them, so the healthy hot path costs one branch.
	failed     bool                // fail-stop: reject everything until Repair
	failNext   int                 // next N reads fail with a transient error
	degrade    float64             // latency multiplier; <=1 means nominal
	pendingErr map[*sim.Proc]error // error to deliver to a parked requester
	ioErrors   int64               // requests that completed with an error

	// Registry handles (nil-safe when metrics are disabled).
	waitH *obs.Histogram
	svcH  *obs.Histogram
}

type diskReq struct {
	p        *sim.Proc
	physPage int
	write    bool
	seq      uint64
	arrived  sim.Time
	qid      int64
	heat     *obs.FragHeat // fragment attribution for queue wait (nil = off)
}

// NewDisk creates the disk for a node. cpu receives the FIFO transfer
// charges; lat supplies rotational latencies.
func NewDisk(e *sim.Engine, name string, params Params, cpu *CPU, lat *rng.Source) *Disk {
	d := &Disk{
		eng: e, name: name, node: obs.NoNode, params: params, cpu: cpu, lat: lat,
		dirUp: true, lastPage: -1,
	}
	d.util.Set(float64(e.Now()), 0)
	if reg := e.Metrics(); reg != nil {
		d.waitH = reg.Histogram(name + ".wait_ms")
		d.svcH = reg.Histogram(name + ".service_ms")
	}
	return d
}

// SetNode records the node id for observability tracks.
func (d *Disk) SetNode(node int) { d.node = node }

// Read fetches the physical page into memory, blocking the caller for queue,
// mechanism, and FIFO-transfer time. An error means the page never reached
// memory: the disk is failed, the read was hit by an injected transient
// error, or the page address is out of range.
func (d *Disk) Read(p *sim.Proc, physPage int) error {
	return d.ReadHeat(p, physPage, nil)
}

// ReadHeat is Read with per-fragment heat attribution: the request's queue
// wait (arrival to arm start) is charged to h when the arm picks it up. A
// nil h is exactly Read.
func (d *Disk) ReadHeat(p *sim.Proc, physPage int, h *obs.FragHeat) error {
	if err := d.access(p, physPage, false, h); err != nil {
		return err
	}
	// Page is in the channel FIFO; move it to memory on the CPU.
	d.cpu.ExecuteTransfer(p, d.params.XferPageInstr)
	return nil
}

// Write stores the physical page from memory, blocking the caller until the
// arm completes (synchronous, durable write).
func (d *Disk) Write(p *sim.Proc, physPage int) error {
	// Move memory -> channel FIFO first, then run the arm.
	d.cpu.ExecuteTransfer(p, d.params.XferPageInstr)
	return d.access(p, physPage, true, nil)
}

func (d *Disk) access(p *sim.Proc, physPage int, write bool, h *obs.FragHeat) error {
	if physPage < 0 || physPage >= d.params.PagesPerDisk() {
		d.ioErrors++
		return fmt.Errorf("hw: %s: physical page %d out of range [0,%d)",
			d.name, physPage, d.params.PagesPerDisk())
	}
	if d.failed {
		d.ioErrors++
		return fmt.Errorf("hw: %s: %s p%d: %w", d.name, verb(write), physPage, ErrDiskFailed)
	}
	if !write && d.failNext > 0 {
		d.failNext--
		d.ioErrors++
		return fmt.Errorf("hw: %s: read p%d: %w", d.name, physPage, ErrDiskIO)
	}
	d.nextSeq++
	d.queue = append(d.queue, diskReq{
		p: p, physPage: physPage, write: write, seq: d.nextSeq,
		arrived: d.eng.Now(), qid: p.QID(), heat: h,
	})
	if !d.busy {
		d.busy = true
		d.util.Set(float64(d.eng.Now()), 1)
		d.startNext()
	}
	p.Park() // woken when our transfer completes (or the disk dies under us)
	if d.pendingErr != nil {
		if err, ok := d.pendingErr[p]; ok {
			delete(d.pendingErr, p)
			return err
		}
	}
	return nil
}

// failRequest records an error for a parked requester and wakes it; the
// requester finds the error in pendingErr when it resumes inside access.
func (d *Disk) failRequest(p *sim.Proc, err error) {
	if d.pendingErr == nil {
		d.pendingErr = make(map[*sim.Proc]error)
	}
	d.pendingErr[p] = err
	d.ioErrors++
	d.eng.Wake(p)
}

// Fail makes the disk fail-stop: every queued request errors out now, the
// in-flight transfer aborts when its arm event fires, and new requests are
// rejected until Repair. Failing a failed disk is a no-op.
func (d *Disk) Fail() {
	if d.failed {
		return
	}
	d.failed = true
	for _, req := range d.queue {
		d.failRequest(req.p, fmt.Errorf("hw: %s: %s p%d: %w",
			d.name, verb(req.write), req.physPage, ErrDiskFailed))
	}
	d.queue = d.queue[:0]
}

// Repair brings a failed disk back. Requests issued after Repair succeed;
// nothing lost during the outage is replayed.
func (d *Disk) Repair() { d.failed = false }

// Failed reports whether the disk is currently fail-stopped.
func (d *Disk) Failed() bool { return d.failed }

// FailNextReads arms n one-shot transient errors: the next n reads fail
// with ErrDiskIO without touching the arm. Calls accumulate.
func (d *Disk) FailNextReads(n int) {
	if n > 0 {
		d.failNext += n
	}
}

// SetLatencyFactor scales every subsequent request's mechanism time by f,
// modeling a degraded drive (vibration, remapped sectors, thermal
// throttling). f <= 1 restores nominal service.
func (d *Disk) SetLatencyFactor(f float64) {
	if f <= 1 {
		d.degrade = 0
		return
	}
	d.degrade = f
}

// startNext picks the next request per the elevator policy and runs it.
// Must only be called while busy with a non-empty queue. The in-flight
// request lives in d.cur and completion is scheduled through the engine's
// Handler path, so a transfer allocates no per-request closure.
func (d *Disk) startNext() {
	idx := d.pickElevator()
	req := d.queue[idx]
	d.queue = append(d.queue[:idx], d.queue[idx+1:]...)

	t := d.stretch(d.serviceTime(req.physPage))
	d.svc.Add(t.Milliseconds())
	d.svcH.Observe(t.Milliseconds())
	waitMS := sim.Duration(d.eng.Now() - req.arrived).Milliseconds()
	d.wait.Add(waitMS)
	d.waitH.Observe(waitMS)
	req.heat.DiskWait(int64(d.eng.Now() - req.arrived))
	d.headCyl = d.params.Cylinder(req.physPage)
	d.lastPage = req.physPage
	if req.write {
		d.writes++
	} else {
		d.reads++
	}
	d.cur = req
	d.curSpan = d.eng.StartSpan()
	d.eng.ScheduleHandler(t, d)
}

// HandleEvent completes the in-flight transfer: it emits the transfer's
// trace span, wakes the owner, and starts the next queued request. It
// implements the engine's Handler interface and is not meant to be called
// directly.
func (d *Disk) HandleEvent() {
	req := d.cur
	if d.curSpan.Active() {
		d.curSpan.End(d.node, "disk",
			fmt.Sprintf("%s p%d", verb(req.write), req.physPage), req.qid,
			fmt.Sprintf("cyl %d", d.params.Cylinder(req.physPage)))
	}
	if d.failed {
		// The disk fail-stopped while this transfer was in flight: the
		// requester gets an error instead of its page, and the queue was
		// already flushed by Fail.
		d.failRequest(req.p, fmt.Errorf("hw: %s: %s p%d: %w",
			d.name, verb(req.write), req.physPage, ErrDiskFailed))
		d.busy = false
		d.cur = diskReq{}
		d.util.Set(float64(d.eng.Now()), 0)
		return
	}
	d.eng.Wake(req.p)
	if len(d.queue) > 0 {
		d.startNext()
	} else {
		d.busy = false
		d.cur = diskReq{}
		d.util.Set(float64(d.eng.Now()), 0)
	}
}

func verb(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// pickElevator returns the index of the queued request the SCAN policy
// serves next: the nearest request at or beyond the head in the sweep
// direction; if none, the sweep reverses. Ties on cylinder break FIFO.
func (d *Disk) pickElevator() int {
	best := -1
	pick := func(up bool) int {
		chosen, chosenCyl := -1, 0
		for i, r := range d.queue {
			c := d.params.Cylinder(r.physPage)
			if up && c < d.headCyl || !up && c > d.headCyl {
				continue
			}
			better := chosen == -1
			if !better {
				if up {
					better = c < chosenCyl || (c == chosenCyl && r.seq < d.queue[chosen].seq)
				} else {
					better = c > chosenCyl || (c == chosenCyl && r.seq < d.queue[chosen].seq)
				}
			}
			if better {
				chosen, chosenCyl = i, c
			}
		}
		return chosen
	}
	best = pick(d.dirUp)
	if best == -1 {
		d.dirUp = !d.dirUp
		best = pick(d.dirUp)
	}
	if best == -1 {
		panic("hw: elevator found no request in a non-empty queue")
	}
	return best
}

// serviceTime computes the mechanism time for the page: sequential successor
// pages pay transfer only; everything else pays seek + rotational latency +
// transfer.
func (d *Disk) serviceTime(physPage int) sim.Duration {
	if d.lastPage >= 0 && physPage == d.lastPage+1 &&
		d.params.Cylinder(physPage) == d.params.Cylinder(d.lastPage) {
		d.seqHits++
		return d.params.PageTransferTime()
	}
	seek := d.params.SeekTime(abs(d.params.Cylinder(physPage) - d.headCyl))
	rot := sim.Milliseconds(d.lat.Uniform(0, d.params.MaxLatencyMS))
	return seek + rot + d.params.PageTransferTime()
}

// stretch applies the injected latency-degradation factor, if any.
func (d *Disk) stretch(t sim.Duration) sim.Duration {
	if d.degrade > 1 {
		return sim.Duration(float64(t) * d.degrade)
	}
	return t
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Reads reports completed read transfers.
func (d *Disk) Reads() int64 { return d.reads }

// Writes reports completed write transfers.
func (d *Disk) Writes() int64 { return d.writes }

// SequentialHits reports transfers that were detected as sequential.
func (d *Disk) SequentialHits() int64 { return d.seqHits }

// IOErrors reports requests that completed with an error (injected
// transients, fail-stop rejections and aborts, bad page addresses).
func (d *Disk) IOErrors() int64 { return d.ioErrors }

// QueueLen reports the number of waiting requests.
func (d *Disk) QueueLen() int { return len(d.queue) }

// Utilization reports the fraction of time the arm was busy.
func (d *Disk) Utilization() float64 { return d.util.Mean(float64(d.eng.Now())) }

// BusySeconds reports the arm's cumulative busy time in simulated seconds
// since the last stats reset (the windowed-utilization probe's raw
// reading).
func (d *Disk) BusySeconds() float64 { return d.util.Integral(float64(d.eng.Now())) / 1e9 }

// MeanServiceMS reports the mean per-request mechanism time, ms.
func (d *Disk) MeanServiceMS() float64 { return d.svc.Mean() }

// MeanWaitMS reports the mean queueing delay before the arm starts, ms.
func (d *Disk) MeanWaitMS() float64 { return d.wait.Mean() }

// ResetStats restarts counters and utilization accounting (post warm-up).
func (d *Disk) ResetStats() {
	d.reads, d.writes, d.seqHits = 0, 0, 0
	d.svc.Reset()
	d.wait.Reset()
	d.waitH.Reset()
	d.svcH.Reset()
	d.util.ResetAt(float64(d.eng.Now()))
}
