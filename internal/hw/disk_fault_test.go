package hw

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// Fault-injection behaviors of the disk model: fail-stop rejection and
// in-flight abort, transient read errors, and latency degradation. These are
// the surfaces fault.Injector drives (DESIGN.md §8).

func TestDiskFailStopRejectsUntilRepair(t *testing.T) {
	e, _, _, disk := testRig(t)
	var errs []error
	e.Spawn("p", func(pr *sim.Proc) {
		errs = append(errs, disk.Read(pr, 10))
		disk.Fail()
		errs = append(errs, disk.Read(pr, 11))
		errs = append(errs, disk.Write(pr, 12))
		disk.Repair()
		errs = append(errs, disk.Read(pr, 13))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil {
		t.Fatalf("healthy read failed: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrDiskFailed) || !errors.Is(errs[2], ErrDiskFailed) {
		t.Fatalf("fail-stopped disk served requests: read=%v write=%v", errs[1], errs[2])
	}
	if errs[3] != nil {
		t.Fatalf("repaired disk rejected a read: %v", errs[3])
	}
	if disk.Reads() != 2 {
		t.Fatalf("reads = %d, want 2 (rejected requests must not count)", disk.Reads())
	}
}

// Fail while requests are queued behind an in-service one: everyone parked
// on the disk gets ErrDiskFailed instead of blocking forever.
func TestDiskFailAbortsQueuedAndInFlight(t *testing.T) {
	e, p, _, disk := testRig(t)
	var errs [3]error
	e.Spawn("inflight", func(pr *sim.Proc) { errs[0] = disk.Read(pr, 500*p.PagesPerCylinder) })
	for i := 1; i <= 2; i++ {
		i := i
		e.Spawn("queued", func(pr *sim.Proc) {
			pr.Hold(sim.Microsecond)
			errs[i] = disk.Read(pr, i)
		})
	}
	e.Spawn("killer", func(pr *sim.Proc) {
		pr.Hold(2 * sim.Microsecond) // all three requests are on the disk now
		disk.Fail()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if !errors.Is(err, ErrDiskFailed) {
			t.Fatalf("request %d: err = %v, want ErrDiskFailed", i, err)
		}
	}
}

func TestDiskFailNextReadsTransient(t *testing.T) {
	e, _, _, disk := testRig(t)
	disk.FailNextReads(2)
	var errs []error
	e.Spawn("p", func(pr *sim.Proc) {
		for i := 0; i < 3; i++ {
			errs = append(errs, disk.Read(pr, 10+i))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errs[0], ErrDiskIO) || !errors.Is(errs[1], ErrDiskIO) {
		t.Fatalf("armed transients did not fire: %v, %v", errs[0], errs[1])
	}
	if errs[2] != nil {
		t.Fatalf("disk did not recover after the burst: %v", errs[2])
	}
	if disk.IOErrors() != 2 {
		t.Fatalf("io errors = %d, want 2", disk.IOErrors())
	}
	if disk.Reads() != 1 {
		t.Fatalf("reads = %d, want 1 (transient failures must not count)", disk.Reads())
	}
}

func TestDiskLatencyFactorStretchesService(t *testing.T) {
	timeRead := func(factor float64) sim.Duration {
		e, _, _, disk := testRig(t)
		disk.SetLatencyFactor(factor)
		var elapsed sim.Duration
		e.Spawn("p", func(pr *sim.Proc) {
			start := pr.Now()
			if err := disk.Read(pr, 0); err != nil {
				t.Fatal(err)
			}
			elapsed = sim.Duration(pr.Now() - start)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	nominal := timeRead(1)
	degraded := timeRead(4)
	if degraded <= nominal {
		t.Fatalf("degraded read (%v) not slower than nominal (%v)", degraded, nominal)
	}
	if restored := timeRead(0.5); restored != nominal {
		// Factors <= 1 restore nominal service; they never speed the disk up.
		t.Fatalf("factor 0.5 read %v, want nominal %v", restored, nominal)
	}
}
