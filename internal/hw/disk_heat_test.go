package hw

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Two concurrent reads through one disk: the first is served immediately
// (zero queue wait), the second waits for the arm. The wait must land on
// the second request's fragment accumulator, in simulated nanoseconds.
func TestDiskReadHeatQueueWaitAttribution(t *testing.T) {
	e, _, _, disk := testRig(t)
	hm := obs.NewHeatMap()
	first := hm.Frag("r", 0, obs.FragPrimary)
	second := hm.Frag("r", 1, obs.FragPrimary)
	e.Spawn("a", func(p *sim.Proc) {
		if err := disk.ReadHeat(p, 10, first); err != nil {
			t.Error(err)
		}
	})
	e.Spawn("b", func(p *sim.Proc) {
		if err := disk.ReadHeat(p, 5000, second); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if first.QueueWaitNS != 0 {
		t.Errorf("first request waited %dns, want 0 (disk was idle)", first.QueueWaitNS)
	}
	if second.QueueWaitNS <= 0 {
		t.Errorf("second request waited %dns, want > 0 (queued behind the first)", second.QueueWaitNS)
	}
	// The wait histogram saw both requests, in milliseconds.
	if first.Wait.N() != 1 || second.Wait.N() != 1 {
		t.Errorf("wait samples = %d/%d, want 1/1", first.Wait.N(), second.Wait.N())
	}
	if got, want := second.Wait.Max(), float64(second.QueueWaitNS)/1e6; got != want {
		t.Errorf("histogram max = %gms, want %gms", got, want)
	}
	if disk.Reads() != 2 {
		t.Errorf("reads = %d", disk.Reads())
	}
}

// Read must stay exactly ReadHeat with a nil handle: same schedule, same
// counters, no heat side effects.
func TestDiskReadHeatNilMatchesRead(t *testing.T) {
	runOnce := func(heat *obs.FragHeat) sim.Time {
		e := sim.New()
		p := DefaultParams()
		cpu := NewCPU(e, "cpu0", p)
		disk := NewDisk(e, "disk0", p, cpu, rng.NewFactory(1).Stream("lat"))
		var done sim.Time
		e.Spawn("p", func(pr *sim.Proc) {
			if err := disk.ReadHeat(pr, 42, heat); err != nil {
				t.Error(err)
			}
			done = pr.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	plain := runOnce(nil)
	h := obs.NewHeatMap().Frag("r", 0, obs.FragPrimary)
	heated := runOnce(h)
	if plain != heated {
		t.Errorf("heat attribution changed the schedule: %v vs %v", plain, heated)
	}
	if h.Wait.N() != 1 {
		t.Errorf("wait samples = %d, want 1", h.Wait.N())
	}
}
