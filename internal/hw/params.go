// Package hw models the hardware of one Gamma node — CPU, disk, and network
// interface — plus the fully connected interconnect, exactly as laid out in
// Figure 7 and Table 2 of the paper. Components are simulation processes and
// facilities on an internal/sim engine.
package hw

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Params holds the hardware parameters. The fields and defaults mirror the
// paper's Table 2; fields marked "derived" are reconstructions documented in
// DESIGN.md §2 because the paper does not publish them.
type Params struct {
	// Disk parameters (Table 2).
	AvgSettleMS   float64 // average settle time, ms
	MaxLatencyMS  float64 // rotational latency ~ Uniform(0, MaxLatencyMS), ms
	TransferMBps  float64 // sustained transfer rate, MB/s (MB = 2^20 bytes)
	SeekFactorMS  float64 // seek time = SeekFactorMS * sqrt(cylinder distance), ms
	PageSize      int     // disk page size, bytes
	XferPageInstr int     // CPU instructions to move a page SCSI FIFO <-> memory

	// Disk geometry (derived; see DESIGN.md §2.6).
	Cylinders        int // cylinders per disk
	PagesPerCylinder int // pages per cylinder

	// Network parameters (Table 2).
	MaxPacket  int     // maximum packet size, bytes
	Send100BMS float64 // CPU cost to send a 100-byte message, ms
	Send8KBMS  float64 // CPU cost to send an 8192-byte message, ms

	// Network parameters (derived).
	RecvCostFraction float64 // receiver CPU charge as a fraction of sender cost
	WireMBps         float64 // link transmission rate, MB/s (NIC occupancy)

	// CPU parameters (Table 2).
	MIPS           float64 // instructions per second / 1e6
	ReadPageInstr  int     // CPU instructions to process a read 8K page
	WritePageInstr int     // CPU instructions to process a written 8K page

	// Miscellaneous (Table 2).
	TupleSize       int // bytes per tuple
	TuplesPerPacket int // tuples per network packet
	TuplesPerPage   int // tuples per disk page
	NumProcessors   int // processors in the system
}

// DefaultParams returns the paper's Table 2 configuration for the simulated
// 32-processor Gamma machine, with derived parameters per DESIGN.md.
func DefaultParams() Params {
	return Params{
		AvgSettleMS:      2.0,
		MaxLatencyMS:     16.68,
		TransferMBps:     1.8,
		SeekFactorMS:     0.78,
		PageSize:         8192,
		XferPageInstr:    4000,
		Cylinders:        1000,
		PagesPerCylinder: 48,
		MaxPacket:        8192,
		Send100BMS:       0.6,
		Send8KBMS:        5.6,
		RecvCostFraction: 0.5,
		WireMBps:         2.8,
		MIPS:             3.0,
		ReadPageInstr:    14600,
		WritePageInstr:   28000,
		TupleSize:        208,
		TuplesPerPacket:  36,
		TuplesPerPage:    36,
		NumProcessors:    32,
	}
}

// Validate reports an error for configurations the model cannot run.
func (p Params) Validate() error {
	switch {
	case p.MIPS <= 0:
		return fmt.Errorf("hw: MIPS must be positive, got %g", p.MIPS)
	case p.PageSize <= 0:
		return fmt.Errorf("hw: PageSize must be positive, got %d", p.PageSize)
	case p.TransferMBps <= 0:
		return fmt.Errorf("hw: TransferMBps must be positive, got %g", p.TransferMBps)
	case p.WireMBps <= 0:
		return fmt.Errorf("hw: WireMBps must be positive, got %g", p.WireMBps)
	case p.Cylinders <= 0 || p.PagesPerCylinder <= 0:
		return fmt.Errorf("hw: disk geometry must be positive (%d cyl, %d pages/cyl)",
			p.Cylinders, p.PagesPerCylinder)
	case p.MaxPacket < p.TupleSize:
		return fmt.Errorf("hw: MaxPacket %d smaller than a tuple (%d)", p.MaxPacket, p.TupleSize)
	case p.TuplesPerPage <= 0 || p.TuplesPerPacket <= 0:
		return fmt.Errorf("hw: tuples per page/packet must be positive")
	case p.NumProcessors <= 0:
		return fmt.Errorf("hw: NumProcessors must be positive, got %d", p.NumProcessors)
	case p.Send100BMS <= 0 || p.Send8KBMS < p.Send100BMS:
		return fmt.Errorf("hw: message costs must satisfy 0 < Send100BMS <= Send8KBMS")
	}
	return nil
}

// InstrTime converts an instruction count to simulated time at this CPU's
// MIPS rating.
func (p Params) InstrTime(instr int) sim.Duration {
	return sim.Duration(float64(instr)/p.MIPS*1000 + 0.5) // instr/MIPS µs -> ns
}

// MsgCost returns the CPU cost of sending a message of the given size,
// linearly interpolated between the Table 2 anchor points (0.6 ms at 100
// bytes, 5.6 ms at 8192 bytes) and extrapolated below 100 bytes with the
// same slope, floored at a quarter of the 100-byte cost.
func (p Params) MsgCost(bytes int) sim.Duration {
	slope := (p.Send8KBMS - p.Send100BMS) / float64(p.MaxPacket-100)
	ms := p.Send100BMS + slope*float64(bytes-100)
	if min := p.Send100BMS / 4; ms < min {
		ms = min
	}
	return sim.Milliseconds(ms)
}

// WireTime returns the NIC transmission time for a message of the given size.
func (p Params) WireTime(bytes int) sim.Duration {
	return sim.Duration(float64(bytes)/(p.WireMBps*1024*1024)*1e9 + 0.5)
}

// PageTransferTime returns the disk-arm transfer time for one page.
func (p Params) PageTransferTime() sim.Duration {
	return sim.Duration(float64(p.PageSize)/(p.TransferMBps*1024*1024)*1e9 + 0.5)
}

// SeekTime returns the arm movement time across dist cylinders, including
// head settle; zero for dist == 0 (no arm movement).
func (p Params) SeekTime(dist int) sim.Duration {
	if dist <= 0 {
		return 0
	}
	ms := p.AvgSettleMS + p.SeekFactorMS*math.Sqrt(float64(dist))
	return sim.Milliseconds(ms)
}

// PagesPerDisk reports the disk capacity in pages.
func (p Params) PagesPerDisk() int { return p.Cylinders * p.PagesPerCylinder }

// Cylinder maps a physical page number to its cylinder.
func (p Params) Cylinder(physPage int) int { return physPage / p.PagesPerCylinder }

// TupleBytes returns the wire size of n tuples.
func (p Params) TupleBytes(n int) int { return n * p.TupleSize }

// PagesForTuples returns the number of data pages n contiguous tuples occupy.
func (p Params) PagesForTuples(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.TuplesPerPage - 1) / p.TuplesPerPage
}

// PacketsForTuples returns the number of network packets needed to ship n
// tuples at TuplesPerPacket per packet; zero tuples still need zero packets.
func (p Params) PacketsForTuples(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.TuplesPerPacket - 1) / p.TuplesPerPacket
}
