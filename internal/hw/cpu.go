package hw

import (
	"fmt"

	"repro/internal/sim"
)

// Priority classes for CPU requests. The paper's CPU enforces FCFS
// non-preemptive scheduling on all requests except byte transfers between
// the disk I/O channel's FIFO buffer and memory, which interrupt the CPU.
// We approximate interrupts with a head-of-line priority class (DESIGN.md
// §2.5): transfers are served before any queued operator work but do not
// preempt the request currently in service.
const (
	PrioNormal   = 0 // operator work: predicate evaluation, page processing
	PrioTransfer = 1 // disk FIFO <-> memory byte transfers, network interrupts
)

// CPU is one node's processor: a 3 MIPS FCFS facility with a transfer
// priority class.
type CPU struct {
	params Params
	fac    *sim.Facility
	instr  int64 // total instructions executed (all classes)
}

// NewCPU creates the CPU for the named node.
func NewCPU(e *sim.Engine, name string, params Params) *CPU {
	return &CPU{params: params, fac: sim.NewFacility(e, name)}
}

// SetNode records the node id for observability: CPU service spans land on
// that node's "cpu" track.
func (c *CPU) SetNode(node int) { c.fac.SetMeta(node, "cpu") }

// Execute charges instr instructions at normal priority, blocking the caller
// through queueing and service.
func (c *CPU) Execute(p *sim.Proc, instr int) {
	c.run(p, instr, PrioNormal)
}

// ExecuteTransfer charges instr instructions at transfer (head-of-line)
// priority, modeling the paper's interrupt-driven byte transfers.
func (c *CPU) ExecuteTransfer(p *sim.Proc, instr int) {
	c.run(p, instr, PrioTransfer)
}

// ExecuteTime charges a precomputed service duration at the given priority.
// It exists for costs Table 2 expresses directly in time (message protocol
// processing) rather than instructions.
func (c *CPU) ExecuteTime(p *sim.Proc, d sim.Duration, prio int) {
	if d == 0 {
		return
	}
	c.instr += int64(float64(d) / 1000 * c.params.MIPS)
	c.fac.UsePriority(p, d, prio)
}

func (c *CPU) run(p *sim.Proc, instr, prio int) {
	if instr < 0 {
		panic(fmt.Sprintf("hw: negative instruction count %d on %s", instr, c.fac.Name()))
	}
	if instr == 0 {
		return
	}
	c.instr += int64(instr)
	c.fac.UsePriority(p, c.params.InstrTime(instr), prio)
}

// Utilization reports the fraction of time the CPU has been busy.
func (c *CPU) Utilization() float64 { return c.fac.Utilization() }

// BusySeconds reports cumulative busy time in simulated seconds since the
// last stats reset (the windowed-utilization probe's raw reading).
func (c *CPU) BusySeconds() float64 { return c.fac.BusySeconds() }

// QueueLen reports the number of requests waiting for the CPU.
func (c *CPU) QueueLen() int { return c.fac.QueueLen() }

// MeanWaitMS reports the mean CPU queueing delay in milliseconds.
func (c *CPU) MeanWaitMS() float64 { return c.fac.MeanWaitMS() }

// Instructions reports the total instructions executed.
func (c *CPU) Instructions() int64 { return c.instr }

// ResetStats restarts utilization accounting (post warm-up).
func (c *CPU) ResetStats() {
	c.fac.ResetStats()
	c.instr = 0
}
