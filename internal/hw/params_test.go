package hw

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestDefaultConfigMatchesPaperTable2 pins every parameter the paper's
// Table 2 publishes. If a default drifts, this test names the parameter.
func TestDefaultConfigMatchesPaperTable2(t *testing.T) {
	p := DefaultParams()
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"AvgSettleMS", p.AvgSettleMS, 2.0},
		{"MaxLatencyMS", p.MaxLatencyMS, 16.68},
		{"TransferMBps", p.TransferMBps, 1.8},
		{"SeekFactorMS", p.SeekFactorMS, 0.78},
		{"PageSize", float64(p.PageSize), 8192},
		{"XferPageInstr", float64(p.XferPageInstr), 4000},
		{"MaxPacket", float64(p.MaxPacket), 8192},
		{"Send100BMS", p.Send100BMS, 0.6},
		{"Send8KBMS", p.Send8KBMS, 5.6},
		{"MIPS", p.MIPS, 3.0},
		{"ReadPageInstr", float64(p.ReadPageInstr), 14600},
		{"WritePageInstr", float64(p.WritePageInstr), 28000},
		{"TupleSize", float64(p.TupleSize), 208},
		{"TuplesPerPacket", float64(p.TuplesPerPacket), 36},
		{"TuplesPerPage", float64(p.TuplesPerPage), 36},
		{"NumProcessors", float64(p.NumProcessors), 32},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("Table 2 parameter %s = %g, want %g", c.name, c.got, c.want)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestInstrTime(t *testing.T) {
	p := DefaultParams()
	// 3,000,000 instructions at 3 MIPS = 1 second.
	if got := p.InstrTime(3_000_000); got != sim.Second {
		t.Fatalf("3M instr = %v, want 1s", got)
	}
	// Read page: 14600 instr = 4866.67us.
	got := p.InstrTime(14600).Milliseconds()
	if math.Abs(got-4.8667) > 0.001 {
		t.Fatalf("ReadPage CPU = %gms", got)
	}
}

func TestMsgCostAnchors(t *testing.T) {
	p := DefaultParams()
	if got := p.MsgCost(100).Milliseconds(); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("100B message = %gms, want 0.6", got)
	}
	if got := p.MsgCost(8192).Milliseconds(); math.Abs(got-5.6) > 1e-9 {
		t.Fatalf("8192B message = %gms, want 5.6", got)
	}
	mid := p.MsgCost(4146).Milliseconds() // midpoint
	if math.Abs(mid-3.1) > 0.01 {
		t.Fatalf("midpoint message = %gms, want ~3.1", mid)
	}
}

func TestMsgCostMonotoneAndFloored(t *testing.T) {
	p := DefaultParams()
	prev := sim.Duration(0)
	for b := 1; b <= p.MaxPacket; b += 97 {
		c := p.MsgCost(b)
		if c < prev {
			t.Fatalf("MsgCost not monotone at %dB", b)
		}
		if c <= 0 {
			t.Fatalf("MsgCost(%d) = %v", b, c)
		}
		prev = c
	}
}

func TestPageTransferTime(t *testing.T) {
	p := DefaultParams()
	// 8192 bytes at 1.8 MB/s = 4.34 ms.
	got := p.PageTransferTime().Milliseconds()
	if math.Abs(got-4.34) > 0.01 {
		t.Fatalf("page transfer = %gms, want ~4.34", got)
	}
}

func TestSeekTime(t *testing.T) {
	p := DefaultParams()
	if p.SeekTime(0) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
	// settle 2ms + 0.78*sqrt(100) = 9.8ms
	got := p.SeekTime(100).Milliseconds()
	if math.Abs(got-9.8) > 0.01 {
		t.Fatalf("seek(100) = %gms", got)
	}
	if p.SeekTime(1) >= p.SeekTime(400) {
		t.Fatal("seek not increasing with distance")
	}
}

func TestGeometryHelpers(t *testing.T) {
	p := DefaultParams()
	if p.PagesPerDisk() != p.Cylinders*p.PagesPerCylinder {
		t.Fatal("PagesPerDisk inconsistent")
	}
	if p.Cylinder(0) != 0 || p.Cylinder(p.PagesPerCylinder) != 1 {
		t.Fatal("Cylinder mapping wrong")
	}
}

func TestTupleHelpers(t *testing.T) {
	p := DefaultParams()
	if p.TupleBytes(3) != 624 {
		t.Fatalf("TupleBytes(3) = %d", p.TupleBytes(3))
	}
	cases := []struct{ n, pages, packets int }{
		{0, 0, 0}, {1, 1, 1}, {36, 1, 1}, {37, 2, 2}, {300, 9, 9}, {-5, 0, 0},
	}
	for _, c := range cases {
		if got := p.PagesForTuples(c.n); got != c.pages {
			t.Errorf("PagesForTuples(%d) = %d, want %d", c.n, got, c.pages)
		}
		if got := p.PacketsForTuples(c.n); got != c.packets {
			t.Errorf("PacketsForTuples(%d) = %d, want %d", c.n, got, c.packets)
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.MIPS = 0 },
		func(p *Params) { p.PageSize = -1 },
		func(p *Params) { p.TransferMBps = 0 },
		func(p *Params) { p.WireMBps = 0 },
		func(p *Params) { p.Cylinders = 0 },
		func(p *Params) { p.MaxPacket = 10 },
		func(p *Params) { p.TuplesPerPage = 0 },
		func(p *Params) { p.NumProcessors = 0 },
		func(p *Params) { p.Send8KBMS = 0.1 },
	}
	for i, mut := range bad {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a bad config", i)
		}
	}
}
