// Package plan defines the declarative query-plan tree that the execution
// layer consumes: an explicit operator tree (Scan / IndexScan / Filter /
// Join / Aggregate) with builders, a visitor, structural validation, and a
// deterministic explain form. It replaces the ad-hoc predicate dispatch of
// the original Host.Execute API: a query is a value that can be inspected,
// rewritten (predicates pushed into scans, same-attribute filters
// intersected) and — crucially for shared scans — compared against other
// in-flight queries to detect overlapping work.
//
// The package sits below exec and depends only on core and storage, so both
// the execution layer and the workload/experiment layers can build and
// inspect plans without import cycles.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/storage"
)

// Access selects the access method a scan uses. The execution layer's
// AccessKind is an alias of this type: the plan layer owns the access-method
// vocabulary.
type Access int

// Access methods of the workload (Section 6) plus the fallback scan. The
// first four values predate the plan layer and are wire/trace-compatible
// with the old exec.AccessKind constants.
const (
	AccessClustered    Access = iota // clustered B+-tree range scan
	AccessNonClustered               // non-clustered B+-tree + tuple fetches
	AccessTIDFetch                   // direct fetch by TID (BERD step two)
	AccessSeqScan                    // full sequential scan (no usable index)
	// AccessAuto defers the choice to the executor's per-relation policy
	// (clustered when the predicate hits the clustered attribute, the
	// workload's chooser otherwise). It lets plan builders stay ignorant of
	// physical design.
	AccessAuto
)

func (k Access) String() string {
	switch k {
	case AccessClustered:
		return "clustered"
	case AccessNonClustered:
		return "non-clustered"
	case AccessTIDFetch:
		return "tid-fetch"
	case AccessSeqScan:
		return "seq-scan"
	case AccessAuto:
		return "auto"
	default:
		return "unknown"
	}
}

// AggFn selects the aggregate function of an Aggregate node. The execution
// layer's AggKind is an alias of this type.
type AggFn int

// Supported aggregates (AVG is SUM/COUNT at the coordinator).
const (
	AggCount AggFn = iota
	AggSum
	AggMin
	AggMax
)

func (k AggFn) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "unknown"
	}
}

// Kind discriminates plan-tree nodes.
type Kind int

// Node kinds.
const (
	KindScan      Kind = iota // leaf: read a relation (optionally pre-filtered)
	KindIndexScan             // leaf: index-driven selection on a relation
	KindFilter                // unary: restrict the input by a predicate
	KindJoin                  // binary: equi-join two inputs on an attribute
	KindAggregate             // unary: aggregate the input
)

func (k Kind) String() string {
	switch k {
	case KindScan:
		return "Scan"
	case KindIndexScan:
		return "IndexScan"
	case KindFilter:
		return "Filter"
	case KindJoin:
		return "Join"
	case KindAggregate:
		return "Aggregate"
	default:
		return "unknown"
	}
}

// Node is one node of a plan tree. Which fields are meaningful depends on
// Kind; Validate checks the structural rules. Nodes are plain values: build
// them with the New* constructors, share subtrees freely (the executor never
// mutates a plan), and compare or hash their String() form for plan-level
// caching.
type Node struct {
	Kind Kind

	// Relation names the scanned relation (Scan, IndexScan).
	Relation string
	// Pred is the node's predicate (IndexScan, Filter, and Scan when
	// HasPred is set — a predicate pushed into a sequential scan).
	Pred core.Predicate
	// HasPred distinguishes "no predicate" from the zero predicate, whose
	// Attr 0 names a real Wisconsin attribute.
	HasPred bool
	// Access is the scan's access method (IndexScan; AccessAuto defers the
	// choice to the executor).
	Access Access
	// Fn is the aggregate function (Aggregate).
	Fn AggFn
	// Attr is the equi-join attribute (Join) or the aggregated attribute
	// (Aggregate; ignored for AggCount).
	Attr int

	// Inputs are the node's children: none for leaves, one for
	// Filter/Aggregate, two (build, probe) for Join.
	Inputs []*Node
}

// NewScan builds a full-relation sequential scan.
func NewScan(relation string) *Node {
	return &Node{Kind: KindScan, Relation: relation, Access: AccessSeqScan}
}

// NewScanWhere builds a sequential scan with the predicate pushed down: the
// relation is read in full, tuples are qualified on the fly.
func NewScanWhere(relation string, pred core.Predicate) *Node {
	return &Node{Kind: KindScan, Relation: relation, Pred: pred, HasPred: true,
		Access: AccessSeqScan}
}

// NewIndexScan builds an index-driven selection. AccessAuto lets the
// executor pick the index for the predicate's attribute.
func NewIndexScan(relation string, pred core.Predicate, access Access) *Node {
	return &Node{Kind: KindIndexScan, Relation: relation, Pred: pred, HasPred: true,
		Access: access}
}

// NewFilter restricts the input by a predicate.
func NewFilter(pred core.Predicate, input *Node) *Node {
	return &Node{Kind: KindFilter, Pred: pred, HasPred: true, Inputs: []*Node{input}}
}

// NewJoin equi-joins build (left) and probe (right) on attr.
func NewJoin(attr int, build, probe *Node) *Node {
	return &Node{Kind: KindJoin, Attr: attr, Inputs: []*Node{build, probe}}
}

// NewAggregate aggregates the input with fn over attr (attr is ignored for
// AggCount).
func NewAggregate(fn AggFn, attr int, input *Node) *Node {
	return &Node{Kind: KindAggregate, Fn: fn, Attr: attr, Inputs: []*Node{input}}
}

// Select builds the workload's canonical single-relation selection: an
// IndexScan unless the access method is a sequential scan, in which case the
// predicate is pushed into a Scan leaf.
func Select(relation string, pred core.Predicate, access Access) *Node {
	if access == AccessSeqScan {
		return NewScanWhere(relation, pred)
	}
	return NewIndexScan(relation, pred, access)
}

// Visitor is the plan-tree visitor. Walk dispatches on node kind; returning
// a non-nil error stops the walk.
type Visitor interface {
	VisitScan(n *Node) error
	VisitIndexScan(n *Node) error
	VisitFilter(n *Node) error
	VisitJoin(n *Node) error
	VisitAggregate(n *Node) error
}

// Walk traverses the tree depth-first, children before their parent (inputs
// left to right), stopping at the first error.
func Walk(n *Node, v Visitor) error {
	if n == nil {
		return fmt.Errorf("plan: walk of nil node")
	}
	for _, in := range n.Inputs {
		if err := Walk(in, v); err != nil {
			return err
		}
	}
	switch n.Kind {
	case KindScan:
		return v.VisitScan(n)
	case KindIndexScan:
		return v.VisitIndexScan(n)
	case KindFilter:
		return v.VisitFilter(n)
	case KindJoin:
		return v.VisitJoin(n)
	case KindAggregate:
		return v.VisitAggregate(n)
	default:
		return fmt.Errorf("plan: walk of unknown node kind %d", int(n.Kind))
	}
}

// Validate checks the tree's structural rules: leaf/arity constraints,
// named relations on scans, predicates where required.
func (n *Node) Validate() error {
	if n == nil {
		return fmt.Errorf("plan: nil node")
	}
	for _, in := range n.Inputs {
		if err := in.Validate(); err != nil {
			return err
		}
	}
	arity := map[Kind]int{KindScan: 0, KindIndexScan: 0, KindFilter: 1,
		KindJoin: 2, KindAggregate: 1}
	want, known := arity[n.Kind]
	if !known {
		return fmt.Errorf("plan: unknown node kind %d", int(n.Kind))
	}
	if len(n.Inputs) != want {
		return fmt.Errorf("plan: %s node has %d inputs, want %d", n.Kind, len(n.Inputs), want)
	}
	switch n.Kind {
	case KindScan, KindIndexScan:
		if n.Relation == "" {
			return fmt.Errorf("plan: %s node names no relation", n.Kind)
		}
		if n.Kind == KindIndexScan && !n.HasPred {
			return fmt.Errorf("plan: IndexScan node has no predicate")
		}
		if n.Kind == KindIndexScan && n.Access == AccessSeqScan {
			return fmt.Errorf("plan: IndexScan node with seq-scan access; use Scan")
		}
	case KindFilter:
		if !n.HasPred {
			return fmt.Errorf("plan: Filter node has no predicate")
		}
	}
	return nil
}

// label renders one node's own line of the explain form.
func (n *Node) label() string {
	switch n.Kind {
	case KindScan:
		if n.HasPred {
			return fmt.Sprintf("Scan(%s, %s)", n.Relation, n.Pred)
		}
		return fmt.Sprintf("Scan(%s)", n.Relation)
	case KindIndexScan:
		return fmt.Sprintf("IndexScan(%s, %s, %s)", n.Relation, n.Pred, n.Access)
	case KindFilter:
		return fmt.Sprintf("Filter(%s)", n.Pred)
	case KindJoin:
		return fmt.Sprintf("Join(%s)", storage.AttrName(n.Attr))
	case KindAggregate:
		if n.Fn == AggCount {
			return "Aggregate(count(*))"
		}
		return fmt.Sprintf("Aggregate(%s(%s))", n.Fn, storage.AttrName(n.Attr))
	default:
		return fmt.Sprintf("Unknown(kind=%d)", int(n.Kind))
	}
}

// String renders the tree on one deterministic line, parents wrapping their
// children: Aggregate(count(*))[Filter(...)[Scan(wisc)]].
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	var b strings.Builder
	b.WriteString(n.label())
	if len(n.Inputs) > 0 {
		b.WriteByte('[')
		for i, in := range n.Inputs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(in.String())
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Explain renders the tree as an indented multi-line listing, one node per
// line, children indented under their parent. The output is a pure function
// of the tree — byte-identical across runs and -parallel settings — so it is
// safe to diff in golden tests and CI gates.
func (n *Node) Explain() string {
	var b strings.Builder
	n.explain(&b, "", "")
	return b.String()
}

func (n *Node) explain(b *strings.Builder, prefix, childPrefix string) {
	b.WriteString(prefix)
	if n == nil {
		b.WriteString("<nil>\n")
		return
	}
	b.WriteString(n.label())
	b.WriteByte('\n')
	for i, in := range n.Inputs {
		last := i == len(n.Inputs)-1
		connector, indent := "├─ ", "│  "
		if last {
			connector, indent = "└─ ", "   "
		}
		in.explain(b, childPrefix+connector, childPrefix+indent)
	}
}
