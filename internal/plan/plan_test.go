package plan

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func pred(attr int, lo, hi int64) core.Predicate {
	return core.Predicate{Attr: attr, Lo: lo, Hi: hi}
}

// Golden forms: String and Explain are part of the API contract — CI gates
// and golden tests diff them, so changes here are breaking changes.
func TestGoldenString(t *testing.T) {
	join := NewJoin(storage.Unique1,
		NewIndexScan("wisc", pred(storage.Unique1, 5, 5), AccessNonClustered),
		NewScanWhere("trades", pred(storage.Unique2, 10, 20)))
	cases := []struct {
		node *Node
		want string
	}{
		{NewScan("wisc"), "Scan(wisc)"},
		{NewScanWhere("wisc", pred(storage.Unique2, 10, 20)),
			"Scan(wisc, 10 <= unique2 <= 20)"},
		{NewIndexScan("wisc", pred(storage.Unique1, 5, 5), AccessNonClustered),
			"IndexScan(wisc, unique1 = 5, non-clustered)"},
		{NewIndexScan("wisc", pred(storage.Unique2, 0, 9), AccessAuto),
			"IndexScan(wisc, 0 <= unique2 <= 9, auto)"},
		{NewFilter(pred(storage.Unique1, 1, 3), NewScan("wisc")),
			"Filter(1 <= unique1 <= 3)[Scan(wisc)]"},
		{NewAggregate(AggCount, 0, NewScan("wisc")),
			"Aggregate(count(*))[Scan(wisc)]"},
		{NewAggregate(AggSum, storage.Unique2, NewScan("wisc")),
			"Aggregate(sum(unique2))[Scan(wisc)]"},
		{join, "Join(unique1)[IndexScan(wisc, unique1 = 5, non-clustered), " +
			"Scan(trades, 10 <= unique2 <= 20)]"},
	}
	for _, c := range cases {
		if got := c.node.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestGoldenExplain(t *testing.T) {
	n := NewAggregate(AggCount, 0,
		NewFilter(pred(storage.Unique2, 10, 20),
			NewIndexScan("wisc", pred(storage.Unique1, 5, 5), AccessNonClustered)))
	want := strings.Join([]string{
		"Aggregate(count(*))",
		"└─ Filter(10 <= unique2 <= 20)",
		"   └─ IndexScan(wisc, unique1 = 5, non-clustered)",
		"",
	}, "\n")
	if got := n.Explain(); got != want {
		t.Errorf("Explain() =\n%s\nwant\n%s", got, want)
	}

	join := NewJoin(storage.Unique1,
		NewScan("build"),
		NewFilter(pred(storage.Unique1, 0, 99), NewScan("probe")))
	want = strings.Join([]string{
		"Join(unique1)",
		"├─ Scan(build)",
		"└─ Filter(0 <= unique1 <= 99)",
		"   └─ Scan(probe)",
		"",
	}, "\n")
	if got := join.Explain(); got != want {
		t.Errorf("join Explain() =\n%s\nwant\n%s", got, want)
	}
}

func TestExplainDeterministic(t *testing.T) {
	n := NewJoin(storage.Unique1, NewScan("a"),
		NewFilter(pred(storage.Unique2, 1, 2), NewScan("b")))
	first := n.Explain()
	for i := 0; i < 10; i++ {
		if got := n.Explain(); got != first {
			t.Fatalf("Explain() varied across calls")
		}
	}
}

func TestValidate(t *testing.T) {
	valid := []*Node{
		NewScan("wisc"),
		NewIndexScan("wisc", pred(storage.Unique1, 1, 1), AccessAuto),
		NewFilter(pred(storage.Unique1, 1, 1), NewScan("wisc")),
		NewJoin(storage.Unique1, NewScan("a"), NewScan("b")),
		NewAggregate(AggMax, storage.Unique2, NewScan("wisc")),
	}
	for _, n := range valid {
		if err := n.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", n, err)
		}
	}
	invalid := []*Node{
		nil,
		{Kind: KindScan},                         // no relation
		{Kind: KindIndexScan, Relation: "wisc"},  // no predicate
		{Kind: KindFilter, Inputs: []*Node{nil}}, // nil child
		{Kind: KindFilter, Pred: pred(0, 1, 1), HasPred: true}, // arity 0
		{Kind: KindJoin, Inputs: []*Node{NewScan("a")}},        // arity 1
		NewIndexScan("wisc", pred(storage.Unique1, 1, 1), AccessSeqScan),
		{Kind: Kind(99)},
	}
	for _, n := range invalid {
		if err := n.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", n)
		}
	}
}

// countVisitor tallies visited kinds to check Walk order and coverage.
type countVisitor struct{ order []Kind }

func (v *countVisitor) VisitScan(n *Node) error { v.order = append(v.order, KindScan); return nil }
func (v *countVisitor) VisitIndexScan(n *Node) error {
	v.order = append(v.order, KindIndexScan)
	return nil
}
func (v *countVisitor) VisitFilter(n *Node) error { v.order = append(v.order, KindFilter); return nil }
func (v *countVisitor) VisitJoin(n *Node) error   { v.order = append(v.order, KindJoin); return nil }
func (v *countVisitor) VisitAggregate(n *Node) error {
	v.order = append(v.order, KindAggregate)
	return nil
}

func TestWalkOrder(t *testing.T) {
	n := NewAggregate(AggCount, 0,
		NewJoin(storage.Unique1,
			NewIndexScan("a", pred(storage.Unique1, 1, 1), AccessAuto),
			NewFilter(pred(storage.Unique2, 1, 2), NewScan("b"))))
	v := &countVisitor{}
	if err := Walk(n, v); err != nil {
		t.Fatal(err)
	}
	want := []Kind{KindIndexScan, KindScan, KindFilter, KindJoin, KindAggregate}
	if len(v.order) != len(want) {
		t.Fatalf("visited %v, want %v", v.order, want)
	}
	for i := range want {
		if v.order[i] != want[i] {
			t.Fatalf("visit order %v, want %v", v.order, want)
		}
	}
}

func TestCompileSelection(t *testing.T) {
	// Filter over IndexScan on the same attribute intersects.
	n := NewFilter(pred(storage.Unique1, 10, 50),
		NewIndexScan("wisc", pred(storage.Unique1, 20, 80), AccessNonClustered))
	sel, err := CompileSelection(n)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Relation != "wisc" || sel.Pred != pred(storage.Unique1, 20, 50) ||
		sel.Access != AccessNonClustered {
		t.Fatalf("compiled %+v", sel)
	}

	// Filter over a bare Scan adopts the filter's predicate.
	sel, err = CompileSelection(NewFilter(pred(storage.Unique2, 1, 9), NewScan("wisc")))
	if err != nil {
		t.Fatal(err)
	}
	if !sel.HasPred || sel.Pred != pred(storage.Unique2, 1, 9) || sel.Access != AccessSeqScan {
		t.Fatalf("compiled %+v", sel)
	}

	// A bare Scan compiles with no predicate.
	sel, err = CompileSelection(NewScan("wisc"))
	if err != nil {
		t.Fatal(err)
	}
	if sel.HasPred {
		t.Fatalf("bare scan compiled with predicate %+v", sel)
	}

	// Cross-attribute residual filters are valid plans but not executable.
	_, err = CompileSelection(NewFilter(pred(storage.Unique2, 1, 9),
		NewIndexScan("wisc", pred(storage.Unique1, 1, 9), AccessNonClustered)))
	if err == nil || !strings.Contains(err.Error(), "single-attribute") {
		t.Fatalf("cross-attribute filter err = %v", err)
	}

	// Non-selection roots are rejected.
	if _, err = CompileSelection(NewJoin(0, NewScan("a"), NewScan("b"))); err == nil {
		t.Fatal("join compiled as selection")
	}
}
