package plan

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/storage"
)

// Selection is the executor-ready form of a selection subtree: one relation,
// one effective predicate, one access method. It is what the paper's
// workload consists of, and the unit the shared-scan manager groups.
type Selection struct {
	Relation string
	Pred     core.Predicate
	// HasPred is false for a bare full-relation Scan; the executor
	// substitutes the full attribute domain.
	HasPred bool
	Access  Access
}

// CompileSelection lowers a selection tree — a chain of Filter nodes over a
// Scan or IndexScan leaf — to its executor-ready form, intersecting
// same-attribute filters into the leaf predicate. A tree whose residual
// filters name a second attribute is a valid plan but not executable by the
// single-attribute selection engine, and is rejected with a clear error.
func CompileSelection(n *Node) (Selection, error) {
	if err := n.Validate(); err != nil {
		return Selection{}, err
	}
	cur := n
	var filters []core.Predicate
	for cur.Kind == KindFilter {
		filters = append(filters, cur.Pred)
		cur = cur.Inputs[0]
	}
	var sel Selection
	switch cur.Kind {
	case KindScan:
		sel = Selection{Relation: cur.Relation, Pred: cur.Pred, HasPred: cur.HasPred,
			Access: AccessSeqScan}
	case KindIndexScan:
		sel = Selection{Relation: cur.Relation, Pred: cur.Pred, HasPred: true,
			Access: cur.Access}
	default:
		return Selection{}, fmt.Errorf("plan: %s node is not part of a selection tree", cur.Kind)
	}
	for _, f := range filters {
		if !sel.HasPred {
			sel.Pred, sel.HasPred = f, true
			continue
		}
		if f.Attr != sel.Pred.Attr {
			return Selection{}, fmt.Errorf(
				"plan: residual filter on %s over a scan of %s is not executable (single-attribute selections only)",
				storage.AttrName(f.Attr), storage.AttrName(sel.Pred.Attr))
		}
		// Same attribute: intersect the ranges.
		if f.Lo > sel.Pred.Lo {
			sel.Pred.Lo = f.Lo
		}
		if f.Hi < sel.Pred.Hi {
			sel.Pred.Hi = f.Hi
		}
	}
	return sel, nil
}
