package sim

// WaitTimeout blocks the process until the trigger fires or d elapses,
// whichever comes first, and reports whether the trigger fired. It is the
// guard a coordination protocol needs around a wait that a lost or
// misrouted message could otherwise stall forever. If both the trigger and
// the deadline land on the same instant, the trigger wins (the event did
// happen by the deadline).
func (t *Trigger) WaitTimeout(p *Proc, d Duration) bool {
	if t.fired {
		return true
	}
	// Wake the waiter on whichever happens first: the trigger firing or
	// the deadline. The private wake trigger absorbs both.
	wake := &Trigger{eng: t.eng}
	t.onFire(func() { wake.Fire() })
	t.eng.Schedule(d, func() { wake.Fire() })
	wake.Wait(p)
	return t.fired
}

// onFire registers a callback to run when the trigger fires (immediately if
// it already has).
func (t *Trigger) onFire(fn func()) {
	if t.fired {
		fn()
		return
	}
	t.callbacks = append(t.callbacks, fn)
}
