package sim

import (
	"testing"

	"repro/internal/obs"
)

func TestMillisecondsConversion(t *testing.T) {
	if Milliseconds(2.0) != 2*Millisecond {
		t.Fatal("2ms conversion wrong")
	}
	if Milliseconds(0.6) != 600*Microsecond {
		t.Fatalf("0.6ms = %d ns", Milliseconds(0.6))
	}
	if got := Duration(1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Fatalf("1.5ms round-trip = %g", got)
	}
	if got := Time(2 * Second).Seconds(); got != 2 {
		t.Fatalf("2s = %g", got)
	}
}

func TestHoldAdvancesClock(t *testing.T) {
	e := New()
	var seen []Time
	e.Spawn("p", func(p *Proc) {
		seen = append(seen, p.Now())
		p.Hold(5 * Millisecond)
		seen = append(seen, p.Now())
		p.Hold(3 * Millisecond)
		seen = append(seen, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 5 * Time(Millisecond), 8 * Time(Millisecond)}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("step %d at %v, want %v", i, seen[i], want[i])
		}
	}
	if e.Now() != 8*Time(Millisecond) {
		t.Fatalf("final clock %v", e.Now())
	}
}

func TestFIFOOrderAtSameTimestamp(t *testing.T) {
	e := New()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			order = append(order, name)
			p.Hold(Millisecond)
			order = append(order, name+"2")
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "a2", "b2", "c2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleCallback(t *testing.T) {
	e := New()
	var at Time = -1
	e.Spawn("p", func(p *Proc) {
		p.Engine().Schedule(7*Millisecond, func() { at = e.Now() })
		p.Hold(10 * Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7*Time(Millisecond) {
		t.Fatalf("callback at %v", at)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New()
	steps := 0
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Hold(Millisecond)
			steps++
		}
	})
	if err := e.RunUntil(10 * Time(Millisecond)); err != nil {
		t.Fatal(err)
	}
	if steps != 10 {
		t.Fatalf("steps = %d, want 10", steps)
	}
	if e.Now() != 10*Time(Millisecond) {
		t.Fatalf("clock = %v", e.Now())
	}
	// Resume processing the rest.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 100 {
		t.Fatalf("steps after Run = %d", steps)
	}
}

func TestStopFromProcess(t *testing.T) {
	e := New()
	ran := 0
	e.Spawn("p", func(p *Proc) {
		for {
			p.Hold(Millisecond)
			ran++
			if ran == 5 {
				p.Engine().Stop()
				// The process keeps executing until its next yield.
				return
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 5 {
		t.Fatalf("ran = %d", ran)
	}
	if !e.Stopped() {
		t.Fatal("engine should report stopped")
	}
}

func TestProcessPanicSurfacesAsError(t *testing.T) {
	e := New()
	e.Spawn("bad", func(p *Proc) {
		p.Hold(Millisecond)
		panic("boom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestSpawnAt(t *testing.T) {
	e := New()
	var started Time = -1
	e.SpawnAt(4*Time(Millisecond), "late", func(p *Proc) { started = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if started != 4*Time(Millisecond) {
		t.Fatalf("started at %v", started)
	}
}

func TestKillParkedProcess(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	var victim *Proc
	gotMsg := false
	victim = e.Spawn("victim", func(p *Proc) {
		mb.Get(p)
		gotMsg = true
	})
	e.Spawn("killer", func(p *Proc) {
		p.Hold(Millisecond)
		p.Engine().Kill(victim)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if gotMsg {
		t.Fatal("killed process should not have received a message")
	}
	if e.Active() != 0 {
		t.Fatalf("active = %d after kill", e.Active())
	}
}

func TestKillHeldProcess(t *testing.T) {
	e := New()
	finished := false
	victim := e.Spawn("victim", func(p *Proc) {
		p.Hold(100 * Millisecond)
		finished = true
	})
	e.Spawn("killer", func(p *Proc) {
		p.Hold(Millisecond)
		p.Engine().Kill(victim)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished {
		t.Fatal("killed held process should not finish")
	}
	if e.Active() != 0 {
		t.Fatalf("active = %d", e.Active())
	}
}

func TestKillFinishedProcessIsNoop(t *testing.T) {
	e := New()
	var victim *Proc
	victim = e.Spawn("v", func(p *Proc) {})
	e.Spawn("killer", func(p *Proc) {
		p.Hold(Millisecond)
		p.Engine().Kill(victim) // already done
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestActiveAndParkedAccounting(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	e.Spawn("consumer", func(p *Proc) { mb.Get(p) })
	e.Spawn("checker", func(p *Proc) {
		p.Hold(Millisecond)
		if e.Active() != 2 {
			t.Errorf("active = %d, want 2", e.Active())
		}
		if e.Parked() != 1 {
			t.Errorf("parked = %d, want 1", e.Parked())
		}
		mb.Put(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Active() != 0 || e.Parked() != 0 {
		t.Fatalf("final active=%d parked=%d", e.Active(), e.Parked())
	}
}

func TestTraceSink(t *testing.T) {
	e := New()
	var events []obs.TraceEvent
	e.SetSink(obs.SinkFunc(func(ev obs.TraceEvent) { events = append(events, ev) }))
	if !e.Tracing() {
		t.Fatal("Tracing() = false with a sink attached")
	}
	f := NewFacility(e, "cpu")
	e.Spawn("p", func(p *Proc) {
		f.Use(p, Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	var spans int
	for _, ev := range events {
		if ev.Kind == obs.KindSpan && ev.Category == "facility" && ev.Name == "p" {
			spans++
			if ev.Dur != int64(Millisecond) {
				t.Errorf("span dur = %d, want %d", ev.Dur, int64(Millisecond))
			}
		}
	}
	if spans != 1 {
		t.Errorf("facility spans = %d, want 1", spans)
	}
}

func TestNoSinkNoTrace(t *testing.T) {
	e := New()
	if e.Tracing() {
		t.Fatal("Tracing() = true without a sink")
	}
	// Emit without a sink must be a safe no-op.
	e.Emit(obs.TraceEvent{Name: "dropped"})
	e.EmitNow(obs.TraceEvent{Name: "dropped"})
}

func TestNegativeHoldPanics(t *testing.T) {
	e := New()
	e.Spawn("p", func(p *Proc) { p.Hold(-1) })
	if err := e.Run(); err == nil {
		t.Fatal("negative hold should surface as error")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		e := New()
		f := NewFacility(e, "f")
		mb := NewMailbox[int](e, "mb")
		var log []Time
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn("w", func(p *Proc) {
				p.Hold(Duration(i) * Millisecond)
				f.Use(p, 2*Millisecond)
				mb.Put(i)
				log = append(log, p.Now())
			})
		}
		e.Spawn("c", func(p *Proc) {
			for i := 0; i < 5; i++ {
				mb.Get(p)
				log = append(log, p.Now())
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replays differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResumeAfterStop(t *testing.T) {
	e := New()
	steps := 0
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Hold(Millisecond)
			steps++
			if steps == 3 {
				p.Engine().Stop()
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Fatalf("steps before resume = %d", steps)
	}
	e.Resume()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 10 {
		t.Fatalf("steps after resume = %d", steps)
	}
}
