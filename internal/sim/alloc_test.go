//go:build !race

// Allocation-regression guards for the kernel fast paths. These assert the
// zero-allocation contract the DESIGN.md kernel section documents; they are
// excluded under -race because race instrumentation itself allocates.

package sim

import (
	"testing"

	"repro/internal/obs"
)

// drainTo pre-warms an engine's pool/free list by scheduling and draining
// one event, so steady-state measurements never see first-use growth.
func warm(e *Engine) {
	e.Schedule(Microsecond, func() {})
	if err := e.Run(); err != nil {
		panic(err)
	}
}

var nop = func() {}

// The heap path: a future-dated Schedule plus its dispatch must reuse the
// pooled record and allocate nothing.
func TestScheduleHeapPathAllocs(t *testing.T) {
	e := New()
	warm(e)
	if n := testing.AllocsPerRun(100, func() {
		e.Schedule(Microsecond, nop)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("heap-path Schedule+Run allocates %v per op, want 0", n)
	}
}

// The ready-ring path: a zero-delay Schedule (the Wake shape) bypasses the
// heap entirely and must also be allocation-free.
func TestScheduleReadyRingPathAllocs(t *testing.T) {
	e := New()
	warm(e)
	if n := testing.AllocsPerRun(100, func() {
		e.Schedule(0, nop)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ready-ring Schedule+Run allocates %v per op, want 0", n)
	}
}

type countingHandler struct{ n int }

func (h *countingHandler) HandleEvent() { h.n++ }

// ScheduleHandler stores the handler's interface words in the pooled
// record — no closure, no allocation.
func TestScheduleHandlerAllocs(t *testing.T) {
	e := New()
	warm(e)
	h := &countingHandler{}
	if n := testing.AllocsPerRun(100, func() {
		e.ScheduleHandler(Microsecond, h)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ScheduleHandler+Run allocates %v per op, want 0", n)
	}
	if h.n == 0 {
		t.Fatal("handler never ran")
	}
}

// The disabled-tracing span path is a single branch: no timestamp capture,
// no event construction, no allocation.
func TestNilSinkSpanAllocs(t *testing.T) {
	e := New()
	if e.Tracing() {
		t.Fatal("fresh engine has a sink")
	}
	if n := testing.AllocsPerRun(100, func() {
		s := e.StartSpan()
		if s.Active() {
			t.Fatal("span active without a sink")
		}
		s.End(0, "cat", "name", 0, "")
	}); n != 0 {
		t.Fatalf("nil-sink span path allocates %v per op, want 0", n)
	}
}

// Disabled metrics hand out nil histogram handles whose Observe no-ops
// without allocating.
func TestNilHistogramObserveAllocs(t *testing.T) {
	var h *obs.Histogram
	if n := testing.AllocsPerRun(100, func() {
		h.Observe(1.5)
	}); n != 0 {
		t.Fatalf("nil histogram Observe allocates %v per op, want 0", n)
	}
}

// Steady-state facility traffic reuses pooled requests and pooled events:
// after warm-up, a full grant/release cycle through a contended facility
// allocates nothing.
func TestFacilitySteadyStateAllocs(t *testing.T) {
	e := New()
	f := NewFacility(e, "cpu")
	const rounds = 2000
	done := 0
	for w := 0; w < 4; w++ {
		e.Spawn("w", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				f.Use(p, Microsecond)
			}
			done++
		})
	}
	allocs := testing.AllocsPerRun(1, func() {
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if done != 4 {
		t.Fatalf("workers finished: %d", done)
	}
	// The budget tolerates one-time warm-up growth (pool, free list, ring)
	// across ~8000 facility cycles; per-cycle allocation would blow it.
	if perCycle := allocs / (4 * rounds); perCycle > 0.01 {
		t.Fatalf("facility cycle allocates %.3f per op (%v total), want ~0", perCycle, allocs)
	}
}
