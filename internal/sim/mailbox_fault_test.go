package sim

import "testing"

// These tests pin down the mailbox behaviors the fault-injection and
// degraded-execution layers lean on: GetTimeout's remove-before-wake timer
// discipline, Close releasing blocked readers, and drop mode discarding
// traffic destined for a crashed node. The suite runs under -race in CI.

func TestGetTimeoutExpires(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	var ok bool
	var when Time
	e.Spawn("reader", func(p *Proc) {
		_, ok = mb.GetTimeout(p, 7*Millisecond)
		when = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("GetTimeout on a silent mailbox reported a message")
	}
	if when != 7*Time(Millisecond) {
		t.Fatalf("reader resumed at %v, want the 7ms deadline", when)
	}
}

func TestGetTimeoutMessageBeatsDeadline(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	var got int
	var ok bool
	e.Spawn("reader", func(p *Proc) {
		got, ok = mb.GetTimeout(p, 10*Millisecond)
		if p.Now() != 3*Time(Millisecond) {
			t.Errorf("reader resumed at %v, want 3ms", p.Now())
		}
	})
	e.Spawn("writer", func(p *Proc) {
		p.Hold(3 * Millisecond)
		mb.Put(42)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || got != 42 {
		t.Fatalf("GetTimeout = (%d, %v)", got, ok)
	}
}

// A message arriving exactly at the deadline instant must win over the
// timer: the waker removes its target from the waiter ring before waking it,
// so a Put and a timeout can never both claim the same parked process.
func TestGetTimeoutMessageAtDeadlineInstantWins(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	var got int
	var ok bool
	e.Spawn("reader", func(p *Proc) {
		got, ok = mb.GetTimeout(p, 5*Millisecond)
	})
	e.Spawn("writer", func(p *Proc) {
		p.Hold(5 * Millisecond)
		mb.Put(9)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || got != 9 {
		t.Fatalf("GetTimeout = (%d, %v), want the message to win the tie", got, ok)
	}
}

// After a timed-out GetTimeout, the same process must be able to park again
// and receive a later message (its vacated waiter-ring slot must not
// swallow the wake).
func TestGetTimeoutThenBlockAgain(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	var first, second bool
	var got int
	e.Spawn("reader", func(p *Proc) {
		_, first = mb.GetTimeout(p, Millisecond)
		got, second = mb.GetTimeout(p, 10*Millisecond)
	})
	e.Spawn("writer", func(p *Proc) {
		p.Hold(4 * Millisecond)
		mb.Put(5)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if first {
		t.Fatal("first GetTimeout should have timed out")
	}
	if !second || got != 5 {
		t.Fatalf("second GetTimeout = (%d, %v)", got, second)
	}
}

func TestCloseReleasesBlockedReader(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	var ok = true
	var when Time
	e.Spawn("reader", func(p *Proc) {
		_, ok = mb.Recv(p)
		when = p.Now()
	})
	e.Spawn("closer", func(p *Proc) {
		p.Hold(2 * Millisecond)
		mb.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Recv on a closed mailbox reported a message")
	}
	if when != 2*Time(Millisecond) {
		t.Fatalf("reader released at %v, want the close instant", when)
	}
}

func TestCloseReleasesGetTimeoutReader(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	var ok = true
	var when Time
	e.Spawn("reader", func(p *Proc) {
		_, ok = mb.GetTimeout(p, time100ms)
		when = p.Now()
	})
	e.Spawn("closer", func(p *Proc) {
		p.Hold(Millisecond)
		mb.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("GetTimeout on a closed mailbox reported a message")
	}
	if when != Time(Millisecond) {
		t.Fatalf("reader released at %v, want the close instant, not the deadline", when)
	}
}

const time100ms = 100 * Millisecond

func TestCloseDiscardsBacklogAndFuturePuts(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	mb.Put(1)
	mb.Put(2)
	mb.Close()
	if mb.Len() != 0 {
		t.Fatalf("backlog survived close: len = %d", mb.Len())
	}
	mb.Put(3)
	if mb.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3 (backlog + post-close put)", mb.Dropped())
	}
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on closed mailbox returned a message")
	}
}

// Drop mode is how a crashed node's inbox fail-silences: messages vanish
// while down, and delivery resumes — without replaying the lost ones — on
// restart.
func TestSetDropDiscardsWhileDownThenResumes(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	var got []int
	e.Spawn("reader", func(p *Proc) {
		for i := 0; i < 2; i++ {
			v, ok := mb.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Spawn("driver", func(p *Proc) {
		p.Hold(Millisecond)
		mb.Put(1)           // delivered
		p.Hold(Millisecond) // let the reader drain before the outage
		mb.SetDrop(true)
		mb.Put(2) // lost: node is down
		mb.Put(3) // lost
		mb.SetDrop(false)
		p.Hold(Millisecond)
		mb.Put(4) // delivered after restart
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("delivered %v, want [1 4]", got)
	}
	if mb.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", mb.Dropped())
	}
}

// Entering drop mode while a reader is parked must not wake or lose the
// reader: it stays blocked through the outage and gets the first message
// after recovery.
func TestSetDropWhileReaderBlocked(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	var got int
	var ok bool
	e.Spawn("reader", func(p *Proc) {
		got, ok = mb.Recv(p)
	})
	e.Spawn("driver", func(p *Proc) {
		p.Hold(Millisecond)
		mb.SetDrop(true)
		mb.Put(7) // lost while the reader is parked
		p.Hold(Millisecond)
		mb.SetDrop(false)
		mb.Put(8)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || got != 8 {
		t.Fatalf("reader got (%d, %v), want the post-recovery message 8", got, ok)
	}
}
