package sim

import "testing"

func TestMailboxFIFO(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			mb.Put(i)
			p.Hold(Millisecond)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, mb.Get(p))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("got %v", got)
		}
	}
	if mb.Puts() != 5 {
		t.Fatalf("puts = %d", mb.Puts())
	}
}

func TestMailboxBlocksUntilMessage(t *testing.T) {
	e := New()
	mb := NewMailbox[string](e, "mb")
	var when Time
	e.Spawn("consumer", func(p *Proc) {
		mb.Get(p)
		when = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Hold(9 * Millisecond)
		mb.Put("hi")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if when != 9*Time(Millisecond) {
		t.Fatalf("consumer resumed at %v", when)
	}
}

func TestMailboxMultipleConsumersEachMessageDeliveredOnce(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	delivered := map[int]int{}
	for c := 0; c < 3; c++ {
		e.Spawn("consumer", func(p *Proc) {
			v := mb.Get(p)
			delivered[v]++
		})
	}
	e.Spawn("producer", func(p *Proc) {
		p.Hold(Millisecond)
		for i := 0; i < 3; i++ {
			mb.Put(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 3 {
		t.Fatalf("delivered = %v", delivered)
	}
	for v, n := range delivered {
		if n != 1 {
			t.Fatalf("message %d delivered %d times", v, n)
		}
	}
}

func TestMailboxTryGet(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "mb")
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on empty mailbox returned ok")
	}
	mb.Put(7)
	if v, ok := mb.TryGet(); !ok || v != 7 {
		t.Fatalf("TryGet = (%d, %v)", v, ok)
	}
	if mb.Len() != 0 {
		t.Fatalf("len = %d", mb.Len())
	}
}

func TestTriggerReleasesAllWaiters(t *testing.T) {
	e := New()
	tr := NewTrigger(e)
	released := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			tr.Wait(p)
			released++
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Hold(Millisecond)
		tr.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if released != 4 {
		t.Fatalf("released = %d", released)
	}
}

func TestTriggerWaitAfterFireReturnsImmediately(t *testing.T) {
	e := New()
	tr := NewTrigger(e)
	tr.Fire()
	tr.Fire() // double fire is a no-op
	var when Time = -1
	e.Spawn("w", func(p *Proc) {
		tr.Wait(p)
		when = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if when != 0 {
		t.Fatalf("waiter resumed at %v", when)
	}
	if !tr.Fired() {
		t.Fatal("trigger should report fired")
	}
}

func TestGateOpensAfterNDone(t *testing.T) {
	e := New()
	g := NewGate(e, 3)
	var opened Time = -1
	e.Spawn("waiter", func(p *Proc) {
		g.Wait(p)
		opened = p.Now()
	})
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("worker", func(p *Proc) {
			p.Hold(Duration(i+1) * Millisecond)
			g.Done()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if opened != 3*Time(Millisecond) {
		t.Fatalf("gate opened at %v", opened)
	}
	if g.Remaining() != 0 {
		t.Fatalf("remaining = %d", g.Remaining())
	}
}

func TestGateZeroIsOpen(t *testing.T) {
	e := New()
	g := NewGate(e, 0)
	passed := false
	e.Spawn("w", func(p *Proc) {
		g.Wait(p)
		passed = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !passed {
		t.Fatal("zero gate should be open")
	}
}

func TestGateExtraDonePanics(t *testing.T) {
	e := New()
	g := NewGate(e, 1)
	e.Spawn("w", func(p *Proc) {
		g.Done()
		g.Done()
	})
	if err := e.Run(); err == nil {
		t.Fatal("extra Done should surface as error")
	}
}

func TestWaitTimeoutFires(t *testing.T) {
	e := New()
	tr := NewTrigger(e)
	var ok bool
	var when Time
	e.Spawn("waiter", func(p *Proc) {
		ok = tr.WaitTimeout(p, 10*Millisecond)
		when = p.Now()
	})
	e.Spawn("firer", func(p *Proc) {
		p.Hold(3 * Millisecond)
		tr.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("trigger fired before the deadline but WaitTimeout reported timeout")
	}
	if when != 3*Time(Millisecond) {
		t.Fatalf("waiter resumed at %v", when)
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	e := New()
	tr := NewTrigger(e)
	var ok bool
	var when Time
	e.Spawn("waiter", func(p *Proc) {
		ok = tr.WaitTimeout(p, 5*Millisecond)
		when = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("WaitTimeout reported success though the trigger never fired")
	}
	if when != 5*Time(Millisecond) {
		t.Fatalf("waiter resumed at %v, want the 5ms deadline", when)
	}
}

func TestWaitTimeoutAlreadyFired(t *testing.T) {
	e := New()
	tr := NewTrigger(e)
	tr.Fire()
	var ok bool
	e.Spawn("waiter", func(p *Proc) {
		ok = tr.WaitTimeout(p, Millisecond)
		if p.Now() != 0 {
			t.Error("pre-fired trigger should return immediately")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("pre-fired trigger reported timeout")
	}
}

// A GetTimeout that returns early on a message must disarm its deadline
// timer: the stale timer used to pull the proc out of a *later*
// GetTimeout's waiter slot at the exact instant that call's own timer was
// due, so neither fired and the proc parked forever.
func TestGetTimeoutStaleTimerDoesNotStealLaterWait(t *testing.T) {
	e := New()
	mb := NewMailbox[int](e, "stale")
	var got []int
	var timeoutAt Time
	e.Spawn("waiter", func(p *Proc) {
		// First wait: 10ms deadline, message arrives at 2ms.
		if v, ok := mb.GetTimeout(p, 10*Millisecond); !ok || v != 1 {
			t.Errorf("first GetTimeout = %d, %v", v, ok)
		} else {
			got = append(got, v)
		}
		// Second wait: its own deadline lands at 10ms — the same instant
		// the first call's stale timer fires. It must still time out.
		if _, ok := mb.GetTimeout(p, 8*Millisecond); ok {
			t.Error("second GetTimeout delivered a message from nowhere")
		}
		timeoutAt = p.Now()
	})
	e.Schedule(2*Millisecond, func() { mb.Put(1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("messages received = %v, want [1]", got)
	}
	if timeoutAt != 10*Time(Millisecond) {
		t.Fatalf("second wait resumed at %v, want the 10ms deadline", timeoutAt)
	}
}
