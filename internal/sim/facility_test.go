package sim

import (
	"math"
	"testing"
)

func TestFacilityFCFS(t *testing.T) {
	e := New()
	f := NewFacility(e, "cpu")
	var doneAt []Time
	for i := 0; i < 3; i++ {
		e.Spawn("p", func(p *Proc) {
			f.Use(p, 10*Millisecond)
			doneAt = append(doneAt, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10 * Time(Millisecond), 20 * Time(Millisecond), 30 * Time(Millisecond)}
	for i := range want {
		if doneAt[i] != want[i] {
			t.Fatalf("completion %d at %v, want %v", i, doneAt[i], want[i])
		}
	}
	if f.Served() != 3 {
		t.Fatalf("served = %d", f.Served())
	}
}

func TestFacilityPriorityJumpsQueue(t *testing.T) {
	e := New()
	f := NewFacility(e, "cpu")
	var order []string
	// At t=0, "long" grabs the server for 10ms. At t=1ms, "normal" queues.
	// At t=2ms "urgent" queues with priority 1 and must be served before
	// "normal" despite arriving later (head-of-line priority).
	e.Spawn("long", func(p *Proc) {
		f.Use(p, 10*Millisecond)
		order = append(order, "long")
	})
	e.Spawn("normal", func(p *Proc) {
		p.Hold(Millisecond)
		f.Use(p, Millisecond)
		order = append(order, "normal")
	})
	e.Spawn("urgent", func(p *Proc) {
		p.Hold(2 * Millisecond)
		f.UsePriority(p, Millisecond, 1)
		order = append(order, "urgent")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"long", "urgent", "normal"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFacilityPriorityIsNonPreemptive(t *testing.T) {
	e := New()
	f := NewFacility(e, "cpu")
	var longDone Time
	e.Spawn("long", func(p *Proc) {
		f.Use(p, 10*Millisecond)
		longDone = p.Now()
	})
	e.Spawn("urgent", func(p *Proc) {
		p.Hold(Millisecond)
		f.UsePriority(p, Millisecond, 5)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if longDone != 10*Time(Millisecond) {
		t.Fatalf("in-service request was preempted: done at %v", longDone)
	}
}

func TestFacilityFIFOWithinPriority(t *testing.T) {
	e := New()
	f := NewFacility(e, "cpu")
	var order []int
	e.Spawn("blocker", func(p *Proc) { f.Use(p, 5*Millisecond) })
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Hold(Duration(i+1) * Microsecond)
			f.UsePriority(p, Millisecond, 1)
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestFacilityUtilization(t *testing.T) {
	e := New()
	f := NewFacility(e, "disk")
	e.Spawn("p", func(p *Proc) {
		f.Use(p, 10*Millisecond) // busy [0,10)
		p.Hold(10 * Millisecond) // idle [10,20)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := f.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %g, want 0.5", u)
	}
}

func TestFacilityWaitAccounting(t *testing.T) {
	e := New()
	f := NewFacility(e, "f")
	e.Spawn("a", func(p *Proc) { f.Use(p, 4*Millisecond) })
	e.Spawn("b", func(p *Proc) { f.Use(p, 4*Millisecond) }) // waits 4ms
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if w := f.MeanWaitMS(); math.Abs(w-2.0) > 1e-9 { // (0+4)/2
		t.Fatalf("mean wait = %g, want 2", w)
	}
	if s := f.MeanServiceMS(); math.Abs(s-4.0) > 1e-9 {
		t.Fatalf("mean service = %g, want 4", s)
	}
}

func TestFacilityResetStats(t *testing.T) {
	e := New()
	f := NewFacility(e, "f")
	e.Spawn("p", func(p *Proc) {
		f.Use(p, 10*Millisecond)
		f.ResetStats()
		p.Hold(10 * Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Served() != 0 {
		t.Fatalf("served after reset = %d", f.Served())
	}
	if u := f.Utilization(); u != 0 {
		t.Fatalf("utilization after reset = %g", u)
	}
}

func TestFacilityNegativeServicePanics(t *testing.T) {
	e := New()
	f := NewFacility(e, "f")
	e.Spawn("p", func(p *Proc) { f.Use(p, -1) })
	if err := e.Run(); err == nil {
		t.Fatal("negative service should surface as error")
	}
}
