package sim

// Mailbox is an unbounded FIFO message queue between simulation processes.
// Any number of producers (processes or callbacks) may Put; any number of
// consumer processes may Get. Messages are delivered in Put order and each
// message wakes at most one waiting consumer.
type Mailbox[T any] struct {
	eng     *Engine
	name    string
	msgs    []T
	waiters []*Proc
	puts    int64
}

// NewMailbox creates a mailbox attached to the engine.
func NewMailbox[T any](e *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{eng: e, name: name}
}

// Name reports the mailbox name.
func (m *Mailbox[T]) Name() string { return m.name }

// Put enqueues a message and wakes one waiting consumer, if any. It never
// blocks and may be called from event callbacks as well as processes.
func (m *Mailbox[T]) Put(v T) {
	m.msgs = append(m.msgs, v)
	m.puts++
	if len(m.waiters) > 0 {
		p := m.waiters[0]
		copy(m.waiters, m.waiters[1:])
		m.waiters = m.waiters[:len(m.waiters)-1]
		m.eng.Wake(p)
	}
}

// Get removes and returns the oldest message, blocking the calling process
// until one is available.
func (m *Mailbox[T]) Get(p *Proc) T {
	for len(m.msgs) == 0 {
		m.waiters = append(m.waiters, p)
		p.Park()
	}
	v := m.msgs[0]
	copy(m.msgs, m.msgs[1:])
	m.msgs = m.msgs[:len(m.msgs)-1]
	return v
}

// TryGet removes and returns the oldest message without blocking. The second
// result reports whether a message was available.
func (m *Mailbox[T]) TryGet() (T, bool) {
	var zero T
	if len(m.msgs) == 0 {
		return zero, false
	}
	v := m.msgs[0]
	copy(m.msgs, m.msgs[1:])
	m.msgs = m.msgs[:len(m.msgs)-1]
	return v, true
}

// Len reports the number of queued messages.
func (m *Mailbox[T]) Len() int { return len(m.msgs) }

// Puts reports the total number of messages ever Put.
func (m *Mailbox[T]) Puts() int64 { return m.puts }

// Trigger is a one-shot completion event: processes Wait on it, and Fire
// releases all current and future waiters. It coordinates, e.g., a query
// scheduler waiting for every participating operator to report done.
type Trigger struct {
	eng       *Engine
	fired     bool
	waiters   []*Proc
	callbacks []func()
}

// NewTrigger creates an unfired trigger.
func NewTrigger(e *Engine) *Trigger { return &Trigger{eng: e} }

// Wait blocks the process until the trigger fires. If it has already fired,
// Wait returns immediately.
func (t *Trigger) Wait(p *Proc) {
	for !t.fired {
		t.waiters = append(t.waiters, p)
		p.Park()
	}
}

// Fire releases all waiters and runs registered callbacks. Firing twice is
// a no-op.
func (t *Trigger) Fire() {
	if t.fired {
		return
	}
	t.fired = true
	for _, p := range t.waiters {
		t.eng.Wake(p)
	}
	t.waiters = nil
	for _, fn := range t.callbacks {
		fn()
	}
	t.callbacks = nil
}

// Fired reports whether the trigger has fired.
func (t *Trigger) Fired() bool { return t.fired }

// Gate counts down from n and fires an inner trigger when it reaches zero.
// It models barrier-style coordination (e.g. "wait for all participants").
type Gate struct {
	remaining int
	trigger   *Trigger
}

// NewGate creates a gate that opens after n calls to Done. A gate with n<=0
// is already open.
func NewGate(e *Engine, n int) *Gate {
	g := &Gate{remaining: n, trigger: NewTrigger(e)}
	if n <= 0 {
		g.trigger.Fire()
	}
	return g
}

// Done decrements the counter, opening the gate at zero. Calling Done more
// times than the initial count panics: it indicates a protocol bug.
func (g *Gate) Done() {
	if g.remaining <= 0 {
		panic("sim: Gate.Done called after gate already open")
	}
	g.remaining--
	if g.remaining == 0 {
		g.trigger.Fire()
	}
}

// Wait blocks until the gate opens.
func (g *Gate) Wait(p *Proc) { g.trigger.Wait(p) }

// Remaining reports how many Done calls are still outstanding.
func (g *Gate) Remaining() int { return g.remaining }
