package sim

// Mailbox is an unbounded FIFO message queue between simulation processes.
// Any number of producers (processes or callbacks) may Put; any number of
// consumer processes may Get. Messages are delivered in Put order and each
// message wakes at most one waiting consumer.
//
// Messages and waiting consumers live in power-of-two ring buffers, so the
// steady state allocates nothing and Get is O(1) instead of the O(n) slice
// shift a naive queue pays. When a consumer is parked, Put hands the message
// straight to it: the receiver is scheduled on the engine's current-instant
// ready ring — no event-heap round-trip — and, because a mailbox only holds
// waiters while it is empty, the message at the head of the ring is the one
// the woken receiver claims.
type Mailbox[T any] struct {
	eng  *Engine
	name string

	buf   []T // message ring (power-of-two capacity)
	head  int
	count int

	wbuf   []*Proc // waiting-consumer ring (power-of-two capacity)
	whead  int
	wcount int

	puts int64
}

// NewMailbox creates a mailbox attached to the engine.
func NewMailbox[T any](e *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{eng: e, name: name}
}

// Name reports the mailbox name.
func (m *Mailbox[T]) Name() string { return m.name }

// Put enqueues a message and wakes one waiting consumer, if any. It never
// blocks and may be called from event callbacks as well as processes.
func (m *Mailbox[T]) Put(v T) {
	if m.count == len(m.buf) {
		grown := make([]T, max(8, 2*len(m.buf)))
		for i := 0; i < m.count; i++ {
			grown[i] = m.buf[(m.head+i)&(len(m.buf)-1)]
		}
		m.buf = grown
		m.head = 0
	}
	m.buf[(m.head+m.count)&(len(m.buf)-1)] = v
	m.count++
	m.puts++
	if m.wcount > 0 {
		p := m.wbuf[m.whead]
		m.wbuf[m.whead] = nil
		m.whead = (m.whead + 1) & (len(m.wbuf) - 1)
		m.wcount--
		m.eng.Wake(p)
	}
}

// Get removes and returns the oldest message, blocking the calling process
// until one is available.
func (m *Mailbox[T]) Get(p *Proc) T {
	for m.count == 0 {
		if m.wcount == len(m.wbuf) {
			grown := make([]*Proc, max(4, 2*len(m.wbuf)))
			for i := 0; i < m.wcount; i++ {
				grown[i] = m.wbuf[(m.whead+i)&(len(m.wbuf)-1)]
			}
			m.wbuf = grown
			m.whead = 0
		}
		m.wbuf[(m.whead+m.wcount)&(len(m.wbuf)-1)] = p
		m.wcount++
		p.Park()
	}
	return m.pop()
}

// TryGet removes and returns the oldest message without blocking. The second
// result reports whether a message was available.
func (m *Mailbox[T]) TryGet() (T, bool) {
	if m.count == 0 {
		var zero T
		return zero, false
	}
	return m.pop(), true
}

// pop removes the ring head. Must only be called when count > 0.
func (m *Mailbox[T]) pop() T {
	var zero T
	v := m.buf[m.head]
	m.buf[m.head] = zero // drop the reference for the collector
	m.head = (m.head + 1) & (len(m.buf) - 1)
	m.count--
	return v
}

// Len reports the number of queued messages.
func (m *Mailbox[T]) Len() int { return m.count }

// Puts reports the total number of messages ever Put.
func (m *Mailbox[T]) Puts() int64 { return m.puts }

// Trigger is a one-shot completion event: processes Wait on it, and Fire
// releases all current and future waiters. It coordinates, e.g., a query
// scheduler waiting for every participating operator to report done.
type Trigger struct {
	eng       *Engine
	fired     bool
	waiters   []*Proc
	callbacks []func()
}

// NewTrigger creates an unfired trigger.
func NewTrigger(e *Engine) *Trigger { return &Trigger{eng: e} }

// Wait blocks the process until the trigger fires. If it has already fired,
// Wait returns immediately.
func (t *Trigger) Wait(p *Proc) {
	for !t.fired {
		t.waiters = append(t.waiters, p)
		p.Park()
	}
}

// Fire releases all waiters and runs registered callbacks. Firing twice is
// a no-op.
func (t *Trigger) Fire() {
	if t.fired {
		return
	}
	t.fired = true
	for _, p := range t.waiters {
		t.eng.Wake(p)
	}
	t.waiters = nil
	for _, fn := range t.callbacks {
		fn()
	}
	t.callbacks = nil
}

// Fired reports whether the trigger has fired.
func (t *Trigger) Fired() bool { return t.fired }

// Gate counts down from n and fires an inner trigger when it reaches zero.
// It models barrier-style coordination (e.g. "wait for all participants").
type Gate struct {
	remaining int
	trigger   *Trigger
}

// NewGate creates a gate that opens after n calls to Done. A gate with n<=0
// is already open.
func NewGate(e *Engine, n int) *Gate {
	g := &Gate{remaining: n, trigger: NewTrigger(e)}
	if n <= 0 {
		g.trigger.Fire()
	}
	return g
}

// Done decrements the counter, opening the gate at zero. Calling Done more
// times than the initial count panics: it indicates a protocol bug.
func (g *Gate) Done() {
	if g.remaining <= 0 {
		panic("sim: Gate.Done called after gate already open")
	}
	g.remaining--
	if g.remaining == 0 {
		g.trigger.Fire()
	}
}

// Wait blocks until the gate opens.
func (g *Gate) Wait(p *Proc) { g.trigger.Wait(p) }

// Remaining reports how many Done calls are still outstanding.
func (g *Gate) Remaining() int { return g.remaining }
