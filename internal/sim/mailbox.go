package sim

// Mailbox is an unbounded FIFO message queue between simulation processes.
// Any number of producers (processes or callbacks) may Put; any number of
// consumer processes may Get. Messages are delivered in Put order and each
// message wakes at most one waiting consumer.
//
// Messages and waiting consumers live in power-of-two ring buffers, so the
// steady state allocates nothing and Get is O(1) instead of the O(n) slice
// shift a naive queue pays. When a consumer is parked, Put hands the message
// straight to it: the receiver is scheduled on the engine's current-instant
// ready ring — no event-heap round-trip — and, because a mailbox only holds
// waiters while it is empty, the message at the head of the ring is the one
// the woken receiver claims.
type Mailbox[T any] struct {
	eng  *Engine
	name string

	buf   []T // message ring (power-of-two capacity)
	head  int
	count int

	wbuf   []*Proc // waiting-consumer ring (power-of-two capacity)
	whead  int
	wcount int

	puts     int64
	dropped  int64
	closed   bool
	dropping bool
}

// NewMailbox creates a mailbox attached to the engine.
func NewMailbox[T any](e *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{eng: e, name: name}
}

// Name reports the mailbox name.
func (m *Mailbox[T]) Name() string { return m.name }

// Put enqueues a message and wakes one waiting consumer, if any. It never
// blocks and may be called from event callbacks as well as processes. While
// the mailbox is closed or in drop mode the message is silently discarded.
func (m *Mailbox[T]) Put(v T) {
	if m.closed || m.dropping {
		m.dropped++
		return
	}
	if m.count == len(m.buf) {
		grown := make([]T, max(8, 2*len(m.buf)))
		for i := 0; i < m.count; i++ {
			grown[i] = m.buf[(m.head+i)&(len(m.buf)-1)]
		}
		m.buf = grown
		m.head = 0
	}
	m.buf[(m.head+m.count)&(len(m.buf)-1)] = v
	m.count++
	m.puts++
	m.wakeOne()
}

// wakeOne pops waiter-ring slots until it finds a live consumer to wake.
// Slots can hold nil (vacated by a GetTimeout timer) or a killed/finished
// process; waking those would either be lost or corrupt the single-control
// invariant, so they are skipped.
func (m *Mailbox[T]) wakeOne() {
	for m.wcount > 0 {
		p := m.wbuf[m.whead]
		m.wbuf[m.whead] = nil
		m.whead = (m.whead + 1) & (len(m.wbuf) - 1)
		m.wcount--
		if p == nil || p.finished || p.killed {
			continue
		}
		m.eng.Wake(p)
		return
	}
}

// wakeAll releases every live waiter (used by Close).
func (m *Mailbox[T]) wakeAll() {
	for m.wcount > 0 {
		m.wakeOne()
	}
}

// addWaiter registers p at the tail of the waiting-consumer ring.
func (m *Mailbox[T]) addWaiter(p *Proc) {
	if m.wcount == len(m.wbuf) {
		grown := make([]*Proc, max(4, 2*len(m.wbuf)))
		for i := 0; i < m.wcount; i++ {
			grown[i] = m.wbuf[(m.whead+i)&(len(m.wbuf)-1)]
		}
		m.wbuf = grown
		m.whead = 0
	}
	m.wbuf[(m.whead+m.wcount)&(len(m.wbuf)-1)] = p
	m.wcount++
}

// removeWaiter vacates p's slot in the waiting-consumer ring without
// compacting it (wakeOne skips nil slots) and reports whether p was found.
// A waker must remove its target from the ring before waking it: that is
// what guarantees a Put and a timeout can never both wake the same parked
// process.
func (m *Mailbox[T]) removeWaiter(p *Proc) bool {
	for i := 0; i < m.wcount; i++ {
		idx := (m.whead + i) & (len(m.wbuf) - 1)
		if m.wbuf[idx] == p {
			m.wbuf[idx] = nil
			return true
		}
	}
	return false
}

// Get removes and returns the oldest message, blocking the calling process
// until one is available. Get on a closed, empty mailbox panics: callers
// that must survive closure use Recv.
func (m *Mailbox[T]) Get(p *Proc) T {
	v, ok := m.Recv(p)
	if !ok {
		panic("sim: Get on closed mailbox " + m.name)
	}
	return v
}

// Recv removes and returns the oldest message, blocking the calling process
// until one is available. It returns ok=false when the mailbox is closed
// and empty.
func (m *Mailbox[T]) Recv(p *Proc) (T, bool) {
	for m.count == 0 {
		if m.closed {
			var zero T
			return zero, false
		}
		m.addWaiter(p)
		p.Park()
	}
	return m.pop(), true
}

// GetTimeout removes and returns the oldest message, blocking the calling
// process until one is available or d has elapsed. It returns ok=false on
// timeout or when the mailbox is closed and empty. When a message and the
// deadline land on the same instant, the message wins.
func (m *Mailbox[T]) GetTimeout(p *Proc, d Duration) (T, bool) {
	if m.count > 0 {
		return m.pop(), true
	}
	if m.closed {
		var zero T
		return zero, false
	}
	timedOut := false
	armed := true
	m.eng.Schedule(d, func() {
		// Fire only while this call is still blocked (a call that returned
		// early on a message disarms the timer — otherwise the stale timer
		// would pull p out of a later GetTimeout's waiter slot and eat that
		// call's wake-up) and only if p is still parked in this mailbox's
		// waiter ring. Removing it before waking means a concurrent Put can
		// no longer pop (and wake) the same slot — exactly one waker wins.
		if armed && m.removeWaiter(p) {
			timedOut = true
			m.eng.Wake(p)
		}
	})
	for m.count == 0 && !timedOut {
		if m.closed {
			armed = false
			var zero T
			return zero, false
		}
		m.addWaiter(p)
		p.Park()
	}
	armed = false
	if m.count > 0 {
		return m.pop(), true
	}
	var zero T
	return zero, false
}

// TryGet removes and returns the oldest message without blocking. The second
// result reports whether a message was available.
func (m *Mailbox[T]) TryGet() (T, bool) {
	if m.count == 0 {
		var zero T
		return zero, false
	}
	return m.pop(), true
}

// pop removes the ring head. Must only be called when count > 0.
func (m *Mailbox[T]) pop() T {
	var zero T
	v := m.buf[m.head]
	m.buf[m.head] = zero // drop the reference for the collector
	m.head = (m.head + 1) & (len(m.buf) - 1)
	m.count--
	return v
}

// Len reports the number of queued messages.
func (m *Mailbox[T]) Len() int { return m.count }

// Puts reports the total number of messages ever Put.
func (m *Mailbox[T]) Puts() int64 { return m.puts }

// Close marks the mailbox closed: the backlog is discarded, future Puts are
// dropped, and every blocked consumer is released (Recv and GetTimeout
// return ok=false; Get panics). Closing twice is a no-op.
func (m *Mailbox[T]) Close() {
	if m.closed {
		return
	}
	m.closed = true
	m.flush()
	m.wakeAll()
}

// Closed reports whether Close has been called.
func (m *Mailbox[T]) Closed() bool { return m.closed }

// SetDrop switches the mailbox into (or out of) drop mode: while dropping,
// Put discards messages instead of queueing them — the shape of a crashed
// receiver whose interface is down. Entering drop mode discards the backlog
// too; blocked consumers stay parked (the receiver is "down", not closed).
func (m *Mailbox[T]) SetDrop(drop bool) {
	m.dropping = drop
	if drop {
		m.flush()
	}
}

// Dropped reports the number of messages discarded by Close, drop mode, or
// backlog flushes.
func (m *Mailbox[T]) Dropped() int64 { return m.dropped }

// flush discards the queued backlog, counting it as dropped.
func (m *Mailbox[T]) flush() {
	var zero T
	m.dropped += int64(m.count)
	for i := 0; i < m.count; i++ {
		m.buf[(m.head+i)&(len(m.buf)-1)] = zero
	}
	m.head, m.count = 0, 0
}

// Trigger is a one-shot completion event: processes Wait on it, and Fire
// releases all current and future waiters. It coordinates, e.g., a query
// scheduler waiting for every participating operator to report done.
type Trigger struct {
	eng       *Engine
	fired     bool
	waiters   []*Proc
	callbacks []func()
}

// NewTrigger creates an unfired trigger.
func NewTrigger(e *Engine) *Trigger { return &Trigger{eng: e} }

// Wait blocks the process until the trigger fires. If it has already fired,
// Wait returns immediately.
func (t *Trigger) Wait(p *Proc) {
	for !t.fired {
		t.waiters = append(t.waiters, p)
		p.Park()
	}
}

// Fire releases all waiters and runs registered callbacks. Firing twice is
// a no-op.
func (t *Trigger) Fire() {
	if t.fired {
		return
	}
	t.fired = true
	for _, p := range t.waiters {
		t.eng.Wake(p)
	}
	t.waiters = nil
	for _, fn := range t.callbacks {
		fn()
	}
	t.callbacks = nil
}

// Fired reports whether the trigger has fired.
func (t *Trigger) Fired() bool { return t.fired }

// Gate counts down from n and fires an inner trigger when it reaches zero.
// It models barrier-style coordination (e.g. "wait for all participants").
type Gate struct {
	remaining int
	trigger   *Trigger
}

// NewGate creates a gate that opens after n calls to Done. A gate with n<=0
// is already open.
func NewGate(e *Engine, n int) *Gate {
	g := &Gate{remaining: n, trigger: NewTrigger(e)}
	if n <= 0 {
		g.trigger.Fire()
	}
	return g
}

// Done decrements the counter, opening the gate at zero. Calling Done more
// times than the initial count panics: it indicates a protocol bug.
func (g *Gate) Done() {
	if g.remaining <= 0 {
		panic("sim: Gate.Done called after gate already open")
	}
	g.remaining--
	if g.remaining == 0 {
		g.trigger.Fire()
	}
}

// Wait blocks until the gate opens.
func (g *Gate) Wait(p *Proc) { g.trigger.Wait(p) }

// Remaining reports how many Done calls are still outstanding.
func (g *Gate) Remaining() int { return g.remaining }
