package sim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Facility is a single-server queueing station with FCFS service within a
// priority class and higher priority classes served first (non-preemptive:
// an in-service request always completes). It models the paper's CPU module
// ("FCFS non-preemptive scheduling on all requests, except for byte
// transfers to/from the disk's FIFO buffer", which we map to a high-priority
// class) and the FCFS network interfaces.
//
// The wait queue is an intrusive singly-linked list of pooled request
// nodes, and service completion is scheduled through the engine's Handler
// path, so steady-state operation allocates nothing: nodes recycle through
// a per-facility free list and the single in-service request lives in a
// struct field instead of a per-completion closure.
type Facility struct {
	eng  *Engine
	name string

	// Observability identity: which node and resource class the facility
	// belongs to (SetMeta). Defaults place it on no node as "facility".
	node     int
	category string

	busy     bool
	qhead    *facRequest // waiting requests (excludes in-service)
	qtail    *facRequest
	qlenN    int
	cur      *facRequest // request in service
	curSpan  Span
	freeReqs *facRequest // recycled nodes
	nextSeq  uint64

	util    stats.TimeWeighted // 0/1 busy indicator over time
	qlen    stats.TimeWeighted // queue length (excluding in service)
	served  int64
	svcTime stats.Accumulator // service durations, ms
	wait    stats.Accumulator // queueing delays (excluding service), ms

	// Registry handles (nil when the engine has no metrics registry; all
	// methods no-op on nil).
	waitH *obs.Histogram
	svcH  *obs.Histogram
}

type facRequest struct {
	p       *Proc
	service Duration
	prio    int
	seq     uint64
	arrived Time
	qid     int64
	next    *facRequest
}

// NewFacility creates a facility attached to the engine. When the engine
// carries a metrics registry, the facility registers "<name>.wait_ms" and
// "<name>.service_ms" latency histograms separating queueing delay from
// service time.
func NewFacility(e *Engine, name string) *Facility {
	f := &Facility{eng: e, name: name, node: obs.NoNode, category: "facility"}
	f.util.Set(float64(e.now), 0)
	f.qlen.Set(float64(e.now), 0)
	if reg := e.Metrics(); reg != nil {
		f.waitH = reg.Histogram(name + ".wait_ms")
		f.svcH = reg.Histogram(name + ".service_ms")
	}
	return f
}

// Name reports the facility name.
func (f *Facility) Name() string { return f.name }

// SetMeta records which node and resource category ("cpu", "net", ...) the
// facility represents; trace events it emits land on that track.
func (f *Facility) SetMeta(node int, category string) {
	f.node = node
	f.category = category
}

// Use requests service time from the facility at default priority and blocks
// the calling process until the service completes.
func (f *Facility) Use(p *Proc, service Duration) { f.UsePriority(p, service, 0) }

// UsePriority requests service at the given priority. Larger priorities are
// served first; ties are FCFS.
func (f *Facility) UsePriority(p *Proc, service Duration, prio int) {
	if service < 0 {
		panic(fmt.Sprintf("sim: facility %s: negative service time", f.name))
	}
	req := f.newRequest()
	f.nextSeq++
	req.p, req.service, req.prio = p, service, prio
	req.seq, req.arrived, req.qid = f.nextSeq, f.eng.now, p.qid
	if f.busy {
		f.enqueue(req)
		f.qlen.Set(float64(f.eng.now), float64(f.qlenN))
		p.Park() // woken when our service completes
		return
	}
	f.serve(req)
	p.Park()
}

// newRequest takes a node from the free list, or grows the pool.
func (f *Facility) newRequest() *facRequest {
	if req := f.freeReqs; req != nil {
		f.freeReqs = req.next
		req.next = nil
		return req
	}
	return new(facRequest)
}

// recycle clears a node's references and returns it to the free list.
func (f *Facility) recycle(req *facRequest) {
	*req = facRequest{next: f.freeReqs}
	f.freeReqs = req
}

// enqueue inserts by (priority desc, seq asc). The common case — a request
// at or below the tail's priority — appends in O(1).
func (f *Facility) enqueue(req *facRequest) {
	f.qlenN++
	if f.qtail == nil {
		f.qhead, f.qtail = req, req
		return
	}
	if f.qtail.prio >= req.prio {
		f.qtail.next = req
		f.qtail = req
		return
	}
	if f.qhead.prio < req.prio {
		req.next = f.qhead
		f.qhead = req
		return
	}
	cur := f.qhead
	for cur.next != nil && cur.next.prio >= req.prio {
		cur = cur.next
	}
	req.next = cur.next
	cur.next = req
	if req.next == nil {
		f.qtail = req
	}
}

// dequeue removes and returns the head of the wait queue, or nil.
func (f *Facility) dequeue() *facRequest {
	req := f.qhead
	if req == nil {
		return nil
	}
	f.qhead = req.next
	if f.qhead == nil {
		f.qtail = nil
	}
	req.next = nil
	f.qlenN--
	return req
}

// serve starts service for req and schedules its completion (HandleEvent).
func (f *Facility) serve(req *facRequest) {
	f.busy = true
	f.cur = req
	now := f.eng.now
	f.util.Set(float64(now), 1)
	f.curSpan = f.eng.StartSpan()
	waitMS := Duration(now - req.arrived).Milliseconds()
	f.wait.Add(waitMS)
	f.waitH.Observe(waitMS)
	f.eng.ScheduleHandler(req.service, f)
}

// HandleEvent completes the in-service request: it wakes the owner,
// recycles the request node, and starts the next queued request. It
// implements the engine's Handler interface and is not meant to be called
// directly.
func (f *Facility) HandleEvent() {
	req := f.cur
	f.served++
	f.svcTime.Add(req.service.Milliseconds())
	f.svcH.Observe(req.service.Milliseconds())
	f.curSpan.End(f.node, f.category, req.p.name, req.qid, "")
	f.eng.Wake(req.p)
	f.recycle(req)
	if next := f.dequeue(); next != nil {
		f.qlen.Set(float64(f.eng.now), float64(f.qlenN))
		f.serve(next)
	} else {
		f.cur = nil
		f.busy = false
		f.util.Set(float64(f.eng.now), 0)
	}
}

// Busy reports whether the facility is currently serving a request.
func (f *Facility) Busy() bool { return f.busy }

// QueueLen reports the number of waiting (not in service) requests.
func (f *Facility) QueueLen() int { return f.qlenN }

// Served reports the number of completed services.
func (f *Facility) Served() int64 { return f.served }

// Utilization reports the fraction of time the facility was busy up to now.
func (f *Facility) Utilization() float64 { return f.util.Mean(float64(f.eng.now)) }

// BusySeconds reports cumulative busy time in simulated seconds since the
// last stats reset. Windowed utilization probes difference two readings:
// delta busy-seconds over delta sim-seconds is the utilization of exactly
// that window.
func (f *Facility) BusySeconds() float64 { return f.util.Integral(float64(f.eng.now)) / 1e9 }

// MeanQueueLen reports the time-average queue length up to now.
func (f *Facility) MeanQueueLen() float64 { return f.qlen.Mean(float64(f.eng.now)) }

// MeanWaitMS reports the mean queueing delay in milliseconds.
func (f *Facility) MeanWaitMS() float64 { return f.wait.Mean() }

// MeanServiceMS reports the mean service time in milliseconds.
func (f *Facility) MeanServiceMS() float64 { return f.svcTime.Mean() }

// ResetStats restarts utilization/queue-length averaging at the current time
// and clears counters and registered histograms; used to discard warm-up
// transients.
func (f *Facility) ResetStats() {
	f.util.ResetAt(float64(f.eng.now))
	f.qlen.ResetAt(float64(f.eng.now))
	f.served = 0
	f.svcTime.Reset()
	f.wait.Reset()
	f.waitH.Reset()
	f.svcH.Reset()
}
