package sim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Facility is a single-server queueing station with FCFS service within a
// priority class and higher priority classes served first (non-preemptive:
// an in-service request always completes). It models the paper's CPU module
// ("FCFS non-preemptive scheduling on all requests, except for byte
// transfers to/from the disk's FIFO buffer", which we map to a high-priority
// class) and the FCFS network interfaces.
type Facility struct {
	eng  *Engine
	name string

	// Observability identity: which node and resource class the facility
	// belongs to (SetMeta). Defaults place it on no node as "facility".
	node     int
	category string

	busy    bool
	queue   []facRequest
	nextSeq uint64

	util    stats.TimeWeighted // 0/1 busy indicator over time
	qlen    stats.TimeWeighted // queue length (excluding in service)
	served  int64
	svcTime stats.Accumulator // service durations, ms
	wait    stats.Accumulator // queueing delays (excluding service), ms

	// Registry handles (nil when the engine has no metrics registry; all
	// methods no-op on nil).
	waitH *obs.Histogram
	svcH  *obs.Histogram
}

type facRequest struct {
	p       *Proc
	service Duration
	prio    int
	seq     uint64
	arrived Time
	qid     int64
}

// NewFacility creates a facility attached to the engine. When the engine
// carries a metrics registry, the facility registers "<name>.wait_ms" and
// "<name>.service_ms" latency histograms separating queueing delay from
// service time.
func NewFacility(e *Engine, name string) *Facility {
	f := &Facility{eng: e, name: name, node: obs.NoNode, category: "facility"}
	f.util.Set(float64(e.now), 0)
	f.qlen.Set(float64(e.now), 0)
	if reg := e.Metrics(); reg != nil {
		f.waitH = reg.Histogram(name + ".wait_ms")
		f.svcH = reg.Histogram(name + ".service_ms")
	}
	return f
}

// Name reports the facility name.
func (f *Facility) Name() string { return f.name }

// SetMeta records which node and resource category ("cpu", "net", ...) the
// facility represents; trace events it emits land on that track.
func (f *Facility) SetMeta(node int, category string) {
	f.node = node
	f.category = category
}

// Use requests service time from the facility at default priority and blocks
// the calling process until the service completes.
func (f *Facility) Use(p *Proc, service Duration) { f.UsePriority(p, service, 0) }

// UsePriority requests service at the given priority. Larger priorities are
// served first; ties are FCFS.
func (f *Facility) UsePriority(p *Proc, service Duration, prio int) {
	if service < 0 {
		panic(fmt.Sprintf("sim: facility %s: negative service time", f.name))
	}
	f.nextSeq++
	req := facRequest{p: p, service: service, prio: prio, seq: f.nextSeq, arrived: f.eng.now, qid: p.qid}
	if f.busy {
		f.enqueue(req)
		f.qlen.Set(float64(f.eng.now), float64(len(f.queue)))
		p.Park() // woken when our service completes
		return
	}
	f.serve(req)
	p.Park()
}

// enqueue inserts by (priority desc, seq asc).
func (f *Facility) enqueue(req facRequest) {
	i := len(f.queue)
	for i > 0 {
		prev := f.queue[i-1]
		if prev.prio >= req.prio {
			break
		}
		i--
	}
	f.queue = append(f.queue, facRequest{})
	copy(f.queue[i+1:], f.queue[i:])
	f.queue[i] = req
}

// serve starts service for req; on completion wakes the owner and starts the
// next queued request.
func (f *Facility) serve(req facRequest) {
	f.busy = true
	now := f.eng.now
	f.util.Set(float64(now), 1)
	waitMS := Duration(now - req.arrived).Milliseconds()
	f.wait.Add(waitMS)
	f.waitH.Observe(waitMS)
	f.eng.Schedule(req.service, func() {
		f.served++
		f.svcTime.Add(req.service.Milliseconds())
		f.svcH.Observe(req.service.Milliseconds())
		if f.eng.sink != nil {
			f.eng.Emit(obs.TraceEvent{
				T: int64(now), Dur: int64(req.service),
				Node: f.node, Kind: obs.KindSpan, Category: f.category,
				Name: req.p.name, QueryID: req.qid,
			})
		}
		f.eng.Wake(req.p)
		if len(f.queue) > 0 {
			next := f.queue[0]
			copy(f.queue, f.queue[1:])
			f.queue = f.queue[:len(f.queue)-1]
			f.qlen.Set(float64(f.eng.now), float64(len(f.queue)))
			f.serve(next)
		} else {
			f.busy = false
			f.util.Set(float64(f.eng.now), 0)
		}
	})
}

// Busy reports whether the facility is currently serving a request.
func (f *Facility) Busy() bool { return f.busy }

// QueueLen reports the number of waiting (not in service) requests.
func (f *Facility) QueueLen() int { return len(f.queue) }

// Served reports the number of completed services.
func (f *Facility) Served() int64 { return f.served }

// Utilization reports the fraction of time the facility was busy up to now.
func (f *Facility) Utilization() float64 { return f.util.Mean(float64(f.eng.now)) }

// MeanQueueLen reports the time-average queue length up to now.
func (f *Facility) MeanQueueLen() float64 { return f.qlen.Mean(float64(f.eng.now)) }

// MeanWaitMS reports the mean queueing delay in milliseconds.
func (f *Facility) MeanWaitMS() float64 { return f.wait.Mean() }

// MeanServiceMS reports the mean service time in milliseconds.
func (f *Facility) MeanServiceMS() float64 { return f.svcTime.Mean() }

// ResetStats restarts utilization/queue-length averaging at the current time
// and clears counters and registered histograms; used to discard warm-up
// transients.
func (f *Facility) ResetStats() {
	f.util.ResetAt(float64(f.eng.now))
	f.qlen.ResetAt(float64(f.eng.now))
	f.served = 0
	f.svcTime.Reset()
	f.wait.Reset()
	f.waitH.Reset()
	f.svcH.Reset()
}
