package sim

import "testing"

// BenchmarkEventThroughput measures raw kernel hand-off speed: one process
// holding repeatedly.
func BenchmarkEventThroughput(b *testing.B) {
	e := New()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFacilityContention measures a contended FCFS facility with 16
// processes.
func BenchmarkFacilityContention(b *testing.B) {
	e := New()
	f := NewFacility(e, "cpu")
	per := b.N/16 + 1
	for w := 0; w < 16; w++ {
		e.Spawn("w", func(p *Proc) {
			for i := 0; i < per; i++ {
				f.Use(p, Microsecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMailboxPingPong measures two processes exchanging messages.
func BenchmarkMailboxPingPong(b *testing.B) {
	e := New()
	ping := NewMailbox[int](e, "ping")
	pong := NewMailbox[int](e, "pong")
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Put(i)
			pong.Get(p)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Get(p)
			pong.Put(i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleCallback measures the pooled schedule/dispatch cycle for
// future-dated callback events (heap path), with no process switches.
func BenchmarkScheduleCallback(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Microsecond, fn)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleHandler measures the closure-free handler path used by
// facilities and disks for their service-completion timers.
func BenchmarkScheduleHandler(b *testing.B) {
	e := New()
	h := &benchHandler{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleHandler(Microsecond, h)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

type benchHandler struct{ n int }

func (h *benchHandler) HandleEvent() { h.n++ }

// BenchmarkReadyRingWake measures the zero-delay scheduling shape every
// Wake takes: ring push, no heap sift.
func BenchmarkReadyRingWake(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(0, fn)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpanDisabled measures the tracing-off span path, which must be a
// single branch.
func BenchmarkSpanDisabled(b *testing.B) {
	e := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := e.StartSpan()
		s.End(0, "cat", "name", 0, "")
	}
}
