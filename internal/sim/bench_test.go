package sim

import "testing"

// BenchmarkEventThroughput measures raw kernel hand-off speed: one process
// holding repeatedly.
func BenchmarkEventThroughput(b *testing.B) {
	e := New()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFacilityContention measures a contended FCFS facility with 16
// processes.
func BenchmarkFacilityContention(b *testing.B) {
	e := New()
	f := NewFacility(e, "cpu")
	per := b.N/16 + 1
	for w := 0; w < 16; w++ {
		e.Spawn("w", func(p *Proc) {
			for i := 0; i < per; i++ {
				f.Use(p, Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMailboxPingPong measures two processes exchanging messages.
func BenchmarkMailboxPingPong(b *testing.B) {
	e := New()
	ping := NewMailbox[int](e, "ping")
	pong := NewMailbox[int](e, "pong")
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Put(i)
			pong.Get(p)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Get(p)
			pong.Put(i)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
