package sim

import "repro/internal/obs"

// Span is a lightweight in-progress trace interval. StartSpan returns the
// zero (inactive) Span when no sink is installed, so the disabled path is a
// single nil check with no allocation and no timestamp capture; emission
// costs — string formatting above all — are only paid when Active reports
// true. Span is a value: store it in a struct field or a local, never share
// it across processes.
type Span struct {
	eng   *Engine
	start Time
}

// StartSpan opens a span at the current simulated time, or returns an
// inactive span when tracing is disabled.
func (e *Engine) StartSpan() Span {
	if e.sink == nil {
		return Span{}
	}
	return Span{eng: e, start: e.now}
}

// Active reports whether ending the span will emit anything. Callers that
// format names or details should guard that work with Active; callers
// passing only static strings may End unguarded.
func (s Span) Active() bool { return s.eng != nil }

// End emits the completed interval [start, now] as a KindSpan trace event
// on the given node and category track. No-op on an inactive span.
func (s Span) End(node int, category, name string, qid int64, detail string) {
	if s.eng == nil {
		return
	}
	s.eng.sink.Emit(obs.TraceEvent{
		T: int64(s.start), Dur: int64(s.eng.now - s.start),
		Node: node, Kind: obs.KindSpan, Category: category,
		Name: name, QueryID: qid, Detail: detail,
	})
}
