// Package sim is a process-oriented discrete-event simulation kernel. It
// plays the role DeNet [Liv88] plays in the paper: model components (disk
// managers, CPU schedulers, network interfaces, relational operators,
// terminals) are written as sequential processes that hold for simulated
// time, use facilities, and exchange messages through mailboxes, while the
// kernel advances a global virtual clock.
//
// Each process runs on its own goroutine, but the kernel hands control to
// exactly one process at a time and every wake-up flows through a single
// event heap ordered by (time, sequence number). Runs are therefore fully
// deterministic for a fixed seed and configuration.
package sim

import (
	"fmt"
	"runtime/debug"

	"repro/internal/obs"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// run. Using a fixed-point representation keeps the event ordering exact.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Milliseconds converts a float64 millisecond count (the unit the paper's
// Table 2 uses) to a Duration, rounding to the nearest nanosecond.
func Milliseconds(ms float64) Duration {
	return Duration(ms*1e6 + 0.5)
}

// Seconds reports t in seconds as a float64, for throughput arithmetic.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Milliseconds reports t in milliseconds as a float64.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// Milliseconds reports d in milliseconds as a float64.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e6 }

// Seconds reports d in seconds as a float64.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

func (t Time) String() string     { return fmt.Sprintf("%.3fms", t.Milliseconds()) }
func (d Duration) String() string { return fmt.Sprintf("%.3fms", d.Milliseconds()) }

// event is a pooled scheduler record: it resumes a parked process, runs a
// callback closure, or invokes a Handler. Records live in the engine's pool
// and are addressed by index; the heap and ready ring order indices, never
// records, so scheduling allocates nothing once the pool is warm.
type event struct {
	t   Time
	seq uint64
	p   *Proc
	fn  func()
	h   Handler
}

// Handler is the closure-free scheduling target: components with a single
// outstanding timer (a facility's in-service completion, a disk transfer)
// implement it and schedule themselves with ScheduleHandler, storing two
// interface words in the pooled event record instead of allocating a new
// closure per request.
type Handler interface {
	// HandleEvent runs when the scheduled time arrives, in event order,
	// exactly like a Schedule callback.
	HandleEvent()
}

// Engine is the simulation kernel. Create one with New, spawn processes,
// then call Run or RunUntil. An Engine is single-threaded by construction
// and must not be shared across goroutines other than its own processes.
type Engine struct {
	now Time
	seq uint64

	// Event storage: pool is the record arena, free holds recycled slots,
	// eheap orders future events by (time, seq), and ready is a FIFO ring of
	// events due at the current instant. Wake-ups and zero-delay schedules
	// go to the ring — an O(1) append with no heap sift — which is safe
	// because a record due "now" always carries a larger sequence number
	// than any same-time record already in the heap, and the clock cannot
	// advance while the ring is non-empty.
	pool   []event
	free   []int32
	eheap  []int32
	ready  []int32 // power-of-two ring buffer
	rhead  int
	rcount int

	// deadline is the active RunUntil horizon, visible to the Hold fast
	// path so a self-advancing process never runs past it.
	deadline Time

	yielded chan struct{}
	stopped bool
	err     error
	active  int           // processes spawned and not yet finished
	parked  int           // processes blocked with no scheduled event
	sink    obs.Sink      // structured trace sink; nil = tracing disabled
	metrics *obs.Registry // metrics registry; nil = metrics disabled
}

// New returns an empty engine at time zero.
func New() *Engine {
	return &Engine{yielded: make(chan struct{})}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// SetSink installs a structured trace sink receiving typed events from
// facilities, hardware models and the execution layer. Pass nil to disable.
// Tracing is intended for the querytrace tool and tests; the hot path pays
// only a nil check when disabled.
func (e *Engine) SetSink(s obs.Sink) { e.sink = s }

// Sink returns the installed trace sink, or nil.
func (e *Engine) Sink() obs.Sink { return e.sink }

// Tracing reports whether a trace sink is installed. Emitters use it to
// skip event construction (and its string formatting) when tracing is off.
func (e *Engine) Tracing() bool { return e.sink != nil }

// Emit sends a trace event to the sink. The caller fills T (span starts
// may lie in the past; EmitNow stamps the current time). No-op without a
// sink.
func (e *Engine) Emit(ev obs.TraceEvent) {
	if e.sink == nil {
		return
	}
	e.sink.Emit(ev)
}

// EmitNow sends a trace event stamped with the current simulated time.
func (e *Engine) EmitNow(ev obs.TraceEvent) {
	if e.sink == nil {
		return
	}
	ev.T = int64(e.now)
	e.sink.Emit(ev)
}

// SetMetrics attaches a metrics registry. Facilities and higher layers
// fetch their metric handles from it at construction, so the registry must
// be attached before the machine is built. Pass nil to disable (the
// default): a nil registry hands out nil handles whose methods no-op.
func (e *Engine) SetMetrics(r *obs.Registry) { e.metrics = r }

// Metrics returns the attached registry, or nil when metrics are disabled.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// alloc places ev in a pooled record and returns its index.
func (e *Engine) alloc(ev event) int32 {
	if n := len(e.free) - 1; n >= 0 {
		idx := e.free[n]
		e.free = e.free[:n]
		e.pool[idx] = ev
		return idx
	}
	e.pool = append(e.pool, ev)
	return int32(len(e.pool) - 1)
}

// release clears a record (dropping its closure/process references) and
// returns its slot to the free list.
func (e *Engine) release(idx int32) {
	e.pool[idx] = event{}
	e.free = append(e.free, idx)
}

// less orders pooled records by (time, sequence).
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.pool[a], &e.pool[b]
	if ea.t != eb.t {
		return ea.t < eb.t
	}
	return ea.seq < eb.seq
}

// heapPush inserts a record index into the future-event heap.
func (e *Engine) heapPush(idx int32) {
	h := append(e.eheap, idx)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.eheap = h
}

// heapPop removes and returns the minimum record index.
func (e *Engine) heapPop() int32 {
	h := e.eheap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && e.less(h[r], h[l]) {
			c = r
		}
		if !e.less(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	e.eheap = h
	return top
}

// readyPush appends a record index to the current-instant FIFO ring.
func (e *Engine) readyPush(idx int32) {
	if e.rcount == len(e.ready) {
		grown := make([]int32, max(16, 2*len(e.ready)))
		for i := 0; i < e.rcount; i++ {
			grown[i] = e.ready[(e.rhead+i)&(len(e.ready)-1)]
		}
		e.ready = grown
		e.rhead = 0
	}
	e.ready[(e.rhead+e.rcount)&(len(e.ready)-1)] = idx
	e.rcount++
}

// readyPop removes the oldest ring entry. Must only be called when rcount>0.
func (e *Engine) readyPop() int32 {
	idx := e.ready[e.rhead]
	e.rhead = (e.rhead + 1) & (len(e.ready) - 1)
	e.rcount--
	return idx
}

// nextEvent reports the index of the next due event — ring head vs heap
// top by (time, seq) — without removing it. Callers must ensure at least
// one event is pending. Ring entries are due at the current instant and
// necessarily carry larger sequence numbers than same-time heap entries,
// so the heap wins ties.
func (e *Engine) nextEvent() (idx int32, fromRing bool) {
	if e.rcount > 0 && (len(e.eheap) == 0 || !e.less(e.eheap[0], e.ready[e.rhead])) {
		return e.ready[e.rhead], true
	}
	return e.eheap[0], false
}

// schedule pools the event and routes it to the ready ring (events due now)
// or the heap (future events).
func (e *Engine) schedule(ev event) {
	if ev.t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %v < %v", ev.t, e.now))
	}
	if ev.t == e.now {
		e.readyPush(e.alloc(ev))
		return
	}
	e.heapPush(e.alloc(ev))
}

// Schedule runs fn at the current time plus d. It may be called from within
// a process or from another callback.
func (e *Engine) Schedule(d Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.schedule(event{t: e.now + Time(d), seq: e.nextSeq(), fn: fn})
}

// ScheduleHandler runs h.HandleEvent at the current time plus d. Unlike
// Schedule it captures no closure: the handler's interface value is stored
// directly in the pooled event record, so a component that embeds its timer
// state schedules with zero allocation.
func (e *Engine) ScheduleHandler(d Duration, h Handler) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.schedule(event{t: e.now + Time(d), seq: e.nextSeq(), h: h})
}

// fail records a fatal error (e.g. a panicking process); Run returns it.
func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.stopped = true
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Resume clears a Stop so Run/RunUntil can continue processing the
// remaining events. It does not clear a recorded process error.
func (e *Engine) Resume() { e.stopped = e.err != nil }

// Run processes events until the heap is empty, Stop is called, or a process
// panics. It returns the first process error, if any. Processes still parked
// on mailboxes when the heap drains are left parked; this is normal for
// server processes.
func (e *Engine) Run() error { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil processes events with timestamps <= deadline, then sets the clock
// to the deadline (if it advanced that far). See Run for the return value.
func (e *Engine) RunUntil(deadline Time) error {
	e.deadline = deadline
	for !e.stopped && (e.rcount > 0 || len(e.eheap) > 0) {
		next, fromRing := e.nextEvent()
		if e.pool[next].t > deadline {
			e.now = deadline
			return e.err
		}
		var idx int32
		if fromRing {
			idx = e.readyPop()
		} else {
			idx = e.heapPop()
		}
		ev := e.pool[idx]
		e.release(idx)
		e.now = ev.t
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if ev.h != nil {
			ev.h.HandleEvent()
			continue
		}
		if ev.p.finished {
			continue // process already ran to completion or unwound
		}
		ev.p.resume <- struct{}{}
		<-e.yielded
	}
	return e.err
}

// Proc is a simulation process: a goroutine that the kernel runs one at a
// time. All Proc methods must be called from the process's own body.
type Proc struct {
	eng      *Engine
	name     string
	resume   chan struct{}
	killed   bool  // Kill was requested; unwind at next resume
	finished bool  // goroutine has exited (normally, by panic, or by Kill)
	qid      int64 // query the process is currently working for (0 = none)
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name reports the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// SetQID tags the process with the query it is currently serving; trace
// events emitted for work this process requests (facility services, disk
// transfers) carry the tag, tying resource activity back to queries. Zero
// clears the tag.
func (p *Proc) SetQID(id int64) { p.qid = id }

// QID reports the process's current query tag (0 = none).
func (p *Proc) QID() int64 { return p.qid }

// Spawn creates a process that begins executing fn at the current time
// (after already-scheduled events at this timestamp).
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt creates a process that begins executing fn at time t.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.active++
	go func() {
		<-p.resume
		defer func() {
			p.finished = true
			e.active--
			if r := recover(); r != nil {
				if r == errKilled {
					// Deliberate teardown via Kill; not an error.
					e.yielded <- struct{}{}
					return
				}
				e.fail(fmt.Errorf("sim: process %q panicked: %v\n%s", name, r, debug.Stack()))
			}
			e.yielded <- struct{}{}
		}()
		fn(p)
	}()
	e.schedule(event{t: t, seq: e.nextSeq(), p: p})
	return p
}

// errKilled is the sentinel panic used to unwind a killed process.
var errKilled = new(int)

// yield returns control to the kernel until the process is resumed.
//
// Direct-switch fast path: when the next due event is a plain process
// resume within the active RunUntil horizon, the yielding process performs
// the kernel's dispatch itself — pop, release, advance the clock — and
// hands control straight to the target (or simply keeps running when the
// target is itself), skipping the two-way handoff through the kernel
// goroutine. The kernel stays blocked on its yielded channel throughout a
// switch chain; exactly one goroutine holds control at any instant, and the
// channel transfers publish all kernel-state writes to the next holder.
// Callback and handler events are never run here: they must execute on the
// kernel goroutine so a panic in one fails the run rather than the
// coincidentally yielding process. Event pop order is identical to the
// kernel loop's, so determinism is unchanged.
func (p *Proc) yield() {
	e := p.eng
	for !e.stopped && (e.rcount > 0 || len(e.eheap) > 0) {
		next, fromRing := e.nextEvent()
		ev := &e.pool[next]
		if ev.t > e.deadline || ev.fn != nil || ev.h != nil {
			break
		}
		if fromRing {
			e.readyPop()
		} else {
			e.heapPop()
		}
		tgt, t := ev.p, ev.t
		e.release(next)
		e.now = t
		if tgt.finished {
			continue // stale event for a completed process
		}
		if tgt == p {
			if p.killed {
				panic(errKilled)
			}
			return
		}
		tgt.resume <- struct{}{}
		<-p.resume
		if p.killed {
			panic(errKilled)
		}
		return
	}
	e.yielded <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errKilled)
	}
}

// Hold advances the process by d simulated time. When the process's own
// wake-up turns out to be the next due event, yield's direct-switch fast
// path advances the clock in place and Hold returns without a single
// goroutine handoff.
func (p *Proc) Hold(d Duration) {
	if d < 0 {
		panic("sim: negative hold")
	}
	e := p.eng
	e.schedule(event{t: e.now + Time(d), seq: e.nextSeq(), p: p})
	p.yield()
}

// park blocks the process with no scheduled wake-up; some other entity must
// call wake. Used by mailboxes, facilities and triggers.
func (p *Proc) Park() {
	p.eng.parked++
	defer func() { p.eng.parked-- }()
	p.yield()
}

// wake schedules the parked process to resume at the current time.
func (e *Engine) Wake(p *Proc) {
	e.schedule(event{t: e.now, seq: e.nextSeq(), p: p})
}

// Kill tears down a parked or held process. The next time the process would
// be resumed it unwinds instead. Killing an already-finished process is a
// no-op. Used by experiment drivers to retire terminal processes.
func (e *Engine) Kill(p *Proc) {
	if p.finished || p.killed {
		return
	}
	p.killed = true
	// If parked (no event scheduled), resume it now so it can unwind.
	e.schedule(event{t: e.now, seq: e.nextSeq(), p: p})
}

// Active reports the number of live processes (running, held, or parked).
func (e *Engine) Active() int { return e.active }

// Parked reports the number of processes blocked with no scheduled event.
func (e *Engine) Parked() int { return e.parked }

// Pending reports the number of scheduled events (heap and ready ring).
func (e *Engine) Pending() int { return len(e.eheap) + e.rcount }
