package gamma

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

func seriesByName(series []obs.SeriesData, name string) *obs.SeriesData {
	for i := range series {
		if series[i].Name == name {
			return &series[i]
		}
	}
	return nil
}

// A closed run with telemetry armed must stamp the machine probe series —
// and produce the same series on replay, because sampling rides sim time.
func TestRunTelemetrySeries(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	cfg.Telemetry = &TelemetrySpec{Window: 50 * sim.Millisecond}
	m := buildRange(t, rel, cfg)
	mix := workload.LowLow(rel.Cardinality())
	spec := RunSpec{MPL: 4, WarmupQueries: 20, MeasureQueries: 200}

	res, err := m.Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("telemetry armed but Series is empty")
	}
	util := seriesByName(res.Series, "node0.disk.util")
	if util == nil {
		t.Fatalf("node0.disk.util missing from %d series", len(res.Series))
	}
	if util.Kind != "rate" || len(util.Points) == 0 {
		t.Fatalf("node0.disk.util = %+v", util)
	}
	// Windowed utilization is busy-seconds per second: within [0, 1].
	var busy bool
	for _, pt := range util.Points {
		if pt.V < 0 || pt.V > 1.000001 {
			t.Fatalf("windowed utilization %g out of range at %dns", pt.V, pt.TNS)
		}
		if pt.V > 0 {
			busy = true
		}
	}
	if !busy {
		t.Error("disk never busy across the measured windows")
	}
	skew := seriesByName(res.Series, "disk.skew")
	if skew == nil || len(skew.Points) != len(util.Points) {
		t.Fatalf("disk.skew missing or misaligned: %+v", skew)
	}
	for _, pt := range skew.Points {
		// Skew is max/mean over nodes: 0 (idle window) or >= 1.
		if pt.V != 0 && pt.V < 1 {
			t.Fatalf("skew %g at %dns, want 0 or >= 1", pt.V, pt.TNS)
		}
	}
	// The sampler rebases at the warm-up boundary: every stamped window ends
	// strictly after the measurement started.
	if util.Points[0].TNS == 0 {
		t.Error("series includes the pre-warm-up origin window")
	}

	rep, err := m.Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Series, rep.Series) {
		t.Fatal("same seed+spec produced different time series")
	}
}

// Arming telemetry must not perturb the simulation: the measured result
// minus the Series block is identical to a telemetry-free run's.
func TestRunTelemetryDoesNotPerturbSchedule(t *testing.T) {
	rel := smallRelation(t, 0)
	mix := workload.LowLow(rel.Cardinality())
	spec := RunSpec{MPL: 4, WarmupQueries: 10, MeasureQueries: 100}

	plain, err := buildRange(t, rel, smallConfig()).Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Telemetry = &TelemetrySpec{Window: 50 * sim.Millisecond}
	sampled, err := buildRange(t, rel, cfg).Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled.Series) == 0 {
		t.Fatal("telemetry armed but Series is empty")
	}
	sampled.Series = nil
	if !reflect.DeepEqual(plain, sampled) {
		t.Fatalf("telemetry perturbed the run:\nplain   %+v\nsampled %+v", plain, sampled)
	}
}

// A serving run with telemetry armed carries both the machine probes and
// the serving-layer series, plus the SLO burn verdict.
func TestRunServeTelemetry(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	cfg.Telemetry = &TelemetrySpec{Window: 50 * sim.Millisecond, BurnBudget: 0.2}
	m := buildRange(t, rel, cfg)
	mix := workload.LowLow(rel.Cardinality())
	spec := ServeSpec{
		Arrival:        serve.ArrivalSpec{Kind: serve.Poisson, RateQPS: 300},
		MaxInService:   8,
		WarmupQueries:  20,
		MeasureQueries: 150,
		MaxSimTime:     20 * sim.Second,
	}

	res, err := m.RunServe(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"serve.goodput_qps", "serve.queue_depth", "node0.disk.util"} {
		if seriesByName(res.Series, name) == nil {
			t.Errorf("series %s missing", name)
		}
	}
	burn := res.Serve.Burn
	if burn == nil || burn.Windows == 0 {
		t.Fatalf("burn verdict missing: %+v", burn)
	}
	if burn.Budget != 0.2 {
		t.Errorf("burn budget = %g, want the spec's 0.2", burn.Budget)
	}
	if burn.WindowNS != int64(50*sim.Millisecond) {
		t.Errorf("burn window = %dns, want 50ms", burn.WindowNS)
	}

	rep, err := m.RunServe(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, rep) {
		t.Fatal("same seed+spec produced different serving telemetry")
	}
}
