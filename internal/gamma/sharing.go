package gamma

import (
	"fmt"

	"repro/internal/sim"
)

// DefaultSharingWindow is the batching window when the spec gives none:
// long enough that selections admitted in the same burst coalesce, short
// enough to stay well under a single query's service time.
const DefaultSharingWindow = 5 * sim.Millisecond

// SharingSpec arms the shared-scan manager on the machine: concurrent
// selections whose scans hit the same fragment with the same access method
// within the batching window are predicate-grouped and run as one disk
// pass (see exec.SharedScans). Nil (the default) leaves the simulation
// schedule byte-identical to a build without sharing support. Sharing
// requires the legacy scheduling path — Config.Validate rejects it
// combined with Faults or ChainedReplicas.
type SharingSpec struct {
	// Window is the batching window in simulated time: the first selection
	// to open a predicate group waits at most this long for others to join
	// its disk pass. Default DefaultSharingWindow (5ms).
	Window sim.Duration
}

// window resolves the batching window.
func (s *SharingSpec) window() sim.Duration {
	if s == nil || s.Window == 0 {
		return DefaultSharingWindow
	}
	return s.Window
}

// validate rejects nonsensical windows (nil is valid: sharing off).
func (s *SharingSpec) validate() error {
	if s != nil && s.Window < 0 {
		return fmt.Errorf("gamma: negative sharing window %v", s.Window)
	}
	return nil
}
