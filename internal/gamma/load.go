package gamma

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stats"
)

// LoadResult reports the simulated cost of declustering the relation — the
// partitioning process Section 3.1 describes. It is measured on a fresh
// machine: the source relation is scanned sequentially from node 0's disk,
// tuples are shipped to their home processors in full packets, each node
// writes its fragment and builds its indexes, and (for BERD) the auxiliary
// relations are constructed with a second scan-and-ship pass. MAGIC's
// directory construction also requires an extra analysis scan of the
// relation (the grid file insertion phase) before any tuple moves.
type LoadResult struct {
	Strategy string
	// ScanPasses over the source relation the strategy needs (range: 1;
	// BERD: 2 — base + auxiliary; MAGIC: 2 — grid construction + placement).
	ScanPasses int
	// Elapsed simulated time for the whole load.
	Elapsed sim.Duration
	// PagesWritten across all nodes (fragments + indexes + auxiliaries).
	PagesWritten int
	// PacketsShipped across the interconnect.
	PacketsShipped int64
}

// String summarizes the load.
func (r LoadResult) String() string {
	return fmt.Sprintf("%s: %d scan pass(es), %.1fs simulated, %d pages written, %d packets",
		r.Strategy, r.ScanPasses, r.Elapsed.Seconds(), r.PagesWritten, r.PacketsShipped)
}

// SimulateLoad measures the declustering cost of this machine's placement.
// It resets the machine afterwards so subsequent Runs start clean.
func (m *Machine) SimulateLoad() (LoadResult, error) {
	m.reset()
	cfg := m.Cfg
	eng := m.Eng
	params := cfg.HW

	res := LoadResult{Strategy: m.Placement.Name(), ScanPasses: 1}
	switch m.Placement.(type) {
	case *core.BERDPlacement:
		res.ScanPasses = 2 // base pass + auxiliary construction pass
	case *core.MAGICPlacement:
		res.ScanPasses = 2 // grid-file analysis pass + placement pass
	}

	// Source relation: stored contiguously on node 0's disk before
	// declustering. It occupies sourcePages sequential pages.
	sourcePages := params.PagesForTuples(m.Relation.Cardinality())
	if sourcePages > params.PagesPerDisk() {
		return res, fmt.Errorf("gamma: source relation (%d pages) exceeds one disk", sourcePages)
	}

	loader := m.Nodes[0]
	packetsBefore := m.totalPacketsSent()
	done := sim.NewTrigger(eng)
	var simErr error

	eng.Spawn("loader", func(p *sim.Proc) {
		defer done.Fire()
		// Analysis passes: sequential scans of the source relation with
		// per-page processing (grid construction / auxiliary extraction).
		for pass := 1; pass < res.ScanPasses; pass++ {
			for pg := 0; pg < sourcePages; pg++ {
				if err := loader.Disk.Read(p, pg); err != nil {
					simErr = err
					return
				}
				loader.CPU.Execute(p, params.ReadPageInstr)
			}
		}
		// Placement pass: scan again, ship each node its tuples in full
		// packets, and have each node write its fragment and indexes.
		for pg := 0; pg < sourcePages; pg++ {
			if err := loader.Disk.Read(p, pg); err != nil {
				simErr = err
				return
			}
			loader.CPU.Execute(p, params.ReadPageInstr)
		}
		// Shipping: every tuple crosses the network to its home (tuples
		// landing on node 0 stay local). Modeled as the bulk packet count
		// per destination rather than per-tuple sends.
		for node := 1; node < len(m.Nodes); node++ { // fixed order: determinism
			bytes := params.TupleBytes(len(m.relations[0].fragTuples[node]))
			if bytes == 0 {
				continue
			}
			// Payload-free bulk transfer: the receiving node's operator
			// manager ignores fragments without a payload.
			m.Net.Send(p, loader.CPU, hw.Message{From: 0, To: node, Bytes: bytes})
		}
		// Each node writes its data, index and auxiliary pages. The writes
		// proceed in parallel across nodes; the loader waits for all.
		gate := sim.NewGate(eng, len(m.Nodes))
		info, _ := m.Catalog.Lookup(m.Relation.Name)
		for i, n := range m.Nodes {
			node := n
			pages := info.Nodes[i].TotalPages()
			res.PagesWritten += pages
			eng.Spawn(fmt.Sprintf("load.write%d", i), func(wp *sim.Proc) {
				defer gate.Done()
				for pg := 0; pg < pages; pg++ {
					node.CPU.Execute(wp, params.WritePageInstr)
					if err := node.Disk.Write(wp, pg); err != nil {
						simErr = err
						return
					}
				}
			})
		}
		gate.Wait(p)
	})

	if err := eng.RunUntil(sim.Time(6 * 3600 * sim.Second)); err != nil {
		return res, err
	}
	if !done.Fired() {
		simErr = fmt.Errorf("gamma: load did not complete within the simulated bound")
	}
	res.Elapsed = sim.Duration(eng.Now())
	res.PacketsShipped = m.totalPacketsSent() - packetsBefore
	m.reset() // leave the machine clean for measurement runs
	return res, simErr
}

func (m *Machine) totalPacketsSent() int64 {
	var t int64
	for i := range m.Nodes {
		t += m.Net.Sent(i)
	}
	return t
}

// LoadTable renders a set of load results.
func LoadTable(results []LoadResult) *stats.Table {
	tb := stats.NewTable("Declustering (load) cost",
		"strategy", "scan passes", "simulated time", "pages written", "packets")
	for _, r := range results {
		tb.AddRow(r.Strategy, r.ScanPasses,
			fmt.Sprintf("%.1fs", r.Elapsed.Seconds()), r.PagesWritten, r.PacketsShipped)
	}
	return tb
}
