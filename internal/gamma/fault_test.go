package gamma

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Golden determinism: a fixed seed and fault spec must reproduce the run
// exactly — identical fault-event log, identical figure-level numbers —
// across repeated runs of the same machine.
func TestFaultRunDeterministic(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	cfg.ChainedReplicas = true
	cfg.Faults = &fault.Spec{
		Events: []fault.Event{
			{At: 5 * sim.Millisecond, Kind: fault.DiskFail, Node: 0, Dur: 200 * sim.Millisecond},
			{At: 10 * sim.Millisecond, Kind: fault.NodeCrash, Node: 3, Dur: 100 * sim.Millisecond},
		},
		MTBF: 100 * sim.Millisecond,
	}
	m := buildRange(t, rel, cfg)
	mix := workload.LowLow(rel.Cardinality())
	spec := RunSpec{MPL: 4, WarmupQueries: 10, MeasureQueries: 60}

	a, err := m.Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.FaultLog) < 4 {
		t.Fatalf("fault log has %d records, want the scheduled pair plus MTBF traffic", len(a.FaultLog))
	}
	if !reflect.DeepEqual(a.FaultLog, b.FaultLog) {
		t.Fatalf("same seed+spec produced different fault logs:\n%v\n%v", a.FaultLog, b.FaultLog)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed+spec produced different results:\n%+v\n%+v", a, b)
	}
	if a.Outcomes.Succeeded() == 0 {
		t.Fatalf("no queries succeeded under faults: %s", a.Outcomes)
	}
}

// An armed-but-empty fault spec and the plain legacy config must produce
// identical results: the fault plumbing may not perturb a healthy run.
func TestEmptyFaultSpecMatchesLegacy(t *testing.T) {
	rel := smallRelation(t, 0)
	mix := workload.LowLow(rel.Cardinality())
	spec := RunSpec{MPL: 4, WarmupQueries: 10, MeasureQueries: 50}

	legacy, err := buildRange(t, rel, smallConfig()).Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Faults = &fault.Spec{} // Enabled() == false: stays on the legacy path
	armed, err := buildRange(t, rel, cfg).Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, armed) {
		t.Fatalf("empty fault spec perturbed the run:\n%+v\n%+v", legacy, armed)
	}
}

// Chained replicas keep a machine with a fail-stopped disk serving: queries
// whose primary fragment lives on the dead disk reroute to the chain
// successor and still succeed.
func TestDegradedRunSurvivesDiskKill(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	cfg.ChainedReplicas = true
	cfg.Faults = &fault.Spec{Events: []fault.Event{
		{At: sim.Millisecond, Kind: fault.DiskFail, Node: 2},
	}}
	m := buildRange(t, rel, cfg)
	mix := workload.LowLow(rel.Cardinality())
	res, err := m.Run(mix, RunSpec{MPL: 4, WarmupQueries: 10, MeasureQueries: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultLog) != 1 || res.FaultLog[0].Kind != "disk-fail" {
		t.Fatalf("fault log = %v", res.FaultLog)
	}
	if res.Outcomes.Succeeded() == 0 {
		t.Fatalf("no queries succeeded with one dead disk: %s", res.Outcomes)
	}
	if res.Outcomes.Failed > 0 || res.Outcomes.TimedOut > 0 {
		t.Fatalf("queries abandoned despite chained replicas: %s", res.Outcomes)
	}
	if res.ThroughputQPS <= 0 {
		t.Fatalf("throughput = %g", res.ThroughputQPS)
	}
}

// A node that crashes and restarts mid-run: in-flight operators time out or
// error, the retry path reroutes them, and the window still completes.
func TestDegradedRunSurvivesNodeCrashWindow(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	cfg.ChainedReplicas = true
	cfg.Faults = &fault.Spec{Events: []fault.Event{
		{At: 20 * sim.Millisecond, Kind: fault.NodeCrash, Node: 1, Dur: 300 * sim.Millisecond},
	}}
	m := buildRange(t, rel, cfg)
	mix := workload.LowLow(rel.Cardinality())
	res, err := m.Run(mix, RunSpec{MPL: 4, WarmupQueries: 10, MeasureQueries: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes.Succeeded() == 0 {
		t.Fatalf("no queries succeeded through the crash window: %s", res.Outcomes)
	}
	if len(res.FaultLog) != 2 {
		t.Fatalf("fault log = %v, want crash + restart", res.FaultLog)
	}
}

// Fault-spec validation failures must surface at Build time, not mid-run.
func TestBuildRejectsBadFaultSpec(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	cfg.Faults = &fault.Spec{Events: []fault.Event{
		{At: sim.Millisecond, Kind: fault.DiskFail, Node: 99},
	}}
	pl := buildRange(t, rel, smallConfig()).Placement
	if _, err := Build(rel, pl, cfg); err == nil {
		t.Fatal("Build accepted an out-of-range fault target")
	}
}
