package gamma

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestHeatNilWhenDisabled(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	if m.Heat != nil {
		t.Fatal("Heat armed without Config.Heat")
	}
	mix := workload.LowLow(rel.Cardinality())
	res, err := m.Run(mix, RunSpec{MPL: 2, WarmupQueries: 5, MeasureQueries: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Heat != nil || res.HotFragments != nil {
		t.Error("disabled run carried a heat snapshot")
	}
}

// The accounting invariant: with MPL 1 (no request in flight at the
// warm-up boundary or at stop) every page request is either a buffer hit
// or exactly one physical disk read, so per-node fragment miss sums equal
// the node's disk read counter, and per-fragment pages equal hits+misses.
func TestRunHeatInvariant(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	cfg.Heat = &HeatSpec{}
	m := buildBERD(t, rel, cfg) // BERD: primary and aux fragments
	mix := workload.LowLow(rel.Cardinality())
	res, err := m.Run(mix, RunSpec{MPL: 1, WarmupQueries: 10, MeasureQueries: 60})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Heat
	if s == nil || len(s.Rows) == 0 {
		t.Fatal("heat armed but snapshot empty")
	}
	if s.TotalPages == 0 {
		t.Fatal("no pages accounted")
	}
	kinds := map[string]bool{}
	missByNode := map[int]int64{}
	for _, r := range s.Rows {
		kinds[r.Kind] = true
		missByNode[r.Node] += r.BufMisses
		if got, want := r.BufHits+r.BufMisses, r.Pages(); got != want {
			t.Errorf("%s@n%d: hits+misses = %d, pages = %d", r.Label(), r.Node, got, want)
		}
		if r.SizePages <= 0 {
			t.Errorf("%s@n%d: footprint %d, want > 0", r.Label(), r.Node, r.SizePages)
		}
		if r.Remote != 0 {
			t.Errorf("%s@n%d: %d remote reads on a fault-free run", r.Label(), r.Node, r.Remote)
		}
	}
	if !kinds["aux"] {
		t.Error("BERD run accounted no aux fragment traffic")
	}
	for _, nu := range res.NodeStats {
		if missByNode[nu.Node] != nu.DiskReads {
			t.Errorf("node %d: fragment misses %d != disk reads %d",
				nu.Node, missByNode[nu.Node], nu.DiskReads)
		}
	}
	if len(res.HotFragments) == 0 {
		t.Error("no hot fragments reported")
	}
	for i := 1; i < len(res.HotFragments); i++ {
		if res.HotFragments[i].Pages > res.HotFragments[i-1].Pages {
			t.Fatalf("hot fragments not ranked: %+v", res.HotFragments)
		}
	}
}

func TestRunHeatDeterministic(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	cfg.Heat = &HeatSpec{TopK: 3}
	m := buildRange(t, rel, cfg)
	mix := workload.LowLow(rel.Cardinality())
	spec := RunSpec{MPL: 4, WarmupQueries: 10, MeasureQueries: 50}
	a, err := m.Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	var ca, cb strings.Builder
	if err := obs.WriteHeatCSV(&ca, a.Heat); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteHeatCSV(&cb, b.Heat); err != nil {
		t.Fatal(err)
	}
	if ca.String() != cb.String() {
		t.Errorf("replays produced different heat CSVs:\n%s\nvs:\n%s", ca.String(), cb.String())
	}
	if len(a.HotFragments) == 0 || !reflect.DeepEqual(a.HotFragments, b.HotFragments) {
		t.Errorf("hot fragments differ: %+v vs %+v", a.HotFragments, b.HotFragments)
	}
}

// Arming heat must not perturb the simulation: the measured result minus
// the heat blocks is identical to a heat-free run's.
func TestRunHeatDoesNotPerturbSchedule(t *testing.T) {
	rel := smallRelation(t, 0)
	mix := workload.LowLow(rel.Cardinality())
	spec := RunSpec{MPL: 4, WarmupQueries: 10, MeasureQueries: 100}

	plain, err := buildRange(t, rel, smallConfig()).Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Heat = &HeatSpec{}
	heated, err := buildRange(t, rel, cfg).Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if heated.Heat == nil {
		t.Fatal("heat armed but snapshot missing")
	}
	heated.Heat = nil
	heated.HotFragments = nil
	if !reflect.DeepEqual(plain, heated) {
		t.Fatalf("heat accounting perturbed the run:\nplain  %+v\nheated %+v", plain, heated)
	}
}

// With telemetry and heat both armed, per-fragment EWMA heat series show
// up in the run's time series with fragment/node/strategy labels, plus the
// concentration gauges.
func TestRunHeatTelemetrySeries(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	cfg.Telemetry = &TelemetrySpec{Window: 50 * sim.Millisecond}
	cfg.Heat = &HeatSpec{}
	m := buildRange(t, rel, cfg)
	mix := workload.LowLow(rel.Cardinality())
	res, err := m.Run(mix, RunSpec{MPL: 4, WarmupQueries: 20, MeasureQueries: 200})
	if err != nil {
		t.Fatal(err)
	}
	var fragSeries *obs.SeriesData
	for i := range res.Series {
		if strings.HasPrefix(res.Series[i].Name, "frag.") && strings.HasSuffix(res.Series[i].Name, ".heat") {
			fragSeries = &res.Series[i]
			break
		}
	}
	if fragSeries == nil {
		t.Fatalf("no frag.*.heat series among %d series", len(res.Series))
	}
	for _, want := range []string{`fragment="`, `node="`, `strategy="`} {
		if !strings.Contains(fragSeries.Labels, want) {
			t.Errorf("labels %q missing %s", fragSeries.Labels, want)
		}
	}
	var sawHot bool
	for _, pt := range fragSeries.Points {
		if pt.V < 0 {
			t.Fatalf("negative heat %g at %dns", pt.V, pt.TNS)
		}
		if pt.V > 0 {
			sawHot = true
		}
	}
	if !sawHot {
		t.Error("fragment heat never rose above zero")
	}
	for _, name := range []string{"frag.heat.topk_share", "frag.heat.hhi"} {
		sd := seriesByName(res.Series, name)
		if sd == nil {
			t.Errorf("series %s missing", name)
			continue
		}
		for _, pt := range sd.Points {
			if pt.V < 0 || pt.V > 1.000001 {
				t.Errorf("%s = %g out of [0,1]", name, pt.V)
			}
		}
	}
}

func TestHeatSpecDefaults(t *testing.T) {
	var s *HeatSpec
	if got := s.topK(); got != obs.DefaultHeatTopK {
		t.Errorf("nil spec topK = %d", got)
	}
	if got := (&HeatSpec{}).decay(); got != DefaultHeatDecay {
		t.Errorf("zero spec decay = %g", got)
	}
	if got := (&HeatSpec{TopK: 7, Decay: 0.5}).topK(); got != 7 {
		t.Errorf("topK = %d, want 7", got)
	}
	if got := (&HeatSpec{Decay: 0.5}).decay(); got != 0.5 {
		t.Errorf("decay = %g, want 0.5", got)
	}
	if got := (&HeatSpec{Decay: 1.5}).decay(); got != DefaultHeatDecay {
		t.Errorf("out-of-range decay = %g, want default", got)
	}
}
