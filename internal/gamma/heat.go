package gamma

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// HeatSpec arms fragment-granularity heat accounting on the machine:
// every reset builds a fresh obs.HeatMap and attaches one accumulator per
// physical fragment (primary, chained-replica backup, auxiliary trees),
// which the execution layer increments allocation-free on every access.
// Run/RunServe reset the map at the warm-up boundary and snapshot it into
// the result, including the HotFragments report. When Telemetry is also
// armed, the sampler additionally carries per-fragment exponentially
// decayed heat series and windowed concentration gauges with
// fragment/node/strategy labels for /metrics.
type HeatSpec struct {
	// TopK bounds the HotFragments report and the top-K share index.
	// Default obs.DefaultHeatTopK (5).
	TopK int
	// Decay is the per-window retention of the decayed-heat telemetry
	// series in (0,1): each window's heat is decay*previous + pages read
	// this window. Default 0.8. Only used when Telemetry is armed.
	Decay float64
}

// topK resolves the hot-fragment report size.
func (h *HeatSpec) topK() int {
	if h == nil || h.TopK <= 0 {
		return obs.DefaultHeatTopK
	}
	return h.TopK
}

// DefaultHeatDecay is the per-window decayed-heat retention when the spec
// gives none.
const DefaultHeatDecay = 0.8

// decay resolves the per-window retention factor.
func (h *HeatSpec) decay() float64 {
	if h == nil || h.Decay <= 0 || h.Decay >= 1 {
		return DefaultHeatDecay
	}
	return h.Decay
}

// validate rejects nonsensical heat parameters (nil is valid: heat off;
// zero values defer to defaults).
func (h *HeatSpec) validate() error {
	if h == nil {
		return nil
	}
	if h.TopK < 0 {
		return fmt.Errorf("gamma: negative heat top-k %d", h.TopK)
	}
	if h.Decay < 0 || h.Decay >= 1 {
		return fmt.Errorf("gamma: heat decay %v outside [0,1)", h.Decay)
	}
	return nil
}

// registerHeatSeries adds the heat time-series to the machine sampler:
// one decayed-heat gauge per fragment (labelled with fragment, node and
// strategy so /metrics exposes dimensioned heat) plus machine-level
// windowed concentration gauges over the same decayed values. Like
// skewProbe, each closure re-primes itself from the cumulative counters
// whenever it runs, so a Rebase at the warm-up boundary (which invokes
// every probe after the heat map was reset) realigns and re-zeroes it.
func registerHeatSeries(s *obs.Sampler, hm *obs.HeatMap, spec *HeatSpec, strategy string) {
	frags := hm.Frags()
	decay := spec.decay()
	for _, fh := range frags {
		fh := fh
		id := fh.ID()
		name := fmt.Sprintf("frag.%s.node%d.heat", id.Label(), id.Node)
		labels := fmt.Sprintf(`fragment=%q,node="%d",strategy=%q`, id.Label(), id.Node, strategy)
		var prev, heat float64
		s.RegisterLabeled(name, labels, obs.SeriesGauge, func() float64 {
			v := float64(fh.Pages())
			d := v - prev
			prev = v
			if d < 0 { // counters were reset: start the decay fresh
				d, heat = 0, 0
			}
			heat = decay*heat + d
			return heat
		})
	}
	k := spec.topK()
	s.RegisterLabeled("frag.heat.topk_share", fmt.Sprintf(`k="%d",strategy=%q`, k, strategy),
		obs.SeriesGauge, heatSharesProbe(frags, decay, func(shares []float64) float64 {
			sort.Sort(sort.Reverse(sort.Float64Slice(shares)))
			n := k
			if n > len(shares) {
				n = len(shares)
			}
			var top float64
			for _, sh := range shares[:n] {
				top += sh
			}
			return top
		}))
	s.RegisterLabeled("frag.heat.hhi", fmt.Sprintf("strategy=%q", strategy),
		obs.SeriesGauge, heatSharesProbe(frags, decay, func(shares []float64) float64 {
			var hhi float64
			for _, sh := range shares {
				hhi += sh * sh
			}
			return hhi
		}))
}

// heatSharesProbe builds a gauge probe that maintains its own decayed
// per-fragment heat vector (independent closure state, so probes need no
// sampling-order coupling) and reduces the share distribution with f.
// Reports 0 while no fragment has any decayed heat.
func heatSharesProbe(frags []*obs.FragHeat, decay float64, f func(shares []float64) float64) obs.Probe {
	prev := make([]float64, len(frags))
	heat := make([]float64, len(frags))
	shares := make([]float64, len(frags))
	return func() float64 {
		var total float64
		for i, fh := range frags {
			v := float64(fh.Pages())
			d := v - prev[i]
			prev[i] = v
			if d < 0 {
				d, heat[i] = 0, 0
			}
			heat[i] = decay*heat[i] + d
			total += heat[i]
		}
		if total <= 0 || len(frags) == 0 {
			return 0
		}
		for i := range heat {
			shares[i] = heat[i] / total
		}
		return f(shares)
	}
}
