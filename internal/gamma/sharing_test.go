package gamma

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

func rangePlacement(rel *storage.Relation, cfg Config) core.Placement {
	return core.NewRangeForRelation(rel, storage.Unique1, cfg.HW.NumProcessors)
}

func TestSharingOffByDefault(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	if m.Host.Shared != nil {
		t.Fatal("shared-scan manager armed without Config.Sharing")
	}
	res, err := m.Run(workload.LowLow(rel.Cardinality()), RunSpec{MPL: 2, WarmupQueries: 5, MeasureQueries: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sharing != nil {
		t.Error("disabled run carried sharing stats")
	}
}

// Sharing composes with degraded-mode scheduling (attempt-tagged batches):
// a machine with both armed builds, runs, and still answers correctly.
func TestSharingComposesWithDegradedMode(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig().With(WithSharing(SharingSpec{}), WithChainedReplicas())
	pl := rangePlacement(rel, cfg)
	m, err := Build(rel, pl, cfg)
	if err != nil {
		t.Fatalf("Build(sharing+replicas) err = %v, want composed build to succeed", err)
	}
	res, err := m.Run(workload.LowLow(rel.Cardinality()), RunSpec{MPL: 4, WarmupQueries: 5, MeasureQueries: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sharing == nil || res.Sharing.Batches == 0 {
		t.Fatalf("sharing stats = %+v, want flushed batches under degraded mode", res.Sharing)
	}
}

func TestConfigValidateSpecs(t *testing.T) {
	rel := smallRelation(t, 0)
	for name, cfg := range map[string]Config{
		"neg-share-window": smallConfig().With(WithSharing(SharingSpec{Window: -sim.Second})),
		"neg-telem-window": smallConfig().With(WithTelemetry(TelemetrySpec{Window: -sim.Second})),
		"bad-burn":         smallConfig().With(WithTelemetry(TelemetrySpec{BurnBudget: 1.5})),
		"bad-decay":        smallConfig().With(WithHeat(HeatSpec{Decay: 2})),
		"neg-topk":         smallConfig().With(WithHeat(HeatSpec{TopK: -1})),
	} {
		if _, err := Build(rel, rangePlacement(rel, cfg), cfg); err == nil {
			t.Errorf("%s: Build accepted invalid config", name)
		}
	}
}

// sharingRun executes one hot-spot run at the given MPL with or without
// sharing and returns the result.
func sharingRun(t *testing.T, rel *storage.Relation, share bool, mpl int) RunResult {
	t.Helper()
	// A small pool relative to the fragments keeps the run disk-bound —
	// the regime where re-reads exist for sharing to save.
	cfg := smallConfig()
	cfg.BufferPages = 6
	if share {
		cfg = cfg.With(WithSharing(SharingSpec{Window: 10 * sim.Millisecond}))
	}
	m := buildRange(t, rel, cfg)
	mix := workload.ModerateModerate(rel.Cardinality()).WithHotSpot(0.8, 0.05)
	res, err := m.Run(mix, RunSpec{MPL: mpl, WarmupQueries: 20, MeasureQueries: 150})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSharingSavesDiskReads is the tentpole's behavioural claim: with an
// overlapping (hot-spot) selection workload at MPL >= 8, predicate-grouped
// batching reads fewer disk pages per query than unshared execution, while
// producing the same query answers.
func TestSharingSavesDiskReads(t *testing.T) {
	rel := smallRelation(t, 0)
	off := sharingRun(t, rel, false, 8)
	on := sharingRun(t, rel, true, 8)

	if on.Sharing == nil {
		t.Fatal("sharing run carried no stats")
	}
	if on.Sharing.Batches == 0 || on.Sharing.SharedOps == 0 {
		t.Fatalf("no batching happened: %+v", *on.Sharing)
	}
	if on.Sharing.PagesSaved() <= 0 {
		t.Fatalf("no pages deduped: %+v", *on.Sharing)
	}
	if on.DiskReadsPerQry >= off.DiskReadsPerQry {
		t.Errorf("sharing did not save disk reads: on %.2f/qry, off %.2f/qry",
			on.DiskReadsPerQry, off.DiskReadsPerQry)
	}
	// (Per-query answer equivalence is proven byte-for-byte by the exec
	// layer's shared-batch property test; aggregate means are not
	// comparable here because the two schedules admit different queries
	// into the measurement window.)
	t.Logf("disk reads/query: off %.2f, on %.2f (%.1f%% saved); %s",
		off.DiskReadsPerQry, on.DiskReadsPerQry,
		100*(1-on.DiskReadsPerQry/off.DiskReadsPerQry), on.Sharing)
}

// TestSharingDeterministic: two identical sharing runs produce identical
// results — batching decisions depend only on simulated time.
func TestSharingDeterministic(t *testing.T) {
	rel := smallRelation(t, 0)
	a := sharingRun(t, rel, true, 8)
	b := sharingRun(t, rel, true, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sharing runs diverged:\n%+v\n%+v", a, b)
	}
}
