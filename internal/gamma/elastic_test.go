package gamma

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rebalance"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// rangeRebuild is the placement factory elastic tests use: rebuild the
// range partitioning from scratch at the new node count.
func rangeRebuild(rel *storage.Relation, procs int) (core.Placement, error) {
	return core.NewRangeForRelation(rel, storage.Unique1, procs), nil
}

// elasticRelation is smaller than smallRelation: a rebalance copy pays
// real disk latency per page, so fewer pages keep the copy window well
// inside the test runs' simulated span.
func elasticRelation(t *testing.T) *storage.Relation {
	t.Helper()
	return storage.GenerateWisconsin(storage.GenSpec{Cardinality: 1000, Seed: 11})
}

func elasticConfig(events ...rebalance.Event) Config {
	return smallConfig().With(WithElastic(ElasticSpec{
		Events:  events,
		Rebuild: rangeRebuild,
	}))
}

// memberTIDs collects every member fragment's tuple ids, failing on
// duplicates (a tuple served by two primaries would double-count).
func memberTIDs(t *testing.T, m *Machine) map[int64]bool {
	t.Helper()
	seen := make(map[int64]bool)
	for _, phys := range m.Rebalancer.Members() {
		frag := m.Nodes[phys].Fragment(m.Relation.Name)
		if frag == nil {
			t.Fatalf("member node %d holds no fragment after rebalance", phys)
		}
		for _, tup := range frag.Tuples {
			if seen[tup.TID] {
				t.Fatalf("tuple %d appears on two member primaries", tup.TID)
			}
			seen[tup.TID] = true
		}
	}
	return seen
}

// A join then a decommission under live closed-loop traffic: every query
// completes (the dual-read epoch covers in-flight queries across each
// cutover), both transitions execute, and data actually moves.
func TestElasticJoinDecommissionUnderLoad(t *testing.T) {
	rel := elasticRelation(t)
	cfg := elasticConfig(
		rebalance.Event{At: 100 * sim.Millisecond, Kind: rebalance.Join},
		rebalance.Event{At: 600 * sim.Millisecond, Kind: rebalance.Decommission, Node: 1},
	)
	m := buildRange(t, rel, cfg)
	if len(m.Nodes) != 9 {
		t.Fatalf("machine built %d physical nodes, want 8 + 1 standby", len(m.Nodes))
	}
	res, err := m.Run(workload.LowLow(rel.Cardinality()), RunSpec{MPL: 4, WarmupQueries: 5, MeasureQueries: 600})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes.Failed != 0 || res.Outcomes.TimedOut != 0 {
		t.Fatalf("outcomes %v: rebalancing must not fail queries", res.Outcomes)
	}
	rep := res.Rebalance
	if rep == nil || len(rep.Tasks) != 2 {
		t.Fatalf("rebalance report = %+v, want 2 executed tasks", rep)
	}
	for _, task := range rep.Tasks {
		if task.Err != "" {
			t.Fatalf("task %s on node %d failed: %s", task.Kind, task.Node, task.Err)
		}
		if task.Rebalance() <= 0 {
			t.Fatalf("task %s reports non-positive time-to-rebalance %v", task.Kind, task.Rebalance())
		}
	}
	if rep.Tuples == 0 || rep.BytesMoved == 0 {
		t.Fatalf("report %+v: transitions between different node counts must move data", rep)
	}
	if got, want := m.Rebalancer.Gen(), 2; got != want {
		t.Fatalf("generation = %d, want %d", got, want)
	}
	// 8 initial + 1 join - node 1 = members {0, 2..8}.
	members := m.Rebalancer.Members()
	if len(members) != 8 {
		t.Fatalf("members = %v, want 8 after join+decommission", members)
	}
	for _, phys := range members {
		if phys == 1 {
			t.Fatalf("members = %v still include decommissioned node 1", members)
		}
	}
	if tids := memberTIDs(t, m); len(tids) != rel.Cardinality() {
		t.Fatalf("members hold %d distinct tuples, want %d", len(tids), rel.Cardinality())
	}
}

// The same elastic run twice must replay byte-identically: the controller,
// copier and cutovers are ordinary simulation events driven by the same
// seeds. (The CLI-level -parallel determinism gate rides on this.)
func TestElasticRunDeterministic(t *testing.T) {
	rel := elasticRelation(t)
	cfg := elasticConfig(
		rebalance.Event{At: 100 * sim.Millisecond, Kind: rebalance.Join},
		rebalance.Event{At: 500 * sim.Millisecond, Kind: rebalance.Leave, Node: 2},
	)
	mix := workload.LowLow(rel.Cardinality())
	spec := RunSpec{MPL: 4, WarmupQueries: 5, MeasureQueries: 400}
	m := buildRange(t, rel, cfg)
	a, err := m.Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed+spec elastic runs diverge:\n%+v\n%+v", a, b)
	}
}

// Post-rebalance placement equals a from-scratch build at the new node
// count: each member's fragment holds exactly the tuples a fresh range
// partitioning over the surviving membership would assign to its slot.
func TestElasticPostRebalanceMatchesFromScratch(t *testing.T) {
	rel := elasticRelation(t)
	cfg := elasticConfig(rebalance.Event{At: 100 * sim.Millisecond, Kind: rebalance.Join})
	m := buildRange(t, rel, cfg)
	if _, err := m.Run(workload.LowLow(rel.Cardinality()), RunSpec{MPL: 4, WarmupQueries: 5, MeasureQueries: 400}); err != nil {
		t.Fatal(err)
	}
	members := m.Rebalancer.Members()
	if len(members) != 9 {
		t.Fatalf("members = %v, want 9 after the join", members)
	}
	fresh, err := rangeRebuild(rel, len(members))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int][]int64) // slot -> sorted TIDs
	for _, tup := range rel.Tuples {
		h := fresh.HomeOf(tup)
		want[h] = append(want[h], tup.TID)
	}
	for slot, phys := range members {
		frag := m.Nodes[phys].Fragment(rel.Name)
		if frag == nil {
			t.Fatalf("slot %d (node %d) has no fragment", slot, phys)
		}
		got := make([]int64, 0, len(frag.Tuples))
		for _, tup := range frag.Tuples {
			got = append(got, tup.TID)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want[slot], func(i, j int) bool { return want[slot][i] < want[slot][j] })
		if !reflect.DeepEqual(got, want[slot]) {
			t.Fatalf("slot %d: rebalanced fragment holds %d tuples, from-scratch build %d (or different sets)",
				slot, len(got), len(want[slot]))
		}
	}
}

// A permanent node crash in the middle of a join's copy window: the crash
// is promoted to a repair task that drains the dead member's data (its
// disk outlives the node process) and rebuilds the chain replicas; the
// repair converges with no lost or double-counted fragments. Run under
// -race in CI — the injector callback, the controller mailbox and the
// dispatcher interleave here.
func TestElasticRepairAfterCrashMidMigration(t *testing.T) {
	rel := elasticRelation(t)
	cfg := smallConfig().With(
		WithElastic(ElasticSpec{
			Events: []rebalance.Event{{At: 100 * sim.Millisecond, Kind: rebalance.Join}},
			// Slow copier: the join's copy window stays open well past the
			// crash, so the repair request genuinely arrives mid-migration.
			RatePagesPerSec: 500,
			Rebuild:         rangeRebuild,
		}),
		WithChainedReplicas(),
		WithFaults(&fault.Spec{Events: []fault.Event{
			{At: 200 * sim.Millisecond, Kind: fault.NodeCrash, Node: 3}, // Dur 0: permanent
		}}),
	)
	m := buildRange(t, rel, cfg)
	res, err := m.Run(workload.LowLow(rel.Cardinality()), RunSpec{MPL: 4, WarmupQueries: 5, MeasureQueries: 800})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Rebalance
	if rep == nil || len(rep.Tasks) != 2 {
		t.Fatalf("rebalance report = %+v, want join + repair", rep)
	}
	if rep.Tasks[0].Kind != "join" || rep.Tasks[1].Kind != "repair" {
		t.Fatalf("tasks = [%s %s], want [join repair]", rep.Tasks[0].Kind, rep.Tasks[1].Kind)
	}
	repair := rep.Tasks[1]
	if repair.Err != "" {
		t.Fatalf("repair failed: %s", repair.Err)
	}
	if repair.Node != 3 {
		t.Fatalf("repair removed node %d, want the crashed node 3", repair.Node)
	}
	members := m.Rebalancer.Members()
	for _, phys := range members {
		if phys == 3 {
			t.Fatalf("members = %v still include crashed node 3", members)
		}
	}
	if tids := memberTIDs(t, m); len(tids) != rel.Cardinality() {
		t.Fatalf("members hold %d distinct tuples, want %d — repair lost data", len(tids), rel.Cardinality())
	}
	// Chain replicas were rebuilt for the new membership: every slot's
	// backup exists on its successor member.
	n := len(members)
	for slot := 0; slot < n; slot++ {
		b := core.ChainBackup(slot, n)
		if b < 0 {
			continue
		}
		holder := m.Nodes[members[b]]
		bf := holder.BackupFragment(rel.Name)
		if bf == nil {
			t.Fatalf("slot %d has no chain replica on member %d after repair", slot, members[b])
		}
	}
}
