package gamma

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rebalance"
	"repro/internal/sim"
	"repro/internal/storage"
)

// ElasticSpec arms elastic cluster membership: a planned schedule of node
// joins/leaves/decommissions executed by a rebalance.Controller as
// stage → throttled background copy → atomic cutover, plus promotion of
// permanent node crashes (fault events with Dur == 0) into repair tasks.
// Nil (the default) builds no standby nodes, installs no controller, and
// leaves the simulation schedule byte-identical to a build without
// elasticity support.
type ElasticSpec struct {
	// Events is the planned membership schedule, offsets ascending. Join
	// events draw standby physical ids in order; the machine builds one
	// standby node per Join beyond the initial membership.
	Events []rebalance.Event
	// RatePagesPerSec throttles the background copier; <= 0 selects
	// rebalance.DefaultRatePagesPerSec.
	RatePagesPerSec int
	// Rebuild produces a relation's placement for a new processor count.
	// Required: every transition rebuilds each relation's placement from
	// scratch at the new membership size, which is what makes the
	// post-rebalance layout provably equal to a from-scratch build.
	Rebuild func(rel *storage.Relation, procs int) (core.Placement, error)
}

// validate checks the schedule against the initial membership.
func (s *ElasticSpec) validate(processors int) error {
	if s == nil {
		return nil
	}
	if s.Rebuild == nil {
		return fmt.Errorf("gamma: elastic spec requires a Rebuild placement factory")
	}
	sched := rebalance.Schedule{Events: s.Events}
	return sched.Validate(processors)
}

// schedule returns the validated rebalance schedule.
func (s *ElasticSpec) schedule() rebalance.Schedule {
	return rebalance.Schedule{Events: s.Events}
}

// rate returns the copier throttle.
func (s *ElasticSpec) rate() int {
	if s.RatePagesPerSec > 0 {
		return s.RatePagesPerSec
	}
	return rebalance.DefaultRatePagesPerSec
}

// elasticIO adapts the copier's page I/O onto the machine: reads go
// through the source node's buffer pool (migration competes for — and
// warms — the cache exactly like a query scan), writes go straight to the
// destination disk. Neither touches the node process, so a crashed node's
// disk remains readable — a node crash is not a disk failure, which is
// what lets repair drain a dead member's data.
type elasticIO struct {
	nodes []*exec.Node
}

func (io elasticIO) ReadPage(p *sim.Proc, node, page int) error {
	return io.nodes[node].Pool.Read(p, page)
}

func (io elasticIO) WritePage(p *sim.Proc, node, page int) error {
	return io.nodes[node].Disk.Write(p, page)
}

// stagedRelation is one relation's next-generation layout, computed at
// Prepare and committed at Cutover.
type stagedRelation struct {
	placement  core.Placement
	fragTuples map[int][]storage.Tuple
	auxByAttr  map[int]map[int][]storage.AuxEntry
}

// elasticExec implements rebalance.Executor over the machine: Prepare
// stages the complete next-generation layout on the member nodes (old
// generation keeps serving) and returns the minimal page-move plan;
// Cutover atomically installs it everywhere. Both run on the controller's
// process between sim yields.
type elasticExec struct {
	m *Machine
	// topo maps placement slot -> physical node for the serving
	// generation; starts as the identity over the initial membership.
	topo []int
	// staged holds each relation's next-generation layout between Prepare
	// and Cutover, keyed by relation name.
	staged map[string]*stagedRelation
}

// Prepare rebuilds every relation's placement at the new membership size,
// stages fragments/indexes (and chain replicas) on the member nodes, and
// returns the move plan. Only tuples whose physical home changes cost
// I/O: same-node re-layout is free (the disk already holds the data;
// rewriting it in place is not the scarce resource the model charges), and
// BERD auxiliary rebuilds are likewise uncharged — both approximations are
// documented in DESIGN.md §13.
func (x *elasticExec) Prepare(t rebalance.Transition) (rebalance.Plan, error) {
	m := x.m
	cfg := m.Cfg
	nNew := len(t.Members)
	x.staged = make(map[string]*stagedRelation, len(m.relations))
	var plan rebalance.Plan
	for _, entry := range m.relations {
		newPl, err := cfg.Elastic.Rebuild(entry.rel, nNew)
		if err != nil {
			return rebalance.Plan{}, fmt.Errorf("gamma: rebuild %s at %d nodes: %w", entry.rel.Name, nNew, err)
		}
		if newPl.Processors() != nNew {
			return rebalance.Plan{}, fmt.Errorf("gamma: rebuild %s returned a %d-processor placement, want %d",
				entry.rel.Name, newPl.Processors(), nNew)
		}
		ne, err := distribute(entry.rel, newPl)
		if err != nil {
			return rebalance.Plan{}, err
		}
		x.staged[entry.rel.Name] = &stagedRelation{
			placement:  newPl,
			fragTuples: ne.fragTuples,
			auxByAttr:  ne.auxByAttr,
		}

		// Locate every tuple's serving copy: old slot -> physical node via
		// the current topology, page via the fragment layout.
		type loc struct{ node, page int }
		oldLoc := make(map[int64]loc, len(entry.rel.Tuples))
		for _, phys := range x.topo {
			frag := m.Nodes[phys].Fragment(entry.rel.Name)
			if frag == nil {
				continue
			}
			for i, tup := range frag.Tuples {
				oldLoc[tup.TID] = loc{node: phys, page: frag.DataPageOfSlot(i)}
			}
		}

		// Stage the next generation's primary fragments and collect the
		// tuples whose physical home changes.
		var moves []rebalance.TupleMove
		newFrags := make([]*storage.Fragment, nNew)
		for slot := 0; slot < nNew; slot++ {
			phys := t.Members[slot]
			alloc := m.allocs[phys]
			frag := storage.BuildFragment(slot, ne.fragTuples[slot], cfg.ClusteredAttr, cfg.Layout, alloc)
			frag.AddIndex(cfg.ClusteredAttr, alloc)
			for _, a := range cfg.NonClusteredAttrs {
				frag.AddIndex(a, alloc)
			}
			m.Nodes[phys].StageFragment(entry.rel.Name, frag)
			m.attachFragHeat(entry.rel.Name, phys, frag, false)
			newFrags[slot] = frag
			for i, tup := range frag.Tuples {
				old, ok := oldLoc[tup.TID]
				if !ok {
					return rebalance.Plan{}, fmt.Errorf("gamma: tuple %d of %s has no serving copy", tup.TID, entry.rel.Name)
				}
				if old.node == phys {
					continue // same-node re-layout: no cross-node I/O
				}
				moves = append(moves, rebalance.TupleMove{
					Src: old.node, Dst: phys,
					SrcPage: old.page, DstPage: frag.DataPageOfSlot(i),
				})
			}
			for attr, perProc := range ne.auxByAttr {
				aux := storage.BuildAux(slot, perProc[slot], cfg.Layout, alloc)
				m.Nodes[phys].StageAux(entry.rel.Name, attr, aux)
				m.attachAuxHeat(entry.rel.Name, phys, aux)
			}
		}
		plan.Merge(rebalance.BuildPlan(moves))

		// Chain replicas for the new membership: rebuild every slot's
		// backup on its chain successor's physical node. The replica copy
		// reads the staged primary's data pages — the planner appends these
		// moves after the primaries, and the copier runs moves in plan
		// order, so the primary pages have landed first.
		if cfg.ChainedReplicas {
			var repl []rebalance.TupleMove
			for slot := 0; slot < nNew; slot++ {
				b := core.ChainBackup(slot, nNew)
				if b < 0 {
					continue
				}
				phys := t.Members[b]
				alloc := m.allocs[phys]
				frag := storage.BuildFragment(slot, ne.fragTuples[slot], cfg.ClusteredAttr, cfg.Layout, alloc)
				frag.AddIndex(cfg.ClusteredAttr, alloc)
				for _, a := range cfg.NonClusteredAttrs {
					frag.AddIndex(a, alloc)
				}
				m.Nodes[phys].StageBackupFragment(entry.rel.Name, frag)
				m.attachFragHeat(entry.rel.Name, phys, frag, true)
				src := t.Members[slot]
				primary := newFrags[slot]
				for i := range frag.Tuples {
					repl = append(repl, rebalance.TupleMove{
						Src: src, Dst: phys,
						SrcPage: primary.DataPageOfSlot(i), DstPage: frag.DataPageOfSlot(i),
					})
				}
				for attr, perProc := range ne.auxByAttr {
					aux := storage.BuildAux(slot, perProc[slot], cfg.Layout, alloc)
					m.Nodes[phys].StageBackupAux(entry.rel.Name, attr, aux)
					m.attachAuxHeat(entry.rel.Name, phys, aux)
				}
			}
			plan.Merge(rebalance.BuildPlan(repl))
		}
	}
	return plan, nil
}

// Cutover installs the staged generation: every node flips its placement
// maps, the host repoints each relation at its new placement and adopts
// the new slot->node topology, and the machine's relation entries advance
// so a subsequent Prepare plans from the new layout.
func (x *elasticExec) Cutover(t rebalance.Transition) {
	m := x.m
	for _, n := range m.Nodes {
		n.CutoverPlacement(t.Gen)
	}
	for _, entry := range m.relations {
		ne := x.staged[entry.rel.Name]
		entry.placement = ne.placement
		entry.fragTuples = ne.fragTuples
		entry.auxByAttr = ne.auxByAttr
		m.Host.SetPlacement(entry.rel.Name, ne.placement)
	}
	m.Host.SetTopology(append([]int(nil), t.Members...), t.Gen)
	x.topo = append([]int(nil), t.Members...)
	x.staged = nil
}

// attachFragHeat wires a staged fragment into the heat map (no-op when
// heat accounting is off). The accumulator is keyed by physical node, so
// a fragment migrating between nodes shows up as heat moving with it —
// which is what keeps querytrace -frags and plan explain in agreement
// mid-rebalance.
func (m *Machine) attachFragHeat(relation string, phys int, frag *storage.Fragment, backup bool) {
	if m.Heat == nil {
		return
	}
	kind := obs.FragPrimary
	if backup {
		kind = obs.FragBackup
	}
	fh := m.Heat.Frag(relation, phys, kind)
	fh.AddSize(int64(frag.FootprintPages()))
	m.Nodes[phys].AttachHeat(relation, kind, fh)
}

// attachAuxHeat does the same for a staged BERD auxiliary.
func (m *Machine) attachAuxHeat(relation string, phys int, aux *storage.AuxFragment) {
	if m.Heat == nil {
		return
	}
	ah := m.Heat.Frag(relation, phys, obs.FragAux)
	ah.AddSize(int64(aux.FootprintPages()))
	m.Nodes[phys].AttachHeat(relation, obs.FragAux, ah)
}

// registerRebalanceSeries adds migration telemetry to the sampler: the
// live copy backlog (gauge, pages), cumulative pages and bytes copied
// (windowed rates), and the copy error count. Probes read the copier's
// counters directly — sampling runs on the same sim clock as the copy
// process, so no synchronization is needed.
func registerRebalanceSeries(s *obs.Sampler, cp *rebalance.Copier) {
	s.Register("rebalance.backlog_pages", obs.SeriesGauge, func() float64 {
		return float64(cp.Backlog)
	})
	s.Register("rebalance.pages_copied", obs.SeriesRate, func() float64 {
		return float64(cp.PagesCopied)
	})
	s.Register("rebalance.bytes_copied", obs.SeriesRate, func() float64 {
		return float64(cp.BytesCopied)
	})
	s.Register("rebalance.copy_errors", obs.SeriesGauge, func() float64 {
		return float64(cp.Errors)
	})
}

// promoteCrashes adapts the fault injector's event stream into repair
// requests: a NodeCrash with no restart duration is a permanent failure,
// which the controller turns into an unplanned membership removal.
func promoteCrashes(ctl *rebalance.Controller) func(fault.Event) {
	return func(ev fault.Event) {
		if ev.Kind == fault.NodeCrash && ev.Dur == 0 {
			ctl.RequestRepair(ev.Node)
		}
	}
}
