package gamma

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// smallConfig returns a 8-processor machine config suitable for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.HW.NumProcessors = 8
	return cfg
}

func smallRelation(t *testing.T, corrWindow int) *storage.Relation {
	t.Helper()
	return storage.GenerateWisconsin(storage.GenSpec{
		Cardinality: 4000, CorrelationWindow: corrWindow, Seed: 11,
	})
}

func buildRange(t *testing.T, rel *storage.Relation, cfg Config) *Machine {
	t.Helper()
	pl := core.NewRangeForRelation(rel, storage.Unique1, cfg.HW.NumProcessors)
	m, err := Build(rel, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func buildBERD(t *testing.T, rel *storage.Relation, cfg Config) *Machine {
	t.Helper()
	pl := core.NewBERDForRelation(rel, storage.Unique1, []int{storage.Unique2}, cfg.HW.NumProcessors)
	m, err := Build(rel, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func buildMAGIC(t *testing.T, rel *storage.Relation, cfg Config, mix workload.Mix) *Machine {
	t.Helper()
	specs := workload.EstimateSpecs(mix, rel.Cardinality(), cfg.HW, cfg.Costs)
	pp := workload.PlanParamsFor(rel.Cardinality(), cfg.HW.NumProcessors, cfg.Costs)
	pl, err := core.BuildMAGIC(rel, []int{storage.Unique1, storage.Unique2}, specs, pp, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(rel, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// executeOne runs a single query on the machine and returns its result.
func executeOne(t *testing.T, m *Machine, pred core.Predicate, mix workload.Mix) exec.QueryResult {
	t.Helper()
	var res exec.QueryResult
	m.Eng.Spawn("probe", func(p *sim.Proc) {
		res = m.Host.Execute(p, pred, mix.AccessChooser())
		m.Eng.Stop()
	})
	if err := m.Eng.RunUntil(sim.Time(10 * 60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("query never completed")
	}
	return res
}

func TestSingleTupleQueryOnRange(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	res := executeOne(t, m, core.Predicate{Attr: storage.Unique1, Lo: 2000, Hi: 2000}, mix)
	if res.Tuples != 1 {
		t.Fatalf("retrieved %d tuples, want 1", res.Tuples)
	}
	if res.ProcessorsUsed != 1 {
		t.Fatalf("range equality used %d processors", res.ProcessorsUsed)
	}
	if res.ResponseMS() <= 0 || res.ResponseMS() > 1000 {
		t.Fatalf("implausible response time %gms", res.ResponseMS())
	}
}

func TestClusteredRangeOnRangeGoesEverywhere(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	// Predicate on B: range partitioning on A must ask all processors.
	res := executeOne(t, m, core.Predicate{Attr: storage.Unique2, Lo: 1000, Hi: 1009}, mix)
	if res.Tuples != 10 {
		t.Fatalf("retrieved %d tuples, want 10", res.Tuples)
	}
	if res.ProcessorsUsed != 8 {
		t.Fatalf("used %d processors, want all 8", res.ProcessorsUsed)
	}
}

func TestBERDSecondaryTwoStepExecution(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildBERD(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	res := executeOne(t, m, core.Predicate{Attr: storage.Unique2, Lo: 1000, Hi: 1009}, mix)
	if res.Tuples != 10 {
		t.Fatalf("retrieved %d tuples, want 10", res.Tuples)
	}
	if res.AuxProcessors < 1 {
		t.Fatal("BERD never consulted the auxiliary relation")
	}
	// Uncorrelated: 10 tuples live on up to 10 + aux distinct processors,
	// but never all-plus: must be localized vs range's 8-everywhere when
	// the tuples cluster; here with 8 processors it may reach 8+aux.
	if res.ProcessorsUsed > 9 {
		t.Fatalf("BERD used %d processors", res.ProcessorsUsed)
	}
}

func TestBERDCorrelatedLocalizesToOneProcessor(t *testing.T) {
	rel := smallRelation(t, 1) // identical attributes
	m := buildBERD(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	res := executeOne(t, m, core.Predicate{Attr: storage.Unique2, Lo: 1000, Hi: 1009}, mix)
	if res.Tuples != 10 {
		t.Fatalf("retrieved %d tuples", res.Tuples)
	}
	// Identical attributes: the 10 tuples share one home processor; with
	// the aux fragment the query touches at most 2 distinct processors.
	if res.ProcessorsUsed > 2 {
		t.Fatalf("correlated BERD used %d processors", res.ProcessorsUsed)
	}
}

func TestMAGICQueriesUseSubsets(t *testing.T) {
	rel := smallRelation(t, 0)
	mix := workload.LowLow(rel.Cardinality())
	m := buildMAGIC(t, rel, smallConfig(), mix)
	resA := executeOne(t, m, core.Predicate{Attr: storage.Unique1, Lo: 2000, Hi: 2000}, mix)
	if resA.Tuples != 1 {
		t.Fatalf("QA retrieved %d tuples", resA.Tuples)
	}
	if resA.ProcessorsUsed >= 8 || resA.AuxProcessors != 0 {
		t.Fatalf("MAGIC QA used %d processors (aux %d)", resA.ProcessorsUsed, resA.AuxProcessors)
	}
	// Fresh engine for a second independent probe.
	m.reset()
	resB := executeOne(t, m, core.Predicate{Attr: storage.Unique2, Lo: 1000, Hi: 1009}, mix)
	if resB.Tuples != 10 {
		t.Fatalf("QB retrieved %d tuples", resB.Tuples)
	}
	if resB.ProcessorsUsed >= 8 {
		t.Fatalf("MAGIC QB used %d processors", resB.ProcessorsUsed)
	}
}

// Every strategy must return exactly the same answer for the same query.
func TestAllStrategiesAgreeOnResults(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	mix := workload.LowLow(rel.Cardinality())
	machines := []*Machine{
		buildRange(t, rel, cfg),
		buildBERD(t, rel, cfg),
		buildMAGIC(t, rel, cfg, mix),
	}
	preds := []core.Predicate{
		{Attr: storage.Unique1, Lo: 123, Hi: 123},
		{Attr: storage.Unique1, Lo: 1000, Hi: 1029},
		{Attr: storage.Unique2, Lo: 3000, Hi: 3299},
		{Attr: storage.Unique2, Lo: 3999, Hi: 3999},
	}
	for _, pred := range preds {
		want := 0
		for _, tup := range rel.Tuples {
			v := tup.Attrs[pred.Attr]
			if v >= pred.Lo && v <= pred.Hi {
				want++
			}
		}
		for _, m := range machines {
			m.reset()
			res := executeOne(t, m, pred, mix)
			if res.Tuples != want {
				t.Fatalf("%s on %v: got %d tuples, want %d",
					m.Placement.Name(), pred, res.Tuples, want)
			}
		}
	}
}

func TestRunProducesThroughput(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	res, err := m.Run(mix, RunSpec{MPL: 4, WarmupQueries: 20, MeasureQueries: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputQPS <= 0 {
		t.Fatalf("throughput = %g", res.ThroughputQPS)
	}
	if res.Completed != 100 {
		t.Fatalf("measured %d queries", res.Completed)
	}
	if res.MeanResponseMS <= 0 {
		t.Fatalf("response = %g", res.MeanResponseMS)
	}
	if res.MeanProcsUsed < 1 {
		t.Fatalf("procs/query = %g", res.MeanProcsUsed)
	}
	if res.DiskUtilization <= 0 || res.DiskUtilization > 1 {
		t.Fatalf("disk utilization = %g", res.DiskUtilization)
	}
}

func TestRunDeterministic(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	spec := RunSpec{MPL: 4, WarmupQueries: 10, MeasureQueries: 50}
	a, err := m.Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.ThroughputQPS != b.ThroughputQPS || a.MeanResponseMS != b.MeanResponseMS {
		t.Fatalf("replays differ: %v vs %v", a, b)
	}
}

func TestRunThroughputRisesWithMPL(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	one, err := m.Run(mix, RunSpec{MPL: 1, WarmupQueries: 10, MeasureQueries: 80})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := m.Run(mix, RunSpec{MPL: 8, WarmupQueries: 10, MeasureQueries: 80})
	if err != nil {
		t.Fatal(err)
	}
	if eight.ThroughputQPS <= one.ThroughputQPS {
		t.Fatalf("MPL 8 throughput %.2f not above MPL 1 %.2f",
			eight.ThroughputQPS, one.ThroughputQPS)
	}
}

func TestRunSpecValidation(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	if _, err := m.Run(mix, RunSpec{MPL: 0, MeasureQueries: 10}); err == nil {
		t.Error("MPL 0 accepted")
	}
	if _, err := m.Run(mix, RunSpec{MPL: 1, MeasureQueries: 0}); err == nil {
		t.Error("zero measurement accepted")
	}
	if _, err := m.Run(mix, RunSpec{MPL: 1, WarmupQueries: -1, MeasureQueries: 1}); err == nil {
		t.Error("negative warmup accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	cfg.BufferPages = -1
	pl := core.NewRangeForRelation(rel, storage.Unique1, 8)
	if _, err := Build(rel, pl, cfg); err == nil {
		t.Error("negative buffer accepted")
	}
	bad := smallConfig()
	bad.HW.MIPS = 0
	if _, err := Build(rel, pl, bad); err == nil {
		t.Error("invalid hardware accepted")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.HW.NumProcessors != 32 {
		t.Fatalf("default processors = %d", cfg.HW.NumProcessors)
	}
	if cfg.ClusteredAttr != storage.Unique2 {
		t.Fatal("default clustered attribute must be unique2 (B)")
	}
	if len(cfg.NonClusteredAttrs) != 1 || cfg.NonClusteredAttrs[0] != storage.Unique1 {
		t.Fatal("default non-clustered attribute must be unique1 (A)")
	}
}

func TestRunPerClassStats(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	res, err := m.Run(mix, RunSpec{MPL: 8, WarmupQueries: 20, MeasureQueries: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerClass) != 2 {
		t.Fatalf("per-class stats for %d classes, want 2", len(res.PerClass))
	}
	total := 0
	for name, cs := range res.PerClass {
		if cs.Completed <= 0 || cs.MeanResponseMS <= 0 || cs.MeanProcsUsed < 1 {
			t.Fatalf("class %s has degenerate stats: %+v", name, cs)
		}
		total += cs.Completed
	}
	if total != res.Completed {
		t.Fatalf("per-class counts sum to %d, total %d", total, res.Completed)
	}
	// Under range partitioning on A, QA localizes to 1 processor while QB
	// visits all 8 — the per-class breakdown must show it.
	qa, qb := res.PerClass["QA-low"], res.PerClass["QB-low"]
	if qa.MeanProcsUsed > 1.5 {
		t.Fatalf("QA used %.2f processors under range-on-A", qa.MeanProcsUsed)
	}
	if qb.MeanProcsUsed < 7 {
		t.Fatalf("QB used %.2f processors, want ~8", qb.MeanProcsUsed)
	}
}

func TestCatalogRegistered(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildBERD(t, rel, smallConfig())
	info, ok := m.Catalog.Lookup(rel.Name)
	if !ok {
		t.Fatal("relation not in catalog")
	}
	if info.Strategy() != "berd" || info.Cardinality != rel.Cardinality() {
		t.Fatalf("catalog info wrong: %s %d", info.Strategy(), info.Cardinality)
	}
	tuples := 0
	aux := 0
	for _, ns := range info.Nodes {
		tuples += ns.Tuples
		aux += ns.AuxEntries
		if len(ns.Indexes) != 2 {
			t.Fatalf("node has %d indexes, want clustered B + non-clustered A", len(ns.Indexes))
		}
	}
	if tuples != rel.Cardinality() {
		t.Fatalf("catalog counts %d tuples", tuples)
	}
	if aux != rel.Cardinality() {
		t.Fatalf("catalog counts %d aux entries for BERD", aux)
	}
	if info.TotalPages() <= 0 {
		t.Fatal("no pages recorded")
	}
}

// Property: all five placements return identical result counts for random
// predicates — routing may differ, answers may not.
func TestStrategyAgreementProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	mix := workload.LowLow(rel.Cardinality())
	specs := workload.EstimateSpecs(mix, rel.Cardinality(), cfg.HW, cfg.Costs)
	pp := workload.PlanParamsFor(rel.Cardinality(), cfg.HW.NumProcessors, cfg.Costs)
	magicPl, err := core.BuildMAGIC(rel, []int{storage.Unique1, storage.Unique2}, specs, pp, nil)
	if err != nil {
		t.Fatal(err)
	}
	placements := []core.Placement{
		magicPl,
		core.NewBERDForRelation(rel, storage.Unique1, []int{storage.Unique2}, 8),
		core.NewRangeForRelation(rel, storage.Unique1, 8),
		core.NewHash(storage.Unique1, 8),
		core.NewRoundRobin(8),
	}
	machines := make([]*Machine, len(placements))
	for i, pl := range placements {
		m, err := Build(rel, pl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		machines[i] = m
	}
	src := rng.NewSource("preds", 77)
	for trial := 0; trial < 12; trial++ {
		attr := storage.Unique1
		if trial%2 == 1 {
			attr = storage.Unique2
		}
		width := int64(src.IntRange(1, 40))
		lo := int64(src.Intn(rel.Cardinality() - int(width)))
		pred := core.Predicate{Attr: attr, Lo: lo, Hi: lo + width - 1}
		var counts []int
		for _, m := range machines {
			m.reset()
			res := executeOne(t, m, pred, mix)
			counts = append(counts, res.Tuples)
		}
		for i := 1; i < len(counts); i++ {
			if counts[i] != counts[0] {
				t.Fatalf("pred %v: %s returned %d tuples, %s returned %d",
					pred, machines[i].Placement.Name(), counts[i],
					machines[0].Placement.Name(), counts[0])
			}
		}
		if counts[0] != int(width) {
			t.Fatalf("pred %v: got %d tuples, want %d", pred, counts[0], width)
		}
	}
}

func TestHashAndRoundRobinMachines(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	mix := workload.LowLow(rel.Cardinality())
	for _, pl := range []core.Placement{
		core.NewHash(storage.Unique1, 8),
		core.NewRoundRobin(8),
	} {
		m, err := Build(rel, pl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(mix, RunSpec{MPL: 4, WarmupQueries: 20, MeasureQueries: 100})
		if err != nil {
			t.Fatal(err)
		}
		if res.ThroughputQPS <= 0 {
			t.Fatalf("%s: throughput %g", pl.Name(), res.ThroughputQPS)
		}
	}
}

// A predicate on a non-indexed attribute falls back to sequential scans on
// every processor and still returns the exact answer.
func TestSeqScanFallback(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	pred := core.Predicate{Attr: storage.Ten, Lo: 4, Hi: 4}
	want := 0
	for _, tup := range rel.Tuples {
		if tup.Attrs[storage.Ten] == 4 {
			want++
		}
	}
	res := executeOne(t, m, pred, mix)
	if res.Tuples != want {
		t.Fatalf("seq scan found %d tuples, want %d", res.Tuples, want)
	}
	if res.ProcessorsUsed != 8 {
		t.Fatalf("non-indexed predicate used %d processors, want all", res.ProcessorsUsed)
	}
	// Scans should exploit sequential I/O: most reads were sequential.
	var seq, total int64
	for _, n := range m.Nodes {
		seq += n.Disk.SequentialHits()
		total += n.Disk.Reads()
	}
	if total == 0 || float64(seq)/float64(total) < 0.5 {
		t.Fatalf("scan reads not mostly sequential: %d/%d", seq, total)
	}
}

func TestSimulateLoad(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	mix := workload.LowLow(rel.Cardinality())
	results := []LoadResult{}
	for _, build := range []func() *Machine{
		func() *Machine { return buildRange(t, rel, cfg) },
		func() *Machine { return buildBERD(t, rel, cfg) },
		func() *Machine { return buildMAGIC(t, rel, cfg, mix) },
	} {
		m := build()
		res, err := m.SimulateLoad()
		if err != nil {
			t.Fatal(err)
		}
		if res.Elapsed <= 0 || res.PagesWritten <= 0 || res.PacketsShipped <= 0 {
			t.Fatalf("%s: degenerate load result %+v", res.Strategy, res)
		}
		results = append(results, res)
		// The machine must still run queries after a load simulation.
		run, err := m.Run(mix, RunSpec{MPL: 2, WarmupQueries: 5, MeasureQueries: 30})
		if err != nil {
			t.Fatal(err)
		}
		if run.ThroughputQPS <= 0 {
			t.Fatal("machine unusable after load simulation")
		}
	}
	// Range scans once; BERD and MAGIC scan twice, so their loads cost more.
	if results[0].ScanPasses != 1 || results[1].ScanPasses != 2 || results[2].ScanPasses != 2 {
		t.Fatalf("scan passes = %d/%d/%d", results[0].ScanPasses, results[1].ScanPasses, results[2].ScanPasses)
	}
	if results[1].Elapsed <= results[0].Elapsed {
		t.Fatalf("BERD load (%.2fs) should cost more than range (%.2fs)",
			results[1].Elapsed.Seconds(), results[0].Elapsed.Seconds())
	}
	// BERD writes the auxiliary pages on top of what range writes.
	if results[1].PagesWritten <= results[0].PagesWritten {
		t.Fatal("BERD should write more pages than range (auxiliary relations)")
	}
	table := LoadTable(results).String()
	if !strings.Contains(table, "berd") || !strings.Contains(table, "scan passes") {
		t.Fatalf("load table malformed:\n%s", table)
	}
}

func TestRunOpenSystem(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	// A light offered load completes with response times near the no-load
	// service time.
	light, err := m.RunOpen(mix, OpenRunSpec{
		ArrivalRateQPS: 20, WarmupQueries: 20, MeasureQueries: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if light.ThroughputQPS < 15 || light.ThroughputQPS > 25 {
		t.Fatalf("open throughput %.1f should track the 20 q/s arrival rate", light.ThroughputQPS)
	}
	// A heavier (but sustainable) load has longer response times.
	heavy, err := m.RunOpen(mix, OpenRunSpec{
		ArrivalRateQPS: 120, WarmupQueries: 20, MeasureQueries: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.MeanResponseMS <= light.MeanResponseMS {
		t.Fatalf("response did not grow with load: %.1fms vs %.1fms",
			heavy.MeanResponseMS, light.MeanResponseMS)
	}
}

func TestRunOpenOverload(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	_, err := m.RunOpen(mix, OpenRunSpec{
		ArrivalRateQPS: 100000, WarmupQueries: 0, MeasureQueries: 100000,
		MaxOutstanding: 200,
	})
	if err == nil {
		t.Fatal("gross overload should be reported as an error")
	}
}

func TestRunOpenValidation(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	if _, err := m.RunOpen(mix, OpenRunSpec{ArrivalRateQPS: 0, MeasureQueries: 1}); err == nil {
		t.Error("zero arrival rate accepted")
	}
	if _, err := m.RunOpen(mix, OpenRunSpec{ArrivalRateQPS: 1, MeasureQueries: 0}); err == nil {
		t.Error("zero measurement accepted")
	}
}

func TestMultiRelationMachineAndJoin(t *testing.T) {
	cfg := smallConfig()
	r := storage.GenerateWisconsin(storage.GenSpec{Name: "stock", Cardinality: 2000, Seed: 11})
	s := storage.GenerateWisconsin(storage.GenSpec{Name: "trades", Cardinality: 800, Seed: 12})
	m, err := Build(r, core.NewHash(storage.Unique1, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddRelation(s, core.NewHash(storage.Unique1, 8)); err != nil {
		t.Fatal(err)
	}
	// Both relations registered in the catalog.
	if m.Catalog.Len() != 2 {
		t.Fatalf("catalog holds %d relations", m.Catalog.Len())
	}
	// A selection against the second relation by name.
	var sel exec.QueryResult
	mix := workload.LowLow(s.Cardinality())
	m.Eng.Spawn("probe", func(p *sim.Proc) {
		sel = m.Host.ExecuteOn(p, "trades",
			core.Predicate{Attr: storage.Unique2, Lo: 100, Hi: 109}, mix.AccessChooser())
		m.Eng.Stop()
	})
	if err := m.Eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if sel.Tuples != 10 {
		t.Fatalf("selection on trades got %d tuples", sel.Tuples)
	}
	// An equi-join between them (hash-on-key: co-located).
	m.reset()
	var jr exec.JoinResult
	m.Eng.Spawn("joiner", func(p *sim.Proc) {
		jr = m.Host.ExecuteJoin(p, exec.JoinSpec{
			BuildRelation: "trades", BuildAttr: storage.Unique1,
			ProbeRelation: "stock", ProbeAttr: storage.Unique1,
		})
		m.Eng.Stop()
	})
	if err := m.Eng.RunUntil(sim.Time(10 * 60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	// unique1 values 0..799 of trades each match exactly one stock tuple.
	if jr.Matches != 800 {
		t.Fatalf("join matches = %d, want 800", jr.Matches)
	}
	if jr.Repartitioned {
		t.Fatal("hash-on-key join should be co-located")
	}
}

func TestAddRelationValidation(t *testing.T) {
	cfg := smallConfig()
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, cfg)
	if err := m.AddRelation(rel, core.NewHash(storage.Unique1, 8)); err == nil {
		t.Error("duplicate relation name accepted")
	}
	other := storage.GenerateWisconsin(storage.GenSpec{Name: "other", Cardinality: 100, Seed: 3})
	if err := m.AddRelation(other, core.NewHash(storage.Unique1, 4)); err == nil {
		t.Error("mismatched processor count accepted")
	}
}

func TestRunNodeStatsAndSkew(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	res, err := m.Run(mix, RunSpec{MPL: 4, WarmupQueries: 20, MeasureQueries: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeStats) != 8 {
		t.Fatalf("NodeStats has %d entries, want 8", len(res.NodeStats))
	}
	var diskSum float64
	for i, u := range res.NodeStats {
		if u.Node != i {
			t.Errorf("NodeStats[%d].Node = %d", i, u.Node)
		}
		if u.DiskUtil < 0 || u.DiskUtil > 1 || u.CPUUtil < 0 || u.CPUUtil > 1 {
			t.Errorf("node %d utilization out of range: cpu %g disk %g", i, u.CPUUtil, u.DiskUtil)
		}
		diskSum += u.DiskUtil
	}
	if got := diskSum / 8; !almostEq(got, res.DiskUtilization, 1e-9) {
		t.Errorf("per-node disk mean %g != machine mean %g", got, res.DiskUtilization)
	}
	if res.DiskSkew < 1 || res.CPUSkew < 1 {
		t.Errorf("skew ratios below 1: disk %g cpu %g", res.DiskSkew, res.CPUSkew)
	}
	if res.Metrics != nil {
		t.Error("Metrics snapshot present without Config.Metrics")
	}
}

func TestRunMetricsSnapshot(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	cfg.Metrics = true
	m := buildRange(t, rel, cfg)
	mix := workload.LowLow(rel.Cardinality())
	spec := RunSpec{MPL: 4, WarmupQueries: 20, MeasureQueries: 100}
	res, err := m.Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("Config.Metrics on but no snapshot")
	}
	// Warm-up was discarded by Registry.Reset, so the completion counter
	// matches the measurement window exactly.
	if got := res.Metrics.Counters["query.completed"]; got != int64(res.Completed) {
		t.Errorf("query.completed = %d, want %d", got, res.Completed)
	}
	if h, ok := res.Metrics.Histograms["query.response_ms"]; !ok || h.N != int64(res.Completed) {
		t.Errorf("query.response_ms histogram = %+v", h)
	}
	if res.Metrics.Gauges["node0.disk.util"] != res.NodeStats[0].DiskUtil {
		t.Error("per-node gauge disagrees with NodeStats")
	}
	// Disk facilities register wait/service histograms.
	if h, ok := res.Metrics.Histograms["disk0.service_ms"]; !ok || h.N == 0 {
		t.Errorf("disk0.service_ms missing or empty: %+v", h)
	}

	// Metrics must be pure bookkeeping: identical simulation schedule, so
	// identical throughput to a metrics-off run of the same spec.
	plain := buildRange(t, rel, smallConfig())
	base, err := plain.Run(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if base.ThroughputQPS != res.ThroughputQPS || base.MeanResponseMS != res.MeanResponseMS {
		t.Errorf("metrics changed the simulation: %g/%g vs %g/%g q/s",
			res.ThroughputQPS, res.MeanResponseMS, base.ThroughputQPS, base.MeanResponseMS)
	}
}

func almostEq(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
