package gamma

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Two RunServe calls on the same machine with the same spec must agree
// exactly: the serving layer's rng streams are derived from the run seed,
// so the reset machine replays the identical arrival, admission and
// execution history.
func TestRunServeDeterministic(t *testing.T) {
	rel := smallRelation(t, 0)
	m := buildRange(t, rel, smallConfig())
	mix := workload.LowLow(rel.Cardinality())
	spec := ServeSpec{
		Arrival:        serve.ArrivalSpec{Kind: serve.Bursty, RateQPS: 300},
		MaxInService:   8,
		WarmupQueries:  20,
		MeasureQueries: 150,
		MaxSimTime:     20 * sim.Second,
	}

	a, err := m.RunServe(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.RunServe(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed+spec produced different serving results:\n%+v\n%+v", a, b)
	}
	if a.Serve.SLO.Completed == 0 {
		t.Fatal("no queries completed")
	}
}

// A node crash mid-admission under heavy overload: the front end must keep
// draining — queries on the dead node fail with a typed outcome, queued
// queries are shed with typed reasons — and the run must terminate instead
// of hanging on a query that will never complete. Run under -race in CI:
// the crash path exercises injector callbacks interleaved with the
// dispatcher's queue scan.
func TestRunServeCrashMidAdmissionSheds(t *testing.T) {
	rel := smallRelation(t, 0)
	cfg := smallConfig()
	// No chained replicas: queries hitting the dead node cannot reroute,
	// so they must surface as failed outcomes, not hangs.
	cfg.Faults = &fault.Spec{
		Events: []fault.Event{
			// Crash while the wait queues are saturated and stay down for
			// the rest of the run.
			{At: 50 * sim.Millisecond, Kind: fault.NodeCrash, Node: 2, Dur: 60 * sim.Second},
		},
	}
	m := buildRange(t, rel, cfg)
	mix := workload.LowLow(rel.Cardinality())
	spec := ServeSpec{
		// ~4x the capacity this 8-node machine sustains, through a small
		// queue, so admission is shedding when the crash lands.
		Arrival:        serve.ArrivalSpec{Kind: serve.Poisson, RateQPS: 3000},
		MaxInService:   16,
		MaxQueue:       32,
		WarmupQueries:  10,
		MeasureQueries: 400,
		MaxSimTime:     10 * sim.Second,
	}

	res, err := m.RunServe(mix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultLog) == 0 {
		t.Fatal("crash event was not applied")
	}
	slo := res.Serve.SLO
	if slo.TotalShed() == 0 {
		t.Fatalf("overloaded run with a crashed node shed nothing: %+v", slo)
	}
	if slo.ShedQueueFull == 0 {
		t.Fatalf("expected queue-full sheds under 4x overload: %+v", slo)
	}
	// Every shed is typed: the counters account for the total exactly.
	if slo.TotalShed() != slo.ShedQueueFull+slo.ShedAged+slo.ShedShutdown {
		t.Fatalf("untyped sheds: %+v", slo)
	}
	// The dead node makes some admitted queries fail; they must be counted
	// as completions with a failure outcome, not goodput.
	if res.Serve.Outcomes.Failed == 0 {
		t.Fatalf("no failed outcomes despite a crashed node: %+v", res.Serve.Outcomes)
	}
	if slo.Good >= slo.Completed {
		t.Fatalf("failures leaked into goodput: good %d of %d completed", slo.Good, slo.Completed)
	}
	// Termination was by measurement target or time bound — either way the
	// run returned; a hang would have kept the engine running past both.
	if !res.Serve.HitMaxSimTime && slo.Completed < int64(spec.MeasureQueries) {
		t.Fatalf("run stopped early without hitting the time bound: %+v", slo)
	}
}
