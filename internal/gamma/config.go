package gamma

import (
	"fmt"

	"repro/internal/fault"
)

// Option composably arms an optional per-run subsystem on a Config. The
// telemetry, heat and sharing specs follow one pattern — a nil pointer
// means "off and byte-identical to a build without the subsystem", a
// non-nil spec arms it with zero values deferring to defaults — and the
// options are the one sanctioned way to set them: build a Config with
// DefaultConfig().With(...) instead of poking spec fields directly, and
// Config.Validate (called by Build) is the single validation path for the
// result.
type Option func(*Config)

// WithTelemetry arms windowed time-series sampling.
func WithTelemetry(spec TelemetrySpec) Option {
	return func(c *Config) { s := spec; c.Telemetry = &s }
}

// WithHeat arms fragment-granularity heat accounting.
func WithHeat(spec HeatSpec) Option {
	return func(c *Config) { s := spec; c.Heat = &s }
}

// WithSharing arms the shared-scan manager.
func WithSharing(spec SharingSpec) Option {
	return func(c *Config) { s := spec; c.Sharing = &s }
}

// WithElastic arms elastic cluster membership: planned join/leave/
// decommission events, throttled fragment rebalancing, and promotion of
// permanent node crashes into repair tasks.
func WithElastic(spec ElasticSpec) Option {
	return func(c *Config) { s := spec; c.Elastic = &s }
}

// WithFaults arms the deterministic fault injector (and degraded-mode
// scheduling).
func WithFaults(spec *fault.Spec) Option {
	return func(c *Config) { c.Faults = spec }
}

// WithChainedReplicas mirrors every fragment on its chain successor.
func WithChainedReplicas() Option {
	return func(c *Config) { c.ChainedReplicas = true }
}

// WithMetrics attaches an obs.Registry to the engine.
func WithMetrics() Option {
	return func(c *Config) { c.Metrics = true }
}

// WithSeed sets the machine seed.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// With returns a copy of the config with the options applied.
func (c Config) With(opts ...Option) Config {
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Validate is the single validation path for a machine configuration:
// hardware parameters, buffer sizing, the fault spec, every optional
// subsystem spec, and cross-subsystem exclusions. Build calls it; direct
// Config consumers can call it early for better error locality.
func (c *Config) Validate(processors int) error {
	if err := c.HW.Validate(); err != nil {
		return err
	}
	if c.BufferPages < 0 {
		return fmt.Errorf("gamma: negative buffer size %d", c.BufferPages)
	}
	if err := c.Faults.Validate(processors); err != nil {
		return err
	}
	if err := c.Telemetry.validate(); err != nil {
		return err
	}
	if err := c.Heat.validate(); err != nil {
		return err
	}
	if err := c.Sharing.validate(); err != nil {
		return err
	}
	if err := c.Elastic.validate(processors); err != nil {
		return err
	}
	return nil
}
