package gamma

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/rebalance"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RunSpec controls one closed-workload measurement.
type RunSpec struct {
	// MPL is the multiprogramming level: the number of terminals, each
	// submitting its next query the moment the previous one completes
	// (zero think time), as in the paper's figures.
	MPL int
	// WarmupQueries completions are discarded before measurement starts.
	WarmupQueries int
	// MeasureQueries completions constitute the measurement window.
	MeasureQueries int
	// Seed varies the workload sampling; defaults to the machine seed.
	Seed int64
	// MaxSimTime aborts a run that fails to complete (guard against
	// misconfiguration); defaults to 30 simulated minutes.
	MaxSimTime sim.Duration
}

// ClassStats summarizes one query class within a measurement window.
type ClassStats struct {
	Completed      int
	MeanResponseMS float64
	P95ResponseMS  float64
	MeanProcsUsed  float64
}

// NodeUtil is one operator node's share of the measurement window: the
// per-node breakdown behind RunResult's machine-wide means. Comparing rows
// exposes execution skew — range declustering concentrates a selection's
// work on few nodes while MAGIC and BERD spread it (Section 7).
type NodeUtil struct {
	Node          int     `json:"node"`
	CPUUtil       float64 `json:"cpu_util"`
	DiskUtil      float64 `json:"disk_util"`
	DiskReads     int64   `json:"disk_reads"`
	BufferHitRate float64 `json:"buffer_hit_rate"`
	OpsExecuted   int64   `json:"ops_executed"`
	TuplesShipped int64   `json:"tuples_shipped"`
}

// Outcomes tallies per-query outcomes over the measurement window. All
// zeroes except OK on the fault-free legacy path.
type Outcomes struct {
	OK       int `json:"ok"`
	Retried  int `json:"retried"`
	TimedOut int `json:"timed_out"`
	Failed   int `json:"failed"`
}

// Succeeded reports the queries that produced full results.
func (o Outcomes) Succeeded() int { return o.OK + o.Retried }

// Total reports all completions, including abandoned queries.
func (o Outcomes) Total() int { return o.OK + o.Retried + o.TimedOut + o.Failed }

// String renders the tally in the fixed order the CI smoke greps for.
func (o Outcomes) String() string {
	return fmt.Sprintf("ok=%d retried=%d timed_out=%d failed=%d",
		o.OK, o.Retried, o.TimedOut, o.Failed)
}

// RunResult summarizes a measurement window.
type RunResult struct {
	Strategy        string
	Mix             string
	MPL             int
	Completed       int
	ElapsedSim      sim.Duration
	ThroughputQPS   float64
	MeanResponseMS  float64
	P95ResponseMS   float64
	MeanProcsUsed   float64
	MeanTuples      float64
	CPUUtilization  float64 // mean over operator nodes
	DiskUtilization float64
	BufferHitRate   float64
	DiskReadsPerQry float64
	// PerClass breaks response time and processor usage down by query
	// class (the paper discusses QA and QB behaviour separately).
	PerClass map[string]ClassStats
	// NodeStats is the per-node breakdown of the utilization means above,
	// in node order. DiskSkew and CPUSkew condense it to max/mean ratios
	// (1.0 = perfectly balanced; higher = more execution skew).
	NodeStats []NodeUtil `json:"node_stats,omitempty"`
	DiskSkew  float64    `json:"disk_skew,omitempty"`
	CPUSkew   float64    `json:"cpu_skew,omitempty"`
	// Metrics carries the engine registry snapshot when Config.Metrics is
	// on: latency histograms (queueing vs service per facility), buffer
	// and network counters, query fan-out and response distributions.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Series is the windowed time-series snapshot when Config.Telemetry is
	// armed: per-node utilization/queue-depth and machine skew over the
	// measurement window (the sampler is rebased at the warm-up boundary).
	Series []obs.SeriesData `json:"time_series,omitempty"`
	// Heat is the per-fragment access snapshot when Config.Heat is armed
	// (counters cover the measurement window only), and HotFragments
	// ranks its hottest entries — the detector feed an adaptive
	// re-declustering loop subscribes to.
	Heat         *obs.HeatSnapshot `json:"heat,omitempty"`
	HotFragments []obs.HotFragment `json:"hot_fragments,omitempty"`
	// Sharing is the shared-scan manager's tally when Config.Sharing is
	// armed (counters cover the measurement window only).
	Sharing *exec.SharingStats `json:"sharing,omitempty"`
	// Rebalance is the membership controller's history when Config.Elastic
	// is armed: every executed (or refused) transition with its staging,
	// copy and cutover timestamps plus the data volume moved.
	Rebalance *rebalance.Report `json:"rebalance,omitempty"`

	// Degraded-mode accounting. Outcomes tallies every completion in the
	// window (Completed and the response statistics cover only the
	// successful ones); RetriesTotal counts operator redispatches;
	// FaultLog is the injector's applied-fault log for the whole run.
	Outcomes     Outcomes       `json:"outcomes,omitempty"`
	RetriesTotal int64          `json:"retries_total,omitempty"`
	FaultLog     []fault.Record `json:"fault_log,omitempty"`
}

// String renders the headline numbers.
func (r RunResult) String() string {
	return fmt.Sprintf("%s/%s MPL=%d: %.2f q/s, resp %.1fms, %.2f procs/query",
		r.Strategy, r.Mix, r.MPL, r.ThroughputQPS, r.MeanResponseMS, r.MeanProcsUsed)
}

// Run executes one closed-workload experiment on a fresh machine state and
// returns the measured steady-state statistics. The machine is reset first,
// so runs are independent and deterministic for a (machine seed, run seed)
// pair.
func (m *Machine) Run(mix workload.Mix, spec RunSpec) (RunResult, error) {
	if spec.MPL <= 0 {
		return RunResult{}, fmt.Errorf("gamma: MPL must be positive, got %d", spec.MPL)
	}
	if spec.WarmupQueries < 0 || spec.MeasureQueries <= 0 {
		return RunResult{}, fmt.Errorf("gamma: bad warmup/measure spec %d/%d",
			spec.WarmupQueries, spec.MeasureQueries)
	}
	if spec.MaxSimTime <= 0 {
		spec.MaxSimTime = 30 * 60 * sim.Second
	}
	seed := spec.Seed
	if seed == 0 {
		seed = m.Cfg.Seed
	}
	m.reset()
	eng := m.Eng
	access := mix.AccessChooser()
	m.Host.SetAccessPolicy(m.Relation.Name, access)
	card := m.Relation.Cardinality()
	streams := rng.NewFactory(seed)

	type classAcc struct {
		resp  stats.BatchMeans
		procs stats.Accumulator
	}
	var (
		completed   int
		measuring   bool
		measureFrom sim.Time
		measured    int
		resp        stats.BatchMeans
		procs       stats.Accumulator
		tuples      stats.Accumulator
		diskReads0  int64
		perClass    = map[string]*classAcc{}
		outcomes    Outcomes
		retriesTot  int64
	)
	target := spec.WarmupQueries + spec.MeasureQueries

	for term := 0; term < spec.MPL; term++ {
		src := streams.Stream(fmt.Sprintf("terminal%d", term))
		eng.Spawn(fmt.Sprintf("terminal%d", term), func(p *sim.Proc) {
			for {
				pred, cls := mix.Sample(src, card)
				res := m.Host.Submit(p, plan.Select(m.Relation.Name, pred, access(pred)))
				completed++
				if measuring {
					switch res.Outcome {
					case exec.OutcomeOK:
						outcomes.OK++
					case exec.OutcomeRetried:
						outcomes.Retried++
					case exec.OutcomeTimedOut:
						outcomes.TimedOut++
					case exec.OutcomeFailed:
						outcomes.Failed++
					}
					retriesTot += int64(res.Retries)
					// Abandoned queries count toward the window's completions
					// but not its performance statistics: a timed-out query
					// has no meaningful response time.
					if res.Outcome.Succeeded() {
						resp.Add(res.ResponseMS())
						procs.Add(float64(res.ProcessorsUsed))
						tuples.Add(float64(res.Tuples))
						ca := perClass[cls.Name]
						if ca == nil {
							ca = &classAcc{}
							perClass[cls.Name] = ca
						}
						ca.resp.Add(res.ResponseMS())
						ca.procs.Add(float64(res.ProcessorsUsed))
						measured++
					}
				}
				if completed == spec.WarmupQueries && !measuring {
					measuring = true
					measureFrom = p.Now()
					m.resetStats()
					diskReads0 = m.totalDiskReads()
					m.Telemetry.Rebase(int64(p.Now()))
				}
				if completed >= target {
					eng.Stop()
					return
				}
			}
		})
	}
	// Degenerate warmup: measurement starts immediately.
	if spec.WarmupQueries == 0 {
		measuring = true
	}
	m.spawnTelemetry()

	if err := eng.RunUntil(sim.Time(spec.MaxSimTime)); err != nil {
		return RunResult{}, err
	}
	if completed < target {
		return RunResult{}, fmt.Errorf("gamma: run hit MaxSimTime with %d/%d queries done",
			completed, target)
	}

	elapsed := sim.Duration(eng.Now() - measureFrom)
	if elapsed <= 0 {
		return RunResult{}, fmt.Errorf("gamma: empty measurement window")
	}
	out := RunResult{
		Strategy:      m.Placement.Name(),
		Mix:           mix.Name,
		MPL:           spec.MPL,
		Completed:     measured,
		ElapsedSim:    elapsed,
		ThroughputQPS: float64(measured) / elapsed.Seconds(),
		MeanProcsUsed: procs.Mean(),
		MeanTuples:    tuples.Mean(),
		Outcomes:      outcomes,
		RetriesTotal:  retriesTot,
	}
	if measured > 0 {
		out.DiskReadsPerQry = float64(m.totalDiskReads()-diskReads0) / float64(measured)
	}
	if m.Injector != nil {
		out.FaultLog = m.Injector.Log()
	}
	if m.Telemetry != nil {
		out.Series = m.Telemetry.Snapshot()
	}
	if m.Heat != nil {
		out.Heat = m.Heat.Snapshot(m.Cfg.Heat.topK())
		out.HotFragments = out.Heat.HotFragments()
	}
	out.Sharing = m.sharingStats()
	out.Rebalance = m.rebalanceReport()
	mean, _ := resp.Interval(10)
	out.MeanResponseMS = mean
	out.P95ResponseMS = resp.Percentile(95)

	var cpu, disk, hits, total float64
	out.NodeStats = make([]NodeUtil, len(m.Nodes))
	for i, n := range m.Nodes {
		cpu += n.CPU.Utilization()
		disk += n.Disk.Utilization()
		hits += float64(n.Pool.Hits())
		total += float64(n.Pool.Hits() + n.Pool.Misses())
		out.NodeStats[i] = NodeUtil{
			Node:          n.ID,
			CPUUtil:       n.CPU.Utilization(),
			DiskUtil:      n.Disk.Utilization(),
			DiskReads:     n.Disk.Reads(),
			BufferHitRate: n.Pool.HitRate(),
			OpsExecuted:   n.OpsExecuted,
			TuplesShipped: n.TuplesShipped,
		}
	}
	out.CPUUtilization = cpu / float64(len(m.Nodes))
	out.DiskUtilization = disk / float64(len(m.Nodes))
	if total > 0 {
		out.BufferHitRate = hits / total
	}
	out.DiskSkew = skewRatio(out.NodeStats, func(u NodeUtil) float64 { return u.DiskUtil })
	out.CPUSkew = skewRatio(out.NodeStats, func(u NodeUtil) float64 { return u.CPUUtil })
	if reg := eng.Metrics(); reg != nil {
		for _, u := range out.NodeStats {
			reg.Gauge(fmt.Sprintf("node%d.cpu.util", u.Node)).Set(u.CPUUtil)
			reg.Gauge(fmt.Sprintf("node%d.disk.util", u.Node)).Set(u.DiskUtil)
		}
		snap := reg.Snapshot()
		out.Metrics = &snap
	}
	out.PerClass = make(map[string]ClassStats, len(perClass))
	for name, ca := range perClass {
		clsMean, _ := ca.resp.Interval(10)
		out.PerClass[name] = ClassStats{
			Completed:      ca.resp.N(),
			MeanResponseMS: clsMean,
			P95ResponseMS:  ca.resp.Percentile(95),
			MeanProcsUsed:  ca.procs.Mean(),
		}
	}
	return out, nil
}

// skewRatio reports max/mean of a per-node metric: 1.0 when the load is
// perfectly balanced, approaching the node count when one node does all
// the work. Returns 0 when the metric is identically zero.
func skewRatio(nodes []NodeUtil, metric func(NodeUtil) float64) float64 {
	var max, sum float64
	for _, u := range nodes {
		v := metric(u)
		sum += v
		if v > max {
			max = v
		}
	}
	if sum <= 0 {
		return 0
	}
	return max / (sum / float64(len(nodes)))
}

// resetStats clears utilization and counter state at the start of the
// measurement window.
func (m *Machine) resetStats() {
	for _, n := range m.Nodes {
		n.CPU.ResetStats()
		n.Disk.ResetStats()
		n.Pool.ResetStats()
		n.ResetStats()
	}
	m.Net.ResetStats()
	m.Heat.Reset()
	if m.Host.Shared != nil {
		m.Host.Shared.ResetStats()
	}
	if reg := m.Eng.Metrics(); reg != nil {
		reg.Reset()
	}
}

// sharingStats assembles the shared-scan tally — the host manager's flush
// counters plus the page dedup counters summed over the operator nodes —
// or nil when sharing is off.
// rebalanceReport snapshots the membership controller's history (nil when
// elasticity is off).
func (m *Machine) rebalanceReport() *rebalance.Report {
	if m.Rebalancer == nil {
		return nil
	}
	r := m.Rebalancer.Report()
	return &r
}

func (m *Machine) sharingStats() *exec.SharingStats {
	if m.Host.Shared == nil {
		return nil
	}
	s := m.Host.Shared.Stats()
	for _, n := range m.Nodes {
		s.PagesRequested += n.SharedPagesRequested
		s.PagesRead += n.SharedPagesRead
	}
	return &s
}

func (m *Machine) totalDiskReads() int64 {
	var t int64
	for _, n := range m.Nodes {
		t += n.Disk.Reads()
	}
	return t
}
