package gamma

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TelemetrySpec arms windowed time-series sampling on the machine: every
// reset builds a fresh obs.Sampler carrying per-node windowed disk/CPU
// utilization, instantaneous queue depths, per-node operator rates, and
// machine-wide disk/CPU skew over the same windows. Run drives it on
// sim-time window boundaries; RunServe hands it to the serving layer,
// which adds its own probes and drives sampling plus the SLO burn-rate
// evaluator.
type TelemetrySpec struct {
	// Window is the sampling window in simulated time. Default 250ms.
	Window sim.Duration
	// Capacity bounds each series ring in windows (oldest windows are
	// overwritten beyond it). Default obs.DefaultCapacity.
	Capacity int
	// BurnBudget is the per-window bad fraction the serving SLO burn
	// evaluator tolerates. Default serve.DefaultBurnBudget.
	BurnBudget float64
}

// window resolves the sampling window.
func (t *TelemetrySpec) window() sim.Duration {
	if t == nil || t.Window <= 0 {
		return sim.Duration(obs.DefaultWindowNS)
	}
	return t.Window
}

// validate rejects nonsensical telemetry parameters (nil is valid:
// telemetry off; zero values defer to defaults).
func (t *TelemetrySpec) validate() error {
	if t == nil {
		return nil
	}
	if t.Window < 0 {
		return fmt.Errorf("gamma: negative telemetry window %v", t.Window)
	}
	if t.Capacity < 0 {
		return fmt.Errorf("gamma: negative telemetry capacity %d", t.Capacity)
	}
	if t.BurnBudget < 0 || t.BurnBudget >= 1 {
		return fmt.Errorf("gamma: burn budget %v outside [0,1)", t.BurnBudget)
	}
	return nil
}

// newMachineSampler builds the sampler and registers the machine-side
// probes. Windowed utilizations are rate series over cumulative
// busy-seconds — the sampler differences consecutive readings, so each
// window reports the utilization of exactly that window.
func newMachineSampler(spec *TelemetrySpec, nodes []*exec.Node) *obs.Sampler {
	s := obs.NewSampler(int64(spec.window()), spec.Capacity)
	for _, n := range nodes {
		n := n
		s.Register(fmt.Sprintf("node%d.disk.util", n.ID), obs.SeriesRate, n.Disk.BusySeconds)
		s.Register(fmt.Sprintf("node%d.cpu.util", n.ID), obs.SeriesRate, n.CPU.BusySeconds)
		s.Register(fmt.Sprintf("node%d.disk.queue", n.ID), obs.SeriesGauge,
			func() float64 { return float64(n.Disk.QueueLen()) })
		s.Register(fmt.Sprintf("node%d.cpu.queue", n.ID), obs.SeriesGauge,
			func() float64 { return float64(n.CPU.QueueLen()) })
		s.Register(fmt.Sprintf("node%d.ops_qps", n.ID), obs.SeriesRate,
			func() float64 { return float64(n.OpsExecuted) })
	}
	s.Register("disk.skew", obs.SeriesGauge,
		skewProbe(nodes, func(n *exec.Node) float64 { return n.Disk.BusySeconds() }))
	s.Register("cpu.skew", obs.SeriesGauge,
		skewProbe(nodes, func(n *exec.Node) float64 { return n.CPU.BusySeconds() }))
	return s
}

// skewProbe returns a gauge probe computing max/mean over the per-node
// deltas of a cumulative reading since the probe's previous invocation —
// the windowed analogue of skewRatio (1.0 balanced, higher = skewed, 0
// when the window saw no activity). The closure re-primes itself whenever
// it runs, so a Rebase (which invokes every probe) realigns it with a
// stats reset.
func skewProbe(nodes []*exec.Node, read func(*exec.Node) float64) obs.Probe {
	prev := make([]float64, len(nodes))
	for i, n := range nodes {
		prev[i] = read(n)
	}
	return func() float64 {
		var max, sum float64
		neg := false
		for i, n := range nodes {
			v := read(n)
			d := v - prev[i]
			prev[i] = v
			if d < 0 {
				// Stats reset without a rebase: this window's deltas are
				// meaningless, report no skew.
				neg = true
				continue
			}
			sum += d
			if d > max {
				max = d
			}
		}
		if neg || sum <= 0 {
			return 0
		}
		return max / (sum / float64(len(nodes)))
	}
}

// spawnTelemetry starts the sampling driver on the current engine when
// telemetry is armed: one process holding one window of simulated time
// per iteration. Run calls it after reset; RunServe does not — the
// serving layer drives the shared sampler itself (together with the burn
// evaluator). Direct users of Machine.Eng that run the engine to heap
// drain must not call this: a forever-holding process would keep the heap
// populated.
func (m *Machine) spawnTelemetry() {
	if m.Telemetry == nil {
		return
	}
	eng, ts := m.Eng, m.Telemetry
	window := sim.Duration(ts.WindowNS())
	eng.Spawn("obs.sampler", func(p *sim.Proc) {
		for {
			p.Hold(window)
			if eng.Stopped() {
				return
			}
			ts.Sample(int64(p.Now()))
		}
	})
}
