package gamma

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// OpenRunSpec controls an open-system measurement: queries arrive in a
// Poisson stream at ArrivalRateQPS instead of being driven by a fixed
// number of terminals. This extends the paper's closed multiprogramming
// model: response time versus offered load exposes each strategy's
// saturation point directly.
type OpenRunSpec struct {
	ArrivalRateQPS float64
	WarmupQueries  int
	MeasureQueries int
	Seed           int64
	// MaxOutstanding aborts the run if this many queries are ever in
	// flight at once — the offered load exceeds capacity (default 4096).
	MaxOutstanding int
	// MaxSimTime bounds the run (default 30 simulated minutes).
	MaxSimTime sim.Duration
}

// RunOpen executes an open-system experiment on a fresh machine state.
func (m *Machine) RunOpen(mix workload.Mix, spec OpenRunSpec) (RunResult, error) {
	if spec.ArrivalRateQPS <= 0 {
		return RunResult{}, fmt.Errorf("gamma: arrival rate must be positive, got %g", spec.ArrivalRateQPS)
	}
	if spec.WarmupQueries < 0 || spec.MeasureQueries <= 0 {
		return RunResult{}, fmt.Errorf("gamma: bad warmup/measure spec %d/%d",
			spec.WarmupQueries, spec.MeasureQueries)
	}
	if spec.MaxOutstanding <= 0 {
		spec.MaxOutstanding = 4096
	}
	if spec.MaxSimTime <= 0 {
		spec.MaxSimTime = 30 * 60 * sim.Second
	}
	seed := spec.Seed
	if seed == 0 {
		seed = m.Cfg.Seed
	}
	m.reset()
	eng := m.Eng
	access := mix.AccessChooser()
	card := m.Relation.Cardinality()
	streams := rng.NewFactory(seed)
	arrivals := streams.Stream("arrivals")
	sampler := streams.Stream("queries")

	var (
		completed   int
		outstanding int
		overloaded  bool
		measuring   = spec.WarmupQueries == 0
		measureFrom sim.Time
		resp        stats.BatchMeans
		procs       stats.Accumulator
		tuples      stats.Accumulator
	)
	target := spec.WarmupQueries + spec.MeasureQueries
	meanGapMS := 1000.0 / spec.ArrivalRateQPS

	eng.Spawn("arrivals", func(p *sim.Proc) {
		for q := 0; ; q++ {
			p.Hold(sim.Milliseconds(arrivals.Exponential(meanGapMS)))
			if eng.Stopped() || overloaded {
				return
			}
			outstanding++
			if outstanding > spec.MaxOutstanding {
				overloaded = true
				eng.Stop()
				return
			}
			pred, _ := mix.Sample(sampler, card)
			eng.Spawn(fmt.Sprintf("query%d", q), func(qp *sim.Proc) {
				res := m.Host.Execute(qp, pred, access)
				outstanding--
				completed++
				if measuring {
					resp.Add(res.ResponseMS())
					procs.Add(float64(res.ProcessorsUsed))
					tuples.Add(float64(res.Tuples))
				}
				if completed == spec.WarmupQueries && !measuring {
					measuring = true
					measureFrom = qp.Now()
					m.resetStats()
				}
				if completed >= target {
					eng.Stop()
				}
			})
		}
	})

	if err := eng.RunUntil(sim.Time(spec.MaxSimTime)); err != nil {
		return RunResult{}, err
	}
	if overloaded {
		return RunResult{}, fmt.Errorf("gamma: offered load %g q/s exceeds capacity "+
			"(%d queries outstanding)", spec.ArrivalRateQPS, spec.MaxOutstanding)
	}
	if completed < target {
		return RunResult{}, fmt.Errorf("gamma: open run hit MaxSimTime with %d/%d queries done",
			completed, target)
	}

	elapsed := sim.Duration(eng.Now() - measureFrom)
	if elapsed <= 0 {
		return RunResult{}, fmt.Errorf("gamma: empty measurement window")
	}
	measured := resp.N()
	out := RunResult{
		Strategy:      m.Placement.Name(),
		Mix:           mix.Name,
		Completed:     measured,
		ElapsedSim:    elapsed,
		ThroughputQPS: float64(measured) / elapsed.Seconds(),
		MeanProcsUsed: procs.Mean(),
		MeanTuples:    tuples.Mean(),
	}
	mean, _ := resp.Interval(10)
	out.MeanResponseMS = mean
	out.P95ResponseMS = resp.Percentile(95)
	var cpu, disk float64
	for _, n := range m.Nodes {
		cpu += n.CPU.Utilization()
		disk += n.Disk.Utilization()
	}
	out.CPUUtilization = cpu / float64(len(m.Nodes))
	out.DiskUtilization = disk / float64(len(m.Nodes))
	return out, nil
}
