package gamma

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rebalance"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

// serveSeedTag decorrelates the serving layer's rng factory from the
// machine's own: both are rooted at the experiment seed, and two factories
// with the same root hand out identical stream sequences (stream k of one
// equals stream k of the other). Without the tag, arrival gaps would be
// exponential transforms of the very uniforms driving disk 0's rotational
// latencies — a correlation the common-random-numbers discipline forbids.
const serveSeedTag = 0x53455256 // "SERV"

// ServeSpec controls one open-system serving measurement. Zero values
// defer to serve.Config's defaults (64 service slots, 4 tenants, 1000ms
// SLO, bounded queue of 4x the slots).
type ServeSpec struct {
	// Arrival is the open arrival process; RateQPS is the offered load.
	Arrival serve.ArrivalSpec
	// Tenants configures multi-tenant dispatch; empty means 4 equal tenants.
	Tenants []serve.Tenant
	// MaxInService is the MPL governor: the concurrent-execution cap the
	// closed-loop MPL becomes in an open system.
	MaxInService int
	// MaxQueue bounds the admission wait queue (partitioned per tenant).
	MaxQueue int
	// MaxQueueWait ages out queries that waited too long for a slot.
	MaxQueueWait sim.Duration
	// SLOms is the latency objective for goodput accounting.
	SLOms float64
	// WarmupQueries completions are discarded; the next MeasureQueries
	// completions form the measurement window.
	WarmupQueries  int
	MeasureQueries int
	// Seed varies arrival, tenant-assignment and workload sampling streams;
	// defaults to the machine seed.
	Seed int64
	// MaxSimTime bounds the run in simulated time.
	MaxSimTime sim.Duration
}

// ServeResult is one serving run: the front end's measured statistics plus
// the machine-side utilization picture over the same window.
type ServeResult struct {
	Strategy string `json:"strategy"`
	Mix      string `json:"mix"`

	Serve serve.Result `json:"serve"`

	CPUUtilization  float64 `json:"cpu_util"`
	DiskUtilization float64 `json:"disk_util"`
	DiskSkew        float64 `json:"disk_skew"`
	CPUSkew         float64 `json:"cpu_skew"`

	// FaultLog is the injector's applied-fault log when faults are armed.
	FaultLog []fault.Record `json:"fault_log,omitempty"`

	// Series is the windowed time-series snapshot when Config.Telemetry is
	// armed: machine probes plus the serving layer's goodput/shed/queue
	// series, sampled at the same instants.
	Series []obs.SeriesData `json:"time_series,omitempty"`

	// Heat is the per-fragment access snapshot when Config.Heat is armed
	// (counters cover the post-warm-up interval), and HotFragments ranks
	// its hottest entries — the same detector feed RunResult carries.
	Heat         *obs.HeatSnapshot `json:"heat,omitempty"`
	HotFragments []obs.HotFragment `json:"hot_fragments,omitempty"`

	// Sharing is the shared-scan manager's tally when Config.Sharing is
	// armed: with an open arrival process, batching rides the offered
	// load's natural burstiness.
	Sharing *exec.SharingStats `json:"sharing,omitempty"`
	// Rebalance is the membership controller's history when Config.Elastic
	// is armed: every executed (or refused) transition with its staging,
	// copy and cutover timestamps plus the data volume moved.
	Rebalance *rebalance.Report `json:"rebalance,omitempty"`
}

// String renders the headline numbers.
func (r ServeResult) String() string {
	return fmt.Sprintf("%s/%s λ=%.0f: %.2f q/s goodput, p99 %.1fms, shed %.1f%%",
		r.Strategy, r.Mix, r.Serve.OfferedQPS, r.Serve.GoodputQPS(),
		r.Serve.SLO.Latency.P99, 100*r.Serve.SLO.ShedRate())
}

// RunServe executes one open-system serving experiment on a fresh machine
// state: the serve front end admits queries from the spec's arrival process
// and executes them on this machine's scheduler under the MPL governor.
// Like Run, the machine is reset first, so runs are independent and
// deterministic for a (machine seed, run seed) pair.
func (m *Machine) RunServe(mix workload.Mix, spec ServeSpec) (ServeResult, error) {
	seed := spec.Seed
	if seed == 0 {
		seed = m.Cfg.Seed
	}
	m.reset()
	card := m.Relation.Cardinality()
	access := mix.AccessChooser()

	cfg := serve.Config{
		Arrival:        spec.Arrival,
		Tenants:        spec.Tenants,
		MaxInService:   spec.MaxInService,
		MaxQueue:       spec.MaxQueue,
		MaxQueueWait:   spec.MaxQueueWait,
		SLOms:          spec.SLOms,
		WarmupQueries:  spec.WarmupQueries,
		MeasureQueries: spec.MeasureQueries,
		MaxSimTime:     spec.MaxSimTime,
		Sample: func(src *rng.Source) (core.Predicate, string) {
			pred, cls := mix.Sample(src, card)
			return pred, cls.Name
		},
		Access: access,
		OnWarm: func() { m.resetStats() },
	}
	if m.Telemetry != nil {
		// The serving layer adds its own probes to the machine sampler and
		// drives sampling (plus the burn evaluator) itself — spawnTelemetry
		// is not called here, or windows would be sampled twice.
		cfg.Telemetry = m.Telemetry
		cfg.BurnBudget = m.Cfg.Telemetry.BurnBudget
	}

	res, err := serve.Run(m.Eng, rng.NewFactory(seed^serveSeedTag), cfg, m.Host)
	if err != nil {
		return ServeResult{}, err
	}

	out := ServeResult{
		Strategy: m.Placement.Name(),
		Mix:      mix.Name,
		Serve:    res,
	}
	var cpu, disk float64
	nodeStats := make([]NodeUtil, len(m.Nodes))
	for i, n := range m.Nodes {
		cpu += n.CPU.Utilization()
		disk += n.Disk.Utilization()
		nodeStats[i] = NodeUtil{
			Node:     n.ID,
			CPUUtil:  n.CPU.Utilization(),
			DiskUtil: n.Disk.Utilization(),
		}
	}
	out.CPUUtilization = cpu / float64(len(m.Nodes))
	out.DiskUtilization = disk / float64(len(m.Nodes))
	out.DiskSkew = skewRatio(nodeStats, func(u NodeUtil) float64 { return u.DiskUtil })
	out.CPUSkew = skewRatio(nodeStats, func(u NodeUtil) float64 { return u.CPUUtil })
	if m.Injector != nil {
		out.FaultLog = m.Injector.Log()
	}
	if m.Telemetry != nil {
		out.Series = m.Telemetry.Snapshot()
	}
	if m.Heat != nil {
		out.Heat = m.Heat.Snapshot(m.Cfg.Heat.topK())
		out.HotFragments = out.Heat.HotFragments()
	}
	out.Sharing = m.sharingStats()
	out.Rebalance = m.rebalanceReport()
	return out, nil
}
