// Package gamma assembles the simulated Gamma database machine of Figure 7
// — P operator nodes (CPU + elevator disk + buffer pool + relation
// fragment) plus a scheduler/host node and terminals — and runs closed
// multiprogramming-level experiments against it, measuring throughput the
// way the paper's Section 7 figures report it.
package gamma

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/rebalance"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config fixes the machine's hardware and software constants.
type Config struct {
	HW    hw.Params
	Costs exec.Costs
	// BufferPages is the per-node buffer pool size in pages. The default
	// (24) keeps index roots and interiors resident while data pages still
	// pay I/O, matching the paper's disk-bound query costs; see DESIGN.md.
	BufferPages int
	// Layout of fragments and indexes.
	Layout storage.Layout
	// ClusteredAttr carries a clustered index on every node (the paper:
	// unique2/B); NonClusteredAttrs carry non-clustered indexes (unique1/A).
	ClusteredAttr     int
	NonClusteredAttrs []int
	// BERDFetchByTID switches BERD's second step to per-TID fetches
	// instead of predicate re-execution (ablation; see exec.Host).
	BERDFetchByTID bool
	// Metrics attaches an obs.Registry to the engine: facilities, disks,
	// buffer pools and the execution layer register latency histograms and
	// counters, and Run snapshots them into the result. Off by default —
	// the simulation schedule is identical either way, it only adds
	// bookkeeping cost.
	Metrics bool
	// Telemetry, when non-nil, arms windowed time-series sampling: every
	// reset builds a fresh obs.Sampler with per-node disk/CPU probes and
	// skew gauges, Run drives it on sim-time windows, and results carry the
	// series snapshot. Nil (the default) leaves the simulation schedule
	// byte-identical to a telemetry-free build.
	Telemetry *TelemetrySpec
	// Heat, when non-nil, arms fragment-granularity access accounting:
	// every reset builds a fresh obs.HeatMap whose accumulators the
	// execution layer increments allocation-free, results carry a
	// HeatSnapshot plus the HotFragments report, and — when Telemetry is
	// also armed — per-fragment decayed-heat series join the sampler. Nil
	// (the default) attaches no accumulators, so the simulation schedule
	// and all output stay byte-identical to a heat-free build.
	Heat *HeatSpec
	// Sharing, when non-nil, arms the shared-scan manager: concurrent
	// selections hitting the same fragment within the batching window are
	// predicate-grouped into one disk pass (exec.SharedScans), and results
	// carry SharingStats. Nil (the default) leaves the simulation schedule
	// byte-identical to a build without sharing support. Composes with
	// Faults/ChainedReplicas: batches are tagged with their members'
	// attempt epochs, so the degraded scheduler drops stale batch replies
	// the same way it drops stale lone-operator replies.
	Sharing *SharingSpec
	// Elastic, when non-nil, arms elastic cluster membership: the machine
	// builds one standby node per scheduled Join, installs a
	// rebalance.Controller that executes the membership schedule as
	// stage → throttled copy → atomic cutover, and promotes permanent node
	// crashes into repair tasks. Nil (the default) leaves the simulation
	// schedule byte-identical to a build without elasticity support.
	Elastic *ElasticSpec
	// Seed drives all machine-level randomness (disk latencies, workload).
	Seed int64

	// Faults, when Enabled, arms the deterministic fault injector: the spec's
	// events are applied as ordinary simulation events and the scheduler runs
	// in degraded mode. Nil (the default) leaves runs byte-identical to a
	// build without fault support.
	Faults *fault.Spec
	// ChainedReplicas mirrors every node's fragments (and BERD auxiliaries)
	// on its chain successor, giving degraded-mode execution a backup to
	// reroute to. Implied storage cost: 2x pages per node.
	ChainedReplicas bool
	// Retry overrides the degraded-mode retry/timeout policy; nil uses
	// exec.DefaultRetryPolicy. Only consulted when Faults or ChainedReplicas
	// put the scheduler in degraded mode.
	Retry *exec.RetryPolicy
}

// degradedMode reports whether the scheduler should run with deadlines,
// retries and replica rerouting.
func (c *Config) degradedMode() bool {
	return c.Faults.Enabled() || c.ChainedReplicas
}

// DefaultConfig returns the paper's configuration (Table 2, Section 6).
func DefaultConfig() Config {
	return Config{
		HW:                hw.DefaultParams(),
		Costs:             exec.DefaultCosts(),
		BufferPages:       24,
		Layout:            storage.DefaultLayout(),
		ClusteredAttr:     storage.Unique2,
		NonClusteredAttrs: []int{storage.Unique1},
		Seed:              1,
	}
}

// relationEntry is one declustered relation of the machine.
type relationEntry struct {
	rel        *storage.Relation
	placement  core.Placement
	fragTuples map[int][]storage.Tuple
	auxByAttr  map[int]map[int][]storage.AuxEntry
}

// Machine is one assembled simulation instance: build it with Build (and
// optionally AddRelation), then call Run (repeatedly, with increasing MPL
// if desired — each Run uses a fresh engine). Relation and Placement refer
// to the primary relation, which Run's workload targets.
type Machine struct {
	Cfg       Config
	Relation  *storage.Relation
	Placement core.Placement

	Eng     *sim.Engine
	Net     *hw.Network
	Nodes   []*exec.Node
	Host    *exec.Host
	Catalog *catalog.Catalog
	// Injector is armed when Cfg.Faults is enabled (rebuilt on every reset,
	// so each Run gets a fresh fault log); View is the scheduler's health
	// picture, non-nil whenever the machine runs in degraded mode.
	Injector *fault.Injector
	View     *fault.View
	// Telemetry is the windowed time-series sampler, non-nil when
	// Cfg.Telemetry is set (rebuilt on every reset so each run's series
	// start empty). Run and RunServe drive it; direct Eng users may call
	// Sample/Rebase themselves.
	Telemetry *obs.Sampler
	// Heat is the per-fragment accumulator map, non-nil when Cfg.Heat is
	// set (rebuilt on every reset). Run/RunServe reset it at the warm-up
	// boundary and snapshot it into the result.
	Heat *obs.HeatMap
	// Rebalancer is the elastic membership controller, non-nil when
	// Cfg.Elastic is set (rebuilt on every reset). Run/RunServe snapshot
	// its report into the result.
	Rebalancer *rebalance.Controller

	relations []*relationEntry
	// allocs are the per-physical-node page allocators, retained so
	// elastic transitions can stage next-generation fragments on the same
	// disks the build laid out.
	allocs []*storage.Allocator
}

// distribute assigns every tuple its home processor and builds the BERD
// auxiliary assignments when applicable.
func distribute(rel *storage.Relation, placement core.Placement) (*relationEntry, error) {
	p := placement.Processors()
	e := &relationEntry{
		rel:        rel,
		placement:  placement,
		fragTuples: make(map[int][]storage.Tuple, p),
	}
	for _, t := range rel.Tuples {
		home := placement.HomeOf(t)
		if home < 0 || home >= p {
			return nil, fmt.Errorf("gamma: placement sent tuple %d to processor %d of %d",
				t.TID, home, p)
		}
		e.fragTuples[home] = append(e.fragTuples[home], t)
	}
	if berd, ok := placement.(*core.BERDPlacement); ok {
		e.auxByAttr = berd.AuxAssignments(rel)
	}
	return e, nil
}

// Build declusters the relation according to the placement and constructs
// the machine. The expensive parts (tuple distribution, BERD auxiliary
// construction) happen once; the simulation engine itself is rebuilt per
// Run so successive runs are independent.
func Build(rel *storage.Relation, placement core.Placement, cfg Config) (*Machine, error) {
	if err := cfg.Validate(placement.Processors()); err != nil {
		return nil, err
	}
	entry, err := distribute(rel, placement)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Cfg:       cfg,
		Relation:  rel,
		Placement: placement,
		relations: []*relationEntry{entry},
	}
	m.reset()
	return m, nil
}

// AddRelation declusters a further relation onto the same machine (its
// placement must span the same processors) and rebuilds the simulation
// state. Relation names must be unique.
func (m *Machine) AddRelation(rel *storage.Relation, placement core.Placement) error {
	if placement.Processors() != m.Placement.Processors() {
		return fmt.Errorf("gamma: relation %s declustered over %d processors, machine has %d",
			rel.Name, placement.Processors(), m.Placement.Processors())
	}
	for _, e := range m.relations {
		if e.rel.Name == rel.Name {
			return fmt.Errorf("gamma: relation %s already on the machine", rel.Name)
		}
	}
	entry, err := distribute(rel, placement)
	if err != nil {
		return err
	}
	m.relations = append(m.relations, entry)
	m.reset()
	return nil
}

// Reset rebuilds the simulation engine, hardware, and storage so direct
// users of Machine.Eng/Host (single-query probes, joins) can start from a
// cold, deterministic state; Run and RunOpen call it implicitly.
func (m *Machine) Reset() { m.reset() }

// reset rebuilds the simulation engine, hardware, and storage so a Run
// starts from a cold, deterministic state. Server processes of the previous
// engine (operator managers, NIC receivers) stay parked on the abandoned
// engine and are reclaimed with it; only their goroutine stacks linger
// until process exit, which is negligible at experiment scale.
func (m *Machine) reset() {
	cfg := m.Cfg
	p := m.Placement.Processors()
	// Elasticity builds one standby node per scheduled Join beyond the
	// initial membership; pPhys is the physical node count. Without an
	// elastic spec pPhys == p and the layout below is unchanged.
	pPhys := p
	if cfg.Elastic != nil {
		pPhys += cfg.Elastic.schedule().Joins()
	}
	eng := sim.New()
	if cfg.Metrics {
		eng.SetMetrics(obs.NewRegistry())
	}
	streams := rng.NewFactory(cfg.Seed)

	// Operator nodes carry CPUs; the host endpoint (index pPhys) is an
	// uncharged coordination module per Figure 7 (nil CPU).
	cpus := make([]*hw.CPU, pPhys+1)
	for i := 0; i < pPhys; i++ {
		cpus[i] = hw.NewCPU(eng, fmt.Sprintf("cpu%d", i), cfg.HW)
		cpus[i].SetNode(i)
	}
	net := hw.NewNetwork(eng, cfg.HW, cpus)

	cat := catalog.New()
	nodes := make([]*exec.Node, pPhys)
	allocs := make([]*storage.Allocator, pPhys)
	for i := 0; i < pPhys; i++ {
		disk := hw.NewDisk(eng, fmt.Sprintf("disk%d", i), cfg.HW, cpus[i],
			streams.Stream(fmt.Sprintf("disk%d", i)))
		disk.SetNode(i)
		pool := buffer.NewPool(eng, fmt.Sprintf("buf%d", i), cfg.BufferPages, disk)
		nodes[i] = exec.NewNode(eng, i, cfg.HW, cfg.Costs, net, cpus[i], disk, pool)
		allocs[i] = storage.NewAllocator(cfg.HW.PagesPerDisk())
	}

	// Fragment heat accounting: one accumulator per physical fragment,
	// attached as the fragments are built below. Gated so a heat-free
	// machine attaches nothing and the execution hot path sees only nil
	// handles (whose increments no-op).
	m.Heat = nil
	if cfg.Heat != nil {
		m.Heat = obs.NewHeatMap()
	}

	// Lay out every relation on every node and register each in the System
	// Catalog (Figure 7): per-disk tuple/page counts and index metadata.
	for _, entry := range m.relations {
		info := &catalog.RelationInfo{
			Name:        entry.rel.Name,
			Cardinality: entry.rel.Cardinality(),
			Placement:   entry.placement,
			Nodes:       make(map[int]catalog.NodeStats, p),
		}
		// Standby nodes (index >= p) start empty: they hold no fragments
		// until a join transition stages a new generation onto them.
		for i := 0; i < p; i++ {
			n := nodes[i]
			alloc := allocs[i]
			frag := storage.BuildFragment(i, entry.fragTuples[i], cfg.ClusteredAttr, cfg.Layout, alloc)
			frag.AddIndex(cfg.ClusteredAttr, alloc)
			for _, a := range cfg.NonClusteredAttrs {
				frag.AddIndex(a, alloc)
			}
			n.AddFragment(entry.rel.Name, frag)
			if m.Heat != nil {
				fh := m.Heat.Frag(entry.rel.Name, i, obs.FragPrimary)
				fh.AddSize(int64(frag.FootprintPages()))
				n.AttachHeat(entry.rel.Name, obs.FragPrimary, fh)
			}
			ns := catalog.NodeStats{
				Tuples:    frag.NumTuples(),
				DataPages: frag.NumDataPages(),
			}
			for _, attr := range append([]int{cfg.ClusteredAttr}, cfg.NonClusteredAttrs...) {
				if ix := frag.Index(attr); ix != nil {
					ns.Indexes = append(ns.Indexes, catalog.IndexInfo{
						Attr:      attr,
						Name:      storage.AttrName(attr),
						Clustered: ix.Clustered,
						Pages:     ix.Tree.Pages(),
						Height:    ix.Tree.Height(),
					})
				}
			}
			for attr, perProc := range entry.auxByAttr {
				aux := storage.BuildAux(i, perProc[i], cfg.Layout, alloc)
				n.AddAux(entry.rel.Name, attr, aux)
				if m.Heat != nil {
					ah := m.Heat.Frag(entry.rel.Name, i, obs.FragAux)
					ah.AddSize(int64(aux.FootprintPages()))
					n.AttachHeat(entry.rel.Name, obs.FragAux, ah)
				}
				ns.AuxEntries += aux.Entries
				ns.AuxPages += aux.Tree.Pages()
			}
			info.Nodes[i] = ns
		}
		// Chained declustering: mirror node i's fragment (and auxiliaries)
		// on its chain successor, laid out on the successor's own disk. The
		// replica holds the same tuples keyed by the same primary home, so a
		// rerouted operator returns the identical result.
		if cfg.ChainedReplicas {
			for i := 0; i < p; i++ {
				b := core.ChainBackup(i, p)
				if b < 0 {
					continue
				}
				alloc := allocs[b]
				frag := storage.BuildFragment(i, entry.fragTuples[i], cfg.ClusteredAttr, cfg.Layout, alloc)
				frag.AddIndex(cfg.ClusteredAttr, alloc)
				for _, a := range cfg.NonClusteredAttrs {
					frag.AddIndex(a, alloc)
				}
				nodes[b].AddBackupFragment(entry.rel.Name, frag)
				if m.Heat != nil {
					// Keyed by node b: the replica lives on b's disk, so
					// its heat sums into b's disk totals.
					bh := m.Heat.Frag(entry.rel.Name, b, obs.FragBackup)
					bh.AddSize(int64(frag.FootprintPages()))
					nodes[b].AttachHeat(entry.rel.Name, obs.FragBackup, bh)
				}
				for attr, perProc := range entry.auxByAttr {
					aux := storage.BuildAux(i, perProc[i], cfg.Layout, alloc)
					nodes[b].AddBackupAux(entry.rel.Name, attr, aux)
					if m.Heat != nil {
						// Backup aux shares node b's aux accumulator: both
						// live on the same disk and serve the same trees.
						ah := m.Heat.Frag(entry.rel.Name, b, obs.FragAux)
						ah.AddSize(int64(aux.FootprintPages()))
						nodes[b].AttachHeat(entry.rel.Name, obs.FragAux, ah)
					}
				}
			}
		}
		if err := cat.Register(info); err != nil {
			panic(err) // unreachable: names deduplicated in AddRelation
		}
	}
	for _, n := range nodes {
		n.Start()
	}

	host := exec.NewHost(eng, pPhys, cfg.HW, net, cfg.Costs)
	for _, entry := range m.relations {
		host.AddRelation(entry.rel.Name, entry.placement)
	}
	host.BERDFetchByTID = cfg.BERDFetchByTID
	host.Start()

	// Degraded mode and fault injection. Everything here is gated so that a
	// machine without faults or replicas takes none of these branches and
	// draws from no extra rng streams: its schedule stays byte-identical.
	m.Injector, m.View = nil, nil
	if cfg.degradedMode() {
		view := fault.NewView(pPhys)
		policy := exec.DefaultRetryPolicy()
		if cfg.Retry != nil {
			policy = *cfg.Retry
		}
		backup := func(int, int) int { return -1 }
		if cfg.ChainedReplicas {
			// slots is the live membership size captured by the collector
			// (zero on the build-time identity topology, meaning p).
			backup = func(slot, slots int) int {
				if slots <= 0 {
					slots = p
				}
				return core.ChainBackup(slot, slots)
			}
		}
		host.Degraded = &exec.Degraded{
			Policy: policy, View: view, Backup: backup,
			Jitter: streams.Stream("retry.jitter"),
		}
		m.View = view
		if cfg.Faults.Enabled() {
			targets := fault.Targets{
				Disks: make([]fault.DiskTarget, pPhys),
				Nodes: make([]fault.NodeTarget, pPhys),
				Net:   net,
			}
			for i, n := range nodes {
				targets.Disks[i] = n.Disk
				targets.Nodes[i] = n
			}
			if cfg.Faults.NetDropP > 0 || cfg.Faults.NetDupP > 0 {
				net.EnableFaults(streams.Stream("fault.net"), cfg.Faults.NetDropP, cfg.Faults.NetDupP)
			}
			m.Injector = fault.NewInjector(eng, *cfg.Faults, view, targets, streams)
			m.Injector.Start()
		}
	}

	// Shared scans: compose with degraded mode via attempt-tagged batches.
	if cfg.Sharing != nil {
		host.EnableSharing(cfg.Sharing.window())
	}

	m.Telemetry = nil
	if cfg.Telemetry != nil {
		m.Telemetry = newMachineSampler(cfg.Telemetry, nodes)
		if m.Heat != nil {
			registerHeatSeries(m.Telemetry, m.Heat, cfg.Heat, m.Placement.Name())
		}
	}

	m.Eng = eng
	m.Net = net
	m.Nodes = nodes
	m.Host = host
	m.Catalog = cat
	m.allocs = allocs

	// Elastic membership: the controller process walks the schedule on the
	// sim clock, staging each transition through elasticExec and copying
	// pages through the per-node pools/disks at the configured throttle.
	// Wired last so the executor sees the fully-assembled machine.
	m.Rebalancer = nil
	if cfg.Elastic != nil {
		standbys := make([]int, 0, pPhys-p)
		for i := p; i < pPhys; i++ {
			standbys = append(standbys, i)
		}
		cp := &rebalance.Copier{
			IO:              elasticIO{nodes: nodes},
			RatePagesPerSec: cfg.Elastic.rate(),
			PageBytes:       cfg.HW.PageSize,
		}
		topo := make([]int, p)
		for i := range topo {
			topo[i] = i
		}
		ctl := rebalance.NewController(eng, cfg.Elastic.schedule(), p, standbys, &elasticExec{m: m, topo: topo}, cp)
		ctl.Start()
		m.Rebalancer = ctl
		if m.Injector != nil {
			m.Injector.OnEvent = promoteCrashes(ctl)
		}
		if m.Telemetry != nil {
			registerRebalanceSeries(m.Telemetry, cp)
		}
	}
}
