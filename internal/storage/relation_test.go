package storage

import (
	"testing"
	"testing/quick"
)

func TestGenerateWisconsinBasics(t *testing.T) {
	r := GenerateWisconsin(GenSpec{Cardinality: 1000, Seed: 1})
	if r.Cardinality() != 1000 {
		t.Fatalf("cardinality = %d", r.Cardinality())
	}
	if r.Name != "wisconsin" {
		t.Fatalf("default name = %q", r.Name)
	}
	// unique2 is sequential; unique1 is a permutation of 0..n-1.
	seen := make([]bool, 1000)
	for i, tup := range r.Tuples {
		if tup.Attrs[Unique2] != int64(i) {
			t.Fatalf("unique2[%d] = %d", i, tup.Attrs[Unique2])
		}
		if tup.TID != int64(i) {
			t.Fatalf("TID[%d] = %d", i, tup.TID)
		}
		u1 := tup.Attrs[Unique1]
		if u1 < 0 || u1 >= 1000 || seen[u1] {
			t.Fatalf("unique1 not a permutation: %d at %d", u1, i)
		}
		seen[u1] = true
		if tup.Attrs[Two] != u1%2 || tup.Attrs[Ten] != u1%10 || tup.Attrs[OnePercent] != u1%100 {
			t.Fatalf("derived attributes wrong for tuple %d", i)
		}
	}
}

func TestGenerateWisconsinDeterministic(t *testing.T) {
	a := GenerateWisconsin(GenSpec{Cardinality: 500, Seed: 9})
	b := GenerateWisconsin(GenSpec{Cardinality: 500, Seed: 9})
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			t.Fatalf("generation not deterministic at tuple %d", i)
		}
	}
	c := GenerateWisconsin(GenSpec{Cardinality: 500, Seed: 10})
	diff := 0
	for i := range a.Tuples {
		if a.Tuples[i].Attrs[Unique1] != c.Tuples[i].Attrs[Unique1] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical permutations")
	}
}

func TestCorrelationWindowIdentity(t *testing.T) {
	r := GenerateWisconsin(GenSpec{Cardinality: 100, CorrelationWindow: 1, Seed: 4})
	for i, tup := range r.Tuples {
		if tup.Attrs[Unique1] != int64(i) {
			t.Fatalf("window=1 should give identical attributes; unique1[%d]=%d", i, tup.Attrs[Unique1])
		}
	}
}

func TestCorrelationWindowBoundsDisplacement(t *testing.T) {
	const n, w = 10000, 100
	r := GenerateWisconsin(GenSpec{Cardinality: n, CorrelationWindow: w, Seed: 4})
	for i, tup := range r.Tuples {
		d := tup.Attrs[Unique1] - int64(i)
		if d < -w || d > w {
			t.Fatalf("displacement %d at tuple %d exceeds window %d", d, i, w)
		}
	}
}

// Property: any window produces a valid permutation.
func TestCorrelationPermutationProperty(t *testing.T) {
	check := func(window uint8, seed int64) bool {
		n := 256
		r := GenerateWisconsin(GenSpec{Cardinality: n, CorrelationWindow: int(window), Seed: seed})
		seen := make([]bool, n)
		for _, tup := range r.Tuples {
			u1 := tup.Attrs[Unique1]
			if u1 < 0 || u1 >= int64(n) || seen[u1] {
				return false
			}
			seen[u1] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUncorrelatedIsWellShuffled(t *testing.T) {
	const n = 10000
	r := GenerateWisconsin(GenSpec{Cardinality: n, CorrelationWindow: 0, Seed: 4})
	// Count fixed points; expectation is ~1 for a uniform permutation.
	fixed := 0
	for i, tup := range r.Tuples {
		if tup.Attrs[Unique1] == int64(i) {
			fixed++
		}
	}
	if fixed > 10 {
		t.Fatalf("%d fixed points in a supposedly uncorrelated permutation", fixed)
	}
}

func TestAttrBounds(t *testing.T) {
	r := GenerateWisconsin(GenSpec{Cardinality: 100, Seed: 1})
	lo, hi := r.AttrBounds(Unique1)
	if lo != 0 || hi != 99 {
		t.Fatalf("bounds = [%d, %d]", lo, hi)
	}
	empty := &Relation{}
	if lo, hi := empty.AttrBounds(Unique1); lo != 0 || hi != -1 {
		t.Fatalf("empty bounds = [%d, %d]", lo, hi)
	}
}

func TestAttrNames(t *testing.T) {
	if AttrName(Unique1) != "unique1" || AttrName(Unique2) != "unique2" {
		t.Fatal("attribute names wrong")
	}
	if AttrName(99) != "attr99" {
		t.Fatalf("out-of-range name = %q", AttrName(99))
	}
	if NumAttrs != 13 {
		t.Fatalf("Wisconsin relation must have 13 attributes, have %d", NumAttrs)
	}
}

func TestGenerateRejectsNonPositiveCardinality(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero cardinality did not panic")
		}
	}()
	GenerateWisconsin(GenSpec{Cardinality: 0})
}
