package storage

import (
	"fmt"
	"sort"

	"repro/internal/btree"
)

// Layout fixes the physical constants of fragment construction.
type Layout struct {
	TuplesPerPage int // Table 2: 36
	IndexFanout   int // children per interior index page (derived)
	IndexLeafCap  int // entries per leaf index page (derived)
}

// DefaultLayout matches Table 2 plus the derived index page capacities
// documented in DESIGN.md.
func DefaultLayout() Layout {
	return Layout{TuplesPerPage: 36, IndexFanout: 400, IndexLeafCap: 400}
}

// Allocator hands out physical page numbers on one node's disk.
type Allocator struct {
	next int
	max  int
}

// NewAllocator creates an allocator over [0, capacity) pages.
func NewAllocator(capacity int) *Allocator {
	return &Allocator{max: capacity}
}

// Alloc returns the next free physical page.
func (a *Allocator) Alloc() int {
	if a.next >= a.max {
		panic(fmt.Sprintf("storage: disk full: %d pages allocated", a.max))
	}
	a.next++
	return a.next - 1
}

// AllocRun returns the first page of a contiguous run of n pages.
func (a *Allocator) AllocRun(n int) int {
	if a.next+n > a.max {
		panic(fmt.Sprintf("storage: disk full: need %d pages, %d free", n, a.max-a.next))
	}
	start := a.next
	a.next += n
	return start
}

// Used reports the number of pages allocated so far.
func (a *Allocator) Used() int { return a.next }

// Access is the result of an access-method invocation: the index pages and
// data pages to touch (in order) and the qualifying tuples. DataPages may
// contain repeats for non-clustered access; the buffer pool makes the
// repeats cheap, exactly as on the real system.
type Access struct {
	IndexPages []int
	DataPages  []int
	Tuples     []Tuple
}

// PageCount is the total pages this access touches as the buffer pool
// sees them — index plus data, repeats included.
func (a Access) PageCount() int { return len(a.IndexPages) + len(a.DataPages) }

// Index is one B+-tree over a fragment's attribute.
type Index struct {
	Attr      int
	Clustered bool
	Tree      *btree.Tree
}

// Fragment is one node's piece of a declustered relation: tuples stored in
// clustered-attribute order across a contiguous run of data pages, plus any
// indexes.
type Fragment struct {
	Node          int
	ClusteredAttr int
	Tuples        []Tuple // sorted by ClusteredAttr
	layout        Layout

	dataBase  int // first physical data page
	dataPages int
	slotOfTID map[int64]int
	indexes   map[int]*Index
}

// BuildFragment lays out tuples (sorted internally by clusteredAttr) on
// pages from alloc and returns the fragment. Indexes are added with
// AddIndex. An empty tuple set is legal and occupies no data pages.
func BuildFragment(node int, tuples []Tuple, clusteredAttr int, layout Layout, alloc *Allocator) *Fragment {
	if layout.TuplesPerPage <= 0 {
		panic("storage: layout.TuplesPerPage must be positive")
	}
	ts := append([]Tuple(nil), tuples...)
	sort.SliceStable(ts, func(i, j int) bool {
		return ts[i].Attrs[clusteredAttr] < ts[j].Attrs[clusteredAttr]
	})
	pages := (len(ts) + layout.TuplesPerPage - 1) / layout.TuplesPerPage
	base := 0
	if pages > 0 {
		base = alloc.AllocRun(pages)
	}
	f := &Fragment{
		Node:          node,
		ClusteredAttr: clusteredAttr,
		Tuples:        ts,
		layout:        layout,
		dataBase:      base,
		dataPages:     pages,
		slotOfTID:     make(map[int64]int, len(ts)),
		indexes:       make(map[int]*Index),
	}
	for slot, t := range ts {
		f.slotOfTID[t.TID] = slot
	}
	return f
}

// AddIndex builds a B+-tree on attr. The clustered index (attr ==
// ClusteredAttr) maps values to slots; a non-clustered index maps values to
// TIDs. Index pages come from alloc, after the data pages.
func (f *Fragment) AddIndex(attr int, alloc *Allocator) *Index {
	if _, dup := f.indexes[attr]; dup {
		panic(fmt.Sprintf("storage: duplicate index on %s", AttrName(attr)))
	}
	clustered := attr == f.ClusteredAttr
	entries := make([]btree.Entry, len(f.Tuples))
	for slot, t := range f.Tuples {
		val := int64(slot)
		if !clustered {
			val = t.TID
		}
		entries[slot] = btree.Entry{Key: t.Attrs[attr], Val: val}
	}
	if !clustered {
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	}
	tree := btree.New(f.layout.IndexFanout, f.layout.IndexLeafCap, alloc.Alloc)
	tree.Bulk(entries)
	idx := &Index{Attr: attr, Clustered: clustered, Tree: tree}
	f.indexes[attr] = idx
	return idx
}

// Index returns the index on attr, or nil.
func (f *Fragment) Index(attr int) *Index { return f.indexes[attr] }

// NumTuples reports the fragment cardinality.
func (f *Fragment) NumTuples() int { return len(f.Tuples) }

// NumDataPages reports the number of data pages.
func (f *Fragment) NumDataPages() int { return f.dataPages }

// FootprintPages is the fragment's on-disk footprint: data pages plus
// every index's tree pages. Used to normalize fragment heat by capacity.
func (f *Fragment) FootprintPages() int {
	pages := f.dataPages
	for _, ix := range f.indexes {
		pages += ix.Tree.Pages()
	}
	return pages
}

// DataPageOfSlot maps a slot to its physical page.
func (f *Fragment) DataPageOfSlot(slot int) int {
	return f.dataBase + slot/f.layout.TuplesPerPage
}

// SearchClustered evaluates lo <= ClusteredAttr <= hi through the clustered
// index: the root-to-leaf path plus the contiguous data pages holding the
// qualifying tuples. An error means the fragment has no clustered index —
// a routing bug (or a query sent to a replica built without one), which the
// executor reports as a query failure rather than a crash.
func (f *Fragment) SearchClustered(lo, hi int64) (Access, error) {
	idx := f.indexes[f.ClusteredAttr]
	if idx == nil {
		return Access{}, fmt.Errorf("storage: node %d: no clustered index", f.Node)
	}
	slots, path := idx.Tree.Range(lo, hi)
	acc := Access{IndexPages: path.Pages()}
	lastPage := -1
	for _, s := range slots {
		slot := int(s)
		pg := f.DataPageOfSlot(slot)
		if pg != lastPage {
			acc.DataPages = append(acc.DataPages, pg)
			lastPage = pg
		}
		acc.Tuples = append(acc.Tuples, f.Tuples[slot])
	}
	return acc, nil
}

// SearchNonClustered evaluates lo <= attr <= hi through a non-clustered
// index: the index path plus one data-page access per qualifying tuple, in
// index order (the pages are effectively random). Errors mean a missing
// index or an index entry pointing outside the fragment.
func (f *Fragment) SearchNonClustered(attr int, lo, hi int64) (Access, error) {
	idx := f.indexes[attr]
	if idx == nil || idx.Clustered {
		return Access{}, fmt.Errorf("storage: node %d: no non-clustered index on %s", f.Node, AttrName(attr))
	}
	tids, path := idx.Tree.Range(lo, hi)
	acc := Access{IndexPages: path.Pages()}
	for _, tid := range tids {
		slot, ok := f.slotOfTID[tid]
		if !ok {
			return Access{}, fmt.Errorf("storage: node %d: index returned foreign TID %d", f.Node, tid)
		}
		acc.DataPages = append(acc.DataPages, f.DataPageOfSlot(slot))
		acc.Tuples = append(acc.Tuples, f.Tuples[slot])
	}
	return acc, nil
}

// Scan evaluates lo <= attr <= hi with a full sequential scan: every data
// page is read in order and every tuple filtered. This is the access path
// for predicates on attributes without an index.
func (f *Fragment) Scan(attr int, lo, hi int64) Access {
	var acc Access
	for pg := 0; pg < f.dataPages; pg++ {
		acc.DataPages = append(acc.DataPages, f.dataBase+pg)
	}
	for _, t := range f.Tuples {
		if v := t.Attrs[attr]; v >= lo && v <= hi {
			acc.Tuples = append(acc.Tuples, t)
		}
	}
	return acc
}

// FetchTIDs fetches tuples by TID (BERD's second step): one data-page access
// per tuple, no index. A TID not on this node is an error — the routing
// layer must only send a node its own (or its replica's) TIDs.
func (f *Fragment) FetchTIDs(tids []int64) (Access, error) {
	var acc Access
	for _, tid := range tids {
		slot, ok := f.slotOfTID[tid]
		if !ok {
			return Access{}, fmt.Errorf("storage: node %d: TID %d not in fragment", f.Node, tid)
		}
		acc.DataPages = append(acc.DataPages, f.DataPageOfSlot(slot))
		acc.Tuples = append(acc.Tuples, f.Tuples[slot])
	}
	return acc, nil
}

// HasTID reports whether the fragment holds the tuple.
func (f *Fragment) HasTID(tid int64) bool {
	_, ok := f.slotOfTID[tid]
	return ok
}

// AuxFragment is one node's piece of a BERD auxiliary relation: an
// index-only structure mapping secondary-attribute values to the home
// processor (and TID) of the original tuple.
type AuxFragment struct {
	Node    int
	Tree    *btree.Tree
	Entries int
}

// FootprintPages is the auxiliary fragment's on-disk footprint (the tree
// is the whole structure).
func (a *AuxFragment) FootprintPages() int { return a.Tree.Pages() }

// AuxEntry is one auxiliary tuple before partitioning.
type AuxEntry struct {
	Value int64 // secondary attribute value
	TID   int64
	Proc  int // home processor of the original tuple
}

// BuildAux organizes entries (sorted internally by value) as a B+-tree whose
// leaf values encode (proc, tid).
func BuildAux(node int, entries []AuxEntry, layout Layout, alloc *Allocator) *AuxFragment {
	es := append([]AuxEntry(nil), entries...)
	sort.SliceStable(es, func(i, j int) bool { return es[i].Value < es[j].Value })
	bes := make([]btree.Entry, len(es))
	for i, e := range es {
		bes[i] = btree.Entry{Key: e.Value, Val: packAux(e.Proc, e.TID)}
	}
	tree := btree.New(layout.IndexFanout, layout.IndexLeafCap, alloc.Alloc)
	tree.Bulk(bes)
	return &AuxFragment{Node: node, Tree: tree, Entries: len(es)}
}

// Lookup returns the (proc, tid) pairs for values in [lo, hi] and the index
// pages touched.
func (f *AuxFragment) Lookup(lo, hi int64) (procs []int, tids []int64, pages []int) {
	vals, path := f.Tree.Range(lo, hi)
	for _, v := range vals {
		p, tid := unpackAux(v)
		procs = append(procs, p)
		tids = append(tids, tid)
	}
	return procs, tids, path.Pages()
}

// packAux encodes (proc, tid) in one int64: proc in the high 16 bits.
func packAux(proc int, tid int64) int64 {
	if proc < 0 || proc >= 1<<16 {
		panic(fmt.Sprintf("storage: processor %d out of packable range", proc))
	}
	if tid < 0 || tid >= 1<<47 {
		panic(fmt.Sprintf("storage: TID %d out of packable range", tid))
	}
	return int64(proc)<<47 | tid
}

func unpackAux(v int64) (proc int, tid int64) {
	return int(v >> 47), v & (1<<47 - 1)
}
