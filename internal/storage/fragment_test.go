package storage

import (
	"testing"
)

func smallLayout() Layout { return Layout{TuplesPerPage: 4, IndexFanout: 4, IndexLeafCap: 4} }

// mustAcc unwraps an (Access, error) pair in tests that expect success.
func mustAcc(acc Access, err error) Access {
	if err != nil {
		panic(err)
	}
	return acc
}

// buildTestFragment creates a fragment over tuples with unique2 = 0..n-1 and
// unique1 a fixed scrambled permutation, clustered on unique2, indexed on
// both attributes.
func buildTestFragment(t *testing.T, n int) (*Fragment, *Allocator) {
	t.Helper()
	r := GenerateWisconsin(GenSpec{Cardinality: n, Seed: 5})
	alloc := NewAllocator(10000)
	f := BuildFragment(3, r.Tuples, Unique2, smallLayout(), alloc)
	f.AddIndex(Unique2, alloc)
	f.AddIndex(Unique1, alloc)
	return f, alloc
}

func TestFragmentLayoutContiguous(t *testing.T) {
	f, alloc := buildTestFragment(t, 100)
	if f.NumTuples() != 100 {
		t.Fatalf("tuples = %d", f.NumTuples())
	}
	if f.NumDataPages() != 25 { // 100/4
		t.Fatalf("data pages = %d", f.NumDataPages())
	}
	if f.DataPageOfSlot(0) != 0 || f.DataPageOfSlot(4) != 1 || f.DataPageOfSlot(99) != 24 {
		t.Fatal("slot->page mapping wrong")
	}
	if alloc.Used() <= 25 {
		t.Fatal("index pages not allocated after data pages")
	}
}

func TestSearchClusteredRange(t *testing.T) {
	f, _ := buildTestFragment(t, 100)
	acc := mustAcc(f.SearchClustered(10, 19))
	if len(acc.Tuples) != 10 {
		t.Fatalf("matched %d tuples", len(acc.Tuples))
	}
	for i, tup := range acc.Tuples {
		if tup.Attrs[Unique2] != int64(10+i) {
			t.Fatalf("tuple %d has unique2=%d", i, tup.Attrs[Unique2])
		}
	}
	// Slots 10..19 span pages 2,3,4 contiguously, no repeats.
	want := []int{2, 3, 4}
	if len(acc.DataPages) != len(want) {
		t.Fatalf("data pages = %v", acc.DataPages)
	}
	for i := range want {
		if acc.DataPages[i] != want[i] {
			t.Fatalf("data pages = %v, want %v", acc.DataPages, want)
		}
	}
	if len(acc.IndexPages) == 0 {
		t.Fatal("clustered search must touch index pages")
	}
}

func TestSearchClusteredEmptyRange(t *testing.T) {
	f, _ := buildTestFragment(t, 100)
	acc := mustAcc(f.SearchClustered(5000, 6000))
	if len(acc.Tuples) != 0 || len(acc.DataPages) != 0 {
		t.Fatal("out-of-range search returned tuples")
	}
	if len(acc.IndexPages) == 0 {
		t.Fatal("even a miss descends the index")
	}
}

func TestSearchNonClusteredFetchesPerTuple(t *testing.T) {
	f, _ := buildTestFragment(t, 100)
	acc := mustAcc(f.SearchNonClustered(Unique1, 0, 9))
	if len(acc.Tuples) != 10 {
		t.Fatalf("matched %d tuples", len(acc.Tuples))
	}
	if len(acc.DataPages) != 10 {
		t.Fatalf("non-clustered access should fetch one page per tuple, got %d", len(acc.DataPages))
	}
	for i, tup := range acc.Tuples {
		if tup.Attrs[Unique1] != int64(i) {
			t.Fatalf("tuples not in index order: %v", tup.Attrs[Unique1])
		}
	}
}

func TestSearchNonClusteredSingleTuple(t *testing.T) {
	f, _ := buildTestFragment(t, 100)
	acc := mustAcc(f.SearchNonClustered(Unique1, 42, 42))
	if len(acc.Tuples) != 1 || acc.Tuples[0].Attrs[Unique1] != 42 {
		t.Fatalf("equality search returned %v", acc.Tuples)
	}
}

func TestFetchTIDs(t *testing.T) {
	f, _ := buildTestFragment(t, 100)
	acc := mustAcc(f.FetchTIDs([]int64{5, 50, 95}))
	if len(acc.Tuples) != 3 || len(acc.DataPages) != 3 {
		t.Fatalf("fetched %d tuples, %d pages", len(acc.Tuples), len(acc.DataPages))
	}
	if len(acc.IndexPages) != 0 {
		t.Fatal("TID fetch must not touch indexes")
	}
	for i, want := range []int64{5, 50, 95} {
		if acc.Tuples[i].TID != want {
			t.Fatalf("tuple %d TID = %d", i, acc.Tuples[i].TID)
		}
	}
}

func TestFetchForeignTIDErrors(t *testing.T) {
	f, _ := buildTestFragment(t, 10)
	if _, err := f.FetchTIDs([]int64{9999}); err == nil {
		t.Fatal("foreign TID did not error")
	}
}

func TestHasTID(t *testing.T) {
	f, _ := buildTestFragment(t, 10)
	if !f.HasTID(3) || f.HasTID(100) {
		t.Fatal("HasTID wrong")
	}
}

func TestEmptyFragment(t *testing.T) {
	alloc := NewAllocator(100)
	f := BuildFragment(0, nil, Unique2, smallLayout(), alloc)
	f.AddIndex(Unique2, alloc)
	if f.NumTuples() != 0 || f.NumDataPages() != 0 {
		t.Fatal("empty fragment has tuples/pages")
	}
	acc := mustAcc(f.SearchClustered(0, 10))
	if len(acc.Tuples) != 0 {
		t.Fatal("empty fragment returned tuples")
	}
}

func TestDuplicateIndexPanics(t *testing.T) {
	f, alloc := buildTestFragment(t, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate index did not panic")
		}
	}()
	f.AddIndex(Unique1, alloc)
}

func TestMissingIndexErrors(t *testing.T) {
	alloc := NewAllocator(100)
	f := BuildFragment(0, nil, Unique2, smallLayout(), alloc)
	if _, err := f.SearchClustered(0, 1); err == nil {
		t.Fatal("missing index did not error")
	}
}

func TestAllocatorRuns(t *testing.T) {
	a := NewAllocator(10)
	if start := a.AllocRun(4); start != 0 {
		t.Fatalf("run start = %d", start)
	}
	if p := a.Alloc(); p != 4 {
		t.Fatalf("next page = %d", p)
	}
	if a.Used() != 5 {
		t.Fatalf("used = %d", a.Used())
	}
}

func TestAllocatorExhaustionPanics(t *testing.T) {
	a := NewAllocator(2)
	a.AllocRun(2)
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted allocator did not panic")
		}
	}()
	a.Alloc()
}

func TestAuxFragmentLookup(t *testing.T) {
	alloc := NewAllocator(1000)
	entries := []AuxEntry{
		{Value: 10, TID: 100, Proc: 1},
		{Value: 20, TID: 200, Proc: 2},
		{Value: 30, TID: 300, Proc: 3},
		{Value: 25, TID: 250, Proc: 2},
	}
	aux := BuildAux(7, entries, smallLayout(), alloc)
	if aux.Entries != 4 {
		t.Fatalf("entries = %d", aux.Entries)
	}
	procs, tids, pages := aux.Lookup(15, 27)
	if len(procs) != 2 || procs[0] != 2 || procs[1] != 2 {
		t.Fatalf("procs = %v", procs)
	}
	if len(tids) != 2 || tids[0] != 200 || tids[1] != 250 {
		t.Fatalf("tids = %v", tids)
	}
	if len(pages) == 0 {
		t.Fatal("lookup touched no pages")
	}
}

func TestAuxPackRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		proc int
		tid  int64
	}{{0, 0}, {31, 99999}, {65535, 1<<47 - 1}} {
		p, tid := unpackAux(packAux(tc.proc, tc.tid))
		if p != tc.proc || tid != tc.tid {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", tc.proc, tc.tid, p, tid)
		}
	}
}

func TestAuxPackRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversize proc did not panic")
		}
	}()
	packAux(1<<16, 0)
}

func TestFragmentSortsByClusteredAttr(t *testing.T) {
	// Feed tuples in reverse order; fragment must sort by unique2.
	r := GenerateWisconsin(GenSpec{Cardinality: 50, Seed: 2})
	rev := make([]Tuple, 50)
	for i := range rev {
		rev[i] = r.Tuples[49-i]
	}
	alloc := NewAllocator(1000)
	f := BuildFragment(0, rev, Unique2, smallLayout(), alloc)
	for i := 1; i < f.NumTuples(); i++ {
		if f.Tuples[i-1].Attrs[Unique2] > f.Tuples[i].Attrs[Unique2] {
			t.Fatal("fragment not sorted by clustered attribute")
		}
	}
}

func TestScan(t *testing.T) {
	f, _ := buildTestFragment(t, 100)
	acc := f.Scan(Ten, 3, 3)
	if len(acc.DataPages) != f.NumDataPages() {
		t.Fatalf("scan touched %d pages, want all %d", len(acc.DataPages), f.NumDataPages())
	}
	want := 0
	for _, tup := range f.Tuples {
		if tup.Attrs[Ten] == 3 {
			want++
		}
	}
	if len(acc.Tuples) != want {
		t.Fatalf("scan matched %d tuples, want %d", len(acc.Tuples), want)
	}
	if len(acc.IndexPages) != 0 {
		t.Fatal("scan must not touch indexes")
	}
	// Pages must be sequential for the disk's sequential-access detection.
	for i := 1; i < len(acc.DataPages); i++ {
		if acc.DataPages[i] != acc.DataPages[i-1]+1 {
			t.Fatal("scan pages not sequential")
		}
	}
}

func TestScanEmptyFragment(t *testing.T) {
	alloc := NewAllocator(100)
	f := BuildFragment(0, nil, Unique2, smallLayout(), alloc)
	acc := f.Scan(Ten, 0, 9)
	if len(acc.Tuples) != 0 || len(acc.DataPages) != 0 {
		t.Fatal("empty fragment scan returned something")
	}
}
