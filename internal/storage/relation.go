// Package storage provides the simulated database's storage layer: the
// Wisconsin benchmark relation the paper's workload is built on [BDC83],
// per-node fragments with a page layout on the simulated disks, clustered
// and non-clustered B+-tree indexes, and BERD's auxiliary index-only
// fragments. Access methods return the exact page-access sequences the
// execution layer replays against the simulated hardware.
package storage

import (
	"fmt"

	"repro/internal/rng"
)

// Attribute indices of the thirteen-attribute Wisconsin relation. The
// paper's workload uses Unique1 as attribute A (uniformly distributed,
// non-clustered index) and Unique2 as attribute B (clustered index).
const (
	Unique1 = iota // "A": random permutation of 0..n-1
	Unique2        // "B": sequential 0..n-1 (the clustered attribute)
	Two
	Four
	Ten
	Twenty
	OnePercent
	TenPercent
	TwentyPercent
	FiftyPercent
	Unique3
	EvenOnePercent
	OddOnePercent
	NumAttrs
)

// AttrName returns the conventional Wisconsin attribute name.
func AttrName(attr int) string {
	names := [...]string{"unique1", "unique2", "two", "four", "ten", "twenty",
		"onePercent", "tenPercent", "twentyPercent", "fiftyPercent",
		"unique3", "evenOnePercent", "oddOnePercent"}
	if attr < 0 || attr >= len(names) {
		return fmt.Sprintf("attr%d", attr)
	}
	return names[attr]
}

// Tuple is one row. TID is the global tuple identifier (its position in the
// base relation); Attrs holds the thirteen integer attributes. String
// attributes of the original benchmark affect only the tuple's byte size,
// which Table 2 fixes at 208 bytes, so they carry no modeled content.
type Tuple struct {
	TID   int64
	Attrs [NumAttrs]int64
}

// Relation is the base table before declustering.
type Relation struct {
	Name   string
	Tuples []Tuple
}

// Cardinality reports the number of tuples.
func (r *Relation) Cardinality() int { return len(r.Tuples) }

// AttrBounds reports the min and max value of an attribute (0,−1 if empty).
func (r *Relation) AttrBounds(attr int) (lo, hi int64) {
	if len(r.Tuples) == 0 {
		return 0, -1
	}
	lo, hi = r.Tuples[0].Attrs[attr], r.Tuples[0].Attrs[attr]
	for _, t := range r.Tuples {
		v := t.Attrs[attr]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// GenSpec controls Wisconsin relation generation.
type GenSpec struct {
	Name        string
	Cardinality int
	// CorrelationWindow controls the correlation between unique1 (A) and
	// unique2 (B), the knob Section 4 of the paper studies:
	//   0 (or >= Cardinality): uncorrelated — unique1 is a full random
	//     permutation (the paper's "low correlation");
	//   1: unique1 == unique2 — the worst-case identical attributes of §4;
	//   w > 1: unique1 is a permutation displaced at most w-1 positions
	//     from unique2 (block shuffle), the paper's "high correlation".
	CorrelationWindow int
	Seed              int64
}

// GenerateWisconsin builds the relation. Tuples are produced in unique2
// order (0..n-1), which is also the clustered storage order.
func GenerateWisconsin(spec GenSpec) *Relation {
	n := spec.Cardinality
	if n <= 0 {
		panic(fmt.Sprintf("storage: cardinality must be positive, got %d", n))
	}
	name := spec.Name
	if name == "" {
		name = "wisconsin"
	}
	src := rng.NewFactory(spec.Seed).Stream("wisconsin")
	unique1 := correlatedPermutation(n, spec.CorrelationWindow, src)

	r := &Relation{Name: name, Tuples: make([]Tuple, n)}
	for i := 0; i < n; i++ {
		u1 := int64(unique1[i])
		t := Tuple{TID: int64(i)}
		t.Attrs[Unique1] = u1
		t.Attrs[Unique2] = int64(i)
		t.Attrs[Two] = u1 % 2
		t.Attrs[Four] = u1 % 4
		t.Attrs[Ten] = u1 % 10
		t.Attrs[Twenty] = u1 % 20
		t.Attrs[OnePercent] = u1 % 100
		t.Attrs[TenPercent] = u1 % 10
		t.Attrs[TwentyPercent] = u1 % 5
		t.Attrs[FiftyPercent] = u1 % 2
		t.Attrs[Unique3] = u1
		t.Attrs[EvenOnePercent] = (u1 % 100) * 2
		t.Attrs[OddOnePercent] = (u1%100)*2 + 1
		r.Tuples[i] = t
	}
	return r
}

// correlatedPermutation returns a permutation of 0..n-1 whose element i is
// displaced at most window-1 positions from i. window <= 0 or >= n yields a
// full shuffle; window == 1 yields the identity.
func correlatedPermutation(n, window int, src *rng.Source) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	if window == 1 {
		return p
	}
	if window <= 0 || window >= n {
		src.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
		return p
	}
	for start := 0; start < n; start += window {
		end := start + window
		if end > n {
			end = n
		}
		block := p[start:end]
		src.Shuffle(len(block), func(i, j int) { block[i], block[j] = block[j], block[i] })
	}
	return p
}
