package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func scrapeHub(t *testing.T, h *Hub) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	return rec.Body.String()
}

func hubSampler(v float64) *Sampler {
	s := NewSampler(winNS, 8)
	s.Register("serve.goodput_qps", SeriesGauge, func() float64 { return v })
	s.Sample(winNS)
	return s
}

func TestHubServeHTTP(t *testing.T) {
	h := NewHub()
	h.Register("figB/strat", hubSampler(2)) // out of order on purpose
	h.Register("figA/strat", hubSampler(1))

	body := scrapeHub(t, h)
	for _, want := range []string{
		"# TYPE declusterbench_up gauge\ndeclusterbench_up 1\n",
		"declusterbench_runs 2\n",
		`serve_goodput_qps{run="figA/strat"} 1`,
		`serve_goodput_qps{run="figB/strat"} 2`,
		"# EOF\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q in:\n%s", want, body)
		}
	}
	// Exposition sorts runs by id regardless of registration order.
	if strings.Index(body, "figA/strat") > strings.Index(body, "figB/strat") {
		t.Error("runs not sorted by id")
	}
	if h.Scrapes() != 1 {
		t.Errorf("Scrapes = %d, want 1", h.Scrapes())
	}
}

func TestHubLabelEscaping(t *testing.T) {
	h := NewHub()
	h.Register("we\"ird\\id\n", hubSampler(1))
	body := scrapeHub(t, h)
	if !strings.Contains(body, `run="we\"ird\\id\n"`) {
		t.Errorf("label not escaped:\n%s", body)
	}
}

func TestHubRegisterReplaceUnregister(t *testing.T) {
	h := NewHub()
	h.Register("r", hubSampler(1))
	h.Register("r", hubSampler(5)) // replace under the same id
	if got := h.Runs(); len(got) != 1 || got[0] != "r" {
		t.Fatalf("Runs = %v", got)
	}
	if !strings.Contains(scrapeHub(t, h), "serve_goodput_qps{run=\"r\"} 5") {
		t.Error("replacement sampler not served")
	}
	h.Unregister("r")
	h.Unregister("r") // unknown id is a no-op
	if len(h.Runs()) != 0 {
		t.Errorf("Runs after Unregister = %v", h.Runs())
	}
	if !strings.Contains(scrapeHub(t, h), "declusterbench_runs 0") {
		t.Error("empty hub should still expose the up/runs gauges")
	}
}

func TestHubNilIsNoOp(t *testing.T) {
	var h *Hub
	h.Register("x", hubSampler(1))
	h.Unregister("x")
	if h.Runs() != nil || h.Scrapes() != 0 {
		t.Error("nil hub leaked state")
	}
	// Registering a nil sampler is ignored too.
	h2 := NewHub()
	h2.Register("x", nil)
	if len(h2.Runs()) != 0 {
		t.Error("nil sampler registered")
	}
}
