package obs

import (
	"strings"
	"testing"
)

func TestSanitizeMetricNamesCollision(t *testing.T) {
	names := []string{"a.b", "a,b", "serve.goodput_qps"}
	sane := SanitizeMetricNames(names)
	// Both colliding names are disambiguated, deterministically and
	// distinctly; the non-colliding name keeps its plain sanitized form —
	// the scrape contract CI greps must never shift.
	if sane[0] == sane[1] {
		t.Errorf("collision survived: %q vs %q", sane[0], sane[1])
	}
	for i := 0; i < 2; i++ {
		if !strings.HasPrefix(sane[i], "a_b_") {
			t.Errorf("sane[%d] = %q, want a_b_<hash>", i, sane[i])
		}
	}
	if sane[2] != "serve_goodput_qps" {
		t.Errorf("non-colliding name changed: %q", sane[2])
	}

	again := SanitizeMetricNames(names)
	for i := range sane {
		if sane[i] != again[i] {
			t.Errorf("not deterministic at %d: %q vs %q", i, sane[i], again[i])
		}
	}
	// The suffix hashes the original name, so the mapping is independent of
	// set order.
	rev := SanitizeMetricNames([]string{"a,b", "a.b"})
	if rev[0] != sane[1] || rev[1] != sane[0] {
		t.Errorf("order-dependent mapping: %v vs %v", rev, sane[:2])
	}
}

func TestSanitizeMetricNamesNoCollision(t *testing.T) {
	names := []string{"serve.goodput_qps", "node0.disk.util"}
	sane := SanitizeMetricNames(names)
	if sane[0] != "serve_goodput_qps" || sane[1] != "node0_disk_util" {
		t.Errorf("clean set was altered: %v", sane)
	}
}

func TestWriteOpenMetricsLabeled(t *testing.T) {
	s := NewSampler(winNS, 8)
	s.RegisterLabeled("frag.tenk.node3.heat", `fragment="tenk",node="3"`, SeriesGauge, func() float64 { return 7 })
	s.Register("plain", SeriesGauge, func() float64 { return 1 })
	s.Sample(winNS)

	var b strings.Builder
	if err := s.WriteOpenMetrics(&b, `run="r1"`); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	// Scrape labels come first, then the series' own label list.
	if !strings.Contains(body, `frag_tenk_node3_heat{run="r1",fragment="tenk",node="3"} 7`) {
		t.Errorf("labeled series missing:\n%s", body)
	}
	if !strings.Contains(body, `plain{run="r1"} 1`) {
		t.Errorf("unlabeled series mis-rendered:\n%s", body)
	}

	// Without scrape labels the series labels stand alone.
	var solo strings.Builder
	if err := s.WriteOpenMetrics(&solo, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(solo.String(), `frag_tenk_node3_heat{fragment="tenk",node="3"} 7`) {
		t.Errorf("series labels dropped without scrape labels:\n%s", solo.String())
	}
}

func TestWriteOpenMetricsCollidingNames(t *testing.T) {
	// Distinct raw names that sanitize to the same OpenMetrics name must
	// surface as distinct families in the exposition.
	s := NewSampler(winNS, 8)
	s.Register("x.y", SeriesGauge, func() float64 { return 1 })
	s.Register("x,y", SeriesGauge, func() float64 { return 2 })
	s.Sample(winNS)
	var b strings.Builder
	if err := s.WriteOpenMetrics(&b, ""); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	names := map[string]bool{}
	for _, l := range lines {
		if strings.HasPrefix(l, "# TYPE ") {
			names[strings.Fields(l)[2]] = true
		}
	}
	if len(names) != 2 {
		t.Errorf("colliding series folded in exposition:\n%s", b.String())
	}
}
