package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// Registrations and unregistrations race against in-flight scrapes in
// production: the campaign registers each point's sampler as its job
// completes while CI polls /metrics. This test drives all three
// concurrently and is meant to run under -race; the assertions themselves
// only require that every scrape stays well-formed.
func TestHubConcurrentRegisterScrape(t *testing.T) {
	h := NewHub()
	const workers, iters = 4, 50

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				h.Register(id, hubSampler(float64(i)))
				if i%3 == 2 {
					h.Unregister(id)
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				body := rec.Body.String()
				if !strings.Contains(body, "declusterbench_up 1\n") ||
					!strings.HasSuffix(body, "# EOF\n") {
					t.Errorf("malformed scrape:\n%s", body)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := h.Scrapes(); got != workers*iters {
		t.Errorf("Scrapes = %d, want %d", got, workers*iters)
	}
}
