package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentAccess hammers one registry from many goroutines —
// interning new instruments, observing existing ones, snapshotting and
// resetting concurrently. The harness shares a registry across campaign
// workers and the /metrics endpoint reads while the simulation writes, so
// this must be clean under -race (CI runs this package with -race).
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 400

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Interning: some names are shared across goroutines, some
				// are goroutine-private, so both the fast path (RLock hit)
				// and the slow path (write lock insert) are exercised.
				r.Counter("shared.count").Add(1)
				r.Counter(fmt.Sprintf("w%d.count", w)).Add(2)
				r.Gauge("shared.gauge").Set(float64(i))
				h := r.Histogram("shared.lat")
				h.Observe(float64(i % 50))
				if i%10 == 0 {
					_ = h.Quantile(95)
					_ = h.Stats()
				}
			}
		}()
	}
	// Concurrent readers and a reset in the middle.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			snap := r.Snapshot()
			_ = snap
			_ = r.CounterNames()
			if i == iters/2 {
				r.Reset()
			}
		}
	}()
	wg.Wait()

	// Post-reset totals are not deterministic; the shape must survive.
	names := r.CounterNames()
	if len(names) < workers {
		t.Errorf("only %d counters interned, want >= %d", len(names), workers)
	}
	if got := r.Counter("shared.count"); got.Value() < 0 {
		t.Errorf("shared counter negative: %d", got.Value())
	}
}

// TestHistogramConcurrentMerge checks Merge against opposite-direction
// merges (a classic lock-ordering deadlock shape) and concurrent observes.
func TestHistogramConcurrentMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			a.Observe(float64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			a.Merge(b)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			b.Observe(1)
			b.Merge(a)
		}
	}()
	wg.Wait()
	if a.N() < 500 {
		t.Errorf("a.N() = %d, want >= 500", a.N())
	}
}
