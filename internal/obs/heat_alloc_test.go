//go:build !race

// Allocation-regression guards for the fragment-heat accounting hot path.
// Heat increments run on the simulation goroutine for every page access of
// a heat-armed run, so any allocation here scales with total page traffic.
// Excluded under -race because race instrumentation itself allocates.

package obs

import "testing"

// The armed path: counter increments, queue-wait attribution into a warmed
// histogram bucket, and the per-read Account must all allocate nothing.
func TestFragHeatAccountingAllocs(t *testing.T) {
	m := NewHeatMap()
	h := m.Frag("r", 0, FragPrimary)
	h.DiskWait(1e6) // warm the 1ms bucket so steady state never grows the map
	if n := testing.AllocsPerRun(100, func() {
		h.BufferHit()
		h.BufferMiss()
		h.DiskWait(1e6)
		h.Account(2, 1, 512, false)
	}); n != 0 {
		t.Errorf("armed heat accounting allocates %.1f/op, want 0", n)
	}
}

// The disabled path: the same calls on a nil handle (heat off) must also
// stay allocation-free — this is the zero-cost-when-off contract.
func TestFragHeatNilAllocs(t *testing.T) {
	var h *FragHeat
	if n := testing.AllocsPerRun(100, func() {
		h.BufferHit()
		h.BufferMiss()
		h.DiskWait(1e6)
		h.Account(2, 1, 512, false)
	}); n != 0 {
		t.Errorf("nil heat accounting allocates %.1f/op, want 0", n)
	}
}
