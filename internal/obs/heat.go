package obs

// Fragment-granularity heat accounting. A HeatMap holds one FragHeat
// accumulator per physical fragment — a relation's primary piece on one
// node, its chained-replica backup, or its auxiliary B+-tree — keyed by
// the node whose disk stores it (so per-node sums line up with that
// node's disk counters even when replicas serve reads for a crashed
// neighbour). The execution layer increments plain int64 fields on the
// simulation goroutine: no atomics, no allocations, and a nil *FragHeat
// (heat disabled) makes every increment method a no-op, so disabled runs
// execute the identical schedule and stay byte-identical.
//
// Snapshot reduces the accumulators into canonical-order rows plus
// concentration indices (top-K share, HHI, Gini over pages read) — the
// hot-fragment signal the adaptive re-declustering loop (ROADMAP item 3)
// subscribes to via HotFragments.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// FragKind classifies a fragment's role on the node that stores it.
type FragKind uint8

const (
	// FragPrimary is a relation's declustered piece on its home node.
	FragPrimary FragKind = iota
	// FragBackup is a chained-declustering replica of a neighbour's piece.
	FragBackup
	// FragAux covers the auxiliary secondary-attribute B+-trees (all
	// attributes of one relation share the accumulator).
	FragAux
)

func (k FragKind) String() string {
	switch k {
	case FragPrimary:
		return "primary"
	case FragBackup:
		return "backup"
	case FragAux:
		return "aux"
	}
	return fmt.Sprintf("kind%d", int(k))
}

// kindRank orders fragment kinds for canonical row order.
func kindRank(kind string) int {
	switch kind {
	case "primary":
		return 0
	case "backup":
		return 1
	case "aux":
		return 2
	}
	return 3
}

// FragID identifies a fragment by the node whose disk physically holds it.
type FragID struct {
	Relation string
	Node     int
	Kind     FragKind
}

// Label renders the fragment's workload-facing name: the relation, with a
// ":backup"/":aux" suffix for non-primary kinds.
func (id FragID) Label() string {
	if id.Kind == FragPrimary {
		return id.Relation
	}
	return id.Relation + ":" + id.Kind.String()
}

// FragHeat is one fragment's access accumulator. Fields are incremented
// by the simulation goroutine through the nil-safe methods below; reading
// them is only meaningful once the run has finished (or from a telemetry
// probe, which also runs on the simulation goroutine).
type FragHeat struct {
	id FragID

	// Reads counts access-method invocations served from this fragment
	// (one selection/scan/lookup = one read, regardless of page count).
	Reads int64
	// IndexPages / DataPages count pages requested from the buffer pool,
	// repeats included — the same "logical page accesses" the paper's
	// cost model charges.
	IndexPages int64
	DataPages  int64
	// Bytes counts result payload attributed to this fragment.
	Bytes int64
	// Local counts reads served on the fragment's primary placement;
	// Remote counts reads rerouted to a replica (degraded mode).
	Local  int64
	Remote int64
	// BufHits / BufMisses split the page requests at the buffer pool; a
	// miss is exactly one physical disk read, so per-node miss sums match
	// the node's disk read totals on fault-free runs.
	BufHits   int64
	BufMisses int64
	// QueueWaitNS accumulates disk queue wait (arrival to arm start)
	// attributed to this fragment's misses.
	QueueWaitNS int64
	// SizePages is the fragment's footprint (data + index pages), for
	// normalizing heat by capacity.
	SizePages int64
	// Wait is the per-miss queue-wait distribution in milliseconds.
	Wait *Histogram
}

// ID reports the fragment's identity.
func (h *FragHeat) ID() FragID {
	if h == nil {
		return FragID{}
	}
	return h.id
}

// Pages is the total page requests charged so far (0 on nil).
func (h *FragHeat) Pages() int64 {
	if h == nil {
		return 0
	}
	return h.IndexPages + h.DataPages
}

// BufferHit records a page request served from the pool (or piggybacked
// on an in-flight read). Nil-safe.
func (h *FragHeat) BufferHit() {
	if h == nil {
		return
	}
	h.BufHits++
}

// BufferMiss records a page request that goes to disk. Nil-safe.
func (h *FragHeat) BufferMiss() {
	if h == nil {
		return
	}
	h.BufMisses++
}

// DiskWait attributes one disk request's queue wait (ns of simulated
// time) to the fragment. Nil-safe.
func (h *FragHeat) DiskWait(waitNS int64) {
	if h == nil {
		return
	}
	h.QueueWaitNS += waitNS
	h.Wait.Observe(float64(waitNS) / 1e6)
}

// Account records one completed access: the pages it requested, the
// result bytes it produced, and whether it was served remotely (from a
// replica rather than the primary placement). Nil-safe.
func (h *FragHeat) Account(indexPages, dataPages int, bytes int64, remote bool) {
	if h == nil {
		return
	}
	h.Reads++
	h.IndexPages += int64(indexPages)
	h.DataPages += int64(dataPages)
	h.Bytes += bytes
	if remote {
		h.Remote++
	} else {
		h.Local++
	}
}

// AddSize grows the fragment's recorded footprint (cold path, at machine
// construction). Nil-safe.
func (h *FragHeat) AddSize(pages int64) {
	if h == nil {
		return
	}
	h.SizePages += pages
}

// reset zeroes the counters (keeping identity, footprint, and the
// histogram handle) — the warm-up boundary.
func (h *FragHeat) reset() {
	h.Reads, h.IndexPages, h.DataPages, h.Bytes = 0, 0, 0, 0
	h.Local, h.Remote, h.BufHits, h.BufMisses = 0, 0, 0, 0
	h.QueueWaitNS = 0
	h.Wait.Reset()
}

// HeatMap is the per-machine registry of fragment accumulators. A nil
// *HeatMap is the disabled state: Frag returns nil and every hot-path
// increment on that nil handle no-ops. Accumulator creation (Frag) is the
// cold path and takes a lock; increments are lock-free on the simulation
// goroutine.
type HeatMap struct {
	mu    sync.Mutex
	frags []*FragHeat // creation order (deterministic: machine build order)
	index map[FragID]*FragHeat
}

// NewHeatMap builds an empty heat map.
func NewHeatMap() *HeatMap {
	return &HeatMap{index: make(map[FragID]*FragHeat)}
}

// Frag returns the accumulator for (relation, node, kind), creating it on
// first use. Returns nil on a nil map.
func (m *HeatMap) Frag(relation string, node int, kind FragKind) *FragHeat {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := FragID{Relation: relation, Node: node, Kind: kind}
	if h := m.index[id]; h != nil {
		return h
	}
	h := &FragHeat{id: id, Wait: NewHistogram()}
	m.index[id] = h
	m.frags = append(m.frags, h)
	return h
}

// Frags returns the accumulators in creation order. Nil on a nil map.
func (m *HeatMap) Frags() []*FragHeat {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*FragHeat, len(m.frags))
	copy(out, m.frags)
	return out
}

// Reset zeroes every accumulator — called at the warm-up boundary so the
// snapshot covers the measured interval only. Nil-safe.
func (m *HeatMap) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, h := range m.frags {
		h.reset()
	}
}

// FragRow is one fragment's reduced counters inside a HeatSnapshot.
type FragRow struct {
	Relation    string         `json:"relation"`
	Kind        string         `json:"kind"`
	Node        int            `json:"node"`
	Reads       int64          `json:"reads"`
	IndexPages  int64          `json:"index_pages"`
	DataPages   int64          `json:"data_pages"`
	Bytes       int64          `json:"bytes"`
	Local       int64          `json:"local"`
	Remote      int64          `json:"remote"`
	BufHits     int64          `json:"buf_hits"`
	BufMisses   int64          `json:"buf_misses"`
	QueueWaitMS float64        `json:"queue_wait_ms"`
	SizePages   int64          `json:"size_pages"`
	WaitStats   HistogramStats `json:"wait_ms"`
	// Wait is the live queue-wait histogram behind WaitStats, retained so
	// in-process reducers can Merge rows across harness jobs. Not
	// serialized: archives carry WaitStats.
	Wait *Histogram `json:"-"`
}

// Pages is the row's total page requests.
func (r FragRow) Pages() int64 { return r.IndexPages + r.DataPages }

// Label renders the row's fragment name (relation plus kind suffix).
func (r FragRow) Label() string {
	if r.Kind == FragPrimary.String() || r.Kind == "" {
		return r.Relation
	}
	return r.Relation + ":" + r.Kind
}

// HeatSnapshot is a reduced, canonically ordered copy of a HeatMap —
// rows sorted by (relation, kind, node) — plus concentration indices over
// the page-read distribution: TopKShare is the fraction of all page reads
// absorbed by the TopK hottest fragments, HHI is the Herfindahl–Hirschman
// index (sum of squared shares: 1/n when perfectly balanced over n
// fragments, 1 when one fragment takes everything), and Gini is the Gini
// coefficient of the same distribution (0 balanced, →1 concentrated).
type HeatSnapshot struct {
	TopK       int       `json:"top_k"`
	TotalPages int64     `json:"total_pages"`
	TopKShare  float64   `json:"top_k_share"`
	HHI        float64   `json:"hhi"`
	Gini       float64   `json:"gini"`
	Rows       []FragRow `json:"rows"`
}

// DefaultHeatTopK bounds hot-fragment reports when no K is given.
const DefaultHeatTopK = 5

// Snapshot reduces the map into canonical rows and concentration indices.
// topK bounds the HotFragments report (non-positive = DefaultHeatTopK).
// Returns nil on a nil map.
func (m *HeatMap) Snapshot(topK int) *HeatSnapshot {
	if m == nil {
		return nil
	}
	if topK <= 0 {
		topK = DefaultHeatTopK
	}
	m.mu.Lock()
	frags := make([]*FragHeat, len(m.frags))
	copy(frags, m.frags)
	m.mu.Unlock()
	s := &HeatSnapshot{TopK: topK, Rows: make([]FragRow, 0, len(frags))}
	for _, h := range frags {
		s.Rows = append(s.Rows, FragRow{
			Relation:    h.id.Relation,
			Kind:        h.id.Kind.String(),
			Node:        h.id.Node,
			Reads:       h.Reads,
			IndexPages:  h.IndexPages,
			DataPages:   h.DataPages,
			Bytes:       h.Bytes,
			Local:       h.Local,
			Remote:      h.Remote,
			BufHits:     h.BufHits,
			BufMisses:   h.BufMisses,
			QueueWaitMS: float64(h.QueueWaitNS) / 1e6,
			SizePages:   h.SizePages,
			WaitStats:   h.Wait.Stats(),
			Wait:        h.Wait,
		})
	}
	sortFragRows(s.Rows)
	s.recompute()
	return s
}

// sortFragRows orders rows canonically: relation, kind (primary, backup,
// aux), node.
func sortFragRows(rows []FragRow) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Relation != b.Relation {
			return a.Relation < b.Relation
		}
		if ra, rb := kindRank(a.Kind), kindRank(b.Kind); ra != rb {
			return ra < rb
		}
		return a.Node < b.Node
	})
}

// recompute refreshes TotalPages and the concentration indices from Rows.
func (s *HeatSnapshot) recompute() {
	s.TotalPages, s.TopKShare, s.HHI, s.Gini = 0, 0, 0, 0
	if len(s.Rows) == 0 {
		return
	}
	pages := make([]float64, len(s.Rows))
	var total float64
	for i, r := range s.Rows {
		pages[i] = float64(r.Pages())
		total += pages[i]
		s.TotalPages += r.Pages()
	}
	if total == 0 {
		return
	}
	// Shares descending for the top-K sum; ascending view for Gini.
	sort.Sort(sort.Reverse(sort.Float64Slice(pages)))
	k := s.TopK
	if k > len(pages) {
		k = len(pages)
	}
	var topk float64
	for _, p := range pages[:k] {
		topk += p
	}
	s.TopKShare = topk / total
	for _, p := range pages {
		share := p / total
		s.HHI += share * share
	}
	n := float64(len(pages))
	var gini float64
	for i, p := range pages { // descending: weight (n-i)-th ascending rank
		rank := n - float64(i) // ascending 1-based rank of this value
		gini += (2*rank - n - 1) * p
	}
	s.Gini = gini / (n * total)
}

// HotFragment is one entry of the hot-fragment report: the detector feed
// a migration loop subscribes to.
type HotFragment struct {
	Relation string  `json:"relation"`
	Kind     string  `json:"kind"`
	Node     int     `json:"node"`
	Reads    int64   `json:"reads"`
	Pages    int64   `json:"pages"`
	Share    float64 `json:"share"` // fraction of all page reads
}

// HotFragments ranks the snapshot's fragments by pages read (ties broken
// by canonical row order) and returns the TopK hottest that saw any
// traffic. Nil on a nil snapshot.
func (s *HeatSnapshot) HotFragments() []HotFragment {
	if s == nil || s.TotalPages == 0 {
		return nil
	}
	order := make([]int, len(s.Rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return s.Rows[order[i]].Pages() > s.Rows[order[j]].Pages()
	})
	k := s.TopK
	if k <= 0 {
		k = DefaultHeatTopK
	}
	out := make([]HotFragment, 0, k)
	for _, idx := range order {
		if len(out) == k {
			break
		}
		r := s.Rows[idx]
		if r.Pages() == 0 {
			break
		}
		out = append(out, HotFragment{
			Relation: r.Relation,
			Kind:     r.Kind,
			Node:     r.Node,
			Reads:    r.Reads,
			Pages:    r.Pages(),
			Share:    float64(r.Pages()) / float64(s.TotalPages),
		})
	}
	return out
}

// MergeHeatSnapshots reduces snapshots (e.g. one per MPL point from
// parallel harness jobs) into one: rows with the same (relation, kind,
// node) sum their counters, queue-wait histograms merge bucket-wise via
// Histogram.Merge (rows without a live histogram contribute counters
// only), and the concentration indices are recomputed over the merged
// rows. Inputs are not modified; nil snapshots are skipped. Returns nil
// when nothing merges.
func MergeHeatSnapshots(snaps []*HeatSnapshot, topK int) *HeatSnapshot {
	if topK <= 0 {
		topK = DefaultHeatTopK
	}
	type key struct {
		rel  string
		kind string
		node int
	}
	index := make(map[key]*FragRow)
	var rows []*FragRow
	any := false
	for _, s := range snaps {
		if s == nil {
			continue
		}
		any = true
		for i := range s.Rows {
			src := &s.Rows[i]
			k := key{src.Relation, src.Kind, src.Node}
			dst := index[k]
			if dst == nil {
				dst = &FragRow{
					Relation:  src.Relation,
					Kind:      src.Kind,
					Node:      src.Node,
					SizePages: src.SizePages,
					Wait:      NewHistogram(),
				}
				index[k] = dst
				rows = append(rows, dst)
			}
			dst.Reads += src.Reads
			dst.IndexPages += src.IndexPages
			dst.DataPages += src.DataPages
			dst.Bytes += src.Bytes
			dst.Local += src.Local
			dst.Remote += src.Remote
			dst.BufHits += src.BufHits
			dst.BufMisses += src.BufMisses
			dst.QueueWaitMS += src.QueueWaitMS
			if src.SizePages > dst.SizePages {
				dst.SizePages = src.SizePages
			}
			dst.Wait.Merge(src.Wait)
		}
	}
	if !any {
		return nil
	}
	out := &HeatSnapshot{TopK: topK, Rows: make([]FragRow, len(rows))}
	for i, r := range rows {
		r.WaitStats = r.Wait.Stats()
		out.Rows[i] = *r
	}
	sortFragRows(out.Rows)
	out.recompute()
	return out
}

// WriteHeatCSV renders the snapshot as one CSV table in canonical row
// order. Floats print in Go's shortest-round-trip format, so equal
// snapshots produce byte-identical files regardless of worker count.
// No-op on nil.
func WriteHeatCSV(w io.Writer, s *HeatSnapshot) error {
	if s == nil {
		return nil
	}
	if _, err := io.WriteString(w, "relation,kind,node,reads,index_pages,data_pages,bytes,local,remote,buf_hits,buf_misses,queue_wait_ms,wait_p50_ms,wait_p99_ms,size_pages\n"); err != nil {
		return err
	}
	var b []byte
	for _, r := range s.Rows {
		b = b[:0]
		b = append(b, r.Relation...)
		b = append(b, ',')
		b = append(b, r.Kind...)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(r.Node), 10)
		for _, v := range []int64{r.Reads, r.IndexPages, r.DataPages, r.Bytes, r.Local, r.Remote, r.BufHits, r.BufMisses} {
			b = append(b, ',')
			b = strconv.AppendInt(b, v, 10)
		}
		b = append(b, ',')
		b = strconv.AppendFloat(b, r.QueueWaitMS, 'g', -1, 64)
		b = append(b, ',')
		b = strconv.AppendFloat(b, r.WaitStats.P50, 'g', -1, 64)
		b = append(b, ',')
		b = strconv.AppendFloat(b, r.WaitStats.P99, 'g', -1, 64)
		b = append(b, ',')
		b = strconv.AppendInt(b, r.SizePages, 10)
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
