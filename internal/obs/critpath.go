package obs

import (
	"sort"
	"sync"
)

// Collector is a Sink that retains every event in memory for post-run
// analysis (the critical-path breakdown). Emit is concurrent-safe, like
// the other sinks.
type Collector struct {
	mu     sync.Mutex
	events []TraceEvent
}

// Emit implements Sink.
func (c *Collector) Emit(ev TraceEvent) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of everything collected so far.
func (c *Collector) Events() []TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TraceEvent(nil), c.events...)
}

// PathBreakdown attributes one query's end-to-end latency to the hardware
// resources its spans cover. Overlapping resource activity (a disk
// transfer interleaved with the CPU byte-transfer interrupts it causes)
// is attributed once, to the highest-priority resource — disk before CPU
// before network before buffer — so the columns sum to the total. Time
// inside the query interval covered by no resource span is queue-wait:
// the query (or one of its operators) sat in a facility queue or waited
// on coordination.
type PathBreakdown struct {
	QueryID  int64 `json:"query_id"`
	StartNS  int64 `json:"start_ns"`
	TotalNS  int64 `json:"total_ns"`
	DiskNS   int64 `json:"disk_ns"`
	CPUNS    int64 `json:"cpu_ns"`
	NetNS    int64 `json:"net_ns"`
	BufferNS int64 `json:"buffer_ns"`
	WaitNS   int64 `json:"wait_ns"`
}

// resourceRank orders attribution priority; -1 means not a resource.
func resourceRank(category string) int {
	switch category {
	case "disk":
		return 0
	case "cpu":
		return 1
	case "net":
		return 2
	case "buffer":
		return 3
	}
	return -1
}

func (b *PathBreakdown) add(rank int, d int64) {
	switch rank {
	case 0:
		b.DiskNS += d
	case 1:
		b.CPUNS += d
	case 2:
		b.NetNS += d
	case 3:
		b.BufferNS += d
	default:
		b.WaitNS += d
	}
}

// span is one clipped resource interval.
type span struct {
	start, end int64
	rank       int
}

// AnalyzeCriticalPath walks a trace's span set and produces one latency
// breakdown per query, in QueryID order. A query's interval is the hull of
// its "query"-category spans (the coordinator's end-to-end span plus any
// phase spans it contains); resource spans sharing the QueryID are swept
// over that interval by elementary sub-interval, each attributed to the
// highest-priority active resource. Queries without a "query" span (e.g.
// a truncated trace) are skipped.
func AnalyzeCriticalPath(events []TraceEvent) []PathBreakdown {
	type qacc struct {
		start, end int64
		hasQuery   bool
		spans      []span
	}
	byQuery := map[int64]*qacc{}
	get := func(qid int64) *qacc {
		a := byQuery[qid]
		if a == nil {
			a = &qacc{}
			byQuery[qid] = a
		}
		return a
	}
	for _, ev := range events {
		if ev.QueryID == 0 || ev.Kind != KindSpan {
			continue
		}
		if ev.Category == "query" {
			a := get(ev.QueryID)
			if !a.hasQuery || ev.T < a.start {
				a.start = ev.T
			}
			if !a.hasQuery || ev.T+ev.Dur > a.end {
				a.end = ev.T + ev.Dur
			}
			a.hasQuery = true
			continue
		}
		if rank := resourceRank(ev.Category); rank >= 0 {
			get(ev.QueryID).spans = append(get(ev.QueryID).spans,
				span{start: ev.T, end: ev.T + ev.Dur, rank: rank})
		}
	}

	qids := make([]int64, 0, len(byQuery))
	for qid, a := range byQuery {
		if a.hasQuery && a.end > a.start {
			qids = append(qids, qid)
		}
	}
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })

	out := make([]PathBreakdown, 0, len(qids))
	for _, qid := range qids {
		a := byQuery[qid]
		b := PathBreakdown{QueryID: qid, StartNS: a.start, TotalNS: a.end - a.start}
		// Clip resource spans to the query interval and collect elementary
		// boundaries.
		spans := make([]span, 0, len(a.spans))
		cuts := []int64{a.start, a.end}
		for _, sp := range a.spans {
			if sp.start < a.start {
				sp.start = a.start
			}
			if sp.end > a.end {
				sp.end = a.end
			}
			if sp.end <= sp.start {
				continue
			}
			spans = append(spans, sp)
			cuts = append(cuts, sp.start, sp.end)
		}
		sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
		// Sweep each elementary interval, attributing it to the highest-
		// priority resource active there (queue-wait when none is).
		for i := 0; i+1 < len(cuts); i++ {
			lo, hi := cuts[i], cuts[i+1]
			if hi <= lo {
				continue
			}
			best := -1
			for _, sp := range spans {
				if sp.start <= lo && sp.end >= hi && (best == -1 || sp.rank < best) {
					best = sp.rank
				}
			}
			b.add(best, hi-lo)
		}
		out = append(out, b)
	}
	return out
}

// PathSummary aggregates breakdowns across queries.
type PathSummary struct {
	Queries  int   `json:"queries"`
	TotalNS  int64 `json:"total_ns"`
	DiskNS   int64 `json:"disk_ns"`
	CPUNS    int64 `json:"cpu_ns"`
	NetNS    int64 `json:"net_ns"`
	BufferNS int64 `json:"buffer_ns"`
	WaitNS   int64 `json:"wait_ns"`
}

// SummarizePaths totals a breakdown set.
func SummarizePaths(bds []PathBreakdown) PathSummary {
	var s PathSummary
	for _, b := range bds {
		s.Queries++
		s.TotalNS += b.TotalNS
		s.DiskNS += b.DiskNS
		s.CPUNS += b.CPUNS
		s.NetNS += b.NetNS
		s.BufferNS += b.BufferNS
		s.WaitNS += b.WaitNS
	}
	return s
}
