package obs

import (
	"strings"
	"testing"
)

const winNS = int64(1e9) // 1s windows keep the rate arithmetic readable

func TestSamplerKinds(t *testing.T) {
	s := NewSampler(winNS, 8)
	gauge, counter := 0.0, 0.0
	s.Register("g", SeriesGauge, func() float64 { return gauge })
	s.Register("c", SeriesCounter, func() float64 { return counter })
	s.Register("r", SeriesRate, func() float64 { return counter })

	gauge, counter = 3, 10
	s.Sample(1 * winNS)
	gauge, counter = 5, 40
	s.Sample(2 * winNS)

	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d series, want 3", len(snap))
	}
	// Snapshot sorts by name: c, g, r.
	if snap[0].Name != "c" || snap[1].Name != "g" || snap[2].Name != "r" {
		t.Fatalf("bad sort order: %s %s %s", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if got := snap[1].Points; got[0].V != 3 || got[1].V != 5 {
		t.Errorf("gauge points = %v, want 3 then 5", got)
	}
	if got := snap[0].Points; got[0].V != 10 || got[1].V != 40 {
		t.Errorf("counter points = %v, want 10 then 40", got)
	}
	// Rate: primed at 0 on Register, so window 1 sees (10-0)/1s, window 2
	// (40-10)/1s.
	if got := snap[2].Points; got[0].V != 10 || got[1].V != 30 {
		t.Errorf("rate points = %v, want 10 then 30", got)
	}
	if snap[2].Kind != "rate" || snap[0].Kind != "counter" || snap[1].Kind != "gauge" {
		t.Errorf("bad kinds: %s %s %s", snap[0].Kind, snap[1].Kind, snap[2].Kind)
	}
	if snap[0].WindowNS != winNS {
		t.Errorf("WindowNS = %d, want %d", snap[0].WindowNS, winNS)
	}
}

func TestSamplerRateClampsNegativeDelta(t *testing.T) {
	s := NewSampler(winNS, 8)
	v := 100.0
	s.Register("r", SeriesRate, func() float64 { return v })
	v = 150
	s.Sample(1 * winNS)
	v = 20 // source reset underneath, no rebase
	s.Sample(2 * winNS)
	v = 30
	s.Sample(3 * winNS)

	pts := s.Snapshot()[0].Points
	if pts[0].V != 50 {
		t.Errorf("window 1 rate = %g, want 50", pts[0].V)
	}
	if pts[1].V != 0 {
		t.Errorf("reset window rate = %g, want clamped 0", pts[1].V)
	}
	if pts[2].V != 10 {
		t.Errorf("window 3 rate = %g, want 10 (re-primed)", pts[2].V)
	}
}

func TestSamplerRebase(t *testing.T) {
	s := NewSampler(winNS, 8)
	v := 0.0
	s.Register("r", SeriesRate, func() float64 { return v })
	v = 100
	s.Sample(1 * winNS)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}

	// Warm boundary: the source resets and the sampler rebases in step.
	v = 7
	s.Rebase(1 * winNS)
	if s.Len() != 0 {
		t.Fatalf("Len after Rebase = %d, want 0", s.Len())
	}
	v = 27
	s.Sample(2 * winNS)
	pts := s.Snapshot()[0].Points
	if len(pts) != 1 || pts[0].V != 20 {
		t.Errorf("post-rebase rate = %v, want one point of 20", pts)
	}
}

func TestSamplerOverwritesOldest(t *testing.T) {
	s := NewSampler(winNS, 3)
	n := 0.0
	s.Register("g", SeriesGauge, func() float64 { n++; return n })
	for i := 1; i <= 5; i++ {
		s.Sample(int64(i) * winNS)
	}
	sd := s.Snapshot()[0]
	if s.Len() != 3 || sd.Dropped != 2 {
		t.Fatalf("Len=%d Dropped=%d, want 3 and 2", s.Len(), sd.Dropped)
	}
	if sd.Points[0].TNS != 3*winNS || sd.Points[2].TNS != 5*winNS {
		t.Errorf("kept windows %d..%d, want 3s..5s",
			sd.Points[0].TNS, sd.Points[2].TNS)
	}
	if sd.Points[0].V != 3 || sd.Points[1].V != 4 || sd.Points[2].V != 5 {
		t.Errorf("values %v, want 3 4 5", sd.Points)
	}
}

func TestSamplerIgnoresNonAdvancingTime(t *testing.T) {
	s := NewSampler(winNS, 8)
	s.Register("g", SeriesGauge, func() float64 { return 1 })
	s.Sample(winNS)
	s.Sample(winNS)     // same instant
	s.Sample(winNS / 2) // going backwards
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1 (non-advancing samples ignored)", s.Len())
	}
}

func TestSamplerDuplicateNamePanics(t *testing.T) {
	s := NewSampler(winNS, 8)
	s.Register("x", SeriesGauge, func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	s.Register("x", SeriesGauge, func() float64 { return 0 })
}

func TestSamplerNilIsNoOp(t *testing.T) {
	var s *Sampler
	s.Register("x", SeriesGauge, func() float64 { return 0 })
	s.Sample(1)
	s.Rebase(2)
	if s.Len() != 0 || s.WindowNS() != 0 || s.Snapshot() != nil {
		t.Error("nil sampler leaked state")
	}
	if err := s.WriteCSV(nil); err != nil {
		t.Errorf("nil WriteCSV: %v", err)
	}
	if err := s.WriteOpenMetrics(nil, ""); err != nil {
		t.Errorf("nil WriteOpenMetrics: %v", err)
	}
}

func TestSamplerSampleAllocs(t *testing.T) {
	s := NewSampler(winNS, 4)
	c := 0.0
	for _, name := range []string{"a", "b", "c", "d"} {
		s.Register(name+".rate", SeriesRate, func() float64 { c++; return c })
		s.Register(name+".gauge", SeriesGauge, func() float64 { return c })
	}
	now := int64(0)
	// Includes ring-overwrite steady state: capacity 4, 100 samples.
	avg := testing.AllocsPerRun(100, func() {
		now += winNS
		s.Sample(now)
	})
	if avg != 0 {
		t.Errorf("Sample allocates %.1f/op, want 0", avg)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	s := NewSampler(winNS, 8)
	v := 0.0
	s.Register("beta", SeriesGauge, func() float64 { return v + 0.5 })
	s.Register("alpha", SeriesGauge, func() float64 { return v })
	v = 1
	s.Sample(1 * winNS)
	v = 2
	s.Sample(2 * winNS)

	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "t_ms,alpha,beta\n1000,1,1.5\n2000,2,2.5\n"
	if b.String() != want {
		t.Errorf("CSV:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteSeriesCSVMisaligned(t *testing.T) {
	series := []SeriesData{
		{Name: "a", Points: []SeriesPoint{{TNS: 1, V: 1}}},
		{Name: "b", Points: []SeriesPoint{{TNS: 1, V: 1}, {TNS: 2, V: 2}}},
	}
	if err := WriteSeriesCSV(&strings.Builder{}, series); err == nil {
		t.Error("misaligned series did not error")
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	s := NewSampler(winNS, 8)
	v := 1.0
	s.Register("serve.goodput_qps", SeriesRate, func() float64 { return v })
	v = 11
	s.Sample(1 * winNS)

	var b strings.Builder
	if err := s.WriteOpenMetrics(&b, `run="r1"`); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE serve_goodput_qps gauge\nserve_goodput_qps{run=\"r1\"} 10\n"
	if b.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}

	// Empty sampler exposes nothing (no samples yet).
	var empty strings.Builder
	if err := NewSampler(winNS, 8).WriteOpenMetrics(&empty, ""); err != nil || empty.Len() != 0 {
		t.Errorf("empty sampler wrote %q", empty.String())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"serve.goodput_qps": "serve_goodput_qps",
		"node0.disk.util":   "node0_disk_util",
		"a..b--c":           "a_b_c",
		"9lives":            "_9lives",
		"ok:name_1":         "ok:name_1",
		"":                  "_",
		"...":               "_",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
