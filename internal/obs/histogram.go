package obs

import (
	"math"
	"sort"
	"sync"
)

// Growth is the histogram's per-bucket growth factor. Bucket i covers
// [Growth^i, Growth^(i+1)); reporting a bucket's harmonic midpoint
// 2*l*u/(l+u) equalizes the relative error toward both bucket edges and
// bounds it by (Growth-1)/(Growth+1) — under 2.5% — while a full latency
// range from nanoseconds to hours fits in a few hundred sparse buckets.
const Growth = 1.05

// MaxQuantileRelError is the histogram's worst-case relative error on any
// quantile estimate of positive samples (see Growth).
const MaxQuantileRelError = (Growth - 1) / (Growth + 1)

var invLogGrowth = 1 / math.Log(Growth)

// Histogram is a log-bucketed streaming histogram in the DDSketch family:
// it records counts per exponential bucket instead of individual samples,
// so p50/p90/p99 come out of O(buckets) memory with a bounded relative
// error whatever the run length. Non-positive samples (a zero-length
// service, say) are counted exactly in a dedicated zero bucket.
//
// All methods are concurrent-safe: a registry shared across harness
// workers (or snapshotted by the live /metrics endpoint mid-run) may
// observe and summarize the same histogram from different goroutines.
type Histogram struct {
	mu      sync.Mutex
	n       int64
	sum     float64
	min     float64
	max     float64
	zeros   int64 // samples <= 0
	buckets map[int]int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]int64)}
}

// bucketIndex maps a positive value to its bucket.
func bucketIndex(v float64) int {
	return int(math.Floor(math.Log(v) * invLogGrowth))
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.n++
	h.sum += v
	if v <= 0 {
		h.zeros++
		return
	}
	h.buckets[bucketIndex(v)]++
}

// N reports the number of samples (0 on a nil receiver).
func (h *Histogram) N() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum reports the exact sample sum (0 on a nil receiver). Together with N
// it lets windowed probes derive per-window means from two cumulative
// readings.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean reports the exact sample mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.meanLocked()
}

func (h *Histogram) meanLocked() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min reports the smallest sample (0 if empty).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest sample (0 if empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile estimates the p-th percentile (0..100). Estimates for positive
// samples are within MaxQuantileRelError of the exact order statistic;
// non-positive samples are reported as 0 exactly. Returns 0 if empty.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(p)
}

func (h *Histogram) quantileLocked(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := p / 100 * float64(h.n-1)
	if rank < 0 {
		rank = 0
	}
	if rank > float64(h.n-1) {
		rank = float64(h.n - 1)
	}
	// The target sample is the one at index floor(rank) of the sorted
	// series (nearest-rank; interpolation is below bucket resolution).
	target := int64(rank)
	if target < h.zeros {
		// The target sample is one of the non-positive ones, which the
		// zeros bucket counts but does not locate. Report 0 clamped into
		// the observed range: an all-negative series must not produce an
		// estimate above its max (nor can any series produce one below
		// its min).
		v := 0.0
		if v > h.max {
			v = h.max
		}
		if v < h.min {
			v = h.min
		}
		return v
	}
	cum := h.zeros
	for _, i := range h.sortedBuckets() {
		cum += h.buckets[i]
		if target < cum {
			// Harmonic midpoint of [G^i, G^(i+1)): 2*l*u/(l+u) = l*2G/(1+G),
			// the point with equal relative error to both edges.
			mid := math.Pow(Growth, float64(i)) * 2 * Growth / (1 + Growth)
			// Clamp to the observed range: the extreme buckets are only
			// partially occupied.
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

func (h *Histogram) sortedBuckets() []int {
	idx := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// Merge folds another histogram's samples into h. Bucket counts add, so
// merging is associative and order-independent on all count-derived
// statistics (quantiles, N, min, max). No-op when other is nil or empty.
// The other histogram is copied under its own lock first (never holding
// both locks at once), so opposite-direction merges cannot deadlock.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	other.mu.Lock()
	on, osum, omin, omax, ozeros := other.n, other.sum, other.min, other.max, other.zeros
	obuckets := make(map[int]int64, len(other.buckets))
	for i, c := range other.buckets {
		obuckets[i] = c
	}
	other.mu.Unlock()
	if on == 0 {
		return
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		h.min, h.max = omin, omax
	} else {
		if omin < h.min {
			h.min = omin
		}
		if omax > h.max {
			h.max = omax
		}
	}
	h.n += on
	h.sum += osum
	h.zeros += ozeros
	for i, c := range obuckets {
		h.buckets[i] += c
	}
}

// Reset discards all samples, keeping the handle valid.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n, h.sum, h.min, h.max, h.zeros = 0, 0, 0, 0, 0
	for i := range h.buckets {
		delete(h.buckets, i)
	}
}

// Stats summarizes the histogram for snapshots.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramStats{
		N:    h.n,
		Mean: h.meanLocked(),
		Min:  h.min,
		Max:  h.max,
		P50:  h.quantileLocked(50),
		P90:  h.quantileLocked(90),
		P99:  h.quantileLocked(99),
	}
}
