package obs

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Hub aggregates the live samplers of a campaign's in-flight (and
// finished) runs behind one HTTP scrape endpoint. Jobs register their
// sampler under the job id when they start; the handler renders every
// registered sampler's current series in OpenMetrics text format with a
// run="<id>" label. Registration and scraping are concurrent-safe, and a
// sampler stays registered after its job completes so a scrape landing
// between jobs still sees data.
//
// A nil *Hub disables registration (no-ops), so plumbing can pass one
// through unconditionally.
type Hub struct {
	mu      sync.Mutex
	runs    map[string]*Sampler
	order   []string
	scrapes int64
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{runs: make(map[string]*Sampler)}
}

// Register attaches a run's sampler under the given id, replacing any
// previous sampler with that id. No-op on a nil hub or nil sampler.
func (h *Hub) Register(id string, s *Sampler) {
	if h == nil || s == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.runs[id]; !ok {
		h.order = append(h.order, id)
	}
	h.runs[id] = s
}

// Unregister detaches a run. No-op on a nil hub or unknown id.
func (h *Hub) Unregister(id string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.runs[id]; !ok {
		return
	}
	delete(h.runs, id)
	for i, v := range h.order {
		if v == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
}

// Runs reports the registered run ids, sorted.
func (h *Hub) Runs() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := append([]string(nil), h.order...)
	sort.Strings(out)
	return out
}

// Scrapes reports the number of ServeHTTP calls handled.
func (h *Hub) Scrapes() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.scrapes
}

// ServeHTTP renders every registered sampler in OpenMetrics text format.
// The declusterbench_up gauge is always present, so a scraper can tell an
// idle endpoint from a broken one.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	ids := append([]string(nil), h.order...)
	samplers := make([]*Sampler, len(ids))
	for i, id := range ids {
		samplers[i] = h.runs[id]
	}
	h.scrapes++
	h.mu.Unlock()
	sort.Sort(&byID{ids, samplers})

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# TYPE declusterbench_up gauge\ndeclusterbench_up 1\n")
	fmt.Fprintf(w, "# TYPE declusterbench_runs gauge\ndeclusterbench_runs %d\n", len(ids))
	for i, id := range ids {
		label := `run="` + escapeLabel(id) + `"`
		if err := samplers[i].WriteOpenMetrics(w, label); err != nil {
			return
		}
	}
	fmt.Fprintf(w, "# EOF\n")
}

// byID sorts (ids, samplers) in lockstep by id for a stable exposition.
type byID struct {
	ids      []string
	samplers []*Sampler
}

func (b *byID) Len() int           { return len(b.ids) }
func (b *byID) Less(i, j int) bool { return b.ids[i] < b.ids[j] }
func (b *byID) Swap(i, j int) {
	b.ids[i], b.ids[j] = b.ids[j], b.ids[i]
	b.samplers[i], b.samplers[j] = b.samplers[j], b.samplers[i]
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
