package obs

import "testing"

func fragSpan(node int, name string, qid, dur int64, detail string) TraceEvent {
	return TraceEvent{
		Kind: KindSpan, Category: "frag", Node: node, Name: name,
		QueryID: qid, Dur: dur, Detail: detail,
	}
}

func TestAnalyzeFragments(t *testing.T) {
	events := []TraceEvent{
		// Noise the analyzer must skip: wrong category, wrong kind.
		{Kind: KindSpan, Category: "disk", Node: 0, Name: "read", Dur: 99},
		{Kind: KindInstant, Category: "frag", Node: 0, Name: "tenk"},
		fragSpan(0, "tenk", 1, 10, "3 pages, 2 tuples"),
		fragSpan(0, "tenk", 2, 30, "5 pages, 1 tuples"),
		fragSpan(0, "tenk", 1, 5, "2 pages, 0 tuples"),
		fragSpan(1, "tenk:aux", 2, 50, "2 pages, 0 tuples"),
	}
	uses := AnalyzeFragments(events)
	if len(uses) != 2 {
		t.Fatalf("fragments = %d, want 2", len(uses))
	}
	// Hottest first: the aux fragment's 50ns beats tenk@n0's 45ns.
	aux := uses[0]
	if aux.Name != "tenk:aux" || aux.Node != 1 || aux.BusyNS != 50 || aux.Pages != 2 {
		t.Errorf("hottest = %+v", aux)
	}
	fr := uses[1]
	if fr.Ops != 3 || fr.Pages != 10 || fr.Tuples != 3 || fr.BusyNS != 45 {
		t.Errorf("tenk aggregate = %+v", fr)
	}
	// Per-query breakdown, hottest query first: q2 (30ns) before q1 (15ns).
	if len(fr.Queries) != 2 {
		t.Fatalf("queries = %d, want 2", len(fr.Queries))
	}
	if q := fr.Queries[0]; q.QueryID != 2 || q.Ops != 1 || q.Pages != 5 || q.BusyNS != 30 {
		t.Errorf("query 0 = %+v", q)
	}
	if q := fr.Queries[1]; q.QueryID != 1 || q.Ops != 2 || q.Pages != 5 || q.BusyNS != 15 {
		t.Errorf("query 1 = %+v", q)
	}
}

func TestAnalyzeFragmentsEmpty(t *testing.T) {
	if got := AnalyzeFragments(nil); len(got) != 0 {
		t.Errorf("empty trace produced %+v", got)
	}
	// A trace with no frag spans at all reduces to nothing too.
	events := []TraceEvent{{Kind: KindSpan, Category: "cpu", Name: "svc", Dur: 1}}
	if got := AnalyzeFragments(events); len(got) != 0 {
		t.Errorf("frag-free trace produced %+v", got)
	}
}

func TestAnalyzeFragmentsBusyTieOrder(t *testing.T) {
	events := []TraceEvent{
		fragSpan(2, "b", 1, 10, "1 pages, 0 tuples"),
		fragSpan(1, "a", 1, 10, "1 pages, 0 tuples"),
		fragSpan(1, "b", 1, 10, "1 pages, 0 tuples"),
	}
	uses := AnalyzeFragments(events)
	// Equal BusyNS: node ascending, then name ascending.
	want := []struct {
		node int
		name string
	}{{1, "a"}, {1, "b"}, {2, "b"}}
	for i, w := range want {
		if uses[i].Node != w.node || uses[i].Name != w.name {
			t.Errorf("order[%d] = %s@n%d, want %s@n%d",
				i, uses[i].Name, uses[i].Node, w.name, w.node)
		}
	}
}
