// Package obs is the simulator's structured observability layer: typed
// trace events with pluggable sinks (Chrome trace JSON for Perfetto, JSONL,
// or in-process collectors) and a metrics registry of named counters,
// gauges, and log-bucketed latency histograms.
//
// The package is deliberately free of simulation dependencies — times are
// plain int64 nanoseconds of simulated time — so internal/sim can own a
// Sink and a *Registry without an import cycle. Everything is zero-cost
// when disabled: a nil *Registry hands out nil metric handles, and every
// handle method is a no-op on a nil receiver, so instrumented code needs no
// conditional at the call site.
//
// Within one simulation engine all emission is single-threaded (the kernel
// runs one process at a time). The sinks shipped here are additionally
// mutex-guarded so several engines — e.g. harness workers — can share one
// sink safely.
package obs

// NoNode marks an event that belongs to no operator node (the host's
// coordination work, engine-level events).
const NoNode = -1

// Kind classifies a trace event.
type Kind uint8

// Trace event kinds. Span events carry a duration and describe a completed
// interval; Begin/End pairs bracket intervals whose duration the emitter
// does not know up front; Instant events are points.
const (
	KindInstant Kind = iota
	KindBegin
	KindEnd
	KindSpan
)

// String returns the kind's wire name (used by the JSONL exporter).
func (k Kind) String() string {
	switch k {
	case KindInstant:
		return "instant"
	case KindBegin:
		return "begin"
	case KindEnd:
		return "end"
	case KindSpan:
		return "span"
	default:
		return "unknown"
	}
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// TraceEvent is one structured simulation event. The emitting layer fills
// the typed fields; string formatting (for terminals, logs) happens at the
// edge, in whatever sink or tool consumes the event.
type TraceEvent struct {
	// T is the event (or span start) time in simulated nanoseconds.
	T int64 `json:"t_ns"`
	// Dur is the span duration in simulated nanoseconds (KindSpan only).
	Dur int64 `json:"dur_ns,omitempty"`
	// Node is the operator node the event happened on, or NoNode.
	Node int `json:"node"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Category groups events into tracks: "cpu", "disk", "net", "buffer",
	// "query", "op".
	Category string `json:"cat"`
	// Name identifies the event within its category (e.g. the process
	// served, "read p123", "q17 operators").
	Name string `json:"name"`
	// QueryID ties the event to a query, or 0.
	QueryID int64 `json:"query,omitempty"`
	// Detail carries optional free-form context.
	Detail string `json:"detail,omitempty"`
}

// Sink receives trace events. Implementations shipped by this package are
// safe for concurrent use by multiple engines.
type Sink interface {
	Emit(ev TraceEvent)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(ev TraceEvent)

// Emit calls the function.
func (f SinkFunc) Emit(ev TraceEvent) { f(ev) }

// MultiSink fans every event out to each sink in order.
type MultiSink []Sink

// Emit forwards the event to every sink.
func (m MultiSink) Emit(ev TraceEvent) {
	for _, s := range m {
		s.Emit(ev)
	}
}
