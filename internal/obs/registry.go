package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics: monotonic counters, point-in-time gauges,
// and log-bucketed histograms. Lookup interns by name, so repeated
// Counter("x") calls return the same handle; components fetch handles once
// at construction and update them on hot paths.
//
// A nil *Registry is the disabled state: it hands out nil handles, and all
// handle methods no-op on nil receivers, so instrumented code pays one
// predictable branch when metrics are off.
//
// Lookup, Snapshot and Reset are concurrent-safe: harness workers each
// drive their own engine but may share a registry (and the live /metrics
// endpoint snapshots while simulations run), so the name maps are guarded
// by an RWMutex and the handle values themselves are atomics.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric in place (handles stay valid). Used
// to discard the warm-up transient at the start of a measurement window.
// No-op on a nil registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// Counter is a monotonically increasing integer metric. Updates are atomic.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Reset zeroes the counter. No-op on a nil receiver.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Value reports the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float metric (per-node utilization, queue
// depth). Updates are atomic (float bits in a uint64).
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reports the last value set (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// HistogramStats is the serializable summary of one histogram.
type HistogramStats struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
}

// Snapshot is a serializable copy of a registry's state, taken at the end
// of a measurement window and archived with experiment results.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. Returns the zero Snapshot on a
// nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Stats()
		}
	}
	return s
}

// CounterNames reports the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
