package obs

// Per-query fragment attribution from trace events. The execution layer
// emits one KindSpan event per fragment access with Category "frag", Name
// set to the fragment label ("TENK", "TENK:backup", "TENK:aux"), Detail
// "<pages> pages, <tuples> tuples", and Dur covering the access's charge
// loop (buffer/disk/CPU). AnalyzeFragments aggregates those spans per
// (node, fragment) and, within each fragment, per query — answering
// "which queries made fragment F hot".

import (
	"fmt"
	"sort"
)

// FragQueryUse is one query's contribution to a fragment's heat.
type FragQueryUse struct {
	QueryID int64
	Ops     int   // fragment accesses by this query
	Pages   int   // pages requested
	BusyNS  int64 // simulated time inside the access charge loops
}

// FragUse is one fragment's aggregated trace attribution.
type FragUse struct {
	Node    int
	Name    string // fragment label: relation plus :backup/:aux suffix
	Ops     int
	Pages   int
	Tuples  int
	BusyNS  int64
	Queries []FragQueryUse // hottest first (BusyNS, then QueryID)
}

// AnalyzeFragments reduces a trace to per-fragment usage with per-query
// breakdowns, hottest fragment first (BusyNS, ties by node then name).
// Events without Category "frag" are ignored, so any trace — including
// ones carrying the full cpu/disk/net span set — can be fed directly.
func AnalyzeFragments(events []TraceEvent) []FragUse {
	type fragKey struct {
		node int
		name string
	}
	type fragAgg struct {
		use    FragUse
		byQID  map[int64]int // index into queries
		qorder []FragQueryUse
	}
	aggs := make(map[fragKey]*fragAgg)
	var order []fragKey
	for _, ev := range events {
		if ev.Kind != KindSpan || ev.Category != "frag" {
			continue
		}
		var pages, tuples int
		fmt.Sscanf(ev.Detail, "%d pages, %d tuples", &pages, &tuples)
		k := fragKey{ev.Node, ev.Name}
		a := aggs[k]
		if a == nil {
			a = &fragAgg{
				use:   FragUse{Node: ev.Node, Name: ev.Name},
				byQID: make(map[int64]int),
			}
			aggs[k] = a
			order = append(order, k)
		}
		a.use.Ops++
		a.use.Pages += pages
		a.use.Tuples += tuples
		a.use.BusyNS += ev.Dur
		qi, ok := a.byQID[ev.QueryID]
		if !ok {
			qi = len(a.qorder)
			a.byQID[ev.QueryID] = qi
			a.qorder = append(a.qorder, FragQueryUse{QueryID: ev.QueryID})
		}
		q := &a.qorder[qi]
		q.Ops++
		q.Pages += pages
		q.BusyNS += ev.Dur
	}
	out := make([]FragUse, 0, len(order))
	for _, k := range order {
		a := aggs[k]
		sort.SliceStable(a.qorder, func(i, j int) bool {
			if a.qorder[i].BusyNS != a.qorder[j].BusyNS {
				return a.qorder[i].BusyNS > a.qorder[j].BusyNS
			}
			return a.qorder[i].QueryID < a.qorder[j].QueryID
		})
		a.use.Queries = a.qorder
		out = append(out, a.use)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].BusyNS != out[j].BusyNS {
			return out[i].BusyNS > out[j].BusyNS
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Name < out[j].Name
	})
	return out
}
