package obs

import (
	"reflect"
	"testing"
)

func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter not interned")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not interned")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram not interned")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Error("distinct names share a counter")
	}
}

func TestNilRegistrySafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	// Every handle method must be a safe no-op.
	c.Add(5)
	c.Inc()
	c.Reset()
	g.Set(2)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.N() != 0 {
		t.Fatal("nil handles not zero-valued")
	}
	r.Reset()
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatal("nil registry snapshot not empty")
	}
	if r.CounterNames() != nil {
		t.Fatal("nil registry has counter names")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads").Add(3)
	r.Gauge("util").Set(0.75)
	h := r.Histogram("lat")
	h.Observe(10)
	h.Observe(20)

	s := r.Snapshot()
	if s.Counters["reads"] != 3 {
		t.Errorf("counter snapshot = %d", s.Counters["reads"])
	}
	if s.Gauges["util"] != 0.75 {
		t.Errorf("gauge snapshot = %g", s.Gauges["util"])
	}
	hs := s.Histograms["lat"]
	if hs.N != 2 || hs.Min != 10 || hs.Max != 20 || hs.Mean != 15 {
		t.Errorf("histogram snapshot = %+v", hs)
	}

	// The snapshot is a copy: later updates must not leak into it.
	r.Counter("reads").Inc()
	if s.Counters["reads"] != 3 {
		t.Error("snapshot aliases live counter")
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(7)
	g.Set(1)
	h.Observe(5)

	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.N() != 0 {
		t.Fatal("reset left state behind")
	}
	// Handles fetched before the reset stay live — components keep their
	// construction-time handles across warm-up discard.
	c.Inc()
	h.Observe(2)
	if r.Counter("c").Value() != 1 || r.Histogram("h").N() != 1 {
		t.Fatal("pre-reset handles detached from registry")
	}
}

func TestCounterNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Counter(n)
	}
	want := []string{"alpha", "mid", "zeta"}
	if got := r.CounterNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("CounterNames = %v, want %v", got, want)
	}
}
