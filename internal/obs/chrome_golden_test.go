package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// chromeGolden pins the exact bytes WriteJSON produces for a trace whose
// names and args carry every character class that needs escaping: quotes,
// backslashes, newlines, HTML-special characters (escaped as \u00XX with
// SetEscapeHTML pinned on), and multi-byte unicode (passed through raw).
// Also pins the deterministic ordering rules: metadata first (processes,
// then tracks in rank order), events by (time, track, longer-span-first,
// name).
const chromeGolden = `{"traceEvents":[{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"escape \u0026 \u003ccheck\u003e"}},{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"host query"}},{"name":"thread_sort_index","ph":"M","ts":0,"pid":0,"tid":0,"args":{"sort_index":0}},{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":1,"args":{"name":"node0 cpu"}},{"name":"thread_sort_index","ph":"M","ts":0,"pid":0,"tid":1,"args":{"sort_index":1}},{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":2,"args":{"name":"node0 disk"}},{"name":"thread_sort_index","ph":"M","ts":0,"pid":0,"tid":2,"args":{"sort_index":2}},{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":3,"args":{"name":"node0 net"}},{"name":"thread_sort_index","ph":"M","ts":0,"pid":0,"tid":3,"args":{"sort_index":3}},{"name":"sel \"unique2\" \u003c= 5 \u0026 x\\y","cat":"query","ph":"X","ts":1,"dur":0.5,"pid":0,"tid":0,"args":{"detail":"line1\nline2","query":1}},{"name":"a-child","cat":"cpu","ph":"X","ts":1.2,"dur":0.3,"pid":0,"tid":1},{"name":"b-parent","cat":"cpu","ph":"X","ts":1.2,"dur":0.3,"pid":0,"tid":1,"args":{"query":1}},{"name":"read π/2 ☃","cat":"disk","ph":"X","ts":1.2,"dur":0.1,"pid":0,"tid":2,"args":{"query":1}},{"name":"drop \u003cpkt\u003e","cat":"net","ph":"i","ts":1.4,"pid":0,"tid":3,"s":"t"}],"displayTimeUnit":"ms"}
`

func goldenTracer() *ChromeTracer {
	c := NewChromeTracer()
	c.BeginProcess("escape & <check>")
	c.Emit(TraceEvent{T: 1000, Dur: 500, Node: NoNode, Kind: KindSpan, Category: "query",
		Name: `sel "unique2" <= 5 & x\y`, QueryID: 1, Detail: "line1\nline2"})
	c.Emit(TraceEvent{T: 1200, Dur: 100, Node: 0, Kind: KindSpan, Category: "disk",
		Name: "read π/2 ☃", QueryID: 1})
	c.Emit(TraceEvent{T: 1200, Dur: 300, Node: 0, Kind: KindSpan, Category: "cpu",
		Name: "b-parent", QueryID: 1})
	c.Emit(TraceEvent{T: 1200, Dur: 300, Node: 0, Kind: KindSpan, Category: "cpu",
		Name: "a-child"})
	c.Emit(TraceEvent{T: 1400, Node: 0, Kind: KindInstant, Category: "net", Name: "drop <pkt>"})
	return c
}

func TestChromeWriteJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenTracer().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != chromeGolden {
		t.Errorf("trace JSON drifted from golden.\ngot:\n%s\nwant:\n%s",
			b.String(), chromeGolden)
	}
	// The golden must itself be valid JSON (guards against committing a
	// hand-mangled constant).
	var doc map[string]any
	if err := json.Unmarshal([]byte(chromeGolden), &doc); err != nil {
		t.Fatalf("golden is not valid JSON: %v", err)
	}
}

// TestChromeEmitOrderIndependence re-emits the golden trace in a different
// interleaving: the sort must normalize it to the identical file, so traces
// collected from concurrently-running engines are stable.
func TestChromeEmitOrderIndependence(t *testing.T) {
	c := NewChromeTracer()
	c.BeginProcess("escape & <check>")
	c.Emit(TraceEvent{T: 1400, Node: 0, Kind: KindInstant, Category: "net", Name: "drop <pkt>"})
	c.Emit(TraceEvent{T: 1200, Dur: 300, Node: 0, Kind: KindSpan, Category: "cpu",
		Name: "a-child"})
	c.Emit(TraceEvent{T: 1200, Dur: 100, Node: 0, Kind: KindSpan, Category: "disk",
		Name: "read π/2 ☃", QueryID: 1})
	c.Emit(TraceEvent{T: 1200, Dur: 300, Node: 0, Kind: KindSpan, Category: "cpu",
		Name: "b-parent", QueryID: 1})
	c.Emit(TraceEvent{T: 1000, Dur: 500, Node: NoNode, Kind: KindSpan, Category: "query",
		Name: `sel "unique2" <= 5 & x\y`, QueryID: 1, Detail: "line1\nline2"})

	var got, want strings.Builder
	if err := c.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if err := goldenTracer().WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("emit order changed output.\ngot:\n%s\nwant:\n%s",
			got.String(), want.String())
	}
}
