package obs

import (
	"strings"
	"testing"
)

func TestFragHeatNilSafe(t *testing.T) {
	var h *FragHeat
	h.BufferHit()
	h.BufferMiss()
	h.DiskWait(1e6)
	h.Account(1, 2, 3, true)
	h.AddSize(4)
	if h.Pages() != 0 || h.ID() != (FragID{}) {
		t.Error("nil FragHeat leaked state")
	}

	var m *HeatMap
	if m.Frag("r", 0, FragPrimary) != nil {
		t.Error("nil HeatMap.Frag should return nil")
	}
	if m.Frags() != nil || m.Snapshot(5) != nil {
		t.Error("nil HeatMap leaked state")
	}
	m.Reset()
}

func TestFragIDLabel(t *testing.T) {
	cases := map[FragID]string{
		{Relation: "tenk", Kind: FragPrimary}: "tenk",
		{Relation: "tenk", Kind: FragBackup}:  "tenk:backup",
		{Relation: "tenk", Kind: FragAux}:     "tenk:aux",
	}
	for id, want := range cases {
		if got := id.Label(); got != want {
			t.Errorf("Label(%v) = %q, want %q", id, got, want)
		}
	}
}

func TestHeatMapAccounting(t *testing.T) {
	m := NewHeatMap()
	h := m.Frag("tenk", 3, FragPrimary)
	if h2 := m.Frag("tenk", 3, FragPrimary); h2 != h {
		t.Fatal("Frag not idempotent for the same id")
	}
	h.AddSize(24)
	h.BufferHit()
	h.BufferHit()
	h.BufferMiss()
	h.DiskWait(2e6) // 2ms
	h.Account(2, 1, 512, false)
	h.Account(0, 1, 256, true)

	b := m.Frag("tenk", 1, FragBackup)
	b.Account(1, 0, 0, true)

	s := m.Snapshot(5)
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(s.Rows))
	}
	// Canonical order: primary before backup regardless of node.
	r := s.Rows[0]
	if r.Kind != "primary" || r.Node != 3 {
		t.Fatalf("row 0 = %s@%d, want primary@3", r.Kind, r.Node)
	}
	if r.Reads != 2 || r.IndexPages != 2 || r.DataPages != 2 || r.Bytes != 768 {
		t.Errorf("counters = %+v", r)
	}
	if r.Local != 1 || r.Remote != 1 {
		t.Errorf("local/remote = %d/%d, want 1/1", r.Local, r.Remote)
	}
	if r.BufHits != 2 || r.BufMisses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", r.BufHits, r.BufMisses)
	}
	if r.QueueWaitMS != 2 {
		t.Errorf("QueueWaitMS = %g, want 2", r.QueueWaitMS)
	}
	if r.SizePages != 24 {
		t.Errorf("SizePages = %d, want 24", r.SizePages)
	}
	if r.WaitStats.N != 1 {
		t.Errorf("WaitStats.N = %d, want 1", r.WaitStats.N)
	}
	if s.Rows[1].Kind != "backup" {
		t.Errorf("row 1 kind = %s, want backup", s.Rows[1].Kind)
	}
}

func TestHeatMapReset(t *testing.T) {
	m := NewHeatMap()
	h := m.Frag("r", 0, FragPrimary)
	h.AddSize(10)
	h.Account(1, 1, 100, false)
	h.BufferMiss()
	h.DiskWait(1e6)
	m.Reset()
	s := m.Snapshot(5)
	r := s.Rows[0]
	if r.Reads != 0 || r.Pages() != 0 || r.BufMisses != 0 || r.QueueWaitMS != 0 || r.WaitStats.N != 0 {
		t.Errorf("counters survived Reset: %+v", r)
	}
	if r.SizePages != 10 {
		t.Errorf("SizePages = %d, want footprint retained across Reset", r.SizePages)
	}
}

// snapPages builds a snapshot whose fragments read the given page counts.
func snapPages(topK int, pages ...int64) *HeatSnapshot {
	m := NewHeatMap()
	for i, p := range pages {
		m.Frag("r", i, FragPrimary).Account(int(p), 0, 0, false)
	}
	return m.Snapshot(topK)
}

func TestHeatSnapshotIndices(t *testing.T) {
	// Two fragments, shares 0.75/0.25: HHI = 0.625, Gini = 0.25.
	s := snapPages(1, 3, 1)
	if s.TotalPages != 4 {
		t.Fatalf("TotalPages = %d, want 4", s.TotalPages)
	}
	if got := s.TopKShare; got != 0.75 {
		t.Errorf("TopKShare = %g, want 0.75", got)
	}
	if got := s.HHI; got != 0.625 {
		t.Errorf("HHI = %g, want 0.625", got)
	}
	if got := s.Gini; got != 0.25 {
		t.Errorf("Gini = %g, want 0.25", got)
	}
}

func TestHeatSnapshotIndicesUniform(t *testing.T) {
	// Four equal fragments: HHI = 1/4, Gini = 0, top-2 share = 1/2.
	s := snapPages(2, 7, 7, 7, 7)
	if s.HHI != 0.25 {
		t.Errorf("HHI = %g, want 0.25", s.HHI)
	}
	if s.Gini != 0 {
		t.Errorf("Gini = %g, want 0", s.Gini)
	}
	if s.TopKShare != 0.5 {
		t.Errorf("TopKShare = %g, want 0.5", s.TopKShare)
	}
}

func TestHeatSnapshotEmpty(t *testing.T) {
	s := NewHeatMap().Snapshot(5)
	if s == nil || len(s.Rows) != 0 || s.HHI != 0 || s.Gini != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	if s.HotFragments() != nil {
		t.Error("empty snapshot should have no hot fragments")
	}
}

func TestHotFragments(t *testing.T) {
	s := snapPages(2, 1, 5, 0, 3)
	hot := s.HotFragments()
	if len(hot) != 2 {
		t.Fatalf("len = %d, want 2 (topK cap)", len(hot))
	}
	if hot[0].Node != 1 || hot[0].Pages != 5 || hot[1].Node != 3 || hot[1].Pages != 3 {
		t.Errorf("ranking = %+v", hot)
	}
	if hot[0].Share != 5.0/9 {
		t.Errorf("share = %g, want %g", hot[0].Share, 5.0/9)
	}
	// Zero-page fragments never appear even under a generous K.
	if hot := snapPages(10, 2, 0).HotFragments(); len(hot) != 1 {
		t.Errorf("zero-page fragment reported: %+v", hot)
	}
	var nilSnap *HeatSnapshot
	if nilSnap.HotFragments() != nil {
		t.Error("nil snapshot should have no hot fragments")
	}
}

func TestMergeHeatSnapshots(t *testing.T) {
	m1 := NewHeatMap()
	h1 := m1.Frag("r", 0, FragPrimary)
	h1.AddSize(24)
	h1.Account(2, 1, 100, false)
	h1.BufferMiss()
	h1.DiskWait(1e6)
	m1.Frag("r", 1, FragPrimary).Account(1, 0, 50, true)

	m2 := NewHeatMap()
	h2 := m2.Frag("r", 0, FragPrimary)
	h2.AddSize(24)
	h2.Account(1, 1, 10, true)
	h2.BufferHit()
	h2.DiskWait(3e6)

	merged := MergeHeatSnapshots([]*HeatSnapshot{m1.Snapshot(5), nil, m2.Snapshot(5)}, 5)
	if len(merged.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(merged.Rows))
	}
	r := merged.Rows[0]
	if r.Node != 0 || r.Reads != 2 || r.IndexPages != 3 || r.DataPages != 2 || r.Bytes != 110 {
		t.Errorf("merged counters = %+v", r)
	}
	if r.Local != 1 || r.Remote != 1 || r.BufHits != 1 || r.BufMisses != 1 {
		t.Errorf("merged locality/buffer = %+v", r)
	}
	if r.QueueWaitMS != 4 {
		t.Errorf("QueueWaitMS = %g, want 4", r.QueueWaitMS)
	}
	if r.SizePages != 24 {
		t.Errorf("SizePages = %d, want max not sum", r.SizePages)
	}
	// The wait histograms merged bucket-wise: both observations survive.
	if r.WaitStats.N != 2 || r.WaitStats.Min != 1 || r.WaitStats.Max != 3 {
		t.Errorf("merged WaitStats = %+v", r.WaitStats)
	}
	if merged.TotalPages != 6 {
		t.Errorf("TotalPages = %d, want 6", merged.TotalPages)
	}

	if MergeHeatSnapshots(nil, 5) != nil || MergeHeatSnapshots([]*HeatSnapshot{nil, nil}, 5) != nil {
		t.Error("merging nothing should return nil")
	}
}

func TestMergeHeatSnapshotsDoesNotMutateInputs(t *testing.T) {
	m := NewHeatMap()
	m.Frag("r", 0, FragPrimary).DiskWait(1e6)
	s := m.Snapshot(5)
	MergeHeatSnapshots([]*HeatSnapshot{s, s}, 5)
	if s.Rows[0].Wait.N() != 1 {
		t.Errorf("input histogram mutated: N = %d", s.Rows[0].Wait.N())
	}
}

func heatCSV(t *testing.T, s *HeatSnapshot) string {
	t.Helper()
	var b strings.Builder
	if err := WriteHeatCSV(&b, s); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestWriteHeatCSV(t *testing.T) {
	m := NewHeatMap()
	h := m.Frag("tenk", 2, FragPrimary)
	h.AddSize(24)
	h.Account(2, 1, 512, false)
	h.BufferMiss()
	h.DiskWait(2e6)
	got := heatCSV(t, m.Snapshot(5))
	want := "relation,kind,node,reads,index_pages,data_pages,bytes,local,remote,buf_hits,buf_misses,queue_wait_ms,wait_p50_ms,wait_p99_ms,size_pages\n" +
		"tenk,primary,2,1,2,1,512,1,0,0,1,2,2,2,24\n"
	if got != want {
		t.Errorf("CSV:\n%s\nwant:\n%s", got, want)
	}
	if heatCSV(t, nil) != "" {
		t.Error("nil snapshot should write nothing")
	}
}

func TestWriteHeatCSVMergeOrderInvariant(t *testing.T) {
	build := func(node int, wait float64) *HeatSnapshot {
		m := NewHeatMap()
		h := m.Frag("r", node, FragPrimary)
		h.Account(3, 2, 77, node == 1)
		h.DiskWait(int64(wait * 1e6))
		return m.Snapshot(5)
	}
	a, b := build(0, 1.5), build(1, 4.25)
	ab := heatCSV(t, MergeHeatSnapshots([]*HeatSnapshot{a, b}, 5))
	ba := heatCSV(t, MergeHeatSnapshots([]*HeatSnapshot{b, a}, 5))
	if ab != ba {
		t.Errorf("merge order changed the CSV:\n%s\nvs:\n%s", ab, ba)
	}
}
