package obs

import (
	"reflect"
	"testing"
)

func qspan(qid int64, cat string, t, dur int64) TraceEvent {
	return TraceEvent{T: t, Dur: dur, Node: 0, Kind: KindSpan, Category: cat,
		Name: cat, QueryID: qid}
}

func TestAnalyzeCriticalPath(t *testing.T) {
	events := []TraceEvent{
		qspan(1, "query", 0, 100),
		qspan(1, "disk", 10, 30), // [10,40)
		qspan(1, "cpu", 30, 30),  // [30,60): 30-40 overlaps disk, disk wins
		qspan(1, "net", 90, 5),   // [90,95)
		qspan(1, "op", 0, 100),   // operator span: not a resource, ignored
		qspan(2, "disk", 0, 50),  // no query span: skipped
		qspan(0, "disk", 0, 50),  // no query id: ignored
		{T: 5, Node: 0, Kind: KindInstant, Category: "disk", Name: "drop", QueryID: 1},
	}
	got := AnalyzeCriticalPath(events)
	want := []PathBreakdown{{
		QueryID: 1, StartNS: 0, TotalNS: 100,
		DiskNS: 30, CPUNS: 20, NetNS: 5, WaitNS: 45,
	}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("breakdown = %+v, want %+v", got, want)
	}
}

func TestAnalyzeCriticalPathClipsToHull(t *testing.T) {
	events := []TraceEvent{
		qspan(7, "query", 100, 50), // hull [100,150)
		qspan(7, "disk", 80, 40),   // clipped to [100,120)
		qspan(7, "cpu", 140, 30),   // clipped to [140,150)
		qspan(7, "buffer", 200, 9), // entirely outside: dropped
	}
	got := AnalyzeCriticalPath(events)
	want := []PathBreakdown{{
		QueryID: 7, StartNS: 100, TotalNS: 50,
		DiskNS: 20, CPUNS: 10, WaitNS: 20,
	}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("breakdown = %+v, want %+v", got, want)
	}
}

func TestAnalyzeCriticalPathMultiQueryOrder(t *testing.T) {
	events := []TraceEvent{
		qspan(9, "query", 0, 10),
		qspan(3, "query", 5, 10),
		// Two query spans for one query: the hull covers both.
		qspan(3, "query", 20, 10),
	}
	got := AnalyzeCriticalPath(events)
	if len(got) != 2 || got[0].QueryID != 3 || got[1].QueryID != 9 {
		t.Fatalf("order = %+v, want queries 3 then 9", got)
	}
	if got[0].TotalNS != 25 || got[0].WaitNS != 25 {
		t.Errorf("hull of two query spans = %+v, want total 25 all wait", got[0])
	}
}

func TestCollectorAndSummary(t *testing.T) {
	var c Collector
	c.Emit(qspan(1, "query", 0, 10))
	c.Emit(qspan(1, "disk", 0, 4))
	c.Emit(qspan(2, "query", 0, 20))
	c.Emit(qspan(2, "cpu", 0, 5))
	s := SummarizePaths(AnalyzeCriticalPath(c.Events()))
	want := PathSummary{Queries: 2, TotalNS: 30, DiskNS: 4, CPUNS: 5, WaitNS: 21}
	if s != want {
		t.Errorf("summary = %+v, want %+v", s, want)
	}
}
