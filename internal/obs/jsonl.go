package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONLSink streams every trace event as one JSON object per line, the
// format of querytrace's machine-readable export. Emit is safe for
// concurrent use; the first write error is retained and later emits become
// no-ops.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps a writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line.
func (s *JSONLSink) Emit(ev TraceEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Err reports the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
