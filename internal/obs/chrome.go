package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// ChromeTracer collects trace events and writes them in the Chrome
// trace-event JSON format, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Each (node, category) pair becomes one named track
// (thread), and each BeginProcess call opens a new process group — one per
// simulated machine, so e.g. the strategies querytrace compares appear side
// by side in a single file.
//
// Emit is safe for concurrent use.
type ChromeTracer struct {
	mu     sync.Mutex
	pid    int
	names  map[int]string // pid -> process name
	events []pidEvent
}

type pidEvent struct {
	pid int
	ev  TraceEvent
}

// NewChromeTracer returns a tracer with a single anonymous process group.
func NewChromeTracer() *ChromeTracer {
	return &ChromeTracer{names: map[int]string{0: "sim"}}
}

// BeginProcess starts a new process group; subsequent events belong to it.
func (c *ChromeTracer) BeginProcess(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.events) > 0 || c.pid > 0 {
		c.pid++
	}
	c.names[c.pid] = name
}

// Emit records one event.
func (c *ChromeTracer) Emit(ev TraceEvent) {
	c.mu.Lock()
	c.events = append(c.events, pidEvent{pid: c.pid, ev: ev})
	c.mu.Unlock()
}

// Len reports the number of collected events.
func (c *ChromeTracer) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// chromeEvent is one entry of the trace-event format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// track identifies one thread row of the viewer.
type track struct {
	pid      int
	node     int
	category string
}

// categoryRank orders tracks within a node: query coordination first, then
// the operator layer, then the hardware resources.
func categoryRank(cat string) int {
	switch cat {
	case "query":
		return 0
	case "op":
		return 1
	case "cpu":
		return 2
	case "disk":
		return 3
	case "buffer":
		return 4
	case "net":
		return 5
	default:
		return 6
	}
}

func trackName(t track) string {
	if t.node == NoNode {
		return "host " + t.category
	}
	return "node" + itoa(t.node) + " " + t.category
}

// itoa avoids importing strconv for two-digit node ids on a cold path.
func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

// WriteJSON renders everything collected so far as one Chrome trace file.
func (c *ChromeTracer) WriteJSON(w io.Writer) error {
	c.mu.Lock()
	events := append([]pidEvent(nil), c.events...)
	names := make(map[int]string, len(c.names))
	for pid, name := range c.names {
		names[pid] = name
	}
	c.mu.Unlock()

	// Assign deterministic tids: host tracks first, then nodes ascending,
	// categories in rank order within a node.
	seen := map[track]bool{}
	var tracks []track
	for _, pe := range events {
		t := track{pid: pe.pid, node: pe.ev.Node, category: pe.ev.Category}
		if !seen[t] {
			seen[t] = true
			tracks = append(tracks, t)
		}
	}
	sort.Slice(tracks, func(i, j int) bool {
		a, b := tracks[i], tracks[j]
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		// NoNode (host) sorts before node 0.
		if a.node != b.node {
			return a.node < b.node
		}
		if ra, rb := categoryRank(a.category), categoryRank(b.category); ra != rb {
			return ra < rb
		}
		return a.category < b.category
	})
	tids := make(map[track]int, len(tracks))
	for i, t := range tracks {
		tids[t] = i
	}

	out := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	pids := make([]int, 0, len(names))
	for pid := range names {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": names[pid]},
		})
	}
	for i, t := range tracks {
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: "thread_name", Phase: "M", PID: t.pid, TID: i,
				Args: map[string]any{"name": trackName(t)},
			},
			chromeEvent{
				Name: "thread_sort_index", Phase: "M", PID: t.pid, TID: i,
				Args: map[string]any{"sort_index": i},
			})
	}

	// Fully deterministic order for the viewer and the golden test: by
	// (pid, start time, track, longer-span-first, name). Longer spans
	// first puts a parent before the children sharing its start time, and
	// the name tiebreak makes the order independent of Emit interleaving
	// when engines share one tracer from several goroutines.
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		if a.ev.T != b.ev.T {
			return a.ev.T < b.ev.T
		}
		ta := tids[track{pid: a.pid, node: a.ev.Node, category: a.ev.Category}]
		tb := tids[track{pid: b.pid, node: b.ev.Node, category: b.ev.Category}]
		if ta != tb {
			return ta < tb
		}
		if a.ev.Dur != b.ev.Dur {
			return a.ev.Dur > b.ev.Dur
		}
		return a.ev.Name < b.ev.Name
	})
	for _, pe := range events {
		ev := pe.ev
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Category,
			TS:   float64(ev.T) / 1e3, // ns -> us
			PID:  pe.pid,
			TID:  tids[track{pid: pe.pid, node: ev.Node, category: ev.Category}],
		}
		if ev.QueryID != 0 || ev.Detail != "" {
			ce.Args = map[string]any{}
			if ev.QueryID != 0 {
				ce.Args["query"] = ev.QueryID
			}
			if ev.Detail != "" {
				ce.Args["detail"] = ev.Detail
			}
		}
		switch ev.Kind {
		case KindSpan:
			ce.Phase = "X"
			dur := float64(ev.Dur) / 1e3
			ce.Dur = &dur
		case KindBegin:
			ce.Phase = "B"
		case KindEnd:
			ce.Phase = "E"
		default:
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	// encoding/json escapes quotes, backslashes, control characters and
	// (with HTML escaping on, the default we pin here) <, > and & — span
	// names carry operator text and error strings, so arbitrary bytes must
	// round-trip as valid JSON the Perfetto loader accepts.
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(true)
	return enc.Encode(out)
}
