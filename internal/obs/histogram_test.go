package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	// Values inside bucket i must map to i; the bucket covers
	// [Growth^i, Growth^(i+1)). Probe well inside the interval (exact edges
	// are at the mercy of floating-point log rounding, which only shifts a
	// boundary sample to the adjacent bucket — within the error bound).
	for _, i := range []int{-50, -10, -1, 0, 1, 10, 100, 300} {
		lo := math.Pow(Growth, float64(i))
		hi := math.Pow(Growth, float64(i+1))
		mid := (lo + hi) / 2
		if got := bucketIndex(mid); got != i {
			t.Errorf("bucketIndex(%g) = %d, want %d", mid, got, i)
		}
	}
	// A bucket's harmonic midpoint estimate is within the bound of every
	// value in the bucket.
	h := NewHistogram()
	h.Observe(100)
	got := h.Quantile(50)
	if rel := math.Abs(got-100) / 100; rel > MaxQuantileRelError {
		t.Errorf("single-sample quantile = %g, rel error %g > %g", got, rel, MaxQuantileRelError)
	}
}

func TestHistogramZeroBucket(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-3)
	h.Observe(5)
	if h.N() != 3 {
		t.Fatalf("n = %d", h.N())
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %g, want exact 0", got)
	}
	if got := h.Quantile(40); got != 0 {
		t.Errorf("p40 = %g, want exact 0 (2 of 3 samples non-positive)", got)
	}
	if got := h.Quantile(100); math.Abs(got-5)/5 > MaxQuantileRelError {
		t.Errorf("p100 = %g, want ~5", got)
	}
	if h.Min() != -3 || h.Max() != 5 {
		t.Errorf("min/max = %g/%g", h.Min(), h.Max())
	}
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	// Against an exact sort of the same samples, every quantile estimate
	// must be within MaxQuantileRelError of the nearest-rank order
	// statistic. Mixed scales stress many buckets at once.
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	var samples []float64
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.Float64()*12 - 3) // ~e^-3 .. e^9, log-uniform
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Float64s(samples)
	for _, p := range []float64{0, 1, 5, 10, 25, 50, 75, 90, 95, 99, 99.9, 100} {
		exact := samples[int64(p/100*float64(len(samples)-1))]
		got := h.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > MaxQuantileRelError+1e-12 {
			t.Errorf("p%g: estimate %g vs exact %g, rel error %g > %g",
				p, got, exact, rel, MaxQuantileRelError)
		}
	}
	// The mean is tracked exactly, not from buckets.
	var sum float64
	for _, v := range samples {
		sum += v
	}
	if got := h.Mean(); math.Abs(got-sum/float64(len(samples))) > 1e-9*sum {
		t.Errorf("mean = %g, want %g", got, sum/float64(len(samples)))
	}
}

func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([][]float64, 3)
	for i := range parts {
		for j := 0; j < 500; j++ {
			parts[i] = append(parts[i], math.Exp(rng.Float64()*8-2))
		}
	}
	fill := func(vals ...[]float64) *Histogram {
		h := NewHistogram()
		for _, vs := range vals {
			for _, v := range vs {
				h.Observe(v)
			}
		}
		return h
	}
	// (a+b)+c
	left := fill(parts[0])
	left.Merge(fill(parts[1]))
	left.Merge(fill(parts[2]))
	// a+(b+c)
	bc := fill(parts[1])
	bc.Merge(fill(parts[2]))
	right := fill(parts[0])
	right.Merge(bc)
	// direct
	direct := fill(parts[0], parts[1], parts[2])

	for _, p := range []float64{0, 25, 50, 90, 99, 100} {
		a, b, c := left.Quantile(p), right.Quantile(p), direct.Quantile(p)
		if a != b || b != c {
			t.Errorf("p%g differs by merge order: %g / %g / %g", p, a, b, c)
		}
	}
	if left.N() != direct.N() || right.N() != direct.N() {
		t.Errorf("n differs: %d / %d / %d", left.N(), right.N(), direct.N())
	}
	if left.Min() != direct.Min() || left.Max() != direct.Max() {
		t.Errorf("min/max differ after merge")
	}
}

func TestHistogramMergeEmptySides(t *testing.T) {
	a := NewHistogram()
	a.Observe(2)
	a.Merge(NewHistogram()) // non-empty <- empty
	if a.N() != 1 || a.Min() != 2 || a.Max() != 2 {
		t.Fatal("merge of empty changed state")
	}
	b := NewHistogram()
	b.Merge(a) // empty <- non-empty
	if b.N() != 1 || b.Min() != 2 || b.Max() != 2 {
		t.Fatal("merge into empty lost state")
	}
	a.Merge(nil) // nil other is a no-op
	if a.N() != 1 {
		t.Fatal("merge of nil changed state")
	}
}

func TestHistogramNilAndReset(t *testing.T) {
	var h *Histogram
	h.Observe(1) // no-op, no panic
	h.Merge(NewHistogram())
	h.Reset()
	if h.N() != 0 || h.Mean() != 0 || h.Quantile(50) != 0 {
		t.Fatal("nil histogram not zero-valued")
	}
	if (h.Stats() != HistogramStats{}) {
		t.Fatal("nil Stats not zero")
	}

	g := NewHistogram()
	g.Observe(10)
	g.Observe(20)
	g.Reset()
	if g.N() != 0 || g.Mean() != 0 || g.Max() != 0 {
		t.Fatal("reset did not clear")
	}
	g.Observe(7) // handle stays usable
	if g.N() != 1 || g.Min() != 7 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Stats()
	if s.N != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("stats header wrong: %+v", s)
	}
	checks := []struct {
		got, exact float64
	}{{s.P50, 500}, {s.P90, 900}, {s.P99, 990}}
	for _, c := range checks {
		if math.Abs(c.got-c.exact)/c.exact > MaxQuantileRelError+1e-12 {
			t.Errorf("quantile %g too far from %g", c.got, c.exact)
		}
	}
	if math.Abs(s.Mean-500.5) > 1e-9 {
		t.Errorf("mean = %g", s.Mean)
	}
}

func TestHistogramQuantileNegativeSamples(t *testing.T) {
	// All samples non-positive: every quantile must stay within
	// [min, max] — in particular not report 0 when max < 0.
	h := NewHistogram()
	for _, v := range []float64{-5, -3, -1} {
		h.Observe(v)
	}
	for _, p := range []float64{0, 25, 50, 75, 99, 100} {
		q := h.Quantile(p)
		if q < h.Min() || q > h.Max() {
			t.Errorf("all-negative Quantile(%g) = %g outside [%g, %g]",
				p, q, h.Min(), h.Max())
		}
	}

	// Mixed signs: low quantiles land in the zeros bucket (reported as 0,
	// inside the range), high quantiles in the positive buckets; the
	// estimate must be monotone in p and bounded throughout.
	m := NewHistogram()
	for i := -50; i <= 50; i++ {
		m.Observe(float64(i))
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 0.5 {
		q := m.Quantile(p)
		if q < m.Min() || q > m.Max() {
			t.Fatalf("mixed Quantile(%g) = %g outside [%g, %g]", p, q, m.Min(), m.Max())
		}
		if q < prev {
			t.Fatalf("Quantile not monotone: Quantile(%g) = %g < %g", p, q, prev)
		}
		prev = q
	}
}
