package obs

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"sync"
)

// SeriesKind says how a probe's raw reading becomes the stored sample.
type SeriesKind uint8

const (
	// SeriesGauge stores the probe's reading as-is (queue depth, credits,
	// skew): a point-in-time value.
	SeriesGauge SeriesKind = iota
	// SeriesCounter stores the cumulative reading as-is (completed queries,
	// disk reads): a monotone level whose slope is the rate.
	SeriesCounter
	// SeriesRate stores the per-second increase of a cumulative reading over
	// the window (goodput q/s, windowed utilization from busy-seconds):
	// (cur - prev) / window, clamped at 0 when the source was reset.
	SeriesRate
)

// String names the kind for exports.
func (k SeriesKind) String() string {
	switch k {
	case SeriesGauge:
		return "gauge"
	case SeriesCounter:
		return "counter"
	case SeriesRate:
		return "rate"
	}
	return "unknown"
}

// Probe reads one instrument's current value. Probes run on the simulation
// goroutine at window boundaries and must not block or allocate.
type Probe func() float64

// SeriesPoint is one (time, value) sample.
type SeriesPoint struct {
	TNS int64   `json:"t_ns"`
	V   float64 `json:"v"`
}

// SeriesData is the serializable form of one series, as archived in run
// results and harness manifests.
type SeriesData struct {
	Name     string        `json:"name"`
	Kind     string        `json:"kind"`
	WindowNS int64         `json:"window_ns"`
	Dropped  int64         `json:"dropped,omitempty"`
	Labels   string        `json:"labels,omitempty"`
	Points   []SeriesPoint `json:"points"`
}

// series is one registered probe plus its ring of sampled values, aligned
// with the sampler's shared timestamp ring.
type series struct {
	name   string
	labels string // pre-rendered OpenMetrics label list, without braces
	kind   SeriesKind
	probe  Probe
	prev   float64 // last raw reading (SeriesRate)
	vals   []float64
}

// Sampler scrapes registered probes at sim-time window boundaries into
// fixed-capacity rings: every series samples at the same instants, so the
// whole set is one aligned table. Sampling is allocation-free (the rings
// are pre-sized at Register time and overwrite the oldest window when
// full), and the schedule is driven by whoever calls Sample — in this
// repo a simulation process holding one window per iteration, so the
// sample times are simulated time, never wall clock, and the full series
// is a deterministic function of (seed, config).
//
// A nil *Sampler is the disabled state: every method no-ops. The mutex
// exists for the live /metrics endpoint, which snapshots concurrently
// with the simulation's Sample calls.
type Sampler struct {
	mu       sync.Mutex
	windowNS int64
	capacity int

	lastNS  int64 // time of the previous Sample (rate divisor)
	head    int   // ring start
	count   int   // live samples
	dropped int64 // overwritten samples
	times   []int64

	series []*series
	index  map[string]*series
}

// DefaultWindowNS is the sampling window used when none is given: 250
// simulated milliseconds.
const DefaultWindowNS = 250_000_000

// DefaultCapacity bounds each series ring when no capacity is given: 960
// windows (4 simulated minutes at the default window).
const DefaultCapacity = 960

// NewSampler builds a sampler with the given window (ns of simulated time)
// and per-series ring capacity; non-positive arguments take the defaults.
func NewSampler(windowNS int64, capacity int) *Sampler {
	if windowNS <= 0 {
		windowNS = DefaultWindowNS
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Sampler{
		windowNS: windowNS,
		capacity: capacity,
		times:    make([]int64, capacity),
		index:    make(map[string]*series),
	}
}

// WindowNS reports the sampling window in nanoseconds (0 on nil).
func (s *Sampler) WindowNS() int64 {
	if s == nil {
		return 0
	}
	return s.windowNS
}

// Register adds a named probe. Registration happens at machine/run
// construction (cold path); duplicate names panic — two components
// claiming one series is a wiring bug. No-op on a nil sampler.
func (s *Sampler) Register(name string, kind SeriesKind, probe Probe) {
	s.RegisterLabeled(name, "", kind, probe)
}

// RegisterLabeled is Register with a pre-rendered OpenMetrics label list
// (without braces, e.g. `fragment="TENK",node="3"`) attached to the
// series: WriteOpenMetrics merges it with the scrape-level labels, and
// Snapshot carries it so exporters can reconstruct dimensioned series.
// No-op on a nil sampler.
func (s *Sampler) RegisterLabeled(name, labels string, kind SeriesKind, probe Probe) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.index[name]; dup {
		panic(fmt.Sprintf("obs: duplicate series %q", name))
	}
	sr := &series{name: name, labels: labels, kind: kind, probe: probe, vals: make([]float64, s.capacity)}
	if kind == SeriesRate {
		sr.prev = probe()
	}
	s.index[name] = sr
	s.series = append(s.series, sr)
}

// Sample scrapes every probe at simulated time nowNS and appends one
// aligned sample per series, overwriting the oldest window when the rings
// are full. Calls that do not advance time are ignored. Allocation-free.
func (s *Sampler) Sample(nowNS int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dt := nowNS - s.lastNS
	if dt <= 0 {
		return
	}
	slot := (s.head + s.count) % s.capacity
	if s.count == s.capacity {
		s.head = (s.head + 1) % s.capacity
		s.dropped++
	} else {
		s.count++
	}
	s.times[slot] = nowNS
	dtSec := float64(dt) / 1e9
	for _, sr := range s.series {
		v := sr.probe()
		out := v
		if sr.kind == SeriesRate {
			delta := v - sr.prev
			if delta < 0 {
				// The source was reset underneath us (warm boundary without
				// a Rebase); a negative rate is never real.
				delta = 0
			}
			out = delta / dtSec
			sr.prev = v
		}
		sr.vals[slot] = out
	}
	s.lastNS = nowNS
}

// Rebase discards all history and re-primes every rate probe at simulated
// time nowNS — the warm-up boundary hook, called right after the machine
// resets its cumulative statistics so the first measured window does not
// see a negative delta. Gauge probes are invoked too (and their readings
// discarded) so closure-state probes re-prime their own deltas.
func (s *Sampler) Rebase(nowNS int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.head, s.count, s.dropped = 0, 0, 0
	s.lastNS = nowNS
	for _, sr := range s.series {
		v := sr.probe()
		if sr.kind == SeriesRate {
			sr.prev = v
		}
	}
}

// Len reports the number of live windows (0 on nil).
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Snapshot copies every series, sorted by name, oldest sample first.
// Returns nil on a nil sampler.
func (s *Sampler) Snapshot() []SeriesData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesData, 0, len(s.series))
	for _, sr := range s.series {
		d := SeriesData{
			Name:     sr.name,
			Kind:     sr.kind.String(),
			WindowNS: s.windowNS,
			Dropped:  s.dropped,
			Labels:   sr.labels,
			Points:   make([]SeriesPoint, s.count),
		}
		for i := 0; i < s.count; i++ {
			slot := (s.head + i) % s.capacity
			d.Points[i] = SeriesPoint{TNS: s.times[slot], V: sr.vals[slot]}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteCSV renders the sampler's current state as an aligned CSV table;
// see WriteSeriesCSV. No-op on nil.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	return WriteSeriesCSV(w, s.Snapshot())
}

// WriteSeriesCSV renders aligned series (same sample instants, as a
// Sampler produces) as one CSV table: a t_ms column followed by one column
// per series in the given order. Values print in Go's shortest-round-trip
// float format, so equal runs produce byte-identical files.
func WriteSeriesCSV(w io.Writer, series []SeriesData) error {
	if len(series) == 0 {
		return nil
	}
	var b []byte
	b = append(b, "t_ms"...)
	for _, sd := range series {
		b = append(b, ',')
		b = append(b, sd.Name...)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return err
	}
	rows := len(series[0].Points)
	for _, sd := range series {
		if len(sd.Points) != rows {
			return fmt.Errorf("obs: series %s has %d points, want %d (not sampled together)",
				sd.Name, len(sd.Points), rows)
		}
	}
	for i := 0; i < rows; i++ {
		b = b[:0]
		b = strconv.AppendFloat(b, float64(series[0].Points[i].TNS)/1e6, 'g', -1, 64)
		for _, sd := range series {
			b = append(b, ',')
			b = strconv.AppendFloat(b, sd.Points[i].V, 'g', -1, 64)
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// WriteOpenMetrics writes every series' latest value in OpenMetrics text
// exposition format, one gauge family per series (windowed rates are
// already values, not monotone totals). labels, when non-empty, is a
// pre-rendered label list without braces (e.g. `run="fig8a/magic"`).
// Series with no samples yet are skipped. No-op on nil.
func (s *Sampler) WriteOpenMetrics(w io.Writer, labels string) error {
	if s == nil {
		return nil
	}
	snap := s.Snapshot()
	names := make([]string, len(snap))
	for i := range snap {
		names[i] = snap[i].Name
	}
	sane := SanitizeMetricNames(names)
	for i, sd := range snap {
		if len(sd.Points) == 0 {
			continue
		}
		name := sane[i]
		all := labels
		if sd.Labels != "" {
			if all != "" {
				all += ","
			}
			all += sd.Labels
		}
		last := sd.Points[len(sd.Points)-1]
		var err error
		if all != "" {
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s{%s} %s\n",
				name, name, all, strconv.FormatFloat(last.V, 'g', -1, 64))
		} else {
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
				name, name, strconv.FormatFloat(last.V, 'g', -1, 64))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// SanitizeMetricNames sanitizes a set of series names together,
// deterministically disambiguating collisions: the lossy per-name mapping
// can fold two distinct names (e.g. "a.b" and "a,b") onto one OpenMetrics
// name, and when that happens within a set every colliding name gains a
// "_<fnv32a(original) hex>" suffix. Non-colliding names come out exactly
// as SanitizeMetricName produces them, so stable scrape contracts (e.g.
// serve_goodput_qps) never change. The result is positionally aligned
// with names.
func SanitizeMetricNames(names []string) []string {
	sane := make([]string, len(names))
	firstOriginal := make(map[string]string, len(names))
	collides := make(map[string]bool)
	for i, n := range names {
		s := SanitizeMetricName(n)
		sane[i] = s
		if prev, seen := firstOriginal[s]; seen {
			if prev != n {
				collides[s] = true
			}
		} else {
			firstOriginal[s] = n
		}
	}
	for i, n := range names {
		if collides[sane[i]] {
			h := fnv.New32a()
			io.WriteString(h, n)
			sane[i] = fmt.Sprintf("%s_%08x", sane[i], h.Sum32())
		}
	}
	return sane
}

// SanitizeMetricName maps a series name onto the OpenMetrics name charset:
// runs of characters outside [a-zA-Z0-9_:] become single underscores, and
// a leading digit gains one. The mapping is lossy — use
// SanitizeMetricNames when rendering a whole set, which disambiguates
// collisions deterministically.
func SanitizeMetricName(name string) string {
	ok := func(c byte) bool {
		return c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
	}
	b := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if ok(c) {
			b = append(b, c)
			continue
		}
		if len(b) == 0 || b[len(b)-1] != '_' {
			b = append(b, '_')
		}
	}
	if len(b) == 0 {
		return "_"
	}
	if b[0] >= '0' && b[0] <= '9' {
		b = append([]byte{'_'}, b...)
	}
	return string(b)
}
