package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestChromeTracerJSON(t *testing.T) {
	c := NewChromeTracer()
	c.BeginProcess("magic")
	c.Emit(TraceEvent{T: 0, Dur: 1_000_000, Node: 0, Kind: KindSpan, Category: "cpu", Name: "op", QueryID: 1})
	c.Emit(TraceEvent{T: 500_000, Node: 0, Kind: KindInstant, Category: "net", Name: "packet"})
	c.Emit(TraceEvent{T: 2_000_000, Dur: 3_000_000, Node: NoNode, Kind: KindSpan, Category: "query", Name: "q1", Detail: "5 tuples"})
	c.BeginProcess("berd")
	c.Emit(TraceEvent{T: 0, Dur: 500_000, Node: 2, Kind: KindSpan, Category: "disk", Name: "read p7"})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}

	procNames := map[int]string{}
	var spans, metas int
	for _, ev := range file.TraceEvents {
		switch ev.Phase {
		case "M":
			metas++
			if ev.Name == "process_name" {
				procNames[ev.PID] = ev.Args["name"].(string)
			}
		case "X":
			spans++
		}
	}
	if procNames[0] != "magic" || procNames[1] != "berd" {
		t.Errorf("process names = %v", procNames)
	}
	if spans != 3 {
		t.Errorf("span events = %d, want 3", spans)
	}
	if metas == 0 {
		t.Error("no metadata events")
	}
	for _, ev := range file.TraceEvents {
		if ev.Phase == "X" && ev.Name == "op" {
			if ev.TS != 0 || ev.Dur != 1000 { // ns -> us
				t.Errorf("span op ts/dur = %g/%g us", ev.TS, ev.Dur)
			}
			if ev.Args["query"].(float64) != 1 {
				t.Errorf("span op query arg = %v", ev.Args["query"])
			}
		}
		if ev.Phase == "X" && ev.Name == "q1" {
			if ev.Args["detail"].(string) != "5 tuples" {
				t.Errorf("detail arg = %v", ev.Args["detail"])
			}
		}
	}
}

func TestChromeTracerDeterministicTIDs(t *testing.T) {
	render := func() string {
		c := NewChromeTracer()
		// Emission order deliberately scrambled; tids must come out the
		// same because assignment sorts (node, category rank).
		c.Emit(TraceEvent{T: 3, Node: 1, Kind: KindSpan, Category: "disk", Name: "a"})
		c.Emit(TraceEvent{T: 1, Node: 0, Kind: KindSpan, Category: "cpu", Name: "b"})
		c.Emit(TraceEvent{T: 2, Node: NoNode, Kind: KindSpan, Category: "query", Name: "c"})
		c.Emit(TraceEvent{T: 0, Node: 0, Kind: KindInstant, Category: "net", Name: "d"})
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("ChromeTracer output not deterministic")
	}
}

func TestChromeTracerConcurrentEmit(t *testing.T) {
	// Multiple engines (harness workers) may share one tracer; Emit must be
	// race-free. Run with -race to make this meaningful.
	c := NewChromeTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Emit(TraceEvent{T: int64(i), Node: g, Kind: KindSpan, Category: "cpu", Name: "w"})
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 8*200 {
		t.Fatalf("Len = %d, want %d", c.Len(), 8*200)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace not valid JSON")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(TraceEvent{T: 10, Node: 2, Kind: KindSpan, Dur: 5, Category: "disk", Name: "read p1", QueryID: 3})
	s.Emit(TraceEvent{T: 20, Node: NoNode, Kind: KindInstant, Category: "net", Name: "packet"})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0]["kind"] != "span" || lines[0]["name"] != "read p1" || lines[0]["query"].(float64) != 3 {
		t.Errorf("first line = %v", lines[0])
	}
	if lines[1]["kind"] != "instant" || lines[1]["node"].(float64) != -1 {
		t.Errorf("second line = %v", lines[1])
	}
	if _, hasDur := lines[1]["dur_ns"]; hasDur {
		t.Error("instant event carries dur_ns")
	}
}

func TestJSONLSinkRetainsFirstError(t *testing.T) {
	s := NewJSONLSink(failWriter{})
	s.Emit(TraceEvent{Name: "x"})
	if s.Err() == nil {
		t.Fatal("write error not retained")
	}
	first := s.Err()
	s.Emit(TraceEvent{Name: "y"}) // must not clobber or panic
	if s.Err() != first {
		t.Fatal("first error not sticky")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }

func TestMultiSinkFanOut(t *testing.T) {
	var a, b []TraceEvent
	m := MultiSink{
		SinkFunc(func(ev TraceEvent) { a = append(a, ev) }),
		SinkFunc(func(ev TraceEvent) { b = append(b, ev) }),
	}
	m.Emit(TraceEvent{Name: "x"})
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("fan-out reached %d/%d sinks", len(a), len(b))
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInstant: "instant", KindBegin: "begin", KindEnd: "end",
		KindSpan: "span", Kind(99): "unknown",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
