package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFactoryDeterministic(t *testing.T) {
	a := NewFactory(42).Stream("disk")
	b := NewFactory(42).Stream("disk")
	for i := 0; i < 1000; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: streams from identical seeds diverged: %g vs %g", i, x, y)
		}
	}
}

func TestFactoryStreamsIndependent(t *testing.T) {
	f := NewFactory(42)
	a := f.Stream("disk")
	b := f.Stream("net")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams look correlated: %d/1000 identical draws", same)
	}
}

func TestFactoryDifferentSeedsDiffer(t *testing.T) {
	a := NewFactory(1).Stream("s")
	b := NewFactory(2).Stream("s")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestUniformBounds(t *testing.T) {
	s := NewSource("t", 7)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(3, 9)
		if v < 3 || v >= 9 {
			t.Fatalf("Uniform(3,9) produced %g", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	s := NewSource("t", 7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Uniform(0, 16.68)
	}
	mean := sum / n
	if math.Abs(mean-8.34) > 0.1 {
		t.Fatalf("Uniform(0,16.68) mean = %g, want ~8.34", mean)
	}
}

func TestIntRangeInclusive(t *testing.T) {
	s := NewSource("t", 11)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := s.IntRange(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("IntRange(2,5) produced %d", v)
		}
		seen[v] = true
	}
	for v := 2; v <= 5; v++ {
		if !seen[v] {
			t.Errorf("IntRange(2,5) never produced %d in 10000 draws", v)
		}
	}
}

func TestIntRangeSingleton(t *testing.T) {
	s := NewSource("t", 11)
	for i := 0; i < 100; i++ {
		if v := s.IntRange(4, 4); v != 4 {
			t.Fatalf("IntRange(4,4) = %d", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := NewSource("t", 13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exponential(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.1 {
		t.Fatalf("Exponential(5) mean = %g", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := NewSource("t", 17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %g", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource("t", 19)
	check := func(n uint8) bool {
		m := int(n%64) + 1
		p := s.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform with inverted bounds did not panic")
		}
	}()
	NewSource("t", 1).Uniform(5, 3)
}

func TestIntRangePanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange with inverted bounds did not panic")
		}
	}()
	NewSource("t", 1).IntRange(5, 3)
}

func TestStreamName(t *testing.T) {
	if got := NewFactory(1).Stream("disk").Name(); got != "disk" {
		t.Fatalf("Name() = %q", got)
	}
}
