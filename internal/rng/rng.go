// Package rng provides seeded, independent pseudo-random streams for the
// simulator. Every stochastic component of the model (disk rotational
// latency, workload generation, query arrival, attribute correlation noise)
// draws from its own stream so that changing one component's consumption
// pattern does not perturb the others — the classic "common random numbers"
// discipline used in discrete-event simulation studies such as the one this
// repository reproduces.
//
// All streams derive deterministically from a single experiment seed, so a
// run is fully reproducible from (seed, configuration).
package rng

import (
	"fmt"
	"math/rand"
)

// Source is a named, seeded random stream. It is a thin wrapper around
// math/rand.Rand with helpers for the distributions the simulator needs.
// A Source is not safe for concurrent use; the simulation kernel runs one
// process at a time, which is the only consumer.
type Source struct {
	name string
	rnd  *rand.Rand
}

// Factory derives independent named streams from one root seed.
type Factory struct {
	root int64
	next int64
}

// NewFactory returns a stream factory rooted at seed.
func NewFactory(seed int64) *Factory {
	return &Factory{root: seed}
}

// Stream returns a new independent stream. Streams are derived from the root
// seed and a per-factory counter mixed through SplitMix64, so distinct calls
// never share state and the derivation is stable across runs.
func (f *Factory) Stream(name string) *Source {
	f.next++
	seed := splitmix64(uint64(f.root) ^ splitmix64(uint64(f.next)))
	return &Source{
		name: name,
		rnd:  rand.New(rand.NewSource(int64(seed))),
	}
}

// splitmix64 is the standard SplitMix64 finalizer, used only to decorrelate
// derived seeds; the streams themselves use math/rand's generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewSource returns a standalone stream seeded directly. Prefer Factory for
// experiment code; this exists for tests and tools.
func NewSource(name string, seed int64) *Source {
	return &Source{name: name, rnd: rand.New(rand.NewSource(seed))}
}

// Name reports the stream's name (used in traces and error messages).
func (s *Source) Name() string { return s.name }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rnd.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("rng %s: Uniform bounds inverted: [%g, %g)", s.name, lo, hi))
	}
	return lo + (hi-lo)*s.rnd.Float64()
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (s *Source) Intn(n int) int { return s.rnd.Intn(n) }

// IntRange returns a uniform integer in [lo, hi] inclusive.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("rng %s: IntRange bounds inverted: [%d, %d]", s.name, lo, hi))
	}
	return lo + s.rnd.Intn(hi-lo+1)
}

// Exponential returns an exponentially distributed value with the given mean.
func (s *Source) Exponential(mean float64) float64 {
	return s.rnd.ExpFloat64() * mean
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rnd.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rnd.Perm(n) }

// Shuffle permutes the n elements addressed by swap in place.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rnd.Shuffle(n, swap) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rnd.Float64() < p }
