package fault

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// fakeDisk records the calls the injector makes, in order.
type fakeDisk struct{ calls []string }

func (d *fakeDisk) Fail()               { d.calls = append(d.calls, "fail") }
func (d *fakeDisk) Repair()             { d.calls = append(d.calls, "repair") }
func (d *fakeDisk) FailNextReads(n int) { d.calls = append(d.calls, fmt.Sprintf("transient(%d)", n)) }
func (d *fakeDisk) SetLatencyFactor(f float64) {
	d.calls = append(d.calls, fmt.Sprintf("degrade(%g)", f))
}

type fakeNode struct{ calls []string }

func (n *fakeNode) Crash()   { n.calls = append(n.calls, "crash") }
func (n *fakeNode) Restart() { n.calls = append(n.calls, "restart") }

type fakeNet struct{ calls []string }

func (n *fakeNet) DropNext(node, k int) {
	n.calls = append(n.calls, fmt.Sprintf("drop(%d,%d)", node, k))
}
func (n *fakeNet) DupNext(node, k int) { n.calls = append(n.calls, fmt.Sprintf("dup(%d,%d)", node, k)) }

// rig builds a 2-node machine of fakes with a run that lasts until the
// event queue drains (MTBF specs need a clock, so a sentinel keeps the
// engine alive for a second).
func rig(spec Spec, seed int64) (*View, []*fakeDisk, []*fakeNode, *fakeNet, []Record, error) {
	e := sim.New()
	disks := []*fakeDisk{{}, {}}
	nodes := []*fakeNode{{}, {}}
	net := &fakeNet{}
	view := NewView(2)
	targets := Targets{
		Disks: []DiskTarget{disks[0], disks[1]},
		Nodes: []NodeTarget{nodes[0], nodes[1]},
		Net:   net,
	}
	in := NewInjector(e, spec, view, targets, rng.NewFactory(seed))
	in.Start()
	err := e.RunUntil(sim.Time(sim.Second))
	return view, disks, nodes, net, in.Log(), err
}

func TestInjectorAppliesScheduledEvents(t *testing.T) {
	spec := Spec{Events: []Event{
		{At: sim.Millisecond, Kind: DiskFail, Node: 0},
		{At: 2 * sim.Millisecond, Kind: NodeCrash, Node: 1},
		{At: 3 * sim.Millisecond, Kind: DiskTransient, Node: 1, Count: 5},
		{At: 4 * sim.Millisecond, Kind: NetDrop, Node: 0, Count: 2},
		{At: 5 * sim.Millisecond, Kind: NetDup, Node: 1},
		{At: 6 * sim.Millisecond, Kind: DiskRepair, Node: 0},
		{At: 7 * sim.Millisecond, Kind: NodeRestart, Node: 1},
	}}
	view, disks, nodes, net, log, err := rig(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := disks[0].calls; !reflect.DeepEqual(got, []string{"fail", "repair"}) {
		t.Fatalf("disk 0 calls = %v", got)
	}
	if got := disks[1].calls; !reflect.DeepEqual(got, []string{"transient(5)"}) {
		t.Fatalf("disk 1 calls = %v", got)
	}
	if got := nodes[1].calls; !reflect.DeepEqual(got, []string{"crash", "restart"}) {
		t.Fatalf("node 1 calls = %v", got)
	}
	if got := net.calls; !reflect.DeepEqual(got, []string{"drop(0,2)", "dup(1,1)"}) {
		t.Fatalf("net calls = %v", got)
	}
	if !view.Available(0) || !view.Available(1) {
		t.Fatal("view should be fully healthy after repair + restart")
	}
	if len(log) != len(spec.Events) {
		t.Fatalf("log has %d records, want %d", len(log), len(spec.Events))
	}
	if log[0].Kind != "disk-fail" || log[0].T != int64(sim.Millisecond) {
		t.Fatalf("first record = %+v", log[0])
	}
}

// A window event (Dur > 0) schedules its own complementary restore.
func TestInjectorWindowEventsRestore(t *testing.T) {
	spec := Spec{Events: []Event{
		{At: sim.Millisecond, Kind: DiskFail, Node: 0, Dur: 2 * sim.Millisecond},
		{At: sim.Millisecond, Kind: NodeCrash, Node: 1, Dur: 3 * sim.Millisecond},
		{At: sim.Millisecond, Kind: DiskDegrade, Node: 1, Factor: 4, Dur: 2 * sim.Millisecond},
	}}
	view, disks, nodes, _, log, err := rig(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := disks[0].calls; !reflect.DeepEqual(got, []string{"fail", "repair"}) {
		t.Fatalf("disk 0 calls = %v", got)
	}
	if got := nodes[1].calls; !reflect.DeepEqual(got, []string{"crash", "restart"}) {
		t.Fatalf("node 1 calls = %v", got)
	}
	if got := disks[1].calls; !reflect.DeepEqual(got, []string{"degrade(4)", "degrade(1)"}) {
		t.Fatalf("disk 1 calls = %v", got)
	}
	if !view.Available(0) || !view.Available(1) {
		t.Fatal("view should recover after the windows close")
	}
	if len(log) != 6 {
		t.Fatalf("log has %d records, want 6 (3 faults + 3 restores)", len(log))
	}
}

// The determinism contract: same seed and spec, identical fault-event log —
// including the stochastic MTBF stream.
func TestInjectorDeterministicLog(t *testing.T) {
	spec := Spec{
		Events: []Event{{At: 10 * sim.Millisecond, Kind: DiskFail, Node: 0, Dur: 50 * sim.Millisecond}},
		MTBF:   20 * sim.Millisecond,
	}
	_, _, _, _, log1, err := rig(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, _, log2, err := rig(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(log1) < 10 {
		t.Fatalf("MTBF 20ms over a 1s run produced only %d records", len(log1))
	}
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("same seed+spec produced different logs:\n%v\n%v", log1, log2)
	}
	_, _, _, _, log3, err := rig(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(log1, log3) {
		t.Fatal("different seeds produced identical MTBF schedules")
	}
}

func TestSpecEnabled(t *testing.T) {
	var nilSpec *Spec
	if nilSpec.Enabled() {
		t.Fatal("nil spec enabled")
	}
	if (&Spec{}).Enabled() {
		t.Fatal("empty spec enabled")
	}
	cases := []Spec{
		{Events: []Event{{Kind: DiskFail}}},
		{MTBF: sim.Second},
		{NetDropP: 0.1},
		{NetDupP: 0.1},
	}
	for i, s := range cases {
		if !s.Enabled() {
			t.Fatalf("case %d should be enabled", i)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Events: []Event{{At: sim.Millisecond, Kind: NodeCrash, Node: 3}}, MTBF: sim.Second}
	if err := good.Validate(4); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []Spec{
		{Events: []Event{{At: -1, Kind: DiskFail}}},
		{Events: []Event{{Kind: Kind(99)}}},
		{Events: []Event{{Kind: DiskFail, Node: 4}}},
		{Events: []Event{{Kind: DiskFail, Node: -1}}},
		{Events: []Event{{Kind: DiskFail, Dur: -sim.Second}}},
		{MTBF: -sim.Second},
		{NetDropP: 1.5},
		{NetDupP: -0.1},
	}
	for i, s := range bad {
		if err := s.Validate(4); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(4); err != nil {
		t.Fatalf("nil spec rejected: %v", err)
	}
}

// Nil targets (or out-of-range nodes in partial rigs) make events no-ops
// rather than panics.
func TestInjectorToleratesMissingTargets(t *testing.T) {
	e := sim.New()
	view := NewView(4)
	spec := Spec{Events: []Event{
		{At: sim.Millisecond, Kind: DiskFail, Node: 3},
		{At: sim.Millisecond, Kind: NodeCrash, Node: 3},
		{At: sim.Millisecond, Kind: NetDrop, Node: 3},
	}}
	in := NewInjector(e, spec, view, Targets{}, nil)
	in.Start()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Count() != 3 {
		t.Fatalf("count = %d, want 3 (events still logged)", in.Count())
	}
	if view.Available(3) {
		t.Fatal("view must still track the failure")
	}
}
