// Package fault is the deterministic fault-injection subsystem. A Spec
// describes what goes wrong — scheduled fail-stop disks, transient I/O
// errors, latency degradation, node crash/restart windows, interconnect
// drop/duplication — and an Injector turns it into ordinary simulation
// events against the hardware and execution layers, so a run with a fixed
// seed and spec is exactly reproducible: same fault-event log, same figure
// output. With no spec armed, nothing in this package touches the
// simulation and runs stay byte-identical to a fault-free build.
//
// The package deliberately knows nothing about the concrete hardware or
// executor types: targets are small interfaces (DiskTarget, NodeTarget,
// NetTarget) that hw.Disk, exec.Node and hw.Network satisfy, which keeps
// the dependency arrow pointing from the machine assembly (internal/gamma)
// into here rather than the other way around.
package fault

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Kind enumerates the fault-event taxonomy (DESIGN.md §8).
type Kind int

const (
	// DiskFail fail-stops a node's disk: queued and in-flight requests
	// abort and new requests are rejected until DiskRepair.
	DiskFail Kind = iota
	// DiskRepair brings a fail-stopped disk back.
	DiskRepair
	// DiskTransient makes the disk's next Count reads fail once each.
	DiskTransient
	// DiskDegrade multiplies the disk's mechanism time by Factor (for Dur,
	// if set; Factor <= 1 restores nominal service).
	DiskDegrade
	// NodeCrash fail-silences a node: its inbox drops traffic and in-flight
	// operators' replies are suppressed, until NodeRestart.
	NodeCrash
	// NodeRestart brings a crashed node back (losing nothing but the
	// messages that arrived while it was down).
	NodeRestart
	// NetDrop discards the next Count logical messages addressed to Node.
	NetDrop
	// NetDup delivers the next Count logical messages addressed to Node
	// twice.
	NetDup
)

var kindNames = [...]string{
	DiskFail:      "disk-fail",
	DiskRepair:    "disk-repair",
	DiskTransient: "disk-transient",
	DiskDegrade:   "disk-degrade",
	NodeCrash:     "node-crash",
	NodeRestart:   "node-restart",
	NetDrop:       "net-drop",
	NetDup:        "net-dup",
}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one scheduled fault.
type Event struct {
	At   sim.Duration `json:"at"` // offset from the start of the run
	Kind Kind         `json:"kind"`
	Node int          `json:"node"`
	// Count sizes DiskTransient/NetDrop/NetDup bursts (default 1).
	Count int `json:"count,omitempty"`
	// Factor is the DiskDegrade latency multiplier (default 4).
	Factor float64 `json:"factor,omitempty"`
	// Dur bounds window kinds: a DiskFail/NodeCrash/DiskDegrade with Dur > 0
	// schedules its own repair/restart/restore Dur later. Dur == 0 means
	// the condition holds for the rest of the run.
	Dur sim.Duration `json:"dur,omitempty"`
}

func (e Event) count() int {
	if e.Count <= 0 {
		return 1
	}
	return e.Count
}

func (e Event) factor() float64 {
	if e.Factor <= 0 {
		return 4
	}
	return e.Factor
}

// Spec is a complete fault schedule for one run.
type Spec struct {
	// Events are applied at their At offsets, in slice order for equal
	// offsets.
	Events []Event `json:"events,omitempty"`
	// MTBF > 0 arms stochastic transient read errors: each disk draws
	// exponentially distributed inter-fault gaps with this mean from its
	// own rng stream, and at each fault its next read fails once.
	MTBF sim.Duration `json:"mtbf,omitempty"`
	// NetDropP / NetDupP are per-logical-message probabilities of loss and
	// duplication on the interconnect, drawn from a dedicated rng stream.
	NetDropP float64 `json:"net_drop_p,omitempty"`
	NetDupP  float64 `json:"net_dup_p,omitempty"`
}

// Enabled reports whether the spec injects anything at all.
func (s *Spec) Enabled() bool {
	return s != nil && (len(s.Events) > 0 || s.MTBF > 0 || s.NetDropP > 0 || s.NetDupP > 0)
}

// Validate checks the spec against a machine of the given node count.
func (s *Spec) Validate(nodes int) error {
	if s == nil {
		return nil
	}
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d: negative offset %v", i, ev.At)
		}
		if ev.Kind < 0 || int(ev.Kind) >= len(kindNames) {
			return fmt.Errorf("fault: event %d: unknown kind %d", i, int(ev.Kind))
		}
		if ev.Node < 0 || ev.Node >= nodes {
			return fmt.Errorf("fault: event %d: node %d out of range [0,%d)", i, ev.Node, nodes)
		}
		if ev.Dur < 0 {
			return fmt.Errorf("fault: event %d: negative duration %v", i, ev.Dur)
		}
	}
	if s.MTBF < 0 {
		return fmt.Errorf("fault: negative MTBF %v", s.MTBF)
	}
	if s.NetDropP < 0 || s.NetDropP > 1 || s.NetDupP < 0 || s.NetDupP > 1 {
		return fmt.Errorf("fault: drop/dup probabilities must be in [0,1]")
	}
	return nil
}

// Record is one applied fault in the run's fault-event log. The log is part
// of the determinism contract: two runs with the same seed and spec produce
// identical logs.
type Record struct {
	T      int64  `json:"t_ns"` // simulation time the fault was applied
	Kind   string `json:"kind"`
	Node   int    `json:"node"`
	Detail string `json:"detail,omitempty"`
}

// View is the host's (instantaneously consistent) picture of which nodes
// can serve requests; degraded-mode routing consults it before dispatching.
// The injector keeps it in step with the faults it applies.
type View struct {
	diskOK []bool
	nodeUp []bool
}

// NewView creates an all-healthy view over nodes nodes.
func NewView(nodes int) *View {
	v := &View{diskOK: make([]bool, nodes), nodeUp: make([]bool, nodes)}
	for i := range v.diskOK {
		v.diskOK[i] = true
		v.nodeUp[i] = true
	}
	return v
}

// Nodes reports the machine size the view covers.
func (v *View) Nodes() int { return len(v.diskOK) }

// DiskOK reports whether the node's disk is believed healthy.
func (v *View) DiskOK(node int) bool { return v.diskOK[node] }

// NodeUp reports whether the node itself is believed up.
func (v *View) NodeUp(node int) bool { return v.nodeUp[node] }

// Available reports whether the node can serve fragment requests: it is up
// and its disk works.
func (v *View) Available(node int) bool { return v.nodeUp[node] && v.diskOK[node] }

// SetDisk updates the disk-health belief for a node.
func (v *View) SetDisk(node int, ok bool) { v.diskOK[node] = ok }

// SetNode updates the liveness belief for a node.
func (v *View) SetNode(node int, up bool) { v.nodeUp[node] = up }

// DiskTarget is the disk surface the injector drives; hw.Disk satisfies it.
type DiskTarget interface {
	Fail()
	Repair()
	FailNextReads(n int)
	SetLatencyFactor(f float64)
}

// NodeTarget is the node surface the injector drives; exec.Node satisfies
// it.
type NodeTarget interface {
	Crash()
	Restart()
}

// NetTarget is the interconnect surface the injector drives; hw.Network
// satisfies it.
type NetTarget interface {
	DropNext(node, k int)
	DupNext(node, k int)
}

// Targets binds the injector to one machine's concrete components. Nil
// entries (or a nil Net) make the corresponding event kinds no-ops, which
// keeps partial test rigs easy to build.
type Targets struct {
	Disks []DiskTarget
	Nodes []NodeTarget
	Net   NetTarget
}

// Injector applies a Spec to a machine as ordinary simulation events.
type Injector struct {
	eng     *sim.Engine
	spec    Spec
	view    *View
	targets Targets
	streams *rng.Factory

	log     []Record
	faultsC *obs.Counter

	// OnEvent, when non-nil, observes every applied fault event after its
	// effect has taken hold. The machine layer uses it to promote permanent
	// node failures into rebalancer repair tasks.
	OnEvent func(Event)
}

// NewInjector builds an injector. streams supplies the MTBF processes'
// per-disk rng streams ("fault.mtbf.<node>"); it may be nil when the spec
// schedules explicit events only.
func NewInjector(eng *sim.Engine, spec Spec, view *View, targets Targets, streams *rng.Factory) *Injector {
	in := &Injector{eng: eng, spec: spec, view: view, targets: targets, streams: streams}
	if reg := eng.Metrics(); reg != nil {
		in.faultsC = reg.Counter("fault.injected")
	}
	return in
}

// Start schedules every event in the spec and spawns the MTBF fault
// processes. Call once, before the run begins.
func (in *Injector) Start() {
	for _, ev := range in.spec.Events {
		ev := ev
		in.eng.Schedule(ev.At, func() { in.apply(ev) })
	}
	if in.spec.MTBF > 0 && in.streams != nil {
		for i := range in.targets.Disks {
			i := i
			src := in.streams.Stream(fmt.Sprintf("fault.mtbf.%d", i))
			in.eng.Spawn(fmt.Sprintf("fault.mtbf.%d", i), func(p *sim.Proc) {
				for {
					p.Hold(sim.Duration(src.Exponential(float64(in.spec.MTBF))))
					if d := in.disk(i); d != nil {
						d.FailNextReads(1)
						in.record(DiskTransient, i, "mtbf")
					}
				}
			})
		}
	}
}

func (in *Injector) disk(node int) DiskTarget {
	if node < 0 || node >= len(in.targets.Disks) {
		return nil
	}
	return in.targets.Disks[node]
}

func (in *Injector) node(node int) NodeTarget {
	if node < 0 || node >= len(in.targets.Nodes) {
		return nil
	}
	return in.targets.Nodes[node]
}

// apply performs one event now, updates the host view, logs it, and — for
// window events — schedules the complementary restore.
func (in *Injector) apply(ev Event) {
	detail := ""
	switch ev.Kind {
	case DiskFail:
		if d := in.disk(ev.Node); d != nil {
			d.Fail()
		}
		in.view.SetDisk(ev.Node, false)
		if ev.Dur > 0 {
			restore := Event{At: ev.Dur, Kind: DiskRepair, Node: ev.Node}
			in.eng.Schedule(ev.Dur, func() { in.apply(restore) })
			detail = fmt.Sprintf("for %v", ev.Dur)
		}
	case DiskRepair:
		if d := in.disk(ev.Node); d != nil {
			d.Repair()
		}
		in.view.SetDisk(ev.Node, true)
	case DiskTransient:
		if d := in.disk(ev.Node); d != nil {
			d.FailNextReads(ev.count())
		}
		detail = fmt.Sprintf("next %d reads", ev.count())
	case DiskDegrade:
		f := ev.factor()
		if d := in.disk(ev.Node); d != nil {
			d.SetLatencyFactor(f)
		}
		detail = fmt.Sprintf("x%.2g", f)
		if ev.Dur > 0 && f > 1 {
			restore := Event{At: ev.Dur, Kind: DiskDegrade, Node: ev.Node, Factor: 1}
			in.eng.Schedule(ev.Dur, func() { in.apply(restore) })
			detail += fmt.Sprintf(" for %v", ev.Dur)
		}
	case NodeCrash:
		if n := in.node(ev.Node); n != nil {
			n.Crash()
		}
		in.view.SetNode(ev.Node, false)
		if ev.Dur > 0 {
			restore := Event{At: ev.Dur, Kind: NodeRestart, Node: ev.Node}
			in.eng.Schedule(ev.Dur, func() { in.apply(restore) })
			detail = fmt.Sprintf("for %v", ev.Dur)
		}
	case NodeRestart:
		if n := in.node(ev.Node); n != nil {
			n.Restart()
		}
		in.view.SetNode(ev.Node, true)
	case NetDrop:
		if in.targets.Net != nil {
			in.targets.Net.DropNext(ev.Node, ev.count())
		}
		detail = fmt.Sprintf("next %d msgs", ev.count())
	case NetDup:
		if in.targets.Net != nil {
			in.targets.Net.DupNext(ev.Node, ev.count())
		}
		detail = fmt.Sprintf("next %d msgs", ev.count())
	}
	in.record(ev.Kind, ev.Node, detail)
	if in.OnEvent != nil {
		in.OnEvent(ev)
	}
}

// record appends to the fault-event log and mirrors the fault into metrics
// and the trace.
func (in *Injector) record(k Kind, node int, detail string) {
	in.log = append(in.log, Record{T: int64(in.eng.Now()), Kind: k.String(), Node: node, Detail: detail})
	in.faultsC.Inc()
	if in.eng.Tracing() {
		name := k.String()
		if detail != "" {
			name += " " + detail
		}
		in.eng.EmitNow(obs.TraceEvent{
			Node: node, Kind: obs.KindInstant, Category: "fault", Name: name,
		})
	}
}

// Log returns the fault-event log in application order.
func (in *Injector) Log() []Record { return in.log }

// Count reports the number of faults applied so far.
func (in *Injector) Count() int { return len(in.log) }
