// Package harness orchestrates simulation campaigns: it executes a set of
// independent jobs on a bounded worker pool, isolates each job behind
// recover() and an optional wall-clock budget so one panicking or hung
// simulation becomes a structured failure record instead of a crashed
// campaign, emits live progress/ETA lines, and records a JSON run manifest
// (per-job wall time, worker count, speedup versus back-to-back execution)
// for archiving next to experiment results.
//
// The harness is deliberately generic: it knows nothing about figures,
// strategies or the Gamma machine. internal/experiments decomposes a
// figure list into a job set and feeds it here; anything else with
// independent units of work can do the same.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
)

// Job is one independent unit of work. Run must be self-contained: the
// harness may execute it on any worker goroutine, so everything it touches
// concurrently with other jobs must be immutable or job-private.
type Job struct {
	// ID identifies the job in progress lines and the manifest
	// (e.g. "fig8a/magic/mpl32").
	ID string
	// Seed is recorded in the manifest so a failed job can be replayed in
	// isolation.
	Seed int64
	// Run does the work and returns its result. A panic inside Run is
	// recovered and recorded as a job failure.
	Run func() (any, error)
}

// Options configure one Execute call.
type Options struct {
	// Workers bounds concurrency; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// JobTimeout is each job's wall-clock budget; 0 disables it. A
	// timed-out job is abandoned (Go cannot kill its goroutine; it keeps
	// running until it returns, its result discarded) and recorded as a
	// failure. Negative budgets are a configuration error, rejected by
	// Execute before any job runs.
	JobTimeout time.Duration
	// Progress receives a live "k/n done, eta" line per completed job;
	// nil disables progress output.
	Progress io.Writer
	// Label names the campaign in the manifest and progress lines.
	Label string
	// IsTransient classifies a job error as transient. A job that fails
	// with a transient error is retried once with the same seed before
	// being recorded as a failure; the manifest's Attempts field exposes
	// the retry. Nil disables retries.
	IsTransient func(error) bool
}

// JobReport is one job's manifest entry.
type JobReport struct {
	ID     string  `json:"id"`
	Seed   int64   `json:"seed"`
	WallMS float64 `json:"wall_ms"`
	// Attempts counts executions of the job: 1 normally, 2 when a
	// transient failure triggered the automatic same-seed retry.
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
	Panicked bool   `json:"panicked,omitempty"`
	TimedOut bool   `json:"timed_out,omitempty"`
	// FaultEvents is the number of injected faults the job's run applied
	// (filled by the caller from the run result; the harness itself knows
	// nothing about fault injection).
	FaultEvents int `json:"fault_events,omitempty"`
	// Arrival and OfferedQPS record the open-system workload of the job —
	// the arrival-process kind ("poisson", "bursty", "diurnal") and the
	// offered load in queries/second. Filled by the caller for open-system
	// campaigns; zero for closed-loop jobs, where the workload is the MPL
	// encoded in the job ID.
	Arrival    string  `json:"arrival,omitempty"`
	OfferedQPS float64 `json:"offered_qps,omitempty"`
	// TimeSeries carries the job's windowed telemetry snapshot when the
	// campaign ran with sampling armed. Filled by the caller from the run
	// result, like FaultEvents.
	TimeSeries []obs.SeriesData `json:"time_series,omitempty"`
	// HotFragments carries the job's hot-fragment report when the campaign
	// ran with fragment heat accounting armed. Filled by the caller from
	// the run result, like FaultEvents.
	HotFragments []obs.HotFragment `json:"hot_fragments,omitempty"`
}

// Failed reports whether the job ended in any failure (error, panic, or
// timeout).
func (r JobReport) Failed() bool { return r.Error != "" }

// Env records the toolchain and host a campaign ran under, so archived
// manifests are comparable across machines and Go releases.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CaptureEnv snapshots the current process environment.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Manifest summarizes one Execute call.
type Manifest struct {
	Label   string `json:"label,omitempty"`
	Env     Env    `json:"env"`
	Workers int    `json:"workers"`
	Jobs    int    `json:"jobs"`
	Failed  int    `json:"failed"`
	// WallMS is the end-to-end wall time of the pool; SumJobMS is the sum
	// of per-job wall times — what a back-to-back serial execution of the
	// same jobs would have cost.
	WallMS   float64 `json:"wall_ms"`
	SumJobMS float64 `json:"sum_job_ms"`
	// Speedup is SumJobMS / WallMS.
	Speedup float64     `json:"speedup"`
	Reports []JobReport `json:"job_reports"`
}

// Failures returns the reports of the jobs that failed, in job order.
func (m Manifest) Failures() []JobReport {
	var out []JobReport
	for _, r := range m.Reports {
		if r.Failed() {
			out = append(out, r)
		}
	}
	return out
}

// Err returns nil when every job succeeded, otherwise an error naming the
// first failure and the failure count.
func (m Manifest) Err() error {
	fails := m.Failures()
	if len(fails) == 0 {
		return nil
	}
	return fmt.Errorf("harness: %d of %d jobs failed (first: %s: %s)",
		len(fails), m.Jobs, fails[0].ID, fails[0].Error)
}

// Write encodes the manifest as indented JSON.
func (m Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Merge combines the manifests of campaigns run back to back (e.g. the
// figure sweep followed by the scale-out sweep) into one: job reports
// concatenate, wall times add, and the speedup is recomputed over the
// union.
func Merge(label string, ms ...Manifest) Manifest {
	out := Manifest{Label: label, Env: CaptureEnv()}
	for _, m := range ms {
		if m.Workers > out.Workers {
			out.Workers = m.Workers
		}
		out.Jobs += m.Jobs
		out.Failed += m.Failed
		out.WallMS += m.WallMS
		out.SumJobMS += m.SumJobMS
		out.Reports = append(out.Reports, m.Reports...)
	}
	if out.WallMS > 0 {
		out.Speedup = out.SumJobMS / out.WallMS
	}
	return out
}

// jobResult crosses from the job goroutine back to its worker. The channel
// carrying it is buffered so an abandoned (timed-out) job's send never
// blocks and its late result is simply dropped — nothing it computed is
// published, which keeps Execute race-free even when jobs overrun their
// budget.
type jobResult struct {
	value    any
	err      error
	panicked bool
}

// runAttempt executes the job's Run once under recover() and the wall-clock
// budget; timedOut marks an abandoned attempt.
func runAttempt(job Job, budget time.Duration) (res jobResult, timedOut bool) {
	ch := make(chan jobResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- jobResult{
					err:      fmt.Errorf("panic: %v\n%s", r, debug.Stack()),
					panicked: true,
				}
			}
		}()
		v, err := job.Run()
		ch <- jobResult{value: v, err: err}
	}()

	if budget > 0 {
		timer := time.NewTimer(budget)
		select {
		case res = <-ch:
			timer.Stop()
		case <-timer.C:
			return jobResult{}, true
		}
	} else {
		res = <-ch
	}
	return res, false
}

// runOne executes a single job, retrying once with the same seed when the
// failure is transient per opts.IsTransient. Timeouts and panics never
// retry: an abandoned goroutine is still running, and a panic is a bug.
func runOne(job Job, opts Options) (any, JobReport) {
	rep := JobReport{ID: job.ID, Seed: job.Seed}
	start := time.Now()
	for {
		rep.Attempts++
		res, timedOut := runAttempt(job, opts.JobTimeout)
		if timedOut {
			rep.WallMS = msSince(start)
			rep.TimedOut = true
			rep.Error = fmt.Sprintf("timed out after %v (job abandoned)", opts.JobTimeout)
			return nil, rep
		}
		if res.err != nil {
			if rep.Attempts == 1 && !res.panicked &&
				opts.IsTransient != nil && opts.IsTransient(res.err) {
				continue
			}
			rep.WallMS = msSince(start)
			rep.Error = res.err.Error()
			rep.Panicked = res.panicked
			return nil, rep
		}
		rep.WallMS = msSince(start)
		return res.value, rep
	}
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }

// Execute runs the jobs on a bounded worker pool and returns their values
// (indexed like jobs; nil for failed jobs) plus the run manifest. The error
// reports invalid Options only — per-job failures are in the manifest; use
// Manifest.Err to turn them into one.
func Execute(jobs []Job, opts Options) ([]any, Manifest, error) {
	if opts.JobTimeout < 0 {
		return nil, Manifest{}, fmt.Errorf("harness: negative job timeout %v", opts.JobTimeout)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	values := make([]any, len(jobs))
	reports := make([]JobReport, len(jobs))
	start := time.Now()

	var (
		mu    sync.Mutex
		done  int
		sumMS float64
	)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				v, rep := runOne(jobs[i], opts)
				values[i], reports[i] = v, rep
				mu.Lock()
				done++
				sumMS += rep.WallMS
				if opts.Progress != nil {
					progressLine(opts, rep, done, len(jobs), workers, sumMS, time.Since(start))
				}
				mu.Unlock()
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	m := Manifest{
		Label:    opts.Label,
		Env:      CaptureEnv(),
		Workers:  workers,
		Jobs:     len(jobs),
		WallMS:   msSince(start),
		SumJobMS: sumMS,
		Reports:  reports,
	}
	for _, r := range reports {
		if r.Failed() {
			m.Failed++
		}
	}
	if m.WallMS > 0 {
		m.Speedup = m.SumJobMS / m.WallMS
	}
	return values, m, nil
}

// progressLine prints one completion line with a remaining-time estimate:
// mean job cost times the jobs left, spread over the workers.
func progressLine(opts Options, rep JobReport, done, total, workers int, sumMS float64, elapsed time.Duration) {
	prefix := ""
	if opts.Label != "" {
		prefix = opts.Label + ": "
	}
	status := "done"
	if rep.Failed() {
		status = "FAILED"
	}
	etaMS := sumMS / float64(done) * float64(total-done) / float64(workers)
	fmt.Fprintf(opts.Progress, "%s%d/%d jobs, %s %s in %.1fs, elapsed %.1fs, eta %.0fs\n",
		prefix, done, total, rep.ID, status, rep.WallMS/1000,
		elapsed.Seconds(), etaMS/1000)
}
