package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func okJob(id string, v any) Job {
	return Job{ID: id, Run: func() (any, error) { return v, nil }}
}

func TestExecuteReturnsValuesInJobOrder(t *testing.T) {
	var jobs []Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, okJob(fmt.Sprintf("job%d", i), i*i))
	}
	values, m, _ := Execute(jobs, Options{Workers: 4})
	if len(values) != 20 {
		t.Fatalf("values = %d", len(values))
	}
	for i, v := range values {
		if v.(int) != i*i {
			t.Fatalf("values[%d] = %v", i, v)
		}
	}
	if m.Jobs != 20 || m.Failed != 0 || m.Workers != 4 {
		t.Fatalf("manifest = %+v", m)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if len(m.Reports) != 20 || m.Reports[3].ID != "job3" {
		t.Fatalf("reports misaligned: %+v", m.Reports[:4])
	}
	if m.Speedup <= 0 {
		t.Fatalf("speedup = %v", m.Speedup)
	}
}

func TestExecuteBoundsConcurrency(t *testing.T) {
	var running, peak atomic.Int32
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, Job{ID: fmt.Sprintf("j%d", i), Run: func() (any, error) {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
			return nil, nil
		}})
	}
	_, m, _ := Execute(jobs, Options{Workers: 3})
	if got := peak.Load(); got > 3 {
		t.Fatalf("observed %d concurrent jobs with 3 workers", got)
	}
	if m.Failed != 0 {
		t.Fatalf("failures: %+v", m.Failures())
	}
}

// A panicking job must become a structured failure record, not a crashed
// campaign; the other jobs' values must survive.
func TestPanicIsolation(t *testing.T) {
	jobs := []Job{
		okJob("before", "a"),
		{ID: "boom", Seed: 42, Run: func() (any, error) { panic("injected") }},
		okJob("after", "b"),
	}
	values, m, _ := Execute(jobs, Options{Workers: 2})
	if values[0] != "a" || values[2] != "b" {
		t.Fatalf("survivor values lost: %v", values)
	}
	if values[1] != nil {
		t.Fatalf("panicked job produced a value: %v", values[1])
	}
	fails := m.Failures()
	if len(fails) != 1 || fails[0].ID != "boom" || !fails[0].Panicked {
		t.Fatalf("failures = %+v", fails)
	}
	if fails[0].Seed != 42 {
		t.Fatalf("failure lost the replay seed: %+v", fails[0])
	}
	if !strings.Contains(fails[0].Error, "injected") {
		t.Fatalf("failure lost the panic value: %q", fails[0].Error)
	}
	if err := m.Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Err = %v", err)
	}
}

func TestJobError(t *testing.T) {
	jobs := []Job{
		{ID: "bad", Run: func() (any, error) { return nil, errors.New("nope") }},
		okJob("good", 7),
	}
	values, m, _ := Execute(jobs, Options{Workers: 1})
	if values[0] != nil || values[1] != 7 {
		t.Fatalf("values = %v", values)
	}
	if m.Failed != 1 || m.Reports[0].Error != "nope" || m.Reports[0].Panicked {
		t.Fatalf("reports = %+v", m.Reports)
	}
}

// A hung job must be abandoned at its wall-clock budget and recorded as a
// timeout; the pool must keep draining the remaining jobs.
func TestJobTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	jobs := []Job{
		{ID: "hung", Seed: 9, Run: func() (any, error) {
			<-release // simulates a simulation that never completes
			return "late", nil
		}},
		okJob("quick", 1),
		okJob("quick2", 2),
	}
	values, m, _ := Execute(jobs, Options{Workers: 2, JobTimeout: 20 * time.Millisecond})
	if values[0] != nil {
		t.Fatalf("timed-out job published a value: %v", values[0])
	}
	if values[1] != 1 || values[2] != 2 {
		t.Fatalf("other jobs lost: %v", values)
	}
	fails := m.Failures()
	if len(fails) != 1 || !fails[0].TimedOut || fails[0].ID != "hung" {
		t.Fatalf("failures = %+v", fails)
	}
}

func TestDefaultWorkersAndEmptyJobSet(t *testing.T) {
	values, m, _ := Execute(nil, Options{})
	if len(values) != 0 || m.Jobs != 0 || m.Failed != 0 {
		t.Fatalf("empty run: %v %+v", values, m)
	}
	if m.Workers < 1 {
		t.Fatalf("defaulted workers = %d", m.Workers)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

func TestProgressLines(t *testing.T) {
	var buf bytes.Buffer
	jobs := []Job{okJob("a", 1), okJob("b", 2), {ID: "c", Run: func() (any, error) {
		return nil, errors.New("x")
	}}}
	_, _, _ = Execute(jobs, Options{Workers: 1, Progress: &buf, Label: "camp"})
	out := buf.String()
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("want one line per job:\n%s", out)
	}
	for _, want := range []string{"camp: ", "1/3 jobs", "3/3 jobs", "eta", "FAILED"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress missing %q:\n%s", want, out)
		}
	}
}

func TestManifestWriteAndMerge(t *testing.T) {
	_, m1, _ := Execute([]Job{okJob("a", 1)}, Options{Workers: 2, Label: "one"})
	_, m2, _ := Execute([]Job{okJob("b", 2), {ID: "bad", Run: func() (any, error) {
		return nil, errors.New("x")
	}}}, Options{Workers: 4, Label: "two"})

	merged := Merge("both", m1, m2)
	if merged.Jobs != 3 || merged.Failed != 1 || merged.Workers != 4 {
		t.Fatalf("merged = %+v", merged)
	}
	if merged.WallMS < m1.WallMS || merged.WallMS < m2.WallMS {
		t.Fatalf("merged wall %.3f < parts %.3f/%.3f", merged.WallMS, m1.WallMS, m2.WallMS)
	}
	if len(merged.Reports) != 3 {
		t.Fatalf("reports = %d", len(merged.Reports))
	}

	var buf bytes.Buffer
	if err := merged.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"label": "both"`, `"workers": 4`, `"job_reports"`, `"wall_ms"`, `"speedup"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("manifest JSON missing %q:\n%s", want, buf.String())
		}
	}
}

func TestManifestRecordsEnv(t *testing.T) {
	_, m, _ := Execute([]Job{{ID: "a", Run: func() (any, error) { return 1, nil }}}, Options{Workers: 1})
	if m.Env.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", m.Env.GoVersion, runtime.Version())
	}
	if m.Env.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("GOMAXPROCS = %d, want %d", m.Env.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if m.Env.NumCPU != runtime.NumCPU() {
		t.Errorf("NumCPU = %d, want %d", m.Env.NumCPU, runtime.NumCPU())
	}

	// The env survives serialization and merging.
	merged := Merge("both", m, m)
	if merged.Env != m.Env {
		t.Errorf("merged env = %+v", merged.Env)
	}
	var buf bytes.Buffer
	if err := merged.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Env != m.Env {
		t.Errorf("round-tripped env = %+v", back.Env)
	}
}

func TestNegativeJobTimeoutIsAnError(t *testing.T) {
	values, m, err := Execute([]Job{okJob("a", 1)}, Options{Workers: 1, JobTimeout: -time.Second})
	if err == nil {
		t.Fatal("negative budget did not error")
	}
	if values != nil || m.Jobs != 0 {
		t.Fatalf("rejected run still produced output: %v %+v", values, m)
	}
}

func TestZeroJobTimeoutMeansNoBudget(t *testing.T) {
	_, m, err := Execute([]Job{okJob("a", 1)}, Options{Workers: 1, JobTimeout: 0})
	if err != nil || m.Failed != 0 {
		t.Fatalf("zero budget run failed: %v %+v", err, m.Failures())
	}
}

func TestManifestRecordsAttempts(t *testing.T) {
	_, m, _ := Execute([]Job{okJob("a", 1)}, Options{Workers: 1})
	if m.Reports[0].Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", m.Reports[0].Attempts)
	}
}

// A transient job failure gets exactly one automatic same-seed retry; a
// persistent one fails after the second attempt.
func TestTransientRetry(t *testing.T) {
	transient := errors.New("transient wobble")
	isTransient := func(err error) bool { return errors.Is(err, transient) }

	var flaky atomic.Int32
	jobs := []Job{
		{ID: "flaky", Seed: 5, Run: func() (any, error) {
			if flaky.Add(1) == 1 {
				return nil, transient
			}
			return "recovered", nil
		}},
		{ID: "doomed", Run: func() (any, error) { return nil, transient }},
		{ID: "hard", Run: func() (any, error) { return nil, errors.New("hard failure") }},
	}
	values, m, err := Execute(jobs, Options{Workers: 1, IsTransient: isTransient})
	if err != nil {
		t.Fatal(err)
	}
	if values[0] != "recovered" {
		t.Fatalf("flaky job not retried: %v", values[0])
	}
	if m.Reports[0].Attempts != 2 || m.Reports[0].Failed() {
		t.Fatalf("flaky report = %+v", m.Reports[0])
	}
	if m.Reports[1].Attempts != 2 || !m.Reports[1].Failed() {
		t.Fatalf("doomed report = %+v", m.Reports[1])
	}
	if m.Reports[2].Attempts != 1 || !m.Reports[2].Failed() {
		t.Fatalf("hard failure retried: %+v", m.Reports[2])
	}
}

// Without an IsTransient classifier no failure retries.
func TestNoRetryWithoutClassifier(t *testing.T) {
	var calls atomic.Int32
	jobs := []Job{{ID: "j", Run: func() (any, error) {
		calls.Add(1)
		return nil, errors.New("x")
	}}}
	_, m, _ := Execute(jobs, Options{Workers: 1})
	if calls.Load() != 1 || m.Reports[0].Attempts != 1 {
		t.Fatalf("calls = %d, attempts = %d", calls.Load(), m.Reports[0].Attempts)
	}
}

func TestManifestOpenSystemFieldsRoundTrip(t *testing.T) {
	m := Manifest{
		Label:   "open",
		Workers: 2,
		Jobs:    2,
		Reports: []JobReport{
			{ID: "fig8a/magic/poisson400", Seed: 7, WallMS: 12.5, Attempts: 1,
				Arrival: "poisson", OfferedQPS: 400},
			{ID: "fig8a/magic/mpl4", Seed: 7, WallMS: 3.25, Attempts: 1},
		},
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// The closed-loop job must omit the open-system keys entirely.
	text := buf.String()
	if n := strings.Count(text, "\"arrival\""); n != 1 {
		t.Fatalf("want exactly 1 arrival key (omitempty on closed-loop jobs), got %d in:\n%s", n, text)
	}
	if n := strings.Count(text, "\"offered_qps\""); n != 1 {
		t.Fatalf("want exactly 1 offered_qps key, got %d in:\n%s", n, text)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Reports, back.Reports) {
		t.Fatalf("reports did not round-trip:\n got %+v\nwant %+v", back.Reports, m.Reports)
	}
	if back.Reports[0].Arrival != "poisson" || back.Reports[0].OfferedQPS != 400 {
		t.Fatalf("open-system fields lost: %+v", back.Reports[0])
	}
}
