package gridfile

import (
	"testing"

	"repro/internal/rng"
)

func BenchmarkInsert20k(b *testing.B) {
	src := rng.NewSource("b", 1)
	perm := src.Perm(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(25, []float64{1, 1}, [][2]int64{{0, 19999}, {0, 19999}})
		for j := 0; j < 20000; j++ {
			g.Insert([]int64{int64(perm[j]), int64(j)}, j)
		}
	}
}

func BenchmarkCellsCoveringColumn(b *testing.B) {
	g := New(25, []float64{1, 1}, [][2]int64{{0, 19999}, {0, 19999}})
	src := rng.NewSource("b", 1)
	perm := src.Perm(20000)
	for j := 0; j < 20000; j++ {
		g.Insert([]int64{int64(perm[j]), int64(j)}, j)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CellsCovering([][2]int64{{10000, 10000}, {0, 19999}})
	}
}
