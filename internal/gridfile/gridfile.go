// Package gridfile implements the insertion phase of the grid file
// [NHS84] as MAGIC uses it: tuples are inserted one at a time into a
// K-dimensional directory; when a cell (fragment) exceeds its capacity FC,
// one whole slice of a dimension is split in two, with the dimension chosen
// by a caller-supplied splitting-frequency policy (MAGIC's Fraction_Splits,
// Equation 4 of the paper). The resulting directory — linear scales plus a
// K-dimensional array of cells — is exactly the structure MAGIC stores in
// the database catalog and the query optimizer searches to localize
// selections.
package gridfile

import (
	"fmt"
	"sort"
)

// Grid is a K-dimensional grid directory under construction or completed.
type Grid struct {
	k        int
	capacity int
	weights  []float64 // relative splitting frequency per dimension
	bounds   [][2]int64
	scales   [][]int64 // ascending interior split points per dimension
	dims     []int     // number of intervals per dimension (= len(scales[d])+1)
	cells    [][]int   // flat row-major cell -> tuple ids
	points   [][]int64 // id -> point (ids must be dense from 0)
	splits   []int     // splits performed per dimension
	total    int       // total splits
	inserted int
	overflow int // cells left over capacity because no dimension could split
	maxCells int // directory-size cap; 0 = unlimited
}

// New creates an empty grid. capacity is the fragment cardinality FC;
// weights are the per-dimension splitting frequencies (any positive scale,
// only ratios matter — MAGIC passes Fraction_Splits); bounds give each
// dimension's value domain [lo, hi] inclusive, used to pick split midpoints.
func New(capacity int, weights []float64, bounds [][2]int64) *Grid {
	k := len(weights)
	if k == 0 {
		panic("gridfile: need at least one dimension")
	}
	if len(bounds) != k {
		panic(fmt.Sprintf("gridfile: %d weights but %d bounds", k, len(bounds)))
	}
	if capacity < 1 {
		panic(fmt.Sprintf("gridfile: capacity %d must be >= 1", capacity))
	}
	sum := 0.0
	for d, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("gridfile: negative weight %g for dimension %d", w, d))
		}
		sum += w
		if bounds[d][0] > bounds[d][1] {
			panic(fmt.Sprintf("gridfile: inverted bounds for dimension %d", d))
		}
	}
	if sum == 0 {
		panic("gridfile: all splitting weights are zero")
	}
	g := &Grid{
		k:        k,
		capacity: capacity,
		weights:  append([]float64(nil), weights...),
		bounds:   append([][2]int64(nil), bounds...),
		scales:   make([][]int64, k),
		dims:     make([]int, k),
		cells:    make([][]int, 1),
		splits:   make([]int, k),
	}
	for d := range g.dims {
		g.dims[d] = 1
	}
	return g
}

// K reports the number of dimensions.
func (g *Grid) K() int { return g.k }

// Dims reports the number of intervals per dimension (the paper's Ni).
func (g *Grid) Dims() []int { return append([]int(nil), g.dims...) }

// NumCells reports the total number of directory entries.
func (g *Grid) NumCells() int { return len(g.cells) }

// Inserted reports the number of tuples inserted.
func (g *Grid) Inserted() int { return g.inserted }

// OverflowCells reports how many splits were abandoned because no dimension
// had a splittable interval (heavily duplicated values) or the directory-size
// cap was reached.
func (g *Grid) OverflowCells() int { return g.overflow }

// SetMaxCells caps the directory size: once a split would push NumCells past
// n, cells are allowed to exceed the fragment capacity instead (an overflow
// fragment). Without a cap, highly correlated insertions — all points on a
// diagonal — would force O((n/FC)^2) directory entries, since splitting a
// whole slice cannot separate co-located diagonal points; real grid files
// bound this with shared buckets, MAGIC by accepting oversized fragments.
// n <= 0 removes the cap.
func (g *Grid) SetMaxCells(n int) { g.maxCells = n }

// MaxCells reports the directory-size cap (0 = unlimited).
func (g *Grid) MaxCells() int { return g.maxCells }

// Capacity reports the fragment capacity FC.
func (g *Grid) Capacity() int { return g.capacity }

// Bounds returns the inclusive value domain of a dimension.
func (g *Grid) Bounds(dim int) (lo, hi int64) { return g.bounds[dim][0], g.bounds[dim][1] }

// Scale returns the interior split points of a dimension.
func (g *Grid) Scale(dim int) []int64 { return append([]int64(nil), g.scales[dim]...) }

// Insert adds a point with a dense id (0,1,2,... in insertion order),
// splitting slices as cells overflow.
func (g *Grid) Insert(point []int64, id int) {
	if len(point) != g.k {
		panic(fmt.Sprintf("gridfile: point has %d dims, grid has %d", len(point), g.k))
	}
	if id != len(g.points) {
		panic(fmt.Sprintf("gridfile: ids must be dense; got %d, want %d", id, len(g.points)))
	}
	for d := range point {
		if point[d] < g.bounds[d][0] || point[d] > g.bounds[d][1] {
			panic(fmt.Sprintf("gridfile: point[%d]=%d outside bounds [%d,%d]",
				d, point[d], g.bounds[d][0], g.bounds[d][1]))
		}
	}
	g.points = append(g.points, append([]int64(nil), point...))
	ci := g.flatIndex(g.Locate(point))
	g.cells[ci] = append(g.cells[ci], id)
	g.inserted++
	for len(g.cells[ci]) > g.capacity {
		if !g.split(ci) {
			g.overflow++
			break
		}
		// The split may have moved the overflowing tuples elsewhere; find
		// the cell our point now lives in and re-check.
		ci = g.flatIndex(g.Locate(point))
	}
}

// Locate returns the per-dimension interval coordinates of a point.
func (g *Grid) Locate(point []int64) []int {
	coord := make([]int, g.k)
	for d := 0; d < g.k; d++ {
		coord[d] = g.interval(d, point[d])
	}
	return coord
}

// interval returns the index of the interval of dimension d containing v:
// intervals are [lo, s0), [s0, s1), ..., [sLast, hi].
func (g *Grid) interval(d int, v int64) int {
	s := g.scales[d]
	return sort.Search(len(s), func(i int) bool { return s[i] > v })
}

// IntervalRange returns the interval index range [from, to] of dimension d
// overlapping the value range [lo, hi].
func (g *Grid) IntervalRange(d int, lo, hi int64) (from, to int) {
	return g.interval(d, lo), g.interval(d, hi)
}

// FlatIndex converts coordinates to the row-major flat cell index.
func (g *Grid) FlatIndex(coord []int) int { return g.flatIndex(coord) }

// flatIndex converts coordinates to the row-major flat cell index.
func (g *Grid) flatIndex(coord []int) int {
	idx := 0
	for d := 0; d < g.k; d++ {
		idx = idx*g.dims[d] + coord[d]
	}
	return idx
}

// Coord converts a flat cell index back to coordinates.
func (g *Grid) Coord(flat int) []int {
	coord := make([]int, g.k)
	for d := g.k - 1; d >= 0; d-- {
		coord[d] = flat % g.dims[d]
		flat /= g.dims[d]
	}
	return coord
}

// Cell returns the tuple ids in the flat cell (caller must not mutate).
func (g *Grid) Cell(flat int) []int { return g.cells[flat] }

// CellCount returns the number of tuples in the flat cell.
func (g *Grid) CellCount(flat int) int { return len(g.cells[flat]) }

// split splits the slice containing the overflowing flat cell. It picks the
// dimension with the largest splitting-frequency deficit whose interval (at
// this cell) is still divisible, splits that interval at its value midpoint
// across the whole dimension, and redistributes affected cells. Returns
// false if no dimension can split.
func (g *Grid) split(flat int) bool {
	coord := g.Coord(flat)
	d := -1
	var bestScore float64
	sumW := 0.0
	for _, w := range g.weights {
		sumW += w
	}
	for cand := 0; cand < g.k; cand++ {
		lo, hi := g.intervalBounds(cand, coord[cand])
		if hi-lo < 2 || g.weights[cand] == 0 {
			continue // interval holds a single value or dimension frozen
		}
		// Splitting dimension cand grows the directory by cells/dims[cand]
		// entries; respect the directory-size cap.
		if g.maxCells > 0 && len(g.cells)+len(g.cells)/g.dims[cand] > g.maxCells {
			continue
		}
		// Deficit scheduling: dimension whose split share lags its weight
		// share the most goes first (ties to the lower dimension index).
		score := g.weights[cand]*float64(g.total+1) - float64(g.splits[cand])*sumW
		if d == -1 || score > bestScore {
			d, bestScore = cand, score
		}
	}
	if d == -1 {
		return false
	}
	lo, hi := g.intervalBounds(d, coord[d])
	mid := lo + (hi-lo)/2 // new boundary: left interval [lo,mid), right [mid,hi)
	g.insertBoundary(d, coord[d], mid)
	g.splits[d]++
	g.total++
	return true
}

// intervalBounds returns the value range [lo, hi) of interval i of dimension
// d, using the domain bounds at the edges (hi is exclusive: domain hi + 1).
func (g *Grid) intervalBounds(d, i int) (lo, hi int64) {
	s := g.scales[d]
	lo = g.bounds[d][0]
	if i > 0 {
		lo = s[i-1]
	}
	hi = g.bounds[d][1] + 1
	if i < len(s) {
		hi = s[i]
	}
	return lo, hi
}

// insertBoundary adds split point v after interval `at` of dimension d,
// growing the directory by one slice and redistributing the split slice.
func (g *Grid) insertBoundary(d, at int, v int64) {
	// New scales.
	s := g.scales[d]
	s = append(s, 0)
	copy(s[at+1:], s[at:])
	s[at] = v
	g.scales[d] = s

	oldDims := append([]int(nil), g.dims...)
	g.dims[d]++
	newCells := make([][]int, len(g.cells)/oldDims[d]*g.dims[d])

	// Re-map every old cell into the grown directory.
	for flat, ids := range g.cells {
		coord := coordOf(flat, oldDims)
		switch {
		case coord[d] < at:
			newCells[flatOf(coord, g.dims)] = ids
		case coord[d] > at:
			coord[d]++
			newCells[flatOf(coord, g.dims)] = ids
		default:
			// The split slice: partition ids by the new boundary.
			var left, right []int
			for _, id := range ids {
				if g.points[id][d] < v {
					left = append(left, id)
				} else {
					right = append(right, id)
				}
			}
			newCells[flatOf(coord, g.dims)] = left
			coord[d]++
			newCells[flatOf(coord, g.dims)] = right
		}
	}
	g.cells = newCells
}

func coordOf(flat int, dims []int) []int {
	coord := make([]int, len(dims))
	for d := len(dims) - 1; d >= 0; d-- {
		coord[d] = flat % dims[d]
		flat /= dims[d]
	}
	return coord
}

func flatOf(coord, dims []int) int {
	idx := 0
	for d := 0; d < len(dims); d++ {
		idx = idx*dims[d] + coord[d]
	}
	return idx
}

// CellsCovering returns the flat indices of all cells intersecting the
// hyper-rectangle given by inclusive value ranges per dimension (the cells a
// query predicate maps to). A dimension without a predicate should pass the
// full domain.
func (g *Grid) CellsCovering(ranges [][2]int64) []int {
	if len(ranges) != g.k {
		panic(fmt.Sprintf("gridfile: %d ranges for %d dimensions", len(ranges), g.k))
	}
	from := make([]int, g.k)
	to := make([]int, g.k)
	for d := 0; d < g.k; d++ {
		if ranges[d][0] > ranges[d][1] {
			return nil
		}
		from[d], to[d] = g.IntervalRange(d, ranges[d][0], ranges[d][1])
	}
	var out []int
	coord := append([]int(nil), from...)
	for {
		out = append(out, g.flatIndex(coord))
		d := g.k - 1
		for d >= 0 {
			coord[d]++
			if coord[d] <= to[d] {
				break
			}
			coord[d] = from[d]
			d--
		}
		if d < 0 {
			return out
		}
	}
}

// Validate checks structural invariants: scales sorted and in bounds, cell
// array size consistent with dims, every tuple in exactly the cell its point
// locates to, and total tuples preserved.
func (g *Grid) Validate() error {
	expect := 1
	for d, n := range g.dims {
		if n != len(g.scales[d])+1 {
			return fmt.Errorf("gridfile: dim %d has %d intervals but %d split points",
				d, n, len(g.scales[d]))
		}
		for i := 1; i < len(g.scales[d]); i++ {
			if g.scales[d][i-1] >= g.scales[d][i] {
				return fmt.Errorf("gridfile: dim %d scale not strictly increasing", d)
			}
		}
		for _, s := range g.scales[d] {
			if s <= g.bounds[d][0] || s > g.bounds[d][1] {
				return fmt.Errorf("gridfile: dim %d split %d outside domain (%d,%d]",
					d, s, g.bounds[d][0], g.bounds[d][1])
			}
		}
		expect *= n
	}
	if len(g.cells) != expect {
		return fmt.Errorf("gridfile: %d cells for dims %v", len(g.cells), g.dims)
	}
	count := 0
	for flat, ids := range g.cells {
		for _, id := range ids {
			if got := g.flatIndex(g.Locate(g.points[id])); got != flat {
				return fmt.Errorf("gridfile: tuple %d stored in cell %d but locates to %d",
					id, flat, got)
			}
		}
		count += len(ids)
	}
	if count != g.inserted {
		return fmt.Errorf("gridfile: inserted %d but cells hold %d", g.inserted, count)
	}
	return nil
}
