package gridfile

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func uniformGrid(t *testing.T, n, capacity int, weights []float64) *Grid {
	t.Helper()
	g := New(capacity, weights, [][2]int64{{0, int64(n - 1)}, {0, int64(n - 1)}})
	src := rng.NewSource("g", 11)
	perm := src.Perm(n)
	for i := 0; i < n; i++ {
		g.Insert([]int64{int64(perm[i]), int64(i)}, i)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid grid: %v", err)
	}
	return g
}

func TestInsertAndLocate(t *testing.T) {
	g := New(2, []float64{1, 1}, [][2]int64{{0, 99}, {0, 99}})
	pts := [][]int64{{10, 10}, {20, 20}, {30, 30}, {80, 80}, {90, 5}}
	for i, p := range pts {
		g.Insert(p, i)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Inserted() != 5 {
		t.Fatalf("inserted = %d", g.Inserted())
	}
	if g.NumCells() < 2 {
		t.Fatal("grid never split despite overflow")
	}
	// Every point must be found in its located cell.
	for i, p := range pts {
		flat := g.flatIndex(g.Locate(p))
		found := false
		for _, id := range g.Cell(flat) {
			if id == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("point %d not in its cell", i)
		}
	}
}

func TestCapacityRespectedForUniqueValues(t *testing.T) {
	g := uniformGrid(t, 2000, 25, []float64{1, 1})
	for flat := 0; flat < g.NumCells(); flat++ {
		if c := g.CellCount(flat); c > 25 {
			t.Fatalf("cell %d holds %d tuples, capacity 25", flat, c)
		}
	}
	if g.OverflowCells() != 0 {
		t.Fatalf("unexpected overflow cells: %d", g.OverflowCells())
	}
}

func TestEqualWeightsGiveSquarishDirectory(t *testing.T) {
	g := uniformGrid(t, 5000, 25, []float64{1, 1})
	dims := g.Dims()
	ratio := float64(dims[0]) / float64(dims[1])
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("dims %v not squarish for equal weights", dims)
	}
}

// The paper splits attribute B nine times more often than A for the
// low-moderate mix, yielding a 23x193-shaped directory: verify the split
// ratio roughly tracks the weights.
func TestWeightedSplitRatio(t *testing.T) {
	g := uniformGrid(t, 5000, 25, []float64{1, 9})
	dims := g.Dims()
	ratio := float64(dims[1]) / float64(dims[0])
	if ratio < 4 || ratio > 16 {
		t.Fatalf("dims %v: dim1/dim0 = %g, want ~9", dims, ratio)
	}
}

func TestZeroWeightDimensionNeverSplits(t *testing.T) {
	g := uniformGrid(t, 1000, 25, []float64{0, 1})
	if dims := g.Dims(); dims[0] != 1 {
		t.Fatalf("frozen dimension split: dims = %v", dims)
	}
}

func TestCorrelatedDataProducesEmptyCells(t *testing.T) {
	// Identical attributes: all points on the diagonal. Off-diagonal cells
	// must be empty, and splits must still succeed (values are unique).
	n := 2000
	g := New(25, []float64{1, 1}, [][2]int64{{0, int64(n - 1)}, {0, int64(n - 1)}})
	for i := 0; i < n; i++ {
		g.Insert([]int64{int64(i), int64(i)}, i)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := 0
	for flat := 0; flat < g.NumCells(); flat++ {
		if g.CellCount(flat) == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatal("diagonal data should leave empty cells")
	}
	for flat := 0; flat < g.NumCells(); flat++ {
		if c := g.CellCount(flat); c > 25 {
			t.Fatalf("cell %d overflows: %d", flat, c)
		}
	}
}

func TestDuplicateValuesOverflowGracefully(t *testing.T) {
	// All points identical: no dimension can ever split.
	g := New(2, []float64{1, 1}, [][2]int64{{0, 10}, {0, 10}})
	for i := 0; i < 10; i++ {
		g.Insert([]int64{5, 5}, i)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.OverflowCells() == 0 {
		t.Fatal("expected overflow to be recorded")
	}
	if g.NumCells() != 1 && g.CellCount(g.flatIndex(g.Locate([]int64{5, 5}))) != 10 {
		t.Fatal("all duplicates must stay in one cell")
	}
}

func TestIntervalRange(t *testing.T) {
	g := uniformGrid(t, 1000, 25, []float64{1, 1})
	from, to := g.IntervalRange(0, 0, 999)
	if from != 0 || to != g.Dims()[0]-1 {
		t.Fatalf("full range = [%d,%d], dims %v", from, to, g.Dims())
	}
	f2, t2 := g.IntervalRange(0, 500, 500)
	if f2 != t2 {
		t.Fatalf("point range spans [%d,%d]", f2, t2)
	}
}

func TestCellsCoveringRowAndColumn(t *testing.T) {
	g := uniformGrid(t, 2000, 25, []float64{1, 1})
	dims := g.Dims()
	// A point predicate on dim 0 with full range on dim 1 covers one column.
	col := g.CellsCovering([][2]int64{{500, 500}, {0, 1999}})
	if len(col) != dims[1] {
		t.Fatalf("column covers %d cells, want %d", len(col), dims[1])
	}
	row := g.CellsCovering([][2]int64{{0, 1999}, {500, 500}})
	if len(row) != dims[0] {
		t.Fatalf("row covers %d cells, want %d", len(row), dims[0])
	}
	all := g.CellsCovering([][2]int64{{0, 1999}, {0, 1999}})
	if len(all) != g.NumCells() {
		t.Fatalf("full cover = %d cells, want %d", len(all), g.NumCells())
	}
}

func TestCellsCoveringEmptyRange(t *testing.T) {
	g := uniformGrid(t, 100, 25, []float64{1, 1})
	if cells := g.CellsCovering([][2]int64{{5, 4}, {0, 99}}); cells != nil {
		t.Fatalf("inverted range covered %d cells", len(cells))
	}
}

// Property: every inserted point is discoverable through CellsCovering with
// a point predicate on both dimensions.
func TestPointQueriesFindTheirTuple(t *testing.T) {
	g := uniformGrid(t, 3000, 20, []float64{1, 3})
	src := rng.NewSource("q", 5)
	for trial := 0; trial < 200; trial++ {
		id := src.Intn(3000)
		pt := []int64{g.points[id][0], g.points[id][1]}
		cells := g.CellsCovering([][2]int64{{pt[0], pt[0]}, {pt[1], pt[1]}})
		if len(cells) != 1 {
			t.Fatalf("point query covered %d cells", len(cells))
		}
		found := false
		for _, got := range g.Cell(cells[0]) {
			if got == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("tuple %d not found via point query", id)
		}
	}
}

// Property: range queries over the grid return a superset of the matching
// tuples and no cell outside the cover contains a match.
func TestRangeCoverCompleteProperty(t *testing.T) {
	g := uniformGrid(t, 2000, 25, []float64{1, 1})
	check := func(loRaw, width uint16) bool {
		lo := int64(loRaw) % 2000
		hi := lo + int64(width%200)
		if hi > 1999 {
			hi = 1999
		}
		cover := map[int]bool{}
		for _, c := range g.CellsCovering([][2]int64{{lo, hi}, {0, 1999}}) {
			cover[c] = true
		}
		// Every tuple with dim0 value in [lo,hi] must be in a covered cell.
		for id, pt := range g.points {
			if pt[0] >= lo && pt[0] <= hi {
				if !cover[g.flatIndex(g.Locate(g.points[id]))] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCountsMatchDims(t *testing.T) {
	g := uniformGrid(t, 2000, 25, []float64{1, 1})
	dims := g.Dims()
	if g.splits[0] != dims[0]-1 || g.splits[1] != dims[1]-1 {
		t.Fatalf("splits %v vs dims %v", g.splits, dims)
	}
	if g.total != g.splits[0]+g.splits[1] {
		t.Fatal("total splits inconsistent")
	}
}

func TestFragmentSizesRoughlyUniform(t *testing.T) {
	g := uniformGrid(t, 10000, 25, []float64{1, 1})
	var sum, n float64
	for flat := 0; flat < g.NumCells(); flat++ {
		sum += float64(g.CellCount(flat))
		n++
	}
	mean := sum / n
	if math.Abs(mean-float64(10000)/n) > 1e-9 {
		t.Fatal("mean inconsistent")
	}
	// With uniform data the average cell should hold a reasonable fraction
	// of capacity (not pathologically empty).
	if mean < 5 {
		t.Fatalf("mean occupancy %g too low for capacity 25", mean)
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := []func(){
		func() { New(0, []float64{1}, [][2]int64{{0, 1}}) },
		func() { New(2, nil, nil) },
		func() { New(2, []float64{1, 1}, [][2]int64{{0, 1}}) },
		func() { New(2, []float64{-1, 1}, [][2]int64{{0, 1}, {0, 1}}) },
		func() { New(2, []float64{0, 0}, [][2]int64{{0, 1}, {0, 1}}) },
		func() { New(2, []float64{1, 1}, [][2]int64{{5, 1}, {0, 1}}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: constructor accepted bad arguments", i)
				}
			}()
			fn()
		}()
	}
}

func TestInsertValidation(t *testing.T) {
	g := New(2, []float64{1, 1}, [][2]int64{{0, 9}, {0, 9}})
	for i, fn := range []func(){
		func() { g.Insert([]int64{1}, 0) },      // wrong dims
		func() { g.Insert([]int64{1, 1}, 5) },   // non-dense id
		func() { g.Insert([]int64{100, 1}, 0) }, // out of bounds
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: Insert accepted bad arguments", i)
				}
			}()
			fn()
		}()
	}
}

func TestCoordRoundTrip(t *testing.T) {
	g := uniformGrid(t, 2000, 25, []float64{1, 2})
	for flat := 0; flat < g.NumCells(); flat++ {
		if got := g.flatIndex(g.Coord(flat)); got != flat {
			t.Fatalf("coord round trip %d -> %d", flat, got)
		}
	}
}

func TestThreeDimensionalGrid(t *testing.T) {
	g := New(10, []float64{1, 1, 1}, [][2]int64{{0, 999}, {0, 999}, {0, 999}})
	src := rng.NewSource("3d", 13)
	for i := 0; i < 1000; i++ {
		g.Insert([]int64{int64(src.Intn(1000)), int64(src.Intn(1000)), int64(src.Intn(1000))}, i)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.K() != 3 {
		t.Fatalf("K = %d", g.K())
	}
	cells := g.CellsCovering([][2]int64{{0, 999}, {500, 500}, {0, 999}})
	dims := g.Dims()
	if len(cells) != dims[0]*dims[2] {
		t.Fatalf("3D slab covers %d cells, want %d", len(cells), dims[0]*dims[2])
	}
}
