// Package btree implements a page-based B+-tree for the storage engine's
// clustered and non-clustered indexes (and BERD's auxiliary relations). The
// tree is an in-memory structure, but every node carries a physical disk
// page number and all operations report the exact sequence of pages they
// touch, so the simulator can charge real I/O and CPU costs for index
// traversals.
//
// Keys are int64 attribute values; duplicates are allowed (a non-clustered
// index on a non-unique attribute stores one entry per tuple). Values are
// caller-defined (tuple IDs, slot numbers, or processor IDs).
package btree

import (
	"fmt"
	"sort"
)

// Entry is one leaf-level (key, value) pair.
type Entry struct {
	Key int64
	Val int64
}

// Path records the disk pages an operation touched, in access order:
// interior pages from the root down, then leaf pages left to right.
type Path struct {
	Interior []int
	Leaves   []int
}

// Pages returns all touched pages in access order.
func (p Path) Pages() []int {
	out := make([]int, 0, len(p.Interior)+len(p.Leaves))
	out = append(out, p.Interior...)
	out = append(out, p.Leaves...)
	return out
}

type node struct {
	page     int
	leaf     bool
	keys     []int64 // interior: len(children)-1 separators
	children []*node
	entries  []Entry
	next     *node // leaf sibling chain
}

// Tree is a B+-tree with configurable interior fanout and leaf capacity.
type Tree struct {
	fanout  int // max children per interior node
	leafCap int // max entries per leaf
	alloc   func() int
	root    *node
	height  int // 1 = just a leaf
	size    int
	pages   int
}

// New creates an empty tree. fanout and leafCap must each be at least 2 and
// at least 3 respectively for splits to make progress; alloc must return a
// fresh physical page number per call (the storage layer's disk allocator).
func New(fanout, leafCap int, alloc func() int) *Tree {
	if fanout < 3 {
		panic(fmt.Sprintf("btree: fanout %d too small (need >= 3)", fanout))
	}
	if leafCap < 2 {
		panic(fmt.Sprintf("btree: leaf capacity %d too small (need >= 2)", leafCap))
	}
	t := &Tree{fanout: fanout, leafCap: leafCap, alloc: alloc}
	t.root = t.newNode(true)
	t.height = 1
	return t
}

func (t *Tree) newNode(leaf bool) *node {
	t.pages++
	return &node{page: t.alloc(), leaf: leaf}
}

// Bulk builds the tree from entries, which must be sorted by key (stable
// order among duplicates is preserved). Bulk panics if the tree is not
// empty. Leaves are filled to capacity, matching a freshly loaded database.
func (t *Tree) Bulk(entries []Entry) {
	if t.size != 0 {
		panic("btree: Bulk on non-empty tree")
	}
	if !sort.SliceIsSorted(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key }) {
		panic("btree: Bulk entries not sorted")
	}
	if len(entries) == 0 {
		return
	}
	// Reuse the pre-allocated empty root as the first leaf.
	leaves := []*node{t.root}
	t.root.leaf = true
	for i := 0; i < len(entries); i += t.leafCap {
		end := i + t.leafCap
		if end > len(entries) {
			end = len(entries)
		}
		var n *node
		if i == 0 {
			n = leaves[0]
		} else {
			n = t.newNode(true)
			leaves[len(leaves)-1].next = n
			leaves = append(leaves, n)
		}
		n.entries = append(n.entries, entries[i:end]...)
	}
	t.size = len(entries)
	// Build interior levels bottom-up.
	level := leaves
	t.height = 1
	for len(level) > 1 {
		var parents []*node
		for i := 0; i < len(level); i += t.fanout {
			end := i + t.fanout
			if end > len(level) {
				end = len(level)
			}
			p := t.newNode(false)
			p.children = append(p.children, level[i:end]...)
			for j := i + 1; j < end; j++ {
				p.keys = append(p.keys, minKey(level[j]))
			}
			parents = append(parents, p)
		}
		level = parents
		t.height++
	}
	t.root = level[0]
}

func minKey(n *node) int64 {
	for !n.leaf {
		n = n.children[0]
	}
	return n.entries[0].Key
}

// Insert adds one entry, splitting nodes as needed. Duplicate keys are
// allowed; the new entry goes after existing equal keys.
func (t *Tree) Insert(e Entry) {
	mid, right := t.insert(t.root, e)
	if right != nil {
		newRoot := t.newNode(false)
		newRoot.keys = []int64{mid}
		newRoot.children = []*node{t.root, right}
		t.root = newRoot
		t.height++
	}
	t.size++
}

// insert descends to a leaf; on overflow the child splits and (separator,
// new right sibling) propagates upward.
func (t *Tree) insert(n *node, e Entry) (int64, *node) {
	if n.leaf {
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].Key > e.Key })
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		if len(n.entries) <= t.leafCap {
			return 0, nil
		}
		// Split leaf.
		mid := len(n.entries) / 2
		right := t.newNode(true)
		right.entries = append(right.entries, n.entries[mid:]...)
		n.entries = n.entries[:mid]
		right.next = n.next
		n.next = right
		return right.entries[0].Key, right
	}
	ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > e.Key })
	sep, right := t.insert(n.children[ci], e)
	if right == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.children) <= t.fanout {
		return 0, nil
	}
	// Split interior node.
	midIdx := len(n.children) / 2
	upKey := n.keys[midIdx-1]
	r := t.newNode(false)
	r.keys = append(r.keys, n.keys[midIdx:]...)
	r.children = append(r.children, n.children[midIdx:]...)
	n.keys = n.keys[:midIdx-1]
	n.children = n.children[:midIdx]
	return upKey, r
}

// Search returns the values of all entries with the given key and the page
// path the lookup touched.
func (t *Tree) Search(key int64) ([]int64, Path) {
	return t.Range(key, key)
}

// Range returns the values of all entries with lo <= key <= hi, in key
// order, plus the page path: the root-to-leaf interior pages and every leaf
// scanned. An empty result still reports the descent path.
func (t *Tree) Range(lo, hi int64) ([]int64, Path) {
	var path Path
	if t.size == 0 {
		path.Leaves = append(path.Leaves, t.root.page)
		return nil, path
	}
	n := t.root
	for !n.leaf {
		path.Interior = append(path.Interior, n.page)
		// Separators are inclusive on both sides for duplicate keys, so the
		// leftmost child that can contain lo is the one below the first
		// separator >= lo.
		ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		n = n.children[ci]
	}
	var vals []int64
	for n != nil {
		path.Leaves = append(path.Leaves, n.page)
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].Key >= lo })
		for ; i < len(n.entries); i++ {
			if n.entries[i].Key > hi {
				return vals, path
			}
			vals = append(vals, n.entries[i].Val)
		}
		if len(n.entries) > 0 && n.entries[len(n.entries)-1].Key > hi {
			return vals, path
		}
		n = n.next
	}
	return vals, path
}

// RangeEntries is Range but returns the full entries.
func (t *Tree) RangeEntries(lo, hi int64) ([]Entry, Path) {
	var path Path
	if t.size == 0 {
		path.Leaves = append(path.Leaves, t.root.page)
		return nil, path
	}
	n := t.root
	for !n.leaf {
		path.Interior = append(path.Interior, n.page)
		ci := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		n = n.children[ci]
	}
	var out []Entry
	for n != nil {
		path.Leaves = append(path.Leaves, n.page)
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].Key >= lo })
		for ; i < len(n.entries); i++ {
			if n.entries[i].Key > hi {
				return out, path
			}
			out = append(out, n.entries[i])
		}
		if len(n.entries) > 0 && n.entries[len(n.entries)-1].Key > hi {
			return out, path
		}
		n = n.next
	}
	return out, path
}

// Len reports the number of entries.
func (t *Tree) Len() int { return t.size }

// Height reports the number of levels (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// Pages reports the number of pages (nodes) the tree occupies.
func (t *Tree) Pages() int { return t.pages }

// RootPage reports the root's physical page (typically cached by the buffer
// pool after first touch).
func (t *Tree) RootPage() int { return t.root.page }

// Validate checks structural invariants: key ordering within and across
// nodes, uniform leaf depth, fanout/capacity bounds, and size consistency.
// It returns a descriptive error for the first violation found.
func (t *Tree) Validate() error {
	count := 0
	leafDepth := -1
	var prevKey int64
	first := true
	var walk func(n *node, depth int, lo, hi *int64) error
	walk = func(n *node, depth int, lo, hi *int64) error {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaves at depths %d and %d", leafDepth, depth)
			}
			if len(n.entries) > t.leafCap {
				return fmt.Errorf("btree: leaf overflow: %d > %d", len(n.entries), t.leafCap)
			}
			for _, e := range n.entries {
				if !first && e.Key < prevKey {
					return fmt.Errorf("btree: keys out of order: %d after %d", e.Key, prevKey)
				}
				if lo != nil && e.Key < *lo {
					return fmt.Errorf("btree: key %d below separator %d", e.Key, *lo)
				}
				if hi != nil && e.Key > *hi {
					return fmt.Errorf("btree: key %d above separator %d", e.Key, *hi)
				}
				prevKey, first = e.Key, false
				count++
			}
			return nil
		}
		if len(n.children) > t.fanout {
			return fmt.Errorf("btree: interior overflow: %d > %d", len(n.children), t.fanout)
		}
		if len(n.keys) != len(n.children)-1 {
			return fmt.Errorf("btree: interior has %d keys for %d children", len(n.keys), len(n.children))
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = &n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = &n.keys[i]
			}
			if err := walk(c, depth+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but found %d entries", t.size, count)
	}
	return nil
}
