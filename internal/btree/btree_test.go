package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// counter returns a page allocator handing out 0, 1, 2, ...
func counter() func() int {
	n := 0
	return func() int {
		n++
		return n - 1
	}
}

func bulkTree(t *testing.T, fanout, leafCap int, entries []Entry) *Tree {
	t.Helper()
	tr := New(fanout, leafCap, counter())
	tr.Bulk(entries)
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree after Bulk: %v", err)
	}
	return tr
}

func seqEntries(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{Key: int64(i), Val: int64(i * 10)}
	}
	return out
}

func TestBulkAndSearch(t *testing.T) {
	tr := bulkTree(t, 5, 4, seqEntries(1000))
	if tr.Len() != 1000 {
		t.Fatalf("len = %d", tr.Len())
	}
	for _, k := range []int64{0, 1, 499, 998, 999} {
		vals, path := tr.Search(k)
		if len(vals) != 1 || vals[0] != k*10 {
			t.Fatalf("Search(%d) = %v", k, vals)
		}
		if len(path.Interior) != tr.Height()-1 {
			t.Fatalf("Search(%d) visited %d interior pages, height %d",
				k, len(path.Interior), tr.Height())
		}
		if len(path.Leaves) < 1 || len(path.Leaves) > 2 {
			t.Fatalf("Search(%d) visited %d leaves", k, len(path.Leaves))
		}
	}
}

func TestSearchMissingKey(t *testing.T) {
	tr := bulkTree(t, 5, 4, seqEntries(100))
	vals, path := tr.Search(5000)
	if len(vals) != 0 {
		t.Fatalf("missing key returned %v", vals)
	}
	if len(path.Pages()) == 0 {
		t.Fatal("even a miss must touch pages")
	}
}

func TestRangeInclusive(t *testing.T) {
	tr := bulkTree(t, 5, 4, seqEntries(100))
	vals, _ := tr.Range(10, 19)
	if len(vals) != 10 {
		t.Fatalf("range [10,19] returned %d values", len(vals))
	}
	for i, v := range vals {
		if v != int64((10+i)*10) {
			t.Fatalf("vals = %v", vals)
		}
	}
}

func TestRangeSpanningLeaves(t *testing.T) {
	tr := bulkTree(t, 4, 4, seqEntries(64))
	vals, path := tr.Range(0, 63)
	if len(vals) != 64 {
		t.Fatalf("full range returned %d", len(vals))
	}
	if len(path.Leaves) != 16 {
		t.Fatalf("full range should touch all 16 leaves, got %d", len(path.Leaves))
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(4, 4, counter())
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	vals, path := tr.Search(1)
	if len(vals) != 0 || len(path.Leaves) != 1 {
		t.Fatalf("empty tree search: vals=%v leaves=%v", vals, path.Leaves)
	}
	if tr.Height() != 1 || tr.Pages() != 1 {
		t.Fatalf("empty tree height=%d pages=%d", tr.Height(), tr.Pages())
	}
}

func TestBulkEmptySlice(t *testing.T) {
	tr := New(4, 4, counter())
	tr.Bulk(nil)
	if tr.Len() != 0 {
		t.Fatal("Bulk(nil) should leave tree empty")
	}
}

func TestBulkUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted Bulk did not panic")
		}
	}()
	New(4, 4, counter()).Bulk([]Entry{{Key: 2}, {Key: 1}})
}

func TestBulkTwicePanics(t *testing.T) {
	tr := New(4, 4, counter())
	tr.Bulk(seqEntries(10))
	defer func() {
		if recover() == nil {
			t.Fatal("second Bulk did not panic")
		}
	}()
	tr.Bulk(seqEntries(10))
}

func TestDuplicateKeysAcrossLeaves(t *testing.T) {
	// Many duplicates force equal keys to span leaf boundaries and become
	// separator keys; Search must still find every one.
	var entries []Entry
	for i := 0; i < 50; i++ {
		entries = append(entries, Entry{Key: 7, Val: int64(i)})
	}
	tr := bulkTree(t, 4, 4, entries)
	vals, _ := tr.Search(7)
	if len(vals) != 50 {
		t.Fatalf("Search(7) found %d of 50 duplicates", len(vals))
	}
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("duplicate order broken: %v", vals)
		}
	}
}

func TestInsertMaintainsInvariants(t *testing.T) {
	tr := New(4, 4, counter())
	r := rand.New(rand.NewSource(42))
	keys := r.Perm(500)
	for _, k := range keys {
		tr.Insert(Entry{Key: int64(k), Val: int64(k * 2)})
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid after inserts: %v", err)
	}
	if tr.Len() != 500 {
		t.Fatalf("len = %d", tr.Len())
	}
	for _, k := range keys {
		vals, _ := tr.Search(int64(k))
		if len(vals) != 1 || vals[0] != int64(k*2) {
			t.Fatalf("Search(%d) = %v", k, vals)
		}
	}
}

func TestInsertDuplicates(t *testing.T) {
	tr := New(4, 4, counter())
	for i := 0; i < 100; i++ {
		tr.Insert(Entry{Key: int64(i % 5), Val: int64(i)})
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 5; k++ {
		vals, _ := tr.Search(k)
		if len(vals) != 20 {
			t.Fatalf("Search(%d) found %d, want 20", k, len(vals))
		}
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := bulkTree(t, 10, 10, seqEntries(10000))
	// 10000 entries / 10 per leaf = 1000 leaves; fanout 10 => 4 levels + leaf.
	if tr.Height() != 4 {
		t.Fatalf("height = %d, want 4", tr.Height())
	}
}

func TestPageNumbersUnique(t *testing.T) {
	tr := bulkTree(t, 4, 4, seqEntries(200))
	seen := map[int]bool{}
	var walk func(n *node)
	var dup bool
	walk = func(n *node) {
		if seen[n.page] {
			dup = true
		}
		seen[n.page] = true
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(tr.root)
	if dup {
		t.Fatal("duplicate page numbers in tree")
	}
	if len(seen) != tr.Pages() {
		t.Fatalf("Pages() = %d but %d nodes found", tr.Pages(), len(seen))
	}
}

func TestRangeEntriesMatchesRange(t *testing.T) {
	tr := bulkTree(t, 5, 4, seqEntries(300))
	es, _ := tr.RangeEntries(50, 99)
	vals, _ := tr.Range(50, 99)
	if len(es) != len(vals) {
		t.Fatalf("entries %d vs vals %d", len(es), len(vals))
	}
	for i := range es {
		if es[i].Val != vals[i] {
			t.Fatal("RangeEntries and Range disagree")
		}
	}
}

// Property: for random multisets of keys, Range(lo,hi) on a bulk-loaded tree
// equals the naive filter, for both bulk-loaded and incrementally built trees.
func TestRangeMatchesNaiveProperty(t *testing.T) {
	check := func(rawKeys []uint16, loRaw, width uint16, useInsert bool) bool {
		if len(rawKeys) == 0 {
			rawKeys = []uint16{42}
		}
		if len(rawKeys) > 300 {
			rawKeys = rawKeys[:300]
		}
		keys := make([]int64, len(rawKeys))
		for i, k := range rawKeys {
			keys[i] = int64(k % 512)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		entries := make([]Entry, len(keys))
		for i, k := range keys {
			entries[i] = Entry{Key: k, Val: int64(i)}
		}
		tr := New(5, 4, counter())
		if useInsert {
			for _, e := range entries {
				tr.Insert(e)
			}
		} else {
			tr.Bulk(entries)
		}
		if err := tr.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		lo := int64(loRaw % 512)
		hi := lo + int64(width%64)
		got, _ := tr.Range(lo, hi)
		want := 0
		for _, k := range keys {
			if k >= lo && k <= hi {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: a bulk-loaded tree and an insert-built tree over the same data
// answer every point query identically.
func TestBulkVsInsertEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(400)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(r.Intn(256))
		}
		sorted := append([]int64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		entries := make([]Entry, n)
		for i, k := range sorted {
			entries[i] = Entry{Key: k, Val: k}
		}
		bulk := New(6, 5, counter())
		bulk.Bulk(entries)
		ins := New(6, 5, counter())
		for _, e := range entries {
			ins.Insert(e)
		}
		for k := int64(0); k < 256; k++ {
			a, _ := bulk.Search(k)
			b, _ := ins.Search(k)
			if len(a) != len(b) {
				t.Fatalf("trial %d key %d: bulk %d hits, insert %d hits", trial, k, len(a), len(b))
			}
		}
	}
}

func TestNewRejectsTinyParameters(t *testing.T) {
	for _, tc := range []struct{ fanout, leafCap int }{{2, 4}, {4, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.fanout, tc.leafCap)
				}
			}()
			New(tc.fanout, tc.leafCap, counter())
		}()
	}
}

func TestRootPageStable(t *testing.T) {
	tr := bulkTree(t, 4, 4, seqEntries(64))
	_, path := tr.Search(0)
	if len(path.Interior) > 0 && path.Interior[0] != tr.RootPage() {
		t.Fatal("first interior page should be the root")
	}
}
