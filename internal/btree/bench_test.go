package btree

import (
	"math/rand"
	"testing"
)

func benchTree(n int) *Tree {
	tr := New(400, 400, counter())
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), Val: int64(i)}
	}
	tr.Bulk(entries)
	return tr
}

func BenchmarkBulkLoad100k(b *testing.B) {
	entries := make([]Entry, 100000)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), Val: int64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(400, 400, counter())
		tr.Bulk(entries)
	}
}

func BenchmarkSearch(b *testing.B) {
	tr := benchTree(100000)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(int64(r.Intn(100000)))
	}
}

func BenchmarkRange300(b *testing.B) {
	tr := benchTree(100000)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(r.Intn(99000))
		tr.Range(lo, lo+299)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New(400, 400, counter())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(Entry{Key: int64(r.Intn(1 << 30)), Val: int64(i)})
	}
}
