// Package serve is the open-system serving layer: a long-running query
// front end that runs inside the simulation kernel and admits queries from
// open arrival processes instead of the paper's closed multiprogramming
// model. It comprises arrival generators (Poisson, bursty MMPP on-off,
// diurnal trace), an MPL governor plus a credit-based admission controller
// with a bounded wait queue and typed load shedding, per-tenant FIFO queues
// with weighted round-robin dispatch, and online SLO tracking (p50/p95/p99
// latency, goodput, shed rate) on the log-bucketed histograms from
// internal/obs.
//
// The package knows nothing about the Gamma machine: queries are executed
// through the narrow Executor interface that exec.Host satisfies, so the
// dependency arrow points from the machine assembly (internal/gamma) into
// here. Every stochastic decision draws from named rng streams derived from
// one seed, so a serving run is exactly reproducible — the same admission
// schedule, the same sheds, the same SLO statistics.
package serve

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// ArrivalKind enumerates the supported open arrival processes.
type ArrivalKind int

const (
	// Poisson arrivals: independent exponential inter-arrival gaps at
	// RateQPS — the memoryless baseline open workload.
	Poisson ArrivalKind = iota
	// Bursty arrivals: a two-state Markov-modulated Poisson process
	// (on/off). The process alternates between an "on" state running at
	// BurstFactor times the mean rate and an "off" state running at
	// whatever residual rate keeps the long-run mean equal to RateQPS.
	// Dwell times in each state are exponential, so bursts have random
	// lengths but a controlled duty cycle.
	Bursty
	// Diurnal arrivals: a piecewise non-homogeneous Poisson process whose
	// rate follows a repeating trace (a compressed "day"), normalized so
	// the long-run mean rate is RateQPS. Models the daily swell and ebb a
	// production service sees.
	Diurnal
)

var arrivalNames = [...]string{
	Poisson: "poisson",
	Bursty:  "bursty",
	Diurnal: "diurnal",
}

func (k ArrivalKind) String() string {
	if k < 0 || int(k) >= len(arrivalNames) {
		return fmt.Sprintf("arrival(%d)", int(k))
	}
	return arrivalNames[k]
}

// ParseArrivalKind maps a flag string to its ArrivalKind.
func ParseArrivalKind(s string) (ArrivalKind, error) {
	for k, name := range arrivalNames {
		if s == name {
			return ArrivalKind(k), nil
		}
	}
	return 0, fmt.Errorf("serve: unknown arrival kind %q (want poisson, bursty, or diurnal)", s)
}

// ArrivalSpec describes one arrival process. RateQPS is the long-run mean
// offered load for every kind; the remaining fields shape its short-term
// structure and have working defaults (see withDefaults).
type ArrivalSpec struct {
	Kind    ArrivalKind `json:"kind"`
	RateQPS float64     `json:"rate_qps"`

	// Bursty (MMPP on-off) shape. BurstFactor is the on-state rate
	// multiplier (default 4); OnFraction the long-run fraction of time
	// spent on (default 0.25, so the off-state rate stays non-negative);
	// CycleMean the mean on+off cycle length (default 2s). The constraint
	// BurstFactor*OnFraction <= 1 keeps the off-state rate >= 0.
	BurstFactor float64      `json:"burst_factor,omitempty"`
	OnFraction  float64      `json:"on_fraction,omitempty"`
	CycleMean   sim.Duration `json:"cycle_mean,omitempty"`

	// Diurnal shape. Period is the length of one trace cycle (default
	// 60 simulated seconds — a compressed day); Trace the per-slot relative
	// rates (default DefaultDiurnalTrace). The trace is normalized, so only
	// its shape matters.
	Period sim.Duration `json:"period,omitempty"`
	Trace  []float64    `json:"trace,omitempty"`
}

// DefaultDiurnalTrace is a 24-slot "hour of day" load curve: a deep night
// trough, a morning ramp, a midday plateau, and an evening peak — the shape
// interactive services see, compressed into one Period.
func DefaultDiurnalTrace() []float64 {
	return []float64{
		0.2, 0.15, 0.1, 0.1, 0.15, 0.3, // night trough
		0.5, 0.9, 1.3, 1.5, 1.5, 1.4, // morning ramp to midday
		1.3, 1.3, 1.4, 1.5, 1.6, 1.8, // afternoon build
		2.0, 1.9, 1.6, 1.2, 0.8, 0.4, // evening peak and wind-down
	}
}

// withDefaults completes the spec's shape parameters.
func (s ArrivalSpec) withDefaults() ArrivalSpec {
	if s.BurstFactor <= 0 {
		s.BurstFactor = 4
	}
	if s.OnFraction <= 0 {
		s.OnFraction = 0.25
	}
	if s.CycleMean <= 0 {
		s.CycleMean = 2 * sim.Second
	}
	if s.Period <= 0 {
		s.Period = 60 * sim.Second
	}
	if len(s.Trace) == 0 {
		s.Trace = DefaultDiurnalTrace()
	}
	return s
}

// Validate rejects specs that cannot produce a well-defined process.
func (s ArrivalSpec) Validate() error {
	if s.Kind < 0 || int(s.Kind) >= len(arrivalNames) {
		return fmt.Errorf("serve: unknown arrival kind %d", int(s.Kind))
	}
	if s.RateQPS <= 0 {
		return fmt.Errorf("serve: arrival rate must be positive, got %g", s.RateQPS)
	}
	d := s.withDefaults()
	if d.Kind == Bursty {
		if d.OnFraction >= 1 {
			return fmt.Errorf("serve: bursty on-fraction %g must be < 1", d.OnFraction)
		}
		if d.BurstFactor*d.OnFraction > 1 {
			return fmt.Errorf("serve: bursty burst-factor %g x on-fraction %g exceeds 1 "+
				"(off-state rate would be negative)", d.BurstFactor, d.OnFraction)
		}
	}
	if d.Kind == Diurnal {
		var sum float64
		for i, v := range d.Trace {
			if v < 0 {
				return fmt.Errorf("serve: diurnal trace slot %d is negative (%g)", i, v)
			}
			sum += v
		}
		if sum <= 0 {
			return fmt.Errorf("serve: diurnal trace is identically zero")
		}
	}
	return nil
}

// Arrivals generates inter-arrival gaps for one spec. It is a deterministic
// state machine over a single rng stream: the k-th call always returns the
// same gap for a given (spec, stream) pair, which is the foundation of the
// serving layer's byte-identical reproducibility. Not safe for concurrent
// use; the single arrival process is the only consumer.
type Arrivals struct {
	spec ArrivalSpec
	src  *rng.Source

	// Bursty state: whether the process is in the on state and how much of
	// the current dwell remains (in simulated nanoseconds).
	on        bool
	dwellLeft float64

	// Diurnal state: the process's own elapsed clock (advanced by every
	// returned gap) and the normalization factor making the trace mean 1.
	clock     float64
	traceNorm float64
}

// NewArrivals builds the generator. The stream should be dedicated (e.g.
// streams.Stream("serve.arrivals")) so arrival randomness never perturbs
// workload sampling or hardware models.
func NewArrivals(spec ArrivalSpec, src *rng.Source) (*Arrivals, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	a := &Arrivals{spec: spec, src: src}
	if spec.Kind == Bursty {
		// Start off, mid-dwell, so the first burst is not synchronized with
		// the start of the run.
		a.on = false
		a.dwellLeft = a.offDwellMean()
	}
	if spec.Kind == Diurnal {
		var sum float64
		for _, v := range spec.Trace {
			sum += v
		}
		a.traceNorm = float64(len(spec.Trace)) / sum
	}
	return a, nil
}

// Kind reports the process kind.
func (a *Arrivals) Kind() ArrivalKind { return a.spec.Kind }

// RateQPS reports the long-run mean offered load.
func (a *Arrivals) RateQPS() float64 { return a.spec.RateQPS }

func (a *Arrivals) onDwellMean() float64 {
	return float64(a.spec.CycleMean) * a.spec.OnFraction
}

func (a *Arrivals) offDwellMean() float64 {
	return float64(a.spec.CycleMean) * (1 - a.spec.OnFraction)
}

// onRate and offRate are the bursty process's state rates in arrivals per
// nanosecond; their OnFraction-weighted mean is RateQPS.
func (a *Arrivals) onRate() float64 {
	return a.spec.RateQPS * a.spec.BurstFactor / 1e9
}

func (a *Arrivals) offRate() float64 {
	residual := a.spec.RateQPS * (1 - a.spec.BurstFactor*a.spec.OnFraction) / (1 - a.spec.OnFraction)
	return residual / 1e9
}

// Next returns the gap to the next arrival. Gaps are at least one
// nanosecond so arrivals are strictly ordered in simulated time.
func (a *Arrivals) Next() sim.Duration {
	var gap float64
	switch a.spec.Kind {
	case Poisson:
		gap = a.src.Exponential(1e9 / a.spec.RateQPS)
	case Bursty:
		gap = a.nextBursty()
	case Diurnal:
		gap = a.nextDiurnal()
	}
	if gap < 1 {
		gap = 1
	}
	return sim.Duration(gap)
}

// nextBursty advances the on/off state machine until an arrival lands
// inside the current dwell, accumulating the skipped remainder of each
// exhausted dwell into the gap.
func (a *Arrivals) nextBursty() float64 {
	elapsed := 0.0
	for {
		rate := a.offRate()
		if a.on {
			rate = a.onRate()
		}
		if rate > 0 {
			candidate := a.src.Exponential(1 / rate)
			if candidate <= a.dwellLeft {
				a.dwellLeft -= candidate
				return elapsed + candidate
			}
		}
		// No arrival in the rest of this dwell: consume it and switch state.
		elapsed += a.dwellLeft
		a.on = !a.on
		if a.on {
			a.dwellLeft = a.src.Exponential(a.onDwellMean())
		} else {
			a.dwellLeft = a.src.Exponential(a.offDwellMean())
		}
	}
}

// nextDiurnal draws from a piecewise-constant-rate Poisson process: within
// a trace slot the gap is exponential at the slot's rate; a draw that
// crosses the slot boundary is discarded beyond the boundary and redrawn in
// the next slot (the standard thinning-free construction for piecewise
// NHPPs, which keeps the process exact slot by slot).
func (a *Arrivals) nextDiurnal() float64 {
	period := float64(a.spec.Period)
	slotLen := period / float64(len(a.spec.Trace))
	elapsed := 0.0
	for {
		pos := a.clock
		for pos >= period {
			pos -= period
		}
		slot := int(pos / slotLen)
		if slot >= len(a.spec.Trace) { // guard the pos == period float edge
			slot = len(a.spec.Trace) - 1
		}
		slotEnd := float64(slot+1) * slotLen
		left := slotEnd - pos
		rate := a.spec.RateQPS * a.spec.Trace[slot] * a.traceNorm / 1e9
		if rate > 0 {
			candidate := a.src.Exponential(1 / rate)
			if candidate <= left {
				a.clock += candidate
				return elapsed + candidate
			}
		}
		// No arrival before the slot boundary: jump to it and redraw.
		a.clock += left
		elapsed += left
	}
}
