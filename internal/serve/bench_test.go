package serve

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
)

// BenchmarkOpenArrivals measures the serving layer's end-to-end admission
// throughput — arrival generation, admission, WRR dispatch, a minimal
// 1ms-service execution, and SLO accounting — in admitted arrivals per
// second of wall time. The bench harness publishes this next to the kernel
// numbers in BENCH_sim.json.
func BenchmarkOpenArrivals(b *testing.B) {
	cfg := Config{
		Arrival:        ArrivalSpec{Kind: Poisson, RateQPS: 2000},
		Tenants:        DefaultTenants(4),
		MaxInService:   8,
		MaxQueue:       64,
		SLOms:          100,
		WarmupQueries:  0,
		MeasureQueries: b.N,
		Sample: func(src *rng.Source) (core.Predicate, string) {
			lo := int64(src.Intn(1000))
			return core.Predicate{Attr: 1, Lo: lo, Hi: lo}, "bench"
		},
		Access: func(core.Predicate) exec.AccessKind { return exec.AccessClustered },
	}
	backend := &fakeBackend{service: sim.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := Run(sim.New(), rng.NewFactory(1), cfg, backend)
	if err != nil {
		b.Fatal(err)
	}
	if res.SLO.Completed < int64(b.N) {
		b.Fatalf("completed %d of %d", res.SLO.Completed, b.N)
	}
}

// BenchmarkOpenArrivalsSampled is the same workload with telemetry armed:
// the front end registers its probes, drives a sampling window every 250ms
// of simulated time, and evaluates the SLO burn rate per window. Guards the
// sampled-path overhead (acceptance: <5% over the unsampled benchmark).
func BenchmarkOpenArrivalsSampled(b *testing.B) {
	cfg := Config{
		Arrival:        ArrivalSpec{Kind: Poisson, RateQPS: 2000},
		Tenants:        DefaultTenants(4),
		MaxInService:   8,
		MaxQueue:       64,
		SLOms:          100,
		WarmupQueries:  0,
		MeasureQueries: b.N,
		Telemetry:      obs.NewSampler(int64(250*sim.Millisecond), obs.DefaultCapacity),
		Sample: func(src *rng.Source) (core.Predicate, string) {
			lo := int64(src.Intn(1000))
			return core.Predicate{Attr: 1, Lo: lo, Hi: lo}, "bench"
		},
		Access: func(core.Predicate) exec.AccessKind { return exec.AccessClustered },
	}
	backend := &fakeBackend{service: sim.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := Run(sim.New(), rng.NewFactory(1), cfg, backend)
	if err != nil {
		b.Fatal(err)
	}
	if res.SLO.Completed < int64(b.N) {
		b.Fatalf("completed %d of %d", res.SLO.Completed, b.N)
	}
	// A short probe run (b.N=1) can finish inside the first window, so only
	// the evaluator's presence is asserted here.
	if res.Burn == nil {
		b.Fatal("burn stats missing with telemetry armed")
	}
}
