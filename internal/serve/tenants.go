package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Tenant is one logical customer of the serving layer. Weight sets its
// share of dispatch slots under contention (weighted round-robin); it has
// no effect while the system is underloaded, because an empty queue is
// simply skipped.
type Tenant struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// DefaultTenants returns n equally weighted tenants named t0..t(n-1).
func DefaultTenants(n int) []Tenant {
	ts := make([]Tenant, n)
	for i := range ts {
		ts[i] = Tenant{Name: fmt.Sprintf("t%d", i), Weight: 1}
	}
	return ts
}

// queued is one admitted-but-not-yet-dispatched query.
type queued struct {
	id       int64
	tenant   int
	pred     core.Predicate
	class    string
	arrived  sim.Time
	admitted sim.Time
}

// tenantQueues is the dispatch structure: one FIFO per tenant plus a smooth
// weighted round-robin selector (the nginx algorithm: each pick adds every
// backlogged tenant's weight to its current credit, dispatches the tenant
// with the most credit, and charges it the total added weight). Smooth WRR
// interleaves tenants proportionally instead of draining each tenant's
// whole allocation in a burst, and is fully deterministic: ties break on
// the lowest tenant index.
type tenantQueues struct {
	tenants []Tenant
	queues  [][]queued // per-tenant FIFO (slice-as-deque; head compacted on dispatch)
	credit  []float64
	total   int
}

func newTenantQueues(tenants []Tenant) *tenantQueues {
	return &tenantQueues{
		tenants: tenants,
		queues:  make([][]queued, len(tenants)),
		credit:  make([]float64, len(tenants)),
	}
}

// Len reports the total queued count across tenants.
func (q *tenantQueues) Len() int { return q.total }

// TenantLen reports one tenant's queued count.
func (q *tenantQueues) TenantLen(tenant int) int { return len(q.queues[tenant]) }

// Push appends to the item's tenant FIFO.
func (q *tenantQueues) Push(item queued) {
	q.queues[item.tenant] = append(q.queues[item.tenant], item)
	q.total++
}

// Pop removes and returns the next item under smooth WRR, or false when
// every queue is empty.
func (q *tenantQueues) Pop() (queued, bool) {
	if q.total == 0 {
		return queued{}, false
	}
	best := -1
	var sum float64
	for i := range q.tenants {
		if len(q.queues[i]) == 0 {
			continue
		}
		w := q.tenants[i].Weight
		if w <= 0 {
			w = 1
		}
		q.credit[i] += w
		sum += w
		if best == -1 || q.credit[i] > q.credit[best] {
			best = i
		}
	}
	q.credit[best] -= sum
	item := q.queues[best][0]
	q.queues[best] = q.queues[best][1:]
	if len(q.queues[best]) == 0 {
		// Reclaim the drained backing array so a long run does not pin the
		// high-water mark of every tenant's queue.
		q.queues[best] = nil
	}
	q.total--
	return item, true
}

// Drain removes and returns every queued item in tenant order (used at
// shutdown to shed the residue with a typed outcome).
func (q *tenantQueues) Drain() []queued {
	out := make([]queued, 0, q.total)
	for i := range q.queues {
		out = append(out, q.queues[i]...)
		q.queues[i] = nil
	}
	q.total = 0
	return out
}
