package serve

import "fmt"

// ShedReason is the typed rejection outcome of the admission controller.
// Every arriving query is either admitted or shed with exactly one reason;
// nothing is silently dropped, so offered load always reconciles:
// arrivals = admitted + sum(sheds by reason).
type ShedReason int

const (
	// ShedQueueFull: the bounded wait queue was at capacity at arrival
	// time. The controller rejects immediately rather than letting the
	// queue — and every queued query's latency — grow without bound.
	ShedQueueFull ShedReason = iota
	// ShedAged: the query was admitted to the queue but waited longer than
	// MaxQueueWait before a service slot opened. Dispatching it anyway
	// would burn a slot on work whose deadline has already passed, so the
	// dispatcher sheds it at dequeue time instead.
	ShedAged
	// ShedShutdown: the query was still queued when the run ended (drain
	// at shutdown).
	ShedShutdown

	numShedReasons = int(ShedShutdown) + 1
)

var shedNames = [...]string{
	ShedQueueFull: "queue-full",
	ShedAged:      "aged-out",
	ShedShutdown:  "shutdown",
}

func (r ShedReason) String() string {
	if r < 0 || int(r) >= len(shedNames) {
		return fmt.Sprintf("shed(%d)", int(r))
	}
	return shedNames[r]
}
