package serve

import "repro/internal/sim"

// BurnStats is the SLO burn-rate evaluator's verdict over a run's sampling
// windows: per window it computes the bad fraction (completions that
// missed the SLO or failed, over completions) and flags the window as
// burning when that fraction exceeds the budget. It answers the
// time-domain questions the end-of-run aggregates cannot: when did the
// system first violate its objective, and did it recover before the run
// ended?
type BurnStats struct {
	// WindowNS is the evaluation window (the telemetry sampling window);
	// Budget is the tolerated bad fraction per window.
	WindowNS int64   `json:"window_ns"`
	Budget   float64 `json:"budget"`
	// Windows counts evaluated windows; Violated counts the burning ones.
	Windows  int `json:"windows"`
	Violated int `json:"violated"`
	// MaxBurnRate is the worst per-window bad fraction observed.
	MaxBurnRate float64 `json:"max_burn_rate"`
	// FirstViolation is the end time of the first burning window (0 =
	// never violated). Recovery is the end time of the clean window that
	// ended the last violation streak — 0 when the run never violated or
	// was still burning at the end.
	FirstViolation sim.Time `json:"first_violation_ns"`
	Recovery       sim.Time `json:"recovery_ns"`
}

// ViolationRate is violated / windows (0 when no windows were evaluated).
func (b BurnStats) ViolationRate() float64 {
	if b.Windows == 0 {
		return 0
	}
	return float64(b.Violated) / float64(b.Windows)
}

// DefaultBurnBudget is the per-window bad fraction tolerated before the
// window counts as an SLO violation.
const DefaultBurnBudget = 0.1

// burnEval accumulates BurnStats from per-window tracker deltas. It runs
// on the simulation goroutine (the telemetry driver process), so it needs
// no locking.
type burnEval struct {
	budget        float64
	prevCompleted int64
	prevGood      int64
	violating     bool
	stats         BurnStats
}

func newBurnEval(windowNS int64, budget float64) *burnEval {
	if budget <= 0 {
		budget = DefaultBurnBudget
	}
	return &burnEval{
		budget: budget,
		stats:  BurnStats{WindowNS: windowNS, Budget: budget},
	}
}

// observe evaluates the window ending at now against the tracker's
// cumulative counts. An empty window (no completions) is clean: offering
// no evidence of violation, it ends any running violation streak — under
// total overload queries still complete (late), so burn windows keep
// scoring.
func (b *burnEval) observe(now sim.Time, tr *Tracker) {
	dC := tr.completed - b.prevCompleted
	dG := tr.good - b.prevGood
	b.prevCompleted, b.prevGood = tr.completed, tr.good
	if dC < 0 || dG < 0 {
		// The tracker was reset without a rebase; re-primed above, skip.
		return
	}
	b.stats.Windows++
	if dC == 0 {
		b.markClean(now)
		return
	}
	burn := 1 - float64(dG)/float64(dC)
	if burn > b.stats.MaxBurnRate {
		b.stats.MaxBurnRate = burn
	}
	if burn > b.budget {
		b.stats.Violated++
		if b.stats.FirstViolation == 0 {
			b.stats.FirstViolation = now
		}
		b.violating = true
		b.stats.Recovery = 0
		return
	}
	b.markClean(now)
}

func (b *burnEval) markClean(now sim.Time) {
	if b.violating {
		b.violating = false
		b.stats.Recovery = now
	}
}

// rebase discards accumulated verdicts and re-primes the deltas — the
// warm-up boundary hook, in step with Tracker.Reset and Sampler.Rebase.
func (b *burnEval) rebase(tr *Tracker) {
	b.prevCompleted, b.prevGood = tr.completed, tr.good
	b.violating = false
	b.stats = BurnStats{WindowNS: b.stats.WindowNS, Budget: b.budget}
}
