package serve

import (
	"repro/internal/obs"
)

// Tracker is the serving layer's online SLO accounting: log-bucketed
// latency and queue-wait histograms (internal/obs), goodput against a
// latency objective, and typed shed counts, overall and per tenant. All
// latency figures are in milliseconds and cover admitted queries end to
// end, from arrival (not dispatch) to completion — queueing delay is part
// of the latency a client sees.
//
// The tracker is resettable at the warm-up boundary so steady-state
// statistics exclude the initial transient, matching the closed-loop runs.
type Tracker struct {
	sloMS float64

	arrivals  int64
	admitted  int64
	completed int64
	good      int64 // completed, succeeded, and within the SLO
	failed    int64 // completed with a non-success execution outcome
	sheds     [numShedReasons]int64

	latency   *obs.Histogram // arrival -> completion, ms
	queueWait *obs.Histogram // arrival -> dispatch, ms

	tenants []TenantStats
}

// TenantStats is one tenant's share of the accounting.
type TenantStats struct {
	Name       string  `json:"name"`
	Arrivals   int64   `json:"arrivals"`
	Admitted   int64   `json:"admitted"`
	Completed  int64   `json:"completed"`
	Good       int64   `json:"good"`
	Shed       int64   `json:"shed"`
	LatencySum float64 `json:"-"`
}

// MeanLatencyMS reports the tenant's mean end-to-end latency.
func (t TenantStats) MeanLatencyMS() float64 {
	if t.Completed == 0 {
		return 0
	}
	return t.LatencySum / float64(t.Completed)
}

// NewTracker builds a tracker for the given tenants and latency objective
// (milliseconds; <= 0 disables goodput accounting and Good == Completed-
// successes).
func NewTracker(tenants []Tenant, sloMS float64) *Tracker {
	ts := make([]TenantStats, len(tenants))
	for i, t := range tenants {
		ts[i].Name = t.Name
	}
	return &Tracker{
		sloMS:     sloMS,
		latency:   obs.NewHistogram(),
		queueWait: obs.NewHistogram(),
		tenants:   ts,
	}
}

// Arrival records one offered query for a tenant.
func (tr *Tracker) Arrival(tenant int) {
	tr.arrivals++
	tr.tenants[tenant].Arrivals++
}

// Admit records that an arrival entered the wait queue.
func (tr *Tracker) Admit(tenant int) {
	tr.admitted++
	tr.tenants[tenant].Admitted++
}

// Shed records a typed rejection.
func (tr *Tracker) Shed(tenant int, reason ShedReason) {
	tr.sheds[reason]++
	tr.tenants[tenant].Shed++
}

// Complete records a finished query: its queue wait, end-to-end latency,
// and whether it counts as goodput (execution succeeded and latency within
// the SLO).
func (tr *Tracker) Complete(tenant int, queueWaitMS, latencyMS float64, succeeded bool) {
	tr.completed++
	tr.queueWait.Observe(queueWaitMS)
	tr.latency.Observe(latencyMS)
	ts := &tr.tenants[tenant]
	ts.Completed++
	ts.LatencySum += latencyMS
	if !succeeded {
		tr.failed++
		return
	}
	if tr.sloMS <= 0 || latencyMS <= tr.sloMS {
		tr.good++
		ts.Good++
	}
}

// Reset discards all accumulated statistics (warm-up boundary), keeping the
// tenant roster and objective.
func (tr *Tracker) Reset() {
	tr.arrivals, tr.admitted, tr.completed, tr.good, tr.failed = 0, 0, 0, 0, 0
	tr.sheds = [numShedReasons]int64{}
	tr.latency.Reset()
	tr.queueWait.Reset()
	for i := range tr.tenants {
		tr.tenants[i] = TenantStats{Name: tr.tenants[i].Name}
	}
}

// Completed reports the number of completed queries since the last reset.
func (tr *Tracker) Completed() int64 { return tr.completed }

// shedTotal sums the typed shed counts since the last reset.
func (tr *Tracker) shedTotal() int64 {
	var t int64
	for _, v := range tr.sheds {
		t += v
	}
	return t
}

// SLOStats is a serialization-friendly snapshot of the tracker.
type SLOStats struct {
	SLOms     float64 `json:"slo_ms"`
	Arrivals  int64   `json:"arrivals"`
	Admitted  int64   `json:"admitted"`
	Completed int64   `json:"completed"`
	Good      int64   `json:"good"`
	Failed    int64   `json:"failed"`

	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedAged      int64 `json:"shed_aged"`
	ShedShutdown  int64 `json:"shed_shutdown"`

	Latency   obs.HistogramStats `json:"latency_ms"`
	QueueWait obs.HistogramStats `json:"queue_wait_ms"`
	P95ms     float64            `json:"p95_ms"`

	Tenants []TenantStats `json:"tenants"`
}

// TotalShed sums the typed shed counts.
func (s SLOStats) TotalShed() int64 {
	return s.ShedQueueFull + s.ShedAged + s.ShedShutdown
}

// ShedRate is shed / arrivals (0 when no arrivals), capped at 1: queries
// admitted before the warm-up reset but shed after it can push the raw
// ratio a hair past 100% in a heavily overloaded window.
func (s SLOStats) ShedRate() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	r := float64(s.TotalShed()) / float64(s.Arrivals)
	if r > 1 {
		return 1
	}
	return r
}

// Snapshot captures the current statistics.
func (tr *Tracker) Snapshot() SLOStats {
	s := SLOStats{
		SLOms:         tr.sloMS,
		Arrivals:      tr.arrivals,
		Admitted:      tr.admitted,
		Completed:     tr.completed,
		Good:          tr.good,
		Failed:        tr.failed,
		ShedQueueFull: tr.sheds[ShedQueueFull],
		ShedAged:      tr.sheds[ShedAged],
		ShedShutdown:  tr.sheds[ShedShutdown],
		Latency:       tr.latency.Stats(),
		QueueWait:     tr.queueWait.Stats(),
		P95ms:         tr.latency.Quantile(95),
		Tenants:       append([]TenantStats(nil), tr.tenants...),
	}
	return s
}
