package serve

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func burnTracker() *Tracker { return NewTracker(DefaultTenants(1), 50) }

const sec = sim.Time(sim.Second) // sim.Time literal for window end instants

func observeWindow(b *burnEval, tr *Tracker, now sim.Time, completed, good int64) {
	tr.completed += completed
	tr.good += good
	b.observe(now, tr)
}

func TestBurnEvalViolationStreak(t *testing.T) {
	tr := burnTracker()
	b := newBurnEval(int64(sim.Second), 0.1)

	observeWindow(b, tr, 1*sec, 10, 9)  // burn 0.1 == budget: clean
	observeWindow(b, tr, 2*sec, 10, 5)  // burn 0.5: first violation
	observeWindow(b, tr, 3*sec, 10, 4)  // burn 0.6: streak continues
	observeWindow(b, tr, 4*sec, 10, 10) // clean: recovery

	s := b.stats
	if s.Windows != 4 || s.Violated != 2 {
		t.Fatalf("windows=%d violated=%d, want 4 and 2", s.Windows, s.Violated)
	}
	if s.FirstViolation != 2*sec {
		t.Errorf("FirstViolation = %v, want 2s", s.FirstViolation)
	}
	if s.Recovery != 4*sec {
		t.Errorf("Recovery = %v, want 4s", s.Recovery)
	}
	if s.MaxBurnRate != 0.6 {
		t.Errorf("MaxBurnRate = %g, want 0.6", s.MaxBurnRate)
	}
	if got := s.ViolationRate(); got != 0.5 {
		t.Errorf("ViolationRate = %g, want 0.5", got)
	}
}

// An empty window offers no evidence of violation: it counts as evaluated,
// stays clean, and ends a running violation streak.
func TestBurnEvalEmptyWindowIsClean(t *testing.T) {
	tr := burnTracker()
	b := newBurnEval(int64(sim.Second), 0.1)
	observeWindow(b, tr, 1*sec, 10, 0) // violating
	observeWindow(b, tr, 2*sec, 0, 0)  // empty: clean, recovers
	s := b.stats
	if s.Windows != 2 || s.Violated != 1 {
		t.Fatalf("windows=%d violated=%d, want 2 and 1", s.Windows, s.Violated)
	}
	if s.Recovery != 2*sec {
		t.Errorf("empty window did not end the streak: Recovery = %v", s.Recovery)
	}
}

// Re-violating after a recovery clears the recovery stamp: Recovery only
// reports the clean window that ended the LAST streak.
func TestBurnEvalReviolationClearsRecovery(t *testing.T) {
	tr := burnTracker()
	b := newBurnEval(int64(sim.Second), 0.1)
	observeWindow(b, tr, 1*sec, 10, 0)
	observeWindow(b, tr, 2*sec, 10, 10)
	if b.stats.Recovery != 2*sec {
		t.Fatalf("Recovery = %v, want 2s", b.stats.Recovery)
	}
	observeWindow(b, tr, 3*sec, 10, 0) // still burning at end of run
	s := b.stats
	if s.Recovery != 0 {
		t.Errorf("Recovery = %v after re-violation, want 0 (never recovered)", s.Recovery)
	}
	if s.FirstViolation != 1*sec {
		t.Errorf("FirstViolation = %v, want the original 1s", s.FirstViolation)
	}
}

// A tracker reset without a rebase shows up as a negative delta: the window
// is skipped (not scored) and the deltas re-prime.
func TestBurnEvalNegativeDeltaReprimes(t *testing.T) {
	tr := burnTracker()
	b := newBurnEval(int64(sim.Second), 0.1)
	observeWindow(b, tr, 1*sec, 10, 10)
	tr.completed, tr.good = 2, 2 // reset underneath
	b.observe(2*sec, tr)
	if b.stats.Windows != 1 {
		t.Fatalf("negative-delta window was scored: windows=%d", b.stats.Windows)
	}
	observeWindow(b, tr, 3*sec, 10, 10)
	if b.stats.Windows != 2 || b.stats.Violated != 0 {
		t.Errorf("post-reprime window wrong: %+v", b.stats)
	}
}

func TestBurnEvalRebase(t *testing.T) {
	tr := burnTracker()
	b := newBurnEval(int64(sim.Second), 0.25)
	observeWindow(b, tr, 1*sec, 10, 0)
	b.rebase(tr)
	s := b.stats
	if s.Windows != 0 || s.Violated != 0 || s.FirstViolation != 0 || s.MaxBurnRate != 0 {
		t.Fatalf("rebase did not clear verdicts: %+v", s)
	}
	if s.WindowNS != int64(sim.Second) || s.Budget != 0.25 {
		t.Fatalf("rebase lost configuration: %+v", s)
	}
	// Deltas re-primed: the next window scores only post-rebase completions.
	observeWindow(b, tr, 2*sec, 4, 4)
	if b.stats.Windows != 1 || b.stats.Violated != 0 {
		t.Errorf("post-rebase window wrong: %+v", b.stats)
	}
}

func TestBurnEvalDefaultBudget(t *testing.T) {
	if b := newBurnEval(1, 0); b.budget != DefaultBurnBudget {
		t.Errorf("budget = %g, want default %g", b.budget, DefaultBurnBudget)
	}
	if got := (BurnStats{}).ViolationRate(); got != 0 {
		t.Errorf("ViolationRate with no windows = %g, want 0", got)
	}
}

// An overloaded run with a tight SLO must stamp a first violation into the
// result through the real telemetry driver.
func TestRunBurnStatsUnderOverload(t *testing.T) {
	cfg := testConfig(3200)
	cfg.SLOms = 1 // queue wait alone blows the objective
	cfg.Telemetry = obs.NewSampler(int64(250*sim.Millisecond), obs.DefaultCapacity)
	res := runServe(t, 1, cfg, &fakeBackend{service: sim.Milliseconds(5)})
	if res.Burn == nil {
		t.Fatal("telemetry armed but Burn is nil")
	}
	if res.Burn.Violated == 0 || res.Burn.FirstViolation == 0 {
		t.Fatalf("overload with a 1ms SLO must burn: %+v", res.Burn)
	}
	if res.Burn.MaxBurnRate <= res.Burn.Budget {
		t.Errorf("MaxBurnRate %g within budget %g under overload",
			res.Burn.MaxBurnRate, res.Burn.Budget)
	}
}

// Edge case: offered load so low that nothing is admitted before the time
// bound. Every rate must come back zero, not NaN, and the burn windows all
// score clean.
func TestRunZeroAdmittedQueries(t *testing.T) {
	cfg := testConfig(0.001) // one arrival per ~1000s, bound at 2s
	cfg.MaxSimTime = 2 * sim.Second
	cfg.Telemetry = obs.NewSampler(int64(250*sim.Millisecond), obs.DefaultCapacity)
	res := runServe(t, 1, cfg, &fakeBackend{service: sim.Milliseconds(5)})

	if !res.HitMaxSimTime || res.Warmed {
		t.Fatalf("expected an unwarmed time-bounded run: %+v", res)
	}
	if res.SLO.Admitted != 0 || res.SLO.Completed != 0 {
		t.Fatalf("expected zero admissions: %+v", res.SLO)
	}
	for name, v := range map[string]float64{
		"CompletedQPS": res.CompletedQPS(),
		"GoodputQPS":   res.GoodputQPS(),
		"ShedRate":     res.SLO.ShedRate(),
	} {
		if v != 0 { // NaN fails this comparison too
			t.Errorf("%s = %g with zero admitted queries, want 0", name, v)
		}
	}
	if res.Burn == nil || res.Burn.Windows == 0 {
		t.Fatalf("burn evaluator saw no windows: %+v", res.Burn)
	}
	if res.Burn.Violated != 0 || res.Burn.FirstViolation != 0 {
		t.Errorf("empty windows scored as violations: %+v", res.Burn)
	}
}

// Edge case: the warm-up target exceeds what the run can complete before
// MaxSimTime. The result must report Warmed=false with an empty measurement
// window rather than leaking transient statistics.
func TestRunWarmupLongerThanRun(t *testing.T) {
	cfg := testConfig(200)
	cfg.WarmupQueries = 1 << 30
	cfg.MaxSimTime = 2 * sim.Second
	res := runServe(t, 1, cfg, &fakeBackend{service: sim.Milliseconds(5)})
	if res.Warmed || !res.HitMaxSimTime {
		t.Fatalf("expected an unwarmed time-bounded run: %+v", res)
	}
	if res.MeasuredStart != res.MeasuredEnd {
		t.Fatalf("unwarmed run has a non-empty window: [%v, %v]",
			res.MeasuredStart, res.MeasuredEnd)
	}
	if res.ElapsedSeconds() != 0 || res.CompletedQPS() != 0 || res.GoodputQPS() != 0 {
		t.Errorf("rates over an empty window: %g qps, %g goodput",
			res.CompletedQPS(), res.GoodputQPS())
	}
}

// Edge case: a single tenant with weight zero. Smooth WRR normalizes the
// degenerate weight to 1, so dispatch proceeds and every completion lands on
// that tenant.
func TestRunSingleTenantZeroWeight(t *testing.T) {
	cfg := testConfig(200)
	cfg.Tenants = []Tenant{{Name: "solo", Weight: 0}}
	res := runServe(t, 1, cfg, &fakeBackend{service: sim.Milliseconds(5)})
	if !res.Warmed || res.HitMaxSimTime {
		t.Fatalf("run did not complete normally: %+v", res)
	}
	if len(res.SLO.Tenants) != 1 || res.SLO.Tenants[0].Name != "solo" {
		t.Fatalf("tenant stats = %+v", res.SLO.Tenants)
	}
	if got := res.SLO.Tenants[0].Completed; got != res.SLO.Completed || got == 0 {
		t.Errorf("solo tenant completed %d of %d", got, res.SLO.Completed)
	}
}
