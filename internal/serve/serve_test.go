package serve

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rng"
	"repro/internal/sim"
)

// fakeBackend executes every query as a fixed simulated service time.
type fakeBackend struct {
	service sim.Duration
	outcome exec.Outcome
}

func (b *fakeBackend) Execute(p *sim.Proc, pred core.Predicate, access exec.AccessChooser) exec.QueryResult {
	start := p.Now()
	p.Hold(b.service)
	return exec.QueryResult{Pred: pred, Submitted: start, Completed: p.Now(), Outcome: b.outcome}
}

func testConfig(lambda float64) Config {
	return Config{
		Arrival:        ArrivalSpec{Kind: Poisson, RateQPS: lambda},
		Tenants:        DefaultTenants(2),
		MaxInService:   4,
		MaxQueue:       16,
		MaxQueueWait:   sim.Milliseconds(200),
		SLOms:          50,
		WarmupQueries:  50,
		MeasureQueries: 500,
		Sample: func(src *rng.Source) (core.Predicate, string) {
			lo := int64(src.Intn(1000))
			return core.Predicate{Attr: 1, Lo: lo, Hi: lo}, "fake"
		},
		Access: func(core.Predicate) exec.AccessKind { return exec.AccessClustered },
	}
}

func runServe(t *testing.T, seed int64, cfg Config, backend Executor) Result {
	t.Helper()
	eng := sim.New()
	res, err := Run(eng, rng.NewFactory(seed), cfg, backend)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// Underloaded: 4 slots x 5ms service = 800 q/s capacity, offered 200 q/s.
// Everything admitted completes, goodput is near-total, nothing sheds for
// queue-full reasons.
func TestRunUnderloaded(t *testing.T) {
	backend := &fakeBackend{service: sim.Milliseconds(5)}
	res := runServe(t, 1, testConfig(200), backend)
	if !res.Warmed || res.HitMaxSimTime {
		t.Fatalf("run did not complete normally: %+v", res)
	}
	if res.SLO.Completed != 500 {
		t.Fatalf("completed %d, want 500", res.SLO.Completed)
	}
	if res.SLO.ShedQueueFull != 0 || res.SLO.ShedAged != 0 {
		t.Fatalf("unexpected sheds in underload: %+v", res.SLO)
	}
	if res.SLO.Good < 490 {
		t.Fatalf("goodput %d of 500 too low for an underloaded system", res.SLO.Good)
	}
	qps := res.CompletedQPS()
	if qps < 150 || qps > 250 {
		t.Fatalf("completed qps %.1f, want about the offered 200", qps)
	}
	// Latency at 25% utilization is near the bare 5ms service time.
	if p99 := res.SLO.Latency.P99; p99 > 50 {
		t.Fatalf("p99 %.1fms too high for underload", p99)
	}
}

// Overloaded at 4x capacity: the bounded queue sheds, completions flow at
// the service rate, and admitted-query latency stays bounded by the queue
// cap (MaxQueue x service / slots) rather than growing with offered load.
func TestRunOverloadedSheds(t *testing.T) {
	backend := &fakeBackend{service: sim.Milliseconds(5)}
	res := runServe(t, 1, testConfig(3200), backend)
	if !res.Warmed || res.HitMaxSimTime {
		t.Fatalf("run did not complete normally: %+v", res)
	}
	if res.SLO.ShedQueueFull == 0 {
		t.Fatalf("overload must shed queue-full, got %+v", res.SLO)
	}
	if rate := res.SLO.ShedRate(); rate < 0.5 {
		t.Fatalf("shed rate %.2f too low for 4x overload", rate)
	}
	// Worst case queue wait: 16 queued / 4 slots x 5ms = 20ms; p99 latency
	// stays near 25ms, not the unbounded value an unlimited queue would see.
	if p99 := res.SLO.Latency.P99; p99 > 100 {
		t.Fatalf("admitted p99 %.1fms not bounded under overload", p99)
	}
	qps := res.CompletedQPS()
	if qps < 600 || qps > 900 {
		t.Fatalf("completed qps %.1f, want about the 800 q/s capacity", qps)
	}
}

// A tight age-out bound with a saturated queue sheds ShedAged at dequeue.
func TestRunAgesOutStaleQueries(t *testing.T) {
	cfg := testConfig(3200)
	cfg.MaxQueueWait = sim.Milliseconds(1) // any queue wait ages out
	backend := &fakeBackend{service: sim.Milliseconds(5)}
	res := runServe(t, 1, cfg, backend)
	if res.SLO.ShedAged == 0 {
		t.Fatalf("expected aged-out sheds with a 1ms bound: %+v", res.SLO)
	}
	// The 1:1 token/item invariant must survive the sheds: every measured
	// completion or shed traces to a measured arrival, except the bounded
	// carryover admitted before the warm-up reset (at most a full queue
	// plus the in-service slots).
	total := res.SLO.Completed + res.SLO.TotalShed()
	carryover := int64(cfg.MaxQueue + cfg.MaxInService)
	if total > res.SLO.Arrivals+carryover {
		t.Fatalf("accounting leak: completed+shed %d > arrivals %d + carryover %d",
			total, res.SLO.Arrivals, carryover)
	}
}

// Failed executions count against goodput even when fast.
func TestRunFailedExecutionsAreNotGoodput(t *testing.T) {
	backend := &fakeBackend{service: sim.Milliseconds(5), outcome: exec.OutcomeFailed}
	res := runServe(t, 1, testConfig(200), backend)
	if res.SLO.Good != 0 {
		t.Fatalf("goodput %d with all executions failed", res.SLO.Good)
	}
	if res.Outcomes.Failed != res.SLO.Completed {
		t.Fatalf("outcome tally %+v does not match completed %d", res.Outcomes, res.SLO.Completed)
	}
}

// A run must be a pure function of (seed, config): byte-identical results.
func TestRunDeterministic(t *testing.T) {
	for _, kind := range []ArrivalKind{Poisson, Bursty, Diurnal} {
		cfg := testConfig(1200)
		cfg.Arrival.Kind = kind
		a := runServe(t, 7, cfg, &fakeBackend{service: sim.Milliseconds(5)})
		b := runServe(t, 7, cfg, &fakeBackend{service: sim.Milliseconds(5)})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: same seed diverged:\n%+v\nvs\n%+v", kind, a, b)
		}
	}
}

// MaxSimTime must bound a run whose completion target is unreachable.
func TestRunHitsMaxSimTime(t *testing.T) {
	cfg := testConfig(10) // 10 q/s: 550 completions would need 55s
	cfg.MaxSimTime = 2 * sim.Second
	res := runServe(t, 1, cfg, &fakeBackend{service: sim.Milliseconds(5)})
	if !res.HitMaxSimTime {
		t.Fatalf("expected the time bound to trigger: %+v", res)
	}
	if res.MeasuredEnd > sim.Time(2*sim.Second)+sim.Time(sim.Millisecond) {
		t.Fatalf("run overran MaxSimTime: end %v", res.MeasuredEnd)
	}
}

// Weighted round-robin: under saturation a 3:1 weight split yields about a
// 3:1 completion split.
func TestRunWeightedFairness(t *testing.T) {
	cfg := testConfig(3200)
	cfg.Tenants = []Tenant{{Name: "gold", Weight: 3}, {Name: "bronze", Weight: 1}}
	cfg.MaxQueue = 64
	res := runServe(t, 3, cfg, &fakeBackend{service: sim.Milliseconds(5)})
	var gold, bronze int64
	for _, ts := range res.SLO.Tenants {
		switch ts.Name {
		case "gold":
			gold = ts.Completed
		case "bronze":
			bronze = ts.Completed
		}
	}
	if gold == 0 || bronze == 0 {
		t.Fatalf("both tenants must complete work: gold=%d bronze=%d", gold, bronze)
	}
	ratio := float64(gold) / float64(bronze)
	if ratio < 2.2 || ratio > 4 {
		t.Fatalf("completion ratio %.2f, want about 3 for 3:1 weights", ratio)
	}
}

// Smooth WRR must be deterministic and proportional when all queues are
// backlogged, with ties broken by tenant index.
func TestSmoothWRRSequence(t *testing.T) {
	q := newTenantQueues([]Tenant{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}})
	// Backlog matching the weights (6 a's, 2 b's) so the full pop sequence
	// exercises two smooth-WRR cycles without either queue running dry early.
	for i := 0; i < 8; i++ {
		tenant := 0
		if i >= 6 {
			tenant = 1
		}
		q.Push(queued{id: int64(i), tenant: tenant})
	}
	var order []string
	for {
		item, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, []string{"a", "b"}[item.tenant])
	}
	// Classic smooth-WRR interleave for 3:1 is a a b a repeated.
	want := []string{"a", "a", "b", "a", "a", "a", "b", "a"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("WRR order %v, want %v", order, want)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig(100)
	cfg.Sample = nil
	if _, err := Run(sim.New(), rng.NewFactory(1), cfg, &fakeBackend{service: 1}); err == nil {
		t.Fatalf("missing Sample must be rejected")
	}
	cfg = testConfig(100)
	cfg.Access = nil
	if _, err := Run(sim.New(), rng.NewFactory(1), cfg, &fakeBackend{service: 1}); err == nil {
		t.Fatalf("missing Access must be rejected")
	}
	cfg = testConfig(100)
	if _, err := Run(sim.New(), rng.NewFactory(1), cfg, nil); err == nil {
		t.Fatalf("missing backend must be rejected")
	}
	cfg = testConfig(100)
	cfg.Tenants = []Tenant{{Name: "x", Weight: -1}}
	if _, err := Run(sim.New(), rng.NewFactory(1), cfg, &fakeBackend{service: 1}); err == nil {
		t.Fatalf("negative tenant weight must be rejected")
	}
}

func TestShedReasonString(t *testing.T) {
	if ShedQueueFull.String() != "queue-full" || ShedAged.String() != "aged-out" ||
		ShedShutdown.String() != "shutdown" {
		t.Fatalf("shed reason names changed")
	}
	if ShedReason(9).String() != "shed(9)" {
		t.Fatalf("out-of-range shed reason: %q", ShedReason(9).String())
	}
}

func TestShedRateCappedAtOne(t *testing.T) {
	// Warm-up carryover can make the raw shed/arrivals ratio exceed 1;
	// the reported rate must cap at 100%.
	s := SLOStats{Arrivals: 100, ShedQueueFull: 99, ShedShutdown: 3}
	if got := s.ShedRate(); got != 1 {
		t.Fatalf("ShedRate = %g, want capped 1", got)
	}
	s = SLOStats{Arrivals: 100, ShedQueueFull: 40}
	if got := s.ShedRate(); got != 0.4 {
		t.Fatalf("ShedRate = %g, want 0.4", got)
	}
	if got := (SLOStats{}).ShedRate(); got != 0 {
		t.Fatalf("empty ShedRate = %g", got)
	}
}
