package serve

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

func TestArrivalKindStringAndParse(t *testing.T) {
	for _, k := range []ArrivalKind{Poisson, Bursty, Diurnal} {
		got, err := ParseArrivalKind(k.String())
		if err != nil {
			t.Fatalf("ParseArrivalKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round-trip %v -> %q -> %v", k, k.String(), got)
		}
	}
	if _, err := ParseArrivalKind("nope"); err == nil {
		t.Fatalf("ParseArrivalKind(nope) should fail")
	}
	if s := ArrivalKind(99).String(); s != "arrival(99)" {
		t.Fatalf("out-of-range String: %q", s)
	}
}

func TestArrivalSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec ArrivalSpec
		ok   bool
	}{
		{"poisson ok", ArrivalSpec{Kind: Poisson, RateQPS: 10}, true},
		{"zero rate", ArrivalSpec{Kind: Poisson, RateQPS: 0}, false},
		{"negative rate", ArrivalSpec{Kind: Poisson, RateQPS: -1}, false},
		{"bad kind", ArrivalSpec{Kind: ArrivalKind(7), RateQPS: 1}, false},
		{"bursty ok", ArrivalSpec{Kind: Bursty, RateQPS: 10}, true},
		{"bursty overdriven", ArrivalSpec{Kind: Bursty, RateQPS: 10, BurstFactor: 8, OnFraction: 0.5}, false},
		{"bursty on-fraction 1", ArrivalSpec{Kind: Bursty, RateQPS: 10, BurstFactor: 0.5, OnFraction: 1}, false},
		{"diurnal ok", ArrivalSpec{Kind: Diurnal, RateQPS: 10}, true},
		{"diurnal negative slot", ArrivalSpec{Kind: Diurnal, RateQPS: 10, Trace: []float64{1, -1}}, false},
		{"diurnal zero trace", ArrivalSpec{Kind: Diurnal, RateQPS: 10, Trace: []float64{0, 0}}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// meanRate draws n gaps and returns the empirical arrival rate in QPS.
func meanRate(t *testing.T, spec ArrivalSpec, n int) float64 {
	t.Helper()
	a, err := NewArrivals(spec, rng.NewSource("arr", 42))
	if err != nil {
		t.Fatalf("NewArrivals: %v", err)
	}
	var elapsed float64
	for i := 0; i < n; i++ {
		g := a.Next()
		if g < 1 {
			t.Fatalf("gap %d below 1ns: %d", i, g)
		}
		elapsed += float64(g)
	}
	return float64(n) / (elapsed / 1e9)
}

// Each arrival process must honor its long-run mean rate: that is the
// contract that makes "offered load" comparable across kinds.
func TestArrivalMeanRates(t *testing.T) {
	for _, spec := range []ArrivalSpec{
		{Kind: Poisson, RateQPS: 500},
		// Short cycles give enough independent on/off blocks for the 5%
		// tolerance; the long-cycle default would need far more samples.
		{Kind: Bursty, RateQPS: 500, CycleMean: 100 * sim.Millisecond},
		{Kind: Bursty, RateQPS: 500, BurstFactor: 2, OnFraction: 0.5, CycleMean: 50 * sim.Millisecond},
		{Kind: Diurnal, RateQPS: 500},
		{Kind: Diurnal, RateQPS: 500, Period: 10 * sim.Second, Trace: []float64{1, 3, 1, 0.5}},
	} {
		got := meanRate(t, spec, 200000)
		if math.Abs(got-spec.RateQPS)/spec.RateQPS > 0.05 {
			t.Errorf("%v: empirical rate %.1f qps, want %.1f +/- 5%%", spec.Kind, got, spec.RateQPS)
		}
	}
}

// The bursty process must actually burst: its inter-arrival squared
// coefficient of variation exceeds the Poisson value of 1.
func TestBurstyIsBurstier(t *testing.T) {
	squaredCV := func(spec ArrivalSpec) float64 {
		a, err := NewArrivals(spec, rng.NewSource("arr", 7))
		if err != nil {
			t.Fatalf("NewArrivals: %v", err)
		}
		var n, sum, sum2 float64
		for i := 0; i < 100000; i++ {
			g := float64(a.Next())
			n++
			sum += g
			sum2 += g * g
		}
		mean := sum / n
		return (sum2/n - mean*mean) / (mean * mean)
	}
	poisson := squaredCV(ArrivalSpec{Kind: Poisson, RateQPS: 500})
	bursty := squaredCV(ArrivalSpec{Kind: Bursty, RateQPS: 500})
	if bursty < poisson*1.5 {
		t.Fatalf("bursty scv %.2f not clearly above poisson scv %.2f", bursty, poisson)
	}
}

// The diurnal process must track its trace: the peak slot sees more
// arrivals than the trough slot.
func TestDiurnalFollowsTrace(t *testing.T) {
	spec := ArrivalSpec{
		Kind: Diurnal, RateQPS: 500,
		Period: 4 * sim.Second,
		Trace:  []float64{0.2, 1.8, 1.8, 0.2},
	}
	a, err := NewArrivals(spec, rng.NewSource("arr", 11))
	if err != nil {
		t.Fatalf("NewArrivals: %v", err)
	}
	counts := make([]int, len(spec.Trace))
	slotLen := float64(spec.Period) / float64(len(spec.Trace))
	var clock float64
	for i := 0; i < 100000; i++ {
		clock += float64(a.Next())
		pos := math.Mod(clock, float64(spec.Period))
		slot := int(pos / slotLen)
		if slot >= len(counts) {
			slot = len(counts) - 1
		}
		counts[slot]++
	}
	if counts[1] < 5*counts[0] || counts[2] < 5*counts[3] {
		t.Fatalf("diurnal counts do not follow 0.2/1.8 trace: %v", counts)
	}
}

// Arrivals must be a pure function of (spec, seed): same inputs, same gaps.
func TestArrivalsDeterministic(t *testing.T) {
	for _, kind := range []ArrivalKind{Poisson, Bursty, Diurnal} {
		spec := ArrivalSpec{Kind: kind, RateQPS: 300}
		a1, _ := NewArrivals(spec, rng.NewSource("arr", 9))
		a2, _ := NewArrivals(spec, rng.NewSource("arr", 9))
		for i := 0; i < 10000; i++ {
			g1, g2 := a1.Next(), a2.Next()
			if g1 != g2 {
				t.Fatalf("%v: gap %d diverged: %d vs %d", kind, i, g1, g2)
			}
		}
	}
}
