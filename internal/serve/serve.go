package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Executor executes one query inside the simulation and reports its typed
// result. exec.Host satisfies it; the indirection keeps this package from
// importing the machine assembly.
type Executor interface {
	Execute(p *sim.Proc, pred core.Predicate, access exec.AccessChooser) exec.QueryResult
}

// Config parameterizes one serving run.
type Config struct {
	// Arrival is the open arrival process (required: RateQPS > 0).
	Arrival ArrivalSpec
	// Tenants are the logical customers; arrivals are assigned uniformly at
	// random across them, weights govern dispatch under contention.
	// Default: 4 equally weighted tenants.
	Tenants []Tenant

	// MaxInService is the MPL governor: the number of service slots, i.e.
	// the most queries executing concurrently. Default 64 (the paper's top
	// closed-loop MPL).
	MaxInService int
	// MaxQueue bounds the admission wait queue, partitioned evenly across
	// tenants: an arrival whose tenant partition is full is shed with
	// ShedQueueFull even if other partitions have room. Per-tenant
	// backpressure is what makes weighted fairness measurable under
	// overload — with one shared bound, a slow tenant's backlog would
	// crowd out every other tenant's admissions. Default 4 x MaxInService.
	MaxQueue int
	// MaxQueueWait ages out queries that waited too long for a service
	// slot: the dispatcher sheds them with ShedAged instead of burning a
	// slot on already-missed deadlines. Default 4 x SLOms.
	MaxQueueWait sim.Duration
	// SLOms is the latency objective for goodput accounting. Default 1000.
	SLOms float64

	// WarmupQueries completions are discarded as the initial transient;
	// the next MeasureQueries completions form the measurement window.
	// Defaults 200 and 2000.
	WarmupQueries  int
	MeasureQueries int
	// MaxSimTime bounds the run in simulated time in case completions
	// cannot reach the target (e.g. offered load far below expectations).
	// Default 3600 simulated seconds.
	MaxSimTime sim.Duration

	// Sample draws one query predicate (and a class label for traces) per
	// admitted arrival, from the given dedicated stream. Required.
	Sample func(src *rng.Source) (core.Predicate, string)
	// Access chooses the access method per predicate. Required.
	Access exec.AccessChooser
	// OnWarm fires once at the warm-up boundary, before the measurement
	// window opens — the hook the machine uses to reset its own hardware
	// statistics in step with the tracker.
	OnWarm func()

	// Telemetry, when non-nil, attaches the run to a windowed time-series
	// sampler: Run registers the serving probes (arrival/goodput/shed
	// rates, queue depth, in-flight count, admission credits, windowed
	// queue wait) and spawns a driver process that samples every window of
	// simulated time and feeds the SLO burn-rate evaluator. The sampler is
	// rebased at the warm-up boundary, right after OnWarm, so measured
	// series exclude the transient. Nil (the default) spawns nothing: the
	// simulation schedule is byte-identical to a telemetry-free build.
	Telemetry *obs.Sampler
	// BurnBudget is the per-window fraction of completions allowed to miss
	// the SLO (or fail) before the window counts as an SLO violation.
	// Default 0.1. Only consulted when Telemetry is set.
	BurnBudget float64
}

func (c Config) withDefaults() Config {
	if len(c.Tenants) == 0 {
		c.Tenants = DefaultTenants(4)
	}
	if c.MaxInService <= 0 {
		c.MaxInService = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInService
	}
	if c.SLOms <= 0 {
		c.SLOms = 1000
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = sim.Milliseconds(4 * c.SLOms)
	}
	if c.WarmupQueries < 0 {
		c.WarmupQueries = 0
	}
	if c.MeasureQueries <= 0 {
		c.MeasureQueries = 2000
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = 3600 * sim.Second
	}
	return c
}

// Validate rejects configs the frontend cannot run.
func (c Config) Validate() error {
	if err := c.Arrival.Validate(); err != nil {
		return err
	}
	if c.Sample == nil {
		return fmt.Errorf("serve: Config.Sample is required")
	}
	if c.Access == nil {
		return fmt.Errorf("serve: Config.Access is required")
	}
	for i, t := range c.Tenants {
		if t.Weight < 0 {
			return fmt.Errorf("serve: tenant %d (%s) has negative weight %g", i, t.Name, t.Weight)
		}
	}
	return nil
}

// OutcomeCounts tallies completed queries by execution outcome.
type OutcomeCounts struct {
	OK       int64 `json:"ok"`
	Retried  int64 `json:"retried"`
	TimedOut int64 `json:"timed_out"`
	Failed   int64 `json:"failed"`
}

func (o *OutcomeCounts) add(out exec.Outcome) {
	switch out {
	case exec.OutcomeOK:
		o.OK++
	case exec.OutcomeRetried:
		o.Retried++
	case exec.OutcomeTimedOut:
		o.TimedOut++
	case exec.OutcomeFailed:
		o.Failed++
	}
}

// Total sums the tallies.
func (o OutcomeCounts) Total() int64 { return o.OK + o.Retried + o.TimedOut + o.Failed }

// Result is one serving run's measured statistics (the post-warm-up
// window only).
type Result struct {
	Arrival    ArrivalKind `json:"arrival"`
	OfferedQPS float64     `json:"offered_qps"`

	SLO      SLOStats      `json:"slo"`
	Outcomes OutcomeCounts `json:"outcomes"`

	MeasuredStart sim.Time `json:"measured_start_ns"`
	MeasuredEnd   sim.Time `json:"measured_end_ns"`

	// Warmed is false when MaxSimTime expired inside warm-up; the SLO
	// window then covers whatever ran after the (never-reached) boundary.
	Warmed bool `json:"warmed"`
	// HitMaxSimTime is true when the run stopped on the time bound rather
	// than the completion target.
	HitMaxSimTime bool `json:"hit_max_sim_time"`

	// Burn is the SLO burn-rate evaluator's verdict over the measured
	// windows — first-violation and recovery times included. Nil when the
	// run had no telemetry attached.
	Burn *BurnStats `json:"burn,omitempty"`
}

// ElapsedSeconds is the measurement window's length in simulated seconds.
func (r Result) ElapsedSeconds() float64 {
	return (r.MeasuredEnd - r.MeasuredStart).Seconds()
}

// CompletedQPS is the measured completion throughput.
func (r Result) CompletedQPS() float64 {
	if e := r.ElapsedSeconds(); e > 0 {
		return float64(r.SLO.Completed) / e
	}
	return 0
}

// GoodputQPS is the measured rate of queries that succeeded within the SLO.
func (r Result) GoodputQPS() float64 {
	if e := r.ElapsedSeconds(); e > 0 {
		return float64(r.SLO.Good) / e
	}
	return 0
}

// Run executes one open-system serving run to completion on the engine:
// it spawns the arrival process and MaxInService worker processes, runs the
// engine until the measurement target (or MaxSimTime), sheds the queued
// residue, and returns the measured statistics.
//
// Determinism: the run draws from exactly three dedicated streams —
// "serve.arrivals" (inter-arrival gaps), "serve.tenant" (tenant
// assignment), and "serve.sample" (predicate sampling) — in arrival order,
// so the full admission schedule is a pure function of (seed, config).
func Run(eng *sim.Engine, streams *rng.Factory, cfg Config, backend Executor) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if backend == nil {
		return Result{}, fmt.Errorf("serve: backend executor is required")
	}

	arrivalSrc := streams.Stream("serve.arrivals")
	tenantSrc := streams.Stream("serve.tenant")
	sampleSrc := streams.Stream("serve.sample")
	arr, err := NewArrivals(cfg.Arrival, arrivalSrc)
	if err != nil {
		return Result{}, err
	}

	f := &frontend{
		cfg:     cfg,
		eng:     eng,
		tracker: NewTracker(cfg.Tenants, cfg.SLOms),
		queues:  newTenantQueues(cfg.Tenants),
		work:    sim.NewMailbox[struct{}](eng, "serve.work"),
		backend: backend,
	}
	f.warmed = cfg.WarmupQueries == 0
	if f.warmed {
		f.measuredStart = eng.Now()
	}
	perTenantCap := cfg.MaxQueue / len(cfg.Tenants)
	if perTenantCap < 1 {
		perTenantCap = 1
	}

	// Telemetry driver: one process holding one window of simulated time
	// per iteration, sampling every probe and scoring the window's SLO
	// burn. Sim-time events only — the series is as deterministic as the
	// simulation itself.
	if cfg.Telemetry != nil {
		f.burn = newBurnEval(cfg.Telemetry.WindowNS(), cfg.BurnBudget)
		f.registerProbes(cfg.Telemetry)
		window := sim.Duration(cfg.Telemetry.WindowNS())
		eng.Spawn("serve.telemetry", func(p *sim.Proc) {
			for {
				p.Hold(window)
				if eng.Stopped() {
					return
				}
				cfg.Telemetry.Sample(int64(p.Now()))
				f.burn.observe(p.Now(), f.tracker)
			}
		})
	}

	eng.Spawn("serve.arrivals", func(p *sim.Proc) {
		for {
			p.Hold(arr.Next())
			if eng.Stopped() {
				return
			}
			tenant := tenantSrc.Intn(len(cfg.Tenants))
			f.tracker.Arrival(tenant)
			if f.queues.TenantLen(tenant) >= perTenantCap {
				f.tracker.Shed(tenant, ShedQueueFull)
				continue
			}
			f.nextID++
			pred, class := cfg.Sample(sampleSrc)
			f.tracker.Admit(tenant)
			f.queues.Push(queued{
				id:       f.nextID,
				tenant:   tenant,
				pred:     pred,
				class:    class,
				arrived:  p.Now(),
				admitted: p.Now(),
			})
			// One work token per queued item: the token mailbox is the
			// governor's credit ledger, and the 1:1 invariant between
			// tokens and queued items must hold even across age-out sheds
			// (a shed consumes its token and the worker loops).
			f.work.Put(struct{}{})
		}
	})

	for w := 0; w < cfg.MaxInService; w++ {
		eng.Spawn(fmt.Sprintf("serve.worker%d", w), func(p *sim.Proc) {
			f.worker(p)
		})
	}

	if err := eng.RunUntil(eng.Now() + sim.Time(cfg.MaxSimTime)); err != nil {
		return Result{}, err
	}
	hitTime := !f.done
	eng.Stop() // idempotent; covers the MaxSimTime path

	// Shed the queued residue with a typed outcome so every admitted query
	// is accounted for.
	for _, item := range f.queues.Drain() {
		f.tracker.Shed(item.tenant, ShedShutdown)
	}

	end := eng.Now()
	res := Result{
		Arrival:       arr.Kind(),
		OfferedQPS:    arr.RateQPS(),
		SLO:           f.tracker.Snapshot(),
		Outcomes:      f.outcomes,
		MeasuredStart: f.measuredStart,
		MeasuredEnd:   end,
		Warmed:        f.warmed,
		HitMaxSimTime: hitTime,
	}
	if !f.warmed {
		res.MeasuredStart = end // empty window: no measured statistics
	}
	if f.burn != nil {
		b := f.burn.stats
		res.Burn = &b
	}
	return res, nil
}

// frontend is the serving run's shared mutable state. The simulation kernel
// runs one process at a time, so no locking is needed.
type frontend struct {
	cfg     Config
	eng     *sim.Engine
	tracker *Tracker
	queues  *tenantQueues
	work    *sim.Mailbox[struct{}]
	backend Executor

	nextID         int64
	completedTotal int64
	inflight       int // queries currently executing (telemetry probe)
	outcomes       OutcomeCounts
	warmed         bool
	done           bool
	measuredStart  sim.Time
	burn           *burnEval // nil without telemetry
}

// registerProbes wires the serving layer's time series onto the sampler.
// Closure-state probes (the windowed queue-wait mean, the windowed shed
// rate) re-prime themselves at warm-up because Rebase invokes every probe.
func (f *frontend) registerProbes(ts *obs.Sampler) {
	tr := f.tracker
	ts.Register("serve.arrival_qps", obs.SeriesRate, func() float64 { return float64(tr.arrivals) })
	ts.Register("serve.admitted_qps", obs.SeriesRate, func() float64 { return float64(tr.admitted) })
	ts.Register("serve.completed_qps", obs.SeriesRate, func() float64 { return float64(tr.completed) })
	ts.Register("serve.goodput_qps", obs.SeriesRate, func() float64 { return float64(tr.good) })
	ts.Register("serve.shed_qps", obs.SeriesRate, func() float64 { return float64(tr.shedTotal()) })
	ts.Register("serve.queue_depth", obs.SeriesGauge, func() float64 { return float64(f.queues.Len()) })
	ts.Register("serve.inflight", obs.SeriesGauge, func() float64 { return float64(f.inflight) })
	ts.Register("serve.credits", obs.SeriesGauge, func() float64 {
		return float64(f.cfg.MaxInService - f.inflight)
	})
	// Windowed queue-wait mean: difference the histogram's cumulative sum
	// and count across sample instants.
	prevSum, prevN := tr.queueWait.Sum(), tr.queueWait.N()
	ts.Register("serve.queue_wait_ms", obs.SeriesGauge, func() float64 {
		sum, n := tr.queueWait.Sum(), tr.queueWait.N()
		dSum, dN := sum-prevSum, n-prevN
		prevSum, prevN = sum, n
		if dN <= 0 || dSum < 0 {
			return 0
		}
		return dSum / float64(dN)
	})
	// Windowed shed rate: sheds over arrivals within the window.
	prevShed, prevArr := tr.shedTotal(), tr.arrivals
	ts.Register("serve.shed_rate", obs.SeriesGauge, func() float64 {
		shed, arr := tr.shedTotal(), tr.arrivals
		dShed, dArr := shed-prevShed, arr-prevArr
		prevShed, prevArr = shed, arr
		if dArr <= 0 || dShed < 0 {
			return 0
		}
		return float64(dShed) / float64(dArr)
	})
}

// worker is one service slot: it blocks on the work-token mailbox, picks
// the next query under weighted round-robin, sheds it if it aged out in the
// queue, otherwise executes it and records the result.
func (f *frontend) worker(p *sim.Proc) {
	for {
		if _, ok := f.work.Recv(p); !ok {
			return
		}
		if f.eng.Stopped() {
			return
		}
		item, ok := f.queues.Pop()
		if !ok {
			// A token without an item means the 1:1 invariant broke.
			panic("serve: work token with empty queue")
		}
		wait := p.Now() - item.arrived
		if sim.Duration(wait) > f.cfg.MaxQueueWait {
			f.tracker.Shed(item.tenant, ShedAged)
			continue
		}
		f.inflight++
		res := f.backend.Execute(p, item.pred, f.cfg.Access)
		f.inflight--
		waitMS := sim.Duration(wait).Milliseconds()
		latencyMS := sim.Duration(p.Now() - item.arrived).Milliseconds()
		f.tracker.Complete(item.tenant, waitMS, latencyMS, res.Outcome.Succeeded())
		f.outcomes.add(res.Outcome)
		f.completedTotal++
		f.advance(p)
	}
}

// advance moves the warm-up / measurement state machine after a completion.
func (f *frontend) advance(p *sim.Proc) {
	if !f.warmed {
		if f.completedTotal >= int64(f.cfg.WarmupQueries) {
			f.warmed = true
			f.measuredStart = p.Now()
			f.tracker.Reset()
			f.outcomes = OutcomeCounts{}
			if f.cfg.OnWarm != nil {
				f.cfg.OnWarm()
			}
			// Rebase the time series and burn deltas after every cumulative
			// source (tracker, machine stats via OnWarm) has reset, so the
			// first measured window never sees a negative delta.
			if f.burn != nil {
				f.burn.rebase(f.tracker)
			}
			f.cfg.Telemetry.Rebase(int64(p.Now()))
		}
		return
	}
	if !f.done && f.tracker.Completed() >= int64(f.cfg.MeasureQueries) {
		f.done = true
		f.eng.Stop()
	}
}
