package catalog

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func testInfo(t *testing.T) *RelationInfo {
	t.Helper()
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 800, Seed: 2})
	pl := core.NewRangeForRelation(rel, storage.Unique1, 4)
	info := &RelationInfo{
		Name:        "wisconsin",
		Cardinality: 800,
		Placement:   pl,
		Nodes:       make(map[int]NodeStats),
	}
	for node := 0; node < 4; node++ {
		info.Nodes[node] = NodeStats{
			Tuples:    200,
			DataPages: 6,
			Indexes: []IndexInfo{
				{Attr: storage.Unique2, Name: "unique2", Clustered: true, Pages: 2, Height: 2},
				{Attr: storage.Unique1, Name: "unique1", Pages: 2, Height: 2},
			},
			AuxEntries: 200,
			AuxPages:   1,
		}
	}
	return info
}

func TestRegisterAndLookup(t *testing.T) {
	c := New()
	info := testInfo(t)
	if err := c.Register(info); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Lookup("wisconsin")
	if !ok || got.Name != "wisconsin" {
		t.Fatal("lookup failed")
	}
	if got.Strategy() != "range" {
		t.Fatalf("strategy = %s", got.Strategy())
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Lookup("nope"); ok {
		t.Fatal("found unregistered relation")
	}
}

func TestRegisterValidation(t *testing.T) {
	c := New()
	if err := c.Register(&RelationInfo{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := c.Register(&RelationInfo{Name: "r"}); err == nil {
		t.Error("nil placement accepted")
	}
	info := testInfo(t)
	if err := c.Register(info); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(info); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestDrop(t *testing.T) {
	c := New()
	if err := c.Drop("missing"); err == nil {
		t.Error("dropping unknown relation should fail")
	}
	info := testInfo(t)
	if err := c.Register(info); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("wisconsin"); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("drop did not remove the relation")
	}
}

func TestRelationsSorted(t *testing.T) {
	c := New()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		info := testInfo(t)
		info.Name = name
		if err := c.Register(info); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Relations()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("relations = %v", got)
		}
	}
}

func TestTotalPagesAndBalance(t *testing.T) {
	info := testInfo(t)
	// Per node: 6 data + 4 index + 1 aux = 11; 4 nodes = 44.
	if got := info.TotalPages(); got != 44 {
		t.Fatalf("total pages = %d", got)
	}
	min, max, mean := info.TupleBalance()
	if min != 200 || max != 200 || mean != 200 {
		t.Fatalf("balance = %d/%d/%g", min, max, mean)
	}
}

func TestTupleBalanceCountsEmptyNodes(t *testing.T) {
	info := testInfo(t)
	delete(info.Nodes, 3) // node 3 stores nothing
	min, _, mean := info.TupleBalance()
	if min != 0 {
		t.Fatalf("min = %d, want 0 for the empty node", min)
	}
	if mean != 150 {
		t.Fatalf("mean = %g", mean)
	}
}

func TestDescribeTable(t *testing.T) {
	info := testInfo(t)
	s := info.Describe().String()
	for _, want := range []string{"wisconsin", "range", "node", "aux entries"} {
		if !strings.Contains(s, want) {
			t.Fatalf("describe table missing %q:\n%s", want, s)
		}
	}
}
