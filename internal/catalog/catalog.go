// Package catalog implements the System Catalog manager of Figure 7: it
// tracks the relations defined in the system, the partitioning strategy
// each is declustered with, per-disk tuple and page counts, and index
// metadata. The query optimizer's localization data (range boundaries,
// BERD auxiliary cuts, MAGIC's grid directory) lives inside the registered
// Placement, exactly as the paper stores the grid directory "in the
// database catalog".
package catalog

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
)

// IndexInfo describes one index of a fragment.
type IndexInfo struct {
	Attr      int
	Name      string
	Clustered bool
	Pages     int
	Height    int
}

// NodeStats records what one node stores for a relation.
type NodeStats struct {
	Tuples     int
	DataPages  int
	Indexes    []IndexInfo
	AuxEntries int // BERD auxiliary entries stored on this node
	AuxPages   int
}

// TotalPages reports all pages the node devotes to the relation.
func (n NodeStats) TotalPages() int {
	p := n.DataPages + n.AuxPages
	for _, ix := range n.Indexes {
		p += ix.Pages
	}
	return p
}

// RelationInfo is one catalog entry.
type RelationInfo struct {
	Name        string
	Cardinality int
	Placement   core.Placement
	Nodes       map[int]NodeStats
}

// Strategy reports the declustering strategy name.
func (r *RelationInfo) Strategy() string { return r.Placement.Name() }

// TotalPages sums pages across all nodes.
func (r *RelationInfo) TotalPages() int {
	total := 0
	for _, n := range r.Nodes {
		total += n.TotalPages()
	}
	return total
}

// TupleBalance reports the min, max and mean tuples per node over the
// processors the placement spans (nodes with no entry count as zero).
func (r *RelationInfo) TupleBalance() (min, max int, mean float64) {
	p := r.Placement.Processors()
	first := true
	total := 0
	for node := 0; node < p; node++ {
		t := r.Nodes[node].Tuples
		if first {
			min, max, first = t, t, false
		}
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
		total += t
	}
	return min, max, float64(total) / float64(p)
}

// Describe renders the per-node layout as a table.
func (r *RelationInfo) Describe() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("relation %s: %d tuples, %s declustered over %d processors",
			r.Name, r.Cardinality, r.Strategy(), r.Placement.Processors()),
		"node", "tuples", "data pages", "index pages", "aux entries")
	nodes := make([]int, 0, len(r.Nodes))
	for n := range r.Nodes {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		ns := r.Nodes[n]
		idx := 0
		for _, ix := range ns.Indexes {
			idx += ix.Pages
		}
		tb.AddRow(n, ns.Tuples, ns.DataPages, idx+ns.AuxPages, ns.AuxEntries)
	}
	return tb
}

// Catalog is the system-wide relation registry.
type Catalog struct {
	relations map[string]*RelationInfo
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{relations: make(map[string]*RelationInfo)}
}

// Register adds a relation; registering a duplicate name is an error.
func (c *Catalog) Register(info *RelationInfo) error {
	if info.Name == "" {
		return fmt.Errorf("catalog: relation needs a name")
	}
	if info.Placement == nil {
		return fmt.Errorf("catalog: relation %s has no placement", info.Name)
	}
	if _, dup := c.relations[info.Name]; dup {
		return fmt.Errorf("catalog: relation %s already registered", info.Name)
	}
	if info.Nodes == nil {
		info.Nodes = make(map[int]NodeStats)
	}
	c.relations[info.Name] = info
	return nil
}

// Lookup finds a relation.
func (c *Catalog) Lookup(name string) (*RelationInfo, bool) {
	r, ok := c.relations[name]
	return r, ok
}

// Drop removes a relation; dropping an unknown relation is an error.
func (c *Catalog) Drop(name string) error {
	if _, ok := c.relations[name]; !ok {
		return fmt.Errorf("catalog: relation %s not registered", name)
	}
	delete(c.relations, name)
	return nil
}

// Relations lists registered relation names, sorted.
func (c *Catalog) Relations() []string {
	out := make([]string, 0, len(c.relations))
	for n := range c.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of registered relations.
func (c *Catalog) Len() int { return len(c.relations) }
