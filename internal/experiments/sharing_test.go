package experiments

import (
	"strings"
	"testing"
)

// TestRunSharingSavesReads runs the shared-scan campaign at quick scale on
// the Moderate-Low mix and checks the tentpole's acceptance bar: at MPL 8,
// at least one strategy reads >= 25% fewer disk pages per query with
// sharing on.
func TestRunSharingSavesReads(t *testing.T) {
	fig, err := FigureByID("11a")
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickScale()
	opts.MPLs = []int{8}
	sr, manifest, err := RunSharing(fig, 0, opts, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(manifest.Reports) != 2*len(fig.Strategies) {
		t.Fatalf("manifest has %d jobs, want %d", len(manifest.Reports), 2*len(fig.Strategies))
	}
	if len(sr.Points) != len(fig.Strategies) {
		t.Fatalf("got %d points, want %d", len(sr.Points), len(fig.Strategies))
	}
	for _, p := range sr.Points {
		if p.Off.Sharing != nil {
			t.Errorf("%s: off run carried sharing stats", p.Strategy)
		}
		if p.On.Sharing == nil || p.On.Sharing.Batches == 0 {
			t.Errorf("%s: on run has no batching evidence: %+v", p.Strategy, p.On.Sharing)
		}
	}
	saved, best := sr.MaxSaved()
	t.Logf("best saving: %.1f%% (%s @ MPL %d)", 100*saved, best.Strategy, best.MPL)
	for _, line := range sr.Summary() {
		t.Log(line)
	}
	if saved < 0.25 {
		t.Errorf("best disk-read saving %.1f%% < 25%% acceptance bar", 100*saved)
	}
}

// TestRunSharingRejectsFaults: the campaign refuses fault options up front
// rather than failing deep inside gamma.Build.
func TestRunSharingRejectsFaults(t *testing.T) {
	fig, err := FigureByID("11a")
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickScale()
	opts.ArmFaults(KillSpec(1, opts.Processors), true)
	if _, _, err := RunSharing(fig, 0, opts, CampaignOptions{}); err == nil ||
		!strings.Contains(err.Error(), "legacy scheduler") {
		t.Fatalf("RunSharing with faults err = %v, want legacy-scheduler error", err)
	}
}

// TestSharingSummaryShape pins the greppable summary-line format CI's smoke
// job matches against.
func TestSharingSummaryShape(t *testing.T) {
	sr := SharingResult{Figure: Figure{ID: "11a"}}
	sr.Points = append(sr.Points, SharingPoint{Strategy: "range", MPL: 8})
	lines := sr.Summary()
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "sharing fig11a/range mpl=8: reads/qry ") {
		t.Fatalf("summary shape changed: %q", lines)
	}
}
