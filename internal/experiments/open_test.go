package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
)

func openTestOptions() (Options, OpenOptions) {
	opts := Options{
		Cardinality:    5000,
		Processors:     32,
		WarmupQueries:  10,
		MeasureQueries: 60,
		Seed:           1,
	}
	oopts := OpenOptions{
		Arrival: serve.Poisson,
		Lambdas: []float64{50, 200},
		Tenants: 2,
	}
	return opts, oopts
}

// The open-system campaign must reassemble identically at any worker
// count — same points in canonical order with the same measurements —
// and stamp every manifest job with its arrival kind and offered load.
func TestOpenSystemDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fig, err := FigureByID("8a")
	if err != nil {
		t.Fatal(err)
	}
	figs := []Figure{fig}
	opts, oopts := openTestOptions()

	serial, err := RunOpenSystem(figs, opts, oopts, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunOpenSystem(figs, opts, oopts, CampaignOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the measured points, not the whole figure: Figure.Mix is a
	// func value, which DeepEqual rejects even when identical.
	if !reflect.DeepEqual(serial.Figures[0].Points, parallel.Figures[0].Points) {
		t.Fatalf("workers=1 and workers=4 disagree:\n%+v\nvs\n%+v",
			serial.Figures[0].Points, parallel.Figures[0].Points)
	}
	if !reflect.DeepEqual(serial.Figures[0].Notes, parallel.Figures[0].Notes) {
		t.Fatalf("notes disagree across worker counts")
	}

	fr := serial.Figures[0]
	wantPoints := len(fig.Strategies) * len(oopts.Lambdas)
	if len(fr.Points) != wantPoints {
		t.Fatalf("got %d points, want %d", len(fr.Points), wantPoints)
	}
	for _, p := range fr.Points {
		if p.Result.Serve.SLO.Completed == 0 {
			t.Fatalf("point %s/λ=%g completed nothing", p.Strategy, p.Lambda)
		}
	}

	// Manifest jobs carry the open-system workload fields.
	if serial.Manifest.Jobs != wantPoints {
		t.Fatalf("manifest jobs = %d, want %d", serial.Manifest.Jobs, wantPoints)
	}
	for _, r := range serial.Manifest.Reports {
		if r.Arrival != "poisson" {
			t.Fatalf("job %s arrival = %q", r.ID, r.Arrival)
		}
		if r.OfferedQPS != 50 && r.OfferedQPS != 200 {
			t.Fatalf("job %s offered_qps = %g", r.ID, r.OfferedQPS)
		}
	}

	// The rendered tables must include every strategy and a summary row
	// per strategy with a knee.
	table := fr.Table().String()
	summary := fr.SummaryTable().String()
	for _, s := range fig.Strategies {
		if !strings.Contains(table, s) && !strings.Contains(summary, s) {
			t.Fatalf("strategy %s missing from output:\n%s\n%s", s, table, summary)
		}
	}
	for _, sum := range fr.Summaries() {
		if sum.KneeLambda == 0 || sum.Sustainable <= 0 {
			t.Fatalf("summary without a knee: %+v", sum)
		}
	}
}
