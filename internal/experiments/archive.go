package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Archive is a JSON-serializable snapshot of a set of figure runs, so a
// full paper-scale run can be stored alongside the repository and later
// runs compared against it for regressions.
type Archive struct {
	// Label is free-form provenance (date, host, git revision).
	Label   string          `json:"label,omitempty"`
	Options Options         `json:"options"`
	Figures []FigureArchive `json:"figures"`
}

// FigureArchive is the serializable part of a FigureResult (the Figure's
// Mix function cannot round-trip; its identity does).
type FigureArchive struct {
	ID          string   `json:"id"`
	Title       string   `json:"title"`
	Correlation string   `json:"correlation"`
	Notes       []string `json:"notes,omitempty"`
	Points      []Point  `json:"points"`
}

// Archive converts a FigureResult into its serializable form.
func (fr FigureResult) Archive() FigureArchive {
	return FigureArchive{
		ID:          fr.Figure.ID,
		Title:       fr.Figure.Title,
		Correlation: fr.Figure.Correlation.String(),
		Notes:       fr.Notes,
		Points:      fr.Points,
	}
}

// WriteArchive serializes the archive as indented JSON.
func WriteArchive(w io.Writer, a Archive) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ReadArchive parses an archive produced by WriteArchive.
func ReadArchive(r io.Reader) (Archive, error) {
	var a Archive
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return a, fmt.Errorf("experiments: reading archive: %w", err)
	}
	return a, nil
}

// throughputKey identifies one measured point across archives.
type throughputKey struct {
	Figure   string
	Strategy string
	MPL      int
}

func (k throughputKey) String() string {
	return fmt.Sprintf("fig %s / %s @ MPL %d", k.Figure, k.Strategy, k.MPL)
}

func archiveThroughputs(a Archive) map[throughputKey]float64 {
	out := make(map[throughputKey]float64)
	for _, f := range a.Figures {
		for _, p := range f.Points {
			out[throughputKey{f.ID, p.Strategy, p.MPL}] = p.Result.ThroughputQPS
		}
	}
	return out
}

// CompareArchives reports every point whose throughput moved by more than
// tolerance (a fraction, e.g. 0.05 for 5%) between the two archives, plus
// points present in only one of them. An empty result means no regressions.
func CompareArchives(baseline, current Archive, tolerance float64) []string {
	if tolerance <= 0 {
		tolerance = 0.05
	}
	base := archiveThroughputs(baseline)
	cur := archiveThroughputs(current)
	keys := make([]throughputKey, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Figure != b.Figure {
			return a.Figure < b.Figure
		}
		if a.Strategy != b.Strategy {
			return a.Strategy < b.Strategy
		}
		return a.MPL < b.MPL
	})

	var diffs []string
	for _, k := range keys {
		b, inBase := base[k]
		c, inCur := cur[k]
		switch {
		case !inBase:
			diffs = append(diffs, fmt.Sprintf("%s: new point (%.2f q/s)", k, c))
		case !inCur:
			diffs = append(diffs, fmt.Sprintf("%s: missing (was %.2f q/s)", k, b))
		case b == 0:
			if c != 0 {
				diffs = append(diffs, fmt.Sprintf("%s: 0 -> %.2f q/s", k, c))
			}
		default:
			if rel := math.Abs(c-b) / b; rel > tolerance {
				diffs = append(diffs, fmt.Sprintf("%s: %.2f -> %.2f q/s (%+.1f%%)",
					k, b, c, 100*(c-b)/b))
			}
		}
	}
	return diffs
}
