package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gamma"
)

func sampleArchive(qps float64) Archive {
	return Archive{
		Label:   "test",
		Options: QuickScale(),
		Figures: []FigureArchive{{
			ID: "8a", Title: "Low-Low", Correlation: "low",
			Points: []Point{
				{Strategy: "magic", MPL: 64, Result: gamma.RunResult{ThroughputQPS: qps}},
				{Strategy: "range", MPL: 64, Result: gamma.RunResult{ThroughputQPS: 400}},
			},
		}},
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	a := sampleArchive(600)
	var buf bytes.Buffer
	if err := WriteArchive(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "test" || len(got.Figures) != 1 || len(got.Figures[0].Points) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Figures[0].Points[0].Result.ThroughputQPS != 600 {
		t.Fatal("throughput lost")
	}
}

func TestReadArchiveRejectsGarbage(t *testing.T) {
	if _, err := ReadArchive(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCompareArchivesNoDiff(t *testing.T) {
	if diffs := CompareArchives(sampleArchive(600), sampleArchive(612), 0.05); len(diffs) != 0 {
		t.Fatalf("2%% drift flagged: %v", diffs)
	}
}

func TestCompareArchivesFlagsRegression(t *testing.T) {
	diffs := CompareArchives(sampleArchive(600), sampleArchive(480), 0.05)
	if len(diffs) != 1 {
		t.Fatalf("diffs = %v", diffs)
	}
	if !strings.Contains(diffs[0], "magic") || !strings.Contains(diffs[0], "-20.0%") {
		t.Fatalf("diff = %q", diffs[0])
	}
}

func TestCompareArchivesStructuralChanges(t *testing.T) {
	baseline := sampleArchive(600)
	current := sampleArchive(600)
	current.Figures[0].Points = append(current.Figures[0].Points,
		Point{Strategy: "berd", MPL: 64, Result: gamma.RunResult{ThroughputQPS: 300}})
	baseline.Figures[0].Points = append(baseline.Figures[0].Points,
		Point{Strategy: "hash", MPL: 64, Result: gamma.RunResult{ThroughputQPS: 100}})
	diffs := CompareArchives(baseline, current, 0.05)
	joined := strings.Join(diffs, "\n")
	if !strings.Contains(joined, "berd") || !strings.Contains(joined, "new point") {
		t.Fatalf("new point not reported: %v", diffs)
	}
	if !strings.Contains(joined, "hash") || !strings.Contains(joined, "missing") {
		t.Fatalf("missing point not reported: %v", diffs)
	}
}

// An archive written from a real quick run must survive the round trip with
// per-class stats intact.
func TestArchiveFromRealRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fig, _ := FigureByID("8a")
	opts := QuickScale()
	opts.MPLs = []int{8}
	opts.MeasureQueries = 120
	opts.WarmupQueries = 30
	fr, err := Run(fig, opts)
	if err != nil {
		t.Fatal(err)
	}
	a := Archive{Options: opts, Figures: []FigureArchive{fr.Archive()}}
	var buf bytes.Buffer
	if err := WriteArchive(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := got.Figures[0].Points[0]
	if len(p.Result.PerClass) != 2 {
		t.Fatalf("per-class stats lost: %+v", p.Result)
	}
	if diffs := CompareArchives(a, got, 0.01); len(diffs) != 0 {
		t.Fatalf("self-comparison reported diffs: %v", diffs)
	}
}
