package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
)

func TestKillSpec(t *testing.T) {
	if s := KillSpec(0, 8); s.Enabled() {
		t.Fatal("k=0 spec should inject nothing")
	}
	s := KillSpec(2, 8)
	if len(s.Events) != 2 {
		t.Fatalf("events = %v", s.Events)
	}
	if s.Events[0].Node != 0 || s.Events[1].Node != 4 {
		t.Fatalf("k=2 over 8 nodes should spread to {0, 4}, got %v", s.Events)
	}
	for _, ev := range s.Events {
		if ev.Kind != fault.DiskFail || ev.Dur != 0 {
			t.Fatalf("want permanent fail-stops, got %+v", ev)
		}
	}
	if err := s.Validate(8); err != nil {
		t.Fatal(err)
	}
}

// The degraded campaign must complete for every (strategy, k) cell with a
// healthy majority of queries, carry the fault events into the manifest,
// and be reproducible run to run.
func TestRunDegradedCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fig, err := FigureByID("8a")
	if err != nil {
		t.Fatal(err)
	}
	opts := campaignTestOptions()
	opts.MPLs = []int{4}
	ks := []int{0, 1, 2}

	dr, manifest, err := RunDegraded(fig, ks, opts, CampaignOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(fig.Strategies) * len(ks) * len(opts.MPLs)
	if len(dr.Points) != wantPoints {
		t.Fatalf("points = %d, want %d", len(dr.Points), wantPoints)
	}
	for _, p := range dr.Points {
		if p.Result.Outcomes.Succeeded() == 0 {
			t.Fatalf("%s k=%d: no queries succeeded: %s", p.Strategy, p.K, p.Result.Outcomes)
		}
		if len(p.Result.FaultLog) != p.K {
			t.Fatalf("%s k=%d: fault log has %d records", p.Strategy, p.K, len(p.Result.FaultLog))
		}
		if p.Result.ThroughputQPS <= 0 {
			t.Fatalf("%s k=%d: throughput %g", p.Strategy, p.K, p.Result.ThroughputQPS)
		}
	}
	if dr.Outcomes().Succeeded() == 0 {
		t.Fatal("aggregate outcomes empty")
	}
	if !strings.Contains(dr.Outcomes().String(), "ok=") {
		t.Fatalf("outcome summary %q missing the CI grep format", dr.Outcomes().String())
	}

	// Fault events land in the manifest, aligned with job order.
	if manifest.Jobs != wantPoints {
		t.Fatalf("manifest jobs = %d", manifest.Jobs)
	}
	withFaults := 0
	for _, rep := range manifest.Reports {
		if rep.FaultEvents > 0 {
			withFaults++
		}
	}
	if wantFaulty := len(fig.Strategies) * 2; withFaults != wantFaulty {
		t.Fatalf("%d jobs report fault events, want %d (k=1 and k=2 per strategy)", withFaults, wantFaulty)
	}

	// Reproducibility: a second campaign with the same options agrees point
	// for point, fault logs included.
	dr2, _, err := RunDegraded(fig, ks, opts, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dr.Points, dr2.Points) {
		t.Fatal("degraded campaign is not reproducible across runs/worker counts")
	}
}
