package experiments

// Open-system campaigns: instead of sweeping the closed-loop MPL, sweep the
// offered load of an open arrival process and measure what each strategy
// can actually serve — sustainable throughput (the goodput knee), tail
// latency of admitted queries, and shed rate once the admission controller
// starts refusing work. The job decomposition mirrors campaign.go: one
// harness job per (figure, strategy, offered-load) point, shared read-only
// builds, canonical reassembly so output is byte-identical at any worker
// count.

import (
	"fmt"

	"repro/internal/gamma"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
)

// OpenOptions parameterize an open-system campaign on top of the base
// Options (which still supply cardinality, processors, seed and the
// warmup/measure window).
type OpenOptions struct {
	// Arrival is the arrival-process kind; the per-kind shape parameters
	// use the serve package defaults.
	Arrival serve.ArrivalKind `json:"arrival"`
	// Lambdas is the offered-load sweep in queries/second. The default
	// {100, 200, 400, 800} straddles every registered strategy's paper-
	// scale capacity (berd ~340 q/s, range ~420, magic ~600 at MPL 64).
	Lambdas []float64 `json:"lambdas"`
	// Tenants is the number of equally weighted tenants. Default 4.
	Tenants int `json:"tenants"`
	// SLOms is the latency objective for goodput. Default 1000.
	SLOms float64 `json:"slo_ms"`
	// MaxInService is the MPL governor cap. Default 64.
	MaxInService int `json:"max_in_service"`
	// MaxQueue bounds the admission queue. Default 4 x MaxInService.
	MaxQueue int `json:"max_queue,omitempty"`
	// MaxSimTime bounds each point in simulated time (guards the lowest
	// lambdas); zero uses the serve default.
	MaxSimTime sim.Duration `json:"max_sim_time,omitempty"`
}

func (o OpenOptions) withDefaults() OpenOptions {
	if len(o.Lambdas) == 0 {
		o.Lambdas = []float64{100, 200, 400, 800}
	}
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.SLOms <= 0 {
		o.SLOms = 1000
	}
	if o.MaxInService <= 0 {
		o.MaxInService = 64
	}
	return o
}

// OpenPoint is one measured (strategy, offered load) combination.
type OpenPoint struct {
	Strategy string            `json:"strategy"`
	Lambda   float64           `json:"lambda"`
	Result   gamma.ServeResult `json:"result"`
}

// OpenFigureResult holds one figure's open-system sweep.
type OpenFigureResult struct {
	Figure  Figure      `json:"figure"`
	Options Options     `json:"options"`
	Open    OpenOptions `json:"open"`
	Points  []OpenPoint `json:"points"`
	Notes   []string    `json:"notes,omitempty"`
}

// OpenCampaign holds the completed open-system figures plus the harness
// manifest (whose job reports carry the arrival kind and offered load).
type OpenCampaign struct {
	Figures  []OpenFigureResult
	Manifest harness.Manifest
}

// RunOpenSystem executes every (figure, strategy, lambda) combination on
// the harness worker pool, exactly as RunCampaign does for MPL points.
// Results reassemble in canonical order (figures as given, strategies in
// figure order, lambdas in sweep order), so campaign output is
// byte-identical whatever the worker count.
func RunOpenSystem(figs []Figure, opts Options, oopts OpenOptions, copts CampaignOptions) (OpenCampaign, error) {
	opts = opts.withDefaults()
	oopts = oopts.withDefaults()
	cfg := ConfigFor(opts)

	rels := relationCache{}
	builds := make([]figureBuild, 0, len(figs))
	for _, fig := range figs {
		fb, err := buildFigure(fig, rels, opts)
		if err != nil {
			return OpenCampaign{}, err
		}
		builds = append(builds, fb)
	}

	var jobs []harness.Job
	for _, fb := range builds {
		for si, name := range fb.fig.Strategies {
			for _, lambda := range oopts.Lambdas {
				fb, name, pl, lambda := fb, name, fb.placements[si], lambda
				id := fmt.Sprintf("fig%s/%s/%s%g", fb.fig.ID, name, oopts.Arrival, lambda)
				jobs = append(jobs, harness.Job{
					ID:   id,
					Seed: opts.Seed,
					Run: func() (any, error) {
						machine, err := gamma.Build(fb.rel, pl, cfg)
						if err != nil {
							return nil, fmt.Errorf("figure %s/%s: %w", fb.fig.ID, name, err)
						}
						res, err := machine.RunServe(fb.mix, gamma.ServeSpec{
							Arrival:        serve.ArrivalSpec{Kind: oopts.Arrival, RateQPS: lambda},
							Tenants:        serve.DefaultTenants(oopts.Tenants),
							MaxInService:   oopts.MaxInService,
							MaxQueue:       oopts.MaxQueue,
							SLOms:          oopts.SLOms,
							WarmupQueries:  opts.WarmupQueries,
							MeasureQueries: opts.MeasureQueries,
							MaxSimTime:     oopts.MaxSimTime,
							Seed:           opts.Seed,
						})
						if err != nil {
							return nil, fmt.Errorf("figure %s/%s λ=%g: %w", fb.fig.ID, name, lambda, err)
						}
						// Register after the run: RunServe resets the machine
						// (rebuilding the sampler), so the pre-run pointer
						// would be stale. Completed points accumulate on the
						// hub and stay scrapeable after the campaign.
						if copts.Hub != nil && machine.Telemetry != nil {
							copts.Hub.Register(id, machine.Telemetry)
						}
						return res, nil
					},
				})
			}
		}
	}

	values, manifest, err := harness.Execute(jobs, harness.Options{
		Workers:     copts.Workers,
		JobTimeout:  copts.JobTimeout,
		Progress:    copts.Progress,
		Label:       copts.Label,
		IsTransient: copts.IsTransient,
	})
	if err != nil {
		return OpenCampaign{}, err
	}

	out := OpenCampaign{Manifest: manifest}
	j := 0
	for _, fb := range builds {
		fr := OpenFigureResult{Figure: fb.fig, Options: opts, Open: oopts, Notes: fb.notes}
		for _, name := range fb.fig.Strategies {
			for _, lambda := range oopts.Lambdas {
				out.Manifest.Reports[j].Arrival = oopts.Arrival.String()
				out.Manifest.Reports[j].OfferedQPS = lambda
				if v := values[j]; v != nil {
					res := v.(gamma.ServeResult)
					out.Manifest.Reports[j].FaultEvents = len(res.FaultLog)
					out.Manifest.Reports[j].TimeSeries = res.Series
					out.Manifest.Reports[j].HotFragments = res.HotFragments
					fr.Points = append(fr.Points, OpenPoint{
						Strategy: name, Lambda: lambda, Result: res,
					})
				}
				j++
			}
		}
		out.Figures = append(out.Figures, fr)
	}
	return out, manifest.Err()
}

// Point returns the measured result for a (strategy, lambda), or nil.
func (fr OpenFigureResult) Point(strategy string, lambda float64) *gamma.ServeResult {
	for i := range fr.Points {
		if fr.Points[i].Strategy == strategy && fr.Points[i].Lambda == lambda {
			return &fr.Points[i].Result
		}
	}
	return nil
}

func (fr OpenFigureResult) strategies() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range fr.Points {
		if !seen[p.Strategy] {
			seen[p.Strategy] = true
			out = append(out, p.Strategy)
		}
	}
	return out
}

// Table renders the sweep as "offered load x strategy -> goodput", the
// open-system analogue of the paper's throughput figures.
func (fr OpenFigureResult) Table() *stats.Table {
	strategies := fr.strategies()
	headers := append([]string{"offered q/s"}, strategies...)
	tb := stats.NewTable(fmt.Sprintf("Figure %s (open, %s arrivals): %s — goodput (queries/second within %.0fms SLO)",
		fr.Figure.ID, fr.Open.Arrival, fr.Figure.Title, fr.Open.SLOms), headers...)
	for _, lambda := range fr.Open.Lambdas {
		row := make([]any, 0, len(headers))
		row = append(row, fmt.Sprintf("%.0f", lambda))
		for _, s := range strategies {
			if r := fr.Point(s, lambda); r != nil {
				row = append(row, fmt.Sprintf("%.2f", r.Serve.GoodputQPS()))
			} else {
				row = append(row, "-")
			}
		}
		tb.AddRow(row...)
	}
	return tb
}

// DetailTable renders per-point serving diagnostics: completion and goodput
// rates, latency quantiles of admitted queries, shed breakdown, utilization.
func (fr OpenFigureResult) DetailTable() *stats.Table {
	tb := stats.NewTable(fmt.Sprintf("Figure %s open-system detail", fr.Figure.ID),
		"strategy", "offered", "done q/s", "goodput", "p50 ms", "p95 ms", "p99 ms",
		"shed%", "full/aged/shut", "disk util")
	for _, p := range fr.Points {
		s := p.Result.Serve
		tb.AddRow(p.Strategy,
			fmt.Sprintf("%.0f", p.Lambda),
			fmt.Sprintf("%.2f", s.CompletedQPS()),
			fmt.Sprintf("%.2f", s.GoodputQPS()),
			fmt.Sprintf("%.1f", s.SLO.Latency.P50),
			fmt.Sprintf("%.1f", s.SLO.P95ms),
			fmt.Sprintf("%.1f", s.SLO.Latency.P99),
			fmt.Sprintf("%.1f", 100*s.SLO.ShedRate()),
			fmt.Sprintf("%d/%d/%d", s.SLO.ShedQueueFull, s.SLO.ShedAged, s.SLO.ShedShutdown),
			fmt.Sprintf("%.2f", p.Result.DiskUtilization))
	}
	return tb
}

// StrategySummary condenses one strategy's sweep: the goodput knee
// (sustainable throughput) and the behaviour at the highest offered load at
// or beyond twice the knee, where admission control must be visibly
// shedding while the admitted tail stays bounded.
type StrategySummary struct {
	Strategy string `json:"strategy"`
	// KneeLambda is the offered load with the highest goodput; Sustainable
	// is that goodput — the most the strategy can serve within the SLO.
	KneeLambda  float64 `json:"knee_lambda"`
	Sustainable float64 `json:"sustainable_qps"`
	P99AtKnee   float64 `json:"p99_at_knee_ms"`
	// Overload reports the sweep point at >= 2x the knee lambda (0s when
	// the sweep has no such point).
	OverloadLambda float64 `json:"overload_lambda,omitempty"`
	OverloadP99    float64 `json:"overload_p99_ms,omitempty"`
	OverloadShed   float64 `json:"overload_shed_rate,omitempty"`
}

// Summaries computes the per-strategy serving summary in figure order.
func (fr OpenFigureResult) Summaries() []StrategySummary {
	var out []StrategySummary
	for _, s := range fr.strategies() {
		sum := StrategySummary{Strategy: s}
		for _, p := range fr.Points {
			if p.Strategy != s {
				continue
			}
			if g := p.Result.Serve.GoodputQPS(); g > sum.Sustainable {
				sum.Sustainable = g
				sum.KneeLambda = p.Lambda
				sum.P99AtKnee = p.Result.Serve.SLO.Latency.P99
			}
		}
		// Highest sweep point at or beyond 2x the knee's offered load.
		for _, p := range fr.Points {
			if p.Strategy != s || p.Lambda < 2*sum.KneeLambda {
				continue
			}
			if p.Lambda > sum.OverloadLambda {
				sum.OverloadLambda = p.Lambda
				sum.OverloadP99 = p.Result.Serve.SLO.Latency.P99
				sum.OverloadShed = p.Result.Serve.SLO.ShedRate()
			}
		}
		out = append(out, sum)
	}
	return out
}

// seriesFor returns the named series from a point's telemetry snapshot,
// or nil when telemetry was off or the series is absent.
func seriesFor(res gamma.ServeResult, name string) *obs.SeriesData {
	for i := range res.Series {
		if res.Series[i].Name == name {
			return &res.Series[i]
		}
	}
	return nil
}

// HasTimeSeries reports whether any point carries a telemetry snapshot.
func (fr OpenFigureResult) HasTimeSeries() bool {
	for _, p := range fr.Points {
		if len(p.Result.Series) > 0 {
			return true
		}
	}
	return false
}

// timeTable renders one named series over the measurement window: one row
// per sampling window (time relative to each run's warm-up boundary — runs
// warm at different absolute instants, so relative time is the comparable
// axis), one column per strategy at the given offered load.
func (fr OpenFigureResult) timeTable(title, series string, lambda float64, format string) *stats.Table {
	strategies := fr.strategies()
	headers := append([]string{"t (ms)"}, strategies...)
	tb := stats.NewTable(title, headers...)
	cols := make([]*obs.SeriesData, len(strategies))
	rows, windowNS := 0, int64(0)
	for i, s := range strategies {
		if r := fr.Point(s, lambda); r != nil {
			cols[i] = seriesFor(*r, series)
		}
		if cols[i] != nil {
			if n := len(cols[i].Points); n > rows {
				rows = n
			}
			windowNS = cols[i].WindowNS
		}
	}
	for row := 0; row < rows; row++ {
		out := make([]any, 0, len(headers))
		out = append(out, fmt.Sprintf("%.0f", float64(row+1)*float64(windowNS)/1e6))
		for _, c := range cols {
			if c == nil || row >= len(c.Points) {
				out = append(out, "-")
				continue
			}
			out = append(out, fmt.Sprintf(format, c.Points[row].V))
		}
		tb.AddRow(out...)
	}
	return tb
}

// GoodputOverTime renders the per-window goodput of every strategy at one
// offered load — the time-resolved view behind the Table aggregate, showing
// when each strategy's admission control starts shedding rather than just
// that it did.
func (fr OpenFigureResult) GoodputOverTime(lambda float64) *stats.Table {
	return fr.timeTable(
		fmt.Sprintf("Figure %s goodput-over-time (λ=%g q/s, %v windows)",
			fr.Figure.ID, lambda, sim.Duration(fr.windowNS())),
		"serve.goodput_qps", lambda, "%.1f")
}

// SkewOverTime renders the per-window disk execution skew (max/mean of the
// window's per-node busy time; 1.0 = balanced) of every strategy at one
// offered load.
func (fr OpenFigureResult) SkewOverTime(lambda float64) *stats.Table {
	return fr.timeTable(
		fmt.Sprintf("Figure %s disk-skew-over-time (λ=%g q/s, %v windows)",
			fr.Figure.ID, lambda, sim.Duration(fr.windowNS())),
		"disk.skew", lambda, "%.2f")
}

// windowNS reports the sampling window of the figure's telemetry, 0 if off.
func (fr OpenFigureResult) windowNS() int64 {
	for _, p := range fr.Points {
		for i := range p.Result.Series {
			if w := p.Result.Series[i].WindowNS; w > 0 {
				return w
			}
		}
	}
	return 0
}

// SummaryTable renders the serving summary block declusterbench prints.
func (fr OpenFigureResult) SummaryTable() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Figure %s serving summary (%s arrivals, %.0fms SLO)",
			fr.Figure.ID, fr.Open.Arrival, fr.Open.SLOms),
		"strategy", "sustainable q/s", "knee λ", "p99@knee ms",
		"overload λ", "p99@overload ms", "shed@overload")
	for _, s := range fr.Summaries() {
		over, overP99, overShed := "-", "-", "-"
		if s.OverloadLambda > 0 {
			over = fmt.Sprintf("%.0f", s.OverloadLambda)
			overP99 = fmt.Sprintf("%.1f", s.OverloadP99)
			overShed = fmt.Sprintf("%.1f%%", 100*s.OverloadShed)
		}
		tb.AddRow(s.Strategy,
			fmt.Sprintf("%.2f", s.Sustainable),
			fmt.Sprintf("%.0f", s.KneeLambda),
			fmt.Sprintf("%.1f", s.P99AtKnee),
			over, overP99, overShed)
	}
	return tb
}
