package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// campaignTestOptions is a reduced scale that keeps the determinism tests
// fast while still exercising warmup, measurement and every strategy.
func campaignTestOptions() Options {
	return Options{
		Cardinality:    5000,
		Processors:     32,
		MPLs:           []int{1, 8},
		WarmupQueries:  20,
		MeasureQueries: 100,
		Seed:           1,
	}
}

func encodeArchive(t *testing.T, a Archive) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteArchive(&buf, a); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The acceptance bar of the parallel harness: a campaign run with one
// worker and with four workers must produce byte-identical archive
// encodings — same points in the same order with the same measurements.
func TestCampaignByteIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fig, err := FigureByID("8a")
	if err != nil {
		t.Fatal(err)
	}
	figs := []Figure{fig}
	opts := campaignTestOptions()

	serial, err := RunCampaign(figs, opts, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunCampaign(figs, opts, CampaignOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	a := encodeArchive(t, serial.Archive("campaign", opts))
	b := encodeArchive(t, parallel.Archive("campaign", opts))
	if !bytes.Equal(a, b) {
		t.Fatalf("workers=1 and workers=4 archives differ:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}

	// The legacy serial entry point is a workers=1 campaign and must agree
	// point for point too.
	fr, err := Run(fig, opts)
	if err != nil {
		t.Fatal(err)
	}
	single := Archive{Label: "campaign", Options: opts, Figures: []FigureArchive{fr.Archive()}}
	if got := encodeArchive(t, single); !bytes.Equal(a, got) {
		t.Fatalf("experiments.Run disagrees with the campaign path:\n%s\nvs\n%s", a, got)
	}

	if serial.Manifest.Jobs != len(fig.Strategies)*len(opts.MPLs) {
		t.Fatalf("manifest jobs = %d", serial.Manifest.Jobs)
	}
	if serial.Manifest.Workers != 1 || parallel.Manifest.Workers != 4 {
		t.Fatalf("manifest workers = %d / %d", serial.Manifest.Workers, parallel.Manifest.Workers)
	}
}

// A job that blows its wall-clock budget must yield a failure record
// carrying the job identity and seed — and the campaign must return its
// remaining results rather than crash.
func TestCampaignTimeoutYieldsFailureRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fig, err := FigureByID("8a")
	if err != nil {
		t.Fatal(err)
	}
	fig.Strategies = []string{StrategyRange}
	opts := campaignTestOptions()
	opts.MPLs = []int{8}

	c, err := RunCampaign([]Figure{fig}, opts, CampaignOptions{
		Workers:    2,
		JobTimeout: time.Nanosecond, // no simulation finishes in 1ns
	})
	if err == nil {
		t.Fatal("campaign with all jobs timed out returned nil error")
	}
	if len(c.Figures) != 1 || len(c.Figures[0].Points) != 0 {
		t.Fatalf("timed-out campaign produced points: %+v", c.Figures)
	}
	fails := c.Manifest.Failures()
	if len(fails) != 1 {
		t.Fatalf("failures = %+v", fails)
	}
	if !fails[0].TimedOut || fails[0].ID != "fig8a/range/mpl8" || fails[0].Seed != 1 {
		t.Fatalf("failure record incomplete: %+v", fails[0])
	}
}

// The scale sweep goes through the same pool; serial and parallel
// executions must agree point for point.
func TestScaleSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	sweep := DefaultScaleSweep()
	sweep.Processors = []int{8, 16}
	sweep.Strategies = []string{StrategyMAGIC, StrategyRange}
	opts := campaignTestOptions()

	serial, err := RunScaleSweep(sweep, opts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, manifest, err := RunScaleSweepParallel(sweep, opts, CampaignOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Points) != len(parallel.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(serial.Points), len(parallel.Points))
	}
	for i := range serial.Points {
		s, p := serial.Points[i], parallel.Points[i]
		if s.Strategy != p.Strategy || s.Processors != p.Processors ||
			s.Result.ThroughputQPS != p.Result.ThroughputQPS {
			t.Fatalf("point %d differs: %+v vs %+v", i, s, p)
		}
	}
	if manifest.Jobs != 4 {
		t.Fatalf("manifest jobs = %d", manifest.Jobs)
	}
	for _, r := range manifest.Reports {
		if !strings.HasPrefix(r.ID, "scaleout/") {
			t.Fatalf("job id = %q", r.ID)
		}
	}
}

// Seed 0 must be usable as an explicit seed (SeedSet), distinct from the
// unset default.
func TestSeedZeroExplicit(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seed != 1 {
		t.Fatalf("unset seed defaulted to %d, want 1", o.Seed)
	}
	o = Options{Seed: 0, SeedSet: true}.withDefaults()
	if o.Seed != 0 {
		t.Fatalf("explicit seed 0 remapped to %d", o.Seed)
	}
	if cfg := ConfigFor(o); cfg.Seed != 0 {
		t.Fatalf("machine config seed = %d, want 0", cfg.Seed)
	}
}

// Explicit seed 0 must actually drive the run (and differ from seed 1).
func TestSeedZeroProducesDistinctRun(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fig, err := FigureByID("8a")
	if err != nil {
		t.Fatal(err)
	}
	fig.Strategies = []string{StrategyRange}
	opts := campaignTestOptions()
	opts.MPLs = []int{8}

	opts.Seed, opts.SeedSet = 0, true
	zero, err := Run(fig, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Seed, opts.SeedSet = 1, true
	one, err := Run(fig, opts)
	if err != nil {
		t.Fatal(err)
	}
	z, _ := zero.Throughput(StrategyRange, 8)
	o1, _ := one.Throughput(StrategyRange, 8)
	if z <= 0 || o1 <= 0 {
		t.Fatalf("non-positive throughputs: %v %v", z, o1)
	}
	if z == o1 {
		t.Fatalf("seed 0 and seed 1 produced identical throughput %v — seed 0 likely remapped", z)
	}
}
