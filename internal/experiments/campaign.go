package experiments

// Campaign orchestration: a figure list decomposes into a job set of
// (figure, strategy, MPL) simulation runs that internal/harness executes
// on a bounded worker pool. Expensive immutable inputs are shared across
// jobs through a build cache — one storage.GenerateWisconsin per distinct
// (cardinality, correlation window, seed) and one BuildPlacement per
// (figure, strategy) — instead of one per MPL point as the old serial loop
// effectively paid via repeated figure runs. Every job builds its own
// gamma machine from those shared read-only inputs and uses the same seeds
// as the serial path, so campaign output is byte-identical whatever the
// worker count.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gamma"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/workload"
)

// CampaignOptions configure the concurrent execution of a set of figures.
type CampaignOptions struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// JobTimeout is the wall-clock budget of one (strategy, MPL) run;
	// <= 0 disables it. A blown budget becomes a manifest failure record,
	// not a crashed campaign.
	JobTimeout time.Duration
	// Progress receives live per-job progress/ETA lines; nil disables.
	Progress io.Writer
	// Label names the campaign in the manifest and progress lines.
	Label string
	// IsTransient classifies job errors that warrant the harness's single
	// automatic same-seed retry (see harness.Options.IsTransient).
	IsTransient func(error) bool
	// Hub, when non-nil, exposes telemetry samplers for live /metrics
	// scraping (open-system campaigns with telemetry armed). Each point's
	// sampler registers under the job ID as it completes and stays
	// registered, so a scrape shows every finished point's final series.
	Hub *obs.Hub
}

// Campaign holds the completed figures plus the harness run manifest.
type Campaign struct {
	Figures  []FigureResult
	Manifest harness.Manifest
}

// relKey identifies one generated relation; figures agreeing on all three
// fields share a single build.
type relKey struct {
	card   int
	window int
	seed   int64
}

// relationCache shares generated Wisconsin relations across figures. The
// relations are read-only after generation (the thread-safety contract the
// whole campaign relies on).
type relationCache map[relKey]*storage.Relation

func (c relationCache) get(card, window int, seed int64) *storage.Relation {
	key := relKey{card, window, seed}
	if rel, ok := c[key]; ok {
		return rel
	}
	rel := storage.GenerateWisconsin(storage.GenSpec{
		Cardinality:       card,
		CorrelationWindow: window,
		Seed:              seed,
	})
	c[key] = rel
	return rel
}

// figureBuild carries one figure's shared immutable inputs: the relation,
// the mix, and one placement per strategy.
type figureBuild struct {
	fig        Figure
	rel        *storage.Relation
	mix        workload.Mix
	placements []core.Placement
	notes      []string
}

// buildFigure constructs the figure's placements (and MAGIC's construction
// notes, in strategy order, exactly as the serial path recorded them).
func buildFigure(fig Figure, rels relationCache, opts Options) (figureBuild, error) {
	fb := figureBuild{
		fig: fig,
		rel: rels.get(opts.Cardinality, fig.Correlation.window(opts.Cardinality), opts.Seed),
		mix: fig.Mix(opts.Cardinality),
	}
	for _, name := range fig.Strategies {
		pl, err := BuildPlacement(name, fb.rel, fb.mix, opts)
		if err != nil {
			return fb, fmt.Errorf("figure %s: %w", fig.ID, err)
		}
		if m, ok := pl.(*core.MAGICPlacement); ok {
			dims := m.Dims()
			plan := m.Plan()
			fb.notes = append(fb.notes, fmt.Sprintf(
				"magic: directory %v (%d entries, FC=%d, M=%.2f, Mi[A]=%.1f, Mi[B]=%.1f, %d rebalance swaps)",
				dims, m.Grid().NumCells(), plan.FC, plan.M,
				plan.Mi[storage.Unique1], plan.Mi[storage.Unique2], m.RebalanceSwaps()))
		}
		fb.placements = append(fb.placements, pl)
	}
	return fb, nil
}

// pointJob builds the harness job for one (figure, strategy, MPL) run. The
// job constructs its own machine from the shared relation and placement so
// no mutable state crosses workers, and runs with the same seed the serial
// path uses.
func pointJob(fb figureBuild, strategy string, pl core.Placement, mpl int, cfg gamma.Config, opts Options) harness.Job {
	return harness.Job{
		ID:   fmt.Sprintf("fig%s/%s/mpl%d", fb.fig.ID, strategy, mpl),
		Seed: opts.Seed,
		Run: func() (any, error) {
			machine, err := gamma.Build(fb.rel, pl, cfg)
			if err != nil {
				return nil, fmt.Errorf("figure %s/%s: %w", fb.fig.ID, strategy, err)
			}
			res, err := machine.Run(fb.mix, gamma.RunSpec{
				MPL:            mpl,
				WarmupQueries:  opts.WarmupQueries,
				MeasureQueries: opts.MeasureQueries,
				Seed:           opts.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("figure %s/%s MPL %d: %w", fb.fig.ID, strategy, mpl, err)
			}
			return res, nil
		},
	}
}

// RunCampaign executes every (figure, strategy, MPL) combination of the
// figure list on the harness worker pool and reassembles the results in
// canonical order (figures as given, strategies in figure order, MPLs in
// sweep order) regardless of completion order. Placement-construction
// errors abort the campaign before any job runs; job failures (errors,
// panics, timeouts) become manifest failure records, the surviving points
// are returned, and the combined failure surfaces as the returned error.
func RunCampaign(figs []Figure, opts Options, copts CampaignOptions) (Campaign, error) {
	opts = opts.withDefaults()
	cfg := ConfigFor(opts)

	// Build phase, serial: generate each distinct relation once and each
	// placement once per (figure, strategy). Everything built here is
	// read-only for the rest of the campaign.
	rels := relationCache{}
	builds := make([]figureBuild, 0, len(figs))
	for _, fig := range figs {
		fb, err := buildFigure(fig, rels, opts)
		if err != nil {
			return Campaign{}, err
		}
		builds = append(builds, fb)
	}

	var jobs []harness.Job
	for _, fb := range builds {
		for si, name := range fb.fig.Strategies {
			for _, mpl := range opts.MPLs {
				jobs = append(jobs, pointJob(fb, name, fb.placements[si], mpl, cfg, opts))
			}
		}
	}

	values, manifest, err := harness.Execute(jobs, harness.Options{
		Workers:     copts.Workers,
		JobTimeout:  copts.JobTimeout,
		Progress:    copts.Progress,
		Label:       copts.Label,
		IsTransient: copts.IsTransient,
	})
	if err != nil {
		return Campaign{}, err
	}

	out := Campaign{Manifest: manifest}
	j := 0
	for _, fb := range builds {
		fr := FigureResult{Figure: fb.fig, Options: opts, Notes: fb.notes}
		for _, name := range fb.fig.Strategies {
			for _, mpl := range opts.MPLs {
				if v := values[j]; v != nil {
					res := v.(gamma.RunResult)
					out.Manifest.Reports[j].FaultEvents = len(res.FaultLog)
					out.Manifest.Reports[j].HotFragments = res.HotFragments
					fr.Points = append(fr.Points, Point{
						Strategy: name, MPL: mpl, Result: res,
					})
				}
				j++
			}
		}
		out.Figures = append(out.Figures, fr)
	}
	return out, manifest.Err()
}

// Archive converts the campaign's figures into a serializable Archive.
func (c Campaign) Archive(label string, opts Options) Archive {
	a := Archive{Label: label, Options: opts}
	for _, fr := range c.Figures {
		a.Figures = append(a.Figures, fr.Archive())
	}
	return a
}
