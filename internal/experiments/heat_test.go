package experiments

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// runHeatCampaign runs figure 8a with heat armed on the given worker count
// and returns the campaign.
func runHeatCampaign(t *testing.T, workers int) Campaign {
	t.Helper()
	fig, err := FigureByID("8a")
	if err != nil {
		t.Fatal(err)
	}
	opts := campaignTestOptions()
	opts.Heat = true
	opts.HeatTopK = 3
	c, err := RunCampaign([]Figure{fig}, opts, CampaignOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func heatCSVBytes(t *testing.T, s *obs.HeatSnapshot) string {
	t.Helper()
	var b strings.Builder
	if err := obs.WriteHeatCSV(&b, s); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// The heatmap acceptance bar: merged per-strategy heat CSVs must come out
// byte-identical whatever the worker count — the merge walks points in
// canonical figure order, and the cross-job histogram reduction
// (obs.Histogram.Merge) is order-independent on all reported statistics.
func TestStrategyHeatByteIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	serial := runHeatCampaign(t, 1)
	parallel := runHeatCampaign(t, 4)

	fr1, fr4 := serial.Figures[0], parallel.Figures[0]
	for _, s := range fr1.Figure.Strategies {
		a, b := fr1.StrategyHeat(s), fr4.StrategyHeat(s)
		if a == nil || b == nil {
			t.Fatalf("%s: heat missing (workers 1: %v, workers 4: %v)", s, a != nil, b != nil)
		}
		ca, cb := heatCSVBytes(t, a), heatCSVBytes(t, b)
		if ca != cb {
			t.Errorf("%s: heat CSVs differ across worker counts:\n%s\nvs:\n%s", s, ca, cb)
		}
		if a.TopKShare != b.TopKShare || a.HHI != b.HHI || a.Gini != b.Gini {
			t.Errorf("%s: concentration indices differ: %+v vs %+v", s, a, b)
		}
		// The merged view sums the sweep: each MPL point contributes.
		var pointPages int64
		for _, p := range fr1.Points {
			if p.Strategy == s && p.Result.Heat != nil {
				pointPages += p.Result.Heat.TotalPages
			}
		}
		if a.TotalPages != pointPages {
			t.Errorf("%s: merged pages %d != sum of points %d", s, a.TotalPages, pointPages)
		}
		if tb := fr1.HeatTable(s); tb == nil {
			t.Errorf("%s: HeatTable nil with heat armed", s)
		}
		if line := HotLine(fr1.Figure.ID, s, a); !strings.HasPrefix(line, "hot fragments 8a/"+s+":") {
			t.Errorf("%s: HotLine = %q", s, line)
		}
	}

	// Hot-fragment reports landed in the manifest (reassembled in job
	// order, like fault counts).
	for _, rep := range serial.Manifest.Reports {
		if len(rep.HotFragments) == 0 {
			t.Errorf("job %s: no hot fragments in manifest", rep.ID)
		}
	}
}

func TestStrategyHeatNilWhenDisabled(t *testing.T) {
	var fr FigureResult
	if fr.StrategyHeat("range") != nil || fr.HeatTable("range") != nil {
		t.Error("heat reported without armed runs")
	}
	if HotLine("8a", "range", nil) != "" {
		t.Error("HotLine on nil snapshot should be empty")
	}
	var or OpenFigureResult
	if or.StrategyHeat("range") != nil || or.HeatTable("range") != nil {
		t.Error("open heat reported without armed runs")
	}
}
