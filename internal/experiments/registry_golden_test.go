package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gamma"
	"repro/internal/storage"
	"repro/internal/workload"
)

// directPlacement replicates the pre-registry string-switch construction of
// BuildPlacement verbatim, as the golden reference the registry path must
// reproduce.
func directPlacement(t *testing.T, name string, rel *storage.Relation, mix workload.Mix, opts Options) core.Placement {
	t.Helper()
	opts = opts.withDefaults()
	cfg := gamma.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	switch name {
	case StrategyRange:
		return core.NewRangeForRelation(rel, storage.Unique1, opts.Processors)
	case StrategyHash:
		return core.NewHash(storage.Unique1, opts.Processors)
	case StrategyRoundRobin:
		return core.NewRoundRobin(opts.Processors)
	case StrategyBERD:
		return core.NewBERDForRelation(rel, storage.Unique1, []int{storage.Unique2}, opts.Processors)
	case StrategyMAGIC:
		specs := workload.EstimateSpecs(mix, rel.Cardinality(), cfg.HW, cfg.Costs)
		pp := workload.PlanParamsFor(rel.Cardinality(), opts.Processors, cfg.Costs)
		pl, err := core.BuildMAGIC(rel, []int{storage.Unique1, storage.Unique2}, specs, pp, nil)
		if err != nil {
			t.Fatalf("direct MAGIC: %v", err)
		}
		return pl
	default:
		t.Fatalf("direct construction has no strategy %q", name)
		return nil
	}
}

// samplePredicates covers the routing surface: equality and range
// predicates on both partitioning attributes plus an unpartitioned one.
func samplePredicates(card int) []core.Predicate {
	c := int64(card)
	return []core.Predicate{
		{Attr: storage.Unique1, Lo: 0, Hi: 0},
		{Attr: storage.Unique1, Lo: c / 4, Hi: c / 4},
		{Attr: storage.Unique1, Lo: c / 3, Hi: c/3 + c/10},
		{Attr: storage.Unique1, Lo: 0, Hi: c - 1},
		{Attr: storage.Unique2, Lo: c / 2, Hi: c / 2},
		{Attr: storage.Unique2, Lo: c / 5, Hi: c/5 + c/20},
		{Attr: storage.Two, Lo: 0, Hi: 1},
	}
}

func routesEqual(a, b core.Route) bool {
	if len(a.Participants) != len(b.Participants) || len(a.Aux) != len(b.Aux) ||
		a.EntriesSearched != b.EntriesSearched {
		return false
	}
	for i := range a.Participants {
		if a.Participants[i] != b.Participants[i] {
			return false
		}
	}
	for i := range a.Aux {
		if a.Aux[i] != b.Aux[i] {
			return false
		}
	}
	return true
}

// TestRegistryGoldenAgainstDirectConstruction builds every strategy of
// every figure both ways — through the registry (BuildPlacement) and
// through the pre-registry switch — and asserts identical HomeOf for every
// tuple and identical Route for the predicate sample. Runs at reduced
// cardinality so the full strategy × figure matrix stays fast.
func TestRegistryGoldenAgainstDirectConstruction(t *testing.T) {
	opts := Options{Cardinality: 4000, Processors: 8, Seed: 1,
		MPLs: []int{1}, WarmupQueries: 1, MeasureQueries: 1}
	rels := relationCache{}
	for _, fig := range Figures() {
		rel := rels.get(opts.Cardinality, fig.Correlation.window(opts.Cardinality), opts.Seed)
		mix := fig.Mix(opts.Cardinality)
		for _, name := range fig.Strategies {
			viaRegistry, err := BuildPlacement(name, rel, mix, opts)
			if err != nil {
				t.Fatalf("fig %s/%s: registry build: %v", fig.ID, name, err)
			}
			direct := directPlacement(t, name, rel, mix, opts)
			if viaRegistry.Name() != direct.Name() ||
				viaRegistry.Processors() != direct.Processors() {
				t.Fatalf("fig %s/%s: identity mismatch: %s/%d vs %s/%d",
					fig.ID, name, viaRegistry.Name(), viaRegistry.Processors(),
					direct.Name(), direct.Processors())
			}
			for i := range rel.Tuples {
				if g, w := viaRegistry.HomeOf(rel.Tuples[i]), direct.HomeOf(rel.Tuples[i]); g != w {
					t.Fatalf("fig %s/%s: HomeOf(tuple %d) = %d, direct = %d",
						fig.ID, name, i, g, w)
				}
			}
			for _, pred := range samplePredicates(opts.Cardinality) {
				if g, w := viaRegistry.Route(pred), direct.Route(pred); !routesEqual(g, w) {
					t.Fatalf("fig %s/%s: Route(%v) = %+v, direct = %+v",
						fig.ID, name, pred, g, w)
				}
			}
		}
	}
}
