package experiments

// Shared-scan campaign: how much disk work does predicate-grouped batching
// save each declustering strategy? Every (strategy, MPL) point runs twice —
// sharing off, then sharing on — over the same hot-spot workload: the off
// run is the baseline (and stays byte-identical to a sharing-free build),
// the on run batches overlapping selections into shared disk passes. The
// interesting output is the per-query disk-read saving and the batching
// shape (ops/batch, pages deduped) behind it.

import (
	"fmt"

	"repro/internal/gamma"
	"repro/internal/harness"
	"repro/internal/stats"
)

// Hot-spot overlay for the sharing campaign: SharingHotProb of the queries
// target the first SharingHotFrac of the attribute domain. Without the
// overlay the paper's uniform mixes rarely overlap inside a batching
// window; with it the campaign measures the regime sharing is for.
const (
	SharingHotProb = 0.8
	SharingHotFrac = 0.05
)

// SharingPoint is one measured (strategy, MPL) cell: the same workload with
// the shared-scan manager off and on.
type SharingPoint struct {
	Strategy string
	MPL      int
	Off      gamma.RunResult
	On       gamma.RunResult
}

// SavedFrac is the fraction of per-query disk reads sharing eliminated.
func (p SharingPoint) SavedFrac() float64 {
	if p.Off.DiskReadsPerQry <= 0 {
		return 0
	}
	return 1 - p.On.DiskReadsPerQry/p.Off.DiskReadsPerQry
}

// SharingResult holds a completed shared-scan campaign.
type SharingResult struct {
	Figure   Figure
	Options  Options
	WindowMS float64
	Points   []SharingPoint
}

// RunSharing sweeps the figure's strategies across the MPL sweep, once with
// sharing off and once with the shared-scan manager armed at windowMS
// (<= 0 selects the gamma default window), both under the hot-spot overlay.
// Jobs run on the harness pool exactly like a figure campaign. Sharing
// requires the legacy scheduler, so fault options are rejected up front.
func RunSharing(fig Figure, windowMS float64, opts Options, copts CampaignOptions) (SharingResult, harness.Manifest, error) {
	opts = opts.withDefaults()
	out := SharingResult{Figure: fig, Options: opts, WindowMS: windowMS}
	if opts.Faults != nil || opts.ChainedReplicas {
		return out, harness.Manifest{}, fmt.Errorf(
			"experiments: sharing campaign is mutually exclusive with faults/replicas (legacy scheduler only)")
	}

	rels := relationCache{}
	fb, err := buildFigure(fig, rels, opts)
	if err != nil {
		return out, harness.Manifest{}, err
	}
	hot := fb.mix.WithHotSpot(SharingHotProb, SharingHotFrac)

	offCfg := ConfigFor(opts)
	// Sharing targets Table 2's disk-bound regime: with the default pool
	// sized to keep the index resident, the hot set's data pages largely
	// survive in memory between queries and there is little disk work to
	// share. A third of the default pool forces the re-read traffic the
	// manager exists to deduplicate. Both modes run with the same pool, so
	// the off column is still the like-for-like baseline.
	offCfg.BufferPages = (offCfg.BufferPages + 2) / 3
	onOpts := opts
	onOpts.ArmSharing(windowMS)
	onCfg := ConfigFor(onOpts)
	onCfg.BufferPages = offCfg.BufferPages

	var jobs []harness.Job
	for si, name := range fb.fig.Strategies {
		for _, share := range []bool{false, true} {
			cfg, tag := offCfg, "off"
			if share {
				cfg, tag = onCfg, "on"
			}
			for _, mpl := range opts.MPLs {
				name, mpl, cfg, tag, pl := name, mpl, cfg, tag, fb.placements[si]
				jobs = append(jobs, harness.Job{
					ID:   fmt.Sprintf("sharing/%s/%s/mpl%d", name, tag, mpl),
					Seed: opts.Seed,
					Run: func() (any, error) {
						machine, err := gamma.Build(fb.rel, pl, cfg)
						if err != nil {
							return nil, fmt.Errorf("sharing %s/%s: %w", name, tag, err)
						}
						res, err := machine.Run(hot, gamma.RunSpec{
							MPL:            mpl,
							WarmupQueries:  opts.WarmupQueries,
							MeasureQueries: opts.MeasureQueries,
							Seed:           opts.Seed,
						})
						if err != nil {
							return nil, fmt.Errorf("sharing %s/%s MPL %d: %w", name, tag, mpl, err)
						}
						return res, nil
					},
				})
			}
		}
	}

	values, manifest, err := harness.Execute(jobs, harness.Options{
		Workers:     copts.Workers,
		JobTimeout:  copts.JobTimeout,
		Progress:    copts.Progress,
		Label:       copts.Label,
		IsTransient: copts.IsTransient,
	})
	if err != nil {
		return out, manifest, err
	}

	j := 0
	for _, name := range fb.fig.Strategies {
		offAt := j
		onAt := j + len(opts.MPLs)
		for mi, mpl := range opts.MPLs {
			off, on := values[offAt+mi], values[onAt+mi]
			if off == nil || on == nil {
				continue
			}
			out.Points = append(out.Points, SharingPoint{
				Strategy: name, MPL: mpl,
				Off: off.(gamma.RunResult), On: on.(gamma.RunResult),
			})
		}
		j += 2 * len(opts.MPLs)
	}
	return out, manifest, manifest.Err()
}

// MaxSaved returns the campaign's best per-query disk-read saving and the
// point that achieved it (zero value when nothing was measured).
func (sr SharingResult) MaxSaved() (float64, SharingPoint) {
	var best SharingPoint
	saved := -1.0
	for _, p := range sr.Points {
		if s := p.SavedFrac(); s > saved {
			saved, best = s, p
		}
	}
	if saved < 0 {
		return 0, best
	}
	return saved, best
}

// Table renders the campaign: one row per (strategy, MPL) with throughput
// and disk reads per query under both modes, the saving, and the batching
// shape.
func (sr SharingResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Shared scans (%s, hot spot %.0f%%/%.0f%%): disk reads per query, sharing off vs on",
			sr.Figure.ID, 100*SharingHotProb, 100*SharingHotFrac),
		"strategy", "MPL", "q/s off", "q/s on", "reads/qry off", "reads/qry on",
		"saved", "ops/batch", "pages deduped")
	for _, p := range sr.Points {
		opsPerBatch, deduped := "-", "-"
		if s := p.On.Sharing; s != nil {
			opsPerBatch = fmt.Sprintf("%.2f", s.MeanBatchSize())
			deduped = fmt.Sprintf("%d", s.PagesSaved())
		}
		tb.AddRow(p.Strategy, p.MPL,
			fmt.Sprintf("%.2f", p.Off.ThroughputQPS),
			fmt.Sprintf("%.2f", p.On.ThroughputQPS),
			fmt.Sprintf("%.1f", p.Off.DiskReadsPerQry),
			fmt.Sprintf("%.1f", p.On.DiskReadsPerQry),
			fmt.Sprintf("%.1f%%", 100*p.SavedFrac()),
			opsPerBatch, deduped)
	}
	return tb
}

// Summary emits one greppable line per point (CI smoke-tests these).
func (sr SharingResult) Summary() []string {
	var out []string
	for _, p := range sr.Points {
		out = append(out, fmt.Sprintf(
			"sharing fig%s/%s mpl=%d: reads/qry %.1f -> %.1f (%.1f%% saved)",
			sr.Figure.ID, p.Strategy, p.MPL,
			p.Off.DiskReadsPerQry, p.On.DiskReadsPerQry, 100*p.SavedFrac()))
	}
	return out
}
