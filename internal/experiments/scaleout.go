package experiments

import (
	"fmt"

	"repro/internal/gamma"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ScaleSweep measures how each strategy's throughput grows with the
// machine size — the scalability concern the paper's introduction
// motivates ("the scalability of these systems to hundreds and thousands
// of processors is essential"). For each processor count P the
// multiprogramming level is held at 2P (a constant per-processor load) on
// the low-low mix, so a strategy that localizes queries should scale near
// linearly while one that fans every query out to all P processors pays a
// growing coordination tax.
type ScaleSweep struct {
	Strategies  []string
	Processors  []int
	Correlation Correlation
	Mix         func(card int) workload.Mix
}

// DefaultScaleSweep compares the three paper strategies over 8..64
// processors on the uncorrelated low-low mix.
func DefaultScaleSweep() ScaleSweep {
	return ScaleSweep{
		Strategies:  []string{StrategyMAGIC, StrategyBERD, StrategyRange},
		Processors:  []int{8, 16, 32, 64},
		Correlation: LowCorrelation,
		Mix:         workload.LowLow,
	}
}

// ScalePoint is one measured (strategy, processors) combination.
type ScalePoint struct {
	Strategy   string
	Processors int
	Result     gamma.RunResult
}

// ScaleResult holds a completed sweep.
type ScaleResult struct {
	Sweep  ScaleSweep
	Points []ScalePoint
}

// RunScaleSweep executes the sweep serially: a workers=1 campaign over the
// same job set RunScaleSweepParallel spreads across the pool.
func RunScaleSweep(sweep ScaleSweep, opts Options) (ScaleResult, error) {
	res, _, err := RunScaleSweepParallel(sweep, opts, CampaignOptions{Workers: 1})
	return res, err
}

// RunScaleSweepParallel executes the sweep's (processors, strategy) jobs on
// the harness worker pool. opts.Processors and opts.MPLs are ignored (the
// sweep sets both); the other options scale the workload. The generated
// relation depends only on (cardinality, correlation, seed), so one build
// is shared — read-only — by every machine size; placements are built once
// per (processors, strategy). Points come back in the serial order
// (machine sizes as given, strategies within), byte-identical whatever the
// worker count.
func RunScaleSweepParallel(sweep ScaleSweep, opts Options, copts CampaignOptions) (ScaleResult, harness.Manifest, error) {
	opts = opts.withDefaults()
	out := ScaleResult{Sweep: sweep}

	rels := relationCache{}
	rel := rels.get(opts.Cardinality, sweep.Correlation.window(opts.Cardinality), opts.Seed)
	mix := sweep.Mix(opts.Cardinality)

	var jobs []harness.Job
	for _, procs := range sweep.Processors {
		o := opts
		o.Processors = procs
		o.Config = nil
		cfg := ConfigFor(o)
		for _, name := range sweep.Strategies {
			pl, err := BuildPlacement(name, rel, mix, o)
			if err != nil {
				return out, harness.Manifest{}, fmt.Errorf("scale sweep %s/P=%d: %w", name, procs, err)
			}
			jobs = append(jobs, harness.Job{
				ID:   fmt.Sprintf("scaleout/%s/p%d", name, procs),
				Seed: o.Seed,
				Run: func() (any, error) {
					machine, err := gamma.Build(rel, pl, cfg)
					if err != nil {
						return nil, fmt.Errorf("scale sweep %s/P=%d: %w", name, procs, err)
					}
					res, err := machine.Run(mix, gamma.RunSpec{
						MPL:            2 * procs,
						WarmupQueries:  o.WarmupQueries,
						MeasureQueries: o.MeasureQueries,
						Seed:           o.Seed,
					})
					if err != nil {
						return nil, fmt.Errorf("scale sweep %s/P=%d: %w", name, procs, err)
					}
					return res, nil
				},
			})
		}
	}

	values, manifest, err := harness.Execute(jobs, harness.Options{
		Workers:     copts.Workers,
		JobTimeout:  copts.JobTimeout,
		Progress:    copts.Progress,
		Label:       copts.Label,
		IsTransient: copts.IsTransient,
	})
	if err != nil {
		return out, manifest, err
	}

	j := 0
	for _, procs := range sweep.Processors {
		for _, name := range sweep.Strategies {
			if v := values[j]; v != nil {
				out.Points = append(out.Points, ScalePoint{
					Strategy: name, Processors: procs, Result: v.(gamma.RunResult),
				})
			}
			j++
		}
	}
	return out, manifest, manifest.Err()
}

// Throughput returns the measured throughput for (strategy, processors).
func (sr ScaleResult) Throughput(strategy string, procs int) (float64, bool) {
	for _, p := range sr.Points {
		if p.Strategy == strategy && p.Processors == procs {
			return p.Result.ThroughputQPS, true
		}
	}
	return 0, false
}

// Speedup reports throughput(P) / throughput(Pmin) for a strategy.
func (sr ScaleResult) Speedup(strategy string, procs int) (float64, bool) {
	base, ok1 := sr.Throughput(strategy, sr.Sweep.Processors[0])
	at, ok2 := sr.Throughput(strategy, procs)
	if !ok1 || !ok2 || base == 0 {
		return 0, false
	}
	return at / base, true
}

// Table renders throughput (and relative speedup) per machine size.
func (sr ScaleResult) Table() *stats.Table {
	headers := []string{"P", "MPL"}
	for _, s := range sr.Sweep.Strategies {
		headers = append(headers, s+" q/s", s+" speedup")
	}
	tb := stats.NewTable("Scale-out: throughput vs machine size (MPL = 2P)", headers...)
	for _, procs := range sr.Sweep.Processors {
		row := []any{procs, 2 * procs}
		for _, s := range sr.Sweep.Strategies {
			tp, _ := sr.Throughput(s, procs)
			sp, _ := sr.Speedup(s, procs)
			row = append(row, fmt.Sprintf("%.1f", tp), fmt.Sprintf("%.2fx", sp))
		}
		tb.AddRow(row...)
	}
	return tb
}
