// Package experiments defines one runnable experiment per figure of the
// paper's evaluation (Section 7) plus the ablations DESIGN.md calls out,
// and renders their results as tables. cmd/declusterbench and the root
// bench_test.go both drive this package, so the benchmark harness and the
// CLI regenerate identical series.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gamma"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Correlation selects the relationship between partitioning attribute
// values (Section 4).
type Correlation int

// Correlation levels of the evaluation.
const (
	LowCorrelation  Correlation = iota // independent attribute values
	HighCorrelation                    // tightly correlated (window = card/1000)
)

func (c Correlation) String() string {
	if c == HighCorrelation {
		return "high"
	}
	return "low"
}

// window converts the correlation level to a generator window for a
// relation of the given cardinality.
func (c Correlation) window(card int) int {
	if c == HighCorrelation {
		w := card / 1000
		if w < 1 {
			w = 1
		}
		return w
	}
	return 0
}

// Strategy names accepted by figures.
const (
	StrategyMAGIC      = "magic"
	StrategyBERD       = "berd"
	StrategyRange      = "range"
	StrategyHash       = "hash"
	StrategyRoundRobin = "roundrobin"
)

// Figure is one experiment: a workload mix, a correlation level, and the
// strategies to compare across the MPL sweep.
type Figure struct {
	ID          string
	Title       string
	Mix         func(card int) workload.Mix
	Correlation Correlation
	Strategies  []string
}

// Figures returns every figure of the paper's evaluation section, in paper
// order.
func Figures() []Figure {
	std := []string{StrategyMAGIC, StrategyBERD, StrategyRange}
	return []Figure{
		{ID: "8a", Title: "Low-Low Query Mix (low correlation)",
			Mix: workload.LowLow, Correlation: LowCorrelation, Strategies: std},
		{ID: "8b", Title: "Low-Low Query Mix (high correlation)",
			Mix: workload.LowLow, Correlation: HighCorrelation, Strategies: std},
		{ID: "9", Title: "Low-Low Query Mix with Higher Selectivity (low correlation)",
			Mix: workload.LowLowWider, Correlation: LowCorrelation,
			Strategies: []string{StrategyMAGIC, StrategyBERD}},
		{ID: "10a", Title: "Low-Moderate Query Mix (low correlation)",
			Mix: workload.LowModerate, Correlation: LowCorrelation, Strategies: std},
		{ID: "10b", Title: "Low-Moderate Query Mix (high correlation)",
			Mix: workload.LowModerate, Correlation: HighCorrelation, Strategies: std},
		{ID: "11a", Title: "Moderate-Low Query Mix (low correlation)",
			Mix: workload.ModerateLow, Correlation: LowCorrelation, Strategies: std},
		{ID: "11b", Title: "Moderate-Low Query Mix (high correlation)",
			Mix: workload.ModerateLow, Correlation: HighCorrelation, Strategies: std},
		{ID: "12a", Title: "Moderate-Moderate Query Mix (low correlation)",
			Mix: workload.ModerateModerate, Correlation: LowCorrelation, Strategies: std},
		{ID: "12b", Title: "Moderate-Moderate Query Mix (high correlation)",
			Mix: workload.ModerateModerate, Correlation: HighCorrelation, Strategies: std},
	}
}

// FigureByID finds a figure (case-sensitive), or an error listing valid ids.
func FigureByID(id string) (Figure, error) {
	var ids []string
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
		ids = append(ids, f.ID)
	}
	return Figure{}, fmt.Errorf("experiments: unknown figure %q (have %v)", id, ids)
}

// Options scales an experiment. The zero value is completed by
// (*Options).withDefaults: paper scale is Cardinality 100000, 32
// processors, MPL 1..64.
type Options struct {
	Cardinality    int
	Processors     int
	MPLs           []int
	WarmupQueries  int
	MeasureQueries int
	// Seed drives relation generation, machine randomness and workload
	// sampling. A zero Seed falls back to the default (1) unless SeedSet
	// marks it as explicitly chosen — seed 0 is a valid seed.
	Seed    int64
	SeedSet bool          `json:"SeedSet,omitempty"`
	Config  *gamma.Config // overrides gamma.DefaultConfig if set

	// Faults arms the deterministic fault injector on every machine the
	// experiment builds; ChainedReplicas mirrors fragments on chain
	// successors so degraded-mode execution can reroute. Both default off,
	// leaving experiment output byte-identical to earlier revisions.
	Faults          *fault.Spec `json:"Faults,omitempty"`
	ChainedReplicas bool        `json:"ChainedReplicas,omitempty"`

	// TelemetryWindowMS arms windowed time-series sampling on every machine
	// the experiment builds (sampling window in simulated milliseconds);
	// TelemetryCapacity bounds each series ring (0 = obs.DefaultCapacity)
	// and BurnBudget sets the serving SLO burn evaluator's per-window bad
	// fraction (0 = serve default). All default off, leaving experiment
	// output byte-identical to a telemetry-free build.
	TelemetryWindowMS float64 `json:"TelemetryWindowMS,omitempty"`
	TelemetryCapacity int     `json:"TelemetryCapacity,omitempty"`
	BurnBudget        float64 `json:"BurnBudget,omitempty"`

	// Heat arms fragment-granularity access accounting on every machine
	// the experiment builds: each run's result carries a heat snapshot and
	// hot-fragment report, and HeatTopK bounds that report (0 =
	// obs.DefaultHeatTopK). Off by default — the simulation schedule is
	// identical either way, and disabled output stays byte-identical to a
	// heat-free build.
	Heat     bool `json:"Heat,omitempty"`
	HeatTopK int  `json:"HeatTopK,omitempty"`

	// SharingWindowMS arms shared-scan batching on every machine the
	// experiment builds (batching window in simulated milliseconds; 0 =
	// gamma.DefaultSharingWindow when armed via ArmSharing, off otherwise).
	// Mutually exclusive with Faults/ChainedReplicas — sharing rides the
	// legacy scheduler. Off by default, leaving experiment output
	// byte-identical to a sharing-free build.
	SharingWindowMS float64 `json:"SharingWindowMS,omitempty"`
	sharingArmed    bool
}

// ArmTelemetry arms windowed time-series sampling. Prefer these Arm helpers
// over poking the spec fields directly (the declusterbench plumbing used
// to): they keep the flag surface and gamma.Config's option constructors in
// one-to-one correspondence, with gamma.Config.Validate as the single
// validation path.
func (o *Options) ArmTelemetry(windowMS float64, capacity int, burnBudget float64) {
	o.TelemetryWindowMS = windowMS
	o.TelemetryCapacity = capacity
	o.BurnBudget = burnBudget
}

// ArmHeat arms fragment-heat accounting with a topK-bounded report.
func (o *Options) ArmHeat(topK int) {
	o.Heat = true
	o.HeatTopK = topK
}

// ArmSharing arms shared-scan batching; windowMS <= 0 selects the gamma
// default window.
func (o *Options) ArmSharing(windowMS float64) {
	o.sharingArmed = true
	if windowMS > 0 {
		o.SharingWindowMS = windowMS
	}
}

// ArmFaults arms the deterministic fault injector (and, optionally,
// chained-replica mirroring for degraded-mode rerouting).
func (o *Options) ArmFaults(spec *fault.Spec, chainedReplicas bool) {
	o.Faults = spec
	o.ChainedReplicas = chainedReplicas
}

// SharingArmed reports whether ArmSharing was called or a positive window
// was set directly (archives round-trip only the window).
func (o Options) SharingArmed() bool { return o.sharingArmed || o.SharingWindowMS > 0 }

// PaperScale returns the full-scale options used for EXPERIMENTS.md.
func PaperScale() Options {
	return Options{
		Cardinality:    100000,
		Processors:     32,
		MPLs:           []int{1, 8, 16, 24, 32, 40, 48, 56, 64},
		WarmupQueries:  300,
		MeasureQueries: 1500,
		Seed:           1,
	}
}

// QuickScale returns reduced options for unit tests and testing.B runs.
func QuickScale() Options {
	return Options{
		Cardinality:    20000,
		Processors:     32,
		MPLs:           []int{1, 8, 32, 64},
		WarmupQueries:  60,
		MeasureQueries: 300,
		Seed:           1,
	}
}

func (o Options) withDefaults() Options {
	d := PaperScale()
	if o.Cardinality <= 0 {
		o.Cardinality = d.Cardinality
	}
	if o.Processors <= 0 {
		o.Processors = d.Processors
	}
	if len(o.MPLs) == 0 {
		o.MPLs = d.MPLs
	}
	if o.WarmupQueries <= 0 {
		o.WarmupQueries = d.WarmupQueries
	}
	if o.MeasureQueries <= 0 {
		o.MeasureQueries = d.MeasureQueries
	}
	if o.Seed == 0 && !o.SeedSet {
		o.Seed = d.Seed
	}
	return o
}

// Point is one measured (strategy, MPL) combination.
type Point struct {
	Strategy string
	MPL      int
	Result   gamma.RunResult
}

// FigureResult holds a completed figure.
type FigureResult struct {
	Figure  Figure
	Options Options
	Points  []Point
	// Notes records construction facts the paper reports alongside the
	// curves (grid directory shape, average processors used, ...).
	Notes []string
}

// BuildPlacement constructs the named strategy for a relation through the
// core strategy registry, estimating MAGIC's planning inputs from the mix.
// Strategies register themselves with core.RegisterStrategy, so a new
// strategy becomes runnable here (and in declusterbench) without touching
// this package; an unknown name reports every registered strategy.
func BuildPlacement(name string, rel *storage.Relation, mix workload.Mix, opts Options) (core.Placement, error) {
	opts = opts.withDefaults()
	cfg := gamma.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	params := core.StrategyParams{
		Relation:       rel,
		Processors:     opts.Processors,
		PrimaryAttr:    storage.Unique1,
		SecondaryAttrs: []int{storage.Unique2},
	}
	if rel != nil {
		params.Specs = workload.EstimateSpecs(mix, rel.Cardinality(), cfg.HW, cfg.Costs)
		params.Plan = workload.PlanParamsFor(rel.Cardinality(), opts.Processors, cfg.Costs)
	}
	return core.BuildStrategy(name, params)
}

// ConfigFor returns the machine configuration an experiment with these
// options uses. An explicit Options.Config override wins: it is returned
// with only the knobs Options itself carries — the processor count and the
// seed — stamped on top, the same precedence RunCampaign has always
// applied. Without an override the result is the Table 2 defaults, with
// the buffer pool sized to the per-node index footprint (plus a small
// margin) whatever the relation scale — index pages stay resident while
// data pages pay I/O, which is the paper's cost regime. At paper scale this
// reproduces the default 24 pages.
func ConfigFor(opts Options) gamma.Config {
	opts = opts.withDefaults()
	if opts.Config != nil {
		cfg := *opts.Config
		cfg.HW.NumProcessors = opts.Processors
		cfg.Seed = opts.Seed
		return stampSpecs(cfg, opts)
	}
	cfg := gamma.DefaultConfig()
	leafCap := cfg.Layout.IndexLeafCap
	perNode := (opts.Cardinality + opts.Processors*leafCap - 1) / (opts.Processors * leafCap)
	cfg.BufferPages = 2*perNode + 6
	cfg.HW.NumProcessors = opts.Processors
	cfg.Seed = opts.Seed
	return stampSpecs(cfg, opts)
}

// stampSpecs carries the experiment-level subsystem knobs onto the machine
// config through gamma's option constructors, so every armed spec flows
// through the same copy-and-validate path a direct gamma user gets. Options
// wins only when it says something: a nil Options.Faults leaves a Config
// override's own spec in place.
func stampSpecs(cfg gamma.Config, opts Options) gamma.Config {
	var armed []gamma.Option
	if opts.Faults != nil {
		armed = append(armed, gamma.WithFaults(opts.Faults))
	}
	if opts.ChainedReplicas {
		armed = append(armed, gamma.WithChainedReplicas())
	}
	if opts.TelemetryWindowMS > 0 {
		armed = append(armed, gamma.WithTelemetry(gamma.TelemetrySpec{
			Window:     sim.Duration(opts.TelemetryWindowMS * float64(sim.Millisecond)),
			Capacity:   opts.TelemetryCapacity,
			BurnBudget: opts.BurnBudget,
		}))
	}
	if opts.Heat {
		armed = append(armed, gamma.WithHeat(gamma.HeatSpec{TopK: opts.HeatTopK}))
	}
	if opts.SharingArmed() {
		armed = append(armed, gamma.WithSharing(gamma.SharingSpec{
			Window: sim.Duration(opts.SharingWindowMS * float64(sim.Millisecond)),
		}))
	}
	return cfg.With(armed...)
}

// Run executes the figure across its strategies and the MPL sweep. It is a
// thin workers=1 campaign — RunCampaign with a single figure and a single
// worker — so the serial path and the parallel path share one
// implementation and stay byte-identical by construction.
func Run(fig Figure, opts Options) (FigureResult, error) {
	c, err := RunCampaign([]Figure{fig}, opts, CampaignOptions{Workers: 1})
	if len(c.Figures) == 1 {
		return c.Figures[0], err
	}
	return FigureResult{Figure: fig, Options: opts.withDefaults()}, err
}

// Throughput returns the measured throughput for a (strategy, MPL), or
// (0, false).
func (fr FigureResult) Throughput(strategy string, mpl int) (float64, bool) {
	for _, p := range fr.Points {
		if p.Strategy == strategy && p.MPL == mpl {
			return p.Result.ThroughputQPS, true
		}
	}
	return 0, false
}

// MeanProcs returns the mean processors-per-query a strategy used across
// the sweep.
func (fr FigureResult) MeanProcs(strategy string) float64 {
	var acc stats.Accumulator
	for _, p := range fr.Points {
		if p.Strategy == strategy {
			acc.Add(p.Result.MeanProcsUsed)
		}
	}
	return acc.Mean()
}

// Table renders the figure as "MPL x strategy -> throughput", the series
// the paper plots.
func (fr FigureResult) Table() *stats.Table {
	strategies := fr.strategies()
	headers := append([]string{"MPL"}, strategies...)
	tb := stats.NewTable(fmt.Sprintf("Figure %s: %s — throughput (queries/second)",
		fr.Figure.ID, fr.Figure.Title), headers...)
	for _, mpl := range fr.mpls() {
		row := make([]any, 0, len(headers))
		row = append(row, mpl)
		for _, s := range strategies {
			if tp, ok := fr.Throughput(s, mpl); ok {
				row = append(row, fmt.Sprintf("%.2f", tp))
			} else {
				row = append(row, "-")
			}
		}
		tb.AddRow(row...)
	}
	return tb
}

// Chart renders the figure as an ASCII line chart — the curves the paper
// plots.
func (fr FigureResult) Chart() *stats.Chart {
	c := stats.NewChart(fmt.Sprintf("Figure %s: %s", fr.Figure.ID, fr.Figure.Title),
		"MPL", "queries/second")
	for _, s := range fr.strategies() {
		var xs, ys []float64
		for _, mpl := range fr.mpls() {
			if tp, ok := fr.Throughput(s, mpl); ok {
				xs = append(xs, float64(mpl))
				ys = append(ys, tp)
			}
		}
		c.AddSeries(s, xs, ys)
	}
	return c
}

// DetailTable renders per-point diagnostics (processors used, response
// time, utilizations, execution skew).
func (fr FigureResult) DetailTable() *stats.Table {
	tb := stats.NewTable(fmt.Sprintf("Figure %s detail", fr.Figure.ID),
		"strategy", "MPL", "q/s", "resp ms", "p95 ms", "procs/query",
		"disk util", "cpu util", "buf hit", "reads/query", "disk skew")
	for _, p := range fr.Points {
		r := p.Result
		tb.AddRow(p.Strategy, p.MPL,
			fmt.Sprintf("%.2f", r.ThroughputQPS),
			fmt.Sprintf("%.1f", r.MeanResponseMS),
			fmt.Sprintf("%.1f", r.P95ResponseMS),
			fmt.Sprintf("%.2f", r.MeanProcsUsed),
			fmt.Sprintf("%.2f", r.DiskUtilization),
			fmt.Sprintf("%.2f", r.CPUUtilization),
			fmt.Sprintf("%.2f", r.BufferHitRate),
			fmt.Sprintf("%.1f", r.DiskReadsPerQry),
			fmt.Sprintf("%.2f", r.DiskSkew))
	}
	return tb
}

// Point returns the measured result for a (strategy, MPL), or nil.
func (fr FigureResult) Point(strategy string, mpl int) *gamma.RunResult {
	for i := range fr.Points {
		if fr.Points[i].Strategy == strategy && fr.Points[i].MPL == mpl {
			return &fr.Points[i].Result
		}
	}
	return nil
}

// NodeTable renders a (strategy, MPL) point's per-node resource breakdown —
// the execution-skew vector behind the figure's means. Returns nil when the
// point was not measured.
func (fr FigureResult) NodeTable(strategy string, mpl int) *stats.Table {
	r := fr.Point(strategy, mpl)
	if r == nil || len(r.NodeStats) == 0 {
		return nil
	}
	tb := stats.NewTable(
		fmt.Sprintf("Figure %s: %s @ MPL %d — per-node utilization (disk skew %.2f, cpu skew %.2f)",
			fr.Figure.ID, strategy, mpl, r.DiskSkew, r.CPUSkew),
		"node", "cpu util", "disk util", "disk reads", "buf hit", "ops", "tuples")
	for _, u := range r.NodeStats {
		tb.AddRow(u.Node,
			fmt.Sprintf("%.3f", u.CPUUtil),
			fmt.Sprintf("%.3f", u.DiskUtil),
			u.DiskReads,
			fmt.Sprintf("%.2f", u.BufferHitRate),
			u.OpsExecuted,
			u.TuplesShipped)
	}
	return tb
}

func (fr FigureResult) strategies() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range fr.Points {
		if !seen[p.Strategy] {
			seen[p.Strategy] = true
			out = append(out, p.Strategy)
		}
	}
	return out
}

func (fr FigureResult) mpls() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range fr.Points {
		if !seen[p.MPL] {
			seen[p.MPL] = true
			out = append(out, p.MPL)
		}
	}
	sort.Ints(out)
	return out
}
