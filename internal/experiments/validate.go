package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gamma"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

// ResponsePoint is one measurement of the declustering-width experiment.
type ResponsePoint struct {
	Processors     int
	MeanResponseMS float64
	ModeledMS      float64 // Equation 1's prediction at this width
}

// ResponseCurve validates the Section 3.2 response-time model (Equation 1)
// against the simulator: the relation is declustered over exactly M
// processors (range partitioning on the queried attribute, so every
// processor participates in every query), a single terminal issues the
// workload, and the mean response time is measured for each M. The paper
// derives the ideal degree of declustering by minimizing Equation 1; if
// model and simulator agree, the measured curve is U-shaped with its
// minimum near the planner's M.
type ResponseCurve struct {
	Points    []ResponsePoint
	PlannerM  float64 // the closed-form M for this workload
	MeasuredM int     // processor count with the lowest measured response
	ModeledM  int     // processor count with the lowest modeled response
}

// RunResponseCurve measures the curve for the given query class (attribute
// and result width) over the candidate processor counts.
func RunResponseCurve(cls workload.Class, widths []int, opts Options) (ResponseCurve, error) {
	opts = opts.withDefaults()
	var out ResponseCurve
	mix := workload.Mix{Name: "validate-" + cls.Name, Classes: []workload.Class{cls}}

	// Planner view of the same workload.
	cfgAll := ConfigFor(opts)
	specs := workload.EstimateSpecs(mix, opts.Cardinality, cfgAll.HW, cfgAll.Costs)
	pp := workload.PlanParamsFor(opts.Cardinality, opts.Processors, cfgAll.Costs)
	plan, err := core.ComputePlan(specs, pp)
	if err != nil {
		return out, err
	}
	out.PlannerM = plan.M
	out.ModeledM = plan.OptimalM(pp)

	rel := storage.GenerateWisconsin(storage.GenSpec{
		Cardinality: opts.Cardinality, Seed: opts.Seed,
	})
	// Decluster on the *other* attribute, so a predicate on the queried
	// attribute carries no localization information and every one of the m
	// processors participates — the m-way execution Equation 1 models.
	declusterAttr := storage.Unique2
	if cls.Attr == storage.Unique2 {
		declusterAttr = storage.Unique1
	}
	bestMeasured := 0.0
	for _, m := range widths {
		if m <= 0 {
			return out, fmt.Errorf("experiments: bad declustering width %d", m)
		}
		o := opts
		o.Processors = m
		cfg := ConfigFor(o)
		pl := core.NewRangeForRelation(rel, declusterAttr, m)
		machine, err := gamma.Build(rel, pl, cfg)
		if err != nil {
			return out, err
		}
		res, err := machine.Run(mix, gamma.RunSpec{
			MPL:            1, // a single query in the system, as in Eq. 1
			WarmupQueries:  opts.WarmupQueries / 4,
			MeasureQueries: opts.MeasureQueries / 2,
			Seed:           opts.Seed,
		})
		if err != nil {
			return out, err
		}
		modeled := core.ResponseTime(float64(m), plan.TuplesPerQAve,
			plan.CPUAveMS, plan.DiskAveMS, plan.NetAveMS, pp)
		out.Points = append(out.Points, ResponsePoint{
			Processors:     m,
			MeanResponseMS: res.MeanResponseMS,
			ModeledMS:      modeled,
		})
		if out.MeasuredM == 0 || res.MeanResponseMS < bestMeasured {
			bestMeasured = res.MeanResponseMS
			out.MeasuredM = m
		}
	}
	return out, nil
}

// Table renders measured versus modeled response times.
func (rc ResponseCurve) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Equation 1 validation (planner M = %.2f, modeled optimum %d, measured optimum %d)",
			rc.PlannerM, rc.ModeledM, rc.MeasuredM),
		"processors", "measured ms", "modeled ms")
	for _, p := range rc.Points {
		tb.AddRow(p.Processors,
			fmt.Sprintf("%.1f", p.MeanResponseMS),
			fmt.Sprintf("%.1f", p.ModeledMS))
	}
	return tb
}
