package experiments

import (
	"repro/internal/workload"
	"strings"
	"testing"
)

// Shape tests: these run the paper's figures at QuickScale and assert the
// qualitative results the paper reports — who wins, roughly by how much,
// and how many processors each strategy employs. Absolute throughputs are
// not asserted (our substrate is a reconstruction, not the authors'
// testbed).

func runFig(t *testing.T, id string) FigureResult {
	t.Helper()
	fig, err := FigureByID(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(fig, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func tp(t *testing.T, fr FigureResult, strategy string, mpl int) float64 {
	t.Helper()
	v, ok := fr.Throughput(strategy, mpl)
	if !ok {
		t.Fatalf("no %s point at MPL %d", strategy, mpl)
	}
	if v <= 0 {
		t.Fatalf("non-positive throughput for %s at MPL %d", strategy, mpl)
	}
	return v
}

func TestFigureListComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, f := range Figures() {
		ids[f.ID] = true
		if f.Title == "" || f.Mix == nil || len(f.Strategies) == 0 {
			t.Fatalf("figure %s incomplete", f.ID)
		}
	}
	for _, want := range []string{"8a", "8b", "9", "10a", "10b", "11a", "11b", "12a", "12b"} {
		if !ids[want] {
			t.Fatalf("missing figure %s", want)
		}
	}
	if _, err := FigureByID("nope"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	p := PaperScale()
	if o.Cardinality != p.Cardinality || o.Processors != p.Processors ||
		len(o.MPLs) != len(p.MPLs) || o.Seed != p.Seed {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestBuildPlacementUnknownStrategy(t *testing.T) {
	fig, _ := FigureByID("8a")
	_ = fig
	if _, err := BuildPlacement("nope", nil, Figures()[0].Mix(100), QuickScale()); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// Figure 8a: low-low, low correlation. The paper: MAGIC > BERD (~7%) >
// range; MAGIC averages ~6.4 processors, range ~16.5, BERD ~6.
func TestFig8aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fr := runFig(t, "8a")
	magic, berd, rng := tp(t, fr, "magic", 64), tp(t, fr, "berd", 64), tp(t, fr, "range", 64)
	if magic <= berd {
		t.Errorf("MAGIC (%.1f) must beat BERD (%.1f) at MPL 64", magic, berd)
	}
	if magic <= rng {
		t.Errorf("MAGIC (%.1f) must beat range (%.1f) at MPL 64", magic, rng)
	}
	if berd <= rng*0.9 {
		t.Errorf("BERD (%.1f) should not trail range (%.1f) badly on low-low", berd, rng)
	}
	if p := fr.MeanProcs("magic"); p < 3 || p > 10 {
		t.Errorf("MAGIC used %.2f processors/query, paper ~6.4", p)
	}
	if p := fr.MeanProcs("range"); p < 12 || p > 18 {
		t.Errorf("range used %.2f processors/query, paper ~16.5", p)
	}
	// Throughput must scale well beyond MPL 1 for the localized strategies.
	if tp(t, fr, "magic", 64) < 5*tp(t, fr, "magic", 1) {
		t.Error("MAGIC throughput barely scales with MPL")
	}
}

// Figure 8b: low-low, high correlation. Both multi-attribute strategies
// localize to ~1-2 processors; MAGIC beats BERD (paper: ~45% at high MPL,
// no auxiliary-relation access) and both beat range.
func TestFig8bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fr := runFig(t, "8b")
	magic, berd, rng := tp(t, fr, "magic", 64), tp(t, fr, "berd", 64), tp(t, fr, "range", 64)
	if magic <= berd {
		t.Errorf("MAGIC (%.1f) must beat BERD (%.1f)", magic, berd)
	}
	if berd <= rng {
		t.Errorf("BERD (%.1f) must beat range (%.1f) under high correlation", berd, rng)
	}
	if p := fr.MeanProcs("berd"); p > 2.5 {
		t.Errorf("BERD used %.2f processors/query; high correlation should localize to ~1", p)
	}
	if p := fr.MeanProcs("magic"); p > 4 {
		t.Errorf("MAGIC used %.2f processors/query; high correlation should localize", p)
	}
}

// Figure 9: doubling QB's selectivity widens BERD's fan-out; the paper has
// MAGIC ahead by ~50% at MPL 64.
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fr := runFig(t, "9")
	magic, berd := tp(t, fr, "magic", 64), tp(t, fr, "berd", 64)
	if magic < 1.2*berd {
		t.Errorf("MAGIC (%.1f) should beat BERD (%.1f) clearly with doubled selectivity", magic, berd)
	}
}

// Figure 10a: low-moderate, low correlation. MAGIC wins; BERD does not beat
// range (it pays the auxiliary overhead while QB still reaches all nodes).
func TestFig10aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fr := runFig(t, "10a")
	magic, berd, rng := tp(t, fr, "magic", 64), tp(t, fr, "berd", 64), tp(t, fr, "range", 64)
	if magic <= berd || magic <= rng {
		t.Errorf("MAGIC (%.1f) must beat BERD (%.1f) and range (%.1f)", magic, berd, rng)
	}
	if berd > 1.1*rng {
		t.Errorf("BERD (%.1f) should not beat range (%.1f) on low-moderate", berd, rng)
	}
}

// Figure 11a: moderate-low, low correlation. The paper: MAGIC wins, and
// BERD edges out range because QB (10 tuples) localizes to <=11 nodes
// instead of all 32. In our reconstruction BERD's auxiliary access offsets
// most of that edge, so BERD and range land within a few percent of each
// other (EXPERIMENTS.md records the deviation); the test pins MAGIC's win
// and BERD staying at least competitive with range.
func TestFig11aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fr := runFig(t, "11a")
	magic, berd, rng := tp(t, fr, "magic", 64), tp(t, fr, "berd", 64), tp(t, fr, "range", 64)
	if magic <= berd || magic <= rng {
		t.Errorf("MAGIC (%.1f) must beat BERD (%.1f) and range (%.1f)", magic, berd, rng)
	}
	if berd < 0.9*rng {
		t.Errorf("BERD (%.1f) should stay competitive with range (%.1f) on moderate-low", berd, rng)
	}
	// BERD's localization is visible in processors used even when the
	// throughput edge is eaten by the auxiliary access.
	if fr.MeanProcs("berd") >= fr.MeanProcs("range") {
		t.Errorf("BERD should employ fewer processors (%.1f) than range (%.1f)",
			fr.MeanProcs("berd"), fr.MeanProcs("range"))
	}
}

// Figure 12a: moderate-moderate, low correlation. MAGIC uses ~6.5
// processors against ~16.5 and wins clearly.
func TestFig12aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fr := runFig(t, "12a")
	magic, berd, rng := tp(t, fr, "magic", 64), tp(t, fr, "berd", 64), tp(t, fr, "range", 64)
	if magic < 1.2*berd || magic < 1.2*rng {
		t.Errorf("MAGIC (%.1f) should win clearly over BERD (%.1f) and range (%.1f)",
			magic, berd, rng)
	}
	if p := fr.MeanProcs("magic"); p > 12 {
		t.Errorf("MAGIC used %.2f processors/query, paper ~6.5", p)
	}
}

// Figure 12b: moderate-moderate, high correlation. MAGIC >= BERD at MPL 64
// (paper: ~25% ahead, no auxiliary search).
func TestFig12bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fr := runFig(t, "12b")
	magic, berd := tp(t, fr, "magic", 64), tp(t, fr, "berd", 64)
	if magic < berd {
		t.Errorf("MAGIC (%.1f) must not trail BERD (%.1f) at MPL 64", magic, berd)
	}
}

func TestFigureTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fig, _ := FigureByID("8a")
	opts := QuickScale()
	opts.MPLs = []int{1, 8}
	opts.MeasureQueries = 100
	opts.WarmupQueries = 20
	fr, err := Run(fig, opts)
	if err != nil {
		t.Fatal(err)
	}
	table := fr.Table().String()
	for _, want := range []string{"Figure 8a", "MPL", "magic", "berd", "range"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if len(fr.Notes) == 0 || !strings.Contains(fr.Notes[0], "directory") {
		t.Errorf("missing MAGIC construction note: %v", fr.Notes)
	}
	detail := fr.DetailTable().String()
	if !strings.Contains(detail, "procs/query") {
		t.Errorf("detail table malformed:\n%s", detail)
	}
	csv := fr.Table().CSV()
	if !strings.Contains(csv, "MPL,magic") {
		t.Errorf("CSV malformed: %s", csv)
	}
}

// The TID-fetch ablation: fetching BERD's second step by TID must cost more
// random I/O on the moderate mix than re-executing the predicate.
func TestBERDTIDFetchAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	fig, _ := FigureByID("10a")
	fig.Strategies = []string{StrategyBERD}
	opts := QuickScale()
	opts.MPLs = []int{32}

	base, err := Run(fig, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfgTID := ConfigFor(opts)
	cfgTID.BERDFetchByTID = true
	opts.Config = &cfgTID
	tid, err := Run(fig, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := base.Throughput(StrategyBERD, 32)
	v, _ := tid.Throughput(StrategyBERD, 32)
	if v >= b {
		t.Errorf("TID fetching (%.1f q/s) should underperform predicate re-execution (%.1f q/s)", v, b)
	}
}

// Scale-out: MAGIC's localized execution should scale better than range's
// broadcast execution as processors grow.
func TestScaleSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	sweep := DefaultScaleSweep()
	sweep.Processors = []int{8, 32}
	opts := QuickScale()
	opts.MeasureQueries = 250
	res, err := RunScaleSweep(sweep, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sweep.Strategies {
		small, ok1 := res.Throughput(s, 8)
		big, ok2 := res.Throughput(s, 32)
		if !ok1 || !ok2 || small <= 0 || big <= small {
			t.Fatalf("%s did not scale: %.1f -> %.1f", s, small, big)
		}
	}
	magicSpeedup, _ := res.Speedup(StrategyMAGIC, 32)
	rangeSpeedup, _ := res.Speedup(StrategyRange, 32)
	if magicSpeedup <= rangeSpeedup {
		t.Errorf("MAGIC speedup %.2fx should exceed range %.2fx", magicSpeedup, rangeSpeedup)
	}
	table := res.Table().String()
	if !strings.Contains(table, "speedup") {
		t.Errorf("table malformed:\n%s", table)
	}
}

// Equation 1 validation: the simulator must reproduce the model's
// structure — response time falls like work/M in the work-dominated region
// and flattens into diminishing returns as the per-processor overhead
// grows. (The effective Cost of Participation in our execution layer is
// below the planning constant, so the empirical optimum sits above the
// planner's M and the bottom of the U is nearly flat; EXPERIMENTS.md
// discusses this.)
func TestResponseCurveValidatesEquation1(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opts := QuickScale()
	opts.Cardinality = 100000                                // full-size fragments keep the disks honest
	cls := workload.ModerateLow(opts.Cardinality).Classes[0] // QA-moderate: 30 tuples
	rc, err := RunResponseCurve(cls, []int{1, 2, 4, 8, 16, 32, 64}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Points) != 7 {
		t.Fatalf("points = %d", len(rc.Points))
	}
	at := func(m int) float64 {
		for _, p := range rc.Points {
			if p.Processors == m {
				return p.MeanResponseMS
			}
		}
		t.Fatalf("no point at %d", m)
		return 0
	}
	modeled := func(m int) float64 {
		for _, p := range rc.Points {
			if p.Processors == m {
				return p.ModeledMS
			}
		}
		return 0
	}
	// Work-dominated region: near-linear speedup, and model vs measurement
	// within 40%.
	if at(8) > at(1)/2.5 {
		t.Errorf("speedup too weak: RT(1)=%.1f RT(8)=%.1f", at(1), at(8))
	}
	for _, m := range []int{1, 2, 4, 8} {
		meas, mod := at(m), modeled(m)
		if rel := (meas - mod) / mod; rel < -0.4 || rel > 0.4 {
			t.Errorf("m=%d: measured %.1fms vs modeled %.1fms (%.0f%% off)",
				m, meas, mod, 100*rel)
		}
	}
	// Overhead region: doubling 32 -> 64 must yield almost nothing
	// (diminishing returns), unlike the work-dominated doublings.
	if gain := (at(32) - at(64)) / at(32); gain > 0.15 {
		t.Errorf("32->64 still gained %.0f%%; overhead term missing", gain*100)
	}
	if gain := (at(1) - at(2)) / at(1); gain < 0.3 {
		t.Errorf("1->2 gained only %.0f%%; work term missing", gain*100)
	}
}
