package experiments

// Fragment heat reporting over completed figures. Each run carries its
// own HeatSnapshot (Options.Heat); the reducers here merge a strategy's
// snapshots across the sweep — counters sum and the per-fragment
// queue-wait histograms merge bucket-wise via obs.Histogram.Merge, the
// same cross-job reduction path the harness's parallel workers feed —
// and render the merged view as a table. All reductions walk points in
// canonical figure order, so the output is byte-identical at any worker
// count.

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/stats"
)

// StrategyHeat merges the strategy's per-point heat snapshots across the
// MPL sweep. Nil when heat was not armed (or the strategy has no points).
func (fr FigureResult) StrategyHeat(strategy string) *obs.HeatSnapshot {
	var snaps []*obs.HeatSnapshot
	topK := 0
	for _, p := range fr.Points {
		if p.Strategy != strategy || p.Result.Heat == nil {
			continue
		}
		snaps = append(snaps, p.Result.Heat)
		topK = p.Result.Heat.TopK
	}
	return obs.MergeHeatSnapshots(snaps, topK)
}

// HeatTable renders the strategy's merged heatmap: one row per fragment
// in canonical order, concentration indices in the title. Nil when heat
// was not armed.
func (fr FigureResult) HeatTable(strategy string) *stats.Table {
	s := fr.StrategyHeat(strategy)
	if s == nil {
		return nil
	}
	return heatTable(fmt.Sprintf("Figure %s: %s — fragment heat", fr.Figure.ID, strategy), s)
}

// StrategyHeat merges the strategy's per-λ heat snapshots across the
// offered-load sweep. Nil when heat was not armed.
func (fr OpenFigureResult) StrategyHeat(strategy string) *obs.HeatSnapshot {
	var snaps []*obs.HeatSnapshot
	topK := 0
	for _, p := range fr.Points {
		if p.Strategy != strategy || p.Result.Heat == nil {
			continue
		}
		snaps = append(snaps, p.Result.Heat)
		topK = p.Result.Heat.TopK
	}
	return obs.MergeHeatSnapshots(snaps, topK)
}

// HeatTable renders the strategy's merged open-system heatmap. Nil when
// heat was not armed.
func (fr OpenFigureResult) HeatTable(strategy string) *stats.Table {
	s := fr.StrategyHeat(strategy)
	if s == nil {
		return nil
	}
	return heatTable(fmt.Sprintf("Figure %s: %s — fragment heat (open system)", fr.Figure.ID, strategy), s)
}

// heatTable renders a snapshot: counters, locality, hit rate and
// queue-wait percentiles per fragment.
func heatTable(title string, s *obs.HeatSnapshot) *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("%s (top-%d share %.3f, HHI %.3f, Gini %.3f)",
			title, s.TopK, s.TopKShare, s.HHI, s.Gini),
		"fragment", "node", "reads", "pages", "share", "local", "remote",
		"hit rate", "wait p50ms", "wait p99ms", "size")
	for _, r := range s.Rows {
		share := 0.0
		if s.TotalPages > 0 {
			share = float64(r.Pages()) / float64(s.TotalPages)
		}
		hit := 0.0
		if n := r.BufHits + r.BufMisses; n > 0 {
			hit = float64(r.BufHits) / float64(n)
		}
		tb.AddRow(r.Label(), r.Node, r.Reads, r.Pages(),
			fmt.Sprintf("%.3f", share),
			r.Local, r.Remote,
			fmt.Sprintf("%.2f", hit),
			fmt.Sprintf("%.2f", r.WaitStats.P50),
			fmt.Sprintf("%.2f", r.WaitStats.P99),
			r.SizePages)
	}
	return tb
}

// HotLine renders one strategy's hot-fragment report as a single line
// ("hot fragments fig/strategy: TENK@n7 31.2% ..."), or "" when heat was
// not armed or nothing was read.
func HotLine(figID, strategy string, s *obs.HeatSnapshot) string {
	if s == nil {
		return ""
	}
	hot := s.HotFragments()
	if len(hot) == 0 {
		return ""
	}
	line := fmt.Sprintf("hot fragments %s/%s:", figID, strategy)
	for _, h := range hot {
		label := h.Relation
		if h.Kind != "" && h.Kind != "primary" {
			label += ":" + h.Kind
		}
		line += fmt.Sprintf(" %s@n%d %.1f%%", label, h.Node, 100*h.Share)
	}
	return line
}
