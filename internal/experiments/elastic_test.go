package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

// elasticTestInputs use a small relation (a rebalance copy pays real disk
// latency per page) and enough measured completions at λ=100 q/s for both
// transitions' copy windows to drain before the run ends.
func elasticTestInputs() ([]Figure, Options, ElasticOptions) {
	figs := []Figure{{
		ID:         "e1",
		Title:      "Elastic scale-out",
		Mix:        workload.LowLow,
		Strategies: []string{StrategyRange, StrategyHash},
	}}
	opts := Options{
		Cardinality:    1000,
		Processors:     4,
		WarmupQueries:  5,
		MeasureQueries: 300,
		Seed:           7,
	}
	eopts := ElasticOptions{
		Arrival: serve.Poisson,
		Lambda:  100,
		JoinAt:  200 * sim.Millisecond,
		LeaveAt: 900 * sim.Millisecond,
	}
	return figs, opts, eopts
}

// A join plus a decommission under open load, for every strategy that can
// rebuild at arbitrary node counts: both transitions execute, data moves,
// no query fails, and the campaign reports a positive time-to-rebalance
// plus the greppable summary line.
func TestRunElasticExecutesSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	figs, opts, eopts := elasticTestInputs()
	camp, err := RunElastic(figs, opts, eopts, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fr := camp.Figures[0]
	if len(fr.Points) != 2 {
		t.Fatalf("got %d points, want 2 (range, hash at one size)", len(fr.Points))
	}
	for _, p := range fr.Points {
		rep := p.Result.Rebalance
		if rep == nil || len(rep.Tasks) != 2 {
			t.Fatalf("%s: rebalance report %+v, want join + decommission", p.Strategy, rep)
		}
		for _, task := range rep.Tasks {
			if task.Err != "" {
				t.Fatalf("%s: task %s failed: %s", p.Strategy, task.Kind, task.Err)
			}
		}
		if p.TimeToRebalance <= 0 {
			t.Fatalf("%s: time-to-rebalance %v, want > 0", p.Strategy, p.TimeToRebalance)
		}
		if p.BytesMoved == 0 || p.PagesMoved == 0 {
			t.Fatalf("%s: no data moved (%d pages, %d bytes)", p.Strategy, p.PagesMoved, p.BytesMoved)
		}
		if p.Result.Serve.Outcomes.Failed != 0 {
			t.Fatalf("%s: %d failed queries during rebalance", p.Strategy, p.Result.Serve.Outcomes.Failed)
		}
		if !strings.Contains(p.Summary, "rebalance summary:") {
			t.Fatalf("%s: summary %q missing the greppable prefix", p.Strategy, p.Summary)
		}
		if p.GoodputDip < 0 || p.GoodputDip > 1 {
			t.Fatalf("%s: goodput dip %g outside [0, 1]", p.Strategy, p.GoodputDip)
		}
	}
	tb := fr.Table()
	if tb == nil || len(fr.Points) == 0 {
		t.Fatal("elasticity table rendered nothing")
	}
}

// The elasticity campaign must reassemble identically at any worker count.
func TestRunElasticDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	figs, opts, eopts := elasticTestInputs()
	// One transition is enough to exercise the controller here.
	eopts.LeaveAt = -1
	opts.MeasureQueries = 150
	serial, err := RunElastic(figs, opts, eopts, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunElastic(figs, opts, eopts, CampaignOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Figures[0].Points, parallel.Figures[0].Points) {
		t.Fatalf("workers=1 and workers=4 disagree:\n%+v\nvs\n%+v",
			serial.Figures[0].Points, parallel.Figures[0].Points)
	}
}
