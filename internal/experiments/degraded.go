package experiments

// Degraded-mode campaign: how does each declustering strategy hold up when
// k of the machine's disks fail-stop early in the run? Every machine runs
// with chained replicas and the degraded scheduler, so queries that would
// have needed a dead disk reroute to the chain successor; the interesting
// output is the throughput each strategy retains and the outcome tally
// (ok / retried / timed-out / failed) behind it.

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/gamma"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/stats"
)

// DegradedPoint is one measured (strategy, failed-disk count, MPL) cell.
type DegradedPoint struct {
	Strategy string
	K        int // disks fail-stopped at the start of the run
	MPL      int
	Result   gamma.RunResult
}

// DegradedResult holds a completed degraded-mode campaign.
type DegradedResult struct {
	Figure  Figure
	Options Options
	Ks      []int
	Points  []DegradedPoint
}

// KillSpec builds the fault spec that fail-stops k disks spread evenly over
// a p-node machine, all shortly after the run starts (1ms in, so placement
// and routing are warm but the measurement window sees the degraded
// machine). k = 0 yields an empty spec: degraded scheduling with nothing
// actually broken, the baseline overhead measurement.
func KillSpec(k, p int) *fault.Spec {
	s := &fault.Spec{}
	for i := 0; i < k && i < p; i++ {
		s.Events = append(s.Events, fault.Event{
			At: sim.Millisecond, Kind: fault.DiskFail, Node: i * p / k,
		})
	}
	return s
}

// RunDegraded sweeps the figure's strategies across failed-disk counts ks
// (nil defaults to {0, 1, 2}) with chained replicas on. Jobs run on the
// harness pool exactly like a figure campaign; per-job fault-event counts
// land in the manifest.
func RunDegraded(fig Figure, ks []int, opts Options, copts CampaignOptions) (DegradedResult, harness.Manifest, error) {
	opts = opts.withDefaults()
	opts.ChainedReplicas = true
	if len(ks) == 0 {
		ks = []int{0, 1, 2}
	}
	out := DegradedResult{Figure: fig, Options: opts, Ks: ks}

	rels := relationCache{}
	fb, err := buildFigure(fig, rels, opts)
	if err != nil {
		return out, harness.Manifest{}, err
	}

	var jobs []harness.Job
	for si, name := range fb.fig.Strategies {
		for _, k := range ks {
			kOpts := opts
			kOpts.Faults = KillSpec(k, opts.Processors)
			cfg := ConfigFor(kOpts)
			for _, mpl := range opts.MPLs {
				name, k, mpl, pl := name, k, mpl, fb.placements[si]
				jobs = append(jobs, harness.Job{
					ID:   fmt.Sprintf("degraded/%s/k%d/mpl%d", name, k, mpl),
					Seed: opts.Seed,
					Run: func() (any, error) {
						machine, err := gamma.Build(fb.rel, pl, cfg)
						if err != nil {
							return nil, fmt.Errorf("degraded %s/k%d: %w", name, k, err)
						}
						res, err := machine.Run(fb.mix, gamma.RunSpec{
							MPL:            mpl,
							WarmupQueries:  opts.WarmupQueries,
							MeasureQueries: opts.MeasureQueries,
							Seed:           opts.Seed,
						})
						if err != nil {
							return nil, fmt.Errorf("degraded %s/k%d MPL %d: %w", name, k, mpl, err)
						}
						return res, nil
					},
				})
			}
		}
	}

	values, manifest, err := harness.Execute(jobs, harness.Options{
		Workers:     copts.Workers,
		JobTimeout:  copts.JobTimeout,
		Progress:    copts.Progress,
		Label:       copts.Label,
		IsTransient: copts.IsTransient,
	})
	if err != nil {
		return out, manifest, err
	}

	j := 0
	for _, name := range fb.fig.Strategies {
		for _, k := range ks {
			for _, mpl := range opts.MPLs {
				if v := values[j]; v != nil {
					res := v.(gamma.RunResult)
					manifest.Reports[j].FaultEvents = len(res.FaultLog)
					out.Points = append(out.Points, DegradedPoint{
						Strategy: name, K: k, MPL: mpl, Result: res,
					})
				}
				j++
			}
		}
	}
	return out, manifest, manifest.Err()
}

// Outcomes sums the outcome tallies across every measured point.
func (dr DegradedResult) Outcomes() gamma.Outcomes {
	var o gamma.Outcomes
	for _, p := range dr.Points {
		o.OK += p.Result.Outcomes.OK
		o.Retried += p.Result.Outcomes.Retried
		o.TimedOut += p.Result.Outcomes.TimedOut
		o.Failed += p.Result.Outcomes.Failed
	}
	return o
}

// Table renders the campaign: one row per (strategy, k, MPL) with the
// retained throughput and the outcome breakdown.
func (dr DegradedResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Degraded mode (%s, chained replicas): throughput under k failed disks", dr.Figure.ID),
		"strategy", "k", "MPL", "q/s", "resp ms", "ok", "retried", "timed out", "failed", "op retries")
	for _, p := range dr.Points {
		r := p.Result
		tb.AddRow(p.Strategy, p.K, p.MPL,
			fmt.Sprintf("%.2f", r.ThroughputQPS),
			fmt.Sprintf("%.1f", r.MeanResponseMS),
			r.Outcomes.OK, r.Outcomes.Retried, r.Outcomes.TimedOut, r.Outcomes.Failed,
			r.RetriesTotal)
	}
	return tb
}
