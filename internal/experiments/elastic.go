package experiments

// Elasticity campaigns: run each strategy under an open arrival process
// while the cluster's membership changes mid-run — a node joins, another
// is decommissioned — and measure what scale-out actually costs: the time
// from a planned transition to its cutover, the data volume the throttled
// copier moved, and the goodput dip the serving layer saw while the copy
// competed with queries for the disks. The job decomposition mirrors
// open.go: one harness job per (figure, strategy, initial-cluster-size)
// point, canonical reassembly so output is byte-identical at any worker
// count.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gamma"
	"repro/internal/harness"
	"repro/internal/rebalance"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
)

// ElasticOptions parameterize an elasticity campaign on top of the base
// Options (cardinality, seed, warmup/measure window). Each point runs one
// open-system serving measurement with a membership schedule armed.
type ElasticOptions struct {
	// Arrival is the arrival-process kind; RateQPS is Lambda.
	Arrival serve.ArrivalKind `json:"arrival"`
	// Lambda is the offered load in queries/second. Default 100.
	Lambda float64 `json:"lambda"`
	// Sizes sweeps the initial cluster size (the paper's declustering
	// degree); each point starts at that many members and applies the same
	// join/decommission schedule. Default {Options.Processors}.
	Sizes []int `json:"sizes"`
	// JoinAt schedules one node join at this offset; <= 0 disables it.
	// Default 300ms.
	JoinAt sim.Duration `json:"join_at"`
	// LeaveAt schedules the decommission of LeaveNode; <= 0 disables it.
	// Default 3x JoinAt, so the join's copy window has room to drain first
	// at smoke scale.
	LeaveAt sim.Duration `json:"leave_at"`
	// LeaveNode is the member decommissioned at LeaveAt. Default 1.
	LeaveNode int `json:"leave_node"`
	// MigrateRate throttles the background copier in pages/second; 0 uses
	// the rebalance default. The effective rate is further bounded by the
	// per-page disk latency the copy I/O pays.
	MigrateRate int `json:"migrate_rate,omitempty"`
	// Tenants, SLOms, MaxInService, MaxQueue and MaxSimTime mirror
	// OpenOptions; zero values take the same defaults.
	Tenants      int          `json:"tenants"`
	SLOms        float64      `json:"slo_ms"`
	MaxInService int          `json:"max_in_service"`
	MaxQueue     int          `json:"max_queue,omitempty"`
	MaxSimTime   sim.Duration `json:"max_sim_time,omitempty"`
}

func (o ElasticOptions) withDefaults(opts Options) ElasticOptions {
	if o.Lambda <= 0 {
		o.Lambda = 100
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []int{opts.Processors}
	}
	if o.JoinAt == 0 {
		o.JoinAt = 300 * sim.Millisecond
	}
	if o.LeaveAt == 0 && o.JoinAt > 0 {
		o.LeaveAt = 3 * o.JoinAt
	}
	if o.LeaveNode <= 0 {
		o.LeaveNode = 1
	}
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.SLOms <= 0 {
		o.SLOms = 1000
	}
	if o.MaxInService <= 0 {
		o.MaxInService = 64
	}
	return o
}

// events materializes the point schedule. Joins allocate standby nodes in
// controller order, so the event list needs no explicit node ids for them.
func (o ElasticOptions) events() []rebalance.Event {
	var evs []rebalance.Event
	if o.JoinAt > 0 {
		evs = append(evs, rebalance.Event{At: o.JoinAt, Kind: rebalance.Join})
	}
	if o.LeaveAt > 0 {
		evs = append(evs, rebalance.Event{
			At: o.LeaveAt, Kind: rebalance.Decommission, Node: o.LeaveNode,
		})
	}
	return evs
}

// ElasticPoint is one measured (strategy, initial size) combination.
type ElasticPoint struct {
	Strategy string `json:"strategy"`
	Size     int    `json:"size"`

	Result gamma.ServeResult `json:"result"`

	// TimeToRebalance is the slowest transition's plan-to-cutover span.
	TimeToRebalance sim.Duration `json:"time_to_rebalance"`
	// PagesMoved/BytesMoved total the copier's charged I/O across tasks.
	PagesMoved int   `json:"pages_moved"`
	BytesMoved int64 `json:"bytes_moved"`
	// GoodputDip is 1 - (worst window / run mean) of the serve.goodput_qps
	// series: 0 means rebalancing never dented goodput, 1 means some window
	// served nothing. The final (possibly partial) window is excluded.
	GoodputDip float64 `json:"goodput_dip"`
	// Summary is the one-line rebalance digest CI smoke tests grep for.
	Summary string `json:"summary"`
}

// ElasticFigureResult holds one figure's elasticity sweep.
type ElasticFigureResult struct {
	Figure  Figure         `json:"figure"`
	Options Options        `json:"options"`
	Elastic ElasticOptions `json:"elastic"`
	Points  []ElasticPoint `json:"points"`
	Notes   []string       `json:"notes,omitempty"`
}

// ElasticCampaign holds the completed elasticity figures plus the harness
// manifest.
type ElasticCampaign struct {
	Figures  []ElasticFigureResult
	Manifest harness.Manifest
}

// goodputDip condenses the goodput time series into the rebalance cost the
// campaign reports: how far the worst sampling window fell below the run
// mean. The last window is dropped — it is usually partial (the run ends
// mid-window) and would read as a dip that never happened.
func goodputDip(res gamma.ServeResult) float64 {
	s := seriesFor(res, "serve.goodput_qps")
	if s == nil {
		return 0
	}
	pts := s.Points
	if len(pts) > 1 {
		pts = pts[:len(pts)-1]
	}
	if len(pts) == 0 {
		return 0
	}
	min, sum := pts[0].V, 0.0
	for _, p := range pts {
		sum += p.V
		if p.V < min {
			min = p.V
		}
	}
	mean := sum / float64(len(pts))
	if mean <= 0 {
		return 0
	}
	return 1 - min/mean
}

// RunElastic executes every (figure, strategy, size) combination on the
// harness worker pool. Each point serves the open arrival process while
// the membership controller applies the schedule: by default one standby
// joins at JoinAt and member LeaveNode is decommissioned at LeaveAt, each
// transition restaging the strategy's own placement at the new node count
// (strategies that cannot build at a given count record a refusal instead
// of failing the run). Telemetry is forced on — the goodput dip is read
// from the windowed series — and results reassemble in canonical order so
// campaign output is byte-identical whatever the worker count.
func RunElastic(figs []Figure, opts Options, eopts ElasticOptions, copts CampaignOptions) (ElasticCampaign, error) {
	opts = opts.withDefaults()
	eopts = eopts.withDefaults(opts)
	// The dip is read from the goodput series, so telemetry is forced on.
	// 250ms windows hold ~25 completions at the default λ=100: coarse
	// enough that an empty window means a real stall, not Poisson noise.
	if opts.TelemetryWindowMS <= 0 {
		opts.TelemetryWindowMS = 250
	}

	rels := relationCache{}
	builds := make([]figureBuild, 0, len(figs))
	for _, fig := range figs {
		// Placements are rebuilt per size below; buildFigure still supplies
		// the shared relation, mix and construction notes.
		fb, err := buildFigure(fig, rels, opts)
		if err != nil {
			return ElasticCampaign{}, err
		}
		builds = append(builds, fb)
	}

	var jobs []harness.Job
	for _, fb := range builds {
		for _, name := range fb.fig.Strategies {
			for _, size := range eopts.Sizes {
				fb, name, size := fb, name, size
				sized := opts
				sized.Processors = size
				// Rebuild constructs this strategy's placement at whatever
				// member count a transition lands on — the controller calls
				// it once per join/leave/repair.
				rebuild := func(rel *storage.Relation, procs int) (core.Placement, error) {
					o := sized
					o.Processors = procs
					return BuildPlacement(name, rel, fb.mix, o)
				}
				id := fmt.Sprintf("fig%s/%s/elastic%d", fb.fig.ID, name, size)
				jobs = append(jobs, harness.Job{
					ID:   id,
					Seed: opts.Seed,
					Run: func() (any, error) {
						pl, err := BuildPlacement(name, fb.rel, fb.mix, sized)
						if err != nil {
							return nil, fmt.Errorf("figure %s/%s n=%d: %w", fb.fig.ID, name, size, err)
						}
						cfg := ConfigFor(sized).With(gamma.WithElastic(gamma.ElasticSpec{
							Events:          eopts.events(),
							RatePagesPerSec: eopts.MigrateRate,
							Rebuild:         rebuild,
						}))
						machine, err := gamma.Build(fb.rel, pl, cfg)
						if err != nil {
							return nil, fmt.Errorf("figure %s/%s n=%d: %w", fb.fig.ID, name, size, err)
						}
						res, err := machine.RunServe(fb.mix, gamma.ServeSpec{
							Arrival:        serve.ArrivalSpec{Kind: eopts.Arrival, RateQPS: eopts.Lambda},
							Tenants:        serve.DefaultTenants(eopts.Tenants),
							MaxInService:   eopts.MaxInService,
							MaxQueue:       eopts.MaxQueue,
							SLOms:          eopts.SLOms,
							WarmupQueries:  opts.WarmupQueries,
							MeasureQueries: opts.MeasureQueries,
							MaxSimTime:     eopts.MaxSimTime,
							Seed:           opts.Seed,
						})
						if err != nil {
							return nil, fmt.Errorf("figure %s/%s n=%d: %w", fb.fig.ID, name, size, err)
						}
						if copts.Hub != nil && machine.Telemetry != nil {
							copts.Hub.Register(id, machine.Telemetry)
						}
						return res, nil
					},
				})
			}
		}
	}

	values, manifest, err := harness.Execute(jobs, harness.Options{
		Workers:     copts.Workers,
		JobTimeout:  copts.JobTimeout,
		Progress:    copts.Progress,
		Label:       copts.Label,
		IsTransient: copts.IsTransient,
	})
	if err != nil {
		return ElasticCampaign{}, err
	}

	out := ElasticCampaign{Manifest: manifest}
	j := 0
	for _, fb := range builds {
		fr := ElasticFigureResult{Figure: fb.fig, Options: opts, Elastic: eopts, Notes: fb.notes}
		for _, name := range fb.fig.Strategies {
			for _, size := range eopts.Sizes {
				out.Manifest.Reports[j].Arrival = eopts.Arrival.String()
				out.Manifest.Reports[j].OfferedQPS = eopts.Lambda
				if v := values[j]; v != nil {
					res := v.(gamma.ServeResult)
					out.Manifest.Reports[j].FaultEvents = len(res.FaultLog)
					out.Manifest.Reports[j].TimeSeries = res.Series
					out.Manifest.Reports[j].HotFragments = res.HotFragments
					pt := ElasticPoint{Strategy: name, Size: size, Result: res}
					if rep := res.Rebalance; rep != nil {
						pt.TimeToRebalance = rep.MaxRebalance()
						pt.PagesMoved = rep.ReadPages + rep.WritePages
						pt.BytesMoved = rep.BytesMoved
						pt.Summary = rep.Summary()
					}
					pt.GoodputDip = goodputDip(res)
					fr.Points = append(fr.Points, pt)
				}
				j++
			}
		}
		out.Figures = append(out.Figures, fr)
	}
	return out, manifest.Err()
}

// Point returns the measured result for a (strategy, size), or nil.
func (fr ElasticFigureResult) Point(strategy string, size int) *ElasticPoint {
	for i := range fr.Points {
		if fr.Points[i].Strategy == strategy && fr.Points[i].Size == size {
			return &fr.Points[i]
		}
	}
	return nil
}

// Table renders the elasticity sweep: per (strategy, size), the measured
// time-to-rebalance, data moved, goodput dip and query outcomes.
func (fr ElasticFigureResult) Table() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("Figure %s elasticity (λ=%g q/s, join@%v, leave@%v): %s",
			fr.Figure.ID, fr.Elastic.Lambda, fr.Elastic.JoinAt, fr.Elastic.LeaveAt,
			fr.Figure.Title),
		"strategy", "size", "tasks", "rebalance ms", "pages moved", "MB moved",
		"goodput q/s", "dip%", "failed", "errors")
	for _, p := range fr.Points {
		tasks, errors := 0, int64(0)
		if rep := p.Result.Rebalance; rep != nil {
			tasks = len(rep.Tasks)
			errors = rep.Errors
			for _, t := range rep.Tasks {
				if t.Err != "" {
					errors++
				}
			}
		}
		tb.AddRow(p.Strategy,
			fmt.Sprintf("%d", p.Size),
			fmt.Sprintf("%d", tasks),
			fmt.Sprintf("%.1f", float64(p.TimeToRebalance)/float64(sim.Millisecond)),
			fmt.Sprintf("%d", p.PagesMoved),
			fmt.Sprintf("%.2f", float64(p.BytesMoved)/(1<<20)),
			fmt.Sprintf("%.2f", p.Result.Serve.GoodputQPS()),
			fmt.Sprintf("%.1f", 100*p.GoodputDip),
			fmt.Sprintf("%d", p.Result.Serve.Outcomes.Failed),
			fmt.Sprintf("%d", errors))
	}
	return tb
}
