//go:build !race

package exec

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
)

// TestSharedEnqueueAllocs guards the batching hot path: once a batch is
// open, admitting a member is a map lookup plus an amortized append —
// enqueue runs once per operator per query at MPL-scale rates, so per-call
// garbage here would show up in every sharing experiment.
func TestSharedEnqueueAllocs(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := newRig(t, core.NewRangeForRelation(rel, storage.Unique1, 2))
	s := r.host.EnableSharing(5 * sim.Millisecond)
	pred := core.Predicate{Attr: storage.Unique2, Lo: 0, Hi: 9}

	// First member opens the batch and spawns the flusher — not the path
	// under test.
	s.enqueue(0, rel.Name, pred, AccessClustered, 1, 0, false, 0)
	qid := int64(2)
	avg := testing.AllocsPerRun(2000, func() {
		s.enqueue(0, rel.Name, pred, AccessClustered, qid, 0, false, 0)
		qid++
	})
	if avg > 1 {
		t.Errorf("enqueue on an open batch allocates %.2f/op, want amortized <= 1", avg)
	}
}
