package exec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
	"sort"
)

// Outcome classifies how a query ended under degraded-mode execution. The
// zero value is OutcomeOK, so the legacy (fault-free) path needs no
// bookkeeping.
type Outcome int

const (
	// OutcomeOK: completed on the first attempt of every operator.
	OutcomeOK Outcome = iota
	// OutcomeRetried: completed, but at least one operator was retried or
	// rerouted to a backup replica.
	OutcomeRetried
	// OutcomeTimedOut: abandoned at its end-to-end deadline.
	OutcomeTimedOut
	// OutcomeFailed: abandoned because an operator exhausted its retry
	// budget or no replica of a fragment was available.
	OutcomeFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeRetried:
		return "retried"
	case OutcomeTimedOut:
		return "timed-out"
	case OutcomeFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Succeeded reports whether the query produced its full result.
func (o Outcome) Succeeded() bool { return o == OutcomeOK || o == OutcomeRetried }

// QueryResult summarizes one executed query.
type QueryResult struct {
	ID             int64
	Pred           core.Predicate
	Tuples         int
	ProcessorsUsed int // distinct processors that did work (aux + operators)
	AuxProcessors  int // BERD first-step processors among them
	Submitted      sim.Time
	Completed      sim.Time

	// Degraded-mode accounting (zero values on the legacy path).
	Outcome Outcome
	Retries int   // operator redispatches (retries + reroutes)
	Err     error // why the query timed out or failed
}

// ResponseMS reports the query's response time in milliseconds.
func (r QueryResult) ResponseMS() float64 {
	return sim.Duration(r.Completed - r.Submitted).Milliseconds()
}

// Host is the scheduler node of Figure 7: it runs the Query Manager (parse,
// plan, localize via the catalog) and the Scheduler (start operators on the
// participating nodes, collect results, commit). Following the paper's
// model — only operator nodes carry CPUs; the Query Manager, Scheduler and
// System Catalog are stand-alone coordination modules — the host's work is
// pure delay on each query's coordinator process rather than contention on
// a shared processor. Per-participant costs (message handling, operator
// start-up) are charged where they belong: on the operator nodes.
type Host struct {
	ID     int // network endpoint (by convention: last)
	net    *hw.Network
	eng    *sim.Engine
	params hw.Params
	costs  Costs

	placements  map[string]core.Placement
	defaultName string

	// BERDFetchByTID makes BERD's second step fetch tuples by TID instead
	// of re-executing the predicate through each identified processor's
	// local index (the default, per Section 2: the system "directs the
	// query to these processors"). TID fetching is kept as an ablation: it
	// saves the index probe but costs one random I/O per tuple.
	BERDFetchByTID bool

	// Degraded switches the scheduler to degraded-mode execution: per-query
	// deadlines, per-operator timeouts, bounded jittered retry, and
	// chained-replica rerouting. Nil (the default) keeps the legacy
	// scheduling path, byte-identical to a build without fault support.
	Degraded *Degraded

	nextQID     int64
	nextAttempt int
	pending     map[int64]*sim.Mailbox[any]

	// Stats.
	QueriesRun int64
	Orphans    int64 // late/duplicate results for queries no longer pending

	// Registry handles (nil-safe when metrics are disabled).
	completedC *obs.Counter
	fanoutH    *obs.Histogram
	respH      *obs.Histogram
	retriesC   *obs.Counter
	orphanC    *obs.Counter
	okC        *obs.Counter
	retriedC   *obs.Counter
	timedOutC  *obs.Counter
	failedC    *obs.Counter
}

// NewHost wires the scheduler node. Relations are attached with
// AddRelation; the first becomes the default for Execute.
func NewHost(eng *sim.Engine, id int, params hw.Params, net *hw.Network, costs Costs) *Host {
	h := &Host{
		ID: id, net: net, eng: eng,
		params: params, costs: costs,
		placements: make(map[string]core.Placement),
		pending:    make(map[int64]*sim.Mailbox[any]),
	}
	if reg := eng.Metrics(); reg != nil {
		h.completedC = reg.Counter("query.completed")
		h.fanoutH = reg.Histogram("query.fanout_nodes")
		h.respH = reg.Histogram("query.response_ms")
		h.retriesC = reg.Counter("query.retries")
		h.orphanC = reg.Counter("query.orphan_results")
		h.okC = reg.Counter("query.outcome_ok")
		h.retriedC = reg.Counter("query.outcome_retried")
		h.timedOutC = reg.Counter("query.outcome_timed_out")
		h.failedC = reg.Counter("query.outcome_failed")
	}
	return h
}

// AddRelation registers a declustered relation with the Query Manager.
func (h *Host) AddRelation(name string, pl core.Placement) {
	if _, dup := h.placements[name]; dup {
		panic(fmt.Sprintf("exec: relation %q already registered", name))
	}
	h.placements[name] = pl
	if h.defaultName == "" {
		h.defaultName = name
	}
}

// Start launches the host's message dispatcher, which demultiplexes operator
// and auxiliary results to the coordinator process of the owning query.
func (h *Host) Start() {
	h.eng.Spawn("host.dispatch", func(p *sim.Proc) {
		inbox := h.net.Inbox(h.ID)
		for {
			m := inbox.Get(p)
			var qid int64
			switch r := m.Payload.(type) {
			case opResult:
				qid = r.QueryID
			case opError:
				qid = r.QueryID
			case auxResult:
				qid = r.QueryID
			case joinDone:
				qid = r.QueryID
			case aggPartial:
				qid = r.QueryID
			case nil:
				continue // multi-packet fragment; payload rides the last one
			default:
				panic(fmt.Sprintf("exec: host: unexpected message %T", r))
			}
			mb, ok := h.pending[qid]
			if !ok {
				if h.Degraded != nil {
					// Late or duplicated reply for a query the scheduler
					// already finished (or abandoned) — expected under
					// timeouts, crashes and message duplication.
					h.Orphans++
					h.orphanC.Inc()
					continue
				}
				panic(fmt.Sprintf("exec: host: result for unknown query %d", qid))
			}
			mb.Put(m.Payload)
		}
	})
}

// AccessChooser maps a predicate to the access method its operators use;
// the workload defines it (Section 6: non-clustered index on A, clustered
// index on B).
type AccessChooser func(pred core.Predicate) AccessKind

// Execute runs one query against the default relation. See ExecuteOn.
func (h *Host) Execute(p *sim.Proc, pred core.Predicate, access AccessChooser) QueryResult {
	return h.ExecuteOn(p, h.defaultName, pred, access)
}

// ExecuteOn runs one query against a named relation to completion from the
// calling process (a terminal): plan, localize, schedule operators, collect
// results. It blocks for the query's full lifetime and returns its
// statistics.
func (h *Host) ExecuteOn(p *sim.Proc, relation string, pred core.Predicate, access AccessChooser) QueryResult {
	placement, ok := h.placements[relation]
	if !ok {
		panic(fmt.Sprintf("exec: unknown relation %q", relation))
	}
	if h.Degraded != nil {
		return h.executeDegraded(p, relation, placement, pred, access)
	}
	h.nextQID++
	qid := h.nextQID
	qspan := h.eng.StartSpan()
	res := QueryResult{ID: qid, Pred: pred, Submitted: p.Now()}
	mb := sim.NewMailbox[any](h.eng, fmt.Sprintf("host.q%d", qid))
	h.pending[qid] = mb
	defer delete(h.pending, qid)
	p.SetQID(qid)
	defer p.SetQID(0)

	// Query Manager: parse and plan (coordination delay, not CPU
	// contention — see the Host doc comment).
	p.Hold(h.params.InstrTime(h.costs.PlanInstr))
	route := placement.Route(pred)
	if route.EntriesSearched > 0 {
		// Catalog directory search: CS per examined entry (Equation 1's
		// search term).
		p.Hold(sim.Milliseconds(h.costs.CSms * float64(route.EntriesSearched)))
	}

	used := map[int]bool{}
	participants := route.Participants
	tidsByProc := map[int][]int64(nil)

	// BERD two-step: consult the auxiliary relation first.
	if len(route.Aux) > 0 {
		auxSpan := h.eng.StartSpan()
		for _, node := range route.Aux {
			used[node] = true
			h.net.Send(p, nil, hw.Message{
				From: h.ID, To: node, Bytes: controlBytes,
				Payload: auxLookup{QueryID: qid, Relation: relation, Pred: pred, ReplyTo: h.ID},
			})
		}
		res.AuxProcessors = len(route.Aux)
		tidsByProc = make(map[int][]int64)
		for i := 0; i < len(route.Aux); i++ {
			ar := waitFor[auxResult](p, mb)
			for proc, tids := range ar.TIDsByProc {
				tidsByProc[proc] = append(tidsByProc[proc], tids...)
			}
		}
		participants = participants[:0]
		for proc := range tidsByProc {
			participants = append(participants, proc)
		}
		// Map iteration order is randomized; keep the schedule (and hence
		// the whole simulation) deterministic.
		sort.Ints(participants)
		if auxSpan.Active() {
			auxSpan.End(obs.NoNode, "query", fmt.Sprintf("q%d aux phase", qid), qid,
				fmt.Sprintf("%d aux nodes -> %d operators", len(route.Aux), len(participants)))
		}
	}

	// Scheduler: start one operator per participant.
	opSpan := h.eng.StartSpan()
	for _, node := range participants {
		used[node] = true
		op := startOp{QueryID: qid, Relation: relation, Pred: pred, ReplyTo: h.ID, Access: access(pred)}
		if tidsByProc != nil && h.BERDFetchByTID {
			op.Access = AccessTIDFetch
			op.TIDs = tidsByProc[node]
		}
		h.net.Send(p, nil, hw.Message{
			From: h.ID, To: node, Bytes: controlBytes,
			Payload: op,
		})
	}
	for i := 0; i < len(participants); i++ {
		or := waitFor[opResult](p, mb)
		res.Tuples += or.Tuples
	}

	res.ProcessorsUsed = len(used)
	res.Completed = p.Now()
	h.QueriesRun++
	h.completedC.Inc()
	h.fanoutH.Observe(float64(res.ProcessorsUsed))
	h.respH.Observe(res.ResponseMS())
	if opSpan.Active() {
		opSpan.End(obs.NoNode, "query", fmt.Sprintf("q%d operator phase", qid), qid,
			fmt.Sprintf("%d participants", len(participants)))
	}
	if qspan.Active() {
		qspan.End(obs.NoNode, "query", fmt.Sprintf("q%d %s", qid, relation), qid,
			fmt.Sprintf("%d tuples, %d processors (%d aux)",
				res.Tuples, res.ProcessorsUsed, res.AuxProcessors))
	}
	return res
}

// waitFor reads messages until one of type T arrives.
func waitFor[T any](p *sim.Proc, mb *sim.Mailbox[any]) T {
	for {
		if v, ok := mb.Get(p).(T); ok {
			return v
		}
	}
}
