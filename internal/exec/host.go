package exec

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sim"
	"sort"
)

// Outcome classifies how a query ended under degraded-mode execution. The
// zero value is OutcomeOK, so the legacy (fault-free) path needs no
// bookkeeping.
type Outcome int

const (
	// OutcomeOK: completed on the first attempt of every operator.
	OutcomeOK Outcome = iota
	// OutcomeRetried: completed, but at least one operator was retried or
	// rerouted to a backup replica.
	OutcomeRetried
	// OutcomeTimedOut: abandoned at its end-to-end deadline.
	OutcomeTimedOut
	// OutcomeFailed: abandoned because an operator exhausted its retry
	// budget or no replica of a fragment was available.
	OutcomeFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeRetried:
		return "retried"
	case OutcomeTimedOut:
		return "timed-out"
	case OutcomeFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Succeeded reports whether the query produced its full result.
func (o Outcome) Succeeded() bool { return o == OutcomeOK || o == OutcomeRetried }

// ServedOp records which node actually served one operator of a query. On
// the legacy path the serving node is always the fragment's primary home;
// under degraded-mode execution an operator may be rerouted to the chained
// backup, and this attribution is what keeps plan explain output and
// querytrace -frags in agreement.
type ServedOp struct {
	Fragment int  // placement slot whose (primary) fragment the operator targeted
	Node     int  // physical node that actually served the operator
	Backup   bool // true when the chained-replica backup served it
	Aux      bool // BERD auxiliary lookup (step one) rather than a selection
	Tuples   int  // tuples this operator returned (0 for aux lookups)
}

func (s ServedOp) String() string {
	role := "select"
	if s.Aux {
		role = "aux"
	}
	where := fmt.Sprintf("n%d", s.Node)
	if s.Backup {
		where += " (backup)"
	}
	return fmt.Sprintf("%s frag@n%d served by %s: %d tuples", role, s.Fragment, where, s.Tuples)
}

// QueryResult summarizes one executed query.
type QueryResult struct {
	ID             int64
	Pred           core.Predicate
	Tuples         int
	ProcessorsUsed int // distinct processors that did work (aux + operators)
	AuxProcessors  int // BERD first-step processors among them
	Submitted      sim.Time
	Completed      sim.Time

	// ServedBy attributes each operator to the node that served it, in
	// completion order. Under chained-replica rerouting — or mid-migration,
	// when a slot's fragments have moved to a different physical node — the
	// serving node can differ from the slot number.
	ServedBy []ServedOp

	// Value is the aggregate's value for Aggregate-rooted plans submitted
	// through Submit (zero otherwise).
	Value int64

	// Degraded-mode accounting (zero values on the legacy path).
	Outcome Outcome
	Retries int   // operator redispatches (retries + reroutes)
	Err     error // why the query timed out or failed
}

// ResponseMS reports the query's response time in milliseconds.
func (r QueryResult) ResponseMS() float64 {
	return sim.Duration(r.Completed - r.Submitted).Milliseconds()
}

// Host is the scheduler node of Figure 7: it runs the Query Manager (parse,
// plan, localize via the catalog) and the Scheduler (start operators on the
// participating nodes, collect results, commit). Following the paper's
// model — only operator nodes carry CPUs; the Query Manager, Scheduler and
// System Catalog are stand-alone coordination modules — the host's work is
// pure delay on each query's coordinator process rather than contention on
// a shared processor. Per-participant costs (message handling, operator
// start-up) are charged where they belong: on the operator nodes.
type Host struct {
	ID     int // network endpoint (by convention: last)
	net    *hw.Network
	eng    *sim.Engine
	params hw.Params
	costs  Costs

	placements  map[string]core.Placement
	defaultName string

	// Elastic-membership routing state (zero/nil when elasticity is off).
	// Placements route predicates to slots [0, n); topo maps each slot to
	// the physical node currently holding its fragments (nil = identity),
	// and epoch is the placement generation queries are planned against.
	// Both are replaced atomically at a rebalance cutover; in-flight
	// queries keep the topology and epoch they captured at submit, which
	// nodes honour through the dual-read window.
	topo  []int
	epoch int

	// BERDFetchByTID makes BERD's second step fetch tuples by TID instead
	// of re-executing the predicate through each identified processor's
	// local index (the default, per Section 2: the system "directs the
	// query to these processors"). TID fetching is kept as an ablation: it
	// saves the index probe but costs one random I/O per tuple.
	BERDFetchByTID bool

	// Degraded switches the scheduler to degraded-mode execution: per-query
	// deadlines, per-operator timeouts, bounded jittered retry, and
	// chained-replica rerouting. Nil (the default) keeps the legacy
	// scheduling path, byte-identical to a build without fault support.
	Degraded *Degraded

	// Shared is the shared-scan manager (nil = sharing off, the default):
	// when armed via EnableSharing, concurrent selections targeting the
	// same fragment within the batching window are predicate-grouped into
	// one disk pass. Mutually exclusive with Degraded.
	Shared *SharedScans

	// accessPolicy resolves plan.AccessAuto scans per relation (set via
	// SetAccessPolicy, typically from the workload mix's chooser).
	accessPolicy map[string]AccessChooser

	nextQID     int64
	nextAttempt int
	pending     map[int64]*sim.Mailbox[any]

	// Stats.
	QueriesRun int64
	Orphans    int64 // late/duplicate results for queries no longer pending

	// Registry handles (nil-safe when metrics are disabled).
	completedC *obs.Counter
	fanoutH    *obs.Histogram
	respH      *obs.Histogram
	retriesC   *obs.Counter
	orphanC    *obs.Counter
	okC        *obs.Counter
	retriedC   *obs.Counter
	timedOutC  *obs.Counter
	failedC    *obs.Counter
}

// NewHost wires the scheduler node. Relations are attached with
// AddRelation; the first becomes the default for Execute.
func NewHost(eng *sim.Engine, id int, params hw.Params, net *hw.Network, costs Costs) *Host {
	h := &Host{
		ID: id, net: net, eng: eng,
		params: params, costs: costs,
		placements:   make(map[string]core.Placement),
		accessPolicy: make(map[string]AccessChooser),
		pending:      make(map[int64]*sim.Mailbox[any]),
	}
	if reg := eng.Metrics(); reg != nil {
		h.completedC = reg.Counter("query.completed")
		h.fanoutH = reg.Histogram("query.fanout_nodes")
		h.respH = reg.Histogram("query.response_ms")
		h.retriesC = reg.Counter("query.retries")
		h.orphanC = reg.Counter("query.orphan_results")
		h.okC = reg.Counter("query.outcome_ok")
		h.retriedC = reg.Counter("query.outcome_retried")
		h.timedOutC = reg.Counter("query.outcome_timed_out")
		h.failedC = reg.Counter("query.outcome_failed")
	}
	return h
}

// AddRelation registers a declustered relation with the Query Manager.
func (h *Host) AddRelation(name string, pl core.Placement) {
	if _, dup := h.placements[name]; dup {
		panic(fmt.Sprintf("exec: relation %q already registered", name))
	}
	h.placements[name] = pl
	if h.defaultName == "" {
		h.defaultName = name
	}
}

// SetPlacement replaces a relation's placement at a rebalance cutover.
// Unlike AddRelation it requires the relation to exist already.
func (h *Host) SetPlacement(name string, pl core.Placement) {
	if _, ok := h.placements[name]; !ok {
		panic(fmt.Sprintf("exec: SetPlacement of unregistered relation %q", name))
	}
	h.placements[name] = pl
}

// SetTopology installs the slot→physical routing and placement generation
// of a freshly cut-over membership. topo[i] is the physical node serving
// slot i; epoch must advance by exactly one generation per cutover.
func (h *Host) SetTopology(topo []int, epoch int) {
	if epoch != h.epoch+1 {
		panic(fmt.Sprintf("exec: SetTopology to epoch %d from %d", epoch, h.epoch))
	}
	h.topo = topo
	h.epoch = epoch
}

// Epoch reports the host's current placement generation.
func (h *Host) Epoch() int { return h.epoch }

// physOf maps a placement slot to the physical node serving it.
func physOf(topo []int, slot int) int {
	if topo == nil {
		return slot
	}
	return topo[slot]
}

// slotOf recovers the placement slot a physical node serves (reverse of
// physOf under the same captured topology). Linear scan: topologies are
// small and this runs once per reply.
func slotOf(topo []int, phys int) int {
	if topo == nil {
		return phys
	}
	for s, n := range topo {
		if n == phys {
			return s
		}
	}
	return phys
}

// Start launches the host's message dispatcher, which demultiplexes operator
// and auxiliary results to the coordinator process of the owning query.
func (h *Host) Start() {
	h.eng.Spawn("host.dispatch", func(p *sim.Proc) {
		inbox := h.net.Inbox(h.ID)
		for {
			m := inbox.Get(p)
			var qid int64
			switch r := m.Payload.(type) {
			case opResult:
				qid = r.QueryID
			case opError:
				qid = r.QueryID
			case auxResult:
				qid = r.QueryID
			case joinDone:
				qid = r.QueryID
			case aggPartial:
				qid = r.QueryID
			case nil:
				continue // multi-packet fragment; payload rides the last one
			default:
				panic(fmt.Sprintf("exec: host: unexpected message %T", r))
			}
			mb, ok := h.pending[qid]
			if !ok {
				if h.Degraded != nil {
					// Late or duplicated reply for a query the scheduler
					// already finished (or abandoned) — expected under
					// timeouts, crashes and message duplication.
					h.Orphans++
					h.orphanC.Inc()
					continue
				}
				panic(fmt.Sprintf("exec: host: result for unknown query %d", qid))
			}
			mb.Put(m.Payload)
		}
	})
}

// AccessChooser maps a predicate to the access method its operators use;
// the workload defines it (Section 6: non-clustered index on A, clustered
// index on B).
type AccessChooser func(pred core.Predicate) AccessKind

// SetAccessPolicy installs the resolver for plan.AccessAuto scans of a
// relation (typically the workload mix's chooser). Submit panics on an
// AccessAuto scan of a relation with no policy.
func (h *Host) SetAccessPolicy(relation string, chooser AccessChooser) {
	h.accessPolicy[relation] = chooser
}

// Execute runs one query against the default relation.
//
// Deprecated: build a plan with plan.Select and call Submit. Kept for one
// release as a thin wrapper over the plan API.
func (h *Host) Execute(p *sim.Proc, pred core.Predicate, access AccessChooser) QueryResult {
	return h.ExecuteOn(p, h.defaultName, pred, access)
}

// ExecuteOn runs one query against a named relation.
//
// Deprecated: build a plan with plan.Select and call Submit. Kept for one
// release as a thin wrapper over the plan API.
func (h *Host) ExecuteOn(p *sim.Proc, relation string, pred core.Predicate, access AccessChooser) QueryResult {
	return h.Submit(p, plan.Select(relation, pred, access(pred)))
}

// fullDomain is the predicate a bare (predicate-free) Scan leaf executes:
// every tuple of the relation qualifies.
func fullDomain() core.Predicate {
	return core.Predicate{Attr: 0, Lo: math.MinInt64, Hi: math.MaxInt64}
}

// resolveSelection lowers a selection subtree to (relation, predicate,
// access kind), applying the full-domain predicate to bare scans and the
// relation's access policy to AccessAuto.
func (h *Host) resolveSelection(n *plan.Node) (string, core.Predicate, AccessKind) {
	sel, err := plan.CompileSelection(n)
	if err != nil {
		panic(fmt.Sprintf("exec: %v", err))
	}
	pred := sel.Pred
	if !sel.HasPred {
		pred = fullDomain()
	}
	kind := sel.Access
	if kind == plan.AccessAuto {
		chooser := h.accessPolicy[sel.Relation]
		if chooser == nil {
			panic(fmt.Sprintf("exec: AccessAuto scan of %q but no access policy set", sel.Relation))
		}
		kind = chooser(pred)
	}
	return sel.Relation, pred, kind
}

// Submit executes a declarative plan tree to completion from the calling
// process (a terminal) and returns the query's statistics. Selection trees
// (Filter chains over a Scan/IndexScan leaf) run through the scheduler's
// selection path — including shared-scan batching when the manager is
// armed. A Join root runs the parallel hash join (Tuples reports the match
// count); an Aggregate root runs the partial-aggregation protocol (Tuples
// reports matched tuples, Value the aggregate). Invalid or non-executable
// plans panic: a plan error is a programming error, not a runtime fault.
func (h *Host) Submit(p *sim.Proc, n *plan.Node) QueryResult {
	if err := n.Validate(); err != nil {
		panic(fmt.Sprintf("exec: invalid plan: %v", err))
	}
	switch n.Kind {
	case plan.KindAggregate:
		relation, pred, kind := h.resolveSelection(n.Inputs[0])
		agg := h.ExecuteAggregate(p, AggSpec{
			Relation: relation, Kind: n.Fn, Attr: n.Attr, Pred: pred, Access: kind,
		})
		return QueryResult{
			ID: agg.ID, Pred: pred, Tuples: agg.Tuples, Value: agg.Value,
			ProcessorsUsed: agg.ProcessorsUsed,
			Submitted:      agg.Submitted, Completed: agg.Completed,
		}
	case plan.KindJoin:
		buildRel, buildPred, _ := h.resolveSelection(n.Inputs[0])
		probeRel, probePred, _ := h.resolveSelection(n.Inputs[1])
		spec := JoinSpec{
			BuildRelation: buildRel, BuildAttr: n.Attr,
			ProbeRelation: probeRel, ProbeAttr: n.Attr,
		}
		if n.Inputs[0].Kind != plan.KindScan || n.Inputs[0].HasPred {
			spec.BuildPred = &buildPred
		}
		if n.Inputs[1].Kind != plan.KindScan || n.Inputs[1].HasPred {
			spec.ProbePred = &probePred
		}
		jr := h.ExecuteJoin(p, spec)
		return QueryResult{
			ID: jr.ID, Tuples: jr.Matches, ProcessorsUsed: jr.ProcessorsUsed,
			Submitted: jr.Submitted, Completed: jr.Completed,
		}
	default:
		relation, pred, kind := h.resolveSelection(n)
		return h.submitSelect(p, relation, pred, kind)
	}
}

// submitSelect schedules one selection: plan, localize, start (or batch)
// operators, collect results. It blocks for the query's full lifetime.
func (h *Host) submitSelect(p *sim.Proc, relation string, pred core.Predicate, kind AccessKind) QueryResult {
	placement, ok := h.placements[relation]
	if !ok {
		panic(fmt.Sprintf("exec: unknown relation %q", relation))
	}
	if h.Degraded != nil {
		return h.executeDegraded(p, relation, placement, pred, kind)
	}
	h.nextQID++
	qid := h.nextQID
	// Capture the routing generation once: every dispatch of this query —
	// including the BERD second step — uses the same topology and epoch,
	// even if a rebalance cutover lands mid-query.
	topo, epoch := h.topo, h.epoch
	qspan := h.eng.StartSpan()
	res := QueryResult{ID: qid, Pred: pred, Submitted: p.Now()}
	mb := sim.NewMailbox[any](h.eng, fmt.Sprintf("host.q%d", qid))
	h.pending[qid] = mb
	defer delete(h.pending, qid)
	p.SetQID(qid)
	defer p.SetQID(0)

	// Query Manager: parse and plan (coordination delay, not CPU
	// contention — see the Host doc comment).
	p.Hold(h.params.InstrTime(h.costs.PlanInstr))
	route := placement.Route(pred)
	if route.EntriesSearched > 0 {
		// Catalog directory search: CS per examined entry (Equation 1's
		// search term).
		p.Hold(sim.Milliseconds(h.costs.CSms * float64(route.EntriesSearched)))
	}

	used := map[int]bool{}
	participants := route.Participants
	tidsByProc := map[int][]int64(nil)

	// BERD two-step: consult the auxiliary relation first.
	if len(route.Aux) > 0 {
		auxSpan := h.eng.StartSpan()
		for _, slot := range route.Aux {
			node := physOf(topo, slot)
			used[node] = true
			h.net.Send(p, nil, hw.Message{
				From: h.ID, To: node, Bytes: controlBytes,
				Payload: auxLookup{QueryID: qid, Relation: relation, Pred: pred, ReplyTo: h.ID, Epoch: epoch},
			})
		}
		res.AuxProcessors = len(route.Aux)
		tidsByProc = make(map[int][]int64)
		for i := 0; i < len(route.Aux); i++ {
			ar, err := waitReply[auxResult](p, mb)
			if err != nil {
				res.Err = err
				res.Outcome = OutcomeFailed
				res.Completed = p.Now()
				return res
			}
			res.ServedBy = append(res.ServedBy, ServedOp{Fragment: slotOf(topo, ar.Node), Node: ar.Node, Aux: true})
			for proc, tids := range ar.TIDsByProc {
				tidsByProc[proc] = append(tidsByProc[proc], tids...)
			}
		}
		participants = participants[:0]
		for proc := range tidsByProc {
			participants = append(participants, proc)
		}
		// Map iteration order is randomized; keep the schedule (and hence
		// the whole simulation) deterministic.
		sort.Ints(participants)
		if auxSpan.Active() {
			auxSpan.End(obs.NoNode, "query", fmt.Sprintf("q%d aux phase", qid), qid,
				fmt.Sprintf("%d aux nodes -> %d operators", len(route.Aux), len(participants)))
		}
	}

	// Scheduler: start one operator per participant. TID-fetch dispatches
	// carry per-node TID lists and cannot be predicate-grouped; everything
	// else is eligible for shared-scan batching when the manager is armed.
	opSpan := h.eng.StartSpan()
	share := h.Shared != nil && !(tidsByProc != nil && h.BERDFetchByTID)
	for _, slot := range participants {
		node := physOf(topo, slot)
		used[node] = true
		if share {
			h.Shared.enqueue(node, relation, pred, kind, qid, 0, false, epoch)
			continue
		}
		op := startOp{QueryID: qid, Relation: relation, Pred: pred, ReplyTo: h.ID, Access: kind, Epoch: epoch}
		if tidsByProc != nil && h.BERDFetchByTID {
			op.Access = AccessTIDFetch
			op.TIDs = tidsByProc[slot]
		}
		h.net.Send(p, nil, hw.Message{
			From: h.ID, To: node, Bytes: controlBytes,
			Payload: op,
		})
	}
	for i := 0; i < len(participants); i++ {
		or, err := waitReply[opResult](p, mb)
		if err != nil {
			res.Err = err
			res.Outcome = OutcomeFailed
			res.Completed = p.Now()
			return res
		}
		res.Tuples += or.Tuples
		res.ServedBy = append(res.ServedBy, ServedOp{Fragment: slotOf(topo, or.Node), Node: or.Node, Tuples: or.Tuples})
	}

	res.ProcessorsUsed = len(used)
	res.Completed = p.Now()
	h.QueriesRun++
	h.completedC.Inc()
	h.fanoutH.Observe(float64(res.ProcessorsUsed))
	h.respH.Observe(res.ResponseMS())
	if opSpan.Active() {
		opSpan.End(obs.NoNode, "query", fmt.Sprintf("q%d operator phase", qid), qid,
			fmt.Sprintf("%d participants", len(participants)))
	}
	if qspan.Active() {
		qspan.End(obs.NoNode, "query", fmt.Sprintf("q%d %s", qid, relation), qid,
			fmt.Sprintf("%d tuples, %d processors (%d aux)",
				res.Tuples, res.ProcessorsUsed, res.AuxProcessors))
	}
	return res
}

// waitFor reads messages until one of type T arrives.
func waitFor[T any](p *sim.Proc, mb *sim.Mailbox[any]) T {
	for {
		if v, ok := mb.Get(p).(T); ok {
			return v
		}
	}
}

// waitReply is waitFor plus error surfacing: an opError reply (e.g. a
// node refusing a placement epoch outside its dual-read window) fails the
// query instead of being silently discarded — the legacy scheduler has no
// retry machinery, so a refused operator can never be answered.
func waitReply[T any](p *sim.Proc, mb *sim.Mailbox[any]) (T, error) {
	for {
		v := mb.Get(p)
		if r, ok := v.(T); ok {
			return r, nil
		}
		if e, ok := v.(opError); ok {
			var zero T
			return zero, fmt.Errorf("node %d: %s", e.Node, e.Msg)
		}
	}
}
