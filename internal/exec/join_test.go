package exec

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/storage"
)

// joinRig builds a machine with two relations ("wisconsin" as R and a
// second instance "s" as S) on nodes 0..p-1 plus the host.
type joinRig struct {
	eng  *sim.Engine
	net  *hw.Network
	host *Host
	r, s *storage.Relation
}

func newJoinRig(t *testing.T, p int, rPl, sPl core.Placement) *joinRig {
	t.Helper()
	eng := sim.New()
	params := hw.DefaultParams()
	params.NumProcessors = p
	costs := DefaultCosts()
	streams := rng.NewFactory(5)

	cpus := make([]*hw.CPU, p+1)
	for i := 0; i < p; i++ {
		cpus[i] = hw.NewCPU(eng, "cpu", params)
	}
	net := hw.NewNetwork(eng, params, cpus)

	r := storage.GenerateWisconsin(storage.GenSpec{Name: "r", Cardinality: 300, Seed: 9})
	s := storage.GenerateWisconsin(storage.GenSpec{Name: "s", Cardinality: 120, Seed: 10})
	rig := &joinRig{eng: eng, net: net, r: r, s: s}
	layout := storage.Layout{TuplesPerPage: 8, IndexFanout: 8, IndexLeafCap: 8}
	for i := 0; i < p; i++ {
		disk := hw.NewDisk(eng, "disk", params, cpus[i], streams.Stream("lat"))
		pool := buffer.NewPool(eng, "buf", 16, disk)
		n := NewNode(eng, i, params, costs, net, cpus[i], disk, pool)
		for _, pair := range []struct {
			rel *storage.Relation
			pl  core.Placement
		}{{r, rPl}, {s, sPl}} {
			var tuples []storage.Tuple
			for _, tup := range pair.rel.Tuples {
				if pair.pl.HomeOf(tup) == i {
					tuples = append(tuples, tup)
				}
			}
			alloc := storage.NewAllocator(10000)
			frag := storage.BuildFragment(i, tuples, storage.Unique2, layout, alloc)
			frag.AddIndex(storage.Unique2, alloc)
			frag.AddIndex(storage.Unique1, alloc)
			n.AddFragment(pair.rel.Name, frag)
		}
		n.Start()
	}
	rig.host = NewHost(eng, p, params, net, costs)
	rig.host.AddRelation("r", rPl)
	rig.host.AddRelation("s", sPl)
	rig.host.Start()
	return rig
}

func (r *joinRig) join(t *testing.T, spec JoinSpec) JoinResult {
	t.Helper()
	var res JoinResult
	r.eng.Spawn("probe", func(p *sim.Proc) {
		res = r.host.ExecuteJoin(p, spec)
		r.eng.Stop()
	})
	if err := r.eng.RunUntil(sim.Time(10 * 60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("join never completed")
	}
	return res
}

// naiveJoinCount counts matches the slow way.
func naiveJoinCount(r, s *storage.Relation, rAttr, sAttr int,
	rPred, sPred *core.Predicate) int {
	keep := func(t storage.Tuple, pred *core.Predicate) bool {
		if pred == nil {
			return true
		}
		v := t.Attrs[pred.Attr]
		return v >= pred.Lo && v <= pred.Hi
	}
	byKey := map[int64]int{}
	for _, t := range r.Tuples {
		if keep(t, rPred) {
			byKey[t.Attrs[rAttr]]++
		}
	}
	matches := 0
	for _, t := range s.Tuples {
		if keep(t, sPred) {
			matches += byKey[t.Attrs[sAttr]]
		}
	}
	return matches
}

func TestRepartitionedJoinCorrect(t *testing.T) {
	r := storage.GenerateWisconsin(storage.GenSpec{Name: "r", Cardinality: 300, Seed: 9})
	s := storage.GenerateWisconsin(storage.GenSpec{Name: "s", Cardinality: 120, Seed: 10})
	rig := newJoinRig(t, 4,
		core.NewRangeForRelation(r, storage.Unique1, 4),
		core.NewRangeForRelation(s, storage.Unique2, 4))
	spec := JoinSpec{
		BuildRelation: "s", BuildAttr: storage.Unique1,
		ProbeRelation: "r", ProbeAttr: storage.Unique1,
	}
	res := rig.join(t, spec)
	want := naiveJoinCount(rig.s, rig.r, storage.Unique1, storage.Unique1, nil, nil)
	if res.Matches != want {
		t.Fatalf("matches = %d, want %d", res.Matches, want)
	}
	if !res.Repartitioned {
		t.Fatal("range-declustered join must repartition")
	}
	if res.ProcessorsUsed != 4 {
		t.Fatalf("used %d processors", res.ProcessorsUsed)
	}
	if res.ResponseMS() <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestJoinWithPredicates(t *testing.T) {
	r := storage.GenerateWisconsin(storage.GenSpec{Name: "r", Cardinality: 300, Seed: 9})
	s := storage.GenerateWisconsin(storage.GenSpec{Name: "s", Cardinality: 120, Seed: 10})
	rig := newJoinRig(t, 4,
		core.NewRangeForRelation(r, storage.Unique1, 4),
		core.NewRangeForRelation(s, storage.Unique1, 4))
	bp := &core.Predicate{Attr: storage.Unique2, Lo: 0, Hi: 59}
	pp := &core.Predicate{Attr: storage.Unique2, Lo: 0, Hi: 199}
	spec := JoinSpec{
		BuildRelation: "s", BuildAttr: storage.Unique1, BuildPred: bp,
		ProbeRelation: "r", ProbeAttr: storage.Unique1, ProbePred: pp,
	}
	res := rig.join(t, spec)
	want := naiveJoinCount(rig.s, rig.r, storage.Unique1, storage.Unique1, bp, pp)
	if want == 0 {
		t.Fatal("test construction: no matches expected at all")
	}
	if res.Matches != want {
		t.Fatalf("matches = %d, want %d", res.Matches, want)
	}
}

func TestCoLocatedJoinSkipsRepartitioning(t *testing.T) {
	rig := newJoinRig(t, 4,
		core.NewHash(storage.Unique1, 4),
		core.NewHash(storage.Unique1, 4))
	spec := JoinSpec{
		BuildRelation: "s", BuildAttr: storage.Unique1,
		ProbeRelation: "r", ProbeAttr: storage.Unique1,
	}
	before := totalSent(rig)
	res := rig.join(t, spec)
	want := naiveJoinCount(rig.s, rig.r, storage.Unique1, storage.Unique1, nil, nil)
	if res.Matches != want {
		t.Fatalf("matches = %d, want %d", res.Matches, want)
	}
	if res.Repartitioned {
		t.Fatal("hash-on-join-key relations should be detected as co-located")
	}
	coPackets := totalSent(rig) - before

	// The same join without co-location ships tuples between nodes.
	r := storage.GenerateWisconsin(storage.GenSpec{Name: "r", Cardinality: 300, Seed: 9})
	s := storage.GenerateWisconsin(storage.GenSpec{Name: "s", Cardinality: 120, Seed: 10})
	rig2 := newJoinRig(t, 4,
		core.NewRangeForRelation(r, storage.Unique2, 4),
		core.NewRangeForRelation(s, storage.Unique2, 4))
	before2 := totalSent(rig2)
	res2 := rig2.join(t, spec)
	if res2.Matches != want {
		t.Fatalf("repartitioned variant disagrees: %d vs %d", res2.Matches, want)
	}
	if shipped := totalSent(rig2) - before2; shipped <= coPackets {
		t.Fatalf("repartitioned join sent %d packets, co-located %d", shipped, coPackets)
	}
}

func totalSent(r *joinRig) int64 {
	var t int64
	for i := 0; i < 4; i++ {
		t += r.net.Sent(i)
	}
	return t
}

func TestJoinUnknownRelationPanics(t *testing.T) {
	rig := newJoinRig(t, 2,
		core.NewHash(storage.Unique1, 2), core.NewHash(storage.Unique1, 2))
	rig.eng.Spawn("probe", func(p *sim.Proc) {
		rig.host.ExecuteJoin(p, JoinSpec{BuildRelation: "nope", ProbeRelation: "r"})
	})
	if err := rig.eng.RunUntil(sim.Time(10 * sim.Second)); err == nil {
		t.Fatal("unknown relation should surface as an error")
	}
}

func TestSelectsAndJoinsInterleave(t *testing.T) {
	rig := newJoinRig(t, 4,
		core.NewHash(storage.Unique1, 4), core.NewHash(storage.Unique1, 4))
	want := naiveJoinCount(rig.s, rig.r, storage.Unique1, storage.Unique1, nil, nil)
	done := 0
	rig.eng.Spawn("joiner", func(p *sim.Proc) {
		res := rig.host.ExecuteJoin(p, JoinSpec{
			BuildRelation: "s", BuildAttr: storage.Unique1,
			ProbeRelation: "r", ProbeAttr: storage.Unique1,
		})
		if res.Matches != want {
			t.Errorf("join matches = %d, want %d", res.Matches, want)
		}
		done++
	})
	rig.eng.Spawn("selector", func(p *sim.Proc) {
		res := rig.host.ExecuteOn(p, "r",
			core.Predicate{Attr: storage.Unique2, Lo: 100, Hi: 109}, chooser)
		if res.Tuples != 10 {
			t.Errorf("select got %d tuples", res.Tuples)
		}
		done++
	})
	if err := rig.eng.RunUntil(sim.Time(10 * 60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("only %d of 2 queries completed", done)
	}
}

func TestAggregates(t *testing.T) {
	rig := newJoinRig(t, 4,
		core.NewRangeForRelation(
			storage.GenerateWisconsin(storage.GenSpec{Name: "r", Cardinality: 300, Seed: 9}),
			storage.Unique1, 4),
		core.NewHash(storage.Unique1, 4))
	pred := core.Predicate{Attr: storage.Unique2, Lo: 50, Hi: 149}
	run := func(kind AggKind, attr int) AggResult {
		var res AggResult
		rig.eng.Resume() // continue after the previous query's Stop
		rig.eng.Spawn("agg", func(p *sim.Proc) {
			res = rig.host.ExecuteAggregate(p, AggSpec{
				Relation: "r", Kind: kind, Attr: attr,
				Pred: pred, Access: AccessClustered,
			})
			rig.eng.Stop()
		})
		if err := rig.eng.RunUntil(sim.Time(10 * 60 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Ground truth over the 100 tuples with unique2 in [50,149].
	var wantSum, wantMin, wantMax int64
	first := true
	for _, tup := range rig.r.Tuples {
		v2 := tup.Attrs[storage.Unique2]
		if v2 < 50 || v2 > 149 {
			continue
		}
		v := tup.Attrs[storage.Unique1]
		wantSum += v
		if first || v < wantMin {
			wantMin = v
		}
		if first || v > wantMax {
			wantMax = v
		}
		first = false
	}
	if got := run(AggCount, storage.Unique1); got.Value != 100 || got.Tuples != 100 {
		t.Fatalf("count = %d (%d tuples)", got.Value, got.Tuples)
	}
	if got := run(AggSum, storage.Unique1); got.Value != wantSum {
		t.Fatalf("sum = %d, want %d", got.Value, wantSum)
	}
	if got := run(AggMin, storage.Unique1); got.Value != wantMin {
		t.Fatalf("min = %d, want %d", got.Value, wantMin)
	}
	if got := run(AggMax, storage.Unique1); got.Value != wantMax {
		t.Fatalf("max = %d, want %d", got.Value, wantMax)
	}
}

func TestAggregateEmptyRange(t *testing.T) {
	rig := newJoinRig(t, 2,
		core.NewHash(storage.Unique1, 2), core.NewHash(storage.Unique1, 2))
	var res AggResult
	rig.eng.Spawn("agg", func(p *sim.Proc) {
		res = rig.host.ExecuteAggregate(p, AggSpec{
			Relation: "r", Kind: AggMax, Attr: storage.Unique1,
			Pred:   core.Predicate{Attr: storage.Unique2, Lo: 90000, Hi: 90010},
			Access: AccessClustered,
		})
		rig.eng.Stop()
	})
	if err := rig.eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 0 || res.Value != 0 {
		t.Fatalf("empty aggregate = %d over %d tuples", res.Value, res.Tuples)
	}
}

func TestAggKindString(t *testing.T) {
	for k, want := range map[AggKind]string{
		AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max", AggKind(9): "unknown",
	} {
		if k.String() != want {
			t.Fatalf("AggKind(%d) = %q", k, k.String())
		}
	}
}
