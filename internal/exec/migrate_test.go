package exec

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/storage"
)

// migrateRig is a three-node machine whose two-slot relation starts on
// nodes {0, 1} (identity topology) with a staged next generation placing
// slot 0 on node 1 and slot 1 on node 2 — the smallest layout where a
// cutover makes every slot's physical home differ from its slot number.
type migrateRig struct {
	eng   *sim.Engine
	nodes []*Node
	host  *Host
	rel   *storage.Relation
	heat  *obs.HeatMap
}

func newMigrateRig(t *testing.T) *migrateRig {
	t.Helper()
	eng := sim.New()
	params := hw.DefaultParams()
	params.NumProcessors = 3
	costs := DefaultCosts()
	streams := rng.NewFactory(5)

	cpus := make([]*hw.CPU, 4)
	for i := 0; i < 3; i++ {
		cpus[i] = hw.NewCPU(eng, "cpu", params)
	}
	net := hw.NewNetwork(eng, params, cpus)

	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	placement := core.NewRangeForRelation(rel, storage.Unique1, 2)
	layout := storage.Layout{TuplesPerPage: 8, IndexFanout: 8, IndexLeafCap: 8}
	r := &migrateRig{eng: eng, rel: rel, heat: obs.NewHeatMap()}

	bySlot := make([][]storage.Tuple, 2)
	for _, tup := range rel.Tuples {
		h := placement.HomeOf(tup)
		bySlot[h] = append(bySlot[h], tup)
	}
	allocs := make([]*storage.Allocator, 3)
	for i := 0; i < 3; i++ {
		disk := hw.NewDisk(eng, "disk", params, cpus[i], streams.Stream("lat"))
		pool := buffer.NewPool(eng, "buf", 16, disk)
		n := NewNode(eng, i, params, costs, net, cpus[i], disk, pool)
		allocs[i] = storage.NewAllocator(10000)
		r.nodes = append(r.nodes, n)
	}
	build := func(slot, phys int) *storage.Fragment {
		frag := storage.BuildFragment(slot, bySlot[slot], storage.Unique2, layout, allocs[phys])
		frag.AddIndex(storage.Unique2, allocs[phys])
		frag.AddIndex(storage.Unique1, allocs[phys])
		return frag
	}
	attachHeat := func(phys int) {
		fh := r.heat.Frag(rel.Name, phys, obs.FragPrimary)
		r.nodes[phys].AttachHeat(rel.Name, obs.FragPrimary, fh)
	}
	// Generation 0: slots 0 and 1 live on their own-numbered nodes.
	for slot := 0; slot < 2; slot++ {
		r.nodes[slot].AddFragment(rel.Name, build(slot, slot))
		attachHeat(slot)
	}
	// Staged generation 1: slot 0 -> node 1, slot 1 -> node 2.
	r.nodes[1].StageFragment(rel.Name, build(0, 1))
	r.nodes[2].StageFragment(rel.Name, build(1, 2))
	attachHeat(2)
	for _, n := range r.nodes {
		n.Start()
	}
	r.host = NewHost(eng, 3, params, net, costs)
	r.host.AddRelation(rel.Name, placement)
	r.host.Start()
	return r
}

// cutover installs generation 1 on every node and repoints the host.
func (r *migrateRig) cutover() {
	for _, n := range r.nodes {
		n.CutoverPlacement(1)
	}
	r.host.SetTopology([]int{1, 2}, 1)
}

func (r *migrateRig) execute(t *testing.T, pred core.Predicate) QueryResult {
	t.Helper()
	var res QueryResult
	r.eng.Spawn("probe", func(p *sim.Proc) {
		res = r.host.Execute(p, pred, chooser)
		r.eng.Stop()
	})
	if err := r.eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	return res
}

// servedNodeOfSlot maps each ServedBy entry's placement slot to the
// physical node that answered it.
func servedNodeOfSlot(res QueryResult) map[int]int {
	m := make(map[int]int)
	for _, op := range res.ServedBy {
		m[op.Fragment] = op.Node
	}
	return m
}

// After a cutover to a non-identity topology, ServedBy must attribute
// each operator to the placement slot (what the plan explains) AND the
// physical node that actually served it (what the heat map charges) —
// and the two views must agree: heat lands on the new physical homes.
func TestServedByAndHeatAgreeAfterCutover(t *testing.T) {
	r := newMigrateRig(t)
	r.eng.Schedule(0, func() { r.cutover() })
	res := r.execute(t, bothNodes)
	if res.Tuples != 20 {
		t.Fatalf("got %d tuples, want 20", res.Tuples)
	}
	served := servedNodeOfSlot(res)
	if served[0] != 1 || served[1] != 2 {
		t.Fatalf("ServedBy slot->node = %v, want map[0:1 1:2] after cutover", served)
	}
	// Heat attribution agrees with ServedBy: the migrated-to nodes are
	// charged, the vacated node is not.
	if pages := r.heat.Frag(r.rel.Name, 0, obs.FragPrimary).Pages(); pages != 0 {
		t.Fatalf("node 0 charged %d pages after migrating its slot away", pages)
	}
	for _, phys := range []int{1, 2} {
		if pages := r.heat.Frag(r.rel.Name, phys, obs.FragPrimary).Pages(); pages == 0 {
			t.Fatalf("node %d served a slot but its heat accumulator is empty", phys)
		}
	}
}

// A query submitted before the cutover completes against the old
// generation (dual-read): its ServedBy still names the old physical
// homes, because that is where its operators ran.
func TestDualReadServesInFlightQueryAcrossCutover(t *testing.T) {
	r := newMigrateRig(t)
	// The cutover lands while the query's operators are on the wire.
	r.eng.Schedule(sim.Duration(100*sim.Microsecond), func() { r.cutover() })
	res := r.execute(t, bothNodes)
	if res.Tuples != 20 {
		t.Fatalf("got %d tuples, want 20 from the pre-cutover generation", res.Tuples)
	}
	served := servedNodeOfSlot(res)
	if served[0] != 0 || served[1] != 1 {
		t.Fatalf("ServedBy slot->node = %v, want map[0:0 1:1] for a pre-cutover query", served)
	}
}

// A query two generations behind cannot be served: the node rejects it
// with a typed error instead of answering from the wrong layout.
func TestDualReadRejectsTwoGenerationsBack(t *testing.T) {
	r := newMigrateRig(t)
	r.eng.Schedule(sim.Duration(100*sim.Microsecond), func() {
		r.cutover()
		// Immediately advance again: gen 2 keeps the same layout (slots
		// restaged in place) but retires gen 0 from the dual-read window.
		for _, n := range r.nodes {
			n.CutoverPlacement(2)
		}
		r.host.SetTopology([]int{1, 2}, 2)
	})
	res := r.execute(t, bothNodes)
	if res.Err == nil {
		t.Fatalf("epoch-0 query against gen-2 nodes: res = %+v, want an error", res)
	}
}
