package exec

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Costs holds the execution-layer CPU constants that Table 2 does not give
// directly (derived parameters; DESIGN.md §2.6).
type Costs struct {
	// IndexPageInstr is the CPU cost of searching one index page (a binary
	// search, far cheaper than processing a 36-tuple data page).
	IndexPageInstr int
	// PlanInstr is the Query Manager's cost to parse and plan one query.
	PlanInstr int
	// CSms is the catalog directory-entry search cost, charged on the host
	// per entry the optimizer examines (the paper's CS).
	CSms float64
	// Per-tuple join costs: hashing a tuple through the split table,
	// inserting it into the build table, probing.
	JoinHashInstr  int
	JoinBuildInstr int
	JoinProbeInstr int
}

// DefaultCosts returns the defaults documented in DESIGN.md.
func DefaultCosts() Costs {
	return Costs{
		IndexPageInstr: 2000, PlanInstr: 1000, CSms: 0.003,
		JoinHashInstr: 50, JoinBuildInstr: 100, JoinProbeInstr: 100,
	}
}

// Node is one operator node of Figure 7: CPU + disk + buffer pool + the
// local fragments of the declustered relations (and of any BERD auxiliary
// relations), plus the Operator Manager process that serves incoming work.
type Node struct {
	ID     int
	CPU    *hw.CPU
	Disk   *hw.Disk
	Pool   *buffer.Pool
	params hw.Params
	costs  Costs
	net    *hw.Network
	eng    *sim.Engine

	frags map[string]*storage.Fragment
	aux   map[string]map[int]*storage.AuxFragment // relation -> attr -> aux
	joins map[int64]*joinWorker                   // live join operators by query

	// Stats.
	OpsExecuted   int64
	TuplesShipped int64

	// Registry handles (nil-safe when metrics are disabled).
	opsC    *obs.Counter
	tuplesC *obs.Counter
	pagesC  *obs.Counter
}

// NewNode wires a node; fragments are attached by the machine builder.
func NewNode(eng *sim.Engine, id int, params hw.Params, costs Costs, net *hw.Network,
	cpu *hw.CPU, disk *hw.Disk, pool *buffer.Pool) *Node {
	n := &Node{
		ID: id, CPU: cpu, Disk: disk, Pool: pool,
		frags:  make(map[string]*storage.Fragment),
		aux:    make(map[string]map[int]*storage.AuxFragment),
		joins:  make(map[int64]*joinWorker),
		params: params, costs: costs, net: net, eng: eng,
	}
	if reg := eng.Metrics(); reg != nil {
		n.opsC = reg.Counter(fmt.Sprintf("node%d.ops", id))
		n.tuplesC = reg.Counter(fmt.Sprintf("node%d.tuples_selected", id))
		n.pagesC = reg.Counter(fmt.Sprintf("node%d.pages_scanned", id))
	}
	return n
}

// AddFragment attaches the node's fragment of a relation.
func (n *Node) AddFragment(relation string, f *storage.Fragment) {
	if _, dup := n.frags[relation]; dup {
		panic(fmt.Sprintf("exec: node %d already has a fragment of %s", n.ID, relation))
	}
	n.frags[relation] = f
}

// AddAux attaches the node's fragment of a BERD auxiliary relation.
func (n *Node) AddAux(relation string, attr int, aux *storage.AuxFragment) {
	if n.aux[relation] == nil {
		n.aux[relation] = make(map[int]*storage.AuxFragment)
	}
	n.aux[relation][attr] = aux
}

// Fragment returns the node's fragment of a relation, or nil.
func (n *Node) Fragment(relation string) *storage.Fragment { return n.frags[relation] }

// ResetStats clears the node's operator counters (post warm-up). The
// registry counters are reset wholesale by the caller via Registry.Reset.
func (n *Node) ResetStats() {
	n.OpsExecuted, n.TuplesShipped = 0, 0
}

// fragment panics if the node lacks the relation — the routing layer sent
// work to the wrong place.
func (n *Node) fragment(relation string) *storage.Fragment {
	f := n.frags[relation]
	if f == nil {
		panic(fmt.Sprintf("exec: node %d has no fragment of relation %q", n.ID, relation))
	}
	return f
}

// Start launches the node's Operator Manager: a dispatcher that spawns one
// operator process per incoming request, so concurrent queries contend for
// the node's CPU and disk exactly as on the real machine.
func (n *Node) Start() {
	n.eng.Spawn(fmt.Sprintf("node%d.opmgr", n.ID), func(p *sim.Proc) {
		inbox := n.net.Inbox(n.ID)
		for {
			m := inbox.Get(p)
			switch req := m.Payload.(type) {
			case startOp:
				n.eng.Spawn(fmt.Sprintf("node%d.op.q%d", n.ID, req.QueryID),
					func(op *sim.Proc) { n.runSelect(op, req) })
			case auxLookup:
				n.eng.Spawn(fmt.Sprintf("node%d.aux.q%d", n.ID, req.QueryID),
					func(op *sim.Proc) { n.runAuxLookup(op, req) })
			case aggOp:
				n.eng.Spawn(fmt.Sprintf("node%d.agg.q%d", n.ID, req.QueryID),
					func(op *sim.Proc) { n.runAggregate(op, req) })
			case joinScan:
				n.eng.Spawn(fmt.Sprintf("node%d.joinscan.q%d", n.ID, req.QueryID),
					func(op *sim.Proc) { n.runJoinScan(op, req) })
			case joinBatch:
				n.routeJoinMsg(req.QueryID, req.ReplyTo, req.Scanners, req)
			case joinEnd:
				n.routeJoinMsg(req.QueryID, req.ReplyTo, req.Scanners, req)
			case nil:
				// Fragment of a multi-packet message; the final fragment
				// carries the payload.
			default:
				panic(fmt.Sprintf("exec: node %d: unexpected message %T", n.ID, req))
			}
		}
	})
}

// runSelect executes one selection operator: index traversal and tuple
// fetches against the local fragment, then ships the qualifying tuples to
// the scheduler. The final result message doubles as the completion signal.
func (n *Node) runSelect(p *sim.Proc, req startOp) {
	p.SetQID(req.QueryID)
	span := n.eng.StartSpan()
	frag := n.fragment(req.Relation)
	var acc storage.Access
	switch req.Access {
	case AccessClustered:
		acc = frag.SearchClustered(req.Pred.Lo, req.Pred.Hi)
	case AccessNonClustered:
		acc = frag.SearchNonClustered(req.Pred.Attr, req.Pred.Lo, req.Pred.Hi)
	case AccessTIDFetch:
		acc = frag.FetchTIDs(req.TIDs)
	case AccessSeqScan:
		acc = frag.Scan(req.Pred.Attr, req.Pred.Lo, req.Pred.Hi)
	default:
		panic(fmt.Sprintf("exec: unknown access kind %v", req.Access))
	}
	n.chargeAccess(p, acc)
	n.OpsExecuted++
	n.TuplesShipped += int64(len(acc.Tuples))
	n.opsC.Inc()
	n.tuplesC.Add(int64(len(acc.Tuples)))

	bytes := n.params.TupleBytes(len(acc.Tuples)) + controlBytes
	n.net.Send(p, n.CPU, hw.Message{
		From: n.ID, To: req.ReplyTo, Bytes: bytes,
		Payload: opResult{QueryID: req.QueryID, Node: n.ID, Tuples: len(acc.Tuples)},
	})
	if span.Active() {
		span.End(n.ID, "op", "select "+req.Access.String(), req.QueryID,
			fmt.Sprintf("%d tuples", len(acc.Tuples)))
	}
}

// runAuxLookup executes BERD's first step: search the local fragment of the
// auxiliary relation and return the home processors of qualifying tuples.
func (n *Node) runAuxLookup(p *sim.Proc, req auxLookup) {
	p.SetQID(req.QueryID)
	span := n.eng.StartSpan()
	aux := n.aux[req.Relation][req.Pred.Attr]
	if aux == nil {
		panic(fmt.Sprintf("exec: node %d has no aux relation for %q attr %d",
			n.ID, req.Relation, req.Pred.Attr))
	}
	procs, tids, pages := aux.Lookup(req.Pred.Lo, req.Pred.Hi)
	for _, pg := range pages {
		n.Pool.Read(p, pg)
		n.CPU.Execute(p, n.costs.IndexPageInstr)
	}
	n.pagesC.Add(int64(len(pages)))
	byProc := make(map[int][]int64)
	for i, proc := range procs {
		byProc[proc] = append(byProc[proc], tids[i])
	}
	n.OpsExecuted++
	n.opsC.Inc()
	bytes := len(procs)*auxEntryBytes + controlBytes
	n.net.Send(p, n.CPU, hw.Message{
		From: n.ID, To: req.ReplyTo, Bytes: bytes,
		Payload: auxResult{QueryID: req.QueryID, Node: n.ID, TIDsByProc: byProc, Entries: len(procs)},
	})
	if span.Active() {
		span.End(n.ID, "op", "aux-lookup", req.QueryID,
			fmt.Sprintf("%d entries", len(procs)))
	}
}

// chargeAccess replays an access-method page trace against the node's
// buffer pool, disk and CPU: index pages cost IndexPageInstr each, data
// pages cost the Table 2 per-page processing (14600 instructions).
func (n *Node) chargeAccess(p *sim.Proc, acc storage.Access) {
	for _, pg := range acc.IndexPages {
		n.Pool.Read(p, pg)
		n.CPU.Execute(p, n.costs.IndexPageInstr)
	}
	for _, pg := range acc.DataPages {
		n.Pool.Read(p, pg)
		n.CPU.Execute(p, n.params.ReadPageInstr)
	}
	n.pagesC.Add(int64(len(acc.IndexPages) + len(acc.DataPages)))
}
