package exec

import (
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Costs holds the execution-layer CPU constants that Table 2 does not give
// directly (derived parameters; DESIGN.md §2.6).
type Costs struct {
	// IndexPageInstr is the CPU cost of searching one index page (a binary
	// search, far cheaper than processing a 36-tuple data page).
	IndexPageInstr int
	// PlanInstr is the Query Manager's cost to parse and plan one query.
	PlanInstr int
	// CSms is the catalog directory-entry search cost, charged on the host
	// per entry the optimizer examines (the paper's CS).
	CSms float64
	// Per-tuple join costs: hashing a tuple through the split table,
	// inserting it into the build table, probing.
	JoinHashInstr  int
	JoinBuildInstr int
	JoinProbeInstr int
}

// DefaultCosts returns the defaults documented in DESIGN.md.
func DefaultCosts() Costs {
	return Costs{
		IndexPageInstr: 2000, PlanInstr: 1000, CSms: 0.003,
		JoinHashInstr: 50, JoinBuildInstr: 100, JoinProbeInstr: 100,
	}
}

// Node is one operator node of Figure 7: CPU + disk + buffer pool + the
// local fragments of the declustered relations (and of any BERD auxiliary
// relations), plus the Operator Manager process that serves incoming work.
type Node struct {
	ID     int
	CPU    *hw.CPU
	Disk   *hw.Disk
	Pool   *buffer.Pool
	params hw.Params
	costs  Costs
	net    *hw.Network
	eng    *sim.Engine

	frags map[string]*storage.Fragment
	aux   map[string]map[int]*storage.AuxFragment // relation -> attr -> aux
	joins map[int64]*joinWorker                   // live join operators by query

	// Chained-declustering replicas: this node's copies of its
	// predecessor's fragments, served when the scheduler reroutes.
	backups    map[string]*storage.Fragment
	auxBackups map[string]map[int]*storage.AuxFragment

	// Placement generations (elastic membership). gen is the serving
	// generation; the prev* maps hold the previous generation's layout so
	// queries planned before a cutover still resolve their fragments
	// (dual-read), and the staged* maps hold the next generation's layout
	// between Stage* calls and CutoverPlacement. All nil/zero — and
	// untouched — when elasticity is off.
	gen            int
	prevFrags      map[string]*storage.Fragment
	prevAux        map[string]map[int]*storage.AuxFragment
	prevBackups    map[string]*storage.Fragment
	prevAuxBackups map[string]map[int]*storage.AuxFragment
	stagedFrags    map[string]*storage.Fragment
	stagedAux      map[string]map[int]*storage.AuxFragment
	stagedBackups  map[string]*storage.Fragment
	stagedAuxBk    map[string]map[int]*storage.AuxFragment

	// Crash state. down fail-silences the node; epoch increments on every
	// crash so operators started before it suppress their replies.
	down  bool
	epoch int

	// Per-fragment heat accumulators, attached by the machine builder when
	// heat accounting is armed; a nil map (the default) keeps every lookup
	// returning nil handles, whose increments no-op.
	heat map[heatKey]*obs.FragHeat

	// Stats.
	OpsExecuted   int64
	TuplesShipped int64
	OpErrors      int64

	// Shared-scan accounting (batched operators only): page accesses the
	// members' access methods requested vs. the distinct pages actually
	// replayed against the buffer pool.
	SharedPagesRequested int64
	SharedPagesRead      int64

	// Registry handles (nil-safe when metrics are disabled).
	opsC    *obs.Counter
	tuplesC *obs.Counter
	pagesC  *obs.Counter
	errsC   *obs.Counter
}

// NewNode wires a node; fragments are attached by the machine builder.
func NewNode(eng *sim.Engine, id int, params hw.Params, costs Costs, net *hw.Network,
	cpu *hw.CPU, disk *hw.Disk, pool *buffer.Pool) *Node {
	n := &Node{
		ID: id, CPU: cpu, Disk: disk, Pool: pool,
		frags:      make(map[string]*storage.Fragment),
		aux:        make(map[string]map[int]*storage.AuxFragment),
		joins:      make(map[int64]*joinWorker),
		backups:    make(map[string]*storage.Fragment),
		auxBackups: make(map[string]map[int]*storage.AuxFragment),
		params:     params, costs: costs, net: net, eng: eng,
	}
	if reg := eng.Metrics(); reg != nil {
		n.opsC = reg.Counter(fmt.Sprintf("node%d.ops", id))
		n.tuplesC = reg.Counter(fmt.Sprintf("node%d.tuples_selected", id))
		n.pagesC = reg.Counter(fmt.Sprintf("node%d.pages_scanned", id))
		n.errsC = reg.Counter(fmt.Sprintf("node%d.op_errors", id))
	}
	return n
}

// AddFragment attaches the node's fragment of a relation.
func (n *Node) AddFragment(relation string, f *storage.Fragment) {
	if _, dup := n.frags[relation]; dup {
		panic(fmt.Sprintf("exec: node %d already has a fragment of %s", n.ID, relation))
	}
	n.frags[relation] = f
}

// AddAux attaches the node's fragment of a BERD auxiliary relation.
func (n *Node) AddAux(relation string, attr int, aux *storage.AuxFragment) {
	if n.aux[relation] == nil {
		n.aux[relation] = make(map[int]*storage.AuxFragment)
	}
	n.aux[relation][attr] = aux
}

// AddBackupFragment attaches this node's replica of its chain predecessor's
// fragment (chained declustering: node i's primary fragment is mirrored on
// node (i+1) mod p).
func (n *Node) AddBackupFragment(relation string, f *storage.Fragment) {
	if _, dup := n.backups[relation]; dup {
		panic(fmt.Sprintf("exec: node %d already has a backup fragment of %s", n.ID, relation))
	}
	n.backups[relation] = f
}

// AddBackupAux attaches this node's replica of its chain predecessor's
// auxiliary fragment.
func (n *Node) AddBackupAux(relation string, attr int, aux *storage.AuxFragment) {
	if n.auxBackups[relation] == nil {
		n.auxBackups[relation] = make(map[int]*storage.AuxFragment)
	}
	n.auxBackups[relation][attr] = aux
}

// StageFragment attaches the node's fragment of a relation in the
// placement generation being prepared; it starts serving at the next
// CutoverPlacement.
func (n *Node) StageFragment(relation string, f *storage.Fragment) {
	if n.stagedFrags == nil {
		n.stagedFrags = make(map[string]*storage.Fragment)
	}
	if _, dup := n.stagedFrags[relation]; dup {
		panic(fmt.Sprintf("exec: node %d already staged a fragment of %s", n.ID, relation))
	}
	n.stagedFrags[relation] = f
}

// StageAux attaches a staged auxiliary-relation fragment.
func (n *Node) StageAux(relation string, attr int, aux *storage.AuxFragment) {
	if n.stagedAux == nil {
		n.stagedAux = make(map[string]map[int]*storage.AuxFragment)
	}
	if n.stagedAux[relation] == nil {
		n.stagedAux[relation] = make(map[int]*storage.AuxFragment)
	}
	n.stagedAux[relation][attr] = aux
}

// StageBackupFragment attaches a staged chained-declustering replica.
func (n *Node) StageBackupFragment(relation string, f *storage.Fragment) {
	if n.stagedBackups == nil {
		n.stagedBackups = make(map[string]*storage.Fragment)
	}
	n.stagedBackups[relation] = f
}

// StageBackupAux attaches a staged replica of an auxiliary fragment.
func (n *Node) StageBackupAux(relation string, attr int, aux *storage.AuxFragment) {
	if n.stagedAuxBk == nil {
		n.stagedAuxBk = make(map[string]map[int]*storage.AuxFragment)
	}
	if n.stagedAuxBk[relation] == nil {
		n.stagedAuxBk[relation] = make(map[int]*storage.AuxFragment)
	}
	n.stagedAuxBk[relation][attr] = aux
}

// CutoverPlacement installs the staged generation: the serving layout
// becomes the previous one (kept so queries planned before this instant
// still resolve), the staged layout becomes serving, and the generation
// before that is dropped. Nodes with nothing staged (they hold no data in
// the new generation — e.g. a decommissioned member) cut over to empty
// maps. The machine layer calls this on every node at the same sim
// instant, so the cluster's generation moves atomically.
func (n *Node) CutoverPlacement(gen int) {
	if gen != n.gen+1 {
		panic(fmt.Sprintf("exec: node %d cutover to gen %d from gen %d", n.ID, gen, n.gen))
	}
	n.prevFrags, n.frags = n.frags, n.stagedFrags
	n.prevAux, n.aux = n.aux, n.stagedAux
	n.prevBackups, n.backups = n.backups, n.stagedBackups
	n.prevAuxBackups, n.auxBackups = n.auxBackups, n.stagedAuxBk
	if n.frags == nil {
		n.frags = make(map[string]*storage.Fragment)
	}
	if n.aux == nil {
		n.aux = make(map[string]map[int]*storage.AuxFragment)
	}
	if n.backups == nil {
		n.backups = make(map[string]*storage.Fragment)
	}
	if n.auxBackups == nil {
		n.auxBackups = make(map[string]map[int]*storage.AuxFragment)
	}
	n.stagedFrags, n.stagedAux, n.stagedBackups, n.stagedAuxBk = nil, nil, nil, nil
	n.gen = gen
}

// Gen reports the node's serving placement generation.
func (n *Node) Gen() int { return n.gen }

// heatKey addresses one of the node's fragment heat accumulators.
type heatKey struct {
	relation string
	kind     obs.FragKind
}

// AttachHeat hands the node the heat accumulator for one of its fragments
// (primary, chained-replica backup, or the relation's auxiliary trees).
// Called by the machine builder only when heat accounting is armed: with
// no attachments the hot-path lookups return nil and every increment
// no-ops, so disabled runs execute the identical schedule.
func (n *Node) AttachHeat(relation string, kind obs.FragKind, h *obs.FragHeat) {
	if n.heat == nil {
		n.heat = make(map[heatKey]*obs.FragHeat)
	}
	n.heat[heatKey{relation, kind}] = h
}

// heatFor resolves the accumulator a data-fragment access charges (nil
// when heat is off).
func (n *Node) heatFor(relation string, backup bool) *obs.FragHeat {
	if n.heat == nil {
		return nil
	}
	kind := obs.FragPrimary
	if backup {
		kind = obs.FragBackup
	}
	return n.heat[heatKey{relation, kind}]
}

// auxHeat resolves the accumulator for the relation's auxiliary trees on
// this node (primary and backup aux share it — both live on this disk).
func (n *Node) auxHeat(relation string) *obs.FragHeat {
	if n.heat == nil {
		return nil
	}
	return n.heat[heatKey{relation, obs.FragAux}]
}

// Fragment returns the node's fragment of a relation, or nil.
func (n *Node) Fragment(relation string) *storage.Fragment { return n.frags[relation] }

// BackupFragment returns the node's replica of its predecessor's fragment,
// or nil.
func (n *Node) BackupFragment(relation string) *storage.Fragment { return n.backups[relation] }

// Crash fail-silences the node (it satisfies fault.NodeTarget): the inbox
// drops traffic while down, and operators already in flight keep consuming
// CPU and disk but have their replies suppressed — to the rest of the
// machine the node simply goes quiet. Local data survives; this read-only
// workload has no dirty state to lose. Crashing a crashed node is a no-op.
func (n *Node) Crash() {
	if n.down {
		return
	}
	n.down = true
	n.epoch++
	n.net.Inbox(n.ID).SetDrop(true)
}

// Restart brings a crashed node back: the inbox accepts traffic again and
// new operators run normally. Messages that arrived during the outage are
// gone — senders are expected to time out and retry.
func (n *Node) Restart() {
	if !n.down {
		return
	}
	n.down = false
	n.net.Inbox(n.ID).SetDrop(false)
}

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool { return n.down }

// ResetStats clears the node's operator counters (post warm-up). The
// registry counters are reset wholesale by the caller via Registry.Reset.
func (n *Node) ResetStats() {
	n.OpsExecuted, n.TuplesShipped = 0, 0
	n.SharedPagesRequested, n.SharedPagesRead = 0, 0
}

// fragment panics if the node lacks the relation — the routing layer sent
// work to the wrong place.
func (n *Node) fragment(relation string) *storage.Fragment {
	f := n.frags[relation]
	if f == nil {
		panic(fmt.Sprintf("exec: node %d has no fragment of relation %q", n.ID, relation))
	}
	return f
}

// fragmentFor resolves the primary or backup fragment for a request,
// reporting an error (rather than panicking) so misrouted degraded-mode
// work surfaces as a query failure. epoch selects the placement
// generation: the serving one, or — during the dual-read window after a
// rebalance cutover — the previous one for queries planned before it.
func (n *Node) fragmentFor(relation string, backup bool, epoch int) (*storage.Fragment, error) {
	var m map[string]*storage.Fragment
	switch {
	case epoch == n.gen:
		if backup {
			m = n.backups
		} else {
			m = n.frags
		}
	case epoch == n.gen-1:
		if backup {
			m = n.prevBackups
		} else {
			m = n.prevFrags
		}
	default:
		return nil, fmt.Errorf("exec: node %d cannot serve placement epoch %d at generation %d",
			n.ID, epoch, n.gen)
	}
	if f := m[relation]; f != nil {
		return f, nil
	}
	return nil, fmt.Errorf("exec: node %d has no %s of relation %q at epoch %d",
		n.ID, fragKind(backup), relation, epoch)
}

// auxFor resolves an auxiliary fragment the same way.
func (n *Node) auxFor(relation string, attr int, backup bool, epoch int) (*storage.AuxFragment, error) {
	var m map[string]map[int]*storage.AuxFragment
	switch {
	case epoch == n.gen:
		if backup {
			m = n.auxBackups
		} else {
			m = n.aux
		}
	case epoch == n.gen-1:
		if backup {
			m = n.prevAuxBackups
		} else {
			m = n.prevAux
		}
	default:
		return nil, fmt.Errorf("exec: node %d cannot serve placement epoch %d at generation %d",
			n.ID, epoch, n.gen)
	}
	if aux := m[relation][attr]; aux != nil {
		return aux, nil
	}
	return nil, fmt.Errorf("exec: node %d has no %s aux relation for %q attr %d at epoch %d",
		n.ID, fragKind(backup), relation, attr, epoch)
}

func fragKind(backup bool) string {
	if backup {
		return "backup fragment"
	}
	return "fragment"
}

// send delivers an operator's reply unless the node crashed after the
// operator started (epoch mismatch) or is down now: a crash fail-silences
// in-flight work.
func (n *Node) send(p *sim.Proc, epoch int, msg hw.Message) {
	if n.down || n.epoch != epoch {
		return
	}
	n.net.Send(p, n.CPU, msg)
}

// sendError reports an operator failure to the scheduler.
func (n *Node) sendError(p *sim.Proc, epoch int, req int64, replyTo, attempt int, err error) {
	n.OpErrors++
	n.errsC.Inc()
	n.send(p, epoch, hw.Message{
		From: n.ID, To: replyTo, Bytes: controlBytes,
		Payload: opError{
			QueryID: req, Node: n.ID, Attempt: attempt,
			Transient: errors.Is(err, hw.ErrDiskIO), Msg: err.Error(),
		},
	})
}

// Start launches the node's Operator Manager: a dispatcher that spawns one
// operator process per incoming request, so concurrent queries contend for
// the node's CPU and disk exactly as on the real machine.
func (n *Node) Start() {
	n.eng.Spawn(fmt.Sprintf("node%d.opmgr", n.ID), func(p *sim.Proc) {
		inbox := n.net.Inbox(n.ID)
		for {
			m := inbox.Get(p)
			switch req := m.Payload.(type) {
			case startOp:
				n.eng.Spawn(fmt.Sprintf("node%d.op.q%d", n.ID, req.QueryID),
					func(op *sim.Proc) { n.runSelect(op, req) })
			case batchOp:
				n.eng.Spawn(fmt.Sprintf("node%d.sharedop", n.ID),
					func(op *sim.Proc) { n.runSharedBatch(op, req) })
			case auxLookup:
				n.eng.Spawn(fmt.Sprintf("node%d.aux.q%d", n.ID, req.QueryID),
					func(op *sim.Proc) { n.runAuxLookup(op, req) })
			case aggOp:
				n.eng.Spawn(fmt.Sprintf("node%d.agg.q%d", n.ID, req.QueryID),
					func(op *sim.Proc) { n.runAggregate(op, req) })
			case joinScan:
				n.eng.Spawn(fmt.Sprintf("node%d.joinscan.q%d", n.ID, req.QueryID),
					func(op *sim.Proc) { n.runJoinScan(op, req) })
			case joinBatch:
				n.routeJoinMsg(req.QueryID, req.ReplyTo, req.Scanners, req)
			case joinEnd:
				n.routeJoinMsg(req.QueryID, req.ReplyTo, req.Scanners, req)
			case nil:
				// Fragment of a multi-packet message; the final fragment
				// carries the payload.
			default:
				panic(fmt.Sprintf("exec: node %d: unexpected message %T", n.ID, req))
			}
		}
	})
}

// runSelect executes one selection operator: index traversal and tuple
// fetches against the local (or backup) fragment, then ships the qualifying
// tuples to the scheduler. The final result message doubles as the
// completion signal; an access error becomes an opError report instead of a
// process crash.
func (n *Node) runSelect(p *sim.Proc, req startOp) {
	p.SetQID(req.QueryID)
	epoch := n.epoch
	span := n.eng.StartSpan()
	h := n.heatFor(req.Relation, req.Backup)
	fspan := n.eng.StartSpan()
	acc, err := n.selectAccess(req)
	if err == nil {
		err = n.chargeAccess(p, acc, h)
	}
	if err != nil {
		n.sendError(p, epoch, req.QueryID, req.ReplyTo, req.Attempt, err)
		if span.Active() {
			span.End(n.ID, "op", "select "+req.Access.String()+" failed", req.QueryID, err.Error())
		}
		return
	}
	n.OpsExecuted++
	n.TuplesShipped += int64(len(acc.Tuples))
	n.opsC.Inc()
	n.tuplesC.Add(int64(len(acc.Tuples)))

	bytes := n.params.TupleBytes(len(acc.Tuples)) + controlBytes
	h.Account(len(acc.IndexPages), len(acc.DataPages), int64(bytes), req.Backup)
	if fspan.Active() {
		kind := obs.FragPrimary
		if req.Backup {
			kind = obs.FragBackup
		}
		fspan.End(n.ID, "frag", obs.FragID{Relation: req.Relation, Kind: kind}.Label(),
			req.QueryID, fmt.Sprintf("%d pages, %d tuples", acc.PageCount(), len(acc.Tuples)))
	}
	n.send(p, epoch, hw.Message{
		From: n.ID, To: req.ReplyTo, Bytes: bytes,
		Payload: opResult{QueryID: req.QueryID, Node: n.ID, Tuples: len(acc.Tuples), Attempt: req.Attempt},
	})
	if span.Active() {
		span.End(n.ID, "op", "select "+req.Access.String(), req.QueryID,
			fmt.Sprintf("%d tuples", len(acc.Tuples)))
	}
}

// selectAccess resolves the fragment and runs the requested access method.
func (n *Node) selectAccess(req startOp) (storage.Access, error) {
	frag, err := n.fragmentFor(req.Relation, req.Backup, req.Epoch)
	if err != nil {
		return storage.Access{}, err
	}
	return accessFor(frag, req.Access, req.Pred, req.TIDs)
}

// accessFor runs one access method against a resolved fragment.
func accessFor(frag *storage.Fragment, kind AccessKind, pred core.Predicate, tids []int64) (storage.Access, error) {
	switch kind {
	case AccessClustered:
		return frag.SearchClustered(pred.Lo, pred.Hi)
	case AccessNonClustered:
		return frag.SearchNonClustered(pred.Attr, pred.Lo, pred.Hi)
	case AccessTIDFetch:
		return frag.FetchTIDs(tids)
	case AccessSeqScan:
		return frag.Scan(pred.Attr, pred.Lo, pred.Hi), nil
	default:
		return storage.Access{}, fmt.Errorf("exec: unknown access kind %v", kind)
	}
}

// runSharedBatch executes one predicate-grouped shared scan: every member's
// page trace is resolved up front (pure computation), the union of the
// traces is replayed against the buffer pool reading each distinct page
// once, and per-member qualification CPU is charged in full — the disk pass
// is shared, the processing is not. Members are answered in admission
// order. Under the degraded scheduler a batch may target a backup fragment
// or arrive misrouted after a repair, so resolution and page-read failures
// fan out as one opError per member (each tagged with that member's
// dispatch attempt) instead of panicking; the collectors then retry or
// reroute the members individually.
func (n *Node) runSharedBatch(p *sim.Proc, req batchOp) {
	epoch := n.epoch
	span := n.eng.StartSpan()
	h := n.heatFor(req.Relation, req.Backup)
	fail := func(err error) {
		for _, m := range req.Members {
			n.sendError(p, epoch, m.QID, req.ReplyTo, m.Attempt, err)
		}
		if span.Active() {
			span.End(n.ID, "op", "shared select "+req.Access.String()+" failed", 0, err.Error())
		}
	}
	frag, err := n.fragmentFor(req.Relation, req.Backup, req.Epoch)
	if err != nil {
		fail(err)
		return
	}
	accs := make([]storage.Access, len(req.Members))
	for i, m := range req.Members {
		if accs[i], err = accessFor(frag, req.Access, m.Pred, nil); err != nil {
			fail(err)
			return
		}
	}
	seen := make(map[int]bool)
	idxPages, dataPages := 0, 0
	for i := range accs {
		for _, pg := range accs[i].IndexPages {
			n.SharedPagesRequested++
			if !seen[pg] {
				seen[pg] = true
				idxPages++
				n.SharedPagesRead++
				if err := n.Pool.ReadHeat(p, pg, h); err != nil {
					fail(err)
					return
				}
			}
			n.CPU.Execute(p, n.costs.IndexPageInstr)
		}
		for _, pg := range accs[i].DataPages {
			n.SharedPagesRequested++
			if !seen[pg] {
				seen[pg] = true
				dataPages++
				n.SharedPagesRead++
				if err := n.Pool.ReadHeat(p, pg, h); err != nil {
					fail(err)
					return
				}
			}
			n.CPU.Execute(p, n.params.ReadPageInstr)
		}
	}
	n.pagesC.Add(int64(idxPages + dataPages))

	var batchBytes int64
	for i, m := range req.Members {
		tuples := len(accs[i].Tuples)
		n.OpsExecuted++
		n.TuplesShipped += int64(tuples)
		n.opsC.Inc()
		n.tuplesC.Add(int64(tuples))
		bytes := n.params.TupleBytes(tuples) + controlBytes
		batchBytes += int64(bytes)
		n.send(p, epoch, hw.Message{
			From: n.ID, To: req.ReplyTo, Bytes: bytes,
			Payload: opResult{QueryID: m.QID, Node: n.ID, Tuples: tuples, Attempt: m.Attempt},
		})
	}
	h.Account(idxPages, dataPages, batchBytes, req.Backup)
	if span.Active() {
		span.End(n.ID, "op", "shared select "+req.Access.String(), 0,
			fmt.Sprintf("%d members, %d pages", len(req.Members), idxPages+dataPages))
	}
}

// runAuxLookup executes BERD's first step: search the local fragment of the
// auxiliary relation and return the home processors of qualifying tuples.
func (n *Node) runAuxLookup(p *sim.Proc, req auxLookup) {
	p.SetQID(req.QueryID)
	epoch := n.epoch
	span := n.eng.StartSpan()
	aux, err := n.auxFor(req.Relation, req.Pred.Attr, req.Backup, req.Epoch)
	h := n.auxHeat(req.Relation)
	fspan := n.eng.StartSpan()
	var procs []int
	var tids []int64
	var pages []int
	if err == nil {
		procs, tids, pages = aux.Lookup(req.Pred.Lo, req.Pred.Hi)
		for _, pg := range pages {
			if err = n.Pool.ReadHeat(p, pg, h); err != nil {
				break
			}
			n.CPU.Execute(p, n.costs.IndexPageInstr)
		}
	}
	if err != nil {
		n.sendError(p, epoch, req.QueryID, req.ReplyTo, req.Attempt, err)
		if span.Active() {
			span.End(n.ID, "op", "aux-lookup failed", req.QueryID, err.Error())
		}
		return
	}
	n.pagesC.Add(int64(len(pages)))
	byProc := make(map[int][]int64)
	for i, proc := range procs {
		byProc[proc] = append(byProc[proc], tids[i])
	}
	n.OpsExecuted++
	n.opsC.Inc()
	bytes := len(procs)*auxEntryBytes + controlBytes
	h.Account(len(pages), 0, int64(bytes), req.Backup)
	if fspan.Active() {
		fspan.End(n.ID, "frag", obs.FragID{Relation: req.Relation, Kind: obs.FragAux}.Label(),
			req.QueryID, fmt.Sprintf("%d pages, %d tuples", len(pages), 0))
	}
	n.send(p, epoch, hw.Message{
		From: n.ID, To: req.ReplyTo, Bytes: bytes,
		Payload: auxResult{QueryID: req.QueryID, Node: n.ID, TIDsByProc: byProc,
			Entries: len(procs), Attempt: req.Attempt},
	})
	if span.Active() {
		span.End(n.ID, "op", "aux-lookup", req.QueryID,
			fmt.Sprintf("%d entries", len(procs)))
	}
}

// chargeAccess replays an access-method page trace against the node's
// buffer pool, disk and CPU: index pages cost IndexPageInstr each, data
// pages cost the Table 2 per-page processing (14600 instructions). It stops
// at the first failed page read and reports it. h attributes every page
// request to the fragment being read (nil = heat off, no accounting).
func (n *Node) chargeAccess(p *sim.Proc, acc storage.Access, h *obs.FragHeat) error {
	for _, pg := range acc.IndexPages {
		if err := n.Pool.ReadHeat(p, pg, h); err != nil {
			return err
		}
		n.CPU.Execute(p, n.costs.IndexPageInstr)
	}
	for _, pg := range acc.DataPages {
		if err := n.Pool.ReadHeat(p, pg, h); err != nil {
			return err
		}
		n.CPU.Execute(p, n.params.ReadPageInstr)
	}
	n.pagesC.Add(int64(len(acc.IndexPages) + len(acc.DataPages)))
	return nil
}

// mustAccess and mustCharge adapt the error-returning storage and buffer
// APIs for the aggregate/join paths, which do not participate in degraded
// execution: an injected fault there fails the whole run (the engine turns
// the panic into a run error) instead of a single query.
func mustAccess(acc storage.Access, err error) storage.Access {
	if err != nil {
		panic(err)
	}
	return acc
}

func (n *Node) mustCharge(p *sim.Proc, acc storage.Access, h *obs.FragHeat) {
	if err := n.chargeAccess(p, acc, h); err != nil {
		panic(err)
	}
}
