package exec

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/storage"
)

// degradedRig is a two-node machine with chained replicas (node i's fragment
// mirrored on node (i+1)%2) and the degraded scheduler armed, plus handles
// on the disks for direct fault injection.
type degradedRig struct {
	eng   *sim.Engine
	net   *hw.Network
	nodes []*Node
	disks []*hw.Disk
	host  *Host
	view  *fault.View
	rel   *storage.Relation
}

func newDegradedRig(t *testing.T) *degradedRig {
	t.Helper()
	eng := sim.New()
	params := hw.DefaultParams()
	params.NumProcessors = 2
	costs := DefaultCosts()
	streams := rng.NewFactory(5)

	cpus := make([]*hw.CPU, 3)
	for i := 0; i < 2; i++ {
		cpus[i] = hw.NewCPU(eng, "cpu", params)
	}
	net := hw.NewNetwork(eng, params, cpus)

	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	placement := core.NewRangeForRelation(rel, storage.Unique1, 2)
	r := &degradedRig{eng: eng, net: net, rel: rel}
	layout := storage.Layout{TuplesPerPage: 8, IndexFanout: 8, IndexLeafCap: 8}

	byHome := make([][]storage.Tuple, 2)
	for _, tup := range rel.Tuples {
		h := placement.HomeOf(tup)
		byHome[h] = append(byHome[h], tup)
	}
	allocs := make([]*storage.Allocator, 2)
	for i := 0; i < 2; i++ {
		disk := hw.NewDisk(eng, "disk", params, cpus[i], streams.Stream("lat"))
		pool := buffer.NewPool(eng, "buf", 16, disk)
		n := NewNode(eng, i, params, costs, net, cpus[i], disk, pool)
		allocs[i] = storage.NewAllocator(10000)
		frag := storage.BuildFragment(i, byHome[i], storage.Unique2, layout, allocs[i])
		frag.AddIndex(storage.Unique2, allocs[i])
		frag.AddIndex(storage.Unique1, allocs[i])
		n.AddFragment(rel.Name, frag)
		r.nodes = append(r.nodes, n)
		r.disks = append(r.disks, disk)
	}
	// Chained replicas: node i's fragment is rebuilt, with the same indexes,
	// on its chain successor — keyed by i so rerouted operators answer for
	// the primary home.
	for i := 0; i < 2; i++ {
		b := core.ChainBackup(i, 2)
		frag := storage.BuildFragment(i, byHome[i], storage.Unique2, layout, allocs[b])
		frag.AddIndex(storage.Unique2, allocs[b])
		frag.AddIndex(storage.Unique1, allocs[b])
		r.nodes[b].AddBackupFragment(rel.Name, frag)
	}
	for _, n := range r.nodes {
		n.Start()
	}
	r.view = fault.NewView(2)
	r.host = NewHost(eng, 2, params, net, costs)
	r.host.AddRelation(rel.Name, placement)
	r.host.Degraded = &Degraded{
		Policy: DefaultRetryPolicy(),
		View:   r.view,
		Backup: func(slot, slots int) int {
			if slots <= 0 {
				slots = 2
			}
			return core.ChainBackup(slot, slots)
		},
		Jitter: streams.Stream("retry.jitter"),
	}
	r.host.Start()
	return r
}

// bothNodes is a range over B that touches both fragments.
var bothNodes = core.Predicate{Attr: storage.Unique2, Lo: 50, Hi: 69}

func (r *degradedRig) execute(t *testing.T) QueryResult {
	t.Helper()
	var res QueryResult
	r.eng.Spawn("probe", func(p *sim.Proc) {
		res = r.host.Execute(p, bothNodes, chooser)
		r.eng.Stop()
	})
	if err := r.eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	return res
}

// With nothing broken the degraded scheduler must agree with the legacy
// path's answer.
func TestDegradedHealthyMatchesLegacy(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	legacy := newRig(t, core.NewRangeForRelation(rel, storage.Unique1, 2)).execute(t, bothNodes)
	res := newDegradedRig(t).execute(t)
	if res.Outcome != OutcomeOK || res.Retries != 0 {
		t.Fatalf("healthy degraded run: outcome=%v retries=%d", res.Outcome, res.Retries)
	}
	if res.Tuples != legacy.Tuples || res.ProcessorsUsed != legacy.ProcessorsUsed {
		t.Fatalf("degraded answer differs from legacy: %d tuples on %d procs vs %d on %d",
			res.Tuples, res.ProcessorsUsed, legacy.Tuples, legacy.ProcessorsUsed)
	}
}

// A fail-stopped disk the view knows about: operators for its fragment are
// dispatched straight to the chain backup; the full answer still comes back.
func TestDegradedReroutesAroundKnownDeadDisk(t *testing.T) {
	r := newDegradedRig(t)
	r.eng.Schedule(0, func() {
		r.disks[0].Fail()
		r.view.SetDisk(0, false)
	})
	res := r.execute(t)
	if res.Tuples != 20 {
		t.Fatalf("got %d tuples, want the full 20 via the backup", res.Tuples)
	}
	if !res.Outcome.Succeeded() {
		t.Fatalf("outcome = %v, err = %v", res.Outcome, res.Err)
	}
	if r.nodes[1].OpsExecuted != 2 {
		t.Fatalf("node 1 ran %d ops, want 2 (its own + node 0's rerouted)", r.nodes[1].OpsExecuted)
	}
}

// A disk failure the view has NOT noticed: the first dispatch errors, the
// retry path flips to the backup, and the query completes as Retried.
func TestDegradedRetriesOnUnannouncedDiskFailure(t *testing.T) {
	r := newDegradedRig(t)
	r.eng.Schedule(0, func() { r.disks[0].Fail() })
	res := r.execute(t)
	if res.Tuples != 20 {
		t.Fatalf("got %d tuples, want 20", res.Tuples)
	}
	if res.Outcome != OutcomeRetried || res.Retries == 0 {
		t.Fatalf("outcome = %v, retries = %d, want a retried success", res.Outcome, res.Retries)
	}
}

// A transient I/O error retries on the same node and succeeds without
// touching the backup.
func TestDegradedRetriesTransientIOError(t *testing.T) {
	r := newDegradedRig(t)
	r.disks[0].FailNextReads(1)
	res := r.execute(t)
	if res.Tuples != 20 {
		t.Fatalf("got %d tuples, want 20", res.Tuples)
	}
	if !res.Outcome.Succeeded() {
		t.Fatalf("outcome = %v, err = %v", res.Outcome, res.Err)
	}
	if res.Retries == 0 {
		t.Fatal("transient error should have cost at least one retry")
	}
}

// Both nodes dead and the view oblivious: with the default policy the op
// retries exhaust first and the query fails; with an unbounded retry budget
// the query deadline is the backstop and the query is abandoned as
// OutcomeTimedOut. Either way the simulation must not hang.
func TestDegradedFailsWhenRetriesExhaust(t *testing.T) {
	r := newDegradedRig(t)
	r.eng.Schedule(0, func() {
		r.nodes[0].Crash()
		r.nodes[1].Crash()
	})
	res := r.execute(t)
	if res.Outcome != OutcomeFailed {
		t.Fatalf("outcome = %v, want failed (3 retries × 2s op timeout < 20s deadline)", res.Outcome)
	}
	if res.Err == nil {
		t.Fatal("abandoned query should carry an error")
	}
}

func TestDegradedTimesOutWhenMachineIsDead(t *testing.T) {
	r := newDegradedRig(t)
	r.host.Degraded.Policy.MaxRetries = 1000 // deadline, not retry budget, is the backstop
	r.eng.Schedule(0, func() {
		r.nodes[0].Crash()
		r.nodes[1].Crash()
	})
	res := r.execute(t)
	if res.Outcome != OutcomeTimedOut {
		t.Fatalf("outcome = %v, want timed out at the query deadline", res.Outcome)
	}
	if res.Err == nil {
		t.Fatal("abandoned query should carry an error")
	}
}

// A crashed node that restarts mid-query: the suppressed-epoch discipline
// means its stale replies are dropped rather than double-counted, and the
// retry path still completes the query.
func TestDegradedSurvivesCrashRestartWindow(t *testing.T) {
	r := newDegradedRig(t)
	r.eng.Schedule(0, func() { r.nodes[0].Crash() })
	r.eng.Schedule(sim.Second, func() {
		r.nodes[0].Restart()
		r.view.SetNode(0, true)
	})
	res := r.execute(t)
	if res.Tuples != 20 {
		t.Fatalf("got %d tuples, want 20", res.Tuples)
	}
	if !res.Outcome.Succeeded() {
		t.Fatalf("outcome = %v, err = %v", res.Outcome, res.Err)
	}
}

// Duplicated result packets (the interconnect's NetDup fault): the
// at-most-once attempt accounting absorbs the copy as an orphan instead of
// double-counting tuples or panicking.
func TestDegradedAbsorbsDuplicatedReplies(t *testing.T) {
	r := newDegradedRig(t)
	r.net.EnableFaults(nil, 0, 0) // scheduled faults only, no probabilistic ones
	r.net.DupNext(2, 4)           // duplicate the next 4 messages addressed to the host
	res := r.execute(t)
	if res.Tuples != 20 {
		t.Fatalf("got %d tuples, want 20 exactly once", res.Tuples)
	}
	if !res.Outcome.Succeeded() {
		t.Fatalf("outcome = %v, err = %v", res.Outcome, res.Err)
	}
	if r.host.Orphans == 0 {
		t.Fatal("duplicated replies should surface as orphans")
	}
}
