package exec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/sim"
)

// Shared scans ("Multi Query Optimization in GLADE" is the reference
// design): the paper's workload is thousands of selections with
// overlapping predicates over the same declustered fragments, so at high
// multiprogramming levels the same pages are read over and over — and with
// Table 2's small buffer pools they rarely survive in memory between
// queries. The shared-scan manager batches concurrent selections whose
// scans hit the same fragment with the same access method inside a
// (sim-time) window, and runs each batch as one disk pass: the union of
// the members' page sets is read once, while every member is charged its
// own qualification CPU and ships its own tuples. Determinism is
// preserved because batches are keyed and flushed in simulated time
// (identical at any -parallel) and members are served in admission order.

// SharingStats tallies the shared-scan manager's work. Batches/BatchedOps/
// SharedOps are counted at flush time on the host; the page counters are
// summed over the operator nodes by the machine layer.
type SharingStats struct {
	// Batches is the number of flushed batches (a lone selection still
	// forms a batch of one).
	Batches int64 `json:"batches"`
	// BatchedOps is the number of operators that rode a batch.
	BatchedOps int64 `json:"batched_ops"`
	// SharedOps counts the operators beyond the first of their batch — the
	// ones that got their disk pass for free.
	SharedOps int64 `json:"shared_ops"`
	// PagesRequested is the number of page accesses the members' access
	// methods asked for; PagesRead is the distinct pages actually replayed
	// against the buffer pool. The difference is the sharing saving before
	// buffer-pool hits are even considered.
	PagesRequested int64 `json:"pages_requested"`
	PagesRead      int64 `json:"pages_read"`
}

// PagesSaved reports page reads avoided by deduplication within batches.
func (s SharingStats) PagesSaved() int64 { return s.PagesRequested - s.PagesRead }

// MeanBatchSize reports the average members per batch.
func (s SharingStats) MeanBatchSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedOps) / float64(s.Batches)
}

func (s SharingStats) String() string {
	return fmt.Sprintf("%d batches (%.2f ops/batch), %d shared ops, %d/%d pages deduped",
		s.Batches, s.MeanBatchSize(), s.SharedOps, s.PagesSaved(), s.PagesRequested)
}

// shareKey identifies one open batch: selections group when they target the
// same fragment (node, relation) with the same access method, the same
// replica role, and the same placement epoch — a backup-rerouted retry or
// a pre-cutover query must not share a disk pass with operators reading a
// different physical fragment. Predicates within a group may differ — the
// disk pass covers their union. backup and epoch stay zero-valued on the
// legacy fault-free path, leaving its grouping unchanged.
type shareKey struct {
	node     int
	relation string
	attr     int
	access   AccessKind
	backup   bool
	epoch    int
}

// shareBatch is one open predicate group awaiting its window flush.
type shareBatch struct {
	key     shareKey
	members []batchMember
}

// SharedScans is the host-side shared-scan manager. It is single-"threaded"
// by construction — the simulation engine serializes all process steps — so
// it needs no locking, and its batching decisions depend only on simulated
// time, keeping runs reproducible at any host parallelism.
type SharedScans struct {
	h      *Host
	window sim.Duration
	open   map[shareKey]*shareBatch
	stats  SharingStats
}

// EnableSharing arms the shared-scan manager with the given batching
// window: the first selection to open a batch waits at most window before
// the batch is dispatched. Sharing composes with the degraded scheduler:
// dispatches carry their attempt tag into the batch, replies echo it, and
// the collectors drop stale batch replies exactly as for lone operators.
func (h *Host) EnableSharing(window sim.Duration) *SharedScans {
	if window <= 0 {
		panic(fmt.Sprintf("exec: non-positive sharing window %v", window))
	}
	h.Shared = &SharedScans{
		h: h, window: window,
		open: make(map[shareKey]*shareBatch),
	}
	return h.Shared
}

// Window reports the batching window.
func (s *SharedScans) Window() sim.Duration { return s.window }

// Stats snapshots the flush counters (pages are accounted on the nodes).
func (s *SharedScans) Stats() SharingStats { return s.stats }

// ResetStats clears the flush counters (post warm-up).
func (s *SharedScans) ResetStats() { s.stats = SharingStats{} }

// enqueue adds one operator dispatch to its predicate group, opening the
// group — and scheduling its window flush — if it is the first. Admission
// order within a batch is the coordinators' arrival order, which the node
// preserves when replying, so per-query results are reproducible.
func (s *SharedScans) enqueue(node int, relation string, pred core.Predicate, access AccessKind,
	qid int64, attempt int, backup bool, epoch int) {
	k := shareKey{node: node, relation: relation, attr: pred.Attr, access: access,
		backup: backup, epoch: epoch}
	b := s.open[k]
	if b == nil {
		b = &shareBatch{key: k}
		s.open[k] = b
		s.h.eng.Spawn(fmt.Sprintf("share.flush.n%d", node), func(fp *sim.Proc) {
			fp.Hold(s.window)
			s.flush(fp, b)
		})
	}
	b.members = append(b.members, batchMember{QID: qid, Pred: pred, Attempt: attempt})
}

// flush closes the batch and ships it to the node as one shared operator.
func (s *SharedScans) flush(fp *sim.Proc, b *shareBatch) {
	delete(s.open, b.key)
	s.stats.Batches++
	s.stats.BatchedOps += int64(len(b.members))
	s.stats.SharedOps += int64(len(b.members) - 1)
	s.h.net.Send(fp, nil, hw.Message{
		From: s.h.ID, To: b.key.node,
		Bytes: controlBytes + batchMemberBytes*len(b.members),
		Payload: batchOp{
			Relation: b.key.relation, Access: b.key.access,
			ReplyTo: s.h.ID, Members: b.members,
			Backup: b.key.backup, Epoch: b.key.epoch,
		},
	})
}
