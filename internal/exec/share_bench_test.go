package exec

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
)

// BenchmarkSharedScanBatch measures one full shared-scan cycle — 8
// concurrent identical selections enqueued, window-flushed, executed as one
// deduplicated disk pass, and demultiplexed back to their coordinators.
// Mirrored by name in cmd/declusterbench's bench table (BENCH_sim.json).
func BenchmarkSharedScanBatch(b *testing.B) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := newRig(b, core.NewRangeForRelation(rel, storage.Unique1, 2))
	r.host.EnableSharing(2 * sim.Millisecond)
	pred := core.Predicate{Attr: storage.Unique2, Lo: 40, Hi: 79}

	r.eng.Spawn("bench", func(p *sim.Proc) {
		done := sim.NewMailbox[int](r.eng, "bench.done")
		for i := 0; i < b.N; i++ {
			for k := 0; k < 8; k++ {
				r.eng.Spawn("q", func(qp *sim.Proc) {
					r.host.Execute(qp, pred, chooser)
					done.Put(1)
				})
			}
			for k := 0; k < 8; k++ {
				done.Get(p)
			}
		}
		r.eng.Stop()
	})
	b.ReportAllocs()
	b.ResetTimer()
	horizon := sim.Duration(b.N)*sim.Second + 60*sim.Second
	if err := r.eng.RunUntil(sim.Time(horizon)); err != nil {
		b.Fatal(err)
	}
}
