// Package exec implements query execution on the simulated Gamma machine:
// the Operator Manager running selections on each node, the Query Manager
// and Scheduler coordinating multi-site queries on the host, and BERD's
// two-step auxiliary-relation protocol. It is the layer that turns a
// declustering strategy's routing decision into simulated CPU, disk and
// network activity.
package exec

import (
	"repro/internal/core"
	"repro/internal/plan"
)

// AccessKind selects the access method an operator uses. It is an alias of
// plan.Access: the plan layer owns the access-method vocabulary, and the
// execution layer consumes it unchanged (same values, same strings).
type AccessKind = plan.Access

// Access methods of the workload (Section 6) plus the fallback scan,
// re-exported for the execution layer's historical spelling.
const (
	AccessClustered    = plan.AccessClustered    // clustered B+-tree range scan
	AccessNonClustered = plan.AccessNonClustered // non-clustered B+-tree + tuple fetches
	AccessTIDFetch     = plan.AccessTIDFetch     // direct fetch by TID (BERD step two)
	AccessSeqScan      = plan.AccessSeqScan      // full sequential scan (no usable index)
)

// controlBytes is the size of a control message (start, done); the paper's
// Table 2 prices a 100-byte message.
const controlBytes = 100

// auxEntryBytes is the wire size of one auxiliary-relation result entry
// (value + TID + processor).
const auxEntryBytes = 16

// startOp asks a node's Operator Manager to run a selection fragment.
type startOp struct {
	QueryID  int64
	Relation string
	Pred     core.Predicate
	Access   AccessKind
	TIDs     []int64 // AccessTIDFetch only: the primary fragment's qualifying TIDs
	ReplyTo  int     // scheduler node
	// Attempt tags this dispatch for at-most-once accounting under retries
	// and message duplication (degraded mode; 0 on the legacy path).
	Attempt int
	// Backup directs the operator at the node's chained-declustering backup
	// fragment instead of its primary one.
	Backup bool
	// Epoch is the placement generation the query was planned against
	// (0 when elasticity is off). During a rebalance a node serves the
	// previous generation's fragments to queries submitted before the
	// cutover and the new generation's to queries submitted after it.
	Epoch int
}

// opResult carries an operator's qualifying tuples back to the scheduler;
// its arrival also serves as the operator's completion signal.
type opResult struct {
	QueryID int64
	Node    int
	Tuples  int
	Attempt int // echoes startOp.Attempt
}

// opError reports an operator that failed instead of completing: an
// injected disk fault, a missing (backup) fragment, or a routing error.
// Transient distinguishes faults worth retrying in place from those that
// require rerouting to a replica.
type opError struct {
	QueryID   int64
	Node      int
	Attempt   int
	Transient bool
	Msg       string
}

// auxLookup asks a node to search its fragment of a BERD auxiliary relation.
type auxLookup struct {
	QueryID  int64
	Relation string
	Pred     core.Predicate
	ReplyTo  int
	Attempt  int
	Backup   bool
	Epoch    int // placement generation, as startOp.Epoch
}

// auxResult returns the home processors (and TIDs) of qualifying tuples.
type auxResult struct {
	QueryID int64
	Node    int
	// TIDsByProc maps home processor -> qualifying TIDs stored there.
	TIDsByProc map[int][]int64
	Entries    int
	Attempt    int // echoes auxLookup.Attempt
}

// batchMember is one query's share of a predicate-grouped shared-scan
// batch.
type batchMember struct {
	QID  int64
	Pred core.Predicate
	// Attempt echoes into the member's opResult so the degraded-mode
	// collector can drop stale batch replies (0 on the legacy path).
	Attempt int
}

// batchMemberBytes is the wire size of one batch member (query id +
// predicate).
const batchMemberBytes = 24

// batchOp asks a node to run one shared scan for a predicate group: the
// union of the members' page sets is read once, per-member qualification
// CPU is charged in full, and each member receives its own opResult, in
// admission order.
type batchOp struct {
	Relation string
	Access   AccessKind
	ReplyTo  int
	Members  []batchMember
	// Backup and Epoch select the fragment exactly as on startOp; members
	// only batch within one (backup, epoch) group.
	Backup bool
	Epoch  int
}

// attemptTagged is implemented by result messages that echo their dispatch
// attempt, letting the degraded-mode collector drop stale and duplicated
// replies.
type attemptTagged interface{ attemptID() int }

func (r opResult) attemptID() int  { return r.Attempt }
func (r auxResult) attemptID() int { return r.Attempt }
