// Package exec implements query execution on the simulated Gamma machine:
// the Operator Manager running selections on each node, the Query Manager
// and Scheduler coordinating multi-site queries on the host, and BERD's
// two-step auxiliary-relation protocol. It is the layer that turns a
// declustering strategy's routing decision into simulated CPU, disk and
// network activity.
package exec

import (
	"repro/internal/core"
)

// AccessKind selects the access method an operator uses.
type AccessKind int

// Access methods of the workload (Section 6) plus the fallback scan.
const (
	AccessClustered    AccessKind = iota // clustered B+-tree range scan
	AccessNonClustered                   // non-clustered B+-tree + tuple fetches
	AccessTIDFetch                       // direct fetch by TID (BERD step two)
	AccessSeqScan                        // full sequential scan (no usable index)
)

func (k AccessKind) String() string {
	switch k {
	case AccessClustered:
		return "clustered"
	case AccessNonClustered:
		return "non-clustered"
	case AccessTIDFetch:
		return "tid-fetch"
	case AccessSeqScan:
		return "seq-scan"
	default:
		return "unknown"
	}
}

// controlBytes is the size of a control message (start, done); the paper's
// Table 2 prices a 100-byte message.
const controlBytes = 100

// auxEntryBytes is the wire size of one auxiliary-relation result entry
// (value + TID + processor).
const auxEntryBytes = 16

// startOp asks a node's Operator Manager to run a selection fragment.
type startOp struct {
	QueryID  int64
	Relation string
	Pred     core.Predicate
	Access   AccessKind
	TIDs     []int64 // AccessTIDFetch only: this node's qualifying TIDs
	ReplyTo  int     // scheduler node
}

// opResult carries an operator's qualifying tuples back to the scheduler;
// its arrival also serves as the operator's completion signal.
type opResult struct {
	QueryID int64
	Node    int
	Tuples  int
}

// auxLookup asks a node to search its fragment of a BERD auxiliary relation.
type auxLookup struct {
	QueryID  int64
	Relation string
	Pred     core.Predicate
	ReplyTo  int
}

// auxResult returns the home processors (and TIDs) of qualifying tuples.
type auxResult struct {
	QueryID int64
	Node    int
	// TIDsByProc maps home processor -> qualifying TIDs stored there.
	TIDsByProc map[int][]int64
	Entries    int
}
