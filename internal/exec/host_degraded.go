package exec

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
)

// RetryPolicy tunes degraded-mode execution. All durations are simulated
// time.
type RetryPolicy struct {
	// OpTimeout guards each wait for operator replies: when it expires,
	// every outstanding operator is redispatched (a lost reply and a dead
	// node look the same from the scheduler).
	OpTimeout sim.Duration
	// QueryDeadline is the end-to-end budget per query; past it the query
	// is abandoned with OutcomeTimedOut.
	QueryDeadline sim.Duration
	// MaxRetries bounds redispatches per logical operator.
	MaxRetries int
	// BackoffBase and BackoffCap shape the exponential backoff between
	// redispatches: base·2^(attempt-1), capped, jittered ±50%.
	BackoffBase sim.Duration
	BackoffCap  sim.Duration
}

// DefaultRetryPolicy returns conservative defaults: operator timeouts well
// above any healthy response time at the paper's load levels, and a retry
// budget that tolerates a fault burst without retrying forever.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		OpTimeout:     2 * sim.Second,
		QueryDeadline: 20 * sim.Second,
		MaxRetries:    3,
		BackoffBase:   5 * sim.Millisecond,
		BackoffCap:    200 * sim.Millisecond,
	}
}

// Degraded configures the scheduler's degraded-mode execution path.
type Degraded struct {
	Policy RetryPolicy
	// View is the scheduler's picture of node/disk health, kept current by
	// the fault injector. Nil means "assume everything available".
	View *fault.View
	// Backup maps a placement slot to the slot whose node holds its
	// chained-declustering replica, or -1 when the fragment has no replica.
	// slots is the slot count of the query's captured topology (0 when no
	// explicit topology is installed; implementations then use their
	// build-time node count).
	Backup func(slot, slots int) int
	// Jitter randomizes backoff delays (a dedicated rng stream, so enabling
	// retries perturbs no other stochastic decision in the run).
	Jitter *rng.Source
}

// available consults the health view, defaulting to available.
func (d *Degraded) available(node int) bool {
	return d.View == nil || d.View.Available(node)
}

// call tracks one logical operator (work against one primary fragment)
// through dispatch, retries, and replica rerouting.
type call struct {
	primary   int  // placement slot whose fragment the work targets
	target    int  // physical node the live attempt was sent to
	attempt   int  // query-unique id of the live attempt
	retries   int  // redispatches so far
	useBackup bool // current replica preference
	done      bool
}

// collector drives a set of logical calls to completion under the degraded
// policy: per-wait timeouts, bounded jittered exponential backoff,
// chained-replica rerouting, and at-most-once accounting (stale or
// duplicated replies are dropped by attempt id).
type collector struct {
	h        *Host
	d        *Degraded
	p        *sim.Proc
	mb       *sim.Mailbox[any]
	deadline sim.Time
	// topo/epoch are the query's captured placement generation: slots
	// resolve to physical nodes through topo for every dispatch, including
	// retries that straddle a rebalance cutover.
	topo      []int
	epoch     int
	calls     []*call
	byAttempt map[int]*call
	used      map[int]bool
	retries   int
	// dispatch sends the request for c's current (target, attempt, backup)
	// state; accept folds a matched success reply into the query result.
	dispatch func(c *call)
	accept   func(c *call, msg any)
}

func newCollector(h *Host, p *sim.Proc, mb *sim.Mailbox[any], deadline sim.Time,
	topo []int, epoch int, primaries []int, used map[int]bool) *collector {
	col := &collector{
		h: h, d: h.Degraded, p: p, mb: mb, deadline: deadline,
		topo: topo, epoch: epoch,
		byAttempt: make(map[int]*call, len(primaries)),
		used:      used,
	}
	for _, slot := range primaries {
		col.calls = append(col.calls, &call{primary: slot, target: -1})
	}
	return col
}

// backupOf returns the slot whose node replicates c's fragment, or -1.
func (col *collector) backupOf(slot int) int {
	if col.d.Backup == nil {
		return -1
	}
	return col.d.Backup(slot, len(col.topo))
}

// pickTarget chooses the replica to dispatch to, honoring the call's
// current preference but falling back to whichever copy is available.
// After it returns true, c.useBackup reports whether the chosen target
// holds the backup copy.
func (col *collector) pickTarget(c *call) (int, bool) {
	prefSlot, altSlot := c.primary, col.backupOf(c.primary)
	if c.useBackup {
		prefSlot, altSlot = altSlot, prefSlot
	}
	if prefSlot >= 0 {
		if phys := physOf(col.topo, prefSlot); col.d.available(phys) {
			return phys, true
		}
	}
	if altSlot >= 0 {
		if phys := physOf(col.topo, altSlot); col.d.available(phys) {
			c.useBackup = !c.useBackup
			return phys, true
		}
	}
	return -1, false
}

// send dispatches the call's next attempt, reporting false when no replica
// of the fragment is available.
func (col *collector) send(c *call) bool {
	target, ok := col.pickTarget(c)
	if !ok {
		return false
	}
	c.target = target
	col.h.nextAttempt++
	c.attempt = col.h.nextAttempt
	col.byAttempt[c.attempt] = c
	col.used[target] = true
	col.dispatch(c)
	return true
}

// retry backs off and redispatches, reporting false when the retry budget
// is exhausted or no replica is available.
func (col *collector) retry(c *call) bool {
	if c.retries >= col.d.Policy.MaxRetries {
		return false
	}
	c.retries++
	col.retries++
	col.h.retriesC.Inc()
	col.backoff(c.retries)
	return col.send(c)
}

// backoff holds the coordinator for base·2^(nth-1), capped and jittered
// ±50% from the dedicated retry stream.
func (col *collector) backoff(nth int) {
	d := col.d.Policy.BackoffBase
	for i := 1; i < nth && d < col.d.Policy.BackoffCap; i++ {
		d *= 2
	}
	if d > col.d.Policy.BackoffCap {
		d = col.d.Policy.BackoffCap
	}
	if col.d.Jitter != nil {
		d = sim.Duration(float64(d) * col.d.Jitter.Uniform(0.5, 1.5))
	}
	if d > 0 {
		col.p.Hold(d)
	}
}

// orphan books a reply that no longer matches an outstanding attempt —
// superseded by a retry, or an interconnect duplicate.
func (col *collector) orphan() {
	col.h.Orphans++
	col.h.orphanC.Inc()
}

// run dispatches every call and collects replies until all complete, the
// deadline passes, or a call runs out of options.
func (col *collector) run() (Outcome, error) {
	remaining := 0
	for _, c := range col.calls {
		if !col.send(c) {
			return OutcomeFailed, fmt.Errorf("exec: no available replica of node %d's fragment", c.primary)
		}
		remaining++
	}
	for remaining > 0 {
		left := sim.Duration(col.deadline - col.p.Now())
		if left <= 0 {
			return OutcomeTimedOut, fmt.Errorf("exec: query deadline exceeded with %d operators outstanding", remaining)
		}
		wait := col.d.Policy.OpTimeout
		if left < wait {
			wait = left
		}
		msg, ok := col.mb.GetTimeout(col.p, wait)
		if !ok {
			if sim.Duration(col.deadline-col.p.Now()) <= 0 {
				return OutcomeTimedOut, fmt.Errorf("exec: query deadline exceeded with %d operators outstanding", remaining)
			}
			// Operator timeout: redispatch everything outstanding, flipping
			// each call's replica preference — a silent primary is retried
			// on its backup and vice versa.
			for _, c := range col.calls {
				if c.done {
					continue
				}
				delete(col.byAttempt, c.attempt)
				c.useBackup = !c.useBackup
				if !col.retry(c) {
					return OutcomeFailed, fmt.Errorf("exec: node %d's operator unresponsive after %d attempts", c.primary, c.retries+1)
				}
			}
			continue
		}
		switch r := msg.(type) {
		case opError:
			c := col.byAttempt[r.Attempt]
			if c == nil || c.done {
				col.orphan() // stale attempt or duplicated error
				continue
			}
			delete(col.byAttempt, c.attempt)
			if !r.Transient {
				// Fail-stop or routing error: this replica is not coming
				// back; go to the other one.
				c.useBackup = !c.useBackup
			}
			if !col.retry(c) {
				return OutcomeFailed, fmt.Errorf("exec: operator on node %d failed: %s", r.Node, r.Msg)
			}
		case attemptTagged:
			c := col.byAttempt[r.attemptID()]
			if c == nil || c.done {
				col.orphan() // late reply for a superseded attempt, or a duplicate
				continue
			}
			c.done = true
			delete(col.byAttempt, c.attempt)
			remaining--
			col.accept(c, msg)
		}
	}
	return OutcomeOK, nil
}

// executeDegraded is submitSelect's degraded-mode twin: the same plan/route/
// schedule/collect flow, but every wait is deadlined, operator failures and
// silences are retried with backoff, and requests reroute to chained
// backups when a replica is down. It trades the legacy path's minimal
// bookkeeping for fault tolerance, so it only runs when Host.Degraded is
// set.
func (h *Host) executeDegraded(p *sim.Proc, relation string, placement core.Placement,
	pred core.Predicate, kind AccessKind) QueryResult {
	d := h.Degraded
	h.nextQID++
	qid := h.nextQID
	topo, epoch := h.topo, h.epoch
	qspan := h.eng.StartSpan()
	res := QueryResult{ID: qid, Pred: pred, Submitted: p.Now()}
	mb := sim.NewMailbox[any](h.eng, fmt.Sprintf("host.q%d", qid))
	h.pending[qid] = mb
	defer delete(h.pending, qid)
	p.SetQID(qid)
	defer p.SetQID(0)

	p.Hold(h.params.InstrTime(h.costs.PlanInstr))
	route := placement.Route(pred)
	if route.EntriesSearched > 0 {
		p.Hold(sim.Milliseconds(h.costs.CSms * float64(route.EntriesSearched)))
	}
	deadline := p.Now() + sim.Time(d.Policy.QueryDeadline)

	used := map[int]bool{}
	participants := route.Participants
	var tidsByProc map[int][]int64

	finish := func(outcome Outcome, err error) QueryResult {
		res.Outcome = outcome
		res.Err = err
		res.ProcessorsUsed = len(used)
		res.Completed = p.Now()
		h.QueriesRun++
		h.completedC.Inc()
		h.fanoutH.Observe(float64(res.ProcessorsUsed))
		h.respH.Observe(res.ResponseMS())
		h.countOutcome(outcome)
		if qspan.Active() {
			qspan.End(obs.NoNode, "query", fmt.Sprintf("q%d %s", qid, relation), qid,
				fmt.Sprintf("%s: %d tuples, %d processors, %d retries",
					outcome, res.Tuples, res.ProcessorsUsed, res.Retries))
		}
		return res
	}

	// BERD two-step: consult the auxiliary relation first.
	if len(route.Aux) > 0 {
		res.AuxProcessors = len(route.Aux)
		tidsByProc = make(map[int][]int64)
		col := newCollector(h, p, mb, deadline, topo, epoch, route.Aux, used)
		col.dispatch = func(c *call) {
			h.net.Send(p, nil, hw.Message{
				From: h.ID, To: c.target, Bytes: controlBytes,
				Payload: auxLookup{QueryID: qid, Relation: relation, Pred: pred,
					ReplyTo: h.ID, Attempt: c.attempt, Backup: c.useBackup, Epoch: epoch},
			})
		}
		col.accept = func(c *call, msg any) {
			res.ServedBy = append(res.ServedBy, ServedOp{
				Fragment: c.primary, Node: c.target, Backup: c.useBackup, Aux: true,
			})
			for proc, tids := range msg.(auxResult).TIDsByProc {
				tidsByProc[proc] = append(tidsByProc[proc], tids...)
			}
		}
		outcome, err := col.run()
		res.Retries += col.retries
		if outcome != OutcomeOK {
			return finish(outcome, err)
		}
		participants = participants[:0]
		for proc := range tidsByProc {
			participants = append(participants, proc)
		}
		sort.Ints(participants) // map order is randomized; the schedule must not be
	}

	// Scheduler: one operator per participant, collected under the policy.
	// Non-TID dispatches are eligible for shared-scan batching: each
	// attempt rides a batch keyed by its replica role and epoch, and the
	// attempt tag echoed in the batched reply lets the collector drop
	// stale batch replies exactly as for lone operators.
	share := h.Shared != nil && !(tidsByProc != nil && h.BERDFetchByTID)
	col := newCollector(h, p, mb, deadline, topo, epoch, participants, used)
	col.dispatch = func(c *call) {
		if share {
			h.Shared.enqueue(c.target, relation, pred, kind, qid, c.attempt, c.useBackup, epoch)
			return
		}
		op := startOp{QueryID: qid, Relation: relation, Pred: pred, ReplyTo: h.ID,
			Access: kind, Attempt: c.attempt, Backup: c.useBackup, Epoch: epoch}
		if tidsByProc != nil && h.BERDFetchByTID {
			op.Access = AccessTIDFetch
			op.TIDs = tidsByProc[c.primary]
		}
		h.net.Send(p, nil, hw.Message{
			From: h.ID, To: c.target, Bytes: controlBytes, Payload: op,
		})
	}
	col.accept = func(c *call, msg any) {
		r := msg.(opResult)
		res.Tuples += r.Tuples
		res.ServedBy = append(res.ServedBy, ServedOp{
			Fragment: c.primary, Node: c.target, Backup: c.useBackup, Tuples: r.Tuples,
		})
	}
	outcome, err := col.run()
	res.Retries += col.retries
	if outcome == OutcomeOK && res.Retries > 0 {
		outcome = OutcomeRetried
	}
	return finish(outcome, err)
}

// countOutcome mirrors a query outcome into the metrics registry.
func (h *Host) countOutcome(o Outcome) {
	switch o {
	case OutcomeOK:
		h.okC.Inc()
	case OutcomeRetried:
		h.retriedC.Inc()
	case OutcomeTimedOut:
		h.timedOutC.Inc()
	case OutcomeFailed:
		h.failedC.Inc()
	}
}
