package exec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Parallel aggregation is the other dataflow the Gamma substrate runs
// beside selection and join: every node computes partial aggregates over
// its fragment (optionally filtered by a predicate and routed through the
// declustering strategy's localization), and the scheduler combines the
// partials. COUNT/SUM/MIN/MAX decompose exactly this way; AVG is SUM/COUNT
// at the coordinator.

// AggKind selects the aggregate function. It is an alias of plan.AggFn:
// the plan layer owns the aggregate vocabulary.
type AggKind = plan.AggFn

// Supported aggregates, re-exported for the execution layer's historical
// spelling.
const (
	AggCount = plan.AggCount
	AggSum   = plan.AggSum
	AggMin   = plan.AggMin
	AggMax   = plan.AggMax
)

// AggSpec describes one aggregate query: the function over Attr for the
// tuples matching Pred (Pred.Attr also drives routing, so a predicate on a
// partitioning attribute localizes the aggregation).
type AggSpec struct {
	Relation string
	Kind     AggKind
	Attr     int
	Pred     core.Predicate
	Access   AccessKind
}

// AggResult is a completed aggregate.
type AggResult struct {
	ID             int64
	Value          int64
	Tuples         int // tuples that matched the predicate
	ProcessorsUsed int
	Submitted      sim.Time
	Completed      sim.Time
}

// ResponseMS reports the elapsed simulated time in milliseconds.
func (r AggResult) ResponseMS() float64 {
	return sim.Duration(r.Completed - r.Submitted).Milliseconds()
}

// aggOp asks a node for its partial aggregate.
type aggOp struct {
	QueryID  int64
	Relation string
	Kind     AggKind
	Attr     int
	Pred     core.Predicate
	Access   AccessKind
	ReplyTo  int
}

// aggPartial is one node's contribution.
type aggPartial struct {
	QueryID int64
	Node    int
	Value   int64
	Tuples  int
}

// runAggregate computes the node-local partial: the same access path a
// selection would use, then a per-tuple aggregation charge, and a
// fixed-size partial result back to the scheduler.
func (n *Node) runAggregate(p *sim.Proc, req aggOp) {
	frag := n.fragment(req.Relation)
	var acc storage.Access
	switch req.Access {
	case AccessClustered:
		acc = mustAccess(frag.SearchClustered(req.Pred.Lo, req.Pred.Hi))
	case AccessNonClustered:
		acc = mustAccess(frag.SearchNonClustered(req.Pred.Attr, req.Pred.Lo, req.Pred.Hi))
	default:
		acc = frag.Scan(req.Pred.Attr, req.Pred.Lo, req.Pred.Hi)
	}
	h := n.heatFor(req.Relation, false)
	n.mustCharge(p, acc, h)
	h.Account(len(acc.IndexPages), len(acc.DataPages), 0, false)
	n.OpsExecuted++

	var value int64
	first := true
	for _, t := range acc.Tuples {
		n.CPU.Execute(p, n.costs.JoinProbeInstr) // per-tuple aggregation work
		v := t.Attrs[req.Attr]
		switch req.Kind {
		case AggCount:
			value++
		case AggSum:
			value += v
		case AggMin:
			if first || v < value {
				value = v
			}
		case AggMax:
			if first || v > value {
				value = v
			}
		}
		first = false
	}
	n.net.Send(p, n.CPU, hw.Message{
		From: n.ID, To: req.ReplyTo, Bytes: controlBytes,
		Payload: aggPartial{QueryID: req.QueryID, Node: n.ID, Value: value, Tuples: len(acc.Tuples)},
	})
}

// ExecuteAggregate runs one aggregate query from the calling process,
// routing through the relation's declustering strategy exactly as a
// selection would (BERD two-step routing degrades to all processors here;
// the auxiliary step yields TIDs, which partial aggregation does not need).
func (h *Host) ExecuteAggregate(p *sim.Proc, spec AggSpec) AggResult {
	placement, ok := h.placements[spec.Relation]
	if !ok {
		panic(fmt.Sprintf("exec: unknown relation %q", spec.Relation))
	}
	h.nextQID++
	qid := h.nextQID
	res := AggResult{ID: qid, Submitted: p.Now()}
	mb := sim.NewMailbox[any](h.eng, fmt.Sprintf("host.agg%d", qid))
	h.pending[qid] = mb
	defer delete(h.pending, qid)

	p.Hold(h.params.InstrTime(h.costs.PlanInstr))
	route := placement.Route(spec.Pred)
	if route.EntriesSearched > 0 {
		p.Hold(sim.Milliseconds(h.costs.CSms * float64(route.EntriesSearched)))
	}
	participants := route.Participants
	if len(route.Aux) > 0 {
		// Aggregation needs only the owning processors; without running
		// the auxiliary step we conservatively ask everyone.
		participants = allNodes(placement.Processors())
	}

	for _, node := range participants {
		h.net.Send(p, nil, hw.Message{
			From: h.ID, To: node, Bytes: controlBytes,
			Payload: aggOp{QueryID: qid, Relation: spec.Relation, Kind: spec.Kind,
				Attr: spec.Attr, Pred: spec.Pred, Access: spec.Access, ReplyTo: h.ID},
		})
	}
	first := true
	for i := 0; i < len(participants); i++ {
		part := waitFor[aggPartial](p, mb)
		res.Tuples += part.Tuples
		if part.Tuples == 0 {
			continue
		}
		switch spec.Kind {
		case AggCount, AggSum:
			res.Value += part.Value
		case AggMin:
			if first || part.Value < res.Value {
				res.Value = part.Value
			}
		case AggMax:
			if first || part.Value > res.Value {
				res.Value = part.Value
			}
		}
		first = false
	}
	res.ProcessorsUsed = len(participants)
	res.Completed = p.Now()
	h.QueriesRun++
	return res
}

func allNodes(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}
