package exec

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

// runConcurrent drives one query per predicate, all submitted at t=0, on a
// fresh rig, and returns the per-query results in predicate order plus the
// rig for post-run inspection.
func runConcurrent(t *testing.T, share bool, preds []core.Predicate) ([]QueryResult, *rig) {
	t.Helper()
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := newRig(t, core.NewRangeForRelation(rel, storage.Unique1, 2))
	if share {
		r.host.EnableSharing(5 * sim.Millisecond)
	}
	results := make([]QueryResult, len(preds))
	done := 0
	for i := range preds {
		i := i
		r.eng.Spawn("term", func(p *sim.Proc) {
			results[i] = r.host.Execute(p, preds[i], chooser)
			done++
			if done == len(preds) {
				r.eng.Stop()
			}
		})
	}
	if err := r.eng.RunUntil(sim.Time(120 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if done != len(preds) {
		t.Fatalf("only %d of %d queries completed", done, len(preds))
	}
	return results, r
}

// answer is the schedule-independent part of a QueryResult: everything a
// client would consider "the result", with timing stripped.
type answer struct {
	Pred           core.Predicate
	Tuples         int
	ProcessorsUsed int
	AuxProcessors  int
	Value          int64
	Served         []ServedOp
}

func answerOf(r QueryResult) answer {
	served := append([]ServedOp(nil), r.ServedBy...)
	// ServedBy is in completion order, which sharing may permute across
	// nodes; the per-fragment attribution must still match exactly.
	sort.Slice(served, func(i, j int) bool {
		if served[i].Fragment != served[j].Fragment {
			return served[i].Fragment < served[j].Fragment
		}
		return !served[i].Aux && served[j].Aux
	})
	return answer{
		Pred: r.Pred, Tuples: r.Tuples,
		ProcessorsUsed: r.ProcessorsUsed, AuxProcessors: r.AuxProcessors,
		Value: r.Value, Served: served,
	}
}

// TestSharedBatchMatchesUnshared is the tentpole's correctness property:
// a batch of concurrent selections executed through the shared-scan manager
// returns, query for query, exactly the answers the same selections produce
// unshared. Only timing may differ.
func TestSharedBatchMatchesUnshared(t *testing.T) {
	cases := map[string][]core.Predicate{
		"identical": func() []core.Predicate {
			preds := make([]core.Predicate, 12)
			for i := range preds {
				preds[i] = core.Predicate{Attr: storage.Unique2, Lo: 40, Hi: 79}
			}
			return preds
		}(),
		"overlapping": func() []core.Predicate {
			preds := make([]core.Predicate, 10)
			for i := range preds {
				preds[i] = core.Predicate{Attr: storage.Unique2, Lo: int64(i * 5), Hi: int64(i*5 + 30)}
			}
			return preds
		}(),
		"mixed-access": {
			{Attr: storage.Unique2, Lo: 10, Hi: 49},
			{Attr: storage.Unique2, Lo: 20, Hi: 59},
			{Attr: storage.Unique1, Lo: 100, Hi: 100},
			{Attr: storage.Unique1, Lo: 100, Hi: 100},
			{Attr: storage.Unique1, Lo: 30, Hi: 60},
		},
	}
	for name, preds := range cases {
		t.Run(name, func(t *testing.T) {
			off, _ := runConcurrent(t, false, preds)
			on, r := runConcurrent(t, true, preds)
			stats := r.host.Shared.Stats()
			if stats.SharedOps == 0 {
				t.Fatalf("no sharing happened; the property is vacuous: %+v", stats)
			}
			for i := range preds {
				a, b := answerOf(off[i]), answerOf(on[i])
				if !reflect.DeepEqual(a, b) {
					t.Errorf("query %d diverged under sharing:\nunshared %+v\nshared   %+v", i, a, b)
				}
				if on[i].Err != nil {
					t.Errorf("query %d failed under sharing: %v", i, on[i].Err)
				}
			}
			var req, read int64
			for _, n := range r.nodes {
				req += n.SharedPagesRequested
				read += n.SharedPagesRead
			}
			if req == 0 || read == 0 || read > req {
				t.Errorf("bad shared page accounting: requested %d, read %d", req, read)
			}
		})
	}
}

// TestSharedBatchDedupsPages: identical concurrent selections must collapse
// to (nearly) one disk pass — distinct pages read well below pages requested.
func TestSharedBatchDedupsPages(t *testing.T) {
	preds := make([]core.Predicate, 8)
	for i := range preds {
		preds[i] = core.Predicate{Attr: storage.Unique2, Lo: 0, Hi: 99}
	}
	_, r := runConcurrent(t, true, preds)
	stats := r.host.Shared.Stats()
	var req, read int64
	for _, n := range r.nodes {
		req += n.SharedPagesRequested
		read += n.SharedPagesRead
	}
	// 8 identical members per fragment batch: the union is one member's page
	// set, so at most ~1/8 of the requests hit the pool.
	if read*4 > req {
		t.Fatalf("identical batch barely deduped: %d read of %d requested (%s)", read, req, stats)
	}
	if stats.Batches == 0 || stats.BatchedOps != int64(len(preds)*2) {
		t.Fatalf("expected %d batched ops across 2 nodes, got %+v", len(preds)*2, stats)
	}
}

// TestSubmitMatchesExecute: the deprecated Execute wrapper and an explicit
// plan submission are the same query — byte-identical results, timing
// included, because the wrapper is a pure rewrite.
func TestSubmitMatchesExecute(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	pl := core.NewRangeForRelation(rel, storage.Unique1, 2)
	pred := core.Predicate{Attr: storage.Unique2, Lo: 50, Hi: 69}

	a := newRig(t, pl).execute(t, pred)

	r := newRig(t, pl)
	var b QueryResult
	r.eng.Spawn("probe", func(p *sim.Proc) {
		b = r.host.Submit(p, plan.NewIndexScan(rel.Name, pred, AccessClustered))
		r.eng.Stop()
	})
	if err := r.eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Execute and Submit diverged:\n%+v\n%+v", a, b)
	}
}

// TestSubmitAutoAccess: AccessAuto resolves through the relation's policy.
func TestSubmitAutoAccess(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	pl := core.NewRangeForRelation(rel, storage.Unique1, 2)
	pred := core.Predicate{Attr: storage.Unique1, Lo: 100, Hi: 100}

	a := newRig(t, pl).execute(t, pred)

	r := newRig(t, pl)
	r.host.SetAccessPolicy(rel.Name, chooser)
	var b QueryResult
	r.eng.Spawn("probe", func(p *sim.Proc) {
		b = r.host.Submit(p, plan.NewIndexScan(rel.Name, pred, plan.AccessAuto))
		r.eng.Stop()
	})
	if err := r.eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("AccessAuto diverged from the policy's explicit kind:\n%+v\n%+v", a, b)
	}
}

// TestSubmitAutoAccessNeedsPolicy: an AccessAuto scan of a relation with no
// installed policy is a programming error and must surface.
func TestSubmitAutoAccessNeedsPolicy(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := newRig(t, core.NewRangeForRelation(rel, storage.Unique1, 2))
	r.eng.Spawn("probe", func(p *sim.Proc) {
		r.host.Submit(p, plan.NewIndexScan(rel.Name,
			core.Predicate{Attr: storage.Unique2, Lo: 0, Hi: 9}, plan.AccessAuto))
	})
	if err := r.eng.RunUntil(sim.Time(10 * sim.Second)); err == nil {
		t.Fatal("AccessAuto without a policy should surface as an error")
	}
}

// TestSubmitFilterIntersection: a Filter over an IndexScan on the same
// attribute executes the intersected range.
func TestSubmitFilterIntersection(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	pl := core.NewRangeForRelation(rel, storage.Unique1, 2)

	a := newRig(t, pl).execute(t, core.Predicate{Attr: storage.Unique2, Lo: 40, Hi: 60})

	r := newRig(t, pl)
	var b QueryResult
	r.eng.Spawn("probe", func(p *sim.Proc) {
		b = r.host.Submit(p, plan.NewFilter(
			core.Predicate{Attr: storage.Unique2, Lo: 40, Hi: 79},
			plan.NewIndexScan(rel.Name,
				core.Predicate{Attr: storage.Unique2, Lo: 30, Hi: 60}, AccessClustered)))
		r.eng.Stop()
	})
	if err := r.eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("filter intersection diverged from the direct range:\n%+v\n%+v", a, b)
	}
}

// TestSubmitAggregatePlan: an Aggregate-rooted plan runs the partial
// aggregation protocol and carries the value in QueryResult.Value.
func TestSubmitAggregatePlan(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	pl := core.NewRangeForRelation(rel, storage.Unique1, 2)
	pred := core.Predicate{Attr: storage.Unique2, Lo: 0, Hi: 99}

	r1 := newRig(t, pl)
	var want AggResult
	r1.eng.Spawn("probe", func(p *sim.Proc) {
		want = r1.host.ExecuteAggregate(p, AggSpec{
			Relation: rel.Name, Kind: AggSum, Attr: storage.Unique1,
			Pred: pred, Access: AccessClustered,
		})
		r1.eng.Stop()
	})
	if err := r1.eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}

	r2 := newRig(t, pl)
	var got QueryResult
	r2.eng.Spawn("probe", func(p *sim.Proc) {
		got = r2.host.Submit(p, plan.NewAggregate(AggSum, storage.Unique1,
			plan.NewIndexScan(rel.Name, pred, AccessClustered)))
		r2.eng.Stop()
	})
	if err := r2.eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value || got.Tuples != want.Tuples ||
		got.ProcessorsUsed != want.ProcessorsUsed {
		t.Fatalf("aggregate plan %+v != direct %+v", got, want)
	}
	if got.Value == 0 {
		t.Fatal("sum over a hundred tuples cannot be zero")
	}
}

// Sharing composes with the degraded scheduler: dispatches ride batches
// tagged with their attempt epoch, so a healthy run answers exactly like
// the lone-operator path.
func TestSharingComposesWithDegradedHealthy(t *testing.T) {
	r := newDegradedRig(t)
	s := r.host.EnableSharing(sim.Millisecond)
	res := r.execute(t)
	if res.Tuples != 20 {
		t.Fatalf("got %d tuples, want 20", res.Tuples)
	}
	if !res.Outcome.Succeeded() || res.Retries != 0 {
		t.Fatalf("outcome = %v retries = %d, want clean success", res.Outcome, res.Retries)
	}
	if st := s.Stats(); st.Batches == 0 || st.BatchedOps != 2 {
		t.Fatalf("sharing stats = %+v, want both operators batched", st)
	}
}

// A transient disk error under sharing: the failed member's error reply
// carries its attempt tag, the collector retries it through a fresh batch,
// and the query completes without double-counting — the stale-reply
// discipline for batches matches the lone-operator one.
func TestSharingComposesWithDegradedTransientFault(t *testing.T) {
	r := newDegradedRig(t)
	r.host.EnableSharing(sim.Millisecond)
	r.disks[0].FailNextReads(1)
	res := r.execute(t)
	if res.Tuples != 20 {
		t.Fatalf("got %d tuples, want 20 exactly once", res.Tuples)
	}
	if !res.Outcome.Succeeded() {
		t.Fatalf("outcome = %v, err = %v", res.Outcome, res.Err)
	}
	if res.Retries == 0 {
		t.Fatal("transient error should have cost at least one retry")
	}
}

// A batch reply that arrives after its member timed out and was retried:
// the reply's stale attempt tag must make the collector drop it rather
// than double-count. A crash-restart window forces exactly that — the
// crashed node's first batch never answers, the retry reroutes, and any
// late replies from the restarted node are stale by epoch.
func TestSharingDropsStaleBatchReplies(t *testing.T) {
	r := newDegradedRig(t)
	r.host.EnableSharing(sim.Millisecond)
	r.eng.Schedule(0, func() { r.nodes[0].Crash() })
	r.eng.Schedule(sim.Second, func() {
		r.nodes[0].Restart()
		r.view.SetNode(0, true)
	})
	res := r.execute(t)
	if res.Tuples != 20 {
		t.Fatalf("got %d tuples, want 20 exactly once", res.Tuples)
	}
	if !res.Outcome.Succeeded() {
		t.Fatalf("outcome = %v, err = %v", res.Outcome, res.Err)
	}
}
