package exec

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/storage"
)

// rig builds a minimal two-node machine (nodes 0,1 + host endpoint 2) with
// a tiny fragment on each node, suitable for driving the exec layer
// directly.
type rig struct {
	eng   *sim.Engine
	net   *hw.Network
	nodes []*Node
	host  *Host
	rel   *storage.Relation
}

func newRig(t testing.TB, placement core.Placement) *rig {
	t.Helper()
	eng := sim.New()
	params := hw.DefaultParams()
	params.NumProcessors = 2
	costs := DefaultCosts()
	streams := rng.NewFactory(5)

	cpus := make([]*hw.CPU, 3)
	for i := 0; i < 2; i++ {
		cpus[i] = hw.NewCPU(eng, "cpu", params)
	}
	net := hw.NewNetwork(eng, params, cpus)

	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := &rig{eng: eng, net: net, rel: rel}
	layout := storage.Layout{TuplesPerPage: 8, IndexFanout: 8, IndexLeafCap: 8}
	for i := 0; i < 2; i++ {
		disk := hw.NewDisk(eng, "disk", params, cpus[i], streams.Stream("lat"))
		pool := buffer.NewPool(eng, "buf", 16, disk)
		n := NewNode(eng, i, params, costs, net, cpus[i], disk, pool)
		var tuples []storage.Tuple
		for _, tup := range rel.Tuples {
			if placement.HomeOf(tup) == i {
				tuples = append(tuples, tup)
			}
		}
		alloc := storage.NewAllocator(10000)
		frag := storage.BuildFragment(i, tuples, storage.Unique2, layout, alloc)
		frag.AddIndex(storage.Unique2, alloc)
		frag.AddIndex(storage.Unique1, alloc)
		n.AddFragment(rel.Name, frag)
		n.Start()
		r.nodes = append(r.nodes, n)
	}
	r.host = NewHost(eng, 2, params, net, costs)
	r.host.AddRelation(rel.Name, placement)
	r.host.Start()
	return r
}

func chooser(pred core.Predicate) AccessKind {
	if pred.Attr == storage.Unique1 {
		return AccessNonClustered
	}
	return AccessClustered
}

func (r *rig) execute(t *testing.T, pred core.Predicate) QueryResult {
	t.Helper()
	var res QueryResult
	r.eng.Spawn("probe", func(p *sim.Proc) {
		res = r.host.Execute(p, pred, chooser)
		r.eng.Stop()
	})
	if err := r.eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("query never completed")
	}
	return res
}

func TestHostExecutesAcrossNodes(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := newRig(t, core.NewRangeForRelation(rel, storage.Unique1, 2))
	// Range on B reaches both nodes.
	res := r.execute(t, core.Predicate{Attr: storage.Unique2, Lo: 50, Hi: 69})
	if res.Tuples != 20 {
		t.Fatalf("got %d tuples", res.Tuples)
	}
	if res.ProcessorsUsed != 2 {
		t.Fatalf("used %d processors", res.ProcessorsUsed)
	}
	if r.nodes[0].OpsExecuted+r.nodes[1].OpsExecuted != 2 {
		t.Fatal("both nodes should run one operator")
	}
	if r.nodes[0].TuplesShipped+r.nodes[1].TuplesShipped != 20 {
		t.Fatal("shipped-tuple accounting wrong")
	}
	if r.host.QueriesRun != 1 {
		t.Fatalf("host ran %d queries", r.host.QueriesRun)
	}
}

func TestNonClusteredAccessFindsSingleTuple(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := newRig(t, core.NewRangeForRelation(rel, storage.Unique1, 2))
	res := r.execute(t, core.Predicate{Attr: storage.Unique1, Lo: 100, Hi: 100})
	if res.Tuples != 1 {
		t.Fatalf("got %d tuples", res.Tuples)
	}
	if res.ProcessorsUsed != 1 {
		t.Fatalf("used %d processors", res.ProcessorsUsed)
	}
	if res.ResponseMS() <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestEmptyResultStillCompletes(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := newRig(t, core.NewRangeForRelation(rel, storage.Unique1, 2))
	res := r.execute(t, core.Predicate{Attr: storage.Unique2, Lo: 5000, Hi: 5100})
	if res.Tuples != 0 {
		t.Fatalf("got %d tuples from an empty range", res.Tuples)
	}
}

func TestQueriesShareNodesConcurrently(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := newRig(t, core.NewRangeForRelation(rel, storage.Unique1, 2))
	done := 0
	for q := 0; q < 4; q++ {
		lo := int64(q * 30)
		r.eng.Spawn("probe", func(p *sim.Proc) {
			res := r.host.Execute(p, core.Predicate{Attr: storage.Unique2, Lo: lo, Hi: lo + 9}, chooser)
			if res.Tuples != 10 {
				t.Errorf("query got %d tuples", res.Tuples)
			}
			done++
		})
	}
	if err := r.eng.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Fatalf("only %d of 4 concurrent queries completed", done)
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessClustered.String() != "clustered" ||
		AccessNonClustered.String() != "non-clustered" ||
		AccessTIDFetch.String() != "tid-fetch" {
		t.Fatal("AccessKind names wrong")
	}
	if AccessKind(99).String() != "unknown" {
		t.Fatal("unknown access kind should say so")
	}
}

func TestDefaultCosts(t *testing.T) {
	c := DefaultCosts()
	if c.IndexPageInstr <= 0 || c.PlanInstr <= 0 || c.CSms < 0 {
		t.Fatalf("bad defaults: %+v", c)
	}
	// Index-page search must be far cheaper than full page processing.
	if c.IndexPageInstr >= hw.DefaultParams().ReadPageInstr {
		t.Fatal("index page search should cost less than data page processing")
	}
}

func TestNodePanicsOnUnknownMessage(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := newRig(t, core.NewRangeForRelation(rel, storage.Unique1, 2))
	r.eng.Spawn("rogue", func(p *sim.Proc) {
		r.net.Send(p, nil, hw.Message{From: 2, To: 0, Bytes: 100, Payload: "garbage"})
	})
	if err := r.eng.RunUntil(sim.Time(10 * sim.Second)); err == nil {
		t.Fatal("unknown message type should surface as an error")
	}
}

func TestHostPanicsOnUnknownQueryResult(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := newRig(t, core.NewRangeForRelation(rel, storage.Unique1, 2))
	r.eng.Spawn("rogue", func(p *sim.Proc) {
		r.net.Send(p, nil, hw.Message{From: 0, To: 2, Bytes: 100,
			Payload: opResult{QueryID: 777, Node: 0}})
	})
	if err := r.eng.RunUntil(sim.Time(10 * sim.Second)); err == nil {
		t.Fatal("orphan result should surface as an error")
	}
}

func TestResultsShipInPackets(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := newRig(t, core.NewRangeForRelation(rel, storage.Unique1, 2))
	// 100 tuples * 208B > 8KB: the result must split into multiple packets.
	before := r.net.Sent(0) + r.net.Sent(1)
	res := r.execute(t, core.Predicate{Attr: storage.Unique2, Lo: 0, Hi: 99})
	if res.Tuples != 100 {
		t.Fatalf("got %d tuples", res.Tuples)
	}
	packets := r.net.Sent(0) + r.net.Sent(1) - before
	if packets < 3 {
		t.Fatalf("expected multi-packet results, saw %d packets", packets)
	}
}
