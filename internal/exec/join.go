package exec

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/storage"
)

// The parallel hash join is the Gamma substrate's signature dataflow (the
// paper's Operator Manager "models the relational operators"): the build
// relation is scanned in parallel on its home nodes and repartitioned by
// hashing the join attribute through a split table; the receiving join
// operators build in-memory hash tables; the probe relation streams through
// the same split table and probes. End-of-stream control messages close
// each phase, exactly as Gamma's split tables did.
//
// When both relations are hash-declustered on their join attributes with
// the same randomizing function (core.HashPlacement), the split table
// degenerates to the identity and the join runs entirely node-locally —
// the join-locality benefit of declustering by join key.

// JoinSpec describes one equi-join.
type JoinSpec struct {
	BuildRelation string
	BuildAttr     int
	ProbeRelation string
	ProbeAttr     int
	// BuildPred/ProbePred optionally filter the inputs during the scans
	// (zero values scan everything).
	BuildPred *core.Predicate
	ProbePred *core.Predicate
}

// JoinResult summarizes one executed join.
type JoinResult struct {
	ID             int64
	Matches        int
	BuildTuples    int
	ProbeTuples    int
	Repartitioned  bool // false when co-location made every transfer local
	ProcessorsUsed int
	Submitted      sim.Time
	Completed      sim.Time
}

// ResponseMS reports the join's elapsed simulated time in milliseconds.
func (r JoinResult) ResponseMS() float64 {
	return sim.Duration(r.Completed - r.Submitted).Milliseconds()
}

// join message types.
type joinPhase int

const (
	phaseBuild joinPhase = iota
	phaseProbe
)

// joinScan asks a node to scan its fragment and route tuples through the
// split table.
type joinScan struct {
	QueryID  int64
	Relation string
	Attr     int
	Phase    joinPhase
	Pred     *core.Predicate
	// Local, when true, short-circuits the split table: every tuple stays
	// on the scanning node (co-located join).
	Local    bool
	Targets  int // join operators run on nodes 0..Targets-1
	Scanners int // how many scanners feed this phase (for end-of-stream)
	ReplyTo  int
}

// joinBatch carries repartitioned tuples to a join operator. ReplyTo and
// Scanners ride along so the receiving node can start the operator even
// when a remote batch outruns its own scan request.
type joinBatch struct {
	QueryID  int64
	Phase    joinPhase
	Attr     int
	Tuples   []storage.Tuple
	ReplyTo  int
	Scanners int
}

// joinEnd signals that one scanner has finished a phase.
type joinEnd struct {
	QueryID  int64
	Phase    joinPhase
	ReplyTo  int
	Scanners int
}

// joinDone reports one join operator's matches to the scheduler.
type joinDone struct {
	QueryID int64
	Node    int
	Matches int
	Built   int // build tuples this operator received
	Probed  int // probe tuples this operator processed
}

// joinWorker is the per-node join operator for one query: it owns the hash
// table and a private mailbox through which the Operator Manager feeds it
// batches and end-of-stream markers.
type joinWorker struct {
	inbox *sim.Mailbox[any]
}

// routeJoinMsg delivers a join message to the query's worker, creating it
// on first contact.
func (n *Node) routeJoinMsg(qid int64, replyTo int, scanners int, msg any) {
	w := n.joins[qid]
	if w == nil {
		w = &joinWorker{inbox: sim.NewMailbox[any](n.eng, fmt.Sprintf("node%d.join.q%d", n.ID, qid))}
		n.joins[qid] = w
		n.eng.Spawn(fmt.Sprintf("node%d.joinop.q%d", n.ID, qid), func(p *sim.Proc) {
			n.runJoinOperator(p, qid, replyTo, scanners, w)
			delete(n.joins, qid)
		})
	}
	w.inbox.Put(msg)
}

// runJoinScan scans the local fragment of one join input and routes each
// tuple through the split table (hash on the join attribute modulo the
// number of join operators), batching per destination. A final joinEnd goes
// to every join operator so it can detect end-of-stream.
func (n *Node) runJoinScan(p *sim.Proc, req joinScan) {
	frag := n.fragment(req.Relation)
	var acc storage.Access
	if req.Pred != nil {
		acc = frag.Scan(req.Pred.Attr, req.Pred.Lo, req.Pred.Hi)
	} else {
		lo, hi := minMaxInt64()
		acc = frag.Scan(req.Attr, lo, hi)
	}
	h := n.heatFor(req.Relation, false)
	n.mustCharge(p, acc, h)
	h.Account(len(acc.IndexPages), len(acc.DataPages), 0, false)
	n.OpsExecuted++

	// Split table: partition the qualifying tuples by join-attribute hash.
	buckets := make(map[int][]storage.Tuple)
	for _, t := range acc.Tuples {
		dst := n.ID
		if !req.Local {
			dst = core.JoinBucket(t.Attrs[req.Attr], req.Targets)
		}
		buckets[dst] = append(buckets[dst], t)
		n.CPU.Execute(p, n.costs.JoinHashInstr)
	}
	dsts := make([]int, 0, len(buckets))
	for d := range buckets {
		dsts = append(dsts, d)
	}
	sort.Ints(dsts) // deterministic send order
	for _, dst := range dsts {
		tuples := buckets[dst]
		n.TuplesShipped += int64(len(tuples))
		batch := joinBatch{QueryID: req.QueryID, Phase: req.Phase, Attr: req.Attr,
			Tuples: tuples, ReplyTo: req.ReplyTo, Scanners: req.Scanners}
		if dst == n.ID {
			// Local delivery: no network, straight to the worker.
			n.routeJoinMsg(req.QueryID, req.ReplyTo, req.Scanners, batch)
			continue
		}
		n.net.Send(p, n.CPU, hw.Message{
			From: n.ID, To: dst,
			Bytes:   n.params.TupleBytes(len(tuples)) + controlBytes,
			Payload: batch,
		})
	}
	// End-of-stream to every join operator.
	for dst := 0; dst < req.Targets; dst++ {
		end := joinEnd{QueryID: req.QueryID, Phase: req.Phase,
			ReplyTo: req.ReplyTo, Scanners: req.Scanners}
		if dst == n.ID {
			n.routeJoinMsg(req.QueryID, req.ReplyTo, req.Scanners, end)
			continue
		}
		n.net.Send(p, n.CPU, hw.Message{
			From: n.ID, To: dst, Bytes: controlBytes, Payload: end,
		})
	}
}

// runJoinOperator consumes build batches into a hash table, then probes it
// with the probe stream, and finally reports its match count to the
// scheduler. Probe batches arriving before the build phase has fully closed
// are buffered, preserving the build-before-probe barrier without global
// synchronization.
func (n *Node) runJoinOperator(p *sim.Proc, qid int64, replyTo, scanners int, w *joinWorker) {
	table := make(map[int64][]storage.Tuple)
	var pendingProbe []joinBatch
	buildEnds, probeEnds := 0, 0
	matches, builtCount, probedCount := 0, 0, 0
	built := false

	probe := func(b joinBatch) {
		for _, t := range b.Tuples {
			n.CPU.Execute(p, n.costs.JoinProbeInstr)
			matches += len(table[t.Attrs[b.Attr]])
		}
		probedCount += len(b.Tuples)
	}

	for buildEnds < scanners || probeEnds < scanners {
		switch m := w.inbox.Get(p).(type) {
		case joinBatch:
			if m.Phase == phaseBuild {
				for _, t := range m.Tuples {
					n.CPU.Execute(p, n.costs.JoinBuildInstr)
					table[t.Attrs[m.Attr]] = append(table[t.Attrs[m.Attr]], t)
				}
				builtCount += len(m.Tuples)
			} else if built {
				probe(m)
			} else {
				pendingProbe = append(pendingProbe, m)
			}
		case joinEnd:
			if m.Phase == phaseBuild {
				buildEnds++
				if buildEnds == scanners {
					built = true
					for _, b := range pendingProbe {
						probe(b)
					}
					pendingProbe = nil
				}
			} else {
				probeEnds++
			}
		default:
			panic(fmt.Sprintf("exec: join operator got %T", m))
		}
	}
	n.OpsExecuted++
	// Ship the result (matched pairs) with the completion report.
	bytes := matches*2*n.params.TupleSize + controlBytes
	n.net.Send(p, n.CPU, hw.Message{
		From: n.ID, To: replyTo, Bytes: bytes,
		Payload: joinDone{QueryID: qid, Node: n.ID, Matches: matches,
			Built: builtCount, Probed: probedCount},
	})
}

// ExecuteJoin runs an equi-join between two registered relations from the
// calling process and blocks until the matched count is assembled.
func (h *Host) ExecuteJoin(p *sim.Proc, spec JoinSpec) JoinResult {
	build, ok := h.placements[spec.BuildRelation]
	if !ok {
		panic(fmt.Sprintf("exec: unknown relation %q", spec.BuildRelation))
	}
	probe, ok := h.placements[spec.ProbeRelation]
	if !ok {
		panic(fmt.Sprintf("exec: unknown relation %q", spec.ProbeRelation))
	}
	h.nextQID++
	qid := h.nextQID
	res := JoinResult{ID: qid, Submitted: p.Now(), Repartitioned: true}
	mb := sim.NewMailbox[any](h.eng, fmt.Sprintf("host.join%d", qid))
	h.pending[qid] = mb
	defer delete(h.pending, qid)

	p.Hold(h.params.InstrTime(h.costs.PlanInstr))
	targets := build.Processors()
	if probe.Processors() != targets {
		panic(fmt.Sprintf("exec: join inputs declustered over %d and %d processors",
			targets, probe.Processors()))
	}

	// Co-location: both relations hash-declustered on their join
	// attributes share the randomizing function, so every tuple's join
	// partner already lives on its own node.
	if hb, okB := build.(*core.HashPlacement); okB {
		if hp, okP := probe.(*core.HashPlacement); okP {
			if hb.Attr() == spec.BuildAttr && hp.Attr() == spec.ProbeAttr &&
				hb.Processors() == probe.Processors() {
				res.Repartitioned = false
			}
		}
	}

	scanners := targets // every node scans its fragment of each input
	for _, phase := range []joinPhase{phaseBuild, phaseProbe} {
		rel, attr, pred := spec.BuildRelation, spec.BuildAttr, spec.BuildPred
		if phase == phaseProbe {
			rel, attr, pred = spec.ProbeRelation, spec.ProbeAttr, spec.ProbePred
		}
		for node := 0; node < scanners; node++ {
			h.net.Send(p, nil, hw.Message{
				From: h.ID, To: node, Bytes: controlBytes,
				Payload: joinScan{
					QueryID: qid, Relation: rel, Attr: attr, Phase: phase,
					Pred: pred, Local: !res.Repartitioned,
					Targets: targets, Scanners: scanners, ReplyTo: h.ID,
				},
			})
		}
	}
	for i := 0; i < targets; i++ {
		d := waitFor[joinDone](p, mb)
		res.Matches += d.Matches
		res.BuildTuples += d.Built
		res.ProbeTuples += d.Probed
	}
	res.ProcessorsUsed = targets
	res.Completed = p.Now()
	h.QueriesRun++
	return res
}

// minMaxInt64 is the unbounded scan range.
func minMaxInt64() (int64, int64) {
	return -1 << 62, 1<<62 - 1
}
