package exec

import (
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/storage"
)

// TestConcurrentSubmitDuringCrashRestart drives many concurrent Submit
// calls through the degraded scheduler while a node crashes and restarts
// under them. Run with -race (CI does): the point is that coordinator
// processes, the retry collector and the crash/restart path share no state
// outside the engine's serialization.
func TestConcurrentSubmitDuringCrashRestart(t *testing.T) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 200, Seed: 9})
	r := newRig(t, core.NewRangeForRelation(rel, storage.Unique1, 2))
	r.host.Degraded = &Degraded{
		Policy: RetryPolicy{
			OpTimeout:     200 * sim.Millisecond,
			QueryDeadline: 30 * sim.Second,
			MaxRetries:    8,
			BackoffBase:   5 * sim.Millisecond,
			BackoffCap:    50 * sim.Millisecond,
		},
		Jitter: rng.NewFactory(7).Stream("jitter"),
	}

	// Chaos: node 0 goes down shortly after the first wave of queries is in
	// flight and comes back while their retries are still within budget.
	r.eng.Spawn("chaos", func(p *sim.Proc) {
		p.Hold(10 * sim.Millisecond)
		r.nodes[0].Crash()
		p.Hold(600 * sim.Millisecond)
		r.nodes[0].Restart()
	})

	const terminals, rounds = 8, 4
	done := 0
	var retried int
	for i := 0; i < terminals; i++ {
		i := i
		r.eng.Spawn("term", func(p *sim.Proc) {
			for q := 0; q < rounds; q++ {
				lo := int64((i*rounds + q) % 15 * 10)
				res := r.host.Submit(p, plan.NewIndexScan(rel.Name,
					core.Predicate{Attr: storage.Unique2, Lo: lo, Hi: lo + 19}, AccessClustered))
				if !res.Outcome.Succeeded() {
					t.Errorf("terminal %d query %d ended %s: %v", i, q, res.Outcome, res.Err)
				}
				if res.Retries > 0 {
					retried++
				}
			}
			done++
			if done == terminals {
				r.eng.Stop()
			}
		})
	}
	if err := r.eng.RunUntil(sim.Time(300 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if done != terminals {
		t.Fatalf("only %d of %d terminals finished", done, terminals)
	}
	if retried == 0 {
		t.Fatal("no query was retried — the crash window missed every Submit")
	}
}
