package core

import (
	"fmt"
	"math"
)

// AssignOwners maps every cell of a grid directory to a processor
// (Section 3.4). It reconstructs the [Gha90] heuristic as a tiled
// mixed-radix ("latin") pattern:
//
// The processors are factored into per-dimension radices A_d with
// ∏ A_d = P, and cell coordinates map to owner
//
//	owner(c) = Σ_d (c_d mod A_d) · ∏_{d' < d} A_{d'}
//
// A query on attribute d fixes coordinate d and therefore meets exactly
// P / A_d distinct processors, so the radices are chosen to make P / A_d
// approximate the planned Mi of dimension d. Because the tile repeats
// across the directory, all P processors receive ⌈cells/P⌉±1 cells — both
// Section 3.4 goals at once. For K == 1 the assignment is round-robin
// (footnote 7 of the paper).
//
// dims are the directory dimensions (Ni), p the processor count, and mi the
// planned per-dimension processor counts.
func AssignOwners(dims []int, p int, mi []float64) []int {
	if len(dims) == 0 || p <= 0 {
		panic("core: AssignOwners needs dimensions and processors")
	}
	cells := 1
	for _, n := range dims {
		if n <= 0 {
			panic(fmt.Sprintf("core: bad directory dimensions %v", dims))
		}
		cells *= n
	}
	owners := make([]int, cells)
	if len(dims) == 1 {
		for i := range owners {
			owners[i] = i % p
		}
		return owners
	}
	if len(mi) != len(dims) {
		panic(fmt.Sprintf("core: %d Mi values for %d dimensions", len(mi), len(dims)))
	}
	radices := chooseRadices(len(dims), p, mi)
	coord := make([]int, len(dims))
	for flat := 0; flat < cells; flat++ {
		owner, stride := 0, 1
		for d := range dims {
			owner += (coord[d] % radices[d]) * stride
			stride *= radices[d]
		}
		owners[flat] = owner
		// Row-major increment (last dimension fastest), matching the grid
		// file's flat indexing.
		for d := len(dims) - 1; d >= 0; d-- {
			coord[d]++
			if coord[d] < dims[d] {
				break
			}
			coord[d] = 0
		}
	}
	return owners
}

// chooseRadices enumerates factorizations of p into k radices and picks the
// one whose per-dimension processor counts p/A_d best match mi (log-scale
// error, so 2x too many and 2x too few weigh equally).
func chooseRadices(k, p int, mi []float64) []int {
	target := make([]float64, k)
	for d := range mi {
		m := mi[d]
		if m < 1 {
			m = 1
		}
		if m > float64(p) {
			m = float64(p)
		}
		target[d] = m
	}
	best := make([]int, k)
	for i := range best {
		best[i] = 1
	}
	best[0] = p
	bestScore := math.Inf(1)
	cur := make([]int, k)
	var rec func(d, rem int)
	rec = func(d, rem int) {
		if d == k-1 {
			cur[d] = rem
			score := 0.0
			for i := 0; i < k; i++ {
				eff := float64(p) / float64(cur[i]) // processors a dim-i query meets
				score += math.Abs(math.Log(eff / target[i]))
			}
			if score < bestScore {
				bestScore = score
				copy(best, cur)
			}
			return
		}
		for a := 1; a <= rem; a++ {
			if rem%a == 0 {
				cur[d] = a
				rec(d+1, rem/a)
			}
		}
	}
	rec(0, p)
	return best
}

// SliceDistinct reports, for each slice (interval) of dimension d, how many
// distinct processors own cells in the slice — the quantity the paper's
// Section 3.4 constraint bounds below by Mi.
func SliceDistinct(owners []int, dims []int, d int) []int {
	out := make([]int, dims[d])
	seen := make([]map[int]bool, dims[d])
	for i := range seen {
		seen[i] = make(map[int]bool)
	}
	forEachCell(dims, func(flat int, coord []int) {
		seen[coord[d]][owners[flat]] = true
	})
	for i, s := range seen {
		out[i] = len(s)
	}
	return out
}

// NonEmptySliceDistinct is SliceDistinct restricted to cells that actually
// hold tuples — the processor count the optimizer really uses, since empty
// entries are pruned at routing time (Section 4).
func NonEmptySliceDistinct(owners []int, dims []int, counts []int, d int) []int {
	out := make([]int, dims[d])
	seen := make([]map[int]bool, dims[d])
	for i := range seen {
		seen[i] = make(map[int]bool)
	}
	forEachCell(dims, func(flat int, coord []int) {
		if counts[flat] > 0 {
			seen[coord[d]][owners[flat]] = true
		}
	})
	for i, s := range seen {
		out[i] = len(s)
	}
	return out
}

// forEachCell iterates the row-major cells of a directory.
func forEachCell(dims []int, fn func(flat int, coord []int)) {
	cells := 1
	for _, n := range dims {
		cells *= n
	}
	coord := make([]int, len(dims))
	for flat := 0; flat < cells; flat++ {
		fn(flat, coord)
		for d := len(dims) - 1; d >= 0; d-- {
			coord[d]++
			if coord[d] < dims[d] {
				break
			}
			coord[d] = 0
		}
	}
}

// ProcessorLoads sums per-cell tuple counts by owner.
func ProcessorLoads(owners, counts []int, p int) []int {
	loads := make([]int, p)
	for flat, o := range owners {
		loads[o] += counts[flat]
	}
	return loads
}

// LoadSpread summarizes an assignment's balance: the minimum, maximum and
// mean per-processor tuple counts.
func LoadSpread(owners, counts []int, p int) (min, max int, mean float64) {
	loads := ProcessorLoads(owners, counts, p)
	min, max = loads[0], loads[0]
	total := 0
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		total += l
	}
	return min, max, float64(total) / float64(p)
}

// AssignOwnersBalanced is AssignOwners with skew awareness: within each
// dimension, slices are ranked by their tuple weight and dealt round-robin
// into the A_d radix classes, so heavy and light slices interleave across
// the tile instead of resonating with the grid file's dyadic interval
// widths. Per-slice distinct-processor counts are identical to
// AssignOwners (the rank map is just a per-dimension slice permutation,
// which the paper's own swap operation shows is distinctness-preserving).
// counts gives the tuple count of each flat cell; nil falls back to
// AssignOwners.
func AssignOwnersBalanced(dims []int, p int, mi []float64, counts []int) []int {
	if counts == nil || len(dims) == 1 {
		return AssignOwners(dims, p, mi)
	}
	if len(mi) != len(dims) {
		panic(fmt.Sprintf("core: %d Mi values for %d dimensions", len(mi), len(dims)))
	}
	radices := chooseRadices(len(dims), p, mi)
	// class[d][i] = radix class of slice i of dimension d.
	class := make([][]int, len(dims))
	for d := range dims {
		weights := make([]int, dims[d])
		forEachCell(dims, func(flat int, coord []int) {
			weights[coord[d]] += counts[flat]
		})
		order := make([]int, dims[d])
		for i := range order {
			order[i] = i
		}
		sortByWeightDesc(order, weights)
		class[d] = make([]int, dims[d])
		for rank, slice := range order {
			class[d][slice] = rank % radices[d]
		}
	}
	cells := 1
	for _, n := range dims {
		cells *= n
	}
	owners := make([]int, cells)
	forEachCell(dims, func(flat int, coord []int) {
		owner, stride := 0, 1
		for d := range dims {
			owner += class[d][coord[d]] * stride
			stride *= radices[d]
		}
		owners[flat] = owner
	})
	return owners
}

// sortByWeightDesc orders slice indices by descending weight, stable.
func sortByWeightDesc(order []int, weights []int) {
	// Insertion sort: dims are small (hundreds) and stability matters.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && weights[order[j]] > weights[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// Rebalance is the Section 4 hill-climbing heuristic: repeatedly swap the
// ownership of the two slices (of any one dimension) whose exchange most
// improves the balance of per-processor tuple counts, until no swap
// improves it. The paper states its climber narrows the gap between the
// heaviest and lightest processors; a literal max/min-pair objective can
// oscillate (a swap helping one extreme pair re-skews another), so we score
// swaps by the sum-of-squares potential sum(load^2), which strictly
// decreases on every accepted swap and therefore converges to the same kind
// of local optimum monotonically. Swapping whole slices preserves the
// number of distinct processors in every slice of every dimension. owners
// is modified in place; the return value is the number of swaps applied.
func Rebalance(owners []int, dims []int, counts []int, p, maxIters int) int {
	if len(owners) != len(counts) {
		panic("core: owners/counts length mismatch")
	}
	loads := ProcessorLoads(owners, counts, p)

	// Per-dimension slice views: sliceCells[d][i] lists the flat indices of
	// slice i of dimension d, in a fixed "rest" order shared by all slices
	// of d so that position r in two slices refers to the same rest-coord.
	sliceCells := make([][][]int, len(dims))
	for d := range dims {
		sliceCells[d] = make([][]int, dims[d])
	}
	forEachCell(dims, func(flat int, coord []int) {
		for d := range dims {
			sliceCells[d][coord[d]] = append(sliceCells[d][coord[d]], flat)
		}
	})

	delta := make([]int64, p)
	var touched []int
	swaps := 0
	for iter := 0; iter < maxIters; iter++ {
		var bestPhi int64 // must be strictly negative to accept
		bestD, bestI, bestJ := -1, 0, 0
		for d := range dims {
			for i := 0; i < dims[d]; i++ {
				for j := i + 1; j < dims[d]; j++ {
					si, sj := sliceCells[d][i], sliceCells[d][j]
					touched = touched[:0]
					for r := range si {
						ci, cj := counts[si[r]], counts[sj[r]]
						if ci == cj {
							continue
						}
						oi, oj := owners[si[r]], owners[sj[r]]
						if delta[oi] == 0 {
							touched = append(touched, oi)
						}
						delta[oi] += int64(cj - ci)
						if delta[oj] == 0 {
							touched = append(touched, oj)
						}
						delta[oj] += int64(ci - cj)
					}
					var phi int64
					for _, q := range touched {
						l := int64(loads[q])
						phi += (l+delta[q])*(l+delta[q]) - l*l
						delta[q] = 0
					}
					if phi < bestPhi {
						bestPhi, bestD, bestI, bestJ = phi, d, i, j
					}
				}
			}
		}
		if bestD == -1 {
			break // no swap improves the balance: local optimum
		}
		si, sj := sliceCells[bestD][bestI], sliceCells[bestD][bestJ]
		for r := range si {
			oi, oj := owners[si[r]], owners[sj[r]]
			loads[oi] += counts[sj[r]] - counts[si[r]]
			loads[oj] += counts[si[r]] - counts[sj[r]]
			owners[si[r]], owners[sj[r]] = oj, oi
		}
		swaps++
	}
	return swaps
}
