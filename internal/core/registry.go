package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/storage"
)

// StrategyParams carries everything a registered strategy builder may need.
// Simple strategies read only Relation/Processors/PrimaryAttr; BERD adds
// SecondaryAttrs; MAGIC additionally consumes the planning inputs (Specs,
// Plan, Magic), which the caller estimates from its workload — core stays
// workload-agnostic.
type StrategyParams struct {
	// Relation is the relation being declustered. Builders that derive
	// value distributions (range, BERD, MAGIC) require it.
	Relation *storage.Relation
	// Processors is the machine size the placement is built for.
	Processors int
	// PrimaryAttr is the primary partitioning attribute.
	PrimaryAttr int
	// SecondaryAttrs are the additional attributes multi-attribute
	// strategies cover (BERD's auxiliary relations, MAGIC's extra grid
	// dimensions).
	SecondaryAttrs []int
	// Specs are the workload's per-query-class resource estimates MAGIC
	// plans from (Section 3.2's QAve model inputs).
	Specs []QuerySpec
	// Plan are the planning-model system constants.
	Plan PlanParams
	// Magic optionally tunes MAGIC construction; nil uses the defaults.
	Magic *MagicOptions
}

// StrategyBuilder constructs a placement from the parameters. Builders must
// validate what they consume and return an error — never panic — on
// missing inputs.
type StrategyBuilder func(StrategyParams) (Placement, error)

// strategyRegistry maps strategy names to builders. Strategies self-register
// from init functions in their defining files; tests and external packages
// may add more through RegisterStrategy.
var strategyRegistry = map[string]StrategyBuilder{}

// RegisterStrategy adds a named strategy builder. Registering an empty name,
// a nil builder, or a duplicate name panics: registration happens at init
// time, where a bad registration is a programming error.
func RegisterStrategy(name string, b StrategyBuilder) {
	if name == "" {
		panic("core: RegisterStrategy with empty name")
	}
	if b == nil {
		panic(fmt.Sprintf("core: RegisterStrategy(%q) with nil builder", name))
	}
	if _, dup := strategyRegistry[name]; dup {
		panic(fmt.Sprintf("core: strategy %q already registered", name))
	}
	strategyRegistry[name] = b
}

// BuildStrategy constructs the named strategy. An unknown name yields an
// error listing every registered strategy.
func BuildStrategy(name string, p StrategyParams) (Placement, error) {
	b, ok := strategyRegistry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown strategy %q (registered: %s)",
			name, strings.Join(Strategies(), ", "))
	}
	return b(p)
}

// Strategies returns the registered strategy names, sorted.
func Strategies() []string {
	out := make([]string, 0, len(strategyRegistry))
	for name := range strategyRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// needRelation is the shared guard for builders that derive value
// distributions from the relation.
func needRelation(name string, p StrategyParams) error {
	if p.Relation == nil {
		return fmt.Errorf("core: %s strategy requires a relation", name)
	}
	return nil
}
