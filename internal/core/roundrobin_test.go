package core

import (
	"testing"

	"repro/internal/storage"
)

func TestRoundRobinPlacement(t *testing.T) {
	rel := testRelation(t, 1000, 0)
	rr := NewRoundRobin(8)
	if rr.Name() != "roundrobin" || rr.Processors() != 8 {
		t.Fatal("metadata wrong")
	}
	counts := make([]int, 8)
	for _, tup := range rel.Tuples {
		counts[rr.HomeOf(tup)]++
	}
	for i, c := range counts {
		if c != 125 {
			t.Fatalf("node %d holds %d tuples; round-robin must balance perfectly", i, c)
		}
	}
	for _, pred := range []Predicate{
		{Attr: storage.Unique1, Lo: 5, Hi: 5},
		{Attr: storage.Unique2, Lo: 0, Hi: 999},
	} {
		if got := len(rr.Route(pred).Participants); got != 8 {
			t.Fatalf("round-robin routed %v to %d processors", pred, got)
		}
	}
}

func TestRoundRobinRejectsBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero processors accepted")
		}
	}()
	NewRoundRobin(0)
}

func TestMAGICRouteConjunct(t *testing.T) {
	rel, m := buildTestMAGIC(t, 5000, 0, 16, nil)
	// Point predicates on both partitioning attributes intersect to a
	// single cell: exactly one processor.
	tup := rel.Tuples[2500]
	route := m.RouteConjunct([]Predicate{
		{Attr: storage.Unique1, Lo: tup.Attrs[storage.Unique1], Hi: tup.Attrs[storage.Unique1]},
		{Attr: storage.Unique2, Lo: tup.Attrs[storage.Unique2], Hi: tup.Attrs[storage.Unique2]},
	})
	if len(route.Participants) != 1 {
		t.Fatalf("conjunctive point query routed to %d processors", len(route.Participants))
	}
	if route.Participants[0] != m.HomeOf(tup) {
		t.Fatal("conjunctive route missed the tuple's home")
	}
	// The conjunction must cover no more cells than either single
	// predicate alone.
	single := m.Route(Predicate{Attr: storage.Unique1,
		Lo: tup.Attrs[storage.Unique1], Hi: tup.Attrs[storage.Unique1]})
	if route.EntriesSearched > single.EntriesSearched {
		t.Fatal("conjunction searched more entries than one of its conjuncts")
	}
}

func TestMAGICRouteConjunctSoundness(t *testing.T) {
	rel, m := buildTestMAGIC(t, 5000, 0, 16, nil)
	preds := []Predicate{
		{Attr: storage.Unique1, Lo: 1000, Hi: 1500},
		{Attr: storage.Unique2, Lo: 2000, Hi: 2600},
	}
	route := m.RouteConjunct(preds)
	parts := map[int]bool{}
	for _, p := range route.Participants {
		parts[p] = true
	}
	for _, tup := range rel.Tuples {
		a, b := tup.Attrs[storage.Unique1], tup.Attrs[storage.Unique2]
		if a >= 1000 && a <= 1500 && b >= 2000 && b <= 2600 && !parts[m.HomeOf(tup)] {
			t.Fatalf("tuple %d matching the conjunction lives on unrouted processor %d",
				tup.TID, m.HomeOf(tup))
		}
	}
}

func TestMAGICRouteConjunctEdgeCases(t *testing.T) {
	_, m := buildTestMAGIC(t, 5000, 0, 16, nil)
	// No predicates: no localization information.
	if got := len(m.RouteConjunct(nil).Participants); got != 16 {
		t.Fatalf("empty conjunction routed to %d processors", got)
	}
	// A non-partitioning conjunct forces all processors.
	route := m.RouteConjunct([]Predicate{
		{Attr: storage.Unique1, Lo: 1, Hi: 10},
		{Attr: storage.Ten, Lo: 5, Hi: 5},
	})
	if len(route.Participants) != 16 {
		t.Fatal("non-partitioning conjunct must route everywhere")
	}
	// Contradictory ranges cover nothing.
	route = m.RouteConjunct([]Predicate{
		{Attr: storage.Unique1, Lo: 100, Hi: 200},
		{Attr: storage.Unique1, Lo: 300, Hi: 400},
	})
	if len(route.Participants) != 0 {
		t.Fatalf("contradictory conjunction routed to %d processors", len(route.Participants))
	}
	// Repeated predicates on one attribute intersect.
	narrow := m.RouteConjunct([]Predicate{
		{Attr: storage.Unique1, Lo: 0, Hi: 4999},
		{Attr: storage.Unique1, Lo: 2500, Hi: 2500},
	})
	if len(narrow.Participants) == 0 || len(narrow.Participants) >= 16 {
		t.Fatalf("intersected ranges routed to %d processors", len(narrow.Participants))
	}
}
