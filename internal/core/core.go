package core

import (
	"fmt"
	"sort"

	"repro/internal/storage"
)

// Predicate is a selection predicate: lo <= attr <= hi (equality when
// lo == hi). The workload of the paper consists entirely of such
// single-attribute range and exact-match selections.
type Predicate struct {
	Attr int
	Lo   int64
	Hi   int64
}

// Equality reports whether the predicate is an exact-match.
func (p Predicate) Equality() bool { return p.Lo == p.Hi }

func (p Predicate) String() string {
	if p.Equality() {
		return fmt.Sprintf("%s = %d", storage.AttrName(p.Attr), p.Lo)
	}
	return fmt.Sprintf("%d <= %s <= %d", p.Lo, storage.AttrName(p.Attr), p.Hi)
}

// Route is the optimizer's localization decision for a predicate.
type Route struct {
	// Participants are the processors the query is sent to directly. For a
	// BERD two-step query this is empty; the processors are discovered by
	// consulting the auxiliary relation at runtime.
	Participants []int
	// Aux, when non-empty, lists the processors holding the relevant
	// fragments of the auxiliary relation (BERD's first step).
	Aux []int
	// EntriesSearched is the number of declustering-directory entries the
	// optimizer examined (MAGIC's grid-directory cells; charged at CS per
	// entry on the scheduler node).
	EntriesSearched int
}

// Placement is a declustering strategy applied to a relation: it fixes each
// tuple's home processor at load time and localizes predicates at query
// time.
type Placement interface {
	// Name identifies the strategy ("range", "hash", "berd", "magic").
	Name() string
	// Processors reports the machine size the placement was built for.
	Processors() int
	// HomeOf returns the processor that stores the tuple.
	HomeOf(t storage.Tuple) int
	// Route localizes a predicate.
	Route(pred Predicate) Route
}

// allProcessors returns [0, 1, ..., p-1].
func allProcessors(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}

// QuantileCuts computes P-1 range boundaries over the attribute values of
// the relation so that each of the P buckets receives an (almost) equal
// number of tuples — how a database administrator would range-partition a
// relation with a known distribution. Bucket i holds values in
// [cuts[i-1], cuts[i]).
func QuantileCuts(rel *storage.Relation, attr, p int) []int64 {
	if p <= 0 {
		panic(fmt.Sprintf("core: cannot cut into %d buckets", p))
	}
	vals := make([]int64, rel.Cardinality())
	for i, t := range rel.Tuples {
		vals[i] = t.Attrs[attr]
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	cuts := make([]int64, p-1)
	n := len(vals)
	for i := 1; i < p; i++ {
		cuts[i-1] = vals[i*n/p]
	}
	return cuts
}

// bucketOf locates v among cuts: the index of the bucket holding v, where
// bucket i covers [cuts[i-1], cuts[i]).
func bucketOf(cuts []int64, v int64) int {
	return sort.Search(len(cuts), func(i int) bool { return cuts[i] > v })
}

// bucketRange returns the inclusive bucket index range overlapping [lo, hi].
func bucketRange(cuts []int64, lo, hi int64) (int, int) {
	return bucketOf(cuts, lo), bucketOf(cuts, hi)
}

func init() {
	RegisterStrategy("range", func(p StrategyParams) (Placement, error) {
		if err := needRelation("range", p); err != nil {
			return nil, err
		}
		return NewRangeForRelation(p.Relation, p.PrimaryAttr, p.Processors), nil
	})
	RegisterStrategy("hash", func(p StrategyParams) (Placement, error) {
		return NewHash(p.PrimaryAttr, p.Processors), nil
	})
}

// RangePlacement is the single-attribute range declustering strategy the
// paper uses as its baseline (the strategy of Gamma, Tandem, et al.).
type RangePlacement struct {
	attr int
	cuts []int64
	p    int
}

// NewRange builds a range placement on attr with the given cuts
// (len(cuts) == p-1, ascending).
func NewRange(attr int, cuts []int64, p int) *RangePlacement {
	if len(cuts) != p-1 {
		panic(fmt.Sprintf("core: range placement needs %d cuts, got %d", p-1, len(cuts)))
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i-1] > cuts[i] {
			panic("core: range cuts not ascending")
		}
	}
	return &RangePlacement{attr: attr, cuts: append([]int64(nil), cuts...), p: p}
}

// NewRangeForRelation builds a range placement with equal-count quantile
// cuts computed from the relation.
func NewRangeForRelation(rel *storage.Relation, attr, p int) *RangePlacement {
	return NewRange(attr, QuantileCuts(rel, attr, p), p)
}

// Name implements Placement.
func (r *RangePlacement) Name() string { return "range" }

// Processors implements Placement.
func (r *RangePlacement) Processors() int { return r.p }

// Attr reports the partitioning attribute.
func (r *RangePlacement) Attr() int { return r.attr }

// HomeOf implements Placement.
func (r *RangePlacement) HomeOf(t storage.Tuple) int {
	return bucketOf(r.cuts, t.Attrs[r.attr])
}

// Route implements Placement: predicates on the partitioning attribute go
// to the covering processors; everything else must visit all processors.
func (r *RangePlacement) Route(pred Predicate) Route {
	if pred.Attr != r.attr {
		return Route{Participants: allProcessors(r.p)}
	}
	from, to := bucketRange(r.cuts, pred.Lo, pred.Hi)
	out := make([]int, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, i)
	}
	return Route{Participants: out}
}

// HashPlacement is single-attribute hash declustering: exact-match
// predicates on the partitioning attribute localize to one processor; range
// predicates (on any attribute) must visit all processors. Included as the
// introduction's other classic baseline and used by ablation benches.
type HashPlacement struct {
	attr int
	p    int
}

// NewHash builds a hash placement on attr over p processors.
func NewHash(attr, p int) *HashPlacement {
	if p <= 0 {
		panic("core: hash placement needs positive processor count")
	}
	return &HashPlacement{attr: attr, p: p}
}

// Name implements Placement.
func (h *HashPlacement) Name() string { return "hash" }

// Processors implements Placement.
func (h *HashPlacement) Processors() int { return h.p }

// HomeOf implements Placement.
func (h *HashPlacement) HomeOf(t storage.Tuple) int {
	return int(hash64(uint64(t.Attrs[h.attr])) % uint64(h.p))
}

// Route implements Placement.
func (h *HashPlacement) Route(pred Predicate) Route {
	if pred.Attr == h.attr && pred.Equality() {
		return Route{Participants: []int{int(hash64(uint64(pred.Lo)) % uint64(h.p))}}
	}
	return Route{Participants: allProcessors(h.p)}
}

// Attr reports the partitioning attribute.
func (h *HashPlacement) Attr() int { return h.attr }

// JoinBucket routes a join-attribute value through the same randomizing
// function hash declustering uses, so the execution layer's split table
// sends each tuple where a hash-declustered join partner already lives.
func JoinBucket(v int64, p int) int {
	return int(hash64(uint64(v)) % uint64(p))
}

// hash64 is SplitMix64; any well-mixing function works as the paper's
// "randomizing function".
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniqueSorted deduplicates and sorts a processor list in place.
func uniqueSorted(ps []int) []int {
	sort.Ints(ps)
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	return out
}
