// Package core implements the paper's primary contribution: the MAGIC
// multi-attribute grid declustering strategy — the QAve planning model of
// Section 3.2, the grid-directory construction of Section 3.3, and the
// processor-assignment and rebalancing heuristics of Sections 3.4 and 4 —
// together with the strategies it is evaluated against: Bubba's
// extended-range declustering (BERD, Section 2), single-attribute range
// partitioning, and hash partitioning.
package core

import (
	"fmt"
	"math"

	"repro/internal/storage"
)

// QuerySpec describes one query class of the workload for planning: which
// attribute its predicate references, how many tuples it processes, its
// frequency of occurrence, and its resource consumption (the paper's CPUi,
// Diski and Neti quanta), in milliseconds of the respective resource.
type QuerySpec struct {
	Name           string
	Attr           int
	TuplesPerQuery float64
	Frequency      float64
	CPUms          float64
	DiskMS         float64
	NetMS          float64
}

// totalMS is CPUi + Diski + Neti.
func (q QuerySpec) totalMS() float64 { return q.CPUms + q.DiskMS + q.NetMS }

// PlanParams are the system constants of the planning model.
type PlanParams struct {
	// CPms is the Cost of Participation: the overhead of employing one
	// additional processor for a query (scheduling + termination), ms.
	CPms float64
	// CSms is the cost of examining one entry of the grid directory during
	// optimization, ms.
	CSms float64
	// Processors is the machine size P.
	Processors int
	// Cardinality of the relation being declustered.
	Cardinality int
}

// Validate reports an error for unusable parameters.
func (pp PlanParams) Validate() error {
	switch {
	case pp.CPms <= 0:
		return fmt.Errorf("core: CP must be positive, got %g", pp.CPms)
	case pp.CSms < 0:
		return fmt.Errorf("core: CS must be non-negative, got %g", pp.CSms)
	case pp.Processors <= 0:
		return fmt.Errorf("core: processors must be positive, got %d", pp.Processors)
	case pp.Cardinality <= 0:
		return fmt.Errorf("core: cardinality must be positive, got %d", pp.Cardinality)
	}
	return nil
}

// Plan is the output of the Section 3.2 planning model.
type Plan struct {
	// QAve aggregates.
	TuplesPerQAve float64
	CPUAveMS      float64
	DiskAveMS     float64
	NetAveMS      float64
	// M is the ideal number of processors for QAve (may be fractional; the
	// paper's footnote 4 handles M < 1).
	M float64
	// FC is the fragment cardinality, already clamped so the directory has
	// at least Processors fragments and at most Cardinality.
	FC int
	// Mi maps each partitioning attribute to the ideal number of
	// processors for queries referencing it (Equation 3), clamped to
	// [1, Processors].
	Mi map[int]float64
	// FractionSplits holds Equation 4 exactly as printed in the paper, per
	// attribute. See SplitWeights for the values actually used to drive
	// the grid file (DESIGN.md documents the discrepancy).
	FractionSplits map[int]float64
	// SplitWeights are the per-attribute splitting frequencies used to
	// build the directory: proportional to Mi, which reproduces every
	// directory shape and split-ratio statement in Sections 3.3 and 7.
	SplitWeights map[int]float64
}

// ResponseTime evaluates Equation 1: the modeled response time of QAve when
// executed by m processors.
func ResponseTime(m float64, tuplesAve, cpuAve, diskAve, netAve float64, pp PlanParams) float64 {
	if m < 1 {
		m = 1
	}
	work := (cpuAve + diskAve + netAve) / m
	participation := m * pp.CPms
	search := (m - 1) * float64(pp.Cardinality) * pp.CSms / (2 * tuplesAve)
	return work + participation + search
}

// ComputePlan runs the Section 3.2/3.3 planning model over the workload.
// Frequencies are normalized internally, so they may be given as counts.
func ComputePlan(queries []QuerySpec, pp PlanParams) (Plan, error) {
	if err := pp.Validate(); err != nil {
		return Plan{}, err
	}
	if len(queries) == 0 {
		return Plan{}, fmt.Errorf("core: no queries in workload")
	}
	var freqSum float64
	for _, q := range queries {
		if q.Frequency < 0 || q.TuplesPerQuery <= 0 {
			return Plan{}, fmt.Errorf("core: query %q has invalid frequency/tuples", q.Name)
		}
		freqSum += q.Frequency
	}
	if freqSum == 0 {
		return Plan{}, fmt.Errorf("core: all query frequencies are zero")
	}

	p := Plan{
		Mi:             make(map[int]float64),
		FractionSplits: make(map[int]float64),
		SplitWeights:   make(map[int]float64),
	}
	for _, q := range queries {
		f := q.Frequency / freqSum
		p.TuplesPerQAve += q.TuplesPerQuery * f
		p.CPUAveMS += q.CPUms * f
		p.DiskAveMS += q.DiskMS * f
		p.NetAveMS += q.NetMS * f
	}

	// M = sqrt( (CPUAve+DiskAve+NetAve) / (CP + Card*CS/(2*TuplesPerQAve)) ).
	denom := pp.CPms + float64(pp.Cardinality)*pp.CSms/(2*p.TuplesPerQAve)
	p.M = math.Sqrt((p.CPUAveMS + p.DiskAveMS + p.NetAveMS) / denom)

	// Fragment cardinality FC (Section 3.2 incl. footnote 4), clamped so
	// the directory has between Processors and Cardinality entries: fewer
	// than P fragments could not use the full system; more than one
	// fragment per tuple is meaningless.
	var fc float64
	if p.M <= 1 {
		fc = p.TuplesPerQAve / p.M
	} else {
		fc = p.TuplesPerQAve / (p.M - 1)
	}
	p.FC = int(math.Ceil(fc))
	if maxFC := pp.Cardinality / pp.Processors; p.FC > maxFC && maxFC >= 1 {
		p.FC = maxFC
	}
	if p.FC < 1 {
		p.FC = 1
	}

	// Mi per attribute (Equations 2 and 3), clamped to [1, P].
	attrFreq := make(map[int]float64)
	attrWork := make(map[int]float64) // sum over queries of total resources * RelFreq
	for _, q := range queries {
		attrFreq[q.Attr] += q.Frequency
	}
	for _, q := range queries {
		rel := q.Frequency / attrFreq[q.Attr]
		attrWork[q.Attr] += q.totalMS() * rel
	}
	var miSum float64
	for attr, work := range attrWork {
		mi := math.Sqrt(work / pp.CPms)
		if mi < 1 {
			mi = 1
		}
		if mi > float64(pp.Processors) {
			mi = float64(pp.Processors)
		}
		p.Mi[attr] = mi
		miSum += mi
	}

	// Equation 4 exactly as printed, plus the behaviour-consistent split
	// weights (proportional to Mi) that the construction uses.
	for attr, mi := range p.Mi {
		p.FractionSplits[attr] = (attrFreq[attr] / freqSum) * (miSum - mi) / miSum
		p.SplitWeights[attr] = mi / miSum
	}
	return p, nil
}

// OptimalM numerically confirms that the closed form for M minimizes
// Equation 1 (used by tests and the magicplan tool's explain output): it
// returns the integer processor count in [1, P] with the lowest modeled
// response time.
func (p Plan) OptimalM(pp PlanParams) int {
	best, bestRT := 1, math.Inf(1)
	for m := 1; m <= pp.Processors; m++ {
		rt := ResponseTime(float64(m), p.TuplesPerQAve, p.CPUAveMS, p.DiskAveMS, p.NetAveMS, pp)
		if rt < bestRT {
			best, bestRT = m, rt
		}
	}
	return best
}

// boundsOf extracts the inclusive value domain of each attribute from the
// relation, as the grid file needs.
func boundsOf(rel *storage.Relation, attrs []int) [][2]int64 {
	out := make([][2]int64, len(attrs))
	for i, a := range attrs {
		lo, hi := rel.AttrBounds(a)
		out[i] = [2]int64{lo, hi}
	}
	return out
}
