package core

import (
	"fmt"

	"repro/internal/storage"
)

func init() {
	RegisterStrategy("roundrobin", func(p StrategyParams) (Placement, error) {
		if p.Processors <= 0 {
			return nil, fmt.Errorf("core: roundrobin needs positive processors, got %d", p.Processors)
		}
		return NewRoundRobin(p.Processors), nil
	})
}

// RoundRobinPlacement is the third classic single-attribute-free baseline
// (Gamma offered it alongside hash and range): tuples are dealt to
// processors in arrival order. It balances storage perfectly but gives the
// optimizer nothing to localize with — every selection visits every
// processor. Included for the ablation benches; the paper's introduction
// discusses why such strategies waste resources on selective queries.
type RoundRobinPlacement struct {
	p int
}

// NewRoundRobin builds a round-robin placement over p processors.
func NewRoundRobin(p int) *RoundRobinPlacement {
	if p <= 0 {
		panic(fmt.Sprintf("core: round-robin needs positive processors, got %d", p))
	}
	return &RoundRobinPlacement{p: p}
}

// Name implements Placement.
func (r *RoundRobinPlacement) Name() string { return "roundrobin" }

// Processors implements Placement.
func (r *RoundRobinPlacement) Processors() int { return r.p }

// HomeOf implements Placement: tuple i goes to processor i mod P.
func (r *RoundRobinPlacement) HomeOf(t storage.Tuple) int {
	return int(t.TID % int64(r.p))
}

// Route implements Placement: no localization information exists, so every
// predicate visits every processor.
func (r *RoundRobinPlacement) Route(pred Predicate) Route {
	return Route{Participants: allProcessors(r.p)}
}
