package core

import (
	"testing"

	"repro/internal/storage"
)

// magicWorkload mirrors the paper's low-low mix scaled to a small relation:
// a single-tuple query on A and a 10-tuple clustered range on B, with
// resource numbers that put Mi in a realistic band.
func magicWorkload() []QuerySpec {
	return []QuerySpec{
		{Name: "QA", Attr: storage.Unique1, TuplesPerQuery: 1, Frequency: 0.5,
			CPUms: 6, DiskMS: 30, NetMS: 2},
		{Name: "QB", Attr: storage.Unique2, TuplesPerQuery: 10, Frequency: 0.5,
			CPUms: 10, DiskMS: 30, NetMS: 2},
	}
}

func buildTestMAGIC(t *testing.T, n, corrWindow, p int, opts *MagicOptions) (*storage.Relation, *MAGICPlacement) {
	t.Helper()
	rel := testRelation(t, n, corrWindow)
	pp := PlanParams{CPms: 1.7, CSms: 0.003, Processors: p, Cardinality: n}
	m, err := BuildMAGIC(rel, []int{storage.Unique1, storage.Unique2}, magicWorkload(), pp, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rel, m
}

func TestBuildMAGICBasics(t *testing.T) {
	rel, m := buildTestMAGIC(t, 10000, 0, 32, nil)
	if m.Name() != "magic" || m.Processors() != 32 {
		t.Fatal("metadata wrong")
	}
	if err := m.Grid().Validate(); err != nil {
		t.Fatalf("grid invalid: %v", err)
	}
	dims := m.Dims()
	if len(dims) != 2 || dims[0] < 2 || dims[1] < 2 {
		t.Fatalf("directory dims = %v", dims)
	}
	if m.Grid().NumCells() < 32 {
		t.Fatalf("only %d cells for 32 processors", m.Grid().NumCells())
	}
	// Every tuple's home is a valid processor and all processors hold data.
	seen := make([]int, 32)
	for _, tup := range rel.Tuples {
		seen[m.HomeOf(tup)]++
	}
	for p, c := range seen {
		if c == 0 {
			t.Fatalf("processor %d holds no tuples", p)
		}
	}
}

func TestMAGICLoadBalanced(t *testing.T) {
	_, m := buildTestMAGIC(t, 10000, 0, 32, nil)
	min, max, mean := LoadSpread(m.Owners(), m.CellCounts(), 32)
	if float64(max) > 1.4*mean || float64(min) < 0.6*mean {
		t.Fatalf("load spread min=%d max=%d mean=%g", min, max, mean)
	}
}

func TestMAGICRoutesPartitioningAttributesToSubsets(t *testing.T) {
	_, m := buildTestMAGIC(t, 10000, 0, 32, nil)
	qa := m.Route(Predicate{Attr: storage.Unique1, Lo: 5000, Hi: 5000})
	if len(qa.Participants) == 0 || len(qa.Participants) >= 32 {
		t.Fatalf("QA routed to %d processors", len(qa.Participants))
	}
	if qa.EntriesSearched == 0 {
		t.Fatal("directory search cost not reported")
	}
	qb := m.Route(Predicate{Attr: storage.Unique2, Lo: 5000, Hi: 5009})
	if len(qb.Participants) == 0 || len(qb.Participants) >= 32 {
		t.Fatalf("QB routed to %d processors", len(qb.Participants))
	}
	other := m.Route(Predicate{Attr: storage.Ten, Lo: 5, Hi: 5})
	if len(other.Participants) != 32 {
		t.Fatal("non-partitioning attribute must visit all processors")
	}
}

// Routing must be sound: the participants include the home of every tuple
// matching the predicate.
func TestMAGICRoutingSound(t *testing.T) {
	rel, m := buildTestMAGIC(t, 5000, 0, 16, nil)
	for _, pred := range []Predicate{
		{Attr: storage.Unique1, Lo: 100, Hi: 150},
		{Attr: storage.Unique2, Lo: 3000, Hi: 3100},
		{Attr: storage.Unique1, Lo: 4999, Hi: 4999},
	} {
		route := m.Route(pred)
		parts := map[int]bool{}
		for _, p := range route.Participants {
			parts[p] = true
		}
		for _, tup := range rel.Tuples {
			v := tup.Attrs[pred.Attr]
			if v >= pred.Lo && v <= pred.Hi && !parts[m.HomeOf(tup)] {
				t.Fatalf("pred %v: tuple %d on processor %d not routed to",
					pred, tup.TID, m.HomeOf(tup))
			}
		}
	}
}

// With identical partitioning attributes (Section 4 worst case), routing on
// either attribute should localize to very few processors because only the
// diagonal cells are non-empty.
func TestMAGICCorrelatedLocalization(t *testing.T) {
	_, m := buildTestMAGIC(t, 5000, 1, 32, nil)
	qa := m.Route(Predicate{Attr: storage.Unique1, Lo: 2500, Hi: 2500})
	if len(qa.Participants) > 2 {
		t.Fatalf("correlated equality routed to %d processors", len(qa.Participants))
	}
	qb := m.Route(Predicate{Attr: storage.Unique2, Lo: 2500, Hi: 2509})
	if len(qb.Participants) > 3 {
		t.Fatalf("correlated 10-tuple range routed to %d processors", len(qb.Participants))
	}
}

// Section 4's balance claim for the worst case: after rebalancing, the
// tuple-count difference between any two of the 32 processors stays small.
func TestMAGICWorstCaseRebalanced(t *testing.T) {
	_, m := buildTestMAGIC(t, 10000, 1, 32, nil)
	min, max, _ := LoadSpread(m.Owners(), m.CellCounts(), 32)
	if min == 0 {
		t.Fatal("empty processors remain after rebalancing identical attributes")
	}
	spread := float64(max-min) / float64(max)
	if spread > 0.30 {
		t.Fatalf("worst-case spread = %.0f%%, paper reports ~20%%", spread*100)
	}
	if m.RebalanceSwaps() == 0 {
		t.Fatal("rebalancer did nothing on worst-case data")
	}
}

// Ablation: without rebalancing, identical attributes leave a visibly more
// skewed assignment than the full pipeline (the paper reports 12 of 32
// processors empty before its heuristic runs).
func TestMAGICWorstCaseWithoutRebalanceIsSkewed(t *testing.T) {
	_, plain := buildTestMAGIC(t, 10000, 1, 32, &MagicOptions{DisableRebalance: true})
	minP, maxP, _ := LoadSpread(plain.Owners(), plain.CellCounts(), 32)
	_, rebal := buildTestMAGIC(t, 10000, 1, 32, nil)
	minR, maxR, _ := LoadSpread(rebal.Owners(), rebal.CellCounts(), 32)
	spreadPlain := float64(maxP-minP) / float64(maxP)
	spreadRebal := float64(maxR-minR) / float64(maxR)
	if spreadRebal > spreadPlain {
		t.Fatalf("rebalancing made the spread worse: %.2f -> %.2f", spreadPlain, spreadRebal)
	}
	if spreadPlain < 0.25 {
		t.Fatalf("diagonal data without rebalancing should be skewed, spread = %.2f", spreadPlain)
	}
}

func TestMAGICRoundRobinAblation(t *testing.T) {
	_, m := buildTestMAGIC(t, 5000, 0, 16, &MagicOptions{RoundRobinAssign: true})
	// Round-robin ignores Mi: slices see far more distinct processors, so
	// queries fan out much wider than the planned Mi.
	qa := m.Route(Predicate{Attr: storage.Unique1, Lo: 2500, Hi: 2500})
	tiled, err := BuildMAGIC(testRelation(t, 5000, 0), []int{storage.Unique1, storage.Unique2},
		magicWorkload(), PlanParams{CPms: 1.7, CSms: 0.003, Processors: 16, Cardinality: 5000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	qaTiled := tiled.Route(Predicate{Attr: storage.Unique1, Lo: 2500, Hi: 2500})
	if len(qa.Participants) < len(qaTiled.Participants) {
		t.Fatalf("round-robin (%d) should fan out at least as wide as tiled (%d)",
			len(qa.Participants), len(qaTiled.Participants))
	}
}

func TestBuildMAGICErrors(t *testing.T) {
	rel := testRelation(t, 1000, 0)
	pp := PlanParams{CPms: 1.7, CSms: 0.003, Processors: 8, Cardinality: 1000}
	if _, err := BuildMAGIC(rel, nil, magicWorkload(), pp, nil); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := BuildMAGIC(rel, []int{storage.Unique1, storage.Unique1}, magicWorkload(), pp, nil); err == nil {
		t.Error("duplicate attributes accepted")
	}
	bad := pp
	bad.Cardinality = 5
	if _, err := BuildMAGIC(rel, []int{storage.Unique1}, magicWorkload(), bad, nil); err == nil {
		t.Error("cardinality mismatch accepted")
	}
	// Workload that references neither partitioning attribute.
	qs := []QuerySpec{{Name: "Q", Attr: storage.Ten, TuplesPerQuery: 1, Frequency: 1, CPUms: 1}}
	if _, err := BuildMAGIC(rel, []int{storage.Unique1, storage.Unique2}, qs, pp, nil); err == nil {
		t.Error("workload without partitioning attributes accepted")
	}
}

func TestMAGICSingleAttributeDegeneratesToRangeLike(t *testing.T) {
	rel := testRelation(t, 2000, 0)
	pp := PlanParams{CPms: 1.7, CSms: 0.003, Processors: 8, Cardinality: 2000}
	qs := []QuerySpec{{Name: "QA", Attr: storage.Unique1, TuplesPerQuery: 1,
		Frequency: 1, CPUms: 6, DiskMS: 30, NetMS: 2}}
	m, err := BuildMAGIC(rel, []int{storage.Unique1}, qs, pp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Dims()) != 1 {
		t.Fatalf("dims = %v", m.Dims())
	}
	route := m.Route(Predicate{Attr: storage.Unique1, Lo: 1000, Hi: 1000})
	if len(route.Participants) != 1 {
		t.Fatalf("1D equality routed to %v", route.Participants)
	}
}

func TestMAGICPlanExposed(t *testing.T) {
	_, m := buildTestMAGIC(t, 5000, 0, 16, nil)
	p := m.Plan()
	if p.FC <= 0 || p.M <= 0 || len(p.Mi) != 2 {
		t.Fatalf("plan = %+v", p)
	}
	// Fragment capacity must match what the grid was built with.
	if m.Grid().Capacity() != p.FC {
		t.Fatal("grid capacity differs from plan FC")
	}
}

// MAGIC generalizes to K=3 partitioning attributes: the grid gains a third
// dimension and routing on any of the three localizes.
func TestMAGICThreeAttributes(t *testing.T) {
	rel := testRelation(t, 4000, 0)
	pp := PlanParams{CPms: 1.7, CSms: 0.003, Processors: 16, Cardinality: 4000}
	qs := []QuerySpec{
		{Name: "QA", Attr: storage.Unique1, TuplesPerQuery: 1, Frequency: 0.4,
			CPUms: 6, DiskMS: 30, NetMS: 2},
		{Name: "QB", Attr: storage.Unique2, TuplesPerQuery: 10, Frequency: 0.4,
			CPUms: 10, DiskMS: 30, NetMS: 2},
		{Name: "QC", Attr: storage.OnePercent, TuplesPerQuery: 40, Frequency: 0.2,
			CPUms: 12, DiskMS: 40, NetMS: 3},
	}
	m, err := BuildMAGIC(rel, []int{storage.Unique1, storage.Unique2, storage.OnePercent}, qs, pp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Grid().Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Dims()); got != 3 {
		t.Fatalf("dims = %v", m.Dims())
	}
	// Routing on each partitioning attribute localizes to a subset; the
	// OnePercent attribute has only 100 distinct values (duplicates).
	for _, pred := range []Predicate{
		{Attr: storage.Unique1, Lo: 2000, Hi: 2000},
		{Attr: storage.Unique2, Lo: 1000, Hi: 1009},
		{Attr: storage.OnePercent, Lo: 50, Hi: 50},
	} {
		route := m.Route(pred)
		if len(route.Participants) == 0 {
			t.Fatalf("pred %v routed nowhere", pred)
		}
	}
	// Soundness on the duplicated attribute.
	route := m.Route(Predicate{Attr: storage.OnePercent, Lo: 7, Hi: 7})
	parts := map[int]bool{}
	for _, p := range route.Participants {
		parts[p] = true
	}
	for _, tup := range rel.Tuples {
		if tup.Attrs[storage.OnePercent] == 7 && !parts[m.HomeOf(tup)] {
			t.Fatalf("tuple %d with onePercent=7 on unrouted processor", tup.TID)
		}
	}
}
