package core

import (
	"fmt"

	"repro/internal/storage"
)

func init() {
	RegisterStrategy("berd", func(p StrategyParams) (Placement, error) {
		if err := needRelation("berd", p); err != nil {
			return nil, err
		}
		return NewBERDForRelation(p.Relation, p.PrimaryAttr, p.SecondaryAttrs, p.Processors), nil
	})
}

// BERDPlacement is Bubba's Extended-Range Declustering (Section 2): the
// relation is range partitioned on a primary attribute; for each secondary
// partitioning attribute an auxiliary relation of (value, TID, home
// processor) entries is itself range partitioned across the processors and
// indexed. Queries on the primary attribute route like range partitioning;
// queries on a secondary attribute execute in two steps — first against the
// auxiliary relation to learn which processors hold qualifying tuples, then
// against those processors.
type BERDPlacement struct {
	primary *RangePlacement
	// auxCuts maps each secondary attribute to the range boundaries of its
	// auxiliary relation.
	auxCuts map[int][]int64
	p       int
}

// NewBERD builds a BERD placement: primary range partitioning on
// primaryAttr with primaryCuts, plus an auxiliary relation per secondary
// attribute with the given cuts (each len p-1).
func NewBERD(primaryAttr int, primaryCuts []int64, secondary map[int][]int64, p int) *BERDPlacement {
	b := &BERDPlacement{
		primary: NewRange(primaryAttr, primaryCuts, p),
		auxCuts: make(map[int][]int64, len(secondary)),
		p:       p,
	}
	for attr, cuts := range secondary {
		if attr == primaryAttr {
			panic("core: secondary attribute equals primary")
		}
		if len(cuts) != p-1 {
			panic(fmt.Sprintf("core: aux cuts for %s: need %d, got %d",
				storage.AttrName(attr), p-1, len(cuts)))
		}
		b.auxCuts[attr] = append([]int64(nil), cuts...)
	}
	return b
}

// NewBERDForRelation builds a BERD placement with quantile cuts for the
// primary and every secondary attribute computed from the relation.
func NewBERDForRelation(rel *storage.Relation, primaryAttr int, secondaryAttrs []int, p int) *BERDPlacement {
	secondary := make(map[int][]int64, len(secondaryAttrs))
	for _, a := range secondaryAttrs {
		secondary[a] = QuantileCuts(rel, a, p)
	}
	return NewBERD(primaryAttr, QuantileCuts(rel, primaryAttr, p), secondary, p)
}

// Name implements Placement.
func (b *BERDPlacement) Name() string { return "berd" }

// Processors implements Placement.
func (b *BERDPlacement) Processors() int { return b.p }

// PrimaryAttr reports the primary partitioning attribute.
func (b *BERDPlacement) PrimaryAttr() int { return b.primary.attr }

// SecondaryAttrs reports the secondary partitioning attributes.
func (b *BERDPlacement) SecondaryAttrs() []int {
	out := make([]int, 0, len(b.auxCuts))
	for a := range b.auxCuts {
		out = append(out, a)
	}
	return uniqueSorted(out)
}

// HomeOf implements Placement: tuples live where the primary range
// partitioning puts them.
func (b *BERDPlacement) HomeOf(t storage.Tuple) int { return b.primary.HomeOf(t) }

// AuxHomeOf returns the processor storing the auxiliary entry for the given
// secondary-attribute value.
func (b *BERDPlacement) AuxHomeOf(attr int, value int64) int {
	cuts, ok := b.auxCuts[attr]
	if !ok {
		panic(fmt.Sprintf("core: %s is not a secondary attribute", storage.AttrName(attr)))
	}
	return bucketOf(cuts, value)
}

// AuxAssignments scans the relation and builds the per-processor auxiliary
// fragments for every secondary attribute, exactly as Section 2 describes:
// entry (value, TID, home processor of the tuple), range partitioned on
// value. The result maps attribute -> processor -> entries.
func (b *BERDPlacement) AuxAssignments(rel *storage.Relation) map[int]map[int][]storage.AuxEntry {
	out := make(map[int]map[int][]storage.AuxEntry, len(b.auxCuts))
	for attr := range b.auxCuts {
		perProc := make(map[int][]storage.AuxEntry, b.p)
		for _, t := range rel.Tuples {
			v := t.Attrs[attr]
			node := b.AuxHomeOf(attr, v)
			perProc[node] = append(perProc[node], storage.AuxEntry{
				Value: v,
				TID:   t.TID,
				Proc:  b.HomeOf(t),
			})
		}
		out[attr] = perProc
	}
	return out
}

// Route implements Placement. Primary-attribute predicates route directly;
// secondary-attribute predicates return the auxiliary processors to consult
// (two-step); anything else visits every processor.
func (b *BERDPlacement) Route(pred Predicate) Route {
	if pred.Attr == b.primary.attr {
		return b.primary.Route(pred)
	}
	if cuts, ok := b.auxCuts[pred.Attr]; ok {
		from, to := bucketRange(cuts, pred.Lo, pred.Hi)
		aux := make([]int, 0, to-from+1)
		for i := from; i <= to; i++ {
			aux = append(aux, i)
		}
		return Route{Aux: aux}
	}
	return Route{Participants: allProcessors(b.p)}
}
