package core

import (
	"testing"

	"repro/internal/storage"
)

func BenchmarkBuildMAGIC20k(b *testing.B) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 20000, Seed: 21})
	pp := PlanParams{CPms: 1.7, CSms: 0.003, Processors: 32, Cardinality: 20000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildMAGIC(rel, []int{storage.Unique1, storage.Unique2},
			magicWorkload(), pp, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRebalanceDiagonal(b *testing.B) {
	const n = 64
	dims := []int{n, n}
	counts := make([]int, n*n)
	for i := 0; i < n; i++ {
		counts[i*n+i] = 25
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owners := AssignOwners(dims, 32, []float64{5, 5})
		Rebalance(owners, dims, counts, 32, 100)
	}
}

func BenchmarkMAGICRoute(b *testing.B) {
	rel := storage.GenerateWisconsin(storage.GenSpec{Cardinality: 20000, Seed: 21})
	pp := PlanParams{CPms: 1.7, CSms: 0.003, Processors: 32, Cardinality: 20000}
	m, err := BuildMAGIC(rel, []int{storage.Unique1, storage.Unique2}, magicWorkload(), pp, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Route(Predicate{Attr: storage.Unique2, Lo: int64(i % 19000), Hi: int64(i%19000 + 9)})
	}
}
