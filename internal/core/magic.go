package core

import (
	"fmt"

	"repro/internal/gridfile"
	"repro/internal/storage"
)

func init() {
	RegisterStrategy("magic", func(p StrategyParams) (Placement, error) {
		if err := needRelation("magic", p); err != nil {
			return nil, err
		}
		attrs := make([]int, 0, 1+len(p.SecondaryAttrs))
		attrs = append(attrs, p.PrimaryAttr)
		attrs = append(attrs, p.SecondaryAttrs...)
		return BuildMAGIC(p.Relation, attrs, p.Specs, p.Plan, p.Magic)
	})
}

// MagicOptions tunes the MAGIC construction; the zero value gives the
// paper's algorithm. The ablation flags exist for the design-choice benches
// DESIGN.md calls out.
type MagicOptions struct {
	// SplitWeights overrides the per-attribute splitting frequencies
	// (default: the plan's Mi-proportional weights).
	SplitWeights map[int]float64
	// RoundRobinAssign replaces the Mi-aware tiled assignment with naive
	// round-robin over cells (ablation: shows why slice-aware assignment
	// matters).
	RoundRobinAssign bool
	// DisableRebalance skips the Section 4 hill-climbing rebalancing
	// (ablation: shows the skew correlated data causes without it).
	DisableRebalance bool
	// RebalanceMaxIters bounds the hill climber (default 60).
	RebalanceMaxIters int
	// MaxCells overrides the directory-size cap (default
	// max(16*P, 4*Cardinality/FC); see gridfile.SetMaxCells for why highly
	// correlated data needs one).
	MaxCells int
}

// MAGICPlacement is the Multi-Attribute GrId deClustering strategy
// (Section 3) applied to a relation.
type MAGICPlacement struct {
	attrs  []int // grid dimension d partitions attribute attrs[d]
	dimOf  map[int]int
	grid   *gridfile.Grid
	owners []int // flat cell -> processor
	counts []int // flat cell -> tuples
	p      int
	plan   Plan
	swaps  int // rebalancing swaps applied
}

// BuildMAGIC declusters the relation on the given partitioning attributes
// for the given workload: it runs the planning model, builds the grid
// directory via the grid file insertion phase, assigns directory entries to
// processors, and rebalances. opts may be nil for defaults.
func BuildMAGIC(rel *storage.Relation, attrs []int, queries []QuerySpec, pp PlanParams, opts *MagicOptions) (*MAGICPlacement, error) {
	if opts == nil {
		opts = &MagicOptions{}
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("core: MAGIC needs at least one partitioning attribute")
	}
	seen := map[int]bool{}
	for _, a := range attrs {
		if seen[a] {
			return nil, fmt.Errorf("core: duplicate partitioning attribute %s", storage.AttrName(a))
		}
		seen[a] = true
	}
	if pp.Cardinality != rel.Cardinality() {
		return nil, fmt.Errorf("core: plan cardinality %d != relation cardinality %d",
			pp.Cardinality, rel.Cardinality())
	}
	plan, err := ComputePlan(queries, pp)
	if err != nil {
		return nil, err
	}

	// Splitting frequencies per grid dimension.
	weights := make([]float64, len(attrs))
	src := plan.SplitWeights
	if opts.SplitWeights != nil {
		src = opts.SplitWeights
	}
	var sum float64
	for i, a := range attrs {
		weights[i] = src[a]
		sum += weights[i]
	}
	if sum <= 0 {
		return nil, fmt.Errorf("core: no positive splitting weight for attributes %v "+
			"(does the workload reference any partitioning attribute?)", attrs)
	}

	// Grid file insertion phase (Section 3.3).
	grid := gridfile.New(plan.FC, weights, boundsOf(rel, attrs))
	maxCells := opts.MaxCells
	if maxCells <= 0 {
		maxCells = 4 * (pp.Cardinality/plan.FC + 1)
		if floor := 16 * pp.Processors; maxCells < floor {
			maxCells = floor
		}
	}
	grid.SetMaxCells(maxCells)
	// Insert in a scrambled (but deterministic) order: relations arrive
	// sorted on the clustered attribute, and feeding sorted data to the
	// grid file front-loads all directory refinement into the low region —
	// once the directory-size cap is reached, the unrefined tail would
	// collapse into a handful of giant fragments. A coprime stride visits
	// the relation in a spatially uniform order instead.
	n := len(rel.Tuples)
	stride := coprimeStride(n)
	point := make([]int64, len(attrs))
	for i := 0; i < n; i++ {
		t := rel.Tuples[(i*stride)%n]
		for d, a := range attrs {
			point[d] = t.Attrs[a]
		}
		grid.Insert(point, i)
	}

	// Assignment (Section 3.4).
	dims := grid.Dims()
	counts := make([]int, grid.NumCells())
	for flat := range counts {
		counts[flat] = grid.CellCount(flat)
	}
	var owners []int
	if opts.RoundRobinAssign {
		owners = make([]int, grid.NumCells())
		for i := range owners {
			owners[i] = i % pp.Processors
		}
	} else {
		mi := make([]float64, len(attrs))
		for d, a := range attrs {
			mi[d] = plan.Mi[a]
			if mi[d] == 0 {
				mi[d] = 1
			}
		}
		owners = AssignOwnersBalanced(dims, pp.Processors, mi, counts)
	}

	// Rebalancing (Section 4).
	m := &MAGICPlacement{
		attrs:  append([]int(nil), attrs...),
		dimOf:  make(map[int]int, len(attrs)),
		grid:   grid,
		owners: owners,
		counts: counts,
		p:      pp.Processors,
		plan:   plan,
	}
	for d, a := range attrs {
		m.dimOf[a] = d
	}
	if !opts.DisableRebalance {
		iters := opts.RebalanceMaxIters
		if iters <= 0 {
			iters = 200
		}
		m.swaps = Rebalance(m.owners, dims, counts, pp.Processors, iters)
	}
	return m, nil
}

// coprimeStride returns a stride near n/φ (the golden-ratio fraction, which
// distributes visits maximally uniformly) that is coprime to n, so
// (i*stride) mod n enumerates 0..n-1 exactly once.
func coprimeStride(n int) int {
	if n <= 2 {
		return 1
	}
	s := int(float64(n) * 0.6180339887)
	if s < 1 {
		s = 1
	}
	for ; gcd(s, n) != 1; s++ {
	}
	return s
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Name implements Placement.
func (m *MAGICPlacement) Name() string { return "magic" }

// Processors implements Placement.
func (m *MAGICPlacement) Processors() int { return m.p }

// Attrs reports the partitioning attributes in grid-dimension order.
func (m *MAGICPlacement) Attrs() []int { return append([]int(nil), m.attrs...) }

// Plan reports the planning-model output the construction used.
func (m *MAGICPlacement) Plan() Plan { return m.plan }

// Grid exposes the underlying directory (read-only use).
func (m *MAGICPlacement) Grid() *gridfile.Grid { return m.grid }

// Dims reports the directory shape (Ni per dimension).
func (m *MAGICPlacement) Dims() []int { return m.grid.Dims() }

// RebalanceSwaps reports how many slice swaps the rebalancer applied.
func (m *MAGICPlacement) RebalanceSwaps() int { return m.swaps }

// Owners returns the flat cell -> processor assignment (caller must not
// mutate).
func (m *MAGICPlacement) Owners() []int { return m.owners }

// CellCounts returns the flat cell -> tuple count view (caller must not
// mutate).
func (m *MAGICPlacement) CellCounts() []int { return m.counts }

// HomeOf implements Placement: the owner of the grid cell the tuple's
// partitioning-attribute values locate to.
func (m *MAGICPlacement) HomeOf(t storage.Tuple) int {
	point := make([]int64, len(m.attrs))
	for d, a := range m.attrs {
		point[d] = t.Attrs[a]
	}
	return m.owners[m.grid.FlatIndex(m.grid.Locate(point))]
}

// Route implements Placement: a predicate on a partitioning attribute maps
// to the slice of covered cells; the participants are the owners of the
// non-empty covered cells (empty entries are pruned, Section 4), and every
// covered entry counts toward the directory-search cost.
func (m *MAGICPlacement) Route(pred Predicate) Route {
	return m.RouteConjunct([]Predicate{pred})
}

// RouteConjunct localizes a conjunction of single-attribute predicates
// (pred1 AND pred2 AND ...). This is the natural extension the grid
// directory enables beyond the paper's single-attribute workload: a
// conjunction over multiple partitioning attributes maps to the
// intersection of their slices — a small hyper-rectangle of cells — so an
// exact match on every partitioning attribute localizes to a single
// processor. Predicates on non-partitioning attributes force all
// processors; repeated predicates on one attribute intersect their ranges.
func (m *MAGICPlacement) RouteConjunct(preds []Predicate) Route {
	ranges := make([][2]int64, len(m.attrs))
	for dd := range m.attrs {
		lo, hi := m.grid.Bounds(dd)
		ranges[dd] = [2]int64{lo, hi}
	}
	constrained := false
	for _, pred := range preds {
		d, ok := m.dimOf[pred.Attr]
		if !ok {
			return Route{Participants: allProcessors(m.p)}
		}
		if pred.Lo > ranges[d][0] {
			ranges[d][0] = pred.Lo
		}
		if pred.Hi < ranges[d][1] {
			ranges[d][1] = pred.Hi
		}
		constrained = true
	}
	if !constrained {
		return Route{Participants: allProcessors(m.p)}
	}
	cells := m.grid.CellsCovering(ranges)
	var parts []int
	for _, c := range cells {
		if m.counts[c] > 0 {
			parts = append(parts, m.owners[c])
		}
	}
	return Route{Participants: uniqueSorted(parts), EntriesSearched: len(cells)}
}
