package core

import (
	"testing"

	"repro/internal/storage"
)

func testBERD(t *testing.T, n, corrWindow, p int) (*storage.Relation, *BERDPlacement) {
	t.Helper()
	rel := testRelation(t, n, corrWindow)
	b := NewBERDForRelation(rel, storage.Unique1, []int{storage.Unique2}, p)
	return rel, b
}

func TestBERDMetadata(t *testing.T) {
	_, b := testBERD(t, 1000, 0, 8)
	if b.Name() != "berd" || b.Processors() != 8 {
		t.Fatal("metadata wrong")
	}
	if b.PrimaryAttr() != storage.Unique1 {
		t.Fatal("primary attr wrong")
	}
	sec := b.SecondaryAttrs()
	if len(sec) != 1 || sec[0] != storage.Unique2 {
		t.Fatalf("secondary attrs = %v", sec)
	}
}

func TestBERDPrimaryRoutesLikeRange(t *testing.T) {
	rel, b := testBERD(t, 1000, 0, 8)
	r := NewRangeForRelation(rel, storage.Unique1, 8)
	for _, pred := range []Predicate{
		{Attr: storage.Unique1, Lo: 500, Hi: 500},
		{Attr: storage.Unique1, Lo: 100, Hi: 400},
	} {
		br, rr := b.Route(pred), r.Route(pred)
		if len(br.Participants) != len(rr.Participants) || len(br.Aux) != 0 {
			t.Fatalf("BERD primary route %v differs from range %v", br, rr)
		}
	}
}

func TestBERDSecondaryIsTwoStep(t *testing.T) {
	_, b := testBERD(t, 1000, 0, 8)
	route := b.Route(Predicate{Attr: storage.Unique2, Lo: 100, Hi: 110})
	if len(route.Participants) != 0 {
		t.Fatal("secondary route must not have direct participants")
	}
	if len(route.Aux) != 1 {
		t.Fatalf("narrow secondary range should hit one aux fragment, got %v", route.Aux)
	}
	wide := b.Route(Predicate{Attr: storage.Unique2, Lo: 0, Hi: 999})
	if len(wide.Aux) != 8 {
		t.Fatalf("full secondary range should hit all aux fragments, got %d", len(wide.Aux))
	}
}

func TestBERDOtherAttributeVisitsAll(t *testing.T) {
	_, b := testBERD(t, 1000, 0, 8)
	route := b.Route(Predicate{Attr: storage.Ten, Lo: 5, Hi: 5})
	if len(route.Participants) != 8 || len(route.Aux) != 0 {
		t.Fatalf("route = %+v", route)
	}
}

func TestBERDAuxAssignmentsComplete(t *testing.T) {
	rel, b := testBERD(t, 1000, 0, 8)
	aux := b.AuxAssignments(rel)
	perProc := aux[storage.Unique2]
	total := 0
	for node, entries := range perProc {
		total += len(entries)
		for _, e := range entries {
			if b.AuxHomeOf(storage.Unique2, e.Value) != node {
				t.Fatalf("aux entry value %d on node %d, belongs on %d",
					e.Value, node, b.AuxHomeOf(storage.Unique2, e.Value))
			}
			// The recorded home processor must match the placement.
			if e.Proc != b.HomeOf(rel.Tuples[e.TID]) {
				t.Fatalf("aux entry for TID %d records proc %d, tuple lives on %d",
					e.TID, e.Proc, b.HomeOf(rel.Tuples[e.TID]))
			}
		}
	}
	if total != rel.Cardinality() {
		t.Fatalf("aux holds %d entries for %d tuples", total, rel.Cardinality())
	}
	// Aux entries spread evenly (quantile cuts on a permutation).
	for node, entries := range perProc {
		if len(entries) != 125 {
			t.Fatalf("aux node %d holds %d entries", node, len(entries))
		}
	}
}

// With uncorrelated attributes, the tuples a narrow secondary range selects
// live on many distinct processors; with identical attributes they collapse
// to one or two — the Section 4 localization effect.
func TestBERDCorrelationLocalizesSecondaryQueries(t *testing.T) {
	distinctHomes := func(corrWindow int) int {
		rel, b := testBERD(t, 2000, corrWindow, 16)
		procs := map[int]bool{}
		for _, tup := range rel.Tuples {
			v := tup.Attrs[storage.Unique2]
			if v >= 1000 && v < 1010 { // 10-tuple secondary range
				procs[b.HomeOf(tup)] = true
			}
		}
		return len(procs)
	}
	low := distinctHomes(0)
	high := distinctHomes(1)
	if low < 5 {
		t.Fatalf("uncorrelated 10-tuple range hit only %d processors", low)
	}
	if high != 1 {
		t.Fatalf("identical attributes should localize to 1 processor, got %d", high)
	}
}

func TestBERDConstructorValidation(t *testing.T) {
	rel := testRelation(t, 100, 0)
	cuts := QuantileCuts(rel, storage.Unique1, 4)
	for i, fn := range []func(){
		func() { // secondary == primary
			NewBERD(storage.Unique1, cuts, map[int][]int64{storage.Unique1: cuts}, 4)
		},
		func() { // wrong aux cut count
			NewBERD(storage.Unique1, cuts, map[int][]int64{storage.Unique2: {1}}, 4)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewBERD accepted bad arguments", i)
				}
			}()
			fn()
		}()
	}
}

func TestBERDAuxHomeOfUnknownAttrPanics(t *testing.T) {
	_, b := testBERD(t, 100, 0, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown secondary attribute did not panic")
		}
	}()
	b.AuxHomeOf(storage.Ten, 5)
}
