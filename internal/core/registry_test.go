package core

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/storage"
)

// The five shipped strategies must self-register.
func TestRegistryShippedStrategies(t *testing.T) {
	got := Strategies()
	for _, want := range []string{"berd", "hash", "magic", "range", "roundrobin"} {
		i := sort.SearchStrings(got, want)
		if i >= len(got) || got[i] != want {
			t.Errorf("strategy %q not registered (have %v)", want, got)
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Errorf("Strategies() not sorted: %v", got)
	}
}

func TestRegistryUnknownStrategyListsNames(t *testing.T) {
	_, err := BuildStrategy("nope", StrategyParams{Processors: 4})
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for _, name := range Strategies() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered strategy %q", err, name)
		}
	}
}

func TestRegistryRegistrationErrors(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { RegisterStrategy("", func(StrategyParams) (Placement, error) { return nil, nil }) })
	mustPanic("nil builder", func() { RegisterStrategy("x", nil) })
	mustPanic("duplicate", func() { RegisterStrategy("hash", func(StrategyParams) (Placement, error) { return nil, nil }) })
}

// Builders that derive value distributions must reject a missing relation
// with an error, not a panic.
func TestRegistryMissingRelation(t *testing.T) {
	for _, name := range []string{"range", "berd", "magic"} {
		if _, err := BuildStrategy(name, StrategyParams{Processors: 4, PrimaryAttr: storage.Unique1}); err == nil {
			t.Errorf("%s accepted a nil relation", name)
		}
	}
}

// Relation-free strategies build from parameters alone and match direct
// construction.
func TestRegistryRelationFreeStrategies(t *testing.T) {
	hash, err := BuildStrategy("hash", StrategyParams{Processors: 8, PrimaryAttr: storage.Unique1})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := BuildStrategy("roundrobin", StrategyParams{Processors: 8})
	if err != nil {
		t.Fatal(err)
	}
	direct := NewHash(storage.Unique1, 8)
	for v := int64(0); v < 100; v++ {
		tp := storage.Tuple{}
		tp.Attrs[storage.Unique1] = v
		if hash.HomeOf(tp) != direct.HomeOf(tp) {
			t.Fatalf("hash HomeOf(%d) = %d, direct = %d", v, hash.HomeOf(tp), direct.HomeOf(tp))
		}
	}
	if rr.Processors() != 8 || hash.Processors() != 8 {
		t.Fatalf("processors: rr=%d hash=%d", rr.Processors(), hash.Processors())
	}
}
