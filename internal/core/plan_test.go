package core

import (
	"math"
	"testing"

	"repro/internal/storage"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func defaultPP() PlanParams {
	return PlanParams{CPms: 1.7, CSms: 0.003, Processors: 32, Cardinality: 100000}
}

func TestComputePlanAggregatesQAve(t *testing.T) {
	qs := []QuerySpec{
		{Name: "QA", Attr: storage.Unique1, TuplesPerQuery: 1, Frequency: 0.5,
			CPUms: 10, DiskMS: 20, NetMS: 2},
		{Name: "QB", Attr: storage.Unique2, TuplesPerQuery: 10, Frequency: 0.5,
			CPUms: 12, DiskMS: 24, NetMS: 4},
	}
	p, err := ComputePlan(qs, defaultPP())
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p.TuplesPerQAve, 5.5, 1e-12) {
		t.Fatalf("TuplesPerQAve = %g", p.TuplesPerQAve)
	}
	if !almost(p.CPUAveMS, 11, 1e-12) || !almost(p.DiskAveMS, 22, 1e-12) || !almost(p.NetAveMS, 3, 1e-12) {
		t.Fatalf("QAve resources = %g/%g/%g", p.CPUAveMS, p.DiskAveMS, p.NetAveMS)
	}
}

func TestComputePlanNormalizesFrequencies(t *testing.T) {
	// Frequencies given as counts must behave like normalized frequencies.
	mk := func(fa, fb float64) Plan {
		qs := []QuerySpec{
			{Name: "QA", Attr: 0, TuplesPerQuery: 1, Frequency: fa, CPUms: 10},
			{Name: "QB", Attr: 1, TuplesPerQuery: 10, Frequency: fb, CPUms: 20},
		}
		p, err := ComputePlan(qs, defaultPP())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(0.5, 0.5), mk(7, 7)
	if !almost(a.TuplesPerQAve, b.TuplesPerQAve, 1e-12) || !almost(a.M, b.M, 1e-12) {
		t.Fatal("frequency scaling changed the plan")
	}
}

func TestMFormulaMatchesEquation(t *testing.T) {
	pp := defaultPP()
	qs := []QuerySpec{{Name: "Q", Attr: 0, TuplesPerQuery: 100, Frequency: 1,
		CPUms: 40, DiskMS: 50, NetMS: 10}}
	p, err := ComputePlan(qs, pp)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(100.0 / (pp.CPms + float64(pp.Cardinality)*pp.CSms/(2*100)))
	if !almost(p.M, want, 1e-12) {
		t.Fatalf("M = %g, want %g", p.M, want)
	}
}

// The closed form for M comes from zeroing the derivative of Equation 1;
// verify numerically that it minimizes the modeled response time.
func TestMMinimizesResponseTime(t *testing.T) {
	pp := defaultPP()
	qs := []QuerySpec{{Name: "Q", Attr: 0, TuplesPerQuery: 300, Frequency: 1,
		CPUms: 44, DiskMS: 50, NetMS: 44}}
	p, err := ComputePlan(qs, pp)
	if err != nil {
		t.Fatal(err)
	}
	best := p.OptimalM(pp)
	if math.Abs(float64(best)-p.M) > 1.0 {
		t.Fatalf("closed-form M=%g but numeric optimum is %d", p.M, best)
	}
	// Response time must be convex-ish around the optimum.
	rtAt := func(m float64) float64 {
		return ResponseTime(m, p.TuplesPerQAve, p.CPUAveMS, p.DiskAveMS, p.NetAveMS, pp)
	}
	if rtAt(p.M) > rtAt(p.M/2) || rtAt(p.M) > rtAt(p.M*2) {
		t.Fatal("modeled response time is not minimized near M")
	}
}

func TestFCFootnoteForSmallM(t *testing.T) {
	// Tiny resource requirements force M < 1; footnote 4: FC = Tuples/M.
	pp := PlanParams{CPms: 100, CSms: 0.001, Processors: 4, Cardinality: 1000}
	qs := []QuerySpec{{Name: "Q", Attr: 0, TuplesPerQuery: 10, Frequency: 1, CPUms: 1}}
	p, err := ComputePlan(qs, pp)
	if err != nil {
		t.Fatal(err)
	}
	if p.M >= 1 {
		t.Fatalf("test construction failed: M = %g", p.M)
	}
	want := int(math.Ceil(10 / p.M))
	if maxFC := pp.Cardinality / pp.Processors; want > maxFC {
		want = maxFC
	}
	if p.FC != want {
		t.Fatalf("FC = %d, want %d", p.FC, want)
	}
}

func TestFCClampedToGuaranteePFragments(t *testing.T) {
	// M barely above 1 would make FC explode; it must be clamped to
	// Cardinality/Processors so each processor can own at least one cell.
	pp := PlanParams{CPms: 30, CSms: 0.0001, Processors: 8, Cardinality: 800}
	qs := []QuerySpec{{Name: "Q", Attr: 0, TuplesPerQuery: 50, Frequency: 1,
		CPUms: 15, DiskMS: 15, NetMS: 5}}
	p, err := ComputePlan(qs, pp)
	if err != nil {
		t.Fatal(err)
	}
	if p.FC > pp.Cardinality/pp.Processors {
		t.Fatalf("FC = %d exceeds cardinality/processors = %d", p.FC, pp.Cardinality/pp.Processors)
	}
	if p.FC < 1 {
		t.Fatalf("FC = %d", p.FC)
	}
}

func TestMiClampedToProcessorRange(t *testing.T) {
	pp := PlanParams{CPms: 0.1, CSms: 0, Processors: 4, Cardinality: 1000}
	qs := []QuerySpec{
		{Name: "huge", Attr: 0, TuplesPerQuery: 10, Frequency: 1, CPUms: 1000}, // sqrt(10000)=100 -> clamp 4
		{Name: "tiny", Attr: 1, TuplesPerQuery: 1, Frequency: 1, CPUms: 0.001}, // sqrt(0.01)=0.1 -> clamp 1
	}
	p, err := ComputePlan(qs, pp)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mi[0] != 4 {
		t.Fatalf("Mi[0] = %g, want clamped 4", p.Mi[0])
	}
	if p.Mi[1] != 1 {
		t.Fatalf("Mi[1] = %g, want clamped 1", p.Mi[1])
	}
}

// Section 3.3's worked example: M_ticker = 3, M_price = 1, 90%/10% access
// frequencies. Equation 4 as printed yields 22.5% and 7.5%.
func TestFractionSplitsPaperExample(t *testing.T) {
	pp := PlanParams{CPms: 1, CSms: 0, Processors: 36, Cardinality: 100000}
	qs := []QuerySpec{
		{Name: "ticker", Attr: 0, TuplesPerQuery: 1, Frequency: 0.9, CPUms: 9}, // Mi = sqrt(9/1) = 3
		{Name: "price", Attr: 1, TuplesPerQuery: 5, Frequency: 0.1, CPUms: 1},  // Mi = sqrt(1/1) = 1
	}
	p, err := ComputePlan(qs, pp)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p.Mi[0], 3, 1e-9) || !almost(p.Mi[1], 1, 1e-9) {
		t.Fatalf("Mi = %v", p.Mi)
	}
	if !almost(p.FractionSplits[0], 0.225, 1e-9) {
		t.Fatalf("FractionSplits[ticker] = %g, want 0.225", p.FractionSplits[0])
	}
	if !almost(p.FractionSplits[1], 0.075, 1e-9) {
		t.Fatalf("FractionSplits[price] = %g, want 0.075", p.FractionSplits[1])
	}
	// The split weights actually used are Mi-proportional: 3:1, matching
	// "the ticker-symbol attribute will have three times as many elements".
	if !almost(p.SplitWeights[0]/p.SplitWeights[1], 3, 1e-9) {
		t.Fatalf("split weight ratio = %g, want 3", p.SplitWeights[0]/p.SplitWeights[1])
	}
}

// Section 7.2: equal frequencies, Mi(B)=9, Mi(A)=1: the paper states the
// grid file splits B's dimension nine times more frequently than A's.
func TestSplitWeightsMatchSection72(t *testing.T) {
	pp := PlanParams{CPms: 1, CSms: 0, Processors: 32, Cardinality: 100000}
	qs := []QuerySpec{
		{Name: "QA", Attr: 0, TuplesPerQuery: 1, Frequency: 0.5, CPUms: 1},    // Mi = 1
		{Name: "QB", Attr: 1, TuplesPerQuery: 300, Frequency: 0.5, CPUms: 81}, // Mi = 9
	}
	p, err := ComputePlan(qs, pp)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := p.SplitWeights[1] / p.SplitWeights[0]; !almost(ratio, 9, 1e-9) {
		t.Fatalf("split weight ratio B:A = %g, want 9", ratio)
	}
}

func TestComputePlanValidation(t *testing.T) {
	good := []QuerySpec{{Name: "Q", Attr: 0, TuplesPerQuery: 1, Frequency: 1, CPUms: 1}}
	cases := []struct {
		qs []QuerySpec
		pp PlanParams
	}{
		{nil, defaultPP()},
		{good, PlanParams{CPms: 0, CSms: 0, Processors: 1, Cardinality: 1}},
		{good, PlanParams{CPms: 1, CSms: -1, Processors: 1, Cardinality: 1}},
		{good, PlanParams{CPms: 1, CSms: 0, Processors: 0, Cardinality: 1}},
		{good, PlanParams{CPms: 1, CSms: 0, Processors: 1, Cardinality: 0}},
		{[]QuerySpec{{Name: "bad", Attr: 0, TuplesPerQuery: 0, Frequency: 1}}, defaultPP()},
		{[]QuerySpec{{Name: "bad", Attr: 0, TuplesPerQuery: 1, Frequency: -1}}, defaultPP()},
		{[]QuerySpec{{Name: "zero", Attr: 0, TuplesPerQuery: 1, Frequency: 0}}, defaultPP()},
	}
	for i, c := range cases {
		if _, err := ComputePlan(c.qs, c.pp); err == nil {
			t.Errorf("case %d: ComputePlan accepted invalid input", i)
		}
	}
}

func TestResponseTimeClampsMBelowOne(t *testing.T) {
	pp := defaultPP()
	if ResponseTime(0.5, 10, 10, 10, 10, pp) != ResponseTime(1, 10, 10, 10, 10, pp) {
		t.Fatal("M below 1 should evaluate as 1")
	}
}
