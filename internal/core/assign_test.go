package core

import (
	"testing"
	"testing/quick"
)

func TestAssignOwnersRoundRobinFor1D(t *testing.T) {
	owners := AssignOwners([]int{10}, 4, []float64{2})
	for i, o := range owners {
		if o != i%4 {
			t.Fatalf("1D assignment not round-robin: owners[%d] = %d", i, o)
		}
	}
}

func TestAssignOwnersSliceDistinctMatchesRadices(t *testing.T) {
	// P=32, Mi targets (2, 9): the best factorization is radices (16, 2),
	// so dimension-0 queries meet 32/16 = 2 processors and dimension-1
	// queries meet 32/2 = 16 — the exact counts Section 7.2 reports.
	dims := []int{23, 193}
	owners := AssignOwners(dims, 32, []float64{2, 9})
	d0 := SliceDistinct(owners, dims, 0)
	for i, n := range d0 {
		if n != 2 {
			t.Fatalf("slice %d of dim 0 has %d distinct processors, want 2", i, n)
		}
	}
	d1 := SliceDistinct(owners, dims, 1)
	for i, n := range d1 {
		if n != 16 {
			t.Fatalf("slice %d of dim 1 has %d distinct processors, want 16", i, n)
		}
	}
}

func TestAssignOwnersModerateLowMirrors(t *testing.T) {
	// Section 7.3 mirror image: Mi = (9, 2) -> QA meets 16, QB meets 2.
	dims := []int{193, 23}
	owners := AssignOwners(dims, 32, []float64{9, 2})
	if n := SliceDistinct(owners, dims, 0)[0]; n != 16 {
		t.Fatalf("dim-0 slices have %d distinct, want 16", n)
	}
	if n := SliceDistinct(owners, dims, 1)[0]; n != 2 {
		t.Fatalf("dim-1 slices have %d distinct, want 2", n)
	}
}

func TestAssignOwnersUsesAllProcessorsEvenly(t *testing.T) {
	dims := []int{62, 61}
	owners := AssignOwners(dims, 32, []float64{5, 5})
	counts := make([]int, 32)
	for _, o := range owners {
		if o < 0 || o >= 32 {
			t.Fatalf("owner %d out of range", o)
		}
		counts[o]++
	}
	total := 62 * 61
	mean := float64(total) / 32
	for p, c := range counts {
		if float64(c) < 0.85*mean || float64(c) > 1.15*mean {
			t.Fatalf("processor %d owns %d cells (ideal %.0f)", p, c, mean)
		}
	}
}

// Property: for any radix choice, the number of distinct processors in every
// slice of dimension d is min(dims excluding d product, P/A_d); in
// particular it never exceeds P and all slices of a dimension agree.
func TestAssignOwnersSliceUniformityProperty(t *testing.T) {
	check := func(d0, d1 uint8, miA, miB uint8) bool {
		dims := []int{int(d0%20) + 2, int(d1%20) + 2}
		mi := []float64{float64(miA%8) + 1, float64(miB%8) + 1}
		owners := AssignOwners(dims, 16, mi)
		for d := 0; d < 2; d++ {
			dist := SliceDistinct(owners, dims, d)
			for _, n := range dist[1:] {
				if n != dist[0] {
					return false
				}
			}
			if dist[0] > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestChooseRadicesProductAlwaysP(t *testing.T) {
	for _, p := range []int{2, 6, 16, 32, 30} {
		for _, mi := range [][]float64{{1, 1}, {9, 2}, {32, 32}, {0.5, 100}} {
			r := chooseRadices(2, p, mi)
			if r[0]*r[1] != p {
				t.Fatalf("radices %v for P=%d", r, p)
			}
		}
	}
}

func TestChooseRadicesThreeDims(t *testing.T) {
	r := chooseRadices(3, 32, []float64{2, 4, 4})
	if r[0]*r[1]*r[2] != 32 {
		t.Fatalf("radices %v", r)
	}
}

func TestProcessorLoadsAndSpread(t *testing.T) {
	owners := []int{0, 1, 0, 1}
	counts := []int{10, 20, 30, 40}
	loads := ProcessorLoads(owners, counts, 2)
	if loads[0] != 40 || loads[1] != 60 {
		t.Fatalf("loads = %v", loads)
	}
	min, max, mean := LoadSpread(owners, counts, 2)
	if min != 40 || max != 60 || mean != 50 {
		t.Fatalf("spread = %d/%d/%g", min, max, mean)
	}
}

// Diagonal (perfectly correlated) data on a square grid: the tiled
// assignment leaves many processors empty; the Section 4 hill climber must
// bring the spread down dramatically. The paper reports <= 20% difference
// between any two processors for the worst case on 32 processors.
func TestRebalanceWorstCaseSpread(t *testing.T) {
	const n = 128 // 128x128 grid, diagonal occupancy
	dims := []int{n, n}
	counts := make([]int, n*n)
	for i := 0; i < n; i++ {
		counts[i*n+i] = 25 // all tuples on the diagonal
	}
	owners := AssignOwners(dims, 32, []float64{5, 5})
	minBefore, maxBefore, _ := LoadSpread(owners, counts, 32)
	if minBefore != 0 {
		t.Fatalf("test premise wrong: diagonal should leave empty processors, min=%d", minBefore)
	}
	swaps := Rebalance(owners, dims, counts, 32, 400)
	if swaps == 0 {
		t.Fatal("rebalance made no swaps on skewed data")
	}
	min, max, _ := LoadSpread(owners, counts, 32)
	if min == 0 {
		t.Fatalf("processors still empty after rebalance (max=%d)", max)
	}
	spread := float64(max-min) / float64(max)
	if spread > 0.30 {
		t.Fatalf("spread after rebalance = %.0f%% (min=%d max=%d), paper achieves ~20%%",
			spread*100, min, max)
	}
	if maxBefore < max {
		t.Fatal("rebalance increased the maximum load")
	}
}

// Swapping slices must never change the distinct-processor count of any
// slice in any dimension (the property the paper relies on).
func TestRebalancePreservesSliceDistinct(t *testing.T) {
	dims := []int{16, 16}
	counts := make([]int, 16*16)
	for i := 0; i < 16; i++ {
		counts[i*16+i] = 50
		counts[i*16+(i+1)%16] = 25
	}
	owners := AssignOwners(dims, 8, []float64{3, 3})
	before0 := SliceDistinct(owners, dims, 0)
	before1 := SliceDistinct(owners, dims, 1)
	Rebalance(owners, dims, counts, 8, 100)
	after0 := SliceDistinct(owners, dims, 0)
	after1 := SliceDistinct(owners, dims, 1)
	sum := func(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	if sum(before0) != sum(after0) || sum(before1) != sum(after1) {
		t.Fatal("rebalance changed per-slice distinct processor counts")
	}
}

func TestRebalanceUniformDataIsStable(t *testing.T) {
	dims := []int{8, 8}
	counts := make([]int, 64)
	for i := range counts {
		counts[i] = 10
	}
	owners := AssignOwners(dims, 8, []float64{3, 3})
	if swaps := Rebalance(owners, dims, counts, 8, 50); swaps != 0 {
		t.Fatalf("perfectly balanced input triggered %d swaps", swaps)
	}
}

// The rebalanced maximum load should approach the theoretical lower bound
// ceil(total/P) on moderately skewed inputs — the evaluation methodology the
// paper cites against [GMSY90]'s bound.
func TestRebalanceApproachesLowerBound(t *testing.T) {
	dims := []int{32, 32}
	counts := make([]int, 32*32)
	total := 0
	for i := range counts {
		counts[i] = (i % 7) * 3 // mild skew
		total += counts[i]
	}
	owners := AssignOwners(dims, 16, []float64{4, 4})
	Rebalance(owners, dims, counts, 16, 200)
	_, max, _ := LoadSpread(owners, counts, 16)
	bound := (total + 15) / 16
	if float64(max) > 1.3*float64(bound) {
		t.Fatalf("max load %d vs lower bound %d", max, bound)
	}
}

func TestAssignOwnersValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { AssignOwners(nil, 4, nil) },
		func() { AssignOwners([]int{4}, 0, []float64{1}) },
		func() { AssignOwners([]int{0, 4}, 4, []float64{1, 1}) },
		func() { AssignOwners([]int{4, 4}, 4, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: AssignOwners accepted bad input", i)
				}
			}()
			fn()
		}()
	}
}

func TestRebalanceMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	Rebalance([]int{0, 1}, []int{2}, []int{1}, 2, 10)
}
