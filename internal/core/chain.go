package core

// ChainBackup maps a primary processor to the holder of its fragment's
// replica under chained declustering (Hsiao & DeWitt): node i's fragment is
// mirrored on its successor (i+1) mod p, so any single failure leaves every
// fragment reachable and the extra load spreads along the chain rather than
// doubling on one mirror partner.
func ChainBackup(node, p int) int {
	if p <= 1 {
		return -1 // a one-node "chain" has nowhere to put a replica
	}
	return (node + 1) % p
}
