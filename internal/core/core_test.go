package core

import (
	"testing"

	"repro/internal/storage"
)

func testRelation(t *testing.T, n, corrWindow int) *storage.Relation {
	t.Helper()
	return storage.GenerateWisconsin(storage.GenSpec{
		Cardinality: n, CorrelationWindow: corrWindow, Seed: 21,
	})
}

func TestQuantileCutsEvenBuckets(t *testing.T) {
	rel := testRelation(t, 1000, 0)
	cuts := QuantileCuts(rel, storage.Unique1, 8)
	if len(cuts) != 7 {
		t.Fatalf("cuts = %v", cuts)
	}
	counts := make([]int, 8)
	for _, tup := range rel.Tuples {
		counts[bucketOf(cuts, tup.Attrs[storage.Unique1])]++
	}
	for i, c := range counts {
		if c != 125 {
			t.Fatalf("bucket %d holds %d tuples (counts %v)", i, c, counts)
		}
	}
}

func TestRangePlacementRouting(t *testing.T) {
	rel := testRelation(t, 1000, 0)
	r := NewRangeForRelation(rel, storage.Unique1, 8)
	if r.Name() != "range" || r.Processors() != 8 || r.Attr() != storage.Unique1 {
		t.Fatal("metadata wrong")
	}
	// Equality on the partitioning attribute: one processor.
	route := r.Route(Predicate{Attr: storage.Unique1, Lo: 500, Hi: 500})
	if len(route.Participants) != 1 {
		t.Fatalf("equality routed to %v", route.Participants)
	}
	// A range within one bucket: one processor; full domain: all 8.
	route = r.Route(Predicate{Attr: storage.Unique1, Lo: 0, Hi: 999})
	if len(route.Participants) != 8 {
		t.Fatalf("full range routed to %d processors", len(route.Participants))
	}
	// Any other attribute: all processors.
	route = r.Route(Predicate{Attr: storage.Unique2, Lo: 5, Hi: 5})
	if len(route.Participants) != 8 {
		t.Fatalf("non-partitioning attribute routed to %d", len(route.Participants))
	}
}

func TestRangePlacementHomeMatchesRouting(t *testing.T) {
	rel := testRelation(t, 1000, 0)
	r := NewRangeForRelation(rel, storage.Unique1, 8)
	for _, tup := range rel.Tuples[:100] {
		home := r.HomeOf(tup)
		route := r.Route(Predicate{Attr: storage.Unique1, Lo: tup.Attrs[storage.Unique1], Hi: tup.Attrs[storage.Unique1]})
		if len(route.Participants) != 1 || route.Participants[0] != home {
			t.Fatalf("tuple %d: home %d but routed to %v", tup.TID, home, route.Participants)
		}
	}
}

func TestRangeCutsValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { NewRange(0, []int64{1, 2}, 8) }, // wrong count
		func() { NewRange(0, []int64{5, 1}, 3) }, // not ascending
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewRange accepted bad cuts", i)
				}
			}()
			fn()
		}()
	}
}

func TestHashPlacementRouting(t *testing.T) {
	h := NewHash(storage.Unique1, 8)
	if h.Name() != "hash" || h.Processors() != 8 {
		t.Fatal("metadata wrong")
	}
	eq := h.Route(Predicate{Attr: storage.Unique1, Lo: 42, Hi: 42})
	if len(eq.Participants) != 1 {
		t.Fatalf("hash equality routed to %v", eq.Participants)
	}
	rng := h.Route(Predicate{Attr: storage.Unique1, Lo: 10, Hi: 20})
	if len(rng.Participants) != 8 {
		t.Fatal("hash range predicate must visit all processors")
	}
	other := h.Route(Predicate{Attr: storage.Unique2, Lo: 42, Hi: 42})
	if len(other.Participants) != 8 {
		t.Fatal("other attribute must visit all processors")
	}
}

func TestHashHomeMatchesEqualityRoute(t *testing.T) {
	rel := testRelation(t, 500, 0)
	h := NewHash(storage.Unique1, 8)
	for _, tup := range rel.Tuples[:50] {
		route := h.Route(Predicate{Attr: storage.Unique1, Lo: tup.Attrs[storage.Unique1], Hi: tup.Attrs[storage.Unique1]})
		if route.Participants[0] != h.HomeOf(tup) {
			t.Fatal("hash equality route disagrees with HomeOf")
		}
	}
}

func TestHashSpreadsLoad(t *testing.T) {
	rel := testRelation(t, 8000, 0)
	h := NewHash(storage.Unique1, 8)
	counts := make([]int, 8)
	for _, tup := range rel.Tuples {
		counts[h.HomeOf(tup)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("hash bucket %d holds %d of 8000", i, c)
		}
	}
}

func TestPredicateString(t *testing.T) {
	eq := Predicate{Attr: storage.Unique1, Lo: 5, Hi: 5}
	if !eq.Equality() {
		t.Fatal("equality not detected")
	}
	if eq.String() != "unique1 = 5" {
		t.Fatalf("String = %q", eq.String())
	}
	rg := Predicate{Attr: storage.Unique2, Lo: 1, Hi: 9}
	if rg.Equality() || rg.String() != "1 <= unique2 <= 9" {
		t.Fatalf("String = %q", rg.String())
	}
}

func TestUniqueSorted(t *testing.T) {
	got := uniqueSorted([]int{3, 1, 3, 2, 1})
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}
