package core

import "testing"

func TestChainBackup(t *testing.T) {
	for _, tc := range []struct{ node, p, want int }{
		{0, 8, 1}, {6, 8, 7}, {7, 8, 0}, {0, 2, 1}, {1, 2, 0},
		{0, 1, -1}, {0, 0, -1},
	} {
		if got := ChainBackup(tc.node, tc.p); got != tc.want {
			t.Errorf("ChainBackup(%d, %d) = %d, want %d", tc.node, tc.p, got, tc.want)
		}
	}
	// Every node's backup is a distinct other node: the chain is a single
	// cycle, so one failure never orphans a fragment.
	p := 8
	seen := map[int]bool{}
	for i := 0; i < p; i++ {
		b := ChainBackup(i, p)
		if b == i || seen[b] {
			t.Fatalf("chain is not a permutation without fixed points: backup(%d)=%d", i, b)
		}
		seen[b] = true
	}
}
