package rebalance

import (
	"fmt"

	"repro/internal/sim"
)

// IO is the page-I/O surface the copier drives; the machine layer
// implements it over the per-node buffer pools (reads, so migration
// competes for — and warms — the source cache) and disks (writes).
type IO interface {
	ReadPage(p *sim.Proc, node, page int) error
	WritePage(p *sim.Proc, node, page int) error
}

// DefaultRatePagesPerSec is the migration throttle default: roughly a
// third of one disk's sequential page rate, so a rebalance visibly
// competes with foreground queries without starving them.
const DefaultRatePagesPerSec = 2000

// Copier executes move plans as throttled background I/O. It is driven
// from the controller's process; the live counters feed telemetry gauges
// (sampled on the same sim clock, so no synchronization is needed).
type Copier struct {
	IO IO
	// RatePagesPerSec budgets the copy I/O; <= 0 selects the default.
	RatePagesPerSec int
	// PageBytes sizes BytesCopied accounting (a disk page).
	PageBytes int

	// Live counters (read by telemetry probes mid-run).
	Backlog     int64 // pages still to copy in the current transition
	PagesCopied int64
	BytesCopied int64
	Errors      int64
}

// gap returns the inter-page throttle interval.
func (c *Copier) gap() sim.Duration {
	rate := c.RatePagesPerSec
	if rate <= 0 {
		rate = DefaultRatePagesPerSec
	}
	return sim.Duration(float64(sim.Second) / float64(rate))
}

// Run copies every page of the plan in plan order, holding the throttle
// gap before each page so the budget is an upper bound on I/O issue rate.
// Page errors (e.g. a source disk failing mid-copy) are counted and the
// first is returned after the plan completes; the controller records it on
// the task rather than aborting the transition, since the remaining moves
// are independent.
func (c *Copier) Run(p *sim.Proc, plan Plan) error {
	c.Backlog = int64(plan.Pages())
	var firstErr error
	note := func(err error) {
		c.Errors++
		if firstErr == nil {
			firstErr = err
		}
	}
	gap := c.gap()
	for _, mv := range plan.Moves {
		for _, pg := range mv.Reads {
			p.Hold(gap)
			if err := c.IO.ReadPage(p, pg.Node, pg.Page); err != nil {
				note(fmt.Errorf("rebalance: read n%d p%d: %w", pg.Node, pg.Page, err))
			}
			c.step()
		}
		for _, pg := range mv.Writes {
			p.Hold(gap)
			if err := c.IO.WritePage(p, pg.Node, pg.Page); err != nil {
				note(fmt.Errorf("rebalance: write n%d p%d: %w", pg.Node, pg.Page, err))
			}
			c.step()
		}
	}
	c.Backlog = 0
	return firstErr
}

// step books one copied page. It is the copier's per-page hot path and
// must stay allocation-free (guarded by TestMigrationStepAllocs).
func (c *Copier) step() {
	c.Backlog--
	c.PagesCopied++
	c.BytesCopied += int64(c.PageBytes)
}
