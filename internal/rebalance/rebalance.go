// Package rebalance implements elastic cluster membership for the
// simulated Gamma machine: planned node joins, leaves and decommissions on
// the simulation clock, promotion of permanent node failures into repair
// tasks, minimal fragment-move planning, and throttled background copy
// execution. The package is deliberately machine-agnostic — it computes
// and executes page-granular move plans through two small interfaces (IO
// for page reads/writes, Executor for staging and cutover) that the
// machine-assembly layer (internal/gamma) implements, keeping the
// dependency arrow pointing into here exactly as internal/fault does.
//
// Correctness model: every transition stages a complete next-generation
// layout first (old placement keeps serving), copies only the pages whose
// tuples change physical homes as throttled background I/O competing with
// foreground queries, and then performs one atomic cutover on the sim
// clock — the dual-read epoch in exec.Host lets queries submitted before
// the cutover finish against the previous generation.
package rebalance

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// EventKind enumerates membership changes.
type EventKind int

const (
	// Join adds a standby node to the membership and rebalances fragments
	// onto it. Standby physical ids are assigned by the machine builder in
	// event order (the first Join gets the first standby).
	Join EventKind = iota
	// Leave removes a member after its data has been rebalanced away; the
	// node stays powered (it can still serve in-flight old-generation
	// reads and could later rejoin).
	Leave
	// Decommission is Leave plus retirement: the node is withdrawn from
	// the serving set permanently once the cutover drains.
	Decommission
	// Repair is not schedulable — the controller synthesizes it when a
	// permanent node crash is promoted into an unplanned removal, with
	// copy sources falling back to chain-backup replicas.
	Repair
)

var kindNames = [...]string{
	Join:         "join",
	Leave:        "leave",
	Decommission: "decommission",
	Repair:       "repair",
}

func (k EventKind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one planned membership change.
type Event struct {
	// At is the offset from the start of the run.
	At sim.Duration `json:"at"`
	// Kind is the membership change.
	Kind EventKind `json:"kind"`
	// Node identifies the member to remove (Leave/Decommission). For Join
	// events the field is ignored: the machine builder assigns standby
	// physical ids in event order.
	Node int `json:"node"`
}

// Schedule is the planned part of a run's membership history.
type Schedule struct {
	Events []Event `json:"events,omitempty"`
}

// Validate simulates the schedule against an initial membership of
// [0, initial) and rejects events that would remove an absent member or
// shrink the cluster to nothing. Join targets are assigned by the builder,
// so only removal targets are checked.
func (s Schedule) Validate(initial int) error {
	if initial <= 0 {
		return fmt.Errorf("rebalance: initial membership must be positive, got %d", initial)
	}
	members := make(map[int]bool, initial)
	for i := 0; i < initial; i++ {
		members[i] = true
	}
	next := initial
	var last sim.Duration
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("rebalance: event %d: negative offset %v", i, ev.At)
		}
		if ev.At < last {
			return fmt.Errorf("rebalance: event %d at %v precedes event %d at %v; sort the schedule",
				i, ev.At, i-1, last)
		}
		last = ev.At
		switch ev.Kind {
		case Join:
			members[next] = true
			next++
		case Leave, Decommission:
			if !members[ev.Node] {
				return fmt.Errorf("rebalance: event %d removes node %d, which is not a member", i, ev.Node)
			}
			if len(members) == 1 {
				return fmt.Errorf("rebalance: event %d would remove the last member", i)
			}
			delete(members, ev.Node)
		default:
			return fmt.Errorf("rebalance: event %d: kind %v is not schedulable", i, ev.Kind)
		}
	}
	return nil
}

// Joins reports the number of Join events — the standby node count the
// machine builder must provision.
func (s Schedule) Joins() int {
	n := 0
	for _, ev := range s.Events {
		if ev.Kind == Join {
			n++
		}
	}
	return n
}

// Transition describes one membership change the controller asks the
// machine layer to execute: the generation the cutover installs and the
// physical members after the change, in slot order (slot i of the new
// placement lives on Members[i]).
type Transition struct {
	Gen     int       `json:"gen"`
	Kind    EventKind `json:"kind"`
	Node    int       `json:"node"`
	Members []int     `json:"members"`
}

// removeMember returns members without node, preserving slot order.
func removeMember(members []int, node int) []int {
	out := make([]int, 0, len(members)-1)
	for _, m := range members {
		if m != node {
			out = append(out, m)
		}
	}
	return out
}

// sortedCopy returns a sorted copy (canonical member order for reports).
func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
