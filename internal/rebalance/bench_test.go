package rebalance

import (
	"testing"

	"repro/internal/sim"
)

// nopIO is free page I/O for hot-path measurements (also used by the
// alloc guard, which is excluded under -race).
type nopIO struct{}

func (nopIO) ReadPage(p *sim.Proc, node, page int) error  { return nil }
func (nopIO) WritePage(p *sim.Proc, node, page int) error { return nil }

// BenchmarkMigrationStep measures the copier's per-page cost (throttle
// hold + IO dispatch + counter bookkeeping) with an instantaneous rate so
// the sim clock, not the budget, bounds throughput.
func BenchmarkMigrationStep(b *testing.B) {
	eng := sim.New()
	cp := &Copier{IO: nopIO{}, RatePagesPerSec: 1 << 30, PageBytes: 8192}
	moves := make([]TupleMove, 64)
	for i := range moves {
		moves[i] = TupleMove{Src: 0, Dst: 1, SrcPage: i, DstPage: i}
	}
	plan := BuildPlan(moves)
	pages := plan.Pages()
	eng.Spawn("bench", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i += pages {
			if err := cp.Run(p, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBuildPlan measures planning cost for a 1000-tuple transition.
func BenchmarkBuildPlan(b *testing.B) {
	moves := make([]TupleMove, 1000)
	for i := range moves {
		moves[i] = TupleMove{Src: i % 8, Dst: 8 + i%8, SrcPage: i / 4, DstPage: i / 4}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := BuildPlan(moves); p.Tuples != 1000 {
			b.Fatal("bad plan")
		}
	}
}
