package rebalance

import "sort"

// PageRef addresses one physical page on one node's disk.
type PageRef struct {
	Node int `json:"node"`
	Page int `json:"page"`
}

// TupleMove is the planner's input granule: one tuple whose physical home
// changes, with the page holding its readable copy (normally the old
// primary; the machine layer substitutes the chain-backup holder when the
// source node is down) and the staged page it lands on.
type TupleMove struct {
	Src, Dst         int // physical nodes
	SrcPage, DstPage int // physical pages on those disks
}

// Move aggregates all data flowing between one (source, destination) node
// pair: the deduplicated source pages to read and staged destination pages
// to write, each in ascending page order.
type Move struct {
	Src    int       `json:"src"`
	Dst    int       `json:"dst"`
	Tuples int       `json:"tuples"`
	Reads  []PageRef `json:"-"`
	Writes []PageRef `json:"-"`
}

// Plan is a complete move plan for one transition.
type Plan struct {
	Moves      []Move `json:"moves,omitempty"`
	Tuples     int    `json:"tuples"`
	ReadPages  int    `json:"read_pages"`
	WritePages int    `json:"write_pages"`
}

// Pages reports the total page I/O the plan performs.
func (p Plan) Pages() int { return p.ReadPages + p.WritePages }

// BuildPlan groups per-tuple moves into the minimal page-granular plan:
// one Move per (src, dst) pair with each distinct source page read once
// and each distinct staged destination page written once. Moves are
// ordered by (src, dst) and pages ascending, so the plan — and therefore
// the copy schedule — is deterministic regardless of input order.
func BuildPlan(tuples []TupleMove) Plan {
	type key struct{ src, dst int }
	type acc struct {
		tuples int
		reads  map[int]bool
		writes map[int]bool
	}
	byPair := make(map[key]*acc)
	for _, t := range tuples {
		k := key{t.Src, t.Dst}
		a := byPair[k]
		if a == nil {
			a = &acc{reads: make(map[int]bool), writes: make(map[int]bool)}
			byPair[k] = a
		}
		a.tuples++
		a.reads[t.SrcPage] = true
		a.writes[t.DstPage] = true
	}
	keys := make([]key, 0, len(byPair))
	for k := range byPair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	plan := Plan{Tuples: len(tuples)}
	for _, k := range keys {
		a := byPair[k]
		mv := Move{Src: k.src, Dst: k.dst, Tuples: a.tuples}
		mv.Reads = sortedPages(k.src, a.reads)
		mv.Writes = sortedPages(k.dst, a.writes)
		plan.ReadPages += len(mv.Reads)
		plan.WritePages += len(mv.Writes)
		plan.Moves = append(plan.Moves, mv)
	}
	return plan
}

// Merge folds another plan (e.g. a further relation's moves, or a replica
// rebuild) into this one, keeping the aggregate counters consistent.
func (p *Plan) Merge(q Plan) {
	p.Moves = append(p.Moves, q.Moves...)
	p.Tuples += q.Tuples
	p.ReadPages += q.ReadPages
	p.WritePages += q.WritePages
}

func sortedPages(node int, set map[int]bool) []PageRef {
	pages := make([]int, 0, len(set))
	for pg := range set {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	out := make([]PageRef, len(pages))
	for i, pg := range pages {
		out[i] = PageRef{Node: node, Page: pg}
	}
	return out
}
