package rebalance

import (
	"fmt"

	"repro/internal/sim"
)

// Executor is the machine-layer surface a transition drives. Prepare
// stages the complete next-generation layout (fragments, indexes, chain
// backups) without disturbing the serving generation and returns the
// page-move plan whose I/O the copier will charge; Cutover atomically
// installs the staged generation on every node and the host. Both run on
// the controller's process, so implementations may rely on run-to-
// completion semantics between sim yields.
type Executor interface {
	Prepare(t Transition) (Plan, error)
	Cutover(t Transition)
}

// TaskReport records one executed (or refused) transition.
type TaskReport struct {
	Kind    string `json:"kind"`
	Node    int    `json:"node"`
	Gen     int    `json:"gen"`
	Members []int  `json:"members"`
	// PlannedAt is the scheduled offset (for repairs, the promotion time);
	// StartedAt is when the controller began staging, CopiedAt when the
	// background copy drained, CutoverAt when the new generation took over.
	PlannedAt  sim.Duration `json:"planned_at"`
	StartedAt  sim.Duration `json:"started_at"`
	CopiedAt   sim.Duration `json:"copied_at"`
	CutoverAt  sim.Duration `json:"cutover_at"`
	Tuples     int          `json:"tuples"`
	ReadPages  int          `json:"read_pages"`
	WritePages int          `json:"write_pages"`
	Bytes      int64        `json:"bytes"`
	Err        string       `json:"err,omitempty"`
}

// Rebalance is the time from plan to cutover (zero for refused tasks).
func (t TaskReport) Rebalance() sim.Duration {
	if t.Err != "" && t.CutoverAt == 0 {
		return 0
	}
	return t.CutoverAt - t.PlannedAt
}

// Report aggregates a run's membership history.
type Report struct {
	Tasks       []TaskReport `json:"tasks,omitempty"`
	Tuples      int          `json:"tuples"`
	ReadPages   int          `json:"read_pages"`
	WritePages  int          `json:"write_pages"`
	BytesMoved  int64        `json:"bytes_moved"`
	PagesCopied int64        `json:"pages_copied"`
	Errors      int64        `json:"errors"`
}

// MaxRebalance reports the slowest transition's plan-to-cutover time.
func (r Report) MaxRebalance() sim.Duration {
	var max sim.Duration
	for _, t := range r.Tasks {
		if d := t.Rebalance(); d > max {
			max = d
		}
	}
	return max
}

// Summary renders the one-line digest CI smoke tests grep for.
func (r Report) Summary() string {
	counts := map[string]int{}
	for _, t := range r.Tasks {
		counts[t.Kind]++
	}
	return fmt.Sprintf(
		"rebalance summary: tasks=%d join=%d leave=%d decommission=%d repair=%d tuples=%d pages=%d bytes=%d max_ttr=%v errors=%d",
		len(r.Tasks), counts["join"], counts["leave"], counts["decommission"], counts["repair"],
		r.Tuples, r.ReadPages+r.WritePages, r.BytesMoved, r.MaxRebalance(), r.Errors)
}

// Controller walks a validated Schedule on the sim clock, executing each
// membership change as stage → throttled copy → cutover, and accepts
// asynchronous repair requests (promoted permanent node crashes) between
// and after planned events. It is a single sequential process, so at most
// one transition is in flight at a time and the whole run is deterministic.
type Controller struct {
	eng      *sim.Engine
	sched    Schedule
	exec     Executor
	copier   *Copier
	members  []int
	standbys []int
	gen      int
	repairs  *sim.Mailbox[repairReq]
	rep      Report
	refusals int64
}

type repairReq struct {
	node int
	at   sim.Duration
}

// NewController builds a controller over an initial membership of
// [0, initial) with the given standby physical ids (assigned to Join
// events in schedule order). The schedule must already be Validated.
func NewController(eng *sim.Engine, sched Schedule, initial int, standbys []int, ex Executor, cp *Copier) *Controller {
	members := make([]int, initial)
	for i := range members {
		members[i] = i
	}
	return &Controller{
		eng:      eng,
		sched:    sched,
		exec:     ex,
		copier:   cp,
		members:  members,
		standbys: standbys,
		repairs:  sim.NewMailbox[repairReq](eng, "rebalance.repairs"),
	}
}

func (c *Controller) now() sim.Duration { return sim.Duration(c.eng.Now()) }

// Members returns the current membership in slot order.
func (c *Controller) Members() []int { return c.members }

// Gen returns the current placement generation.
func (c *Controller) Gen() int { return c.gen }

// Copier exposes the live copy counters for telemetry probes.
func (c *Controller) Copier() *Copier { return c.copier }

// Report returns the membership history accumulated so far.
func (c *Controller) Report() Report { return c.rep }

// RequestRepair promotes a permanent node failure into an unplanned
// removal. Safe to call from event callbacks (the fault injector's apply
// hook); requests for nodes that are no longer members are ignored when
// drained.
func (c *Controller) RequestRepair(node int) {
	c.repairs.Put(repairReq{node: node, at: c.now()})
}

// Start spawns the controller process.
func (c *Controller) Start() {
	c.eng.Spawn("rebalance.controller", c.run)
}

func (c *Controller) run(p *sim.Proc) {
	nextStandby := 0
	for _, ev := range c.sched.Events {
		// Serve repair requests that arrive before the next planned event.
		for {
			wait := ev.At - c.now()
			if wait <= 0 {
				break
			}
			req, ok := c.repairs.GetTimeout(p, wait)
			if !ok {
				break // deadline: the planned event is due
			}
			c.repair(p, req)
		}
		node := ev.Node
		if ev.Kind == Join {
			node = c.standbys[nextStandby]
			nextStandby++
		}
		c.transition(p, ev.At, ev.Kind, node)
	}
	for {
		req, ok := c.repairs.Recv(p)
		if !ok {
			return
		}
		c.repair(p, req)
	}
}

func (c *Controller) repair(p *sim.Proc, req repairReq) {
	if !c.isMember(req.node) {
		return // already repaired or was never serving
	}
	c.transition(p, req.at, Repair, req.node)
}

func (c *Controller) isMember(node int) bool {
	for _, m := range c.members {
		if m == node {
			return true
		}
	}
	return false
}

// transition executes one membership change end to end. A Prepare failure
// (e.g. a strategy that cannot build at the new node count, or refusing to
// shrink to zero members) leaves membership and generation untouched and
// records the refusal on the report.
func (c *Controller) transition(p *sim.Proc, plannedAt sim.Duration, kind EventKind, node int) {
	task := TaskReport{
		Kind:      kind.String(),
		Node:      node,
		PlannedAt: plannedAt,
		StartedAt: c.now(),
	}
	var members []int
	switch kind {
	case Join:
		members = append(append([]int(nil), c.members...), node)
	default:
		if len(c.members) == 1 {
			task.Err = "cannot remove the last member"
			task.Gen = c.gen
			task.Members = sortedCopy(c.members)
			c.record(task)
			return
		}
		members = removeMember(c.members, node)
	}
	t := Transition{Gen: c.gen + 1, Kind: kind, Node: node, Members: members}
	plan, err := c.exec.Prepare(t)
	if err != nil {
		task.Err = err.Error()
		task.Gen = c.gen
		task.Members = sortedCopy(c.members)
		c.record(task)
		return
	}
	if cerr := c.copier.Run(p, plan); cerr != nil && task.Err == "" {
		task.Err = cerr.Error()
	}
	task.CopiedAt = c.now()
	c.exec.Cutover(t)
	task.CutoverAt = c.now()
	c.gen = t.Gen
	c.members = members
	task.Gen = t.Gen
	task.Members = sortedCopy(members)
	task.Tuples = plan.Tuples
	task.ReadPages = plan.ReadPages
	task.WritePages = plan.WritePages
	task.Bytes = int64(plan.WritePages) * int64(c.copier.PageBytes)
	c.record(task)
}

func (c *Controller) record(task TaskReport) {
	c.rep.Tasks = append(c.rep.Tasks, task)
	c.rep.Tuples += task.Tuples
	c.rep.ReadPages += task.ReadPages
	c.rep.WritePages += task.WritePages
	c.rep.BytesMoved += task.Bytes
	if task.Err != "" && task.CutoverAt == 0 {
		c.refusals++
	}
	c.rep.PagesCopied = c.copier.PagesCopied
	c.rep.Errors = c.copier.Errors + c.refusals
}
