//go:build !race

package rebalance

import (
	"testing"

	"repro/internal/sim"
)

// TestMigrationStepAllocs guards the copier's per-page hot path: a
// migration moves tens of thousands of pages per transition, each step
// being a throttle hold plus an I/O call plus counter updates — garbage
// here would dominate the background copy and skew the foreground runs
// it competes with.
func TestMigrationStepAllocs(t *testing.T) {
	eng := sim.New()
	cp := &Copier{IO: nopIO{}, RatePagesPerSec: 1 << 20, PageBytes: 8192}
	plan := BuildPlan([]TupleMove{{Src: 0, Dst: 1, SrcPage: 1, DstPage: 2}})
	var avg float64
	eng.Spawn("copy", func(p *sim.Proc) {
		// Warm once so pooled event records exist, then measure.
		_ = cp.Run(p, plan)
		avg = testing.AllocsPerRun(500, func() {
			if err := cp.Run(p, plan); err != nil {
				t.Errorf("Run: %v", err)
			}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("migration copy step allocates %.2f/op, want 0", avg)
	}
}
