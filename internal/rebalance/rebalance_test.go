package rebalance

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestScheduleValidate(t *testing.T) {
	ok := Schedule{Events: []Event{
		{At: sim.Second, Kind: Join},
		{At: 2 * sim.Second, Kind: Leave, Node: 0},
		{At: 3 * sim.Second, Kind: Decommission, Node: 4}, // the joined standby
	}}
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if got := ok.Joins(); got != 1 {
		t.Fatalf("Joins() = %d, want 1", got)
	}
	cases := []struct {
		name    string
		initial int
		events  []Event
	}{
		{"zero initial", 0, nil},
		{"negative offset", 2, []Event{{At: -1, Kind: Join}}},
		{"unsorted", 2, []Event{{At: sim.Second, Kind: Join}, {At: sim.Millisecond, Kind: Leave, Node: 0}}},
		{"remove non-member", 2, []Event{{At: 0, Kind: Leave, Node: 7}}},
		{"remove twice", 3, []Event{{At: 0, Kind: Leave, Node: 1}, {At: sim.Second, Kind: Leave, Node: 1}}},
		{"remove last member", 1, []Event{{At: 0, Kind: Decommission, Node: 0}}},
		{"repair not schedulable", 2, []Event{{At: 0, Kind: Repair, Node: 0}}},
	}
	for _, tc := range cases {
		if err := (Schedule{Events: tc.events}).Validate(tc.initial); err == nil {
			t.Errorf("%s: Validate accepted an invalid schedule", tc.name)
		}
	}
}

func TestBuildPlanDedupAndOrder(t *testing.T) {
	// Three tuples sharing a source page, two sharing a destination page.
	moves := []TupleMove{
		{Src: 1, Dst: 0, SrcPage: 10, DstPage: 20},
		{Src: 1, Dst: 0, SrcPage: 10, DstPage: 20},
		{Src: 1, Dst: 0, SrcPage: 10, DstPage: 21},
		{Src: 0, Dst: 2, SrcPage: 5, DstPage: 30},
	}
	plan := BuildPlan(moves)
	if plan.Tuples != 4 || plan.ReadPages != 2 || plan.WritePages != 3 {
		t.Fatalf("plan counters = %d tuples, %d reads, %d writes; want 4, 2, 3",
			plan.Tuples, plan.ReadPages, plan.WritePages)
	}
	if len(plan.Moves) != 2 {
		t.Fatalf("got %d moves, want 2", len(plan.Moves))
	}
	// Moves ordered by (src, dst): (0,2) before (1,0).
	if plan.Moves[0].Src != 0 || plan.Moves[1].Src != 1 {
		t.Fatalf("moves not ordered by (src, dst): %+v", plan.Moves)
	}
	if got := plan.Moves[1].Reads; len(got) != 1 || got[0] != (PageRef{Node: 1, Page: 10}) {
		t.Fatalf("source page not deduplicated: %+v", got)
	}
}

func TestBuildPlanDeterministic(t *testing.T) {
	base := make([]TupleMove, 0, 200)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		base = append(base, TupleMove{
			Src:     rng.Intn(4),
			Dst:     4 + rng.Intn(4),
			SrcPage: rng.Intn(16),
			DstPage: rng.Intn(16),
		})
	}
	want := BuildPlan(base)
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]TupleMove(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := BuildPlan(shuffled); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: plan differs under input reordering", trial)
		}
	}
}

// countingIO records page I/O and optionally fails selected reads.
type countingIO struct {
	reads, writes int
	failRead      map[PageRef]error
}

func (io *countingIO) ReadPage(p *sim.Proc, node, page int) error {
	io.reads++
	if err := io.failRead[PageRef{Node: node, Page: page}]; err != nil {
		return err
	}
	return nil
}

func (io *countingIO) WritePage(p *sim.Proc, node, page int) error {
	io.writes++
	return nil
}

func TestCopierThrottle(t *testing.T) {
	eng := sim.New()
	io := &countingIO{}
	cp := &Copier{IO: io, RatePagesPerSec: 1000, PageBytes: 8192} // 1ms per page
	plan := BuildPlan([]TupleMove{
		{Src: 0, Dst: 1, SrcPage: 1, DstPage: 2},
		{Src: 0, Dst: 1, SrcPage: 3, DstPage: 4},
	})
	var done sim.Duration
	eng.Spawn("copy", func(p *sim.Proc) {
		if err := cp.Run(p, plan); err != nil {
			t.Errorf("Run: %v", err)
		}
		done = sim.Duration(eng.Now())
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 2 reads + 2 writes at 1ms each: the throttle gap precedes every page.
	if want := 4 * sim.Millisecond; done != want {
		t.Fatalf("copy finished at %v, want %v", done, want)
	}
	if io.reads != 2 || io.writes != 2 {
		t.Fatalf("IO counts = %d reads, %d writes; want 2, 2", io.reads, io.writes)
	}
	if cp.PagesCopied != 4 || cp.BytesCopied != 4*8192 || cp.Backlog != 0 {
		t.Fatalf("counters = %d pages, %d bytes, backlog %d", cp.PagesCopied, cp.BytesCopied, cp.Backlog)
	}
}

func TestCopierSurvivesPageErrors(t *testing.T) {
	eng := sim.New()
	boom := errors.New("disk gone")
	io := &countingIO{failRead: map[PageRef]error{{Node: 0, Page: 1}: boom}}
	cp := &Copier{IO: io, RatePagesPerSec: 1000, PageBytes: 8192}
	plan := BuildPlan([]TupleMove{
		{Src: 0, Dst: 1, SrcPage: 1, DstPage: 2},
		{Src: 0, Dst: 1, SrcPage: 3, DstPage: 4},
	})
	var err error
	eng.Spawn("copy", func(p *sim.Proc) { err = cp.Run(p, plan) })
	if rerr := eng.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want wrapped %v", err, boom)
	}
	// The failing read does not abort the plan: every page is still attempted.
	if cp.PagesCopied != 4 || cp.Errors != 1 {
		t.Fatalf("copied %d pages with %d errors; want 4 and 1", cp.PagesCopied, cp.Errors)
	}
}

// scriptedExec records transitions and serves a fixed per-transition plan.
type scriptedExec struct {
	prepared []Transition
	cutovers []Transition
	plan     Plan
	failKind EventKind
	failErr  error
}

func (e *scriptedExec) Prepare(t Transition) (Plan, error) {
	e.prepared = append(e.prepared, t)
	if e.failErr != nil && t.Kind == e.failKind {
		return Plan{}, e.failErr
	}
	return e.plan, nil
}

func (e *scriptedExec) Cutover(t Transition) { e.cutovers = append(e.cutovers, t) }

func testPlan() Plan {
	return BuildPlan([]TupleMove{{Src: 0, Dst: 1, SrcPage: 1, DstPage: 2}})
}

func TestControllerScheduleWalk(t *testing.T) {
	eng := sim.New()
	ex := &scriptedExec{plan: testPlan()}
	cp := &Copier{IO: &countingIO{}, RatePagesPerSec: 1000, PageBytes: 8192}
	sched := Schedule{Events: []Event{
		{At: 10 * sim.Millisecond, Kind: Join},
		{At: 50 * sim.Millisecond, Kind: Decommission, Node: 1},
	}}
	if err := sched.Validate(3); err != nil {
		t.Fatal(err)
	}
	c := NewController(eng, sched, 3, []int{3}, ex, cp)
	c.Start()
	eng.Schedule(200*sim.Millisecond, eng.Stop)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ex.cutovers) != 2 {
		t.Fatalf("got %d cutovers, want 2", len(ex.cutovers))
	}
	join, decom := ex.cutovers[0], ex.cutovers[1]
	if join.Gen != 1 || join.Kind != Join || join.Node != 3 || !reflect.DeepEqual(join.Members, []int{0, 1, 2, 3}) {
		t.Fatalf("join transition = %+v", join)
	}
	if decom.Gen != 2 || decom.Kind != Decommission || !reflect.DeepEqual(decom.Members, []int{0, 2, 3}) {
		t.Fatalf("decommission transition = %+v", decom)
	}
	if got := c.Members(); !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Fatalf("final members = %v", got)
	}
	rep := c.Report()
	if len(rep.Tasks) != 2 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Copy of 1 read + 1 write at 1ms each finishes 2ms after the plan time.
	if got := rep.Tasks[0].Rebalance(); got != 2*sim.Millisecond {
		t.Fatalf("join rebalance time = %v, want 2ms", got)
	}
	if rep.Tasks[1].PlannedAt != 50*sim.Millisecond {
		t.Fatalf("decommission planned at %v", rep.Tasks[1].PlannedAt)
	}
	if s := rep.Summary(); s == "" || rep.MaxRebalance() != 2*sim.Millisecond {
		t.Fatalf("summary %q, max ttr %v", s, rep.MaxRebalance())
	}
}

func TestControllerRepairPromotion(t *testing.T) {
	eng := sim.New()
	ex := &scriptedExec{plan: testPlan()}
	cp := &Copier{IO: &countingIO{}, RatePagesPerSec: 1000, PageBytes: 8192}
	sched := Schedule{Events: []Event{{At: 100 * sim.Millisecond, Kind: Join}}}
	c := NewController(eng, sched, 3, []int{3}, ex, cp)
	c.Start()
	// A permanent crash promoted mid-wait, plus a duplicate and a repair
	// for a node that is not a member — both must be ignored.
	eng.Schedule(20*sim.Millisecond, func() {
		c.RequestRepair(2)
		c.RequestRepair(2)
		c.RequestRepair(9)
	})
	eng.Schedule(300*sim.Millisecond, eng.Stop)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ex.cutovers) != 2 {
		t.Fatalf("got %d cutovers, want repair + join", len(ex.cutovers))
	}
	repair, join := ex.cutovers[0], ex.cutovers[1]
	if repair.Kind != Repair || repair.Node != 2 || !reflect.DeepEqual(repair.Members, []int{0, 1}) {
		t.Fatalf("repair transition = %+v", repair)
	}
	if join.Kind != Join || !reflect.DeepEqual(join.Members, []int{0, 1, 3}) {
		t.Fatalf("join transition = %+v", join)
	}
	rep := c.Report()
	if rep.Tasks[0].Kind != "repair" || rep.Tasks[0].PlannedAt != 20*sim.Millisecond {
		t.Fatalf("repair task = %+v", rep.Tasks[0])
	}
}

func TestControllerRefusesPrepareFailure(t *testing.T) {
	eng := sim.New()
	ex := &scriptedExec{plan: testPlan(), failKind: Leave, failErr: fmt.Errorf("strategy cannot build at n=2")}
	cp := &Copier{IO: &countingIO{}, RatePagesPerSec: 1000, PageBytes: 8192}
	sched := Schedule{Events: []Event{
		{At: 10 * sim.Millisecond, Kind: Leave, Node: 1},
		{At: 20 * sim.Millisecond, Kind: Join},
	}}
	c := NewController(eng, sched, 3, []int{3}, ex, cp)
	c.Start()
	eng.Schedule(100*sim.Millisecond, eng.Stop)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The refused Leave leaves membership and generation untouched; the
	// Join still runs against the original membership at gen 1.
	if len(ex.cutovers) != 1 || ex.cutovers[0].Kind != Join || ex.cutovers[0].Gen != 1 {
		t.Fatalf("cutovers = %+v", ex.cutovers)
	}
	rep := c.Report()
	if len(rep.Tasks) != 2 || rep.Tasks[0].Err == "" || rep.Errors != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if got := c.Members(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("members = %v", got)
	}
}

func TestControllerRefusesRemovingLastMember(t *testing.T) {
	eng := sim.New()
	ex := &scriptedExec{plan: testPlan()}
	cp := &Copier{IO: &countingIO{}, RatePagesPerSec: 1000, PageBytes: 8192}
	c := NewController(eng, Schedule{}, 1, nil, ex, cp)
	c.Start()
	eng.Schedule(sim.Millisecond, func() { c.RequestRepair(0) })
	eng.Schedule(10*sim.Millisecond, eng.Stop)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if len(ex.cutovers) != 0 || len(rep.Tasks) != 1 || rep.Tasks[0].Err == "" {
		t.Fatalf("cutovers %d, report %+v", len(ex.cutovers), rep)
	}
	if got := c.Members(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("members = %v", got)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{Join: "join", Leave: "leave", Decommission: "decommission", Repair: "repair"} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := EventKind(99).String(); got != "kind(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}
