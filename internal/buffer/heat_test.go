package buffer

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestReadHeatHitMiss(t *testing.T) {
	e, disk, pool := rig(t, 8)
	hm := obs.NewHeatMap()
	h := hm.Frag("r", 0, obs.FragPrimary)
	run(t, e, func(p *sim.Proc) {
		pool.ReadHeat(p, 100, h) // miss
		pool.ReadHeat(p, 100, h) // resident hit
	})
	if h.BufMisses != 1 || h.BufHits != 1 {
		t.Fatalf("heat hits=%d misses=%d, want 1/1", h.BufHits, h.BufMisses)
	}
	if disk.Reads() != int64(h.BufMisses) {
		t.Fatalf("disk reads %d != heat misses %d", disk.Reads(), h.BufMisses)
	}
	// The pool's own counters are unaffected by heat attribution.
	if pool.Hits() != 1 || pool.Misses() != 1 {
		t.Fatalf("pool hits=%d misses=%d", pool.Hits(), pool.Misses())
	}
}

func TestReadHeatPiggybackCountsHit(t *testing.T) {
	e, disk, pool := rig(t, 8)
	hm := obs.NewHeatMap()
	h := hm.Frag("r", 0, obs.FragPrimary)
	for i := 0; i < 4; i++ {
		e.Spawn("reader", func(p *sim.Proc) {
			pool.ReadHeat(p, 42, h)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// One physical read; the three piggybacked waiters are hits — keeping
	// the per-fragment miss count equal to the disk read count.
	if h.BufMisses != 1 || h.BufHits != 3 {
		t.Fatalf("heat hits=%d misses=%d, want 3/1", h.BufHits, h.BufMisses)
	}
	if disk.Reads() != 1 {
		t.Fatalf("disk reads = %d, want 1 (coalesced)", disk.Reads())
	}
}

func TestReadHeatZeroCapacityCountsMiss(t *testing.T) {
	e, disk, pool := rig(t, 0)
	hm := obs.NewHeatMap()
	h := hm.Frag("r", 0, obs.FragPrimary)
	run(t, e, func(p *sim.Proc) {
		pool.ReadHeat(p, 5, h)
		pool.ReadHeat(p, 5, h)
	})
	if h.BufMisses != 2 || h.BufHits != 0 {
		t.Fatalf("heat hits=%d misses=%d, want 0/2", h.BufHits, h.BufMisses)
	}
	if disk.Reads() != 2 {
		t.Fatalf("disk reads = %d", disk.Reads())
	}
}

func TestReadHeatNilMatchesRead(t *testing.T) {
	e, _, pool := rig(t, 8)
	run(t, e, func(p *sim.Proc) {
		// Read is ReadHeat with a nil handle; both paths share the schedule.
		pool.ReadHeat(p, 1, nil)
		pool.Read(p, 1)
	})
	if pool.Hits() != 1 || pool.Misses() != 1 {
		t.Fatalf("pool hits=%d misses=%d", pool.Hits(), pool.Misses())
	}
}
